/**
 * @file
 * dlsim command-line driver: run any calibrated workload on any
 * machine configuration and print the counter report, record retire
 * traces, or sweep ABTB sizes against a recorded trace.
 *
 * Usage:
 *   dlsim_cli run <workload> [options]
 *   dlsim_cli record <workload> <trace-file> [options]
 *   dlsim_cli replay <trace-file> [--abtb-entries N]...
 *   dlsim_cli sweep <trace-file> [--jobs N]
 *   dlsim_cli snapshot save <workload> <file> [options]
 *   dlsim_cli snapshot restore <workload> <file> [options]
 *
 * `snapshot save` warms a workload up (--warmup requests) and
 * serializes the complete machine state; `snapshot restore` — given
 * the same workload/machine options — restores it and runs the
 * measured phase without re-simulating the warm-up. A snapshot
 * whose magic, version, CRCs, or parameter fingerprint do not
 * match is rejected (exit 1), never partially loaded.
 *
 * Options for run/record:
 *   --enhanced            enable the trampoline-skip hardware
 *   --requests N          measured requests (default 500)
 *   --warmup N            warmup requests (default 100)
 *   --abtb-entries N      ABTB capacity (default 256)
 *   --arm                 ARM-style trampolines
 *   --explicit-inval      §3.4 alternate implementation
 *   --eager               BIND_NOW-style eager binding
 *   --aslr                randomise library placement
 *   --seed N              workload seed (default 42)
 *
 * All commands additionally accept:
 *   --json-out FILE       write a dlsim-metrics-v1 JSON document
 *                         alongside the human-readable output
 *   --jobs N              host threads for independent sweep
 *                         points (default: hardware concurrency;
 *                         1 = serial; output is byte-identical
 *                         for every N)
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <iterator>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/job_runner.hh"
#include "snapshot/io.hh"
#include "stats/metrics.hh"
#include "trace/replay.hh"
#include "workload/engine.hh"
#include "workload/profiles.hh"

using namespace dlsim;

namespace
{

struct Options
{
    std::string command;
    std::string subcommand;
    std::string workload;
    std::string tracePath;
    std::string jsonOut;
    bool enhanced = false;
    bool arm = false;
    bool explicitInval = false;
    bool eager = false;
    bool aslr = false;
    int requests = 500;
    int warmup = 100;
    std::uint32_t abtbEntries = 256;
    std::uint64_t seed = 42;
    unsigned jobs = 0; // 0 = hardware concurrency
};

int
usage()
{
    std::fprintf(stderr,
                 "usage: dlsim_cli run|record|replay|sweep"
                 "|snapshot ...\n"
                 "       dlsim_cli snapshot save|restore "
                 "<workload> <file>\n"
                 "see the file header for options\n");
    return 2;
}

bool
parse(int argc, char **argv, Options &opt)
{
    if (argc < 2)
        return false;
    opt.command = argv[1];
    int positional = 0;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next_int = [&](long def) {
            return i + 1 < argc ? std::atol(argv[++i]) : def;
        };
        if (arg == "--enhanced") {
            opt.enhanced = true;
        } else if (arg == "--arm") {
            opt.arm = true;
        } else if (arg == "--explicit-inval") {
            opt.explicitInval = true;
        } else if (arg == "--eager") {
            opt.eager = true;
        } else if (arg == "--aslr") {
            opt.aslr = true;
        } else if (arg == "--requests") {
            opt.requests = static_cast<int>(next_int(500));
        } else if (arg == "--warmup") {
            opt.warmup = static_cast<int>(next_int(100));
        } else if (arg == "--abtb-entries") {
            opt.abtbEntries =
                static_cast<std::uint32_t>(next_int(256));
        } else if (arg == "--seed") {
            opt.seed = static_cast<std::uint64_t>(next_int(42));
        } else if (arg == "--jobs") {
            const long n = next_int(0);
            if (n < 1) {
                std::fprintf(stderr,
                             "--jobs requires a count >= 1\n");
                return false;
            }
            opt.jobs = static_cast<unsigned>(n);
        } else if (arg == "--json-out") {
            if (i + 1 < argc)
                opt.jsonOut = argv[++i];
        } else if (arg.rfind("--", 0) == 0) {
            std::fprintf(stderr, "unknown option %s\n",
                         arg.c_str());
            return false;
        } else if (positional == 0) {
            if (opt.command == "replay" ||
                opt.command == "sweep") {
                opt.tracePath = arg;
            } else if (opt.command == "snapshot") {
                opt.subcommand = arg;
            } else {
                opt.workload = arg;
            }
            ++positional;
        } else if (positional == 1) {
            if (opt.command == "snapshot")
                opt.workload = arg;
            else
                opt.tracePath = arg;
            ++positional;
        } else if (positional == 2 &&
                   opt.command == "snapshot") {
            opt.tracePath = arg;
            ++positional;
        }
    }
    if (opt.command == "run" || opt.command == "record") {
        if (opt.workload.empty())
            return false;
    }
    if (opt.command == "record" || opt.command == "replay" ||
        opt.command == "sweep") {
        if (opt.tracePath.empty())
            return false;
    }
    if (opt.command == "snapshot") {
        if (opt.subcommand != "save" &&
            opt.subcommand != "restore")
            return false;
        if (opt.workload.empty() || opt.tracePath.empty())
            return false;
    }
    return true;
}

/** Write `doc` if --json-out was given; true unless I/O failed. */
bool
writeJson(const Options &opt, const stats::MetricsDocument &doc)
{
    if (opt.jsonOut.empty())
        return true;
    std::string error;
    if (!doc.writeFile(opt.jsonOut, &error)) {
        std::fprintf(stderr, "json-out: %s\n", error.c_str());
        return false;
    }
    std::fprintf(stderr, "json-out: wrote %s\n",
                 opt.jsonOut.c_str());
    return true;
}

workload::MachineConfig
machineFor(const Options &opt)
{
    workload::MachineConfig mc;
    mc.enhanced = opt.enhanced;
    mc.abtbEntries = opt.abtbEntries;
    mc.abtbAssoc = std::min(opt.abtbEntries, 4u);
    mc.explicitInvalidation = opt.explicitInval;
    mc.lazyBinding = !opt.eager;
    mc.aslr = opt.aslr;
    if (opt.arm)
        mc.pltStyle = linker::PltStyle::Arm;
    return mc;
}

int
cmdRun(const Options &opt)
{
    auto mc = machineFor(opt);
    mc.profileTrampolines = true;
    workload::Workbench wb(
        workload::profileByName(opt.workload, opt.seed), mc);
    wb.warmup(static_cast<std::uint32_t>(opt.warmup));
    for (int i = 0; i < opt.requests; ++i)
        wb.runRequest();

    const auto c = wb.core().counters();
    std::printf("workload %s (%s machine, %s trampolines)\n",
                opt.workload.c_str(),
                opt.enhanced ? "enhanced" : "base",
                opt.arm ? "ARM" : "x86-64");
    std::printf("%s", c.toString().c_str());
    std::printf("distinct trampolines:  %llu\n",
                (unsigned long long)
                    wb.distinctTrampolinesExecuted());
    if (wb.core().skipUnit()) {
        const auto &s = wb.core().skipUnit()->stats();
        const auto total =
            c.skippedTrampolines + c.trampolineJmps;
        std::printf("skip rate:             %.1f%%\n",
                    total ? 100.0 *
                                double(c.skippedTrampolines) /
                                double(total)
                          : 0.0);
        std::printf("store flushes:         %llu (%llu FP)\n",
                    (unsigned long long)s.storeFlushes,
                    (unsigned long long)s.falsePositiveFlushes);
        std::printf("hardware bytes:        %llu\n",
                    (unsigned long long)
                        wb.core().skipUnit()->hardwareBytes());
    }

    stats::MetricsDocument doc("dlsim_cli run");
    auto &run = doc.addRun(opt.workload);
    run.with("workload", opt.workload)
        .with("machine", opt.enhanced ? "enhanced" : "base")
        .with("requests", std::to_string(opt.requests))
        .with("seed", std::to_string(opt.seed));
    wb.reportMetrics(run.registry, "dlsim");
    return writeJson(opt, doc) ? 0 : 1;
}

int
cmdRecord(const Options &opt)
{
    auto mc = machineFor(opt);
    mc.core.tracePath = opt.tracePath;
    workload::Workbench wb(
        workload::profileByName(opt.workload, opt.seed), mc);
    // No warmup-discard: the trace must contain the lazy
    // resolutions, as the paper's Pin collections did.
    for (int i = 0; i < opt.requests; ++i)
        wb.runRequest();
    wb.core().closeTrace();
    std::printf("recorded %d requests of %s to %s\n",
                opt.requests, opt.workload.c_str(),
                opt.tracePath.c_str());

    stats::MetricsDocument doc("dlsim_cli record");
    auto &run = doc.addRun(opt.workload);
    run.with("workload", opt.workload)
        .with("machine", opt.enhanced ? "enhanced" : "base")
        .with("requests", std::to_string(opt.requests))
        .with("trace", opt.tracePath);
    wb.reportMetrics(run.registry, "dlsim");
    return writeJson(opt, doc) ? 0 : 1;
}

int
cmdReplay(const Options &opt)
{
    trace::TraceReader reader(opt.tracePath);
    if (!reader.good()) {
        std::fprintf(stderr, "cannot read trace %s: %s\n",
                     opt.tracePath.c_str(),
                     reader.errorString());
        return 1;
    }
    core::SkipUnitParams params;
    params.abtb.entries = opt.abtbEntries;
    params.abtb.assoc = std::min(opt.abtbEntries, 4u);
    if (opt.arm)
        params.patternWindow = 2;
    const auto r = trace::replaySkipUnit(reader, params);
    std::printf("events %llu, controls %llu, stores %llu\n",
                (unsigned long long)r.events,
                (unsigned long long)r.controlTransfers,
                (unsigned long long)r.stores);
    std::printf("trampoline executions %llu, would skip %llu "
                "(%.1f%%) with %u entries\n",
                (unsigned long long)r.trampolineExecutions,
                (unsigned long long)r.wouldSkip,
                100.0 * r.skipRate(), params.abtb.entries);

    stats::MetricsDocument doc("dlsim_cli replay");
    auto &run = doc.addRun("replay");
    run.with("trace", opt.tracePath)
        .with("abtb_entries",
              std::to_string(params.abtb.entries));
    run.registry.counter("dlsim.replay.events", r.events);
    run.registry.counter("dlsim.replay.control_transfers",
                         r.controlTransfers);
    run.registry.counter("dlsim.replay.stores", r.stores);
    run.registry.counter("dlsim.replay.trampoline_executions",
                         r.trampolineExecutions);
    run.registry.counter("dlsim.replay.would_skip", r.wouldSkip);
    run.registry.gauge("dlsim.replay.skip_rate", r.skipRate());
    return writeJson(opt, doc) ? 0 : 1;
}

int
cmdSweep(const Options &opt)
{
    {
        // Fail early with the serial diagnostic before spawning
        // any jobs.
        trace::TraceReader probe(opt.tracePath);
        if (!probe.good()) {
            std::fprintf(stderr, "cannot read trace %s: %s\n",
                         opt.tracePath.c_str(),
                         probe.errorString());
            return 1;
        }
    }
    const std::uint32_t sizes[] = {1u,  2u,   4u,   8u,
                                   16u, 32u,  64u,  128u,
                                   256u, 512u, 1024u};

    // Every sweep point is an independent job with its own
    // TraceReader (the reader is not shareable across threads);
    // results come back in submission order, so stdout and the
    // JSON document are byte-identical for every --jobs value.
    std::vector<std::function<trace::ReplayResult()>> work;
    for (const std::uint32_t entries : sizes) {
        work.push_back([entries, &opt] {
            trace::TraceReader reader(opt.tracePath);
            if (!reader.good())
                throw std::runtime_error("cannot read trace " +
                                         opt.tracePath);
            core::SkipUnitParams params;
            params.abtb.entries = entries;
            params.abtb.assoc = std::min(entries, 4u);
            if (opt.arm)
                params.patternWindow = 2;
            return trace::replaySkipUnit(reader, params);
        });
    }
    sim::JobRunner runner(opt.jobs);
    const auto results = runner.run(std::move(work));

    stats::MetricsDocument doc("dlsim_cli sweep");
    std::printf("%8s %10s %12s\n", "entries", "bytes",
                "skip rate");
    for (std::size_t i = 0; i < std::size(sizes); ++i) {
        const std::uint32_t entries = sizes[i];
        const trace::ReplayResult &r = results[i];
        std::printf("%8u %10u %11.1f%%\n", entries, entries * 12,
                    100.0 * r.skipRate());
        auto &run =
            doc.addRun("entries" + std::to_string(entries));
        run.with("trace", opt.tracePath)
            .with("abtb_entries", std::to_string(entries));
        run.registry.counter(
            "dlsim.replay.trampoline_executions",
            r.trampolineExecutions);
        run.registry.counter("dlsim.replay.would_skip",
                             r.wouldSkip);
        run.registry.gauge("dlsim.replay.skip_rate",
                           r.skipRate());
    }
    return writeJson(opt, doc) ? 0 : 1;
}

/** Build the Workbench both snapshot subcommands agree on. */
workload::Workbench
snapshotWorkbenchFor(const Options &opt,
                     workload::MachineConfig &mc_out)
{
    auto mc = machineFor(opt);
    mc.profileTrampolines = true;
    mc_out = mc;
    return workload::Workbench(
        workload::profileByName(opt.workload, opt.seed), mc);
}

int
cmdSnapshotSave(const Options &opt)
{
    workload::MachineConfig mc;
    auto wb = snapshotWorkbenchFor(opt, mc);
    wb.warmup(static_cast<std::uint32_t>(opt.warmup));
    const auto bytes = workload::snapshotWorkbench(wb);
    snapshot::writeFile(opt.tracePath, bytes);
    std::printf("snapshot: %s (%s machine) after %d warmup "
                "requests -> %s (%zu bytes)\n",
                opt.workload.c_str(),
                opt.enhanced ? "enhanced" : "base", opt.warmup,
                opt.tracePath.c_str(), bytes.size());
    return 0;
}

int
cmdSnapshotRestore(const Options &opt)
{
    workload::MachineConfig mc;
    auto wb = snapshotWorkbenchFor(opt, mc);
    const auto bytes = snapshot::readFile(opt.tracePath);
    workload::restoreWorkbench(wb, bytes.data(), bytes.size());
    for (int i = 0; i < opt.requests; ++i)
        wb.runRequest();

    const auto c = wb.core().counters();
    std::printf("workload %s restored from %s (%s machine)\n",
                opt.workload.c_str(), opt.tracePath.c_str(),
                opt.enhanced ? "enhanced" : "base");
    std::printf("%s", c.toString().c_str());
    std::printf("distinct trampolines:  %llu\n",
                (unsigned long long)
                    wb.distinctTrampolinesExecuted());

    stats::MetricsDocument doc("dlsim_cli snapshot restore");
    auto &run = doc.addRun(opt.workload);
    run.with("workload", opt.workload)
        .with("machine", opt.enhanced ? "enhanced" : "base")
        .with("requests", std::to_string(opt.requests))
        .with("seed", std::to_string(opt.seed))
        .with("snapshot", opt.tracePath);
    wb.reportMetrics(run.registry, "dlsim");
    return writeJson(opt, doc) ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    if (!parse(argc, argv, opt))
        return usage();
    try {
        if (opt.command == "run")
            return cmdRun(opt);
        if (opt.command == "record")
            return cmdRecord(opt);
        if (opt.command == "replay")
            return cmdReplay(opt);
        if (opt.command == "sweep")
            return cmdSweep(opt);
        if (opt.command == "snapshot")
            return opt.subcommand == "save"
                       ? cmdSnapshotSave(opt)
                       : cmdSnapshotRestore(opt);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    return usage();
}
