/**
 * @file
 * dlsim_ubench: simulator-throughput micro-benchmark.
 *
 * Reports host-side retired-instructions/second for the four
 * execution engines:
 *
 *   detailed          cpu::Core, per-instruction dispatch
 *   detailed+blocks   cpu::Core, basic-block dispatch
 *   refcore           check::RefCore functional fast-forward,
 *                     per-instruction engine
 *   refcore+blocks    check::RefCore, block-chained engine
 *
 * The RefCore rows run through sim::SampledExecution with a
 * degenerate 0:1:1000000000 sample spec — one detailed instruction
 * per billion fast-forwarded — so they exercise the exact
 * fast-forward machinery fig5 --sample rows use (including
 * functional resolver servicing), with detailed execution
 * contributing a negligible fraction.
 *
 * This is a tool for eyeballing dispatch-engine speedups on the
 * local host. It measures wall-clock, so it is deliberately NOT a
 * ctest (timing on shared CI hosts is noise); the reproducible
 * speedup record lives in BENCH_wallclock.json (bench_wallclock).
 *
 * Usage: dlsim_ubench [--profile NAME] [--warmup N] [--requests N]
 *                     [--seed N]
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "sim/sampled.hh"
#include "workload/engine.hh"
#include "workload/profiles.hh"

using namespace dlsim;

namespace
{

struct Options
{
    std::string profile = "apache";
    int warmup = 60;
    int requests = 300;
    std::uint64_t seed = 42;
};

[[noreturn]] void
usage(int code)
{
    std::fprintf(
        code == 0 ? stdout : stderr,
        "usage: dlsim_ubench [--profile apache|firefox|memcached|"
        "mysql]\n"
        "                    [--warmup N] [--requests N] "
        "[--seed N]\n"
        "\n"
        "Prints host retired-instructions/second for the detailed\n"
        "core and the RefCore fast-forward engine, each with block\n"
        "dispatch off and on. Wall-clock-based: run on an idle\n"
        "host; not a correctness test.\n");
    std::exit(code);
}

struct ModeResult
{
    std::uint64_t instructions = 0;
    double seconds = 0.0;

    double
    mips() const
    {
        return seconds > 0.0
                   ? static_cast<double>(instructions) / seconds /
                         1e6
                   : 0.0;
    }
};

/**
 * Time one engine: warm up (untimed, resolves lazy imports and
 * fills simulator-side caches), then run the measured request loop.
 */
ModeResult
runMode(const Options &opt, bool blocks, bool refcore)
{
    workload::MachineConfig mc;
    mc.enhanced = true;
    mc.core.blockDispatch = blocks;

    workload::Workbench wb(
        workload::profileByName(opt.profile, opt.seed), mc);
    if (refcore) {
        sim::SampleParams sp;
        sp.enabled = true;
        sp.warmup = 0;
        sp.detail = 1;
        sp.fastforward = 1000000000ull;
        wb.setSampling(sp);
    }
    wb.warmup(static_cast<std::uint32_t>(opt.warmup));

    ModeResult r;
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < opt.requests; ++i)
        r.instructions += wb.runRequest().instructions;
    const auto t1 = std::chrono::steady_clock::now();
    r.seconds = std::chrono::duration<double>(t1 - t0).count();
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "dlsim_ubench: %s requires a value\n",
                             arg.c_str());
                usage(2);
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h")
            usage(0);
        else if (arg == "--profile")
            opt.profile = value();
        else if (arg == "--warmup")
            opt.warmup = std::atoi(value());
        else if (arg == "--requests")
            opt.requests = std::atoi(value());
        else if (arg == "--seed")
            opt.seed =
                static_cast<std::uint64_t>(std::atoll(value()));
        else {
            std::fprintf(stderr,
                         "dlsim_ubench: unknown argument '%s'\n",
                         arg.c_str());
            usage(2);
        }
    }
    if (opt.warmup < 0 || opt.requests < 1) {
        std::fprintf(stderr,
                     "dlsim_ubench: --warmup must be >= 0 and "
                     "--requests >= 1\n");
        return 2;
    }

    std::printf("dlsim_ubench: profile=%s warmup=%d requests=%d "
                "seed=%llu\n\n",
                opt.profile.c_str(), opt.warmup, opt.requests,
                static_cast<unsigned long long>(opt.seed));

    struct Mode
    {
        const char *name;
        bool blocks;
        bool refcore;
    };
    static const Mode kModes[] = {
        {"detailed", false, false},
        {"detailed+blocks", true, false},
        {"refcore", false, true},
        {"refcore+blocks", true, true},
    };

    ModeResult results[4];
    for (int m = 0; m < 4; ++m)
        results[m] = runMode(opt, kModes[m].blocks,
                             kModes[m].refcore);

    std::printf("%-18s %14s %9s %12s %9s\n", "mode", "retired",
                "secs", "Minsts/sec", "speedup");
    for (int m = 0; m < 4; ++m) {
        // Speedup of the +blocks engine over its per-instruction
        // sibling (modes are paired: m^1 flips only `blocks`).
        const double base = results[m & ~1].mips();
        const double speedup =
            base > 0.0 ? results[m].mips() / base : 0.0;
        std::printf("%-18s %14llu %9.3f %12.2f %8.2fx\n",
                    kModes[m].name,
                    static_cast<unsigned long long>(
                        results[m].instructions),
                    results[m].seconds, results[m].mips(),
                    speedup);
    }

    // Block dispatch is an execution strategy: within each engine,
    // the +blocks run must retire exactly the instructions its
    // per-instruction sibling did. (Exact vs sampled counts may
    // differ — sampled resolver servicing is costed, not timed.)
    for (const int m : {1, 3}) {
        if (results[m].instructions != results[m - 1].instructions) {
            std::fprintf(stderr,
                         "\ndlsim_ubench: FAIL: %s retired %llu "
                         "instructions, %s retired %llu — "
                         "dispatch engines diverged\n",
                         kModes[m].name,
                         static_cast<unsigned long long>(
                             results[m].instructions),
                         kModes[m - 1].name,
                         static_cast<unsigned long long>(
                             results[m - 1].instructions));
            return 1;
        }
    }
    return 0;
}
