/**
 * @file
 * dlsim_fuzz: adversarial fuzzer for the ABTB correctness contract.
 *
 * Every case runs the workload under the LockstepChecker oracle
 * (src/check): a functional reference core re-executes the retired
 * stream and any architectural divergence, stale substitution, or
 * flush-accounting violation fails the case.
 *
 * Modes:
 *   dlsim_fuzz --smoke
 *       Run the deterministic smoke corpus (hand-picked archetypes +
 *       seeded cases) and assert the corpus actually exercised the
 *       mechanism (substitutions, store/coherence flushes > 0).
 *   dlsim_fuzz --inject-bug
 *       Demo: enable the buggySuppressStoreFlush fault injection and
 *       verify the oracle catches it; then verify the same case is
 *       clean without the bug. Exits 0 iff both hold.
 *   dlsim_fuzz --seeds A:B [--shrink-budget N]
 *       Fuzz seeds A..B via caseFromSeed. On failure, greedily
 *       shrink and print a replayable command line.
 *   dlsim_fuzz [case flags]
 *       Replay a single case (the command line printed on failure).
 */

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "check/fuzz.hh"

namespace
{

using dlsim::check::FuzzCase;
using dlsim::check::FuzzResult;

std::uint64_t
parseU64(const char *s)
{
    return std::strtoull(s, nullptr, 0);
}

void
printResult(const FuzzCase &c, const FuzzResult &r)
{
    std::cout << "case: " << dlsim::check::reproLine(c) << "\n"
              << "  " << (r.passed ? "PASS" : "FAIL") << "\n"
              << "  checked retires      " << r.stats.checkedRetires
              << "\n"
              << "  verified skips       "
              << r.stats.verifiedSubstitutions << "\n"
              << "  resolver replays     " << r.stats.resolverReplays
              << "\n"
              << "  walked insts         "
              << r.stats.walkedInstructions << "\n"
              << "  external writes      " << r.stats.externalWrites
              << "\n"
              << "  substitutions        " << r.substitutions << "\n"
              << "  store flushes        " << r.storeFlushes << "\n"
              << "  coherence flushes    " << r.coherenceFlushes
              << "\n"
              << "  ctx-switch flushes   " << r.contextSwitchFlushes
              << "\n"
              << "  explicit flushes     " << r.explicitFlushes
              << "\n";
    if (!r.passed)
        std::cout << r.failure << "\n";
}

int
runSmoke()
{
    const auto cases = dlsim::check::smokeCases();
    FuzzResult agg;
    int failures = 0;
    for (const auto &c : cases) {
        const auto r = dlsim::check::runCase(c);
        if (!r.passed) {
            ++failures;
            std::cerr << "smoke FAIL: "
                      << dlsim::check::reproLine(c) << "\n"
                      << r.failure << "\n";
        }
        agg.stats.checkedRetires += r.stats.checkedRetires;
        agg.stats.verifiedSubstitutions +=
            r.stats.verifiedSubstitutions;
        agg.stats.resolverReplays += r.stats.resolverReplays;
        agg.stats.externalWrites += r.stats.externalWrites;
        agg.stats.walkedInstructions += r.stats.walkedInstructions;
        agg.substitutions += r.substitutions;
        agg.storeFlushes += r.storeFlushes;
        agg.coherenceFlushes += r.coherenceFlushes;
        agg.contextSwitchFlushes += r.contextSwitchFlushes;
        agg.explicitFlushes += r.explicitFlushes;
    }

    std::cout << "smoke corpus: " << cases.size() << " cases, "
              << failures << " failures\n"
              << "  checked retires      "
              << agg.stats.checkedRetires << "\n"
              << "  verified skips       "
              << agg.stats.verifiedSubstitutions << "\n"
              << "  resolver replays     "
              << agg.stats.resolverReplays << "\n"
              << "  external writes      " << agg.stats.externalWrites
              << "\n"
              << "  substitutions        " << agg.substitutions
              << "\n"
              << "  store flushes        " << agg.storeFlushes << "\n"
              << "  coherence flushes    " << agg.coherenceFlushes
              << "\n"
              << "  ctx-switch flushes   " << agg.contextSwitchFlushes
              << "\n"
              << "  explicit flushes     " << agg.explicitFlushes
              << "\n";

    if (failures)
        return 1;

    // The corpus must actually exercise the contract, or a silent
    // regression (e.g. the mechanism never engaging) would read as
    // "all clean".
    const auto require = [&](bool ok, const char *what) {
        if (!ok) {
            std::cerr << "smoke corpus too weak: " << what
                      << " is zero\n";
            ++failures;
        }
    };
    require(agg.stats.checkedRetires > 0, "checked retires");
    require(agg.stats.verifiedSubstitutions > 0, "verified skips");
    require(agg.stats.resolverReplays > 0, "resolver replays");
    require(agg.stats.externalWrites > 0, "external writes");
    require(agg.substitutions > 0, "substitutions");
    require(agg.storeFlushes > 0, "store flushes");
    require(agg.coherenceFlushes > 0, "coherence flushes");
    require(agg.contextSwitchFlushes > 0, "context-switch flushes");
    require(agg.explicitFlushes > 0, "explicit flushes");
    return failures ? 1 : 0;
}

int
runInjectBug()
{
    // A hot, small import set keeps ABTB entries live; rebind events
    // rewrite their GOT slots mid-run. With the §3.2 store flush
    // suppressed, a stale entry survives and the next substitution
    // diverges from the architectural path.
    FuzzCase c;
    c.seed = 7001;
    c.requests = 14;
    c.eventsMask = dlsim::check::EvRebind;
    c.eventCount = 10;
    c.numLibs = 2;
    c.funcsPerLib = 8;
    c.calledImports = 6;

    FuzzCase buggy = c;
    buggy.injectFlushSuppression = true;
    const auto caught = dlsim::check::runCase(buggy);
    if (caught.passed) {
        std::cerr << "inject-bug: oracle FAILED to catch the "
                     "suppressed store flush\n";
        printResult(buggy, caught);
        return 1;
    }
    std::cout << "inject-bug: oracle caught the planted bug:\n"
              << caught.failure << "\n";

    const auto clean = dlsim::check::runCase(c);
    if (!clean.passed) {
        std::cerr << "inject-bug: control case (no bug) FAILED:\n"
                  << clean.failure << "\n";
        return 1;
    }
    std::cout << "inject-bug: control case clean ("
              << clean.stats.verifiedSubstitutions
              << " verified skips)\n";
    return 0;
}

int
runSeeds(std::uint64_t lo, std::uint64_t hi,
         std::uint32_t shrink_budget)
{
    int failures = 0;
    for (std::uint64_t seed = lo; seed <= hi; ++seed) {
        const auto c = dlsim::check::caseFromSeed(seed);
        const auto r = dlsim::check::runCase(c);
        if (r.passed) {
            std::cout << "seed " << seed << ": PASS ("
                      << r.stats.checkedRetires << " retires, "
                      << r.stats.verifiedSubstitutions
                      << " verified skips)\n";
            continue;
        }
        ++failures;
        std::string why = r.failure;
        const auto small =
            dlsim::check::shrinkCase(c, shrink_budget, &why);
        std::cerr << "seed " << seed << ": FAIL\n"
                  << why << "\n"
                  << "reproduce: " << dlsim::check::reproLine(small)
                  << "\n";
    }
    return failures ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    bool inject = false;
    bool have_seeds = false;
    std::uint64_t seed_lo = 0, seed_hi = 0;
    std::uint32_t shrink_budget = 48;
    FuzzCase c;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::cerr << arg << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--smoke") {
            smoke = true;
        } else if (arg == "--inject-bug") {
            inject = true;
        } else if (arg == "--seeds") {
            const std::string v = next();
            const auto colon = v.find(':');
            seed_lo = parseU64(v.c_str());
            seed_hi = colon == std::string::npos
                          ? seed_lo
                          : parseU64(v.c_str() + colon + 1);
            have_seeds = true;
        } else if (arg == "--shrink-budget") {
            shrink_budget =
                static_cast<std::uint32_t>(parseU64(next()));
        } else if (arg == "--seed") {
            c.seed = parseU64(next());
        } else if (arg == "--cores") {
            c.cores = static_cast<std::uint32_t>(parseU64(next()));
        } else if (arg == "--requests") {
            c.requests =
                static_cast<std::uint32_t>(parseU64(next()));
        } else if (arg == "--server") {
            c.server = true;
        } else if (arg == "--tenants") {
            c.tenants =
                static_cast<std::uint32_t>(parseU64(next()));
        } else if (arg == "--events") {
            c.eventsMask =
                static_cast<std::uint32_t>(parseU64(next()));
        } else if (arg == "--event-count") {
            c.eventCount =
                static_cast<std::uint32_t>(parseU64(next()));
        } else if (arg == "--abtb-entries") {
            c.abtbEntries =
                static_cast<std::uint32_t>(parseU64(next()));
        } else if (arg == "--abtb-assoc") {
            c.abtbAssoc =
                static_cast<std::uint32_t>(parseU64(next()));
        } else if (arg == "--bloom-bits") {
            c.bloomBits =
                static_cast<std::uint32_t>(parseU64(next()));
        } else if (arg == "--bloom-hashes") {
            c.bloomHashes =
                static_cast<std::uint32_t>(parseU64(next()));
        } else if (arg == "--num-libs") {
            c.numLibs = static_cast<std::uint32_t>(parseU64(next()));
        } else if (arg == "--funcs-per-lib") {
            c.funcsPerLib =
                static_cast<std::uint32_t>(parseU64(next()));
        } else if (arg == "--called-imports") {
            c.calledImports =
                static_cast<std::uint32_t>(parseU64(next()));
        } else if (arg == "--steps") {
            c.stepsPerRequest =
                static_cast<std::uint32_t>(parseU64(next()));
        } else if (arg == "--explicit-invalidation") {
            c.explicitInvalidation = true;
        } else if (arg == "--asid-retention") {
            c.asidRetention = true;
        } else if (arg == "--arm-plt") {
            c.armPlt = true;
        } else if (arg == "--eager-binding") {
            c.lazyBinding = false;
        } else if (arg == "--aslr") {
            c.aslr = true;
        } else if (arg == "--inject-bug-config") {
            c.injectFlushSuppression = true;
        } else {
            std::cerr << "unknown flag " << arg << "\n"
                      << "modes: --smoke | --inject-bug | "
                         "--seeds A:B [--shrink-budget N] | "
                         "[case flags] (see docs/testing.md)\n";
            return 2;
        }
    }

    if (smoke)
        return runSmoke();
    if (inject)
        return runInjectBug();
    if (have_seeds)
        return runSeeds(seed_lo, seed_hi, shrink_budget);

    const auto r = dlsim::check::runCase(c);
    printResult(c, r);
    return r.passed ? 0 : 1;
}
