/**
 * @file
 * Wall-clock comparison of the simulator's execution strategies on
 * the same Figure-5-style measurement grid:
 *
 *   serial    --jobs 1, exact simulation, block dispatch on
 *   noblocks  --jobs 1, exact simulation, block dispatch off
 *             (byte-identical to serial: blocks are a pure
 *             execution-strategy change, not a model change)
 *   parallel  --jobs N, exact simulation (byte-identical to serial)
 *   cold      snapshot sweep paying warm-up + serialization
 *   warm      the same sweep fanned out from the serialized bytes
 *   sampled   --jobs N with sampled execution (detailed windows +
 *             functional fast-forward; see docs/performance.md)
 *   server    the OS-layer stack (os::Kernel scheduler + sockets +
 *             tenant churn, docs/server.md) serving requests end to
 *             end, base and enhanced arms: requests/sec wall-clock
 *             throughput plus p50/p99 latency in virtual cycles
 *
 * Every row records its wall-clock seconds and the job count it
 * actually ran with. Exact rows must be byte-identical across job
 * counts; cold and warm must be byte-identical to each other. The
 * sampled row is an estimator, so instead of byte-identity it
 * reports measured-vs-extrapolated error against the exact grid
 * (per-cell IPC relative error and ABTB skip-rate absolute error,
 * mean and max).
 *
 * The speedups are a property of the host (cores, load); the
 * byte-identical checks and the error bands are properties of dlsim
 * and must hold everywhere. The serial-vs-noblocks pair makes the
 * block-dispatch speedup claim reproducible from the JSON alone,
 * alongside the block-cache hit/build/flush gauges
 * (dlsim.linker.blockcache.*) aggregated over the serial grid.
 *
 * Usage: bench_wallclock [--jobs N] [--quick] [--sample W:D:F]
 *                        [--json-out FILE]
 * FILE defaults to BENCH_wallclock.json in the working directory.
 * Without --sample the sampled row uses a default spec chosen for
 * this grid's request sizes.
 */

#include <chrono>
#include <cmath>

#include "common.hh"

#include "os/server.hh"

using namespace dlsim;
using namespace dlsim::bench;

namespace
{

const char *Profiles[] = {"apache", "firefox", "memcached"};
const int Warmups[] = {40, 80, 30};
const int Requests[] = {40, 30, 40};
const std::uint32_t Sizes[] = {4u, 16u, 64u, 256u};

struct Cell
{
    std::uint32_t entries;
    int profile;
};

std::vector<Cell>
gridCells()
{
    std::vector<Cell> cells;
    for (const std::uint32_t entries : Sizes)
        for (int i = 0; i < 3; ++i)
            cells.push_back({entries, i});
    return cells;
}

struct GridRun
{
    std::string json;
    double seconds = 0;
    std::vector<ArmResult> arms;
};

GridRun
collectGrid(const char *doc_name,
            const std::vector<Cell> &cells, unsigned jobs,
            std::vector<std::function<ArmResult()>> work)
{
    const auto start = std::chrono::steady_clock::now();
    sim::JobRunner runner(jobs);
    auto arms = runner.run(std::move(work));
    const auto stop = std::chrono::steady_clock::now();

    stats::MetricsDocument doc(doc_name);
    for (std::size_t c = 0; c < cells.size(); ++c) {
        auto &run = doc.addRun(
            std::string(Profiles[cells[c].profile]) + ".entries" +
            std::to_string(cells[c].entries));
        run.with("workload", Profiles[cells[c].profile])
            .with("machine", "enhanced")
            .with("abtb_entries",
                  std::to_string(cells[c].entries));
        run.registry = arms[c].registry;
    }

    GridRun result;
    result.json = doc.toJson();
    result.seconds =
        std::chrono::duration<double>(stop - start).count();
    result.arms = std::move(arms);
    return result;
}

/** One pre-built program per profile, shared by every grid cell of
 *  that profile (program generation is deterministic in the
 *  WorkloadParams, so arms differing only in machine config can
 *  reuse it instead of regenerating it per task). */
struct SharedPrograms
{
    workload::WorkloadParams wls[3];
    std::shared_ptr<const workload::BuiltProgram> programs[3];
};

SharedPrograms
buildShared(const BenchArgs &args)
{
    SharedPrograms sp;
    for (int i = 0; i < 3; ++i) {
        sp.wls[i] = workload::profileByName(Profiles[i]);
        sp.wls[i].seed = args.seed();
        sp.programs[i] =
            std::make_shared<const workload::BuiltProgram>(
                workload::buildProgram(sp.wls[i]));
    }
    return sp;
}

/** Run the whole grid on `jobs` threads; serialise the document.
 *  `sample` enables sampled execution for every cell; `blocks`
 *  selects the dispatch engine (block-level vs per-instruction),
 *  which must not change any metric byte. */
GridRun
runGrid(const BenchArgs &args, unsigned jobs,
        const SharedPrograms &shared,
        const sim::SampleParams &sample = {}, bool blocks = true)
{
    const auto cells = gridCells();
    std::vector<std::function<ArmResult()>> work;
    work.reserve(cells.size());
    for (const Cell &cell : cells) {
        work.push_back([cell, &args, &shared, &sample, blocks] {
            auto mc = enhancedMachine();
            mc.core.blockDispatch = blocks;
            mc.abtbEntries = cell.entries;
            mc.abtbAssoc = std::min(cell.entries, 4u);
            return runArm(shared.wls[cell.profile], mc,
                          args.scaled(Warmups[cell.profile]),
                          args.scaled(Requests[cell.profile]),
                          sample, shared.programs[cell.profile]);
        });
    }
    return collectGrid(sample.enabled
                           ? "bench_wallclock sampled grid"
                           : "bench_wallclock grid",
                       cells, jobs, std::move(work));
}

/** The same grid fanned out from shared warm snapshot bytes. */
GridRun
runSnapshotGrid(const BenchArgs &args, unsigned jobs,
                const SharedPrograms &shared,
                const workload::MachineConfig &ref_mc,
                const std::vector<std::uint8_t> (&states)[3])
{
    const auto cells = gridCells();
    std::vector<std::function<ArmResult()>> work;
    work.reserve(cells.size());
    for (const Cell &cell : cells) {
        work.push_back([cell, &args, &shared, &ref_mc, &states] {
            auto mc = enhancedMachine();
            mc.abtbEntries = cell.entries;
            mc.abtbAssoc = std::min(cell.entries, 4u);
            return runArmFromState(
                states[cell.profile], shared.wls[cell.profile],
                ref_mc, mc,
                args.scaled(Requests[cell.profile]),
                sim::SampleParams{},
                shared.programs[cell.profile]);
        });
    }
    return collectGrid("bench_wallclock snapshot grid", cells,
                       jobs, std::move(work));
}

double
skipRate(const cpu::PerfCounters &c)
{
    const double den = static_cast<double>(c.trampolineJmps +
                                           c.skippedTrampolines);
    return den == 0.0 ? 0.0 : c.skippedTrampolines / den;
}

/** Per-cell sampled-vs-exact error summary. */
struct ErrorReport
{
    double ipcErrMean = 0, ipcErrMax = 0;
    double skipErrMean = 0, skipErrMax = 0;
};

ErrorReport
compareGrids(const GridRun &exact, const GridRun &sampled)
{
    ErrorReport rep;
    const std::size_t n = exact.arms.size();
    for (std::size_t c = 0; c < n; ++c) {
        const double exact_ipc = exact.arms[c].counters.ipc();
        const auto *g = sampled.arms[c].registry.find(
            "dlsim.sampled.extrapolated_ipc");
        const double sampled_ipc = g ? g->gauge : 0.0;
        const double ipc_err =
            exact_ipc > 0
                ? std::abs(sampled_ipc - exact_ipc) / exact_ipc
                : 0.0;
        const double skip_err =
            std::abs(skipRate(sampled.arms[c].counters) -
                     skipRate(exact.arms[c].counters));
        rep.ipcErrMean += ipc_err;
        rep.skipErrMean += skip_err;
        rep.ipcErrMax = std::max(rep.ipcErrMax, ipc_err);
        rep.skipErrMax = std::max(rep.skipErrMax, skip_err);
    }
    if (n > 0) {
        rep.ipcErrMean /= static_cast<double>(n);
        rep.skipErrMean /= static_cast<double>(n);
    }
    return rep;
}

/** One OS-layer server arm, timed end to end (workbench build +
 *  kernel run). The full experiment lives in bench/server_traffic;
 *  this row only measures simulator throughput on that stack. The
 *  latency percentiles are client-observed virtual cycles, so they
 *  are host-independent; requests/sec is the host-dependent number
 *  this benchmark exists to record. */
struct ServerRow
{
    double seconds = 0;
    std::uint64_t requests = 0;
    double reqPerSec = 0;
    double p50 = 0, p99 = 0;
};

ServerRow
runServerRow(const BenchArgs &args,
             const workload::WorkloadParams &wl,
             workload::MachineConfig mc, std::uint64_t requests)
{
    mc.core.blockDispatch = args.blocks();
    const auto start = std::chrono::steady_clock::now();
    workload::Workbench wb(wl, mc);

    sim::MultiCoreParams mp;
    mp.numCores = 2;
    mp.core = workload::makeCoreParams(mc);

    os::ServerParams sp;
    sp.workers = 3;
    sp.clients = 6;
    sp.tenants = 3;
    sp.requests = requests;
    sp.churnPeriod = std::max<std::uint64_t>(1, requests / 6);
    sp.seed = args.seed();
    os::Server server(wb, mp, sp);
    server.run();
    const auto stop = std::chrono::steady_clock::now();

    ServerRow row;
    row.seconds =
        std::chrono::duration<double>(stop - start).count();
    row.requests = server.stats().requestsServed;
    row.reqPerSec =
        row.seconds > 0
            ? static_cast<double>(row.requests) / row.seconds
            : 0.0;
    row.p50 = server.latency().percentile(0.50);
    row.p99 = server.latency().percentile(0.99);
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs args("bench_wallclock", argc, argv);
    banner("Runner wall-clock — serial vs --jobs N vs sampled",
           "dlsim infrastructure (docs/performance.md)");

    const unsigned jobs = args.jobs();
    std::printf("grid: 12 arms; host threads for parallel run: "
                "%u\n\n",
                jobs);

    const SharedPrograms shared = buildShared(args);

    const auto serial = runGrid(args, 1, shared, {}, args.blocks());
    std::printf("serial   (--jobs 1): %.3f s\n", serial.seconds);
    const auto parallel =
        runGrid(args, jobs, shared, {}, args.blocks());
    std::printf("parallel (--jobs %u): %.3f s\n", jobs,
                parallel.seconds);

    if (serial.json != parallel.json) {
        std::fprintf(stderr,
                     "FAIL: serial and parallel runs produced "
                     "different metric documents\n");
        return 1;
    }
    std::printf("documents byte-identical: yes (%zu bytes)\n",
                serial.json.size());
    const double speedup =
        parallel.seconds > 0 ? serial.seconds / parallel.seconds
                             : 0.0;
    std::printf("speedup: %.2fx\n\n", speedup);

    // Block dispatch off, same grid, one thread: the dispatch
    // engine is a pure execution strategy, so the document must be
    // byte-identical to the serial (blocks-on) run; the seconds
    // ratio is the block-dispatch speedup this JSON records.
    const auto noblocks = runGrid(args, 1, shared, {}, false);
    std::printf("noblocks (--jobs 1, per-instruction dispatch): "
                "%.3f s\n",
                noblocks.seconds);
    if (serial.json != noblocks.json) {
        std::fprintf(stderr,
                     "FAIL: block and per-instruction dispatch "
                     "produced different metric documents\n");
        return 1;
    }
    std::printf("documents byte-identical: yes (%zu bytes)\n",
                noblocks.json.size());
    const double blockSpeedup =
        serial.seconds > 0 ? noblocks.seconds / serial.seconds
                           : 0.0;
    std::printf("block dispatch speedup: %.2fx\n", blockSpeedup);

    // Block-cache effectiveness over the serial (blocks-on) grid.
    std::uint64_t blockHits = 0, blockBuilds = 0, blockFlushes = 0;
    for (const ArmResult &arm : serial.arms) {
        blockHits += arm.blockHits;
        blockBuilds += arm.blockBuilds;
        blockFlushes += arm.blockFlushes;
    }
    const double blockHitRate =
        blockHits + blockBuilds > 0
            ? static_cast<double>(blockHits) /
                  static_cast<double>(blockHits + blockBuilds)
            : 0.0;
    std::printf("block cache: %llu hits, %llu builds, %llu "
                "flushes (hit rate %.4f)\n\n",
                static_cast<unsigned long long>(blockHits),
                static_cast<unsigned long long>(blockBuilds),
                static_cast<unsigned long long>(blockFlushes),
                blockHitRate);

    // Cold vs warm snapshot sweep. The cold pass pays for the
    // warm-up simulations (once per workload) plus serialization;
    // the warm pass starts from the bytes the cold pass produced —
    // the cross-process --from-snapshot flow, minus the disk.
    const workload::MachineConfig refMc = enhancedMachine();
    std::vector<std::uint8_t> states[3];
    const auto coldStart = std::chrono::steady_clock::now();
    for (int i = 0; i < 3; ++i) {
        workload::Workbench wb(shared.wls[i], refMc,
                               shared.programs[i]);
        wb.warmup(
            static_cast<std::uint32_t>(args.scaled(Warmups[i])));
        states[i] = workload::snapshotWorkbench(wb);
    }
    const auto coldWarmupStop = std::chrono::steady_clock::now();
    const auto cold =
        runSnapshotGrid(args, jobs, shared, refMc, states);
    const double coldSeconds =
        std::chrono::duration<double>(coldWarmupStop - coldStart)
            .count() +
        cold.seconds;
    std::printf("cold  (warm-up + snapshot + grid): %.3f s\n",
                coldSeconds);
    const auto warm =
        runSnapshotGrid(args, jobs, shared, refMc, states);
    std::printf("warm  (grid from snapshot bytes):  %.3f s\n",
                warm.seconds);

    if (cold.json != warm.json) {
        std::fprintf(stderr,
                     "FAIL: cold and warm snapshot sweeps "
                     "produced different metric documents\n");
        return 1;
    }
    std::printf("documents byte-identical: yes (%zu bytes)\n",
                cold.json.size());
    const double warmSpeedup =
        warm.seconds > 0 ? coldSeconds / warm.seconds : 0.0;
    std::printf("warm speedup: %.2fx\n\n", warmSpeedup);

    // Sampled grid: same cells, sampled execution. Default spec
    // sized for this grid's request lengths; --sample overrides.
    sim::SampleParams sample = args.sample();
    if (!sample.enabled) {
        // Per-window warmup (W) dominates the accuracy of this
        // grid's short arms: it retrains caches and the ABTB after
        // each fast-forward gap before CPI is measured. This spec
        // measured ~2.5x over serial exact with ~0.1 mean IPC
        // error on the reference host; docs/performance.md tables
        // the trade-off.
        sim::SampleParams::parse("20000:20000:300000", sample);
    }
    const auto sampled =
        runGrid(args, jobs, shared, sample, args.blocks());
    std::printf("sampled  (--jobs %u, %s): %.3f s\n", jobs,
                sample.spec().c_str(), sampled.seconds);
    const double sampledSpeedup =
        sampled.seconds > 0 ? serial.seconds / sampled.seconds
                            : 0.0;
    std::printf("sampled speedup vs serial exact: %.2fx\n",
                sampledSpeedup);
    const ErrorReport err = compareGrids(serial, sampled);
    std::printf("sampled ipc error:  mean %.3f  max %.3f\n",
                err.ipcErrMean, err.ipcErrMax);
    std::printf("sampled skip error: mean %.3f  max %.3f\n",
                err.skipErrMean, err.skipErrMax);

    // OS-layer server throughput: the kernel scheduler + sockets +
    // tenant-churn stack serving requests end to end, base vs
    // enhanced (ASID-retention) machine.
    const std::uint64_t serverRequests =
        args.quick() ? 240 : 20000;
    auto serverWl = workload::memcachedProfile(args.seed());
    serverWl.seed = args.seed();
    const ServerRow serverBase =
        runServerRow(args, serverWl, baseMachine(),
                     serverRequests);
    auto serverMc = enhancedMachine();
    serverMc.asidRetention = true;
    const ServerRow serverEnh =
        runServerRow(args, serverWl, serverMc, serverRequests);
    std::printf("\nserver   (os layer, %llu requests/arm):\n",
                static_cast<unsigned long long>(serverRequests));
    const auto printServer = [](const char *name,
                                const ServerRow &r) {
        std::printf("  %-8s %.3f s, %8.0f req/s, p50 %.0f, "
                    "p99 %.0f virt cycles\n",
                    name, r.seconds, r.reqPerSec, r.p50, r.p99);
    };
    printServer("base", serverBase);
    printServer("enhanced", serverEnh);

    stats::MetricsDocument doc("bench_wallclock");
    const char *grid_desc = "fig5-style, 12 arms";

    auto &serialRun = doc.addRun("serial");
    serialRun.with("grid", grid_desc)
        .with("jobs", "1")
        .with("blocks", args.blocks() ? "1" : "0");
    serialRun.registry.gauge("dlsim.wallclock.seconds",
                             serial.seconds);
    serialRun.registry.counter("dlsim.linker.blockcache.hits",
                               blockHits);
    serialRun.registry.counter("dlsim.linker.blockcache.builds",
                               blockBuilds);
    serialRun.registry.counter("dlsim.linker.blockcache.flushes",
                               blockFlushes);
    serialRun.registry.gauge("dlsim.linker.blockcache.hit_rate",
                             blockHitRate);

    auto &noblocksRun = doc.addRun("serial.noblocks");
    noblocksRun.with("grid", grid_desc)
        .with("jobs", "1")
        .with("blocks", "0")
        .with("byte_identical", "1");
    noblocksRun.registry.gauge("dlsim.wallclock.seconds",
                               noblocks.seconds);
    noblocksRun.registry.gauge("dlsim.wallclock.block_speedup",
                               blockSpeedup);

    auto &parallelRun = doc.addRun("parallel");
    parallelRun.with("grid", grid_desc)
        .with("jobs", std::to_string(jobs))
        .with("byte_identical", "1");
    parallelRun.registry.gauge("dlsim.wallclock.seconds",
                               parallel.seconds);
    parallelRun.registry.gauge("dlsim.wallclock.speedup", speedup);

    auto &coldRun = doc.addRun("snapshot.cold");
    coldRun.with("grid", grid_desc)
        .with("jobs", std::to_string(jobs));
    coldRun.registry.gauge("dlsim.wallclock.seconds", coldSeconds);

    auto &warmRun = doc.addRun("snapshot.warm");
    warmRun.with("grid", grid_desc)
        .with("jobs", std::to_string(jobs))
        .with("byte_identical", "1");
    warmRun.registry.gauge("dlsim.wallclock.seconds",
                           warm.seconds);
    warmRun.registry.gauge("dlsim.wallclock.speedup", warmSpeedup);

    auto &sampledRun = doc.addRun("sampled");
    sampledRun.with("grid", grid_desc)
        .with("jobs", std::to_string(jobs))
        .with("sampled", "1")
        .with("sample", sample.spec());
    sampledRun.registry.gauge("dlsim.wallclock.seconds",
                              sampled.seconds);
    sampledRun.registry.gauge("dlsim.wallclock.speedup",
                              sampledSpeedup);
    sampledRun.registry.gauge("dlsim.sampled.ipc_err_mean",
                              err.ipcErrMean);
    sampledRun.registry.gauge("dlsim.sampled.ipc_err_max",
                              err.ipcErrMax);
    sampledRun.registry.gauge("dlsim.sampled.skip_err_mean",
                              err.skipErrMean);
    sampledRun.registry.gauge("dlsim.sampled.skip_err_max",
                              err.skipErrMax);

    const auto addServerRun = [&](const char *machine,
                                  const ServerRow &r) {
        auto &run = doc.addRun(std::string("server.") + machine);
        run.with("grid", "os-layer server, 2 arms")
            .with("machine", machine)
            .with("requests", std::to_string(r.requests));
        run.registry.gauge("dlsim.wallclock.seconds", r.seconds);
        run.registry.gauge("dlsim.os.server.requests_per_sec",
                           r.reqPerSec);
        run.registry.gauge("dlsim.os.server.latency_p50", r.p50);
        run.registry.gauge("dlsim.os.server.latency_p99", r.p99);
    };
    addServerRun("base", serverBase);
    addServerRun("enhanced", serverEnh);

    const std::string path = args.jsonOut().empty()
                                 ? "BENCH_wallclock.json"
                                 : args.jsonOut();
    std::string error;
    if (!doc.writeFile(path, &error)) {
        std::fprintf(stderr, "write: %s\n", error.c_str());
        return 1;
    }
    std::printf("wrote %s\n", path.c_str());
    return 0;
}
