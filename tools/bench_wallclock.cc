/**
 * @file
 * Wall-clock comparison of the serial and parallel experiment
 * runners: run the same Figure-5-style measurement grid with
 * `--jobs 1` and with `--jobs N`, require the two metric documents
 * to be byte-identical, and record both wall-clock times (and the
 * speedup) into BENCH_wallclock.json.
 *
 * The speedup is a property of the host (cores, load); the
 * byte-identical check is a property of dlsim and must hold
 * everywhere.
 *
 * Usage: bench_wallclock [--jobs N] [--quick] [--json-out FILE]
 * FILE defaults to BENCH_wallclock.json in the working directory.
 */

#include <chrono>

#include "common.hh"

using namespace dlsim;
using namespace dlsim::bench;

namespace
{

struct GridRun
{
    std::string json;
    double seconds = 0;
};

/** Run the whole grid on `jobs` threads; serialise the document. */
GridRun
runGrid(const BenchArgs &args, unsigned jobs)
{
    const char *profiles[] = {"apache", "firefox", "memcached"};
    const int warmups[] = {40, 80, 30};
    const int requests[] = {40, 30, 40};
    const std::uint32_t sizes[] = {4u, 16u, 64u, 256u};

    struct Cell
    {
        std::uint32_t entries;
        int profile;
    };
    std::vector<Cell> cells;
    for (const std::uint32_t entries : sizes)
        for (int i = 0; i < 3; ++i)
            cells.push_back({entries, i});

    std::vector<std::function<ArmResult()>> work;
    work.reserve(cells.size());
    for (const Cell &cell : cells) {
        work.push_back([cell, &args, &profiles, &warmups,
                        &requests] {
            auto mc = enhancedMachine();
            mc.abtbEntries = cell.entries;
            mc.abtbAssoc = std::min(cell.entries, 4u);
            return runArm(
                workload::profileByName(profiles[cell.profile]),
                mc, args.scaled(warmups[cell.profile]),
                args.scaled(requests[cell.profile]));
        });
    }

    const auto start = std::chrono::steady_clock::now();
    sim::JobRunner runner(jobs);
    const auto arms = runner.run(std::move(work));
    const auto stop = std::chrono::steady_clock::now();

    stats::MetricsDocument doc("bench_wallclock grid");
    for (std::size_t c = 0; c < cells.size(); ++c) {
        auto &run = doc.addRun(
            std::string(profiles[cells[c].profile]) + ".entries" +
            std::to_string(cells[c].entries));
        run.with("workload", profiles[cells[c].profile])
            .with("machine", "enhanced")
            .with("abtb_entries",
                  std::to_string(cells[c].entries));
        run.registry = arms[c].registry;
    }

    GridRun result;
    result.json = doc.toJson();
    result.seconds =
        std::chrono::duration<double>(stop - start).count();
    return result;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs args("bench_wallclock", argc, argv);
    banner("Runner wall-clock — serial vs --jobs N",
           "dlsim infrastructure (docs/performance.md)");

    const unsigned jobs = args.jobs();
    std::printf("grid: 12 arms; host threads for parallel run: "
                "%u\n\n",
                jobs);

    const auto serial = runGrid(args, 1);
    std::printf("serial   (--jobs 1): %.3f s\n", serial.seconds);
    const auto parallel = runGrid(args, jobs);
    std::printf("parallel (--jobs %u): %.3f s\n", jobs,
                parallel.seconds);

    if (serial.json != parallel.json) {
        std::fprintf(stderr,
                     "FAIL: serial and parallel runs produced "
                     "different metric documents\n");
        return 1;
    }
    std::printf("documents byte-identical: yes (%zu bytes)\n",
                serial.json.size());
    const double speedup =
        parallel.seconds > 0 ? serial.seconds / parallel.seconds
                             : 0.0;
    std::printf("speedup: %.2fx\n", speedup);

    stats::MetricsDocument doc("bench_wallclock");
    auto &run = doc.addRun("wallclock");
    run.with("grid", "fig5-style, 12 arms")
        .with("jobs", std::to_string(jobs))
        .with("byte_identical", "1");
    run.registry.gauge("dlsim.wallclock.serial_seconds",
                       serial.seconds);
    run.registry.gauge("dlsim.wallclock.parallel_seconds",
                       parallel.seconds);
    run.registry.gauge("dlsim.wallclock.speedup", speedup);
    run.registry.counter("dlsim.wallclock.jobs", jobs);

    const std::string path = args.jsonOut().empty()
                                 ? "BENCH_wallclock.json"
                                 : args.jsonOut();
    std::string error;
    if (!doc.writeFile(path, &error)) {
        std::fprintf(stderr, "write: %s\n", error.c_str());
        return 1;
    }
    std::printf("wrote %s\n", path.c_str());
    return 0;
}
