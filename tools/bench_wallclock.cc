/**
 * @file
 * Wall-clock comparison of the serial and parallel experiment
 * runners: run the same Figure-5-style measurement grid with
 * `--jobs 1` and with `--jobs N`, require the two metric documents
 * to be byte-identical, and record both wall-clock times (and the
 * speedup) into BENCH_wallclock.json.
 *
 * Also compares cold vs warm snapshot sweeps: the cold pass
 * simulates each workload's warm-up and serializes the machine, the
 * warm pass fans the same grid out from the already-serialized
 * bytes (what `--from-snapshot` does across process runs). The two
 * passes must produce byte-identical documents; the warm one skips
 * every warm-up simulation.
 *
 * The speedups are a property of the host (cores, load); the
 * byte-identical checks are a property of dlsim and must hold
 * everywhere.
 *
 * Usage: bench_wallclock [--jobs N] [--quick] [--json-out FILE]
 * FILE defaults to BENCH_wallclock.json in the working directory.
 */

#include <chrono>

#include "common.hh"

using namespace dlsim;
using namespace dlsim::bench;

namespace
{

const char *Profiles[] = {"apache", "firefox", "memcached"};
const int Warmups[] = {40, 80, 30};
const int Requests[] = {40, 30, 40};
const std::uint32_t Sizes[] = {4u, 16u, 64u, 256u};

struct Cell
{
    std::uint32_t entries;
    int profile;
};

std::vector<Cell>
gridCells()
{
    std::vector<Cell> cells;
    for (const std::uint32_t entries : Sizes)
        for (int i = 0; i < 3; ++i)
            cells.push_back({entries, i});
    return cells;
}

struct GridRun
{
    std::string json;
    double seconds = 0;
};

GridRun
collectGrid(const char *doc_name,
            const std::vector<Cell> &cells, unsigned jobs,
            std::vector<std::function<ArmResult()>> work)
{
    const auto start = std::chrono::steady_clock::now();
    sim::JobRunner runner(jobs);
    const auto arms = runner.run(std::move(work));
    const auto stop = std::chrono::steady_clock::now();

    stats::MetricsDocument doc(doc_name);
    for (std::size_t c = 0; c < cells.size(); ++c) {
        auto &run = doc.addRun(
            std::string(Profiles[cells[c].profile]) + ".entries" +
            std::to_string(cells[c].entries));
        run.with("workload", Profiles[cells[c].profile])
            .with("machine", "enhanced")
            .with("abtb_entries",
                  std::to_string(cells[c].entries));
        run.registry = arms[c].registry;
    }

    GridRun result;
    result.json = doc.toJson();
    result.seconds =
        std::chrono::duration<double>(stop - start).count();
    return result;
}

/** Run the whole grid on `jobs` threads; serialise the document. */
GridRun
runGrid(const BenchArgs &args, unsigned jobs)
{
    const auto cells = gridCells();
    std::vector<std::function<ArmResult()>> work;
    work.reserve(cells.size());
    for (const Cell &cell : cells) {
        work.push_back([cell, &args] {
            auto mc = enhancedMachine();
            mc.abtbEntries = cell.entries;
            mc.abtbAssoc = std::min(cell.entries, 4u);
            auto wl =
                workload::profileByName(Profiles[cell.profile]);
            wl.seed = args.seed();
            return runArm(wl, mc,
                          args.scaled(Warmups[cell.profile]),
                          args.scaled(Requests[cell.profile]));
        });
    }
    return collectGrid("bench_wallclock grid", cells, jobs,
                       std::move(work));
}

/** The same grid fanned out from shared warm snapshot bytes. */
GridRun
runSnapshotGrid(const BenchArgs &args, unsigned jobs,
                const workload::WorkloadParams (&wls)[3],
                const workload::MachineConfig &ref_mc,
                const std::vector<std::uint8_t> (&states)[3])
{
    const auto cells = gridCells();
    std::vector<std::function<ArmResult()>> work;
    work.reserve(cells.size());
    for (const Cell &cell : cells) {
        work.push_back([cell, &args, &wls, &ref_mc, &states] {
            auto mc = enhancedMachine();
            mc.abtbEntries = cell.entries;
            mc.abtbAssoc = std::min(cell.entries, 4u);
            return runArmFromState(
                states[cell.profile], wls[cell.profile], ref_mc,
                mc, args.scaled(Requests[cell.profile]));
        });
    }
    return collectGrid("bench_wallclock snapshot grid", cells,
                       jobs, std::move(work));
}

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs args("bench_wallclock", argc, argv);
    banner("Runner wall-clock — serial vs --jobs N",
           "dlsim infrastructure (docs/performance.md)");

    const unsigned jobs = args.jobs();
    std::printf("grid: 12 arms; host threads for parallel run: "
                "%u\n\n",
                jobs);

    const auto serial = runGrid(args, 1);
    std::printf("serial   (--jobs 1): %.3f s\n", serial.seconds);
    const auto parallel = runGrid(args, jobs);
    std::printf("parallel (--jobs %u): %.3f s\n", jobs,
                parallel.seconds);

    if (serial.json != parallel.json) {
        std::fprintf(stderr,
                     "FAIL: serial and parallel runs produced "
                     "different metric documents\n");
        return 1;
    }
    std::printf("documents byte-identical: yes (%zu bytes)\n",
                serial.json.size());
    const double speedup =
        parallel.seconds > 0 ? serial.seconds / parallel.seconds
                             : 0.0;
    std::printf("speedup: %.2fx\n\n", speedup);

    // Cold vs warm snapshot sweep. The cold pass pays for the
    // warm-up simulations (once per workload) plus serialization;
    // the warm pass starts from the bytes the cold pass produced —
    // the cross-process --from-snapshot flow, minus the disk.
    const workload::MachineConfig refMc = enhancedMachine();
    workload::WorkloadParams wls[3];
    std::vector<std::uint8_t> states[3];
    const auto coldStart = std::chrono::steady_clock::now();
    for (int i = 0; i < 3; ++i) {
        wls[i] = workload::profileByName(Profiles[i]);
        wls[i].seed = args.seed();
        workload::Workbench wb(wls[i], refMc);
        wb.warmup(
            static_cast<std::uint32_t>(args.scaled(Warmups[i])));
        states[i] = workload::snapshotWorkbench(wb);
    }
    const auto coldWarmupStop = std::chrono::steady_clock::now();
    const auto cold =
        runSnapshotGrid(args, jobs, wls, refMc, states);
    const double coldSeconds =
        std::chrono::duration<double>(coldWarmupStop - coldStart)
            .count() +
        cold.seconds;
    std::printf("cold  (warm-up + snapshot + grid): %.3f s\n",
                coldSeconds);
    const auto warm =
        runSnapshotGrid(args, jobs, wls, refMc, states);
    std::printf("warm  (grid from snapshot bytes):  %.3f s\n",
                warm.seconds);

    if (cold.json != warm.json) {
        std::fprintf(stderr,
                     "FAIL: cold and warm snapshot sweeps "
                     "produced different metric documents\n");
        return 1;
    }
    std::printf("documents byte-identical: yes (%zu bytes)\n",
                cold.json.size());
    const double warmSpeedup =
        warm.seconds > 0 ? coldSeconds / warm.seconds : 0.0;
    std::printf("warm speedup: %.2fx\n", warmSpeedup);

    stats::MetricsDocument doc("bench_wallclock");
    auto &run = doc.addRun("wallclock");
    run.with("grid", "fig5-style, 12 arms")
        .with("jobs", std::to_string(jobs))
        .with("byte_identical", "1");
    run.registry.gauge("dlsim.wallclock.serial_seconds",
                       serial.seconds);
    run.registry.gauge("dlsim.wallclock.parallel_seconds",
                       parallel.seconds);
    run.registry.gauge("dlsim.wallclock.speedup", speedup);
    run.registry.gauge("dlsim.wallclock.cold_seconds",
                       coldSeconds);
    run.registry.gauge("dlsim.wallclock.warm_seconds",
                       warm.seconds);
    run.registry.gauge("dlsim.wallclock.warm_speedup",
                       warmSpeedup);
    run.registry.counter("dlsim.wallclock.jobs", jobs);

    const std::string path = args.jsonOut().empty()
                                 ? "BENCH_wallclock.json"
                                 : args.jsonOut();
    std::string error;
    if (!doc.writeFile(path, &error)) {
        std::fprintf(stderr, "write: %s\n", error.c_str());
        return 1;
    }
    std::printf("wrote %s\n", path.c_str());
    return 0;
}
