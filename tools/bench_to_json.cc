/**
 * @file
 * Aggregate the paper's two headline experiments into committed
 * JSON artifacts: BENCH_table4.json (base-vs-enhanced counters for
 * all four workloads) and BENCH_fig5.json (skip rate vs ABTB size).
 *
 * Usage:
 *   bench_to_json [--quick] [--out-dir DIR]
 *
 * --quick shrinks warmup/request counts and the ABTB sweep so the
 * tool finishes in a few seconds (used by the ctest smoke test);
 * the full run matches the standalone benches' calibrations.
 *
 * The tool self-validates: it re-reads each written file, runs the
 * strict JSON validator over it, and checks that the required
 * per-structure counters and skip-rate gauges are present for every
 * workload. Any failure is a non-zero exit.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common.hh"
#include "stats/json_writer.hh"

using namespace dlsim;
using namespace dlsim::bench;

namespace
{

struct Calibration
{
    const char *name;
    int warmup;
    int requests;
};

/** Run the Table-4 arms and fill `doc` with one run per arm. */
void
buildTable4(stats::MetricsDocument &doc, bool quick)
{
    const Calibration full[] = {
        {"apache", 150, 900},
        {"firefox", 150, 450},
        {"memcached", 150, 600},
        {"mysql", 150, 700},
    };
    const Calibration fast[] = {
        {"apache", 30, 60},
        {"firefox", 30, 40},
        {"memcached", 30, 50},
        {"mysql", 30, 50},
    };

    for (const auto &cal : quick ? fast : full) {
        const auto wl = workload::profileByName(cal.name);
        for (const bool enhanced : {false, true}) {
            const auto arm =
                runArm(wl,
                       enhanced ? enhancedMachine()
                                : baseMachine(),
                       cal.warmup, cal.requests);
            const char *machine = enhanced ? "enhanced" : "base";
            auto &run = doc.addRun(std::string(cal.name) + "." +
                                   machine);
            run.with("workload", cal.name)
                .with("machine", machine)
                .with("warmup", std::to_string(cal.warmup))
                .with("requests", std::to_string(cal.requests));
            run.registry = arm.registry;
        }
        std::fprintf(stderr, "table4: %s done\n", cal.name);
    }
}

/** Run the Figure-5 ABTB sweep and fill `doc`. */
void
buildFig5(stats::MetricsDocument &doc, bool quick)
{
    const char *profiles[] = {"apache", "firefox", "memcached"};
    const int fullWarmups[] = {300, 1200, 150};
    const int fullRequests[] = {400, 250, 350};
    const int fastWarmups[] = {40, 80, 30};
    const int fastRequests[] = {40, 30, 40};

    std::vector<std::uint32_t> entries;
    if (quick)
        entries = {4u, 16u, 64u, 256u};
    else
        entries = {1u,  2u,   4u,   8u,  16u, 32u,
                   64u, 128u, 256u, 512u, 1024u};

    for (int i = 0; i < 3; ++i) {
        const auto wl = workload::profileByName(profiles[i]);
        const int warmup = quick ? fastWarmups[i] : fullWarmups[i];
        const int requests =
            quick ? fastRequests[i] : fullRequests[i];
        for (const auto n : entries) {
            auto mc = enhancedMachine();
            mc.abtbEntries = n;
            mc.abtbAssoc = std::min(n, 4u);
            const auto arm = runArm(wl, mc, warmup, requests);
            auto &run =
                doc.addRun(std::string(profiles[i]) + ".entries" +
                           std::to_string(n));
            run.with("workload", profiles[i])
                .with("machine", "enhanced")
                .with("abtb_entries", std::to_string(n))
                .with("warmup", std::to_string(warmup))
                .with("requests", std::to_string(requests));
            run.registry = arm.registry;
        }
        std::fprintf(stderr, "fig5: %s done\n", profiles[i]);
    }
}

/**
 * Re-read `path`, validate it as JSON, and require every key in
 * `required` to appear (as a quoted string) in the document.
 */
bool
validateFile(const std::string &path,
             const std::vector<std::string> &required)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "validate: cannot re-read %s\n",
                     path.c_str());
        return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();

    std::string error;
    if (!stats::jsonValidate(text, &error)) {
        std::fprintf(stderr, "validate: %s is not valid JSON: %s\n",
                     path.c_str(), error.c_str());
        return false;
    }
    for (const auto &key : required) {
        if (text.find('"' + key + '"') == std::string::npos) {
            std::fprintf(stderr,
                         "validate: %s is missing required key "
                         "\"%s\"\n",
                         path.c_str(), key.c_str());
            return false;
        }
    }
    std::fprintf(stderr, "validate: %s ok (%zu bytes)\n",
                 path.c_str(), text.size());
    return true;
}

bool
writeDoc(const stats::MetricsDocument &doc,
         const std::string &path)
{
    std::string error;
    if (!doc.writeFile(path, &error)) {
        std::fprintf(stderr, "write: %s\n", error.c_str());
        return false;
    }
    std::fprintf(stderr, "wrote %s\n", path.c_str());
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    std::string outDir = ".";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(argv[i], "--out-dir") == 0 &&
                   i + 1 < argc) {
            outDir = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: bench_to_json [--quick] "
                         "[--out-dir DIR]\n");
            return 2;
        }
    }

    stats::MetricsDocument table4("bench_to_json table4");
    buildTable4(table4, quick);
    stats::MetricsDocument fig5("bench_to_json fig5");
    buildFig5(fig5, quick);

    const std::string table4Path = outDir + "/BENCH_table4.json";
    const std::string fig5Path = outDir + "/BENCH_fig5.json";
    if (!writeDoc(table4, table4Path) ||
        !writeDoc(fig5, fig5Path))
        return 1;

    // Per-structure counters plus the skip-rate gauge must exist
    // for every workload arm (the enhanced arms carry the skip
    // unit's metrics).
    std::vector<std::string> table4Keys = {
        "dlsim.cpu.l1i.misses",     "dlsim.cpu.l1i.hits",
        "dlsim.cpu.l1i.evictions",  "dlsim.cpu.l1d.misses",
        "dlsim.cpu.itlb.misses",    "dlsim.cpu.dtlb.misses",
        "dlsim.cpu.btb.misses",     "dlsim.cpu.direction.mispredicts",
        "dlsim.core.abtb.evictions", "dlsim.cpu.trampoline_skip_rate",
        "dlsim.core.skip.substitutions",
    };
    for (const char *w :
         {"apache", "firefox", "memcached", "mysql"}) {
        table4Keys.push_back(std::string(w) + ".base");
        table4Keys.push_back(std::string(w) + ".enhanced");
    }
    const std::vector<std::string> fig5Keys = {
        "dlsim.cpu.trampoline_skip_rate",
        "dlsim.core.abtb.hits",
        "dlsim.core.abtb.misses",
        "dlsim.core.abtb.evictions",
        "abtb_entries",
    };
    if (!validateFile(table4Path, table4Keys) ||
        !validateFile(fig5Path, fig5Keys))
        return 1;

    std::fprintf(stderr, "bench_to_json: all outputs valid\n");
    return 0;
}
