/**
 * @file
 * Calibration harness: quick per-workload counter dump used while
 * tuning profiles against the paper's Tables 2-4. For full
 * experiments use dlsim_cli or the bench binaries.
 *
 * Usage: smoke <workload> [requests] [enhanced 0|1]
 */
#include <cstdio>
#include <cstdlib>

#include "workload/engine.hh"
#include "workload/profiles.hh"

using namespace dlsim;

int
main(int argc, char **argv)
{
    const std::string profile = argc > 1 ? argv[1] : "apache";
    const int requests = argc > 2 ? std::atoi(argv[2]) : 500;
    const bool enhanced = argc > 3 && std::atoi(argv[3]) != 0;

    workload::MachineConfig mc;
    mc.enhanced = enhanced;
    mc.profileTrampolines = true;

    workload::Workbench wb(workload::profileByName(profile), mc);
    wb.warmup(50);
    for (int i = 0; i < requests; ++i)
        wb.runRequest();

    const auto c = wb.core().counters();
    std::printf("%s %s\n", profile.c_str(),
                enhanced ? "(enhanced)" : "(base)");
    std::printf("insts            %llu\n",
                (unsigned long long)c.instructions);
    std::printf("cycles           %llu  IPC %.3f\n",
                (unsigned long long)c.cycles, c.ipc());
    std::printf("tramp PKI        %.2f\n", c.pki(c.trampolineInsts));
    std::printf("tramp jmps PKI   %.2f\n", c.pki(c.trampolineJmps));
    std::printf("skipped          %llu\n",
                (unsigned long long)c.skippedTrampolines);
    std::printf("distinct tramps  %llu\n",
                (unsigned long long)
                    wb.distinctTrampolinesExecuted());
    std::printf("I$ miss PKI      %.2f\n", c.pki(c.l1iMisses));
    std::printf("ITLB miss PKI    %.2f\n", c.pki(c.itlbMisses));
    std::printf("D$ miss PKI      %.2f\n", c.pki(c.l1dMisses));
    std::printf("DTLB miss PKI    %.2f\n", c.pki(c.dtlbMisses));
    std::printf("mispred PKI      %.2f\n", c.pki(c.mispredicts));
    std::printf("insts/request    %.0f\n",
                (double)c.instructions / requests);
    if (wb.core().skipUnit()) {
        const auto &s = wb.core().skipUnit()->stats();
        std::printf("subs %llu pops %llu storeFlush %llu\n",
                    (unsigned long long)s.substitutions,
                    (unsigned long long)s.populations,
                    (unsigned long long)s.storeFlushes);
    }
    return 0;
}
