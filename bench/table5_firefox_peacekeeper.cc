/**
 * @file
 * Table 5: Firefox Peacekeeper scores (higher is better), base vs
 * enhanced. Peacekeeper reports throughput per category (fps for
 * rendering/canvas, ops for data/DOM/text); dlsim's analogue is
 * work completed per simulated time, i.e. a score proportional to
 * 1/cycles for the fixed per-category work.
 *
 * Paper's shape: every category improves; rendering +2.7%, DOM
 * +1.8%, text parsing +0.8%.
 */

#include "common.hh"

using namespace dlsim;
using namespace dlsim::bench;

namespace
{

/** Arbitrary frequency for score scaling (3.0 GHz testbed). */
constexpr double GHz = 3.0e9;

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs args("table5_firefox_peacekeeper", argc, argv);
    banner("Table 5 — Firefox Peacekeeper scores, "
           "base vs enhanced",
           "Section 5.4, Table 5");

    auto wl = workload::firefoxProfile();
    wl.seed = args.seed();
    const int warmup = args.scaled(80);
    const int requests = args.scaled(1200);
    std::vector<std::function<ArmResult()>> work;
    work.push_back([&] {
        return runArm(wl, baseMachine(), warmup, requests,
                      args.sample());
    });
    work.push_back([&] {
        return runArm(wl, enhancedMachine(), warmup, requests,
                      args.sample());
    });
    auto arms = runJobs(args, std::move(work));
    const ArmResult &base = arms[0];
    const ArmResult &enh = arms[1];

    JsonOut json("table5_firefox_peacekeeper", args);
    json.add("firefox.base", base,
             withSampleContext(
                 args, {{"workload", "firefox"},
                        {"machine", "base"},
                        {"requests", std::to_string(requests)}}));
    json.add("firefox.enhanced", enh,
             withSampleContext(
                 args, {{"workload", "firefox"},
                        {"machine", "enhanced"},
                        {"requests", std::to_string(requests)}}));

    struct PaperRow
    {
        double base, enhanced;
        const char *unit;
    };
    const PaperRow paper[] = {
        {49.31, 50.64, "fps"},    // Rendering
        {37.47, 37.94, "fps"},    // HTML5 Canvas
        {22499, 22727, "ops"},    // Data
        {16547, 16850, "ops"},    // DOM operations
        {214897, 216625, "ops"},  // Text parsing
    };

    stats::TablePrinter t({"Category", "Base score",
                           "Enhanced score", "Improvement",
                           "Paper base", "Paper enhanced"});
    for (std::size_t k = 0; k < wl.requests.size(); ++k) {
        // Score = operations per second at the nominal clock:
        // one request is one benchmark operation.
        const double b = GHz / base.latency[k].mean();
        const double e = GHz / enh.latency[k].mean();
        t.addRow({wl.requests[k].name,
                  stats::TablePrinter::num(b, 1),
                  stats::TablePrinter::num(e, 1),
                  stats::TablePrinter::num(
                      100.0 * (e - b) / b, 2) + "%",
                  stats::TablePrinter::num(paper[k].base, 1) +
                      " " + paper[k].unit,
                  stats::TablePrinter::num(paper[k].enhanced,
                                           1) +
                      " " + paper[k].unit});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("expected shape: every category improves "
                "(paper: +0.8%% to +2.7%%)\n");
    return json.write() ? 0 : 1;
}
