/**
 * @file
 * Section 5.5: memory savings of the hardware approach over
 * software call-site patching in a prefork server.
 *
 * Paper's numbers: dynamic patching of Apache+PHP+libraries copies
 * ~280 code pages (~1.1MB) per process; a busy server with
 * hundreds of processes wastes on the order of 0.5GB. The proposed
 * hardware leaves code pages COW-shared, wasting nothing.
 */

#include "common.hh"

#include "linker/patcher.hh"
#include "sim/system.hh"

using namespace dlsim;
using namespace dlsim::bench;

namespace
{

struct ServerResult
{
    sim::MemoryStats memory;
    std::uint64_t sitesPatched = 0;
    std::uint64_t pagesPerProcess = 0;
};

ServerResult
runPrefork(bool software_patching, int workers, int masterRequests,
           int workerRequests, std::uint64_t seed)
{
    workload::MachineConfig mc;
    mc.enhanced = !software_patching;
    mc.nearLibraries = software_patching;
    mc.collectCallSiteTrace = software_patching;

    auto wl = workload::apacheProfile();
    wl.seed = seed;
    workload::Workbench wb(wl, mc);
    sim::System system(wb.core(), wb.image(), wb.linker());

    // Master profiles (the paper's Pin run), then forks workers.
    for (int i = 0; i < masterRequests; ++i)
        wb.runRequest();
    const auto trace = wb.core().callSiteTrace();

    auto &master = system.initialProcess();
    std::vector<sim::Process *> procs;
    for (int i = 0; i < workers; ++i)
        procs.push_back(&system.fork(master));

    ServerResult result;
    linker::Patcher patcher;
    for (auto *w : procs) {
        system.switchTo(*w);
        if (software_patching) {
            const auto stats = patcher.apply(wb.image(), trace);
            result.sitesPatched = stats.sitesPatched;
            result.pagesPerProcess = stats.pagesTouched;
        }
        for (int i = 0; i < workerRequests; ++i)
            wb.runRequest();
    }
    result.memory = system.memoryStats();
    return result;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs args("sec55_memory_savings", argc, argv);
    banner("Section 5.5 — prefork memory savings",
           "Section 5.5");
    JsonOut json("sec55_memory_savings", args);

    constexpr int Workers = 32;
    const int masterRequests = args.scaled(120);
    const int workerRequests = args.quick() ? 2 : 8;
    std::vector<std::function<ServerResult()>> work;
    work.push_back([&] {
        return runPrefork(true, Workers, masterRequests,
                          workerRequests, args.seed());
    });
    work.push_back([&] {
        return runPrefork(false, Workers, masterRequests,
                          workerRequests, args.seed());
    });
    const auto results = runJobs(args, std::move(work));
    const ServerResult &sw = results[0];
    const ServerResult &hw = results[1];

    auto record = [&](const char *name, const ServerResult &r,
                      const char *machine) {
        auto &run = json.addRun(name);
        run.with("workload", "apache")
            .with("machine", machine)
            .with("workers", std::to_string(Workers));
        run.registry.counter("dlsim.prefork.text_cow_copies",
                             r.memory.textCowCopies);
        run.registry.counter("dlsim.prefork.sites_patched",
                             r.sitesPatched);
        run.registry.counter("dlsim.prefork.pages_per_process",
                             r.pagesPerProcess);
        run.registry.gauge("dlsim.prefork.mb_wasted",
                           double(r.memory.textCowCopies) * 4096 /
                               (1 << 20));
    };
    record("software_patching", sw, "base");
    record("proposed_hardware", hw, "enhanced");

    stats::TablePrinter t({"Approach", "Text pages copied",
                           "MB wasted", "KB/process",
                           "Call sites patched"});
    t.addRow({"software patching",
              stats::TablePrinter::num(sw.memory.textCowCopies),
              stats::TablePrinter::num(
                  double(sw.memory.textCowCopies) * 4096 /
                      (1 << 20),
                  2),
              stats::TablePrinter::num(
                  double(sw.memory.textCowCopies) * 4096 /
                      1024 / Workers,
                  1),
              stats::TablePrinter::num(sw.sitesPatched)});
    t.addRow({"proposed hardware",
              stats::TablePrinter::num(hw.memory.textCowCopies),
              "0.00", "0.0", "0"});
    std::printf("%s\n", t.render().c_str());

    std::printf("software patching touches %llu text pages per "
                "process (paper: ~280 pages, 1.1MB for "
                "Apache+PHP)\n",
                (unsigned long long)sw.pagesPerProcess);
    const double busy_server_gb =
        double(sw.pagesPerProcess) * 4096 * 500 / (1 << 30);
    std::printf("extrapolated to a busy 500-process server: "
                "%.2f GB wasted (paper: ~0.5 GB)\n",
                busy_server_gb);
    std::printf("hardware approach: zero text pages copied — all "
                "code stays COW-shared\n");
    return json.write() ? 0 : 1;
}
