# Determinism contract of bench/server_traffic: --quick runs with
# different host parallelism (--jobs) and block-dispatch settings
# (--blocks) must produce byte-identical stdout and byte-identical
# --json-out documents. Invoked by ctest as
#   cmake -DSERVER_TRAFFIC=<binary> -DOUT=<dir> -P <this file>

file(MAKE_DIRECTORY "${OUT}")

set(variants
    "jobs1_blocks1;--jobs;1;--blocks;1"
    "jobs4_blocks1;--jobs;4;--blocks;1"
    "jobs2_blocks0;--jobs;2;--blocks;0")

foreach(variant IN LISTS variants)
    list(POP_FRONT variant tag)
    execute_process(
        COMMAND "${SERVER_TRAFFIC}" --quick ${variant}
                --json-out "${OUT}/${tag}.json"
        OUTPUT_FILE "${OUT}/${tag}.txt"
        RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR
            "server_traffic --quick (${tag}) exited with ${rc}")
    endif()
endforeach()

foreach(ext txt json)
    file(READ "${OUT}/jobs1_blocks1.${ext}" reference)
    foreach(tag jobs4_blocks1 jobs2_blocks0)
        file(READ "${OUT}/${tag}.${ext}" candidate)
        if(NOT candidate STREQUAL reference)
            message(FATAL_ERROR
                "server_traffic ${ext} output differs between "
                "jobs1_blocks1 and ${tag} — the determinism "
                "contract is broken")
        endif()
    endforeach()
endforeach()
