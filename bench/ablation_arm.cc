/**
 * @file
 * Ablation: x86-style vs ARM-style trampolines (paper Fig. 2).
 *
 * ARM trampolines execute three instructions per library call where
 * x86-64 executes one, so the elision opportunity is larger on ARM
 * — supporting the paper's claim that the approach "works on all
 * dynamically linked library techniques ... across architectures".
 * The mechanism needs only a two-instruction pattern window to
 * capture the ARM sequence.
 */

#include "common.hh"

using namespace dlsim;
using namespace dlsim::bench;

int
main(int argc, char **argv)
{
    BenchArgs args("ablation_arm", argc, argv);
    banner("Ablation — x86-64 vs ARM trampoline style",
           "Section 2 (Fig. 2), Section 1 (cross-ISA claim)");
    JsonOut json("ablation_arm", args);

    auto wl = workload::apacheProfile();
    wl.seed = args.seed();
    const linker::PltStyle styles[] = {linker::PltStyle::X86,
                                       linker::PltStyle::Arm};

    // Two jobs per style: [x86.base, x86.enh, arm.base, arm.enh].
    std::vector<std::function<ArmResult()>> work;
    for (const auto style : styles) {
        for (const bool enhanced : {false, true}) {
            work.push_back([style, enhanced, &wl, &args] {
                workload::MachineConfig mc;
                mc.pltStyle = style;
                mc.enhanced = enhanced;
                return runArm(wl, mc, args.scaled(150),
                              args.scaled(500));
            });
        }
    }
    const auto arms = runJobs(args, std::move(work));

    stats::TablePrinter t({"Style", "Arm", "Tramp insts PKI",
                           "Skip rate", "Cycle gain"});
    for (std::size_t i = 0; i < std::size(styles); ++i) {
        const char *name =
            styles[i] == linker::PltStyle::X86 ? "x86-64" : "ARM";
        const ArmResult &b = arms[2 * i];
        const ArmResult &e = arms[2 * i + 1];

        json.add(std::string(name) + ".base", b,
                 {{"workload", "apache"},
                  {"machine", "base"},
                  {"plt_style", name}});
        json.add(std::string(name) + ".enhanced", e,
                 {{"workload", "apache"},
                  {"machine", "enhanced"},
                  {"plt_style", name}});

        const auto total = e.counters.skippedTrampolines +
                           e.counters.trampolineJmps;
        t.addRow({name, "base",
                  stats::TablePrinter::num(b.counters.pki(
                      b.counters.trampolineInsts)),
                  "-", "-"});
        t.addRow({name, "enhanced",
                  stats::TablePrinter::num(e.counters.pki(
                      e.counters.trampolineInsts)),
                  stats::TablePrinter::num(
                      100.0 *
                          double(e.counters.skippedTrampolines) /
                          double(total),
                      1) + "%",
                  stats::TablePrinter::num(
                      100.0 *
                          (double(b.counters.cycles) -
                           double(e.counters.cycles)) /
                          double(b.counters.cycles),
                      2) + "%"});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("expected: ARM base pays ~3x the trampoline "
                "instructions, so elision gains more\n");
    return json.write() ? 0 : 1;
}
