/**
 * @file
 * Figure 8 + Table 6: MySQL TPC-C NewOrder/Payment response-time
 * CDFs and the 50/75/90/95th-percentile summary, base vs enhanced.
 *
 * Paper's Table 6 (milliseconds):
 *           NewOrder base/enh   Payment base/enh
 *   50%        43.5 / 43.0        17.9 / 17.7
 *   75%        57.3 / 56.9        27.9 / 27.2
 *   90%        72.8 / 72.3        37.2 / 35.9
 *   95%        87.1 / 86.8        44.4 / 43.0
 * Shape: the base system needs more time at every percentile.
 */

#include "common.hh"

using namespace dlsim;
using namespace dlsim::bench;

int
main(int argc, char **argv)
{
    BenchArgs args("fig8_mysql_latency", argc, argv);
    banner("Figure 8 / Table 6 — MySQL request latency, "
           "base vs enhanced",
           "Section 5.4, Figure 8 and Table 6");

    auto wl = workload::mysqlProfile();
    wl.seed = args.seed();
    const int warmup = args.scaled(200);
    const int requests = args.scaled(2500);
    std::vector<std::function<ArmResult()>> work;
    work.push_back([&] {
        return runArm(wl, baseMachine(), warmup, requests,
                      args.sample());
    });
    work.push_back([&] {
        return runArm(wl, enhancedMachine(), warmup, requests,
                      args.sample());
    });
    auto arms = runJobs(args, std::move(work));
    ArmResult &base = arms[0];
    ArmResult &enh = arms[1];

    JsonOut json("fig8_mysql_latency", args);
    json.add("mysql.base", base,
             withSampleContext(
                 args, {{"workload", "mysql"},
                        {"machine", "base"},
                        {"requests", std::to_string(requests)}}));
    json.add("mysql.enhanced", enh,
             withSampleContext(
                 args, {{"workload", "mysql"},
                        {"machine", "enhanced"},
                        {"requests", std::to_string(requests)}}));

    const double paper[2][4][2] = {
        {{43.5, 43.0}, {57.3, 56.9}, {72.8, 72.3}, {87.1, 86.8}},
        {{17.9, 17.7}, {27.9, 27.2}, {37.2, 35.9}, {44.4, 43.0}},
    };
    const double percentiles[4] = {50, 75, 90, 95};

    for (std::size_t k = 0; k < wl.requests.size(); ++k) {
        auto &b = base.latency[k];
        auto &e = enh.latency[k];
        b.trimOutliers();
        e.trimOutliers();

        std::printf("--- %s ---\n", wl.requests[k].name.c_str());
        stats::TablePrinter t({"Percentile", "Base (cycles)",
                               "Enhanced (cycles)", "Delta",
                               "Paper base (ms)",
                               "Paper enhanced (ms)"});
        for (int p = 0; p < 4; ++p) {
            const double pb = b.percentile(percentiles[p]);
            const double pe = e.percentile(percentiles[p]);
            t.addRow({stats::TablePrinter::num(percentiles[p], 0) +
                          "%",
                      stats::TablePrinter::num(pb, 0),
                      stats::TablePrinter::num(pe, 0),
                      stats::TablePrinter::num(
                          100.0 * (pb - pe) / pb, 2) + "%",
                      stats::TablePrinter::num(paper[k][p][0], 1),
                      stats::TablePrinter::num(paper[k][p][1],
                                               1)});
        }
        std::printf("%s", t.render().c_str());

        // The CDF series of Fig. 8 proper.
        std::printf("CDF (fraction served within X cycles):\n");
        for (double frac : {0.55, 0.65, 0.75, 0.85, 0.95}) {
            const double xb = b.percentile(100 * frac);
            std::printf("  %.0f%%: base %.0f, enhanced %.0f, "
                        "enhanced serves %.1f%% at base's "
                        "latency\n",
                        100 * frac, xb,
                        e.percentile(100 * frac),
                        100.0 * e.fractionBelow(xb));
        }
        std::printf("\n");
    }
    std::printf("expected shape: base needs more time than "
                "enhanced at every percentile\n");
    return json.write() ? 0 : 1;
}
