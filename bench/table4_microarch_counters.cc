/**
 * @file
 * Table 4: "Performance counters (values are per kilo instruction)"
 * — base vs enhanced for I-$ misses, I-TLB misses, D-$ misses,
 * D-TLB misses, and branch mispredictions, on all four workloads.
 *
 * Paper's shape: every counter drops (or stays flat) when
 * trampolines are skipped; Apache shows the largest absolute
 * pressure and the largest improvements; Memcached's I-TLB conflict
 * misses disappear entirely.
 */

#include "common.hh"

using namespace dlsim;
using namespace dlsim::bench;

namespace
{

struct PaperRow
{
    const char *name;
    double icB, icE, itlbB, itlbE, dcB, dcE, dtlbB, dtlbE, brB,
        brE;
    int requests;
};

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs args("table4_microarch_counters", argc, argv);
    banner("Table 4 — microarchitectural counters PKI, "
           "base vs enhanced",
           "Section 5.2, Table 4");
    JsonOut json("table4_microarch_counters", args);

    const PaperRow rows[] = {
        {"apache", 109.31, 104.22, 1.78, 1.18, 7.96, 7.56, 4.03,
         4.62, 13.46, 12.32, 900},
        {"firefox", 10.70, 10.38, 0.87, 0.79, 2.66, 2.67, 1.54,
         1.75, 4.84, 4.77, 450},
        {"memcached", 51.99, 51.42, 0.03, 0.00, 12.25, 12.16,
         4.74, 4.73, 5.48, 5.30, 600},
        {"mysql", 25.21, 24.93, 2.41, 2.36, 8.48, 8.46, 2.86,
         2.77, 14.44, 14.40, 700},
    };

    // Two jobs (base, enhanced) per workload, interleaved so the
    // results land as [base0, enh0, base1, enh1, ...].
    std::vector<std::function<ArmResult()>> work;
    for (const PaperRow &row : rows) {
        for (const bool enhanced : {false, true}) {
            work.push_back([&row, enhanced, &args] {
                auto wl = workload::profileByName(row.name);
                wl.seed = args.seed();
                return runArm(wl,
                              enhanced ? enhancedMachine()
                                       : baseMachine(),
                              args.scaled(150),
                              args.scaled(row.requests),
                              args.sample());
            });
        }
    }
    const auto arms = runJobs(args, std::move(work));

    for (std::size_t i = 0; i < std::size(rows); ++i) {
        const PaperRow &row = rows[i];
        const ArmResult &base = arms[2 * i];
        const ArmResult &enh = arms[2 * i + 1];
        const auto &b = base.counters;
        const auto &e = enh.counters;
        const auto requests =
            std::to_string(args.scaled(row.requests));

        json.add(std::string(row.name) + ".base", base,
                 withSampleContext(args,
                                   {{"workload", row.name},
                                    {"machine", "base"},
                                    {"requests", requests}}));
        json.add(std::string(row.name) + ".enhanced", enh,
                 withSampleContext(args,
                                   {{"workload", row.name},
                                    {"machine", "enhanced"},
                                    {"requests", requests}}));

        std::printf("--- %s ---\n", row.name);
        stats::TablePrinter t({"Counter PKI", "Base", "Enhanced",
                               "Paper base", "Paper enhanced"});
        auto add = [&](const char *name, double mb, double me,
                       double pb, double pe) {
            t.addRow({name, stats::TablePrinter::num(mb),
                      stats::TablePrinter::num(me),
                      stats::TablePrinter::num(pb),
                      stats::TablePrinter::num(pe)});
        };
        add("I-$ misses", b.pki(b.l1iMisses), e.pki(e.l1iMisses),
            row.icB, row.icE);
        add("I-TLB misses", b.pki(b.itlbMisses),
            e.pki(e.itlbMisses), row.itlbB, row.itlbE);
        add("D-$ misses", b.pki(b.l1dMisses), e.pki(e.l1dMisses),
            row.dcB, row.dcE);
        add("D-TLB misses", b.pki(b.dtlbMisses),
            e.pki(e.dtlbMisses), row.dtlbB, row.dtlbE);
        add("Branch mispredictions", b.pki(b.mispredicts),
            e.pki(e.mispredicts), row.brB, row.brE);
        add("Trampoline insts", b.pki(b.trampolineInsts),
            e.pki(e.trampolineInsts), 0, 0);
        std::printf("%s", t.render().c_str());
        std::printf("cycles: base %llu, enhanced %llu "
                    "(%.2f%% faster)\n\n",
                    (unsigned long long)b.cycles,
                    (unsigned long long)e.cycles,
                    100.0 * (double(b.cycles) - double(e.cycles)) /
                        double(b.cycles));
    }
    return json.write() ? 0 : 1;
}
