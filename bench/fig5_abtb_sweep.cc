/**
 * @file
 * Figure 5: "Percentage of library function call trampolines
 * skipped for different sizes of ABTB" plus the §5.3 hardware-cost
 * accounting (12 bytes per entry; 192 bytes at 16 entries).
 *
 * Paper's shape: >75% of trampolines skipped at 16 entries for all
 * of apache/firefox/memcached; near-total skipping at 256 entries;
 * steep slopes reveal per-workload ABTB "working sets".
 */

#include "common.hh"

using namespace dlsim;
using namespace dlsim::bench;

namespace
{

double
skipRate(const ArmResult &arm)
{
    const auto &c = arm.counters;
    const auto total = c.skippedTrampolines + c.trampolineJmps;
    return total == 0 ? 0.0
                      : 100.0 * double(c.skippedTrampolines) /
                            double(total);
}

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs args("fig5_abtb_sweep", argc, argv);
    banner("Figure 5 — trampolines skipped vs ABTB size",
           "Sections 5.3, Figure 5");
    JsonOut json("fig5_abtb_sweep", args);

    // Firefox lazily binds thousands of symbols; each first call
    // ends in a GOT store that flushes the ABTB ("once per library
    // call, at the start" — §3.2). A long warmup amortises that
    // startup phase, as the paper's 10-minute runs did.
    const char *profiles[] = {"apache", "firefox", "memcached"};
    const int warmups[] = {300, 1200, 150};
    const int requests[] = {400, 250, 350};
    const std::uint32_t sizes[] = {1u,  2u,   4u,   8u,
                                   16u, 32u,  64u,  128u,
                                   256u, 512u, 1024u};

    // Warm-up-once: each workload warms a single reference machine
    // and is checkpointed; every ABTB size then fans out from those
    // bytes with a fresh cold skip unit of its own geometry. The 11
    // sizes share one warm-up instead of simulating it 11 times
    // (and --from-snapshot skips it entirely).
    workload::MachineConfig refMc = enhancedMachine();
    refMc.core.blockDispatch = args.blocks();
    workload::WorkloadParams wls[3];
    std::shared_ptr<const workload::BuiltProgram> progs[3];
    std::vector<std::uint8_t> states[3];
    for (int i = 0; i < 3; ++i) {
        wls[i] = workload::profileByName(profiles[i]);
        wls[i].seed = args.seed();
        progs[i] = std::make_shared<const workload::BuiltProgram>(
            workload::buildProgram(wls[i]));
        states[i] = warmState(args, profiles[i], wls[i], refMc,
                              args.scaled(warmups[i]), progs[i]);
    }

    // One job per (size, workload) cell; the whole grid runs on
    // --jobs threads and is consumed below in submission order.
    struct Cell
    {
        std::uint32_t entries;
        int profile;
    };
    std::vector<Cell> cells;
    for (const std::uint32_t entries : sizes)
        for (int i = 0; i < 3; ++i)
            cells.push_back({entries, i});

    std::vector<std::function<ArmResult()>> work;
    work.reserve(cells.size());
    for (const Cell &cell : cells) {
        work.push_back([cell, &args, &refMc, &wls, &progs,
                        &states, &requests] {
            workload::MachineConfig mc = enhancedMachine();
            mc.core.blockDispatch = args.blocks();
            mc.abtbEntries = cell.entries;
            mc.abtbAssoc = std::min(cell.entries, 4u);
            return runArmFromState(
                states[cell.profile], wls[cell.profile], refMc,
                mc, args.scaled(requests[cell.profile]),
                args.sample(), progs[cell.profile]);
        });
    }
    const auto arms = runJobs(args, std::move(work));

    stats::TablePrinter table({"Entries", "Bytes", "apache",
                               "firefox", "memcached"});
    for (std::size_t c = 0; c < cells.size(); c += 3) {
        const std::uint32_t entries = cells[c].entries;
        std::vector<std::string> row{
            std::to_string(entries),
            std::to_string(entries * core::AbtbEntryBytes)};
        for (int i = 0; i < 3; ++i) {
            const ArmResult &arm = arms[c + i];
            json.add(std::string(profiles[i]) + ".entries" +
                         std::to_string(entries),
                     arm,
                     withSampleContext(
                         args,
                         {{"workload", profiles[i]},
                          {"machine", "enhanced"},
                          {"abtb_entries",
                           std::to_string(entries)},
                          {"seed", std::to_string(args.seed())},
                          {"requests",
                           std::to_string(
                               args.scaled(requests[i]))}}));
            row.push_back(stats::TablePrinter::num(skipRate(arm),
                                                   1) +
                          "%");
        }
        table.addRow(std::move(row));
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("paper: 16 entries (192 bytes) skip >75%% in all "
                "workloads;\n");
    std::printf("       256 entries skip nearly all actively "
                "used trampolines.\n");
    return json.write() ? 0 : 1;
}
