/**
 * @file
 * Figure 6: CDFs of Apache/SPECweb request response time per
 * request type, base vs enhanced.
 *
 * Paper's shape: the enhanced curve sits left of (or on) the base
 * curve for every request type; average response times improve by
 * up to 4% while the tails are unaffected.
 */

#include "common.hh"

using namespace dlsim;
using namespace dlsim::bench;

int
main(int argc, char **argv)
{
    BenchArgs args("fig6_apache_latency_cdf", argc, argv);
    banner("Figure 6 — Apache request latency CDFs, "
           "base vs enhanced",
           "Section 5.4, Figure 6");

    auto wl = workload::apacheProfile();
    wl.seed = args.seed();
    const int warmup = args.scaled(250);
    const int requests = args.scaled(3000);
    std::vector<std::function<ArmResult()>> work;
    work.push_back([&] {
        return runArm(wl, baseMachine(), warmup, requests,
                      args.sample());
    });
    work.push_back([&] {
        return runArm(wl, enhancedMachine(), warmup, requests,
                      args.sample());
    });
    auto arms = runJobs(args, std::move(work));
    ArmResult &base = arms[0];
    ArmResult &enh = arms[1];

    JsonOut json("fig6_apache_latency_cdf", args);
    json.add("apache.base", base,
             withSampleContext(
                 args, {{"workload", "apache"},
                        {"machine", "base"},
                        {"requests", std::to_string(requests)}}));
    json.add("apache.enhanced", enh,
             withSampleContext(
                 args, {{"workload", "apache"},
                        {"machine", "enhanced"},
                        {"requests", std::to_string(requests)}}));

    double mean_imp_sum = 0;
    for (std::size_t k = 0; k < wl.requests.size(); ++k) {
        auto &b = base.latency[k];
        auto &e = enh.latency[k];
        b.trimOutliers(); // the paper omits perturbation outliers
        e.trimOutliers();

        std::printf("--- %s (%zu requests) ---\n",
                    wl.requests[k].name.c_str(), b.count());
        stats::TablePrinter t({"% served", "Base (cycles)",
                               "Enhanced (cycles)", "Delta"});
        for (double p :
             {10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0}) {
            const double pb = b.percentile(p);
            const double pe = e.percentile(p);
            t.addRow({stats::TablePrinter::num(p, 0),
                      stats::TablePrinter::num(pb, 0),
                      stats::TablePrinter::num(pe, 0),
                      stats::TablePrinter::num(
                          100.0 * (pb - pe) / pb, 2) +
                          "%"});
        }
        const double imp =
            100.0 * (b.mean() - e.mean()) / b.mean();
        mean_imp_sum += imp;
        std::printf("%smean: base %.0f, enhanced %.0f "
                    "(%.2f%% improvement)\n\n",
                    t.render().c_str(), b.mean(), e.mean(), imp);
    }
    std::printf("average mean-latency improvement across request "
                "types: %.2f%%\n",
                mean_imp_sum / double(wl.requests.size()));
    std::printf("paper: up to 4%% improvement in average response "
                "time, tails unaffected\n");
    return json.write() ? 0 : 1;
}
