/**
 * @file
 * google-benchmark microbenchmarks of the simulator's component
 * models: per-operation costs of the structures the experiments
 * lean on, plus end-to-end simulated instruction throughput.
 */

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "branch/btb.hh"
#include "core/abtb.hh"
#include "core/bloom_filter.hh"
#include "core/skip_unit.hh"
#include "mem/address_space.hh"
#include "mem/cache.hh"
#include "stats/rng.hh"
#include "workload/engine.hh"
#include "workload/profiles.hh"

using namespace dlsim;

static void
BM_CacheAccessHit(benchmark::State &state)
{
    mem::Cache cache(mem::CacheParams{"l1", 32 * 1024, 8, 64});
    cache.access(0x1000, 0);
    for (auto _ : state)
        benchmark::DoNotOptimize(cache.access(0x1000, 0));
}
BENCHMARK(BM_CacheAccessHit);

static void
BM_CacheAccessStreaming(benchmark::State &state)
{
    mem::Cache cache(mem::CacheParams{"l1", 32 * 1024, 8, 64});
    std::uint64_t addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(addr, 0));
        addr += 64;
    }
}
BENCHMARK(BM_CacheAccessStreaming);

static void
BM_BtbLookupHit(benchmark::State &state)
{
    branch::Btb btb(branch::BtbParams{});
    btb.update(0x1000, 0x2000);
    for (auto _ : state)
        benchmark::DoNotOptimize(btb.lookup(0x1000));
}
BENCHMARK(BM_BtbLookupHit);

static void
BM_AbtbLookup(benchmark::State &state)
{
    core::Abtb abtb(core::AbtbParams{
        static_cast<std::uint32_t>(state.range(0)), 4});
    for (int i = 0; i < state.range(0); ++i)
        abtb.insert(0x1000 + 16 * i, i, 0);
    std::uint64_t t = 0x1000;
    for (auto _ : state) {
        benchmark::DoNotOptimize(abtb.lookup(t));
        t = 0x1000 + ((t + 16) & 0xfff);
    }
}
BENCHMARK(BM_AbtbLookup)->Arg(16)->Arg(256)->Arg(1024);

static void
BM_BloomProbe(benchmark::State &state)
{
    core::BloomFilter bloom(
        static_cast<std::uint32_t>(state.range(0)), 4);
    stats::Rng rng(1);
    for (int i = 0; i < 500; ++i)
        bloom.insert(rng.next() & ~7ull);
    std::uint64_t addr = 8;
    for (auto _ : state) {
        benchmark::DoNotOptimize(bloom.mayContain(addr));
        addr += 8;
    }
}
BENCHMARK(BM_BloomProbe)->Arg(1024)->Arg(32768);

static void
BM_AddressSpaceRead(benchmark::State &state)
{
    mem::AddressSpace as;
    as.map(0x1000, 1 << 20, mem::PermRead | mem::PermWrite,
           mem::RegionKind::Data, "d");
    as.poke64(0x2000, 7);
    mem::MemFault fault;
    for (auto _ : state)
        benchmark::DoNotOptimize(as.read64(0x2000, fault));
}
BENCHMARK(BM_AddressSpaceRead);

static void
BM_SkipUnitRetirePattern(benchmark::State &state)
{
    core::TrampolineSkipUnit unit;
    for (auto _ : state) {
        unit.retireControl(isa::Opcode::CallRel, 0x401020, 0);
        unit.retireControl(isa::Opcode::JmpIndMem,
                           0x7f0000001000, 0x403010);
    }
    benchmark::DoNotOptimize(unit.stats().populations);
}
BENCHMARK(BM_SkipUnitRetirePattern);

/** End-to-end: simulated instructions per wall-clock second. */
static void
BM_SimulatedInstructionThroughput(benchmark::State &state)
{
    workload::MachineConfig mc;
    mc.enhanced = state.range(0) != 0;
    workload::Workbench wb(workload::memcachedProfile(), mc);
    wb.warmup(50);
    std::uint64_t insts = 0;
    for (auto _ : state)
        insts += wb.runRequest().instructions;
    state.counters["sim_insts/s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatedInstructionThroughput)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

/**
 * Custom main: accept the repo-wide `--json-out <path>` spelling by
 * translating it into google-benchmark's own JSON reporter flags
 * before Initialize() parses the command line. Other arguments pass
 * through untouched.
 */
int
main(int argc, char **argv)
{
    std::vector<std::string> args;
    args.reserve(static_cast<std::size_t>(argc) + 1);
    args.emplace_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--json-out" && i + 1 < argc) {
            args.emplace_back(std::string("--benchmark_out=") +
                              argv[i + 1]);
            args.emplace_back("--benchmark_out_format=json");
            ++i;
        } else {
            args.emplace_back(argv[i]);
        }
    }
    std::vector<char *> cargs;
    cargs.reserve(args.size());
    for (auto &a : args)
        cargs.push_back(a.data());
    int cargc = static_cast<int>(cargs.size());

    benchmark::Initialize(&cargc, cargs.data());
    if (benchmark::ReportUnrecognizedArguments(cargc, cargs.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
