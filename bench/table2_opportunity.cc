/**
 * @file
 * Table 2: "Instructions in trampoline per kilo instruction".
 *
 * Paper values: Apache 12.23, Firefox 0.72, Memcached 1.75,
 * MySQL 5.56 — the opportunity the mechanism targets. The key
 * shape: Apache >> MySQL > Memcached > Firefox.
 */

#include "common.hh"

using namespace dlsim;
using namespace dlsim::bench;

int
main(int argc, char **argv)
{
    BenchArgs args("table2_opportunity", argc, argv);
    banner("Table 2 — trampoline instructions PKI",
           "Section 5.1, Table 2");
    JsonOut json("table2_opportunity", args);

    struct Row
    {
        const char *name;
        double paper;
        int requests;
    };
    const Row rows[] = {
        {"apache", 12.23, 900},
        {"firefox", 0.72, 500},
        {"memcached", 1.75, 600},
        {"mysql", 5.56, 700},
    };

    std::vector<std::function<ArmResult()>> work;
    for (const Row &row : rows) {
        work.push_back([&row, &args] {
            auto wl = workload::profileByName(row.name);
            wl.seed = args.seed();
            return runArm(wl,
                          baseMachine(), args.scaled(120),
                          args.scaled(row.requests));
        });
    }
    const auto arms = runJobs(args, std::move(work));

    stats::TablePrinter table({"Workload", "Measured PKI",
                               "Paper PKI", "Insts/request"});
    for (std::size_t i = 0; i < std::size(rows); ++i) {
        const Row &row = rows[i];
        const int requests = args.scaled(row.requests);
        const auto &c = arms[i].counters;
        json.add(row.name, arms[i],
                 {{"workload", row.name},
                  {"machine", "base"},
                  {"requests", std::to_string(requests)}});
        table.addRow(
            {row.name,
             stats::TablePrinter::num(c.pki(c.trampolineInsts)),
             stats::TablePrinter::num(row.paper),
             stats::TablePrinter::num(
                 double(c.instructions) / requests, 0)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("expected shape: apache >> mysql > memcached > "
                "firefox\n");
    return json.write() ? 0 : 1;
}
