/**
 * @file
 * Ablation of §3.4: the bloom-filter design (architecturally
 * invisible; stores snoop the filter) versus the alternate
 * implementation (no filter; software executes AbtbFlush
 * explicitly), plus the ASID-retention option of §3.3.
 *
 * Expected outcome: identical skip rates in steady state — the
 * invalidation scheme only matters when GOT entries change — with
 * the explicit variant saving the bloom filter's storage.
 */

#include "common.hh"

using namespace dlsim;
using namespace dlsim::bench;

namespace
{

struct Variant
{
    const char *name;
    bool explicitInval;
    bool asidRetention;
};

} // namespace

int
main(int argc, char **argv)
{
    banner("Ablation — invalidation scheme (bloom vs explicit) "
           "and ASID retention",
           "Sections 3.3 and 3.4");
    JsonOut json("ablation_invalidation", argc, argv);

    const Variant variants[] = {
        {"bloom filter (default)", false, false},
        {"explicit invalidation", true, false},
        {"bloom + ASID retention", false, true},
    };

    const auto wl = workload::apacheProfile();
    stats::TablePrinter t({"Variant", "Skip rate", "Store flushes",
                           "FP flushes", "HW bytes"});
    for (const auto &v : variants) {
        auto mc = enhancedMachine();
        mc.explicitInvalidation = v.explicitInval;
        mc.asidRetention = v.asidRetention;

        workload::Workbench wb(wl, mc);
        wb.warmup(150);
        for (int i = 0; i < 600; ++i)
            wb.runRequest();

        const auto c = wb.core().counters();
        const auto &s = wb.core().skipUnit()->stats();
        auto &run = json.addRun(v.name);
        run.with("workload", "apache")
            .with("machine", "enhanced")
            .with("explicit_invalidation",
                  v.explicitInval ? "1" : "0")
            .with("asid_retention", v.asidRetention ? "1" : "0");
        wb.reportMetrics(run.registry, "dlsim");
        const auto total =
            c.skippedTrampolines + c.trampolineJmps;
        t.addRow({v.name,
                  stats::TablePrinter::num(
                      100.0 * double(c.skippedTrampolines) /
                          double(total),
                      1) + "%",
                  stats::TablePrinter::num(s.storeFlushes),
                  stats::TablePrinter::num(
                      s.falsePositiveFlushes),
                  stats::TablePrinter::num(
                      wb.core().skipUnit()->hardwareBytes())});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("expected: identical steady-state skip rates; the "
                "explicit variant trades the bloom filter's bytes "
                "for an architecturally visible flush "
                "instruction\n");
    return json.write() ? 0 : 1;
}
