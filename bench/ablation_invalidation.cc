/**
 * @file
 * Ablation of §3.4: the bloom-filter design (architecturally
 * invisible; stores snoop the filter) versus the alternate
 * implementation (no filter; software executes AbtbFlush
 * explicitly), plus the ASID-retention option of §3.3.
 *
 * Expected outcome: identical skip rates in steady state — the
 * invalidation scheme only matters when GOT entries change — with
 * the explicit variant saving the bloom filter's storage.
 */

#include "common.hh"

using namespace dlsim;
using namespace dlsim::bench;

namespace
{

struct Variant
{
    const char *name;
    bool explicitInval;
    bool asidRetention;
};

/** One variant's run, fully computed inside its job. */
struct VariantResult
{
    stats::MetricsRegistry registry;
    cpu::PerfCounters counters;
    core::SkipUnitStats skipStats;
    std::uint64_t hwBytes = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs args("ablation_invalidation", argc, argv);
    banner("Ablation — invalidation scheme (bloom vs explicit) "
           "and ASID retention",
           "Sections 3.3 and 3.4");
    JsonOut json("ablation_invalidation", args);

    const Variant variants[] = {
        {"bloom filter (default)", false, false},
        {"explicit invalidation", true, false},
        {"bloom + ASID retention", false, true},
    };

    auto wl = workload::apacheProfile();
    wl.seed = args.seed();

    std::vector<std::function<VariantResult()>> work;
    for (const auto &v : variants) {
        work.push_back([v, &wl, &args] {
            auto mc = enhancedMachine();
            mc.explicitInvalidation = v.explicitInval;
            mc.asidRetention = v.asidRetention;

            workload::Workbench wb(wl, mc);
            wb.warmup(static_cast<std::uint32_t>(
                args.scaled(150)));
            for (int i = 0; i < args.scaled(600); ++i)
                wb.runRequest();

            VariantResult r;
            r.counters = wb.core().counters();
            r.skipStats = wb.core().skipUnit()->stats();
            r.hwBytes = wb.core().skipUnit()->hardwareBytes();
            wb.reportMetrics(r.registry, "dlsim");
            return r;
        });
    }
    const auto results = runJobs(args, std::move(work));

    stats::TablePrinter t({"Variant", "Skip rate", "Store flushes",
                           "FP flushes", "HW bytes"});
    for (std::size_t i = 0; i < std::size(variants); ++i) {
        const Variant &v = variants[i];
        const auto &c = results[i].counters;
        const auto &s = results[i].skipStats;
        auto &run = json.addRun(v.name);
        run.with("workload", "apache")
            .with("machine", "enhanced")
            .with("explicit_invalidation",
                  v.explicitInval ? "1" : "0")
            .with("asid_retention", v.asidRetention ? "1" : "0");
        run.registry = results[i].registry;
        const auto total =
            c.skippedTrampolines + c.trampolineJmps;
        t.addRow({v.name,
                  stats::TablePrinter::num(
                      100.0 * double(c.skippedTrampolines) /
                          double(total),
                      1) + "%",
                  stats::TablePrinter::num(s.storeFlushes),
                  stats::TablePrinter::num(
                      s.falsePositiveFlushes),
                  stats::TablePrinter::num(results[i].hwBytes)});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("expected: identical steady-state skip rates; the "
                "explicit variant trades the bloom filter's bytes "
                "for an architecturally visible flush "
                "instruction\n");
    return json.write() ? 0 : 1;
}
