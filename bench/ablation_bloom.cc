/**
 * @file
 * Ablation the paper does not run: bloom-filter sizing.
 *
 * Every retired store probes the filter, and the filter holds one
 * GOT-slot address per trampoline populated since the last flush —
 * several hundred for Apache-class software. §3.1 calls the filter
 * "small", but an undersized filter saturates: false-positive
 * store hits flush the ABTB continuously and the skip rate
 * collapses. This bench quantifies that cliff and motivates the
 * 4KB/4-hash default dlsim ships.
 */

#include "common.hh"

using namespace dlsim;
using namespace dlsim::bench;

namespace
{

/** One bloom configuration's run, fully computed in its job. */
struct BloomResult
{
    stats::MetricsRegistry registry;
    cpu::PerfCounters counters;
    core::SkipUnitStats skipStats;
};

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs args("ablation_bloom", argc, argv);
    banner("Ablation — bloom filter sizing vs skip rate",
           "Section 3.1 (sizing unspecified in the paper)");
    JsonOut json("ablation_bloom", args);

    auto wl = workload::apacheProfile();
    wl.seed = args.seed();

    struct Config
    {
        std::uint32_t bits;
        std::uint32_t hashes;
    };
    const Config configs[] = {
        {256, 2},  {1024, 2},  {4096, 2},  {4096, 4},
        {8192, 4}, {32768, 4}, {131072, 4},
    };

    // Warm-up-once: all seven filter geometries fan out from one
    // warmed reference machine; each arm restores the shared bytes
    // and swaps in a fresh cold skip unit with its own bloom
    // sizing, so measured differences are the filter's alone.
    const workload::MachineConfig refMc = enhancedMachine();
    const auto prog =
        std::make_shared<const workload::BuiltProgram>(
            workload::buildProgram(wl));
    const auto state =
        warmState(args, "", wl, refMc, args.scaled(150), prog);

    std::vector<std::function<BloomResult()>> work;
    for (const auto &cfg : configs) {
        work.push_back([cfg, &wl, &args, &refMc, &state, &prog] {
            auto mc = enhancedMachine();
            mc.bloomBits = cfg.bits;
            mc.bloomHashes = cfg.hashes;

            workload::Workbench wb(wl, refMc, prog,
                                   /*for_restore=*/true);
            workload::restoreWorkbench(wb, state.data(),
                                       state.size(),
                                       /*trusted=*/true);
            wb.reconfigure(mc);
            for (int i = 0; i < args.scaled(500); ++i)
                wb.runRequest();

            BloomResult r;
            r.counters = wb.core().counters();
            r.skipStats = wb.core().skipUnit()->stats();
            wb.reportMetrics(r.registry, "dlsim");
            return r;
        });
    }
    const auto results = runJobs(args, std::move(work));

    stats::TablePrinter t({"Bloom bits", "Bytes", "Hashes",
                           "Skip rate", "Store flushes",
                           "FP flushes"});
    for (std::size_t i = 0; i < std::size(configs); ++i) {
        const Config &cfg = configs[i];
        const auto &c = results[i].counters;
        const auto &s = results[i].skipStats;
        auto &run = json.addRun("bloom" +
                                std::to_string(cfg.bits) + "x" +
                                std::to_string(cfg.hashes));
        run.with("workload", "apache")
            .with("machine", "enhanced")
            .with("bloom_bits", std::to_string(cfg.bits))
            .with("bloom_hashes", std::to_string(cfg.hashes));
        run.registry = results[i].registry;
        const auto total =
            c.skippedTrampolines + c.trampolineJmps;
        t.addRow({stats::TablePrinter::num(
                      std::uint64_t{cfg.bits}),
                  std::to_string(cfg.bits / 8),
                  std::to_string(cfg.hashes),
                  stats::TablePrinter::num(
                      100.0 * double(c.skippedTrampolines) /
                          double(total),
                      1) + "%",
                  stats::TablePrinter::num(s.storeFlushes),
                  stats::TablePrinter::num(
                      s.falsePositiveFlushes)});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("finding: below ~4KB the filter saturates on "
                "store traffic and false-positive flushes erase "
                "the mechanism's benefit — a sizing constraint "
                "the paper's software emulation could not "
                "observe\n");
    return json.write() ? 0 : 1;
}
