/**
 * @file
 * Table 3: "Number of trampolines used by program execution".
 *
 * Paper values: Apache 501, Firefox 2457, Memcached 33,
 * MySQL 1611. The distinct-trampoline census accumulates with run
 * length (the paper measured hours-long runs); the shape under
 * reproduction is the ordering Firefox > MySQL > Apache >>
 * Memcached and the order of magnitude of each count.
 */

#include "common.hh"

using namespace dlsim;
using namespace dlsim::bench;

namespace
{

/** One workload's census, fully computed inside its job. */
struct Census
{
    stats::MetricsRegistry registry;
    std::uint64_t distinct = 0;
    std::uint64_t pltEntries = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs args("table3_distinct_trampolines", argc, argv);
    banner("Table 3 — distinct trampolines executed",
           "Section 5.1, Table 3");
    JsonOut json("table3_distinct_trampolines", args);

    struct Row
    {
        const char *name;
        std::uint64_t paper;
        int requests;
    };
    const Row rows[] = {
        {"apache", 501, 1500},
        {"firefox", 2457, 1500},
        {"memcached", 33, 800},
        {"mysql", 1611, 2000},
    };

    std::vector<std::function<Census()>> work;
    for (const Row &row : rows) {
        work.push_back([&row, &args] {
            auto mc = baseMachine();
            mc.profileTrampolines = true;
            auto wl = workload::profileByName(row.name);
            wl.seed = args.seed();
            workload::Workbench wb(wl, mc);
            // No warmup clear: the census covers the whole run,
            // including startup, as the paper's Pin run did.
            for (int i = 0; i < args.scaled(row.requests); ++i)
                wb.runRequest();
            Census census;
            wb.reportMetrics(census.registry, "dlsim");
            census.distinct = wb.distinctTrampolinesExecuted();
            census.pltEntries = wb.image().totalTrampolines();
            return census;
        });
    }
    const auto results = runJobs(args, std::move(work));

    stats::TablePrinter table({"Workload", "Measured distinct",
                               "Paper distinct",
                               "PLT entries loaded"});
    for (std::size_t i = 0; i < std::size(rows); ++i) {
        const Row &row = rows[i];
        const Census &census = results[i];
        auto &run = json.addRun(row.name);
        run.with("workload", row.name)
            .with("machine", "base")
            .with("requests",
                  std::to_string(args.scaled(row.requests)));
        run.registry = census.registry;
        table.addRow(
            {row.name,
             stats::TablePrinter::num(census.distinct),
             stats::TablePrinter::num(row.paper),
             stats::TablePrinter::num(census.pltEntries)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("expected shape: firefox > mysql > apache >> "
                "memcached\n");
    return json.write() ? 0 : 1;
}
