/**
 * @file
 * Ablation: does a stronger front end subsume the mechanism?
 *
 * Two reviewer questions the paper invites:
 *  1. Would a better direction predictor (tournament vs gshare vs
 *     bimodal) change the mechanism's benefit? (It should not:
 *     trampoline costs are fetch/cache costs, and the trampoline's
 *     indirect target is perfectly predictable once resolved.)
 *  2. Would a streaming next-line I-prefetcher erase the I-cache
 *     benefit? (Only partly: a prefetcher helps straight-line
 *     code, but PLT entries are *jumped to*, not fallen into, so
 *     their lines are not covered by next-line prefetch — the
 *     paper's sparse-PLT observation in §2.2.)
 */

#include "common.hh"

using namespace dlsim;
using namespace dlsim::bench;

int
main(int argc, char **argv)
{
    BenchArgs args("ablation_frontend", argc, argv);
    banner("Ablation — front-end strength vs mechanism benefit",
           "Sections 2.2 and 6 (related work)");
    JsonOut json("ablation_frontend", args);

    auto wl = workload::apacheProfile();
    wl.seed = args.seed();

    struct Variant
    {
        std::string label;
        std::string jsonName;
        workload::MachineConfig mc;
    };
    std::vector<Variant> variants;
    for (const char *dir : {"bimodal", "gshare", "tournament"}) {
        workload::MachineConfig mc;
        mc.core.predictor.direction = dir;
        variants.push_back(
            {std::string("direction: ") + dir, dir, mc});
    }
    {
        workload::MachineConfig mc;
        mc.core.mem.iPrefetchNextLine = true;
        variants.push_back({"next-line I-prefetch",
                            "next_line_prefetch", mc});
    }
    {
        workload::MachineConfig mc;
        mc.core.predictor.indirect.enabled = true;
        variants.push_back({"VPC-style indirect target cache",
                            "indirect_cache", mc});
    }
    variants.push_back({"baseline (gshare, no prefetch)",
                        "baseline", workload::MachineConfig{}});

    // Two jobs per variant: [v0.base, v0.enh, v1.base, ...].
    std::vector<std::function<ArmResult()>> work;
    for (const Variant &v : variants) {
        for (const bool enhanced : {false, true}) {
            work.push_back([&v, enhanced, &wl, &args] {
                auto mc = v.mc;
                mc.enhanced = enhanced;
                return runArm(wl, mc, args.scaled(150),
                              args.scaled(450));
            });
        }
    }
    const auto arms = runJobs(args, std::move(work));

    stats::TablePrinter t({"Front end", "Cycle gain from ABTB"});
    for (std::size_t i = 0; i < variants.size(); ++i) {
        const Variant &v = variants[i];
        const ArmResult &b = arms[2 * i];
        const ArmResult &e = arms[2 * i + 1];
        json.add(v.jsonName + ".base", b,
                 {{"workload", "apache"},
                  {"machine", "base"},
                  {"frontend", v.jsonName}});
        json.add(v.jsonName + ".enhanced", e,
                 {{"workload", "apache"},
                  {"machine", "enhanced"},
                  {"frontend", v.jsonName}});
        const double gain =
            100.0 *
            (double(b.counters.cycles) - double(e.counters.cycles)) /
            double(b.counters.cycles);
        t.addRow({v.label,
                  stats::TablePrinter::num(gain, 2) + "%"});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("expected: the benefit survives stronger direction "
                "prediction and next-line prefetching — trampoline "
                "costs are not mispredicts or sequential-miss "
                "costs\n");
    return json.write() ? 0 : 1;
}
