/**
 * @file
 * Ablation: does a stronger front end subsume the mechanism?
 *
 * Two reviewer questions the paper invites:
 *  1. Would a better direction predictor (tournament vs gshare vs
 *     bimodal) change the mechanism's benefit? (It should not:
 *     trampoline costs are fetch/cache costs, and the trampoline's
 *     indirect target is perfectly predictable once resolved.)
 *  2. Would a streaming next-line I-prefetcher erase the I-cache
 *     benefit? (Only partly: a prefetcher helps straight-line
 *     code, but PLT entries are *jumped to*, not fallen into, so
 *     their lines are not covered by next-line prefetch — the
 *     paper's sparse-PLT observation in §2.2.)
 */

#include "common.hh"

using namespace dlsim;
using namespace dlsim::bench;

namespace
{

double
gain(JsonOut &json, const std::string &variant,
     const workload::WorkloadParams &wl,
     const workload::MachineConfig &base_mc)
{
    auto enh_mc = base_mc;
    enh_mc.enhanced = true;
    const auto b = runArm(wl, base_mc, 150, 450);
    const auto e = runArm(wl, enh_mc, 150, 450);
    json.add(variant + ".base", b,
             {{"workload", "apache"},
              {"machine", "base"},
              {"frontend", variant}});
    json.add(variant + ".enhanced", e,
             {{"workload", "apache"},
              {"machine", "enhanced"},
              {"frontend", variant}});
    return 100.0 *
           (double(b.counters.cycles) - double(e.counters.cycles)) /
           double(b.counters.cycles);
}

} // namespace

int
main(int argc, char **argv)
{
    banner("Ablation — front-end strength vs mechanism benefit",
           "Sections 2.2 and 6 (related work)");
    JsonOut json("ablation_frontend", argc, argv);

    const auto wl = workload::apacheProfile();

    stats::TablePrinter t({"Front end", "Cycle gain from ABTB"});
    for (const char *dir : {"bimodal", "gshare", "tournament"}) {
        workload::MachineConfig mc;
        mc.core.predictor.direction = dir;
        t.addRow({std::string("direction: ") + dir,
                  stats::TablePrinter::num(
                      gain(json, dir, wl, mc), 2) +
                      "%"});
    }
    {
        workload::MachineConfig mc;
        mc.core.mem.iPrefetchNextLine = true;
        t.addRow({"next-line I-prefetch",
                  stats::TablePrinter::num(
                      gain(json, "next_line_prefetch", wl, mc),
                      2) +
                      "%"});
    }
    {
        workload::MachineConfig mc;
        mc.core.predictor.indirect.enabled = true;
        t.addRow({"VPC-style indirect target cache",
                  stats::TablePrinter::num(
                      gain(json, "indirect_cache", wl, mc), 2) +
                      "%"});
    }
    {
        workload::MachineConfig mc;
        t.addRow({"baseline (gshare, no prefetch)",
                  stats::TablePrinter::num(
                      gain(json, "baseline", wl, mc), 2) +
                      "%"});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("expected: the benefit survives stronger direction "
                "prediction and next-line prefetching — trampoline "
                "costs are not mispredicts or sequential-miss "
                "costs\n");
    return json.write() ? 0 : 1;
}
