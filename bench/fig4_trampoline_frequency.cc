/**
 * @file
 * Figure 4: "Frequency of trampolines" — per-trampoline execution
 * counts sorted by rank, log-log. The paper's shapes: steep
 * cutoffs for Apache and Memcached (a specific call set per
 * request), a shallow curve for Firefox (diverse functionality),
 * and for Memcached the majority of calls in fewer than 10
 * functions.
 */

#include <algorithm>

#include "common.hh"

using namespace dlsim;
using namespace dlsim::bench;

namespace
{

/** One workload's census, fully computed inside its job. */
struct Census
{
    stats::MetricsRegistry registry;
    std::vector<std::uint64_t> counts;
};

Census
censusCounts(const char *profile, int requests,
             std::uint64_t seed)
{
    auto mc = baseMachine();
    mc.profileTrampolines = true;
    auto wl = workload::profileByName(profile);
    wl.seed = seed;
    workload::Workbench wb(wl, mc);
    for (int i = 0; i < requests; ++i)
        wb.runRequest();

    Census census;
    wb.reportMetrics(census.registry, "dlsim");
    census.counts.reserve(wb.core().trampolineCounts().size());
    for (const auto &[va, n] : wb.core().trampolineCounts())
        census.counts.push_back(n);
    std::sort(census.counts.rbegin(), census.counts.rend());
    return census;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs args("fig4_trampoline_frequency", argc, argv);
    banner("Figure 4 — trampoline frequency by rank (log-log)",
           "Section 5.1, Figure 4");
    JsonOut json("fig4_trampoline_frequency", args);

    const char *profiles[] = {"apache", "firefox", "memcached"};
    const int requests = args.scaled(900);
    std::vector<std::function<Census()>> work;
    for (const auto *p : profiles) {
        work.push_back(
            [p, requests, &args] {
                return censusCounts(p, requests, args.seed());
            });
    }
    const auto results = runJobs(args, std::move(work));

    std::vector<std::vector<std::uint64_t>> all;
    for (std::size_t i = 0; i < std::size(profiles); ++i) {
        auto &run = json.addRun(profiles[i]);
        run.with("workload", profiles[i])
            .with("machine", "base")
            .with("requests", std::to_string(requests));
        run.registry = results[i].registry;
        all.push_back(results[i].counts);
    }

    // Print log-spaced ranks, as the paper's log-log axes do.
    stats::TablePrinter table({"Rank", "apache", "firefox",
                               "memcached"});
    for (std::size_t rank = 1; rank <= 4096; rank *= 2) {
        std::vector<std::string> row{std::to_string(rank)};
        for (const auto &counts : all) {
            row.push_back(rank <= counts.size()
                              ? stats::TablePrinter::num(
                                    counts[rank - 1])
                              : "-");
        }
        table.addRow(std::move(row));
    }
    std::printf("%s\n", table.render().c_str());

    // Memcached's defining property: <10 functions dominate.
    const auto &mem = all[2];
    std::uint64_t total = 0, top10 = 0;
    for (std::size_t i = 0; i < mem.size(); ++i) {
        total += mem[i];
        if (i < 10)
            top10 += mem[i];
    }
    std::printf("memcached: top-10 trampolines carry %.1f%% of "
                "all library calls (paper: the majority)\n",
                100.0 * double(top10) / double(total));

    // Curve-shape summary: ratio of rank-1 to rank-32 counts.
    std::printf("\nsteepness (count@rank1 / count@rank32):\n");
    for (std::size_t i = 0; i < 3; ++i) {
        const auto &c = all[i];
        if (c.size() >= 32) {
            std::printf("  %-10s %.1fx%s\n", profiles[i],
                        double(c[0]) / double(std::max<
                            std::uint64_t>(1, c[31])),
                        i == 1 ? "  (expected shallowest)" : "");
        }
    }
    return json.write() ? 0 : 1;
}
