/**
 * @file
 * Machine-sensitivity ablation: how the mechanism's benefit scales
 * with the host microarchitecture — issue width, misprediction
 * penalty, and memory latency.
 *
 * The paper measured one machine (a 4-wide Core2-class Xeon). dlsim
 * can ask the question the paper could not: on which machines does
 * trampoline elision matter most? Wider machines lose more to the
 * taken-branch bubble and cache misses each trampoline adds, so the
 * relative benefit should *grow* with width.
 */

#include "common.hh"

using namespace dlsim;
using namespace dlsim::bench;

namespace
{

double
gainFor(JsonOut &json, const std::string &variant,
        const workload::MachineConfig &base_mc)
{
    const auto wl = workload::apacheProfile();
    auto enh_mc = base_mc;
    enh_mc.enhanced = true;
    const auto b = runArm(wl, base_mc, 120, 400);
    const auto e = runArm(wl, enh_mc, 120, 400);
    json.add(variant + ".base", b,
             {{"workload", "apache"},
              {"machine", "base"},
              {"variation", variant}});
    json.add(variant + ".enhanced", e,
             {{"workload", "apache"},
              {"machine", "enhanced"},
              {"variation", variant}});
    return 100.0 *
           (double(b.counters.cycles) - double(e.counters.cycles)) /
           double(b.counters.cycles);
}

} // namespace

int
main(int argc, char **argv)
{
    banner("Ablation — machine sensitivity of the benefit",
           "Section 5.4 (single-machine result, generalised)");
    JsonOut json("ablation_machine", argc, argv);

    stats::TablePrinter t({"Machine variation", "Cycle gain"});

    for (std::uint32_t width : {1u, 2u, 4u}) {
        workload::MachineConfig mc;
        mc.core.issueWidth = width;
        t.addRow({"issue width " + std::to_string(width),
                  stats::TablePrinter::num(
                      gainFor(json,
                              "width" + std::to_string(width),
                              mc),
                      2) +
                      "%"});
    }
    for (std::uint32_t penalty : {8u, 15u, 25u}) {
        workload::MachineConfig mc;
        mc.core.mispredictPenalty = penalty;
        t.addRow({"mispredict penalty " + std::to_string(penalty),
                  stats::TablePrinter::num(
                      gainFor(json,
                              "penalty" + std::to_string(penalty),
                              mc),
                      2) +
                      "%"});
    }
    for (std::uint32_t lat : {120u, 220u, 400u}) {
        workload::MachineConfig mc;
        mc.core.mem.memLatency = lat;
        t.addRow({"memory latency " + std::to_string(lat),
                  stats::TablePrinter::num(
                      gainFor(json,
                              "memlat" + std::to_string(lat),
                              mc),
                      2) +
                      "%"});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("expected: benefit grows with issue width (the "
                "taken-branch bubble and per-trampoline misses "
                "cost a larger share of a wide machine's "
                "cycles)\n");
    return json.write() ? 0 : 1;
}
