/**
 * @file
 * Machine-sensitivity ablation: how the mechanism's benefit scales
 * with the host microarchitecture — issue width, misprediction
 * penalty, and memory latency.
 *
 * The paper measured one machine (a 4-wide Core2-class Xeon). dlsim
 * can ask the question the paper could not: on which machines does
 * trampoline elision matter most? Wider machines lose more to the
 * taken-branch bubble and cache misses each trampoline adds, so the
 * relative benefit should *grow* with width.
 */

#include "common.hh"

using namespace dlsim;
using namespace dlsim::bench;

int
main(int argc, char **argv)
{
    BenchArgs args("ablation_machine", argc, argv);
    banner("Ablation — machine sensitivity of the benefit",
           "Section 5.4 (single-machine result, generalised)");
    JsonOut json("ablation_machine", args);

    auto wl = workload::apacheProfile();
    wl.seed = args.seed();

    struct Variant
    {
        std::string label;
        std::string jsonName;
        workload::MachineConfig mc;
    };
    std::vector<Variant> variants;
    for (std::uint32_t width : {1u, 2u, 4u}) {
        workload::MachineConfig mc;
        mc.core.issueWidth = width;
        variants.push_back(
            {"issue width " + std::to_string(width),
             "width" + std::to_string(width), mc});
    }
    for (std::uint32_t penalty : {8u, 15u, 25u}) {
        workload::MachineConfig mc;
        mc.core.mispredictPenalty = penalty;
        variants.push_back(
            {"mispredict penalty " + std::to_string(penalty),
             "penalty" + std::to_string(penalty), mc});
    }
    for (std::uint32_t lat : {120u, 220u, 400u}) {
        workload::MachineConfig mc;
        mc.core.mem.memLatency = lat;
        variants.push_back(
            {"memory latency " + std::to_string(lat),
             "memlat" + std::to_string(lat), mc});
    }

    // Warm-up-once: all 18 (variant, base/enhanced) arms restore
    // one warm base-machine checkpoint. Issue width, penalties, and
    // memory latency are pure timing inputs, and the skip unit is
    // (re)created cold per arm — so fanning out from shared state
    // is exactly equivalent to warming each arm separately, minus
    // 17 redundant warm-up simulations.
    const workload::MachineConfig refMc = baseMachine();
    const auto prog =
        std::make_shared<const workload::BuiltProgram>(
            workload::buildProgram(wl));
    const auto state =
        warmState(args, "", wl, refMc, args.scaled(120), prog);

    // Two jobs per variant: [v0.base, v0.enh, v1.base, ...].
    std::vector<std::function<ArmResult()>> work;
    for (const Variant &v : variants) {
        for (const bool enhanced : {false, true}) {
            work.push_back([&v, enhanced, &wl, &args, &refMc,
                            &state, &prog] {
                auto mc = v.mc;
                mc.enhanced = enhanced;
                return runArmFromState(state, wl, refMc, mc,
                                       args.scaled(400),
                                       sim::SampleParams{}, prog);
            });
        }
    }
    const auto arms = runJobs(args, std::move(work));

    stats::TablePrinter t({"Machine variation", "Cycle gain"});
    for (std::size_t i = 0; i < variants.size(); ++i) {
        const Variant &v = variants[i];
        const ArmResult &b = arms[2 * i];
        const ArmResult &e = arms[2 * i + 1];
        json.add(v.jsonName + ".base", b,
                 {{"workload", "apache"},
                  {"machine", "base"},
                  {"variation", v.jsonName}});
        json.add(v.jsonName + ".enhanced", e,
                 {{"workload", "apache"},
                  {"machine", "enhanced"},
                  {"variation", v.jsonName}});
        const double gain =
            100.0 *
            (double(b.counters.cycles) - double(e.counters.cycles)) /
            double(b.counters.cycles);
        t.addRow({v.label,
                  stats::TablePrinter::num(gain, 2) + "%"});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("expected: benefit grows with issue width (the "
                "taken-branch bubble and per-trampoline misses "
                "cost a larger share of a wide machine's "
                "cycles)\n");
    return json.write() ? 0 : 1;
}
