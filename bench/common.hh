/**
 * @file
 * Shared helpers for the reproduction benches: run a calibrated
 * workload on one machine arm and collect counters or per-request
 * latency samples.
 *
 * Every bench prints the paper's corresponding table/figure rows
 * next to the measured values. Absolute numbers are not expected to
 * match (the substrate is a simulator, not the authors' Xeon); the
 * shape — who wins, roughly by what factor — is the claim under
 * reproduction.
 */

#ifndef DLSIM_BENCH_COMMON_HH
#define DLSIM_BENCH_COMMON_HH

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "stats/cdf.hh"
#include "stats/histogram.hh"
#include "stats/metrics.hh"
#include "stats/table.hh"
#include "workload/engine.hh"
#include "workload/profiles.hh"

namespace dlsim::bench
{

/** Result of one measured arm. */
struct ArmResult
{
    cpu::PerfCounters counters;
    /** Latency samples per request kind (cycles). */
    std::vector<stats::SampleSet> latency;
    /** Distinct trampolines executed (profiling arms only). */
    std::uint64_t distinctTrampolines = 0;
    /** Skip-unit stats (enhanced arms only). */
    core::SkipUnitStats skipStats;
    /** Full metrics snapshot (dlsim.* namespace), including
     *  per-request-kind latency histograms. */
    stats::MetricsRegistry registry;
};

/** Run one arm of an experiment. */
inline ArmResult
runArm(const workload::WorkloadParams &wl,
       const workload::MachineConfig &mc, int warmup, int requests)
{
    workload::Workbench wb(wl, mc);
    wb.warmup(static_cast<std::uint32_t>(warmup));

    ArmResult result;
    result.latency.resize(wl.requests.size());
    for (int i = 0; i < requests; ++i) {
        const auto r = wb.runRequest();
        result.latency[r.kind].add(static_cast<double>(r.cycles));
    }
    result.counters = wb.core().counters();
    if (mc.profileTrampolines)
        result.distinctTrampolines =
            wb.distinctTrampolinesExecuted();
    if (wb.core().skipUnit())
        result.skipStats = wb.core().skipUnit()->stats();
    wb.reportMetrics(result.registry, "dlsim");
    for (std::size_t k = 0; k < result.latency.size(); ++k) {
        result.registry.histogram("dlsim.workload.latency." +
                                      wl.requests[k].name,
                                  result.latency[k]);
    }
    return result;
}

/**
 * `--json-out <path>` handling shared by every bench binary.
 *
 * Runs are collected unconditionally (snapshots are cheap relative
 * to simulation) but the document is only written when the flag was
 * given. All JsonOut messages go to stderr, so the human-readable
 * stdout tables are byte-identical with or without the flag.
 */
class JsonOut
{
  public:
    JsonOut(const char *tool, int argc, char **argv) : doc_(tool)
    {
        for (int i = 1; i < argc; ++i) {
            if (std::string(argv[i]) == "--json-out" &&
                i + 1 < argc) {
                path_ = argv[i + 1];
                ++i;
            }
        }
    }

    bool enabled() const { return !path_.empty(); }

    /** Record one measured arm under `name`. */
    void
    add(const std::string &name, const ArmResult &result,
        std::vector<std::pair<std::string, std::string>> context =
            {})
    {
        auto &run = doc_.addRun(name);
        run.context = std::move(context);
        run.registry = result.registry;
    }

    /** Record a run filled by the caller (non-runArm benches). */
    stats::MetricsRun &
    addRun(const std::string &name)
    {
        return doc_.addRun(name);
    }

    /**
     * Write the document if --json-out was given.
     * @return False on I/O failure (diagnostic on stderr).
     */
    bool
    write() const
    {
        if (path_.empty())
            return true;
        std::string error;
        if (!doc_.writeFile(path_, &error)) {
            std::fprintf(stderr, "json-out: %s\n", error.c_str());
            return false;
        }
        std::fprintf(stderr, "json-out: wrote %s\n", path_.c_str());
        return true;
    }

  private:
    stats::MetricsDocument doc_;
    std::string path_;
};

/** Convenience: base-machine arm. */
inline workload::MachineConfig
baseMachine()
{
    return workload::MachineConfig{};
}

/** Convenience: paper-default enhanced arm (256-entry ABTB). */
inline workload::MachineConfig
enhancedMachine()
{
    workload::MachineConfig mc;
    mc.enhanced = true;
    return mc;
}

/** Print the standard bench banner. */
inline void
banner(const char *what, const char *paper_ref)
{
    std::printf("================================================"
                "===============\n");
    std::printf("dlsim reproduction: %s\n", what);
    std::printf("paper reference: %s\n", paper_ref);
    std::printf("================================================"
                "===============\n\n");
}

} // namespace dlsim::bench

#endif // DLSIM_BENCH_COMMON_HH
