/**
 * @file
 * Shared helpers for the reproduction benches: run a calibrated
 * workload on one machine arm and collect counters or per-request
 * latency samples.
 *
 * Every bench prints the paper's corresponding table/figure rows
 * next to the measured values. Absolute numbers are not expected to
 * match (the substrate is a simulator, not the authors' Xeon); the
 * shape — who wins, roughly by what factor — is the claim under
 * reproduction.
 *
 * Benches execute their measurement grid through sim::JobRunner:
 * every arm is an independent job (own Workbench, own registry, own
 * RNG streams), jobs run on `--jobs N` host threads, and results
 * come back in submission order — so stdout tables and --json-out
 * documents are byte-identical for every N. See
 * docs/performance.md.
 */

#ifndef DLSIM_BENCH_COMMON_HH
#define DLSIM_BENCH_COMMON_HH

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "sim/job_runner.hh"
#include "stats/cdf.hh"
#include "stats/histogram.hh"
#include "stats/metrics.hh"
#include "stats/table.hh"
#include "workload/engine.hh"
#include "workload/profiles.hh"

namespace dlsim::bench
{

/**
 * Command-line arguments shared by every bench binary.
 *
 * Accepted flags (and nothing else — unknown flags, positional
 * arguments and duplicated flags are rejected with exit code 2):
 *
 *   --jobs N         run the measurement grid on N host threads
 *                    (default: hardware concurrency; 1 = serial)
 *   --quick          shrink warmup/request counts ~8x for smoke
 *                    runs and wall-clock comparisons
 *   --json-out FILE  write a dlsim-metrics-v1 JSON document
 *   --help           print this usage text and exit 0
 */
class BenchArgs
{
  public:
    BenchArgs(const char *tool, int argc, char **argv)
        : tool_(tool)
    {
        bool saw_jobs = false, saw_json = false;
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg == "--help" || arg == "-h") {
                printHelp(stdout);
                std::exit(0);
            } else if (arg == "--quick") {
                quick_ = true;
            } else if (arg == "--jobs") {
                if (saw_jobs)
                    die("duplicate --jobs");
                saw_jobs = true;
                if (i + 1 >= argc)
                    die("--jobs requires a count");
                const long n = std::atol(argv[++i]);
                if (n < 1)
                    die("--jobs requires a count >= 1");
                jobs_ = static_cast<unsigned>(n);
            } else if (arg == "--json-out") {
                if (saw_json)
                    die("duplicate --json-out");
                saw_json = true;
                if (i + 1 >= argc)
                    die("--json-out requires a path");
                jsonOut_ = argv[++i];
            } else {
                die(("unknown argument '" + arg + "'").c_str());
            }
        }
        if (jobs_ == 0)
            jobs_ = sim::JobRunner::defaultJobs();
    }

    unsigned jobs() const { return jobs_; }
    bool quick() const { return quick_; }
    const std::string &jsonOut() const { return jsonOut_; }

    /** Scale a warmup/request count for --quick runs. */
    int
    scaled(int n) const
    {
        return quick_ ? std::max(1, n / 8) : n;
    }

  private:
    void
    printHelp(std::FILE *to) const
    {
        std::fprintf(
            to,
            "usage: %s [--jobs N] [--quick] [--json-out FILE]\n"
            "\n"
            "  --jobs N         run independent experiment arms "
            "on N host\n"
            "                   threads (default: hardware "
            "concurrency;\n"
            "                   1 = serial). Output is "
            "byte-identical for\n"
            "                   every N.\n"
            "  --quick          shrink warmup/request counts "
            "(~8x) for\n"
            "                   smoke runs\n"
            "  --json-out FILE  also write a dlsim-metrics-v1 "
            "JSON\n"
            "                   document to FILE\n"
            "  --help           show this text\n",
            tool_.c_str());
    }

    [[noreturn]] void
    die(const char *message) const
    {
        std::fprintf(stderr, "%s: %s\n", tool_.c_str(), message);
        printHelp(stderr);
        std::exit(2);
    }

    std::string tool_;
    unsigned jobs_ = 0;
    bool quick_ = false;
    std::string jsonOut_;
};

/** Result of one measured arm. */
struct ArmResult
{
    cpu::PerfCounters counters;
    /** Latency samples per request kind (cycles). */
    std::vector<stats::SampleSet> latency;
    /** Distinct trampolines executed (profiling arms only). */
    std::uint64_t distinctTrampolines = 0;
    /** Skip-unit stats (enhanced arms only). */
    core::SkipUnitStats skipStats;
    /** Full metrics snapshot (dlsim.* namespace), including
     *  per-request-kind latency histograms. */
    stats::MetricsRegistry registry;
};

/** Run one arm of an experiment. */
inline ArmResult
runArm(const workload::WorkloadParams &wl,
       const workload::MachineConfig &mc, int warmup, int requests)
{
    workload::Workbench wb(wl, mc);
    wb.warmup(static_cast<std::uint32_t>(warmup));

    ArmResult result;
    result.latency.resize(wl.requests.size());
    for (int i = 0; i < requests; ++i) {
        const auto r = wb.runRequest();
        result.latency[r.kind].add(static_cast<double>(r.cycles));
    }
    result.counters = wb.core().counters();
    if (mc.profileTrampolines)
        result.distinctTrampolines =
            wb.distinctTrampolinesExecuted();
    if (wb.core().skipUnit())
        result.skipStats = wb.core().skipUnit()->stats();
    wb.reportMetrics(result.registry, "dlsim");
    for (std::size_t k = 0; k < result.latency.size(); ++k) {
        result.registry.histogram("dlsim.workload.latency." +
                                      wl.requests[k].name,
                                  result.latency[k]);
    }
    return result;
}

/**
 * Execute a bench's independent jobs on the shared runner,
 * honouring --jobs. Results come back in submission order;
 * accumulate tables/JSON from them serially afterwards.
 */
template <typename R>
inline std::vector<R>
runJobs(const BenchArgs &args,
        std::vector<std::function<R()>> work)
{
    sim::JobRunner runner(args.jobs());
    return runner.run(std::move(work));
}

/**
 * `--json-out <path>` handling shared by every bench binary.
 *
 * Runs are collected unconditionally (snapshots are cheap relative
 * to simulation) but the document is only written when the flag was
 * given. All JsonOut messages go to stderr, so the human-readable
 * stdout tables are byte-identical with or without the flag.
 */
class JsonOut
{
  public:
    JsonOut(const char *tool, const BenchArgs &args)
        : doc_(tool), path_(args.jsonOut())
    {
    }

    bool enabled() const { return !path_.empty(); }

    /** Record one measured arm under `name`. */
    void
    add(const std::string &name, const ArmResult &result,
        std::vector<std::pair<std::string, std::string>> context =
            {})
    {
        auto &run = doc_.addRun(name);
        run.context = std::move(context);
        run.registry = result.registry;
    }

    /** Record a run filled by the caller (non-runArm benches). */
    stats::MetricsRun &
    addRun(const std::string &name)
    {
        return doc_.addRun(name);
    }

    /**
     * Write the document if --json-out was given.
     * @return False on I/O failure (diagnostic on stderr).
     */
    bool
    write() const
    {
        if (path_.empty())
            return true;
        std::string error;
        if (!doc_.writeFile(path_, &error)) {
            std::fprintf(stderr, "json-out: %s\n", error.c_str());
            return false;
        }
        std::fprintf(stderr, "json-out: wrote %s\n", path_.c_str());
        return true;
    }

  private:
    stats::MetricsDocument doc_;
    std::string path_;
};

/** Convenience: base-machine arm. */
inline workload::MachineConfig
baseMachine()
{
    return workload::MachineConfig{};
}

/** Convenience: paper-default enhanced arm (256-entry ABTB). */
inline workload::MachineConfig
enhancedMachine()
{
    workload::MachineConfig mc;
    mc.enhanced = true;
    return mc;
}

/** Print the standard bench banner. */
inline void
banner(const char *what, const char *paper_ref)
{
    std::printf("================================================"
                "===============\n");
    std::printf("dlsim reproduction: %s\n", what);
    std::printf("paper reference: %s\n", paper_ref);
    std::printf("================================================"
                "===============\n\n");
}

} // namespace dlsim::bench

#endif // DLSIM_BENCH_COMMON_HH
