/**
 * @file
 * Shared helpers for the reproduction benches: run a calibrated
 * workload on one machine arm and collect counters or per-request
 * latency samples.
 *
 * Every bench prints the paper's corresponding table/figure rows
 * next to the measured values. Absolute numbers are not expected to
 * match (the substrate is a simulator, not the authors' Xeon); the
 * shape — who wins, roughly by what factor — is the claim under
 * reproduction.
 */

#ifndef DLSIM_BENCH_COMMON_HH
#define DLSIM_BENCH_COMMON_HH

#include <cstdio>
#include <string>
#include <vector>

#include "stats/cdf.hh"
#include "stats/histogram.hh"
#include "stats/table.hh"
#include "workload/engine.hh"
#include "workload/profiles.hh"

namespace dlsim::bench
{

/** Result of one measured arm. */
struct ArmResult
{
    cpu::PerfCounters counters;
    /** Latency samples per request kind (cycles). */
    std::vector<stats::SampleSet> latency;
    /** Distinct trampolines executed (profiling arms only). */
    std::uint64_t distinctTrampolines = 0;
    /** Skip-unit stats (enhanced arms only). */
    core::SkipUnitStats skipStats;
};

/** Run one arm of an experiment. */
inline ArmResult
runArm(const workload::WorkloadParams &wl,
       const workload::MachineConfig &mc, int warmup, int requests)
{
    workload::Workbench wb(wl, mc);
    wb.warmup(static_cast<std::uint32_t>(warmup));

    ArmResult result;
    result.latency.resize(wl.requests.size());
    for (int i = 0; i < requests; ++i) {
        const auto r = wb.runRequest();
        result.latency[r.kind].add(static_cast<double>(r.cycles));
    }
    result.counters = wb.core().counters();
    if (mc.profileTrampolines)
        result.distinctTrampolines =
            wb.distinctTrampolinesExecuted();
    if (wb.core().skipUnit())
        result.skipStats = wb.core().skipUnit()->stats();
    return result;
}

/** Convenience: base-machine arm. */
inline workload::MachineConfig
baseMachine()
{
    return workload::MachineConfig{};
}

/** Convenience: paper-default enhanced arm (256-entry ABTB). */
inline workload::MachineConfig
enhancedMachine()
{
    workload::MachineConfig mc;
    mc.enhanced = true;
    return mc;
}

/** Print the standard bench banner. */
inline void
banner(const char *what, const char *paper_ref)
{
    std::printf("================================================"
                "===============\n");
    std::printf("dlsim reproduction: %s\n", what);
    std::printf("paper reference: %s\n", paper_ref);
    std::printf("================================================"
                "===============\n\n");
}

} // namespace dlsim::bench

#endif // DLSIM_BENCH_COMMON_HH
