/**
 * @file
 * Shared helpers for the reproduction benches: run a calibrated
 * workload on one machine arm and collect counters or per-request
 * latency samples.
 *
 * Every bench prints the paper's corresponding table/figure rows
 * next to the measured values. Absolute numbers are not expected to
 * match (the substrate is a simulator, not the authors' Xeon); the
 * shape — who wins, roughly by what factor — is the claim under
 * reproduction.
 *
 * Benches execute their measurement grid through sim::JobRunner:
 * every arm is an independent job (own Workbench, own registry, own
 * RNG streams), jobs run on `--jobs N` host threads, and results
 * come back in submission order — so stdout tables and --json-out
 * documents are byte-identical for every N. See
 * docs/performance.md.
 */

#ifndef DLSIM_BENCH_COMMON_HH
#define DLSIM_BENCH_COMMON_HH

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "sim/job_runner.hh"
#include "sim/sampled.hh"
#include "snapshot/format.hh"
#include "snapshot/io.hh"
#include "snapshot/serializer.hh"
#include "stats/cdf.hh"
#include "stats/histogram.hh"
#include "stats/metrics.hh"
#include "stats/table.hh"
#include "workload/engine.hh"
#include "workload/profiles.hh"

namespace dlsim::bench
{

/**
 * Command-line arguments shared by every bench binary.
 *
 * Accepted flags (and nothing else — unknown flags, positional
 * arguments and duplicated flags are rejected with exit code 2):
 *
 *   --jobs N         run the measurement grid on N host threads
 *                    (default: affinity-mask CPUs; 1 = serial)
 *   --quick          shrink warmup/request counts ~8x for smoke
 *                    runs and wall-clock comparisons
 *   --sample W:D:F   sampled execution (default off = exact mode):
 *                    alternate W detailed warmup + D detailed
 *                    measured + F functional fast-forward insts
 *   --seed N         workload RNG seed (default 42)
 *   --blocks 0|1     disable/enable basic-block dispatch in both
 *                    executors (default 1; purely a simulator-speed
 *                    knob, metrics are byte-identical either way)
 *   --json-out FILE  write a dlsim-metrics-v1 JSON document
 *   --snapshot-after FILE  snapshot-capable benches: also write the
 *                    post-warm-up machine state to FILE
 *   --from-snapshot FILE   snapshot-capable benches: restore the
 *                    warm state from FILE instead of simulating the
 *                    warm-up phase; output is byte-identical
 *   --help           print this usage text and exit 0
 */
class BenchArgs
{
  public:
    /**
     * A benchmark-specific integer flag (e.g. server_traffic's
     * --requests). Parsed with the same strictness as the shared
     * flags: duplicates and missing values die with exit 2, and the
     * flag appears in --help.
     */
    struct ExtraFlag
    {
        const char *name; ///< Without the leading "--".
        const char *help; ///< One-line description.
        long long value;  ///< Default in, parsed value out.
    };

    BenchArgs(const char *tool, int argc, char **argv)
        : BenchArgs(tool, argc, argv, {})
    {
    }

    BenchArgs(const char *tool, int argc, char **argv,
              std::vector<ExtraFlag> extras)
        : tool_(tool), extras_(std::move(extras))
    {
        std::vector<bool> saw_extra(extras_.size(), false);
        bool saw_jobs = false, saw_json = false;
        bool saw_seed = false, saw_snap = false, saw_from = false;
        bool saw_sample = false, saw_blocks = false;
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg == "--help" || arg == "-h") {
                printHelp(stdout);
                std::exit(0);
            } else if (arg == "--quick") {
                quick_ = true;
            } else if (arg == "--jobs") {
                if (saw_jobs)
                    die("duplicate --jobs");
                saw_jobs = true;
                if (i + 1 >= argc)
                    die("--jobs requires a count");
                const long n = std::atol(argv[++i]);
                if (n < 1)
                    die("--jobs requires a count >= 1");
                jobs_ = static_cast<unsigned>(n);
            } else if (arg == "--sample" ||
                       arg.rfind("--sample=", 0) == 0) {
                if (saw_sample)
                    die("duplicate --sample");
                saw_sample = true;
                std::string spec;
                if (arg == "--sample") {
                    if (i + 1 >= argc)
                        die("--sample requires a W:D:F spec");
                    spec = argv[++i];
                } else {
                    spec = arg.substr(9);
                }
                std::string error;
                if (!sim::SampleParams::parse(spec, sample_,
                                              &error))
                    die(("--sample: " + error).c_str());
            } else if (arg == "--seed") {
                if (saw_seed)
                    die("duplicate --seed");
                saw_seed = true;
                if (i + 1 >= argc)
                    die("--seed requires a value");
                seed_ = static_cast<std::uint64_t>(
                    std::atoll(argv[++i]));
            } else if (arg == "--blocks") {
                if (saw_blocks)
                    die("duplicate --blocks");
                saw_blocks = true;
                if (i + 1 >= argc)
                    die("--blocks requires 0 or 1");
                const std::string v = argv[++i];
                if (v != "0" && v != "1")
                    die("--blocks requires 0 or 1");
                blocks_ = v == "1";
            } else if (arg == "--json-out") {
                if (saw_json)
                    die("duplicate --json-out");
                saw_json = true;
                if (i + 1 >= argc)
                    die("--json-out requires a path");
                jsonOut_ = argv[++i];
            } else if (arg == "--snapshot-after") {
                if (saw_snap)
                    die("duplicate --snapshot-after");
                saw_snap = true;
                if (i + 1 >= argc)
                    die("--snapshot-after requires a path");
                snapshotAfter_ = argv[++i];
            } else if (arg == "--from-snapshot") {
                if (saw_from)
                    die("duplicate --from-snapshot");
                saw_from = true;
                if (i + 1 >= argc)
                    die("--from-snapshot requires a path");
                fromSnapshot_ = argv[++i];
            } else {
                std::size_t e = 0;
                for (; e < extras_.size(); ++e)
                    if (arg == "--" + std::string(extras_[e].name))
                        break;
                if (e == extras_.size())
                    die(("unknown argument '" + arg + "'")
                            .c_str());
                if (saw_extra[e])
                    die(("duplicate " + arg).c_str());
                saw_extra[e] = true;
                if (i + 1 >= argc)
                    die((arg + " requires a value").c_str());
                extras_[e].value = std::atoll(argv[++i]);
            }
        }
        if (jobs_ == 0)
            jobs_ = sim::JobRunner::defaultJobs();
    }

    unsigned jobs() const { return jobs_; }
    bool quick() const { return quick_; }
    bool blocks() const { return blocks_; }
    const sim::SampleParams &sample() const { return sample_; }
    std::uint64_t seed() const { return seed_; }
    const std::string &jsonOut() const { return jsonOut_; }
    const std::string &snapshotAfter() const
    {
        return snapshotAfter_;
    }
    const std::string &fromSnapshot() const
    {
        return fromSnapshot_;
    }
    const std::string &tool() const { return tool_; }

    /** Scale a warmup/request count for --quick runs. */
    int
    scaled(int n) const
    {
        return quick_ ? std::max(1, n / 8) : n;
    }

    /** Value of a registered ExtraFlag (default or parsed). */
    long long
    extra(const char *name) const
    {
        for (const ExtraFlag &e : extras_)
            if (std::string(e.name) == name)
                return e.value;
        std::abort(); // Flag was never registered: caller bug.
    }

  private:
    void
    printHelp(std::FILE *to) const
    {
        std::fprintf(
            to,
            "usage: %s [--jobs N] [--quick] [--sample W:D:F] "
            "[--seed N]\n"
            "       [--json-out FILE] [--snapshot-after FILE]\n"
            "       [--from-snapshot FILE]\n"
            "\n"
            "  --jobs N         run independent experiment arms "
            "on N host\n"
            "                   threads (default: hardware "
            "concurrency;\n"
            "                   1 = serial). Output is "
            "byte-identical for\n"
            "                   every N.\n"
            "  --quick          shrink warmup/request counts "
            "(~8x) for\n"
            "                   smoke runs\n"
            "  --sample W:D:F   sampled execution (default off = "
            "exact):\n"
            "                   alternate W warmup + D measured "
            "detailed\n"
            "                   instructions with F functional "
            "fast-forward\n"
            "                   instructions; cycles are CPI "
            "extrapolations\n"
            "  --seed N         workload RNG seed (default 42)\n"
            "  --blocks 0|1     disable/enable basic-block "
            "dispatch in\n"
            "                   both executors (default 1; "
            "metrics are\n"
            "                   byte-identical either way)\n"
            "  --json-out FILE  also write a dlsim-metrics-v1 "
            "JSON\n"
            "                   document to FILE\n"
            "  --snapshot-after FILE\n"
            "                   snapshot-capable benches: also "
            "write the\n"
            "                   post-warm-up machine state to "
            "FILE\n"
            "  --from-snapshot FILE\n"
            "                   snapshot-capable benches: restore "
            "the warm\n"
            "                   state from FILE instead of "
            "simulating the\n"
            "                   warm-up; output is "
            "byte-identical\n"
            "  --help           show this text\n",
            tool_.c_str());
        for (const ExtraFlag &e : extras_)
            std::fprintf(to, "  --%-14s %s (default %lld)\n",
                         e.name, e.help, e.value);
    }

    [[noreturn]] void
    die(const char *message) const
    {
        std::fprintf(stderr, "%s: %s\n", tool_.c_str(), message);
        printHelp(stderr);
        std::exit(2);
    }

    std::string tool_;
    unsigned jobs_ = 0;
    bool quick_ = false;
    bool blocks_ = true;
    sim::SampleParams sample_;
    std::uint64_t seed_ = 42;
    std::string jsonOut_;
    std::string snapshotAfter_;
    std::string fromSnapshot_;
    std::vector<ExtraFlag> extras_;
};

/** Result of one measured arm. */
struct ArmResult
{
    cpu::PerfCounters counters;
    /** Latency samples per request kind (cycles). */
    std::vector<stats::SampleSet> latency;
    /** Distinct trampolines executed (profiling arms only). */
    std::uint64_t distinctTrampolines = 0;
    /** Skip-unit stats (enhanced arms only). */
    core::SkipUnitStats skipStats;
    /**
     * Block-translation-cache statistics from the image, for
     * wall-clock reporting. Deliberately NOT part of `registry`:
     * they describe the simulator process (and are zero with
     * --blocks 0), while the registry must stay byte-identical
     * whichever dispatch engine ran.
     */
    std::uint64_t blockHits = 0;
    std::uint64_t blockBuilds = 0;
    std::uint64_t blockFlushes = 0;
    /** Full metrics snapshot (dlsim.* namespace), including
     *  per-request-kind latency histograms. */
    stats::MetricsRegistry registry;
};

/** Measurement phase shared by runArm and runArmFromState. */
inline ArmResult
measureArm(workload::Workbench &wb, int requests)
{
    const auto &wl = wb.params();
    ArmResult result;
    result.latency.resize(wl.requests.size());
    for (int i = 0; i < requests; ++i) {
        const auto r = wb.runRequest();
        result.latency[r.kind].add(static_cast<double>(r.cycles));
    }
    result.counters = wb.core().counters();
    result.blockHits = wb.image().blockCacheHits();
    result.blockBuilds = wb.image().blockCacheBuilds();
    result.blockFlushes = wb.image().blockCacheFlushes();
    if (wb.machine().profileTrampolines)
        result.distinctTrampolines =
            wb.distinctTrampolinesExecuted();
    if (wb.core().skipUnit())
        result.skipStats = wb.core().skipUnit()->stats();
    wb.reportMetrics(result.registry, "dlsim");
    for (std::size_t k = 0; k < result.latency.size(); ++k) {
        result.registry.histogram("dlsim.workload.latency." +
                                      wl.requests[k].name,
                                  result.latency[k]);
    }
    return result;
}

/**
 * Run one arm of an experiment. With `sp.enabled` the arm runs in
 * sampled mode (detailed windows + functional fast-forward; see
 * sim::SampledExecution). A non-null `prog` supplies a pre-built
 * program shared across arms of the same workload.
 */
inline ArmResult
runArm(const workload::WorkloadParams &wl,
       const workload::MachineConfig &mc, int warmup, int requests,
       const sim::SampleParams &sp = {},
       std::shared_ptr<const workload::BuiltProgram> prog = nullptr)
{
    std::optional<workload::Workbench> wb;
    if (prog)
        wb.emplace(wl, mc, std::move(prog));
    else
        wb.emplace(wl, mc);
    wb->setSampling(sp);
    wb->warmup(static_cast<std::uint32_t>(warmup));
    return measureArm(*wb, requests);
}

/**
 * Warm-machine state for a snapshot-capable bench: warm up one
 * reference Workbench and serialize it, or — under --from-snapshot —
 * read the serialized bytes back instead of simulating the warm-up.
 * Either way every sweep arm starts from the same byte buffer, so
 * output is identical whichever path produced it. `key` (a workload
 * name, may be empty) suffixes the snapshot file of multi-workload
 * benches. Snapshot failures (bad magic/version/CRC, parameter
 * fingerprint mismatch, I/O errors) are fatal: diagnostic on stderr,
 * exit 1, never partial state.
 *
 * Under --sample the warm-up itself runs sampled: linking state
 * (GOT entries, lazy-binding progress) is architecturally exact
 * either way, only microarchitectural warmth is approximate — so
 * the serialized bytes differ from an exact warm-up's, and a
 * snapshot written with --sample should be restored with --sample.
 */
inline std::vector<std::uint8_t>
warmState(const BenchArgs &args, const std::string &key,
          const workload::WorkloadParams &wl,
          const workload::MachineConfig &ref_mc, int warmup,
          std::shared_ptr<const workload::BuiltProgram> prog =
              nullptr)
{
    const std::string suffix = key.empty() ? "" : "." + key;
    try {
        if (!args.fromSnapshot().empty()) {
            const std::string path = args.fromSnapshot() + suffix;
            auto bytes = snapshot::readFile(path);
            workload::checkSnapshotCompatible(bytes, wl, ref_mc);
            // Verify payload checksums once here; the per-arm
            // restores below then treat the buffer as trusted.
            snapshot::Deserializer(bytes.data(), bytes.size())
                .verifyAllSections();
            std::fprintf(stderr,
                         "snapshot: warm state restored from %s "
                         "(%zu bytes)\n",
                         path.c_str(), bytes.size());
            return bytes;
        }
        std::optional<workload::Workbench> wb;
        if (prog)
            wb.emplace(wl, ref_mc, std::move(prog));
        else
            wb.emplace(wl, ref_mc);
        wb->setSampling(args.sample());
        wb->warmup(static_cast<std::uint32_t>(warmup));
        auto bytes = workload::snapshotWorkbench(*wb);
        if (!args.snapshotAfter().empty()) {
            const std::string path = args.snapshotAfter() + suffix;
            snapshot::writeFile(path, bytes);
            std::fprintf(stderr,
                         "snapshot: warm state written to %s "
                         "(%zu bytes)\n",
                         path.c_str(), bytes.size());
        }
        return bytes;
    } catch (const snapshot::SnapshotError &e) {
        std::fprintf(stderr, "%s: %s\n", args.tool().c_str(),
                     e.what());
        std::exit(1);
    }
}

/**
 * Run one sweep arm from shared warm-state bytes: rebuild a
 * Workbench on the reference machine, restore the snapshot into it,
 * then reconfigure to the arm's machine (timing scalars and a fresh
 * cold skip unit; see Workbench::reconfigure). Thread-safe against
 * concurrent arms — the byte buffer is only read.
 */
inline ArmResult
runArmFromState(const std::vector<std::uint8_t> &state,
                const workload::WorkloadParams &wl,
                const workload::MachineConfig &ref_mc,
                const workload::MachineConfig &arm_mc, int requests,
                const sim::SampleParams &sp = {},
                std::shared_ptr<const workload::BuiltProgram> prog =
                    nullptr)
{
    if (!prog)
        prog = std::make_shared<const workload::BuiltProgram>(
            workload::buildProgram(wl));
    // for_restore: the restore below replaces every address-space
    // page, so the construction skips seeding them.
    std::optional<workload::Workbench> wb;
    wb.emplace(wl, ref_mc, std::move(prog), /*for_restore=*/true);
    // Trusted: warmState either serialized these bytes in-process
    // or verified the file's checksums once up front.
    workload::restoreWorkbench(*wb, state.data(), state.size(),
                               /*trusted=*/true);
    wb->reconfigure(arm_mc);
    wb->setSampling(sp);
    return measureArm(*wb, requests);
}

/**
 * Execute a bench's independent jobs on the shared runner,
 * honouring --jobs. Results come back in submission order;
 * accumulate tables/JSON from them serially afterwards.
 */
template <typename R>
inline std::vector<R>
runJobs(const BenchArgs &args,
        std::vector<std::function<R()>> work)
{
    sim::JobRunner runner(args.jobs());
    return runner.run(std::move(work));
}

/**
 * Append the sampled-mode provenance tags (`sampled=1` plus the
 * W:D:F spec) to a run's context when --sample is active, so a
 * dlsim-metrics-v1 document always distinguishes extrapolated
 * numbers from exact ones.
 */
inline std::vector<std::pair<std::string, std::string>>
withSampleContext(
    const BenchArgs &args,
    std::vector<std::pair<std::string, std::string>> context)
{
    if (args.sample().enabled) {
        context.emplace_back("sampled", "1");
        context.emplace_back("sample", args.sample().spec());
    }
    return context;
}

/**
 * `--json-out <path>` handling shared by every bench binary.
 *
 * Runs are collected unconditionally (snapshots are cheap relative
 * to simulation) but the document is only written when the flag was
 * given. All JsonOut messages go to stderr, so the human-readable
 * stdout tables are byte-identical with or without the flag.
 */
class JsonOut
{
  public:
    JsonOut(const char *tool, const BenchArgs &args)
        : doc_(tool), path_(args.jsonOut())
    {
    }

    bool enabled() const { return !path_.empty(); }

    /** Record one measured arm under `name`. */
    void
    add(const std::string &name, const ArmResult &result,
        std::vector<std::pair<std::string, std::string>> context =
            {})
    {
        auto &run = doc_.addRun(name);
        run.context = std::move(context);
        run.registry = result.registry;
    }

    /** Record a run filled by the caller (non-runArm benches). */
    stats::MetricsRun &
    addRun(const std::string &name)
    {
        return doc_.addRun(name);
    }

    /**
     * Write the document if --json-out was given.
     * @return False on I/O failure (diagnostic on stderr).
     */
    bool
    write() const
    {
        if (path_.empty())
            return true;
        std::string error;
        if (!doc_.writeFile(path_, &error)) {
            std::fprintf(stderr, "json-out: %s\n", error.c_str());
            return false;
        }
        std::fprintf(stderr, "json-out: wrote %s\n", path_.c_str());
        return true;
    }

  private:
    stats::MetricsDocument doc_;
    std::string path_;
};

/** Convenience: base-machine arm. */
inline workload::MachineConfig
baseMachine()
{
    return workload::MachineConfig{};
}

/** Convenience: paper-default enhanced arm (256-entry ABTB). */
inline workload::MachineConfig
enhancedMachine()
{
    workload::MachineConfig mc;
    mc.enhanced = true;
    return mc;
}

/** Print the standard bench banner. */
inline void
banner(const char *what, const char *paper_ref)
{
    std::printf("================================================"
                "===============\n");
    std::printf("dlsim reproduction: %s\n", what);
    std::printf("paper reference: %s\n", paper_ref);
    std::printf("================================================"
                "===============\n\n");
}

} // namespace dlsim::bench

#endif // DLSIM_BENCH_COMMON_HH
