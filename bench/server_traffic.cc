/**
 * @file
 * Multi-tenant server traffic: the OS-like layer (os::Kernel +
 * os::Server) serving a million requests across churned tenant
 * plugins, base vs enhanced machine.
 *
 * Topology per arm: a 4-core sim::MultiCoreSystem runs 6 worker and
 * 12 client kernel threads. Clients send 32-byte requests over
 * kernel sockets; workers ASID-switch to the target tenant (§3.3
 * context-switch flushes) and call its handler through the dispatch
 * module's PLT. Every --churn served requests a tenant is dlclosed
 * and reloaded as a new generation; the GOT resets are broadcast to
 * every core's skip unit as coherence traffic (§3.2).
 *
 * Reported latency percentiles are in virtual cycles, so stdout and
 * --json-out are byte-identical for any --jobs value and for
 * --blocks 0/1. Wall-clock speed goes to stderr only.
 */

#include "common.hh"

#include "os/server.hh"

using namespace dlsim;
using namespace dlsim::bench;

namespace
{

struct ServerArm
{
    ArmResult result;
    os::ServerStats server;
    double p50 = 0, p90 = 0, p99 = 0;
    std::uint64_t requests = 0;
    std::uint64_t coherenceFlushes = 0;
    std::uint64_t snoopedStores = 0;
    std::uint64_t asidSwitches = 0;
    std::uint64_t preemptions = 0;
};

ServerArm
serveArm(const workload::WorkloadParams &wl,
         workload::MachineConfig mc, const BenchArgs &args,
         std::uint64_t requests, std::uint32_t tenants,
         std::uint64_t churn)
{
    mc.core.blockDispatch = args.blocks();
    workload::Workbench wb(wl, mc);

    sim::MultiCoreParams mp;
    mp.numCores = 4;
    mp.core = workload::makeCoreParams(mc);

    os::ServerParams sp;
    sp.workers = 6;
    sp.clients = 12;
    sp.tenants = tenants;
    sp.requests = requests;
    sp.churnPeriod = churn;
    sp.seed = args.seed();
    os::Server server(wb, mp, sp);
    server.run();

    ServerArm arm;
    server.reportMetrics(arm.result.registry, "dlsim.os");
    server.system().reportMetrics(arm.result.registry, "dlsim");
    arm.result.registry.histogram("dlsim.os.server.latency",
                                  server.latency());
    arm.result.blockHits = wb.image().blockCacheHits();
    arm.result.blockBuilds = wb.image().blockCacheBuilds();
    arm.result.blockFlushes = wb.image().blockCacheFlushes();

    arm.server = server.stats();
    arm.requests = server.stats().requestsServed;
    arm.p50 = server.latency().percentile(0.50);
    arm.p90 = server.latency().percentile(0.90);
    arm.p99 = server.latency().percentile(0.99);
    arm.coherenceFlushes = server.system().totalCoherenceFlushes();
    arm.snoopedStores = server.system().snoopedStores();
    arm.asidSwitches = server.kernel().stats().asidSwitches;
    arm.preemptions = server.kernel().stats().preemptions;
    return arm;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs args(
        "server_traffic", argc, argv,
        {{"requests", "total requests to serve per arm", 1000000},
         {"tenants", "tenant plugin count", 4},
         {"churn",
          "served requests between tenant reloads (0 = off)",
          50000}});
    banner("Multi-tenant server traffic over the OS layer, "
           "base vs enhanced",
           "Sections 3.2/3.3 under plugin churn and "
           "context-switch storms");

    if (args.sample().enabled)
        std::fprintf(stderr,
                     "server_traffic: --sample has no effect (the "
                     "OS layer always runs exact)\n");

    // --quick shrinks harder than the shared /8: a full run is a
    // million requests.
    std::uint64_t requests =
        static_cast<std::uint64_t>(args.extra("requests"));
    std::uint64_t churn =
        static_cast<std::uint64_t>(args.extra("churn"));
    const auto tenants =
        static_cast<std::uint32_t>(args.extra("tenants"));
    if (args.quick()) {
        requests = std::max<std::uint64_t>(240, requests / 2000);
        if (churn > 0)
            churn = std::max<std::uint64_t>(40, churn / 1000);
    }

    auto wl = workload::memcachedProfile(args.seed());
    wl.seed = args.seed();

    std::vector<std::function<ServerArm()>> work;
    work.push_back([&] {
        return serveArm(wl, baseMachine(), args, requests, tenants,
                        churn);
    });
    work.push_back([&] {
        // Server configuration: ASID-tagged ABTB (§3.3) so the
        // context-switch storm does not wipe the skip unit —
        // leaving the coherence path (§3.2) as the mechanism that
        // keeps churned tenants correct.
        auto mc = enhancedMachine();
        mc.asidRetention = true;
        return serveArm(wl, mc, args, requests, tenants, churn);
    });
    auto arms = runJobs(args, std::move(work));
    const ServerArm &base = arms[0];
    const ServerArm &enh = arms[1];

    JsonOut json("server_traffic", args);
    const auto ctx = [&](const char *machine) {
        return std::vector<std::pair<std::string, std::string>>{
            {"workload", "server"},
            {"machine", machine},
            {"requests", std::to_string(requests)},
            {"tenants", std::to_string(tenants)},
            {"churn", std::to_string(churn)}};
    };
    json.add("server.base", base.result, ctx("base"));
    json.add("server.enhanced", enh.result, ctx("enhanced"));
    if (!json.write())
        return 1;

    std::printf("requests served per arm : %llu  (tenants=%u, "
                "churn period=%llu)\n",
                static_cast<unsigned long long>(base.requests),
                tenants,
                static_cast<unsigned long long>(churn));
    std::printf("tenant reloads          : %llu  (%llu GOT resets "
                "broadcast, %llu deferred)\n\n",
                static_cast<unsigned long long>(
                    base.server.tenantChurns),
                static_cast<unsigned long long>(
                    base.server.gotResets),
                static_cast<unsigned long long>(
                    base.server.deferredChurns));

    std::printf("%-22s %14s %14s\n", "latency (virt cycles)",
                "base", "enhanced");
    const auto row = [&](const char *name, double b, double e) {
        std::printf("%-22s %14.0f %14.0f   (%+.2f%%)\n", name, b,
                    e, b > 0 ? (e - b) / b * 100.0 : 0.0);
    };
    row("p50", base.p50, enh.p50);
    row("p90", base.p90, enh.p90);
    row("p99", base.p99, enh.p99);

    std::printf("\n%-22s %14s %14s\n", "system activity", "base",
                "enhanced");
    const auto crow = [&](const char *name, std::uint64_t b,
                          std::uint64_t e) {
        std::printf("%-22s %14llu %14llu\n", name,
                    static_cast<unsigned long long>(b),
                    static_cast<unsigned long long>(e));
    };
    crow("asid switches", base.asidSwitches, enh.asidSwitches);
    crow("preemptions", base.preemptions, enh.preemptions);
    crow("snooped stores", base.snoopedStores, enh.snoopedStores);
    crow("coherence flushes", base.coherenceFlushes,
         enh.coherenceFlushes);

    std::printf(
        "\nEnhanced arm runs an ASID-tagged ABTB (retention, "
        "paper 3.3), so\n"
        "correctness under tenant churn rests on the coherence "
        "path (3.2):\n"
        "every dlclose GOT reset is broadcast to all cores' skip "
        "units.\n"
        "Latency is client-observed round-trip in virtual cycles; "
        "at these\n"
        "quantum sizes trampoline savings are sub-quantum, so "
        "percentile\n"
        "deltas reflect scheduling quantization, not the skip "
        "unit.\n");
    return 0;
}
