/**
 * @file
 * Figure 7: histograms of Memcached request processing time for
 * GET and SET, base vs enhanced.
 *
 * Paper's shape: "the peaks of the histograms for the enhanced
 * version are shifted to the left, indicating an average reduction
 * in request processing time". We plot the main peak, as the paper
 * does, omitting minor peaks for clarity.
 */

#include "common.hh"

using namespace dlsim;
using namespace dlsim::bench;

int
main(int argc, char **argv)
{
    BenchArgs args("fig7_memcached_histogram", argc, argv);
    banner("Figure 7 — Memcached GET/SET processing-time "
           "histograms",
           "Section 5.4, Figure 7");

    auto wl = workload::memcachedProfile();
    wl.seed = args.seed();
    const int warmup = args.scaled(200);
    const int requests = args.scaled(4000);
    std::vector<std::function<ArmResult()>> work;
    work.push_back([&] {
        return runArm(wl, baseMachine(), warmup, requests,
                      args.sample());
    });
    work.push_back([&] {
        return runArm(wl, enhancedMachine(), warmup, requests,
                      args.sample());
    });
    auto arms = runJobs(args, std::move(work));
    ArmResult &base = arms[0];
    ArmResult &enh = arms[1];

    JsonOut json("fig7_memcached_histogram", args);
    json.add("memcached.base", base,
             withSampleContext(
                 args, {{"workload", "memcached"},
                        {"machine", "base"},
                        {"requests", std::to_string(requests)}}));
    json.add("memcached.enhanced", enh,
             withSampleContext(
                 args, {{"workload", "memcached"},
                        {"machine", "enhanced"},
                        {"requests", std::to_string(requests)}}));

    for (std::size_t k = 0; k < wl.requests.size(); ++k) {
        auto &b = base.latency[k];
        auto &e = enh.latency[k];
        b.trimOutliers();
        e.trimOutliers();

        // Zoom on the shared main peak, as the paper does.
        const double lo =
            std::min(b.percentile(2), e.percentile(2));
        const double hi =
            std::max(b.percentile(90), e.percentile(90));
        constexpr std::size_t Bins = 24;
        stats::Histogram hb(lo, hi, Bins), he(lo, hi, Bins);
        for (const double s : b.samples())
            hb.add(s);
        for (const double s : e.samples())
            he.add(s);

        std::printf("--- %s requests (%zu samples) ---\n",
                    wl.requests[k].name.c_str(), b.count());
        std::printf("%-12s %-10s %-28s %-28s\n", "cycles",
                    "", "base", "enhanced");
        for (std::size_t bin = 0; bin < Bins; ++bin) {
            const auto bar = [](double frac) {
                return std::string(
                    static_cast<std::size_t>(frac * 200), '#');
            };
            std::printf("%-12.0f %-10s %-28s %-28s\n",
                        hb.binCenter(bin), "",
                        bar(hb.binFraction(bin)).c_str(),
                        bar(he.binFraction(bin)).c_str());
        }
        std::printf("peak: base %.0f -> enhanced %.0f cycles "
                    "(shift %.2f%%)\n",
                    hb.peakCenter(), he.peakCenter(),
                    100.0 * (hb.peakCenter() - he.peakCenter()) /
                        hb.peakCenter());
        std::printf("mean: base %.0f -> enhanced %.0f cycles "
                    "(%.2f%% better)\n\n",
                    b.mean(), e.mean(),
                    100.0 * (b.mean() - e.mean()) / b.mean());
    }
    std::printf("paper: enhanced peaks shifted left for both GET "
                "and SET\n");
    return json.write() ? 0 : 1;
}
