/**
 * @file
 * Differential determinism for the basic-block dispatch engine: a
 * Figure-5-style grid run with block dispatch ON must produce
 * byte-identical metric documents to the same grid with block
 * dispatch OFF, at --jobs 1 and --jobs 4 — the dispatch engine is
 * an execution strategy, never a model change. The sampled
 * execution mode gets the same treatment, covering the RefCore
 * block-chained fast-forward path. Runs under the TSan smoke build
 * (ctest -L tsan-smoke) and the block-smoke label.
 */

#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common.hh"

using namespace dlsim;
using namespace dlsim::bench;

namespace
{

/** A reduced fig5 grid: 2 ABTB sizes x 2 profiles. */
std::vector<std::function<ArmResult()>>
makeGrid(bool blocks)
{
    std::vector<std::function<ArmResult()>> work;
    for (const std::uint32_t entries : {4u, 64u}) {
        for (const char *name : {"apache", "memcached"}) {
            work.push_back([entries, name, blocks] {
                auto mc = enhancedMachine();
                mc.abtbEntries = entries;
                mc.abtbAssoc = std::min(entries, 4u);
                mc.core.blockDispatch = blocks;
                return runArm(workload::profileByName(name), mc,
                              20, 30);
            });
        }
    }
    return work;
}

std::string
renderJson(const std::vector<ArmResult> &arms)
{
    stats::MetricsDocument doc("test_block_dispatch");
    for (std::size_t i = 0; i < arms.size(); ++i) {
        auto &run = doc.addRun("arm" + std::to_string(i));
        run.registry = arms[i].registry;
    }
    return doc.toJson();
}

std::string
runGridJson(bool blocks, unsigned jobs)
{
    return renderJson(sim::JobRunner(jobs).run(makeGrid(blocks)));
}

} // namespace

TEST(BlockDispatch, OnVsOffByteIdenticalSingleThreaded)
{
    EXPECT_EQ(runGridJson(true, 1), runGridJson(false, 1));
}

TEST(BlockDispatch, OnVsOffByteIdenticalAcrossJobCounts)
{
    const std::string on1 = runGridJson(true, 1);
    EXPECT_EQ(on1, runGridJson(true, 4));
    EXPECT_EQ(on1, runGridJson(false, 4));
}

TEST(BlockDispatch, SampledFastForwardOnVsOffByteIdentical)
{
    // Sampled mode routes fast-forward through RefCore, whose
    // block-chained engine follows the core's blockDispatch knob
    // (sim::SampledExecution ties them together).
    const auto run = [](bool blocks) {
        sim::SampleParams sp;
        sim::SampleParams::parse("2000:2000:20000", sp);
        auto mc = enhancedMachine();
        mc.core.blockDispatch = blocks;
        std::vector<ArmResult> arms = {
            runArm(workload::profileByName("apache"), mc, 20, 30,
                   sp)};
        return renderJson(arms);
    };
    EXPECT_EQ(run(true), run(false));
}
