/**
 * @file
 * Functional tests of the CPU core on hand-written programs:
 * instruction semantics, control flow, stack discipline, faults,
 * and performance-counter accounting.
 */

#include <gtest/gtest.h>

#include <functional>

#include "sim_fixture.hh"

using namespace dlsim;
using namespace dlsim::isa;
using dlsim::test::Sim;

namespace
{

elf::Module
exeWith(const std::function<void(elf::FunctionBuilder &)> &body)
{
    elf::ModuleBuilder mb("app");
    mb.setDataSize(8192);
    body(mb.function("f"));
    return mb.build();
}

} // namespace

TEST(CpuExec, AluAndMov)
{
    auto exe = exeWith([](auto &f) {
        f.movImm(1, 20);
        f.movImm(2, 22);
        f.alu(AluKind::Add, RegRet, 1, 2);
        f.ret();
    });
    Sim sim(std::move(exe), {});
    EXPECT_EQ(sim.call("f").returnValue, 42u);
}

TEST(CpuExec, AluKinds)
{
    auto exe = exeWith([](auto &f) {
        f.movImm(1, 0b1100);
        f.movImm(2, 0b1010);
        f.alu(AluKind::And, 3, 1, 2);   // 0b1000
        f.alu(AluKind::Or, 4, 1, 2);    // 0b1110
        f.alu(AluKind::Xor, 5, 1, 2);   // 0b0110
        f.alu(AluKind::Sub, 6, 1, 2);   // 2
        f.alu(AluKind::Mul, 7, 1, 2);   // 120
        f.aluImm(AluKind::Shr, 8, 1, 2); // 3
        // Pack results: ret = and + or + xor + sub + mul + shr
        f.alu(AluKind::Add, RegRet, 3, 4);
        f.alu(AluKind::Add, RegRet, RegRet, 5);
        f.alu(AluKind::Add, RegRet, RegRet, 6);
        f.alu(AluKind::Add, RegRet, RegRet, 7);
        f.alu(AluKind::Add, RegRet, RegRet, 8);
        f.ret();
    });
    Sim sim(std::move(exe), {});
    EXPECT_EQ(sim.call("f").returnValue,
              8u + 14 + 6 + 2 + 120 + 3);
}

TEST(CpuExec, LoadStoreRoundTrip)
{
    auto exe = exeWith([](auto &f) {
        f.movDataAddr(4, 0);
        f.movImm(1, 0x1234);
        f.store(1, 4, 64);
        f.load(RegRet, 4, 64);
        f.ret();
    });
    Sim sim(std::move(exe), {});
    EXPECT_EQ(sim.call("f").returnValue, 0x1234u);
}

TEST(CpuExec, PushPopStackDiscipline)
{
    auto exe = exeWith([](auto &f) {
        f.movImm(1, 7);
        f.movImm(2, 9);
        f.push(1);
        f.push(2);
        f.pop(3); // 9
        f.pop(4); // 7
        f.alu(AluKind::Sub, RegRet, 3, 4);
        f.ret();
    });
    Sim sim(std::move(exe), {});
    EXPECT_EQ(sim.call("f").returnValue, 2u);
}

TEST(CpuExec, ArgumentsArriveInArgRegs)
{
    auto exe = exeWith([](auto &f) {
        f.alu(AluKind::Add, RegRet, RegArg0, RegArg1);
        f.alu(AluKind::Add, RegRet, RegRet, RegArg2);
        f.ret();
    });
    Sim sim(std::move(exe), {});
    EXPECT_EQ(sim.call("f", 1, 2, 3).returnValue, 6u);
}

TEST(CpuExec, CondBrTakenAndNot)
{
    auto exe = exeWith([](auto &fb) {
        auto skip = fb.newLabel();
        fb.movImm(RegRet, 1);
        fb.condBr(CondKind::Ne0, RegArg0, skip);
        fb.movImm(RegRet, 2); // only if arg0 == 0
        fb.bind(skip);
        fb.ret();
    });
    Sim sim(std::move(exe), {});
    EXPECT_EQ(sim.call("f", 5).returnValue, 1u);
    EXPECT_EQ(sim.call("f", 0).returnValue, 2u);
}

TEST(CpuExec, LoopCountsDown)
{
    auto exe = exeWith([](auto &fb) {
        fb.movImm(RegRet, 0);
        auto top = fb.newLabel();
        fb.bind(top);
        fb.aluImm(AluKind::Add, RegRet, RegRet, 3);
        fb.aluImm(AluKind::Sub, RegArg0, RegArg0, 1);
        fb.condBr(CondKind::Ne0, RegArg0, top);
        fb.ret();
    });
    Sim sim(std::move(exe), {});
    EXPECT_EQ(sim.call("f", 10).returnValue, 30u);
}

TEST(CpuExec, LocalCallAndReturn)
{
    elf::ModuleBuilder mb("app");
    auto &leaf = mb.function("leaf");
    leaf.movImm(RegRet, 5);
    leaf.ret();
    auto &f = mb.function("f");
    f.callLocal("leaf");
    f.aluImm(AluKind::Add, RegRet, RegRet, 1);
    f.ret();
    Sim sim(mb.build(), {});
    EXPECT_EQ(sim.call("f").returnValue, 6u);
}

TEST(CpuExec, IndirectCallThroughRegister)
{
    elf::ModuleBuilder mb("app");
    auto &leaf = mb.function("leaf");
    leaf.movImm(RegRet, 77);
    leaf.ret();
    auto &f = mb.function("f");
    f.movFuncAddr(5, "leaf");
    f.callReg(5);
    f.ret();
    Sim sim(mb.build(), {});
    EXPECT_EQ(sim.call("f").returnValue, 77u);
}

TEST(CpuExec, IndirectCallThroughMemory)
{
    elf::ModuleBuilder mb("app");
    mb.setDataSize(4096);
    auto &leaf = mb.function("leaf");
    leaf.movImm(RegRet, 88);
    leaf.ret();
    auto &f = mb.function("f");
    f.movFuncAddr(5, "leaf");
    f.movDataAddr(4, 0);
    f.store(5, 4, 8); // vtable-style slot
    f.callMem(4, 8);
    f.ret();
    Sim sim(mb.build(), {});
    EXPECT_EQ(sim.call("f").returnValue, 88u);
}

TEST(CpuExec, HaltStopsRun)
{
    elf::ModuleBuilder mb("app");
    auto &main = mb.function("main");
    main.movImm(RegRet, 3);
    main.halt();
    main.movImm(RegRet, 4); // never executed
    Sim sim(mb.build(), {});
    sim.core->state().pc = sim.image->symbolAddress("main");
    sim.core->run();
    EXPECT_TRUE(sim.core->state().halted);
    EXPECT_EQ(sim.core->state().regs[RegRet], 3u);
}

TEST(CpuExec, RunRespectsMaxInsts)
{
    auto exe = exeWith([](auto &fb) {
        auto top = fb.newLabel();
        fb.bind(top);
        fb.jmp(top); // infinite loop
    });
    Sim sim(std::move(exe), {});
    sim.core->state().pc = sim.image->symbolAddress("f");
    const auto executed = sim.core->run(1000);
    EXPECT_EQ(executed, 1000u);
}

TEST(CpuExec, LoadFaultThrows)
{
    auto exe = exeWith([](auto &f) {
        f.movImm(4, 0x900000000);
        f.load(1, 4, 0);
        f.ret();
    });
    Sim sim(std::move(exe), {});
    EXPECT_THROW(sim.call("f"), cpu::SimError);
}

TEST(CpuExec, StoreToTextFaults)
{
    auto exe = exeWith([](auto &f) {
        f.movImm(4, 0x400000);
        f.store(1, 4, 0);
        f.ret();
    });
    Sim sim(std::move(exe), {});
    EXPECT_THROW(sim.call("f"), cpu::SimError);
}

TEST(CpuExec, UndecodablePcThrows)
{
    auto exe = exeWith([](auto &f) {
        f.movImm(5, 0x1000); // unmapped/undecodable
        f.jmpReg(5);
    });
    Sim sim(std::move(exe), {});
    EXPECT_THROW(sim.call("f"), cpu::SimError);
}

TEST(CpuExec, CountersCountWhatRan)
{
    auto exe = exeWith([](auto &f) {
        f.movDataAddr(4, 0);
        f.load(1, 4, 0);   // 1 load
        f.store(1, 4, 8);  // 1 store
        f.nop();
        f.ret();           // load (return address)
    });
    Sim sim(std::move(exe), {});
    sim.core->clearStats();
    const auto r = sim.call("f");
    const auto c = sim.core->counters();
    EXPECT_EQ(r.instructions, 5u);
    EXPECT_EQ(c.instructions, 5u);
    EXPECT_EQ(c.loads, 2u);  // load + ret
    EXPECT_EQ(c.stores, 1u);
    EXPECT_EQ(c.branches, 1u); // the ret
    EXPECT_GT(c.cycles, 0u);
}

TEST(CpuExec, DeterministicAcrossRuns)
{
    auto build = [] {
        return exeWith([](auto &fb) {
            auto top = fb.newLabel();
            fb.bind(top);
            fb.aluImm(AluKind::Add, RegRet, RegRet, 1);
            fb.aluImm(AluKind::Sub, RegArg0, RegArg0, 1);
            fb.condBr(CondKind::Ne0, RegArg0, top);
            fb.ret();
        });
    };
    Sim a(build(), {});
    Sim b(build(), {});
    const auto ra = a.call("f", 100);
    const auto rb = b.call("f", 100);
    EXPECT_EQ(ra.instructions, rb.instructions);
    EXPECT_EQ(ra.cycles, rb.cycles);
    EXPECT_EQ(ra.returnValue, rb.returnValue);
}
