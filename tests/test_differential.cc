/**
 * @file
 * Differential property tests: across randomly generated programs
 * and machine variants, the trampoline-skip mechanism must be
 * architecturally invisible — identical final state to the base
 * machine on the identical input stream — while actually engaging.
 *
 * This is the paper's core correctness claim ("maintaining an
 * architectural state identical to the unmodified system", §3)
 * exercised as a property over the workload-generator space.
 */

#include <gtest/gtest.h>

#include "check/lockstep.hh"
#include "workload/engine.hh"
#include "workload/profiles.hh"

using namespace dlsim;
using namespace dlsim::workload;

namespace
{

WorkloadParams
randomishParams(std::uint64_t seed)
{
    // Vary the structure knobs with the seed so each instance
    // exercises a different program shape.
    WorkloadParams p;
    p.name = "diff" + std::to_string(seed);
    p.seed = seed;
    p.numLibs = 2 + seed % 4;
    p.funcsPerLib = 6 + seed % 20;
    p.libFnInsts = 6 + seed % 24;
    p.requests = {{"A", 0.6, 1, 1 + static_cast<std::uint32_t>(
                                        seed % 4)},
                  {"B", 0.4, 1, 2}};
    p.stepsPerRequest = 4 + seed % 10;
    p.appWorkInsts = 3 + seed % 8;
    p.libCallProbPerStep = (seed % 3 == 0) ? 0.5 : 1.0;
    p.calledImports = 8 + static_cast<std::uint32_t>(seed % 30);
    p.interLibCallProb = 0.2 + 0.1 * (seed % 5);
    p.maxNestedCallSites = 1 + seed % 3;
    p.libDataBytes = 4096;
    p.appDataBytes = 16384;
    p.ifuncSymbols = seed % 3;
    p.tailJumpFrac = 0.1 * (seed % 3);
    p.virtualCallFrac = 0.1 * (seed % 2);
    p.kernelFuncs = (seed % 2) ? 8 : 0;
    return p;
}

struct DiffCase
{
    std::uint64_t seed;
    bool explicitInval;
    bool asidRetention;
    std::uint32_t abtbEntries;
};

class Differential : public ::testing::TestWithParam<DiffCase>
{
};

} // namespace

TEST_P(Differential, EnhancedMatchesBaseArchitecturally)
{
    const auto dc = GetParam();
    const auto wl = randomishParams(dc.seed);

    Workbench base(wl, MachineConfig{});
    MachineConfig cfg;
    cfg.enhanced = true;
    cfg.explicitInvalidation = dc.explicitInval;
    cfg.asidRetention = dc.asidRetention;
    cfg.abtbEntries = dc.abtbEntries;
    cfg.abtbAssoc = std::min(dc.abtbEntries, 4u);
    Workbench enh(wl, cfg);

    for (int i = 0; i < 150; ++i) {
        const auto rb = base.runRequest();
        const auto re = enh.runRequest();
        EXPECT_EQ(rb.kind, re.kind) << "request " << i;
    }

    // Identical final architectural state.
    for (int r = 0; r < isa::NumRegs; ++r) {
        ASSERT_EQ(base.core().state().regs[r],
                  enh.core().state().regs[r])
            << "seed " << dc.seed << " register r" << r;
    }
    // The mechanism must actually have engaged (excluding the
    // 1-entry ABTB case, where skips may be rare but nonzero).
    EXPECT_GT(enh.core().counters().skippedTrampolines, 0u)
        << "seed " << dc.seed;
    // The enhanced machine never retires MORE instructions.
    EXPECT_LE(enh.core().counters().instructions,
              base.core().counters().instructions);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndVariants, Differential,
    ::testing::Values(DiffCase{1, false, false, 256},
                      DiffCase{2, false, false, 256},
                      DiffCase{3, false, false, 16},
                      DiffCase{4, false, false, 4},
                      DiffCase{5, true, false, 256},
                      DiffCase{6, true, false, 16},
                      DiffCase{7, false, true, 256},
                      DiffCase{8, false, false, 1},
                      DiffCase{9, true, true, 64},
                      DiffCase{10, false, false, 1024}));

/** Determinism: the same arm run twice is cycle-identical. */
TEST(Differential, RunsAreExactlyReproducible)
{
    const auto wl = randomishParams(42);
    MachineConfig cfg;
    cfg.enhanced = true;

    Workbench a(wl, cfg), b(wl, cfg);
    for (int i = 0; i < 100; ++i) {
        const auto ra = a.runRequest();
        const auto rb = b.runRequest();
        ASSERT_EQ(ra.cycles, rb.cycles) << "request " << i;
        ASSERT_EQ(ra.instructions, rb.instructions);
    }
    EXPECT_EQ(a.core().counters().l1iMisses,
              b.core().counters().l1iMisses);
    EXPECT_EQ(a.core().counters().mispredicts,
              b.core().counters().mispredicts);
}

/**
 * Steady-state invariant (satellite of the lockstep oracle): once
 * lazy binding has quiesced, every ABTB-predicted target equals the
 * oracle's resolved target — each substitution's walk reaches the
 * substituted target — and the only ABTB flushes left are bloom
 * false positives (no true GOT writes remain).
 */
class SteadyState
    : public ::testing::TestWithParam<
          std::tuple<std::string, std::uint64_t>>
{
};

TEST_P(SteadyState, PredictedTargetsMatchOracleAfterWarmup)
{
    const auto &[profile, seed] = GetParam();
    SCOPED_TRACE("profile " + profile + " seed " +
                 std::to_string(seed) +
                 " (reproduce: dlsim_cli --workload " + profile +
                 " --seed " + std::to_string(seed) + ")");

    MachineConfig cfg;
    cfg.enhanced = true;
    Workbench wb(profileByName(profile, seed), cfg);

    check::LockstepChecker checker(wb.core());
    wb.core().setRetireObserver(&checker);

    // Warm until lazy resolution quiesces (Workbench::warmup would
    // clear the skip-unit stats the invariant reads). Best-effort:
    // profiles with a long rare-path tail (firefox) keep resolving
    // the odd import forever; the oracle check below holds anyway.
    std::uint64_t prev = UINT64_MAX;
    for (int round = 0;
         round < 40 && wb.linker().resolutionCount() != prev;
         ++round) {
        prev = wb.linker().resolutionCount();
        for (int i = 0; i < 15; ++i)
            wb.runRequest();
    }

    const auto s0 = wb.core().skipUnit()->stats();
    const auto c0 = checker.stats();
    for (int i = 0; i < 100; ++i)
        wb.runRequest();
    const auto s1 = wb.core().skipUnit()->stats();
    const auto c1 = checker.stats();
    wb.core().setRetireObserver(nullptr);

    // The mechanism engages in steady state...
    EXPECT_GT(s1.substitutions, s0.substitutions);
    // ...and every prediction was verified against the oracle.
    EXPECT_EQ(s1.substitutions - s0.substitutions,
              c1.verifiedSubstitutions - c0.verifiedSubstitutions);
    // Store flushes may persist — the detector also tracks
    // vtable-hosted indirect jumps, and the app rewrites hot data —
    // but nothing else flushes on a quiesced single-core machine,
    // and the accounting invariant holds.
    EXPECT_EQ(s1.coherenceFlushes, s0.coherenceFlushes);
    EXPECT_EQ(s1.contextSwitchFlushes, s0.contextSwitchFlushes);
    EXPECT_EQ(s1.explicitFlushes, s0.explicitFlushes);
    EXPECT_EQ(wb.core().skipUnit()->abtb().flushes(),
              s1.storeFlushes + s1.coherenceFlushes +
                  s1.contextSwitchFlushes + s1.explicitFlushes);
}

INSTANTIATE_TEST_SUITE_P(
    ProfilesAndSeeds, SteadyState,
    ::testing::Combine(::testing::Values("apache", "firefox",
                                         "memcached", "mysql"),
                       ::testing::Values(42ull, 1729ull)),
    [](const auto &info) {
        return std::get<0>(info.param) + "_seed" +
               std::to_string(std::get<1>(info.param));
    });
