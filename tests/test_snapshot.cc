/**
 * @file
 * Tests for the snapshot/checkpoint subsystem: the container format
 * (golden header bytes, CRC framing, corruption/truncation
 * rejection), per-structure save/load roundtrips, COW topology
 * preservation through the page pool, Workbench- and System-level
 * roundtrips, and the restore-then-run == keep-running determinism
 * contract the warm-up-once benches rely on.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "branch/btb.hh"
#include "common.hh"
#include "mem/address_space.hh"
#include "mem/cache.hh"
#include "mem/tlb.hh"
#include "sim/system.hh"
#include "sim_fixture.hh"
#include "snapshot/format.hh"
#include "snapshot/io.hh"
#include "snapshot/serializer.hh"
#include "stats/rng.hh"
#include "workload/engine.hh"
#include "workload/profiles.hh"

using namespace dlsim;
using namespace dlsim::isa;
using namespace dlsim::snapshot;
using dlsim::test::Sim;

namespace
{

/** Unique temp path per test. */
std::string
tmpPath(const std::string &tag)
{
    return ::testing::TempDir() + "dlsim_snap_" + tag + ".bin";
}

/** A small, fast workload for Workbench-level tests. */
workload::WorkloadParams
tinyParams()
{
    workload::WorkloadParams p;
    p.name = "tiny";
    p.seed = 7;
    p.numLibs = 3;
    p.funcsPerLib = 8;
    p.libFnInsts = 10;
    p.requests = {{"A", 0.5, 1, 2}, {"B", 0.5, 1, 3}};
    p.stepsPerRequest = 6;
    p.appWorkInsts = 4;
    p.calledImports = 12;
    p.libDataBytes = 4096;
    p.appDataBytes = 8192;
    p.ifuncSymbols = 2;
    p.tailJumpFrac = 0.2;
    p.virtualCallFrac = 0.2;
    return p;
}

std::uint32_t
readLe32(const std::vector<std::uint8_t> &b, std::size_t off)
{
    return static_cast<std::uint32_t>(b[off]) |
           static_cast<std::uint32_t>(b[off + 1]) << 8 |
           static_cast<std::uint32_t>(b[off + 2]) << 16 |
           static_cast<std::uint32_t>(b[off + 3]) << 24;
}

std::uint64_t
readLe64(const std::vector<std::uint8_t> &b, std::size_t off)
{
    return static_cast<std::uint64_t>(readLe32(b, off)) |
           static_cast<std::uint64_t>(readLe32(b, off + 4)) << 32;
}

elf::Module
counterExe()
{
    elf::ModuleBuilder mb("app");
    mb.setDataSize(4096);
    auto &f = mb.function("f");
    f.movDataAddr(4, 0);
    f.load(RegRet, 4, 0);
    f.aluImm(AluKind::Add, RegRet, RegRet, 1);
    f.store(RegRet, 4, 0);
    f.callExternal("libfn");
    f.ret();
    return mb.build();
}

elf::Module
lib()
{
    elf::ModuleBuilder mb("lib");
    auto &f = mb.function("libfn");
    f.nop(); // must not clobber RegRet: f() returns the counter
    f.ret();
    return mb.build();
}

} // namespace

// --------------------------------------------------------------
// Container format.
// --------------------------------------------------------------

/**
 * Golden header: pins the on-disk layout of format version 1. If
 * this test fails, the format changed — bump FormatVersion and add
 * a migration path instead of silently breaking old snapshots.
 */
TEST(SnapshotFormat, GoldenHeaderLayout)
{
    EXPECT_EQ(Magic, 0x4e534c44u); // "DLSN"
    EXPECT_EQ(FormatVersion, 1u);
    EXPECT_EQ(HeaderBytes, 24u);
    EXPECT_EQ(TableEntryBytes, 40u);

    Serializer s(0x1122334455667788ull);
    s.beginSection("alpha");
    s.beginStruct("x");
    s.u32(0xdeadbeefu);
    s.endStruct();
    s.endSection();
    const auto b = s.finish();

    ASSERT_GE(b.size(), HeaderBytes + TableEntryBytes);
    // "DLSN" as raw bytes.
    EXPECT_EQ(b[0], 'D');
    EXPECT_EQ(b[1], 'L');
    EXPECT_EQ(b[2], 'S');
    EXPECT_EQ(b[3], 'N');
    EXPECT_EQ(readLe32(b, 0), Magic);
    EXPECT_EQ(readLe32(b, 4), FormatVersion);
    EXPECT_EQ(readLe64(b, 8), 0x1122334455667788ull);
    EXPECT_EQ(readLe32(b, 16), 1u); // section count
    // Section table entry: 16-byte NUL-padded tag.
    EXPECT_EQ(b[HeaderBytes + 0], 'a');
    EXPECT_EQ(b[HeaderBytes + 4], 'a');
    EXPECT_EQ(b[HeaderBytes + 5], 0);
    EXPECT_EQ(b[HeaderBytes + 15], 0);
    // Payload offset points past header + table.
    EXPECT_EQ(readLe64(b, HeaderBytes + 16),
              HeaderBytes + TableEntryBytes);

    Deserializer d(b.data(), b.size());
    EXPECT_EQ(d.fingerprint(), 0x1122334455667788ull);
    EXPECT_TRUE(d.hasSection("alpha"));
    EXPECT_FALSE(d.hasSection("beta"));
    d.enterSection("alpha");
    d.enterStruct("x");
    EXPECT_EQ(d.u32(), 0xdeadbeefu);
    d.leaveStruct();
    d.leaveSection();
}

TEST(SnapshotFormat, PrimitiveRoundTrip)
{
    Serializer s;
    s.beginSection("p");
    s.beginStruct("all");
    s.u8(0xab);
    s.u16(0xcdef);
    s.u32(0x12345678u);
    s.u64(0xfedcba9876543210ull);
    s.i64(-42);
    s.f64(3.25);
    s.boolean(true);
    s.boolean(false);
    s.str("hello snapshot");
    const std::uint8_t raw[3] = {1, 2, 3};
    s.bytes(raw, sizeof raw);
    s.endStruct();
    s.endSection();
    const auto b = s.finish();

    Deserializer d(b.data(), b.size());
    d.enterSection("p");
    d.enterStruct("all");
    EXPECT_EQ(d.u8(), 0xab);
    EXPECT_EQ(d.u16(), 0xcdef);
    EXPECT_EQ(d.u32(), 0x12345678u);
    EXPECT_EQ(d.u64(), 0xfedcba9876543210ull);
    EXPECT_EQ(d.i64(), -42);
    EXPECT_EQ(d.f64(), 3.25);
    EXPECT_TRUE(d.boolean());
    EXPECT_FALSE(d.boolean());
    EXPECT_EQ(d.str(), "hello snapshot");
    std::uint8_t out[3] = {};
    d.bytes(out, sizeof out);
    EXPECT_EQ(out[0], 1);
    EXPECT_EQ(out[2], 3);
    d.leaveStruct();
    d.leaveSection();
}

TEST(SnapshotFormat, RejectsBadMagicAndVersion)
{
    Serializer s;
    s.beginSection("a");
    s.beginStruct("x");
    s.u32(1);
    s.endStruct();
    s.endSection();
    auto good = s.finish();

    auto bad = good;
    bad[0] ^= 0xff;
    EXPECT_THROW(Deserializer(bad.data(), bad.size()),
                 SnapshotError);

    bad = good;
    bad[4] += 1; // future format version
    EXPECT_THROW(Deserializer(bad.data(), bad.size()),
                 SnapshotError);
}

TEST(SnapshotFormat, DetectsBitFlipAnywhere)
{
    Serializer s;
    s.beginSection("a");
    s.beginStruct("x");
    for (std::uint32_t i = 0; i < 64; ++i)
        s.u32(i * 2654435761u);
    s.endStruct();
    s.endSection();
    const auto good = s.finish();

    // Flip one bit in every byte position in turn; every flip must
    // be caught by header validation, the table CRC, the section
    // CRC, the struct CRC, or — for the header's fingerprint field,
    // which the Deserializer exposes rather than interprets — by
    // the fingerprint comparison every restore path performs.
    const auto origFp = Deserializer(good.data(), good.size())
                            .fingerprint();
    for (std::size_t pos = 0; pos < good.size(); ++pos) {
        auto bad = good;
        bad[pos] ^= 0x01;
        bool caught = false;
        try {
            Deserializer d(bad.data(), bad.size());
            if (d.fingerprint() != origFp)
                caught = true;
            d.enterSection("a");
            d.enterStruct("x");
            for (std::uint32_t i = 0; i < 64; ++i)
                (void)d.u32();
            d.leaveStruct();
            d.leaveSection();
        } catch (const SnapshotError &) {
            caught = true;
        }
        EXPECT_TRUE(caught) << "bit flip at byte " << pos
                            << " went undetected";
    }
}

TEST(SnapshotFormat, RejectsTruncation)
{
    Serializer s;
    s.beginSection("a");
    s.beginStruct("x");
    s.u64(7);
    s.endStruct();
    s.endSection();
    const auto good = s.finish();

    for (const std::size_t keep :
         {std::size_t{0}, std::size_t{8}, HeaderBytes,
          HeaderBytes + TableEntryBytes, good.size() - 1}) {
        auto bad = good;
        bad.resize(keep);
        bool caught = false;
        try {
            Deserializer d(bad.data(), bad.size());
            d.enterSection("a");
            d.enterStruct("x");
            (void)d.u64();
            d.leaveStruct();
            d.leaveSection();
        } catch (const SnapshotError &) {
            caught = true;
        }
        EXPECT_TRUE(caught)
            << "truncation to " << keep << " bytes undetected";
    }
}

TEST(SnapshotFormat, FileRoundTrip)
{
    const auto path = tmpPath("file");
    Serializer s(99);
    s.beginSection("a");
    s.beginStruct("x");
    s.u32(123);
    s.endStruct();
    s.endSection();
    const auto bytes = s.finish();
    writeFile(path, bytes);
    EXPECT_EQ(readFile(path), bytes);
    std::remove(path.c_str());
    EXPECT_THROW(readFile(path), SnapshotError);
}

// --------------------------------------------------------------
// Per-structure roundtrips. The pattern: exercise the structure,
// save, load into a freshly built twin, re-save — the two byte
// streams must be identical (state equality without needing deep
// comparison operators), and counters must survive.
// --------------------------------------------------------------

namespace
{

template <typename T>
std::vector<std::uint8_t>
saveOne(const T &t)
{
    Serializer s;
    s.beginSection("t");
    t.save(s);
    s.endSection();
    return s.finish();
}

template <typename T>
void
loadOne(T &t, const std::vector<std::uint8_t> &bytes)
{
    Deserializer d(bytes.data(), bytes.size());
    d.enterSection("t");
    t.load(d);
    d.leaveSection();
}

} // namespace

TEST(SnapshotStructures, CacheRoundTrip)
{
    mem::CacheParams p;
    p.name = "l1t";
    p.sizeBytes = 4096;
    p.assoc = 2;
    p.lineBytes = 64;
    mem::Cache a(p);
    for (Addr addr = 0; addr < 64 * 200; addr += 72)
        a.access(addr, addr % 3 ? 1 : 2);
    const auto bytes = saveOne(a);

    mem::Cache b(p);
    loadOne(b, bytes);
    EXPECT_EQ(b.hits(), a.hits());
    EXPECT_EQ(b.misses(), a.misses());
    EXPECT_EQ(b.evictions(), a.evictions());
    EXPECT_EQ(saveOne(b), bytes);

    // The restored cache behaves identically from here on.
    for (Addr addr = 0; addr < 64 * 50; addr += 24) {
        EXPECT_EQ(a.contains(addr, 1), b.contains(addr, 1));
        EXPECT_EQ(a.access(addr, 1), b.access(addr, 1));
    }
    EXPECT_EQ(saveOne(a), saveOne(b));
}

TEST(SnapshotStructures, CacheRejectsGeometryMismatch)
{
    mem::CacheParams p;
    p.sizeBytes = 4096;
    p.assoc = 2;
    mem::Cache a(p);
    a.access(0x1000, 1);
    const auto bytes = saveOne(a);

    p.assoc = 4;
    mem::Cache b(p);
    EXPECT_THROW(loadOne(b, bytes), SnapshotError);
}

TEST(SnapshotStructures, TlbRoundTrip)
{
    mem::TlbParams p;
    p.name = "itlb";
    p.entries = 16;
    p.assoc = 4;
    mem::Tlb a(p);
    for (Addr addr = 0; addr < (64u << mem::PageShift);
         addr += mem::PageBytes + 8)
        a.access(addr, 1);
    a.flushAsid(2);
    const auto bytes = saveOne(a);

    mem::Tlb b(p);
    loadOne(b, bytes);
    EXPECT_EQ(b.hits(), a.hits());
    EXPECT_EQ(b.misses(), a.misses());
    EXPECT_EQ(saveOne(b), bytes);

    p.entries = 32;
    mem::Tlb c(p);
    EXPECT_THROW(loadOne(c, bytes), SnapshotError);
}

TEST(SnapshotStructures, BtbRoundTrip)
{
    branch::BtbParams p;
    p.entries = 64;
    p.assoc = 4;
    branch::Btb a(p);
    for (Addr pc = 0x400000; pc < 0x400000 + 8 * 300; pc += 8) {
        a.update(pc, pc + 0x1000);
        a.lookup(pc);
        a.lookup(pc + 4);
    }
    const auto bytes = saveOne(a);

    branch::Btb b(p);
    loadOne(b, bytes);
    EXPECT_EQ(b.hits(), a.hits());
    EXPECT_EQ(b.lookups(), a.lookups());
    EXPECT_EQ(saveOne(b), bytes);
    for (Addr pc = 0x400000; pc < 0x400000 + 8 * 40; pc += 4)
        EXPECT_EQ(a.lookup(pc), b.lookup(pc));
}

TEST(SnapshotStructures, RngStreamContinuation)
{
    stats::Rng a(1234);
    for (int i = 0; i < 1000; ++i)
        a.next();
    const auto bytes = saveOne(a);

    stats::Rng b(999); // deliberately different seed
    loadOne(b, bytes);
    // The restored generator continues the original stream exactly.
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(b.next(), a.next());
}

TEST(SnapshotStructures, AddressSpaceCowTopologySurvives)
{
    using namespace dlsim::mem;
    AddressSpace parent;
    parent.map(0x1000, 4 * PageBytes, PermRead | PermExec,
               RegionKind::Text, "text");
    parent.map(0x100000, 4 * PageBytes, PermRead | PermWrite,
               RegionKind::Data, "data");
    for (Addr a = 0x1000; a < 0x1000 + 4 * PageBytes; a += 512)
        parent.poke64(a, a * 3);
    parent.poke64(0x100000, 11);
    parent.poke64(0x100000 + PageBytes, 22);

    auto child = parent.fork();
    // One COW copy in the child: the first data page diverges.
    ASSERT_EQ(child->write64(0x100000, 1111), MemFault::None);

    Serializer s;
    PagePoolSaver pool;
    s.beginSection("spaces");
    parent.save(s, pool);
    child->save(s, pool);
    s.endSection();
    s.beginSection("pages");
    pool.save(s);
    s.endSection();
    const auto bytes = s.finish();

    AddressSpace p2, c2;
    {
        // Scoped: the loader holds a reference to every pool page,
        // which would skew sharedPages()/privateBytes() accounting
        // if it outlived the restore.
        Deserializer d(bytes.data(), bytes.size());
        PagePoolLoader loader;
        d.enterSection("pages");
        loader.load(d);
        d.leaveSection();
        d.enterSection("spaces");
        p2.load(d, loader);
        c2.load(d, loader);
        d.leaveSection();
    }

    // Contents, COW accounting, and the sharing topology all match.
    MemFault fault;
    EXPECT_EQ(p2.read64(0x100000, fault), 11u);
    EXPECT_EQ(c2.peek64(0x100000), 1111u);
    EXPECT_EQ(p2.peek64(0x1000 + 512), parent.peek64(0x1000 + 512));
    EXPECT_EQ(p2.presentPages(), parent.presentPages());
    EXPECT_EQ(c2.presentPages(), child->presentPages());
    EXPECT_EQ(p2.sharedPages(), parent.sharedPages());
    EXPECT_EQ(c2.sharedPages(), child->sharedPages());
    EXPECT_EQ(p2.privateBytes(), parent.privateBytes());
    EXPECT_EQ(c2.privateBytes(), child->privateBytes());
    EXPECT_EQ(c2.cowCopiesTotal(), child->cowCopiesTotal());

    // COW semantics still work after restore: a write in the
    // restored child copies instead of mutating the shared page.
    const Addr shared = 0x100000 + PageBytes;
    ASSERT_EQ(c2.write64(shared, 7777), MemFault::None);
    EXPECT_EQ(p2.peek64(shared), 22u);
}

// --------------------------------------------------------------
// Composer-level roundtrips.
// --------------------------------------------------------------

TEST(SnapshotWorkbench, RestoreThenRunEqualsKeepRunning)
{
    using namespace dlsim::workload;
    const auto wl = tinyParams();
    const MachineConfig mc{};

    Workbench a(wl, mc);
    a.warmup(8);
    const auto bytes = snapshotWorkbench(a);

    Workbench b(wl, mc);
    restoreWorkbench(b, bytes.data(), bytes.size());
    // Identical state => identical re-serialization...
    EXPECT_EQ(snapshotWorkbench(b), bytes);
    // ...and identical behaviour from here on, including the
    // request mix RNG stream.
    for (int i = 0; i < 20; ++i) {
        const auto ra = a.runRequest();
        const auto rb = b.runRequest();
        EXPECT_EQ(ra.kind, rb.kind);
        EXPECT_EQ(ra.cycles, rb.cycles);
        EXPECT_EQ(ra.instructions, rb.instructions);
    }
    EXPECT_EQ(a.core().counters().cycles,
              b.core().counters().cycles);
    EXPECT_EQ(a.core().counters().l1iMisses,
              b.core().counters().l1iMisses);
    EXPECT_EQ(a.core().counters().mispredicts,
              b.core().counters().mispredicts);
}

TEST(SnapshotWorkbench, RejectsFingerprintMismatch)
{
    using namespace dlsim::workload;
    const auto wl = tinyParams();
    const MachineConfig mc{};
    Workbench a(wl, mc);
    a.warmup(2);
    const auto bytes = snapshotWorkbench(a);

    checkSnapshotCompatible(bytes, wl, mc); // same params: fine

    auto wl2 = wl;
    wl2.seed = 8;
    EXPECT_THROW(checkSnapshotCompatible(bytes, wl2, mc),
                 SnapshotError);
    Workbench b(wl2, mc);
    EXPECT_THROW(restoreWorkbench(b, bytes.data(), bytes.size()),
                 SnapshotError);

    MachineConfig mc2;
    mc2.enhanced = true;
    EXPECT_THROW(checkSnapshotCompatible(bytes, wl, mc2),
                 SnapshotError);
}

TEST(SnapshotWorkbench, ReconfigureAppliesTimingRejectsStructure)
{
    using namespace dlsim::workload;
    const auto wl = tinyParams();
    MachineConfig ref;
    ref.enhanced = true;

    Workbench a(wl, ref);
    a.warmup(6);
    const auto bytes = snapshotWorkbench(a);

    // Timing and skip-unit geometry may vary per arm.
    Workbench b(wl, ref);
    restoreWorkbench(b, bytes.data(), bytes.size());
    MachineConfig arm = ref;
    arm.abtbEntries = 16;
    arm.abtbAssoc = 4;
    arm.core.mispredictPenalty += 5;
    b.reconfigure(arm);
    const auto r = b.runRequest();
    EXPECT_GT(r.instructions, 0u);

    // Structural divergence (cache geometry) must be rejected.
    Workbench c(wl, ref);
    restoreWorkbench(c, bytes.data(), bytes.size());
    MachineConfig badArm = ref;
    badArm.core.mem.l1i.sizeBytes *= 2;
    EXPECT_THROW(c.reconfigure(badArm), SnapshotError);
}

TEST(SnapshotSystem, RoundTripPreservesProcessesAndCow)
{
    using dlsim::sim::System;

    Sim simA(counterExe(), {lib()});
    System sysA(*simA.core, *simA.image, *simA.linker);
    auto &parent = sysA.initialProcess();
    simA.call("f"); // counter -> 1 in the parent
    auto &child = sysA.fork(parent);
    sysA.switchTo(child);
    simA.call("f"); // child counter -> 2 (private COW copy)
    simA.core->state().regs[9] = 4242;

    Serializer s;
    sysA.save(s);
    const auto bytes = s.finish();
    const auto statsA = sysA.memoryStats();

    // A freshly built twin system adopts the checkpointed state.
    Sim simB(counterExe(), {lib()});
    System sysB(*simB.core, *simB.image, *simB.linker);
    Deserializer d(bytes.data(), bytes.size());
    sysB.load(d);

    ASSERT_EQ(sysB.numProcesses(), 2u);
    const auto statsB = sysB.memoryStats();
    EXPECT_EQ(statsB.totalCowCopies(), statsA.totalCowCopies());
    EXPECT_EQ(statsB.sharedPages, statsA.sharedPages);
    EXPECT_EQ(statsB.privateBytes, statsA.privateBytes);
    EXPECT_EQ(simB.core->state().regs[9], 4242u);

    // Execution continues exactly where the original would: the
    // restored current process is the child with counter == 2.
    EXPECT_EQ(simB.call("f").returnValue, 3u);
    sysB.switchTo(sysB.initialProcess());
    EXPECT_EQ(simB.call("f").returnValue, 2u);
}

/**
 * The contract the warm-up-once benches (and their --jobs flag)
 * rely on: many arms restoring concurrently from ONE shared byte
 * buffer produce exactly what a serial sweep produces. This is the
 * snapshot path's TSan smoke test — the buffer is only ever read.
 */
TEST(SnapshotSweep, ConcurrentRestoresMatchSerialSweep)
{
    using namespace dlsim::bench;
    const auto wl = tinyParams();
    workload::MachineConfig ref;
    ref.enhanced = true;

    workload::Workbench warm(wl, ref);
    warm.warmup(10);
    const auto state = workload::snapshotWorkbench(warm);

    const std::uint32_t sizes[] = {4u, 16u, 64u, 256u};
    auto makeWork = [&] {
        std::vector<std::function<ArmResult()>> work;
        for (const std::uint32_t entries : sizes) {
            work.push_back([&state, &wl, &ref, entries] {
                auto mc = ref;
                mc.abtbEntries = entries;
                mc.abtbAssoc = std::min(entries, 4u);
                return runArmFromState(state, wl, ref, mc, 25);
            });
        }
        return work;
    };

    auto render = [&](const std::vector<ArmResult> &arms) {
        stats::MetricsDocument doc("test_snapshot sweep");
        for (std::size_t i = 0; i < arms.size(); ++i) {
            auto &run = doc.addRun("entries" +
                                   std::to_string(sizes[i]));
            run.registry = arms[i].registry;
        }
        return doc.toJson();
    };

    sim::JobRunner serial(1);
    sim::JobRunner threaded(4);
    const auto a = render(serial.run(makeWork()));
    const auto b = render(threaded.run(makeWork()));
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a, b);
}
