/**
 * @file
 * Shared test fixture: assembles modules into a runnable core with
 * one call, so execution tests stay compact.
 */

#ifndef DLSIM_TESTS_SIM_FIXTURE_HH
#define DLSIM_TESTS_SIM_FIXTURE_HH

#include <memory>
#include <vector>

#include "cpu/core.hh"
#include "elf/builder.hh"
#include "linker/dynamic_linker.hh"
#include "linker/loader.hh"

namespace dlsim::test
{

/** A fully wired simulation of one program. */
struct Sim
{
    linker::Loader loader;
    std::unique_ptr<linker::Image> image;
    std::unique_ptr<linker::DynamicLinker> linker;
    std::unique_ptr<cpu::Core> core;

    Sim(elf::Module exe, std::vector<elf::Module> libs,
        const cpu::CoreParams &core_params = {},
        const linker::LoaderOptions &load_opts = {})
        : loader(load_opts)
    {
        image = loader.load(std::move(exe), std::move(libs));
        linker =
            std::make_unique<linker::DynamicLinker>(*image);
        core = std::make_unique<cpu::Core>(core_params);
        core->attachProcess(image.get(), linker.get(), 0);
        core->initStack(loader.stackTop());
    }

    /** Call a symbol by name. */
    cpu::Core::CallResult
    call(const std::string &sym, std::uint64_t a0 = 0,
         std::uint64_t a1 = 0, std::uint64_t a2 = 0)
    {
        return core->callFunction(image->symbolAddress(sym), a0,
                                  a1, a2);
    }
};

/** CoreParams with the trampoline-skip hardware enabled. */
inline cpu::CoreParams
enhancedParams()
{
    cpu::CoreParams p;
    p.skipUnitEnabled = true;
    return p;
}

} // namespace dlsim::test

#endif // DLSIM_TESTS_SIM_FIXTURE_HH
