/**
 * @file
 * Unit tests for the stats library: RNG determinism, distributions,
 * histograms, and sample-set percentile/CDF extraction.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "stats/cdf.hh"
#include "stats/histogram.hh"
#include "stats/rng.hh"
#include "stats/table.hh"

using namespace dlsim::stats;

TEST(Rng, DeterministicForSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.nextBelow(17), 17u);
}

TEST(Rng, NextRangeInclusive)
{
    Rng rng(7);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const auto v = rng.nextRange(3, 5);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 5u);
        saw_lo |= v == 3;
        saw_hi |= v == 5;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleUnitInterval)
{
    Rng rng(11);
    for (int i = 0; i < 10000; ++i) {
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, BernoulliRoughlyCalibrated)
{
    Rng rng(13);
    int hits = 0;
    for (int i = 0; i < 100000; ++i)
        hits += rng.nextBool(0.3);
    EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Rng, ForkIndependentStreams)
{
    Rng parent(5);
    Rng child = parent.fork();
    // The child stream should not mirror the parent stream.
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += parent.next() == child.next();
    EXPECT_LT(same, 2);
}

TEST(Zipf, PmfMonotonicallyDecreasing)
{
    ZipfDistribution z(100, 1.2);
    for (std::size_t r = 1; r < 100; ++r)
        EXPECT_LE(z.pmf(r), z.pmf(r - 1) + 1e-12);
}

TEST(Zipf, PmfSumsToOne)
{
    ZipfDistribution z(50, 0.8);
    double sum = 0;
    for (std::size_t r = 0; r < 50; ++r)
        sum += z.pmf(r);
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Zipf, SkewConcentratesMass)
{
    // Higher s -> more mass on rank 0.
    ZipfDistribution flat(1000, 0.5), steep(1000, 2.0);
    EXPECT_GT(steep.pmf(0), flat.pmf(0));
}

TEST(Zipf, SamplesInRange)
{
    ZipfDistribution z(10, 1.0);
    Rng rng(3);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(z.sample(rng), 10u);
}

TEST(Zipf, ZeroSkewIsUniform)
{
    ZipfDistribution z(4, 0.0);
    for (std::size_t r = 0; r < 4; ++r)
        EXPECT_NEAR(z.pmf(r), 0.25, 1e-9);
}

TEST(Discrete, RespectsWeights)
{
    DiscreteDistribution d({1.0, 3.0});
    Rng rng(9);
    int ones = 0;
    for (int i = 0; i < 100000; ++i)
        ones += d.sample(rng) == 1;
    EXPECT_NEAR(ones / 100000.0, 0.75, 0.01);
}

TEST(Discrete, ZeroWeightNeverSampled)
{
    DiscreteDistribution d({1.0, 0.0, 1.0});
    Rng rng(17);
    for (int i = 0; i < 10000; ++i)
        EXPECT_NE(d.sample(rng), 1u);
}

TEST(Histogram, BinsAndCounts)
{
    Histogram h(0.0, 10.0, 10);
    h.add(0.5);
    h.add(1.5);
    h.add(1.6);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(1), 2u);
    EXPECT_EQ(h.count(), 3u);
}

TEST(Histogram, UnderOverflow)
{
    Histogram h(0.0, 1.0, 4);
    h.add(-1.0);
    h.add(2.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.count(), 2u);
}

TEST(Histogram, MeanIncludesAllSamples)
{
    Histogram h(0.0, 10.0, 10);
    h.add(2.0);
    h.add(4.0);
    EXPECT_DOUBLE_EQ(h.mean(), 3.0);
}

TEST(Histogram, PeakCenter)
{
    Histogram h(0.0, 10.0, 10);
    for (int i = 0; i < 5; ++i)
        h.add(7.3);
    h.add(1.0);
    EXPECT_NEAR(h.peakCenter(), 7.5, 1e-9);
}

TEST(Histogram, ClearResets)
{
    Histogram h(0.0, 1.0, 2);
    h.add(0.5);
    h.clear();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.binCount(1), 0u);
}

TEST(SampleSet, MeanMinMax)
{
    SampleSet s;
    s.add(3.0);
    s.add(1.0);
    s.add(2.0);
    EXPECT_DOUBLE_EQ(s.mean(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(SampleSet, AddAfterQueryResorts)
{
    SampleSet s;
    s.add(5.0);
    EXPECT_DOUBLE_EQ(s.max(), 5.0);
    s.add(9.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(SampleSet, CdfPointsMonotone)
{
    SampleSet s;
    Rng rng(21);
    for (int i = 0; i < 1000; ++i)
        s.add(rng.nextDouble());
    const auto pts = s.cdfPoints(20);
    ASSERT_EQ(pts.size(), 20u);
    for (std::size_t i = 1; i < pts.size(); ++i) {
        EXPECT_GE(pts[i].first, pts[i - 1].first);
        EXPECT_GT(pts[i].second, pts[i - 1].second);
    }
    EXPECT_DOUBLE_EQ(pts.back().second, 1.0);
}

TEST(SampleSet, FractionBelow)
{
    SampleSet s;
    for (int i = 1; i <= 10; ++i)
        s.add(i);
    EXPECT_DOUBLE_EQ(s.fractionBelow(5.0), 0.5);
    EXPECT_DOUBLE_EQ(s.fractionBelow(0.0), 0.0);
    EXPECT_DOUBLE_EQ(s.fractionBelow(10.0), 1.0);
}

TEST(SampleSet, TrimOutliers)
{
    SampleSet s;
    for (int i = 0; i < 100; ++i)
        s.add(1.0);
    s.add(1000.0); // perturbation outlier, as in the paper's runs
    EXPECT_EQ(s.trimOutliers(10.0), 1u);
    EXPECT_DOUBLE_EQ(s.max(), 1.0);
}

/** Percentile property sweep: nearest-rank percentile of 1..N. */
class PercentileTest : public ::testing::TestWithParam<int>
{
};

TEST_P(PercentileTest, NearestRankOnIota)
{
    const int n = GetParam();
    SampleSet s;
    for (int i = 1; i <= n; ++i)
        s.add(i);
    for (double p : {10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0}) {
        const double expect =
            std::ceil(p / 100.0 * n); // nearest-rank definition
        EXPECT_DOUBLE_EQ(s.percentile(p), expect)
            << "n=" << n << " p=" << p;
    }
    // p=0 clamps to the smallest sample.
    EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PercentileTest,
                         ::testing::Values(1, 2, 3, 10, 100, 1000));

TEST(Table, RenderAligned)
{
    TablePrinter t({"A", "BB"});
    t.addRow({"x", "1"});
    const auto out = t.render();
    EXPECT_NE(out.find("A"), std::string::npos);
    EXPECT_NE(out.find("---"), std::string::npos);
    EXPECT_NE(out.find("x"), std::string::npos);
}

TEST(Table, Csv)
{
    TablePrinter t({"a", "b"});
    t.addRow({"1", "2"});
    EXPECT_EQ(t.renderCsv(), "a,b\n1,2\n");
}

TEST(Table, NumberFormatting)
{
    EXPECT_EQ(TablePrinter::num(3.14159, 2), "3.14");
    EXPECT_EQ(TablePrinter::num(std::uint64_t{1234567}),
              "1,234,567");
    EXPECT_EQ(TablePrinter::num(std::uint64_t{12}), "12");
}
