/**
 * @file
 * Tests for the retire-stream trace infrastructure: wire-format
 * round-trips, core recording, and the replay engine's parity with
 * the live mechanism.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "sim_fixture.hh"
#include "trace/replay.hh"
#include "trace/trace.hh"

using namespace dlsim;
using namespace dlsim::isa;
using namespace dlsim::trace;
using dlsim::test::Sim;

namespace
{

/** Unique temp path per test. */
std::string
tmpPath(const std::string &tag)
{
    return ::testing::TempDir() + "dlsim_trace_" + tag + ".bin";
}

elf::Module
callerExe(int sites = 2)
{
    elf::ModuleBuilder mb("app");
    mb.setDataSize(4096);
    auto &f = mb.function("f");
    for (int i = 0; i < sites; ++i)
        f.callExternal("libfn");
    f.ret();
    return mb.build();
}

elf::Module
lib()
{
    elf::ModuleBuilder mb("lib");
    auto &f = mb.function("libfn");
    f.aluImm(AluKind::Add, RegRet, RegArg0, 1);
    f.ret();
    return mb.build();
}

} // namespace

TEST(Trace, WriterReaderRoundTrip)
{
    const auto path = tmpPath("roundtrip");
    {
        TraceWriter writer(path);
        ASSERT_TRUE(writer.good());
        TraceEvent a;
        a.kind = EventKind::Control;
        a.op = Opcode::CallRel;
        a.flags = 3;
        a.taken = 1;
        a.pc = 0x400010;
        a.addr = 0x7f0000000000;
        a.loadSrc = 0x401000;
        writer.append(a);
        TraceEvent b;
        b.kind = EventKind::Store;
        b.addr = 0xdeadbeef8;
        writer.append(b);
        writer.close();
        EXPECT_EQ(writer.count(), 2u);
    }
    TraceReader reader(path);
    ASSERT_TRUE(reader.good());
    EXPECT_EQ(reader.count(), 2u);

    TraceEvent e;
    ASSERT_TRUE(reader.next(e));
    EXPECT_EQ(e.kind, EventKind::Control);
    EXPECT_EQ(e.op, Opcode::CallRel);
    EXPECT_EQ(e.flags, 3);
    EXPECT_EQ(e.taken, 1);
    EXPECT_EQ(e.pc, 0x400010u);
    EXPECT_EQ(e.addr, 0x7f0000000000u);
    EXPECT_EQ(e.loadSrc, 0x401000u);
    ASSERT_TRUE(reader.next(e));
    EXPECT_EQ(e.kind, EventKind::Store);
    EXPECT_EQ(e.addr, 0xdeadbeef8u);
    EXPECT_FALSE(reader.next(e));

    reader.rewind();
    ASSERT_TRUE(reader.next(e));
    EXPECT_EQ(e.kind, EventKind::Control);
    std::remove(path.c_str());
}

TEST(Trace, ReaderRejectsGarbage)
{
    const auto path = tmpPath("garbage");
    {
        std::ofstream out(path, std::ios::binary);
        out << "this is not a trace file at all............";
    }
    TraceReader reader(path);
    EXPECT_FALSE(reader.good());
    EXPECT_EQ(reader.error(), TraceError::BadMagic);
    std::remove(path.c_str());
}

TEST(Trace, ReaderRejectsMissingFile)
{
    TraceReader reader("/nonexistent/definitely/not/here.bin");
    EXPECT_FALSE(reader.good());
    EXPECT_EQ(reader.error(), TraceError::OpenFailed);
    EXPECT_STREQ(reader.errorString(), "cannot open trace file");
}

namespace
{

/** Write a small, valid two-event trace at `path`. */
void
writeValidTrace(const std::string &path)
{
    TraceWriter writer(path);
    TraceEvent e;
    e.kind = EventKind::Control;
    e.pc = 0x400000;
    writer.append(e);
    e.kind = EventKind::Store;
    e.addr = 0x500000;
    writer.append(e);
    writer.close();
}

/** Flip one bit of the byte at `offset` in the file at `path`. */
void
flipBit(const std::string &path, std::streamoff offset)
{
    std::fstream f(path,
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(offset);
    char c = 0;
    f.get(c);
    f.seekp(offset);
    f.put(static_cast<char>(c ^ 0x01));
}

} // namespace

TEST(Trace, ReaderRejectsBitFlippedMagic)
{
    const auto path = tmpPath("flipmagic");
    writeValidTrace(path);
    flipBit(path, 0);
    TraceReader reader(path);
    EXPECT_FALSE(reader.good());
    EXPECT_EQ(reader.error(), TraceError::BadMagic);
    EXPECT_EQ(reader.count(), 0u);
    TraceEvent e;
    EXPECT_FALSE(reader.next(e));
    std::remove(path.c_str());
}

TEST(Trace, ReaderRejectsBitFlippedVersion)
{
    const auto path = tmpPath("flipversion");
    writeValidTrace(path);
    flipBit(path, 4); // version lives in the high half of word 0
    TraceReader reader(path);
    EXPECT_FALSE(reader.good());
    EXPECT_EQ(reader.error(), TraceError::BadVersion);
    std::remove(path.c_str());
}

TEST(Trace, ReaderRejectsCorruptEventCount)
{
    // A bit flip in the header's event count makes the file length
    // inconsistent; the reader must refuse rather than replay a
    // shorter (or impossible) stream.
    const auto path = tmpPath("flipcount");
    writeValidTrace(path);
    flipBit(path, 8);
    TraceReader reader(path);
    EXPECT_FALSE(reader.good());
    EXPECT_EQ(reader.error(), TraceError::BadLength);
    EXPECT_EQ(reader.count(), 0u);
    std::remove(path.c_str());
}

TEST(Trace, ReaderRejectsTruncatedFile)
{
    const auto path = tmpPath("truncated");
    writeValidTrace(path);
    {
        // Chop the last event short: 2 events promised, 1.5 stored.
        std::ifstream in(path, std::ios::binary);
        std::vector<char> all(
            (std::istreambuf_iterator<char>(in)),
            std::istreambuf_iterator<char>());
        all.resize(all.size() - 13);
        std::ofstream out(path,
                          std::ios::binary | std::ios::trunc);
        out.write(all.data(),
                  static_cast<std::streamsize>(all.size()));
    }
    TraceReader reader(path);
    EXPECT_FALSE(reader.good());
    EXPECT_EQ(reader.error(), TraceError::BadLength);
    TraceEvent e;
    EXPECT_FALSE(reader.next(e));
    std::remove(path.c_str());
}

TEST(Trace, ReaderRejectsHeaderOnlyTruncation)
{
    const auto path = tmpPath("headertrunc");
    writeValidTrace(path);
    {
        std::ifstream in(path, std::ios::binary);
        std::vector<char> all(
            (std::istreambuf_iterator<char>(in)),
            std::istreambuf_iterator<char>());
        all.resize(10); // mid-header
        std::ofstream out(path,
                          std::ios::binary | std::ios::trunc);
        out.write(all.data(),
                  static_cast<std::streamsize>(all.size()));
    }
    TraceReader reader(path);
    EXPECT_FALSE(reader.good());
    EXPECT_EQ(reader.error(), TraceError::Truncated);
    std::remove(path.c_str());
}

TEST(Trace, ValidTraceReportsNoError)
{
    const auto path = tmpPath("valid");
    writeValidTrace(path);
    TraceReader reader(path);
    ASSERT_TRUE(reader.good());
    EXPECT_EQ(reader.error(), TraceError::None);
    EXPECT_EQ(reader.count(), 2u);
    std::remove(path.c_str());
}

TEST(Trace, CoreRecordsRetireStream)
{
    const auto path = tmpPath("record");
    {
        cpu::CoreParams params;
        params.tracePath = path;
        Sim sim(callerExe(), {lib()}, params);
        sim.call("f", 1);
        sim.call("f", 2);
        sim.core->closeTrace();
    }
    TraceReader reader(path);
    ASSERT_TRUE(reader.good());
    EXPECT_GT(reader.count(), 10u);

    std::uint64_t controls = 0, stores = 0, others = 0,
                  plt_jmps = 0, resolver_stores = 0;
    TraceEvent e;
    while (reader.next(e)) {
        switch (e.kind) {
          case EventKind::Control:
            ++controls;
            plt_jmps += (e.flags & linker::FlagPltJmp) ? 1 : 0;
            break;
          case EventKind::Store:
            ++stores;
            resolver_stores +=
                e.pc == linker::ResolverVa ? 1 : 0;
            break;
          case EventKind::Other:
            ++others;
            break;
        }
    }
    EXPECT_GT(controls, 0u);
    EXPECT_GT(stores, 0u);
    EXPECT_GT(others, 0u);
    // Two sites, two calls each = 4 trampoline-jump retires.
    EXPECT_EQ(plt_jmps, 4u);
    // One lazy resolution -> one resolver GOT store.
    EXPECT_EQ(resolver_stores, 1u);
    std::remove(path.c_str());
}

TEST(Trace, ReplayMatchesLiveMechanism)
{
    // Record a base run; replay it through the skip unit; the
    // would-skip count must equal the live enhanced machine's
    // skipped-trampoline count on the identical input sequence.
    const auto path = tmpPath("parity");
    constexpr int Rounds = 8;
    {
        cpu::CoreParams params;
        params.tracePath = path;
        Sim sim(callerExe(), {lib()}, params);
        for (int i = 0; i < Rounds; ++i)
            sim.call("f", i);
        sim.core->closeTrace();
    }

    Sim live(callerExe(), {lib()}, dlsim::test::enhancedParams());
    for (int i = 0; i < Rounds; ++i)
        live.call("f", i);

    TraceReader reader(path);
    ASSERT_TRUE(reader.good());
    const auto replay =
        replaySkipUnit(reader, core::SkipUnitParams{});

    EXPECT_EQ(replay.wouldSkip,
              live.core->counters().skippedTrampolines);
    EXPECT_EQ(replay.skipStats.storeFlushes,
              live.core->skipUnit()->stats().storeFlushes);
    EXPECT_GT(replay.trampolineExecutions, 0u);
    std::remove(path.c_str());
}

TEST(Trace, ReplaySweepMonotoneInAbtbSize)
{
    // Larger ABTBs never skip fewer trampolines on the same trace.
    const auto path = tmpPath("sweep");
    {
        cpu::CoreParams params;
        params.tracePath = path;
        // Many distinct call sites to pressure a tiny ABTB.
        Sim sim(callerExe(24), {lib()}, params);
        for (int i = 0; i < 6; ++i)
            sim.call("f", i);
        sim.core->closeTrace();
    }
    TraceReader reader(path);
    ASSERT_TRUE(reader.good());

    double prev = -1.0;
    for (std::uint32_t entries : {1u, 4u, 16u, 64u, 256u}) {
        core::SkipUnitParams params;
        params.abtb.entries = entries;
        params.abtb.assoc = std::min(entries, 4u);
        const auto r = replaySkipUnit(reader, params);
        EXPECT_GE(r.skipRate(), prev - 1e-12)
            << "entries " << entries;
        prev = r.skipRate();
    }
    EXPECT_GT(prev, 0.5); // large ABTB skips most executions
    std::remove(path.c_str());
}

TEST(Trace, ReplayIsDeterministic)
{
    const auto path = tmpPath("deterministic");
    {
        cpu::CoreParams params;
        params.tracePath = path;
        Sim sim(callerExe(), {lib()}, params);
        for (int i = 0; i < 4; ++i)
            sim.call("f", i);
        sim.core->closeTrace();
    }
    TraceReader reader(path);
    const auto a = replaySkipUnit(reader, core::SkipUnitParams{});
    const auto b = replaySkipUnit(reader, core::SkipUnitParams{});
    EXPECT_EQ(a.wouldSkip, b.wouldSkip);
    EXPECT_EQ(a.events, b.events);
    std::remove(path.c_str());
}
