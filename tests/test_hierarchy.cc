/**
 * @file
 * Tests for the assembled memory hierarchy: inclusion-free fill
 * behaviour, latency accounting, and TLB flush integration.
 */

#include <gtest/gtest.h>

#include "mem/hierarchy.hh"

using namespace dlsim::mem;

namespace
{

HierarchyParams
smallParams()
{
    HierarchyParams p;
    p.l1i = CacheParams{"l1i", 1024, 2, 64};
    p.l1d = CacheParams{"l1d", 1024, 2, 64};
    p.l2 = CacheParams{"l2", 4096, 4, 64};
    p.l3 = CacheParams{"l3", 16384, 8, 64};
    p.itlb = TlbParams{"itlb", 4, 2};
    p.dtlb = TlbParams{"dtlb", 4, 2};
    return p;
}

} // namespace

TEST(Hierarchy, ColdFetchCostsFullMissChain)
{
    Hierarchy h(smallParams());
    const auto r = h.fetch(0x400000, 0);
    EXPECT_FALSE(r.tlbHit);
    EXPECT_FALSE(r.l1Hit);
    EXPECT_FALSE(r.l2Hit);
    EXPECT_FALSE(r.l3Hit);
    EXPECT_EQ(r.extraCycles, smallParams().walkLatency +
                                 smallParams().l3Latency +
                                 smallParams().memLatency);
}

TEST(Hierarchy, WarmFetchIsFree)
{
    Hierarchy h(smallParams());
    h.fetch(0x400000, 0);
    const auto r = h.fetch(0x400000, 0);
    EXPECT_TRUE(r.tlbHit);
    EXPECT_TRUE(r.l1Hit);
    EXPECT_EQ(r.extraCycles, 0u);
}

TEST(Hierarchy, L2HitAfterL1Eviction)
{
    Hierarchy h(smallParams());
    // Fill L1I (1KB, 2-way, 8 sets): lines at stride 512 conflict.
    h.fetch(0x0, 0);
    h.fetch(0x200, 0);
    h.fetch(0x400, 0); // evicts 0x0 from L1, still in L2
    const auto r = h.fetch(0x0, 0);
    EXPECT_FALSE(r.l1Hit);
    EXPECT_TRUE(r.l2Hit);
    EXPECT_EQ(r.extraCycles, smallParams().l2Latency);
}

TEST(Hierarchy, SplitL1SharedL2)
{
    Hierarchy h(smallParams());
    h.fetch(0x1000, 0);
    // The same line through the D side: L1D misses but L2 hits.
    const auto r = h.data(0x1000, 0);
    EXPECT_FALSE(r.l1Hit);
    EXPECT_TRUE(r.l2Hit);
}

TEST(Hierarchy, DataAndInstTlbsAreSeparate)
{
    Hierarchy h(smallParams());
    h.fetch(0x2000, 0);
    const auto r = h.data(0x2000, 0);
    EXPECT_FALSE(r.tlbHit); // D-TLB was not warmed by the fetch
}

TEST(Hierarchy, FlushTlbsKeepsCaches)
{
    Hierarchy h(smallParams());
    h.fetch(0x3000, 0);
    h.flushTlbs();
    const auto r = h.fetch(0x3000, 0);
    EXPECT_FALSE(r.tlbHit);
    EXPECT_TRUE(r.l1Hit); // caches unaffected (physical tags)
}

TEST(Hierarchy, ClearStatsKeepsContents)
{
    Hierarchy h(smallParams());
    h.fetch(0x1000, 0);
    h.clearStats();
    EXPECT_EQ(h.l1i().misses(), 0u);
    EXPECT_TRUE(h.fetch(0x1000, 0).l1Hit);
}

TEST(Hierarchy, DefaultGeometryMatchesPaperTestbedClass)
{
    const HierarchyParams p;
    EXPECT_EQ(p.l1i.sizeBytes, 32u * 1024);
    EXPECT_EQ(p.l1d.sizeBytes, 32u * 1024);
    EXPECT_EQ(p.l3.sizeBytes, 12u * 1024 * 1024); // 12MB LLC
}
