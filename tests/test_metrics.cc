/**
 * @file
 * Metrics registry, JSON writer/validator, and document schema
 * tests, including a golden-file test pinning the metric-key set a
 * full runArm() snapshot produces. The golden file is the schema
 * contract for downstream consumers of `--json-out` documents: a
 * renamed or dropped metric fails here before it breaks a plot
 * script.
 */

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common.hh"
#include "os/server.hh"
#include "stats/json_writer.hh"
#include "stats/metrics.hh"

using namespace dlsim;
using namespace dlsim::stats;

TEST(MetricsRegistry, CounterGaugeRoundTrip)
{
    MetricsRegistry reg;
    reg.counter("dlsim.a.hits", 7);
    reg.gauge("dlsim.a.rate", 0.5);

    EXPECT_TRUE(reg.has("dlsim.a.hits"));
    EXPECT_FALSE(reg.has("dlsim.a.misses"));
    EXPECT_EQ(reg.counterValue("dlsim.a.hits"), 7u);
    EXPECT_EQ(reg.counterValue("dlsim.a.missing"), 0u);

    const auto *m = reg.find("dlsim.a.rate");
    ASSERT_NE(m, nullptr);
    EXPECT_EQ(m->kind, MetricKind::Gauge);
    EXPECT_DOUBLE_EQ(m->gauge, 0.5);
}

TEST(MetricsRegistry, ReRegistrationOverwrites)
{
    MetricsRegistry reg;
    reg.counter("dlsim.x", 1);
    reg.counter("dlsim.x", 9);
    EXPECT_EQ(reg.counterValue("dlsim.x"), 9u);
    EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricsRegistry, KeysAreSorted)
{
    MetricsRegistry reg;
    reg.counter("dlsim.z", 1);
    reg.counter("dlsim.a", 1);
    reg.counter("dlsim.m", 1);
    std::vector<std::string> keys;
    for (const auto &[name, metric] : reg.metrics())
        keys.push_back(name);
    EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
}

TEST(MetricsRegistry, HistogramSummarisesSampleSet)
{
    SampleSet samples;
    for (int i = 1; i <= 100; ++i)
        samples.add(double(i));

    MetricsRegistry reg;
    reg.histogram("dlsim.lat", samples, 4);
    const auto *m = reg.find("dlsim.lat");
    ASSERT_NE(m, nullptr);
    EXPECT_EQ(m->kind, MetricKind::Histogram);
    EXPECT_EQ(m->histogram.count, 100u);
    EXPECT_DOUBLE_EQ(m->histogram.min, 1.0);
    EXPECT_DOUBLE_EQ(m->histogram.max, 100.0);
    EXPECT_NEAR(m->histogram.mean, 50.5, 1e-9);
    ASSERT_EQ(m->histogram.percentiles.size(), 5u);
    EXPECT_DOUBLE_EQ(m->histogram.percentiles[0].first, 50.0);
    EXPECT_EQ(m->histogram.cdf.size(), 4u);
    // CDF fractions are monotonically non-decreasing in [0, 1].
    double prev = 0.0;
    for (const auto &[value, frac] : m->histogram.cdf) {
        EXPECT_GE(frac, prev);
        EXPECT_LE(frac, 1.0);
        prev = frac;
    }
}

TEST(MetricsRegistry, EmptyHistogramHasNoPercentiles)
{
    SampleSet samples;
    MetricsRegistry reg;
    reg.histogram("dlsim.lat", samples);
    const auto *m = reg.find("dlsim.lat");
    ASSERT_NE(m, nullptr);
    EXPECT_EQ(m->histogram.count, 0u);
    EXPECT_TRUE(m->histogram.percentiles.empty());
    EXPECT_TRUE(m->histogram.cdf.empty());
}

TEST(JsonWriter, EscapesAndValidates)
{
    EXPECT_EQ(jsonEscape("a\"b\\c\n"), "a\\\"b\\\\c\\n");

    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.field("s", "he\"llo");
    w.field("n", std::uint64_t{42});
    w.key("arr");
    w.beginArray();
    w.value(1.5);
    w.value(false);
    w.endArray();
    w.endObject();
    const auto text = os.str();

    std::string error;
    EXPECT_TRUE(jsonValidate(text, &error)) << error;
    EXPECT_NE(text.find("\"he\\\"llo\""), std::string::npos);
}

TEST(JsonValidate, RejectsMalformedDocuments)
{
    std::string error;
    EXPECT_FALSE(jsonValidate("", &error));
    EXPECT_FALSE(jsonValidate("{", &error));
    EXPECT_FALSE(jsonValidate("{\"a\":}", &error));
    EXPECT_FALSE(jsonValidate("[1,]", &error));
    EXPECT_FALSE(jsonValidate("{\"a\":1} extra", &error));
    EXPECT_TRUE(jsonValidate("{\"a\": [1, 2.5, \"x\", null, "
                             "true]}",
                             &error))
        << error;
}

TEST(MetricsDocument, SerialisesSchemaAndRuns)
{
    MetricsDocument doc("test_tool");
    auto &run = doc.addRun("arm1");
    run.with("workload", "apache").with("machine", "base");
    run.registry.counter("dlsim.cpu.instructions", 123);
    run.registry.gauge("dlsim.cpu.ipc", 1.5);

    SampleSet samples;
    samples.add(10.0);
    samples.add(20.0);
    run.registry.histogram("dlsim.workload.latency.get", samples);

    const auto text = doc.toJson();
    std::string error;
    ASSERT_TRUE(jsonValidate(text, &error)) << error;

    EXPECT_NE(text.find("\"schema\": \"dlsim-metrics-v1\""),
              std::string::npos);
    EXPECT_NE(text.find("\"version\": 1"), std::string::npos);
    EXPECT_NE(text.find("\"tool\": \"test_tool\""),
              std::string::npos);
    EXPECT_NE(text.find("\"name\": \"arm1\""), std::string::npos);
    EXPECT_NE(text.find("\"workload\": \"apache\""),
              std::string::npos);
    EXPECT_NE(text.find("\"dlsim.cpu.instructions\""),
              std::string::npos);
    EXPECT_NE(text.find("\"kind\": \"histogram\""),
              std::string::npos);
    EXPECT_NE(text.find("\"p99\""), std::string::npos);
}

TEST(MetricsDocument, WriteFileRoundTrip)
{
    MetricsDocument doc("test_tool");
    doc.addRun("r").registry.counter("dlsim.c", 1);

    const std::string path =
        ::testing::TempDir() + "/metrics_roundtrip.json";
    std::string error;
    ASSERT_TRUE(doc.writeFile(path, &error)) << error;

    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good());
    std::ostringstream buf;
    buf << in.rdbuf();
    EXPECT_EQ(buf.str(), doc.toJson());
    EXPECT_FALSE(
        doc.writeFile("/nonexistent-dir/x.json", &error));
    EXPECT_FALSE(error.empty());
}

namespace
{

/**
 * Keys of a full enhanced-machine runArm() snapshot, followed by
 * the OS-layer key families (`dlsim.multicore.*`, `dlsim.os.*`) a
 * server_traffic arm emits. Each section is sorted internally.
 */
std::vector<std::string>
snapshotKeys()
{
    auto mc = bench::enhancedMachine();
    mc.profileTrampolines = true;
    const auto arm = bench::runArm(
        workload::profileByName("memcached"), mc, 20, 30);
    std::vector<std::string> keys;
    for (const auto &[name, metric] : arm.registry.metrics())
        keys.push_back(name);

    // OS layer: a tiny multi-tenant server run contributes the
    // scheduler/pipe/socket/server counters and the multicore
    // flush-accounting gauges.
    auto smc = bench::enhancedMachine();
    smc.asidRetention = true;
    workload::WorkloadParams wl;
    wl.name = "server-golden";
    wl.seed = 7;
    wl.numLibs = 2;
    wl.funcsPerLib = 3;
    wl.libFnInsts = 12;
    wl.unusedImportsPerModule = 4;
    wl.requests = {{"get", 1.0, 1, 2}};
    wl.stepsPerRequest = 2;
    wl.appWorkInsts = 4;
    wl.calledImports = 4;
    wl.libDataBytes = 1 << 12;
    wl.appDataBytes = 1 << 14;
    wl.hotDataBytes = 512;
    workload::Workbench wb(wl, smc);

    sim::MultiCoreParams mp;
    mp.numCores = 2;
    mp.core = workload::makeCoreParams(smc);
    os::ServerParams sp;
    sp.workers = 2;
    sp.clients = 2;
    sp.tenants = 2;
    sp.requests = 16;
    sp.churnPeriod = 8;
    os::Server server(wb, mp, sp);
    server.run();

    MetricsRegistry reg;
    server.reportMetrics(reg, "dlsim.os");
    server.system().reportMetrics(reg, "dlsim");
    reg.histogram("dlsim.os.server.latency", server.latency());
    for (const auto &[name, metric] : reg.metrics())
        keys.push_back(name);
    return keys;
}

} // namespace

/**
 * Golden-file schema test: the exact key set of a runArm() metrics
 * snapshot. Regenerate after an intentional schema change with:
 *   build/tests/test_metrics --gtest_filter=MetricsGolden.\* \
 *     2>/dev/null | grep '^dlsim' > tests/data/metrics_keys.golden
 * (the test prints the actual keys on mismatch).
 */
TEST(MetricsGolden, RunArmKeySetMatchesGoldenFile)
{
    const std::string golden_path =
        std::string(DLSIM_TEST_DATA_DIR) + "/metrics_keys.golden";
    std::ifstream in(golden_path);
    ASSERT_TRUE(in.good()) << "missing " << golden_path;

    std::vector<std::string> expected;
    std::string line;
    while (std::getline(in, line))
        if (!line.empty())
            expected.push_back(line);

    const auto actual = snapshotKeys();
    if (actual != expected) {
        std::printf("actual runArm() metric keys:\n");
        for (const auto &k : actual)
            std::printf("%s\n", k.c_str());
    }
    EXPECT_EQ(actual, expected)
        << "runArm() metric-key set diverged from "
        << golden_path
        << " — update the golden file if the change is "
           "intentional";
}

/** The snapshot must carry the paper's headline counters. */
TEST(MetricsGolden, SnapshotCarriesHeadlineCounters)
{
    auto mc = bench::enhancedMachine();
    const auto arm = bench::runArm(
        workload::profileByName("memcached"), mc, 20, 30);
    const auto &reg = arm.registry;
    for (const char *key :
         {"dlsim.cpu.instructions", "dlsim.cpu.cycles",
          "dlsim.cpu.l1i.misses", "dlsim.cpu.l1i.hits",
          "dlsim.cpu.l1i.evictions", "dlsim.cpu.l1d.misses",
          "dlsim.cpu.itlb.misses", "dlsim.cpu.dtlb.misses",
          "dlsim.cpu.btb.misses", "dlsim.cpu.ras.pushes",
          "dlsim.cpu.direction.mispredicts",
          "dlsim.core.abtb.hits", "dlsim.core.abtb.evictions",
          "dlsim.core.bloom.insertions",
          "dlsim.core.skip.substitutions"}) {
        EXPECT_TRUE(reg.has(key)) << "missing " << key;
    }
    EXPECT_TRUE(reg.has("dlsim.cpu.trampoline_skip_rate"));
    EXPECT_TRUE(reg.has("dlsim.cpu.ipc"));
    EXPECT_GT(reg.counterValue("dlsim.cpu.instructions"), 0u);
}
