/**
 * @file
 * Tests for the OS layer: fork/COW across processes, context
 * switching on one core, and the §5.5 prefork memory accounting.
 */

#include <gtest/gtest.h>

#include "linker/patcher.hh"
#include "sim_fixture.hh"
#include "sim/system.hh"

using namespace dlsim;
using namespace dlsim::isa;
using dlsim::sim::System;
using dlsim::test::Sim;

namespace
{

elf::Module
counterExe()
{
    elf::ModuleBuilder mb("app");
    mb.setDataSize(4096);
    // f(): returns ++counter (a private per-process data word).
    auto &f = mb.function("f");
    f.movDataAddr(4, 0);
    f.load(RegRet, 4, 0);
    f.aluImm(AluKind::Add, RegRet, RegRet, 1);
    f.store(RegRet, 4, 0);
    f.callExternal("libfn");
    f.ret();
    return mb.build();
}

elf::Module
lib()
{
    elf::ModuleBuilder mb("lib");
    auto &f = mb.function("libfn");
    f.nop();
    f.ret();
    return mb.build();
}

} // namespace

TEST(System, ForkedProcessesHavePrivateData)
{
    Sim sim(counterExe(), {lib()});
    System system(*sim.core, *sim.image, *sim.linker);

    auto &parent = system.initialProcess();
    sim.call("f"); // counter -> 1 in the parent
    auto &child = system.fork(parent);

    system.switchTo(child);
    // The child inherited counter==1, then increments privately.
    EXPECT_EQ(sim.call("f").returnValue, 2u);
    EXPECT_EQ(sim.call("f").returnValue, 3u);

    system.switchTo(parent);
    EXPECT_EQ(sim.call("f").returnValue, 2u);
}

TEST(System, SwitchPreservesRegisterState)
{
    Sim sim(counterExe(), {lib()});
    System system(*sim.core, *sim.image, *sim.linker);
    auto &parent = system.initialProcess();
    auto &child = system.fork(parent);

    sim.core->state().regs[9] = 111;
    system.switchTo(child);
    sim.core->state().regs[9] = 222;
    system.switchTo(parent);
    EXPECT_EQ(sim.core->state().regs[9], 111u);
    system.switchTo(child);
    EXPECT_EQ(sim.core->state().regs[9], 222u);
}

TEST(System, SwitchToCurrentIsNoop)
{
    Sim sim(counterExe(), {lib()});
    System system(*sim.core, *sim.image, *sim.linker);
    system.switchTo(system.initialProcess());
    EXPECT_EQ(&system.current(), &system.initialProcess());
}

TEST(System, ContextSwitchFlushesAbtb)
{
    Sim sim(counterExe(), {lib()}, dlsim::test::enhancedParams());
    System system(*sim.core, *sim.image, *sim.linker);
    auto &parent = system.initialProcess();
    auto &child = system.fork(parent);

    for (int i = 0; i < 4; ++i)
        sim.call("f"); // populate the ABTB
    EXPECT_GT(sim.core->skipUnit()->abtb().occupancy(), 0u);
    system.switchTo(child);
    EXPECT_EQ(sim.core->skipUnit()->abtb().occupancy(), 0u);
    EXPECT_GE(sim.core->skipUnit()
                  ->stats().contextSwitchFlushes, 1u);
}

TEST(System, CowStacksAndDataCopyOnWrite)
{
    Sim sim(counterExe(), {lib()});
    System system(*sim.core, *sim.image, *sim.linker);
    auto &parent = system.initialProcess();
    sim.call("f"); // touch data + stack in the parent
    auto &child = system.fork(parent);
    system.switchTo(child);
    sim.call("f"); // dirties data + stack pages in the child

    const auto stats = system.memoryStats();
    EXPECT_GE(stats.dataCowCopies, 1u);
    EXPECT_GE(stats.stackCowCopies, 1u);
    EXPECT_EQ(stats.textCowCopies, 0u); // code stays shared
}

TEST(System, PreforkPatchingCopiesTextPagesPerProcess)
{
    // The §5.5 scenario: profile, fork workers, then patch in each
    // worker — every worker pays private copies of the patched
    // text pages, while the hardware approach would pay none.
    cpu::CoreParams prof;
    prof.collectCallSiteTrace = true;
    linker::LoaderOptions near;
    near.nearLibraries = true;
    Sim sim(counterExe(), {lib()}, prof, near);
    System system(*sim.core, *sim.image, *sim.linker);

    for (int i = 0; i < 3; ++i)
        sim.call("f");
    const auto trace = sim.core->callSiteTrace();
    ASSERT_FALSE(trace.empty());

    auto &parent = system.initialProcess();
    constexpr int Workers = 4;
    std::vector<dlsim::sim::Process *> workers;
    for (int i = 0; i < Workers; ++i)
        workers.push_back(&system.fork(parent));

    linker::Patcher patcher;
    for (auto *w : workers) {
        system.switchTo(*w);
        patcher.apply(*sim.image, trace);
    }

    const auto stats = system.memoryStats();
    // Every worker copied the patched text page privately.
    EXPECT_EQ(stats.textCowCopies,
              static_cast<std::uint64_t>(Workers));
}

TEST(System, HardwareMechanismKeepsTextShared)
{
    // Contrast case: the enhanced machine never writes text, so
    // prefork workers share every code page forever.
    Sim sim(counterExe(), {lib()}, dlsim::test::enhancedParams());
    System system(*sim.core, *sim.image, *sim.linker);
    auto &parent = system.initialProcess();
    auto &w1 = system.fork(parent);
    auto &w2 = system.fork(parent);

    system.switchTo(w1);
    for (int i = 0; i < 4; ++i)
        sim.call("f");
    system.switchTo(w2);
    for (int i = 0; i < 4; ++i)
        sim.call("f");

    EXPECT_EQ(system.memoryStats().textCowCopies, 0u);
    EXPECT_GT(sim.core->counters().skippedTrampolines, 0u);
}

TEST(System, ProcessNamesAndCount)
{
    Sim sim(counterExe(), {lib()});
    System system(*sim.core, *sim.image, *sim.linker);
    system.fork(system.initialProcess());
    system.fork(system.initialProcess());
    EXPECT_EQ(system.numProcesses(), 3u);
    EXPECT_EQ(system.process(1).name, "proc1");
    EXPECT_NE(system.process(1).asid, system.process(2).asid);
}
