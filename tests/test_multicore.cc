/**
 * @file
 * Tests for the multicore system: deterministic interleaving,
 * shared-memory threads, and — the paper-critical part — coherence
 * invalidations reaching every core's ABTB (§3.2's "or an
 * invalidation for such an address is received from the coherence
 * subsystem").
 */

#include <gtest/gtest.h>

#include "elf/builder.hh"
#include "linker/loader.hh"
#include "sim/multicore.hh"

using namespace dlsim;
using namespace dlsim::isa;
using dlsim::sim::MultiCoreParams;
using dlsim::sim::MultiCoreSystem;

namespace
{

/** worker(arg0, arg1, tid): calls a library fn and mixes args. */
elf::Module
makeExe()
{
    elf::ModuleBuilder mb("app");
    mb.setDataSize(8192);
    auto &w = mb.function("worker");
    auto top = w.newLabel();
    w.aluImm(AluKind::Add, 10, RegArg0, 0); // r10 = loop count
    w.bind(top);
    w.callExternal("libfn");
    w.aluImm(AluKind::Sub, 10, 10, 1);
    w.condBr(CondKind::Ne0, 10, top);
    w.alu(AluKind::Add, RegRet, RegRet, RegArg1);
    w.ret();

    // bump(): writes the shared counter in app data.
    auto &bump = mb.function("bump");
    bump.movDataAddr(4, 0);
    bump.load(5, 4, 0);
    bump.aluImm(AluKind::Add, 5, 5, 1);
    bump.store(5, 4, 0);
    bump.alu(AluKind::Add, RegRet, 5, 5);
    bump.ret();
    return mb.build();
}

elf::Module
makeLib()
{
    elf::ModuleBuilder mb("lib");
    auto &f = mb.function("libfn");
    f.aluImm(AluKind::Add, RegRet, RegArg2, 100);
    f.ret();
    return mb.build();
}

struct Rig
{
    linker::Loader loader;
    std::unique_ptr<linker::Image> image;
    std::unique_ptr<linker::DynamicLinker> linker;
    std::unique_ptr<MultiCoreSystem> system;

    explicit Rig(const MultiCoreParams &params)
    {
        image = loader.load(makeExe(), {makeLib()});
        linker =
            std::make_unique<linker::DynamicLinker>(*image);
        system = std::make_unique<MultiCoreSystem>(
            params, *image, *linker, loader.stackTop());
    }
};

MultiCoreParams
enhancedParams(std::uint32_t cores)
{
    MultiCoreParams p;
    p.numCores = cores;
    p.core.skipUnitEnabled = true;
    return p;
}

} // namespace

TEST(MultiCore, ThreadsComputeIndependentResults)
{
    MultiCoreParams params;
    params.numCores = 4;
    Rig rig(params);
    const auto results = rig.system->runOnAll(
        rig.image->symbolAddress("worker"),
        {{2, 10}, {2, 20}, {2, 30}, {2, 40}});
    ASSERT_EQ(results.size(), 4u);
    for (std::size_t i = 0; i < 4; ++i) {
        // libfn returns tid+100; worker adds arg1.
        EXPECT_EQ(results[i].returnValue,
                  100 + i + 10 * (i + 1));
    }
}

TEST(MultiCore, SharedMemoryVisibleAcrossThreads)
{
    // A quantum longer than the program serialises the threads, so
    // the non-atomic increments do not race.
    MultiCoreParams params;
    params.numCores = 4;
    params.quantum = 100000;
    Rig rig(params);
    rig.system->runOnAll(rig.image->symbolAddress("bump"),
                         {{0, 0}, {0, 0}, {0, 0}, {0, 0}});
    mem::MemFault fault = mem::MemFault::None;
    const auto counter = rig.image->addressSpace().read64(
        rig.image->moduleAt(0).dataBase, fault);
    EXPECT_EQ(counter, 4u);
}

TEST(MultiCore, UnsynchronisedIncrementsCanRace)
{
    // With a tiny quantum the load-add-store sequences interleave
    // and updates are lost — shared memory behaving like shared
    // memory.
    MultiCoreParams params;
    params.numCores = 4;
    params.quantum = 3;
    Rig rig(params);
    rig.system->runOnAll(rig.image->symbolAddress("bump"),
                         {{0, 0}, {0, 0}, {0, 0}, {0, 0}});
    mem::MemFault fault = mem::MemFault::None;
    const auto counter = rig.image->addressSpace().read64(
        rig.image->moduleAt(0).dataBase, fault);
    EXPECT_GE(counter, 1u);
    EXPECT_LE(counter, 4u);
}

TEST(MultiCore, DeterministicAcrossRuns)
{
    auto run = [] {
        Rig rig(enhancedParams(3));
        return rig.system->runOnAll(
            rig.image->symbolAddress("worker"),
            {{3, 1}, {4, 2}, {5, 3}});
    };
    const auto a = run();
    const auto b = run();
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].cycles, b[i].cycles);
        EXPECT_EQ(a[i].instructions, b[i].instructions);
    }
}

TEST(MultiCore, LazyResolutionSharedAcrossThreads)
{
    MultiCoreParams params;
    params.numCores = 4;
    Rig rig(params);
    rig.system->runOnAll(rig.image->symbolAddress("worker"),
                         {{2, 0}, {2, 0}, {2, 0}, {2, 0}});
    // One GOT, one resolution, regardless of which thread won.
    EXPECT_EQ(rig.linker->resolutionCount(), 1u);
}

TEST(MultiCore, ResolutionStoreFlushesSiblingAbtbs)
{
    // Thread 0 warms its ABTB; then a *different* core's lazy
    // resolution of a second symbol must not be needed... instead
    // we directly verify that a GOT store on one core invalidates
    // the sibling's skip unit via the coherence path.
    Rig rig(enhancedParams(2));
    auto &c0 = rig.system->core(0);
    auto &c1 = rig.system->core(1);

    // Warm both cores on the same worker (each resolves/populates).
    rig.system->runOnAll(rig.image->symbolAddress("worker"),
                         {{4, 0}, {4, 0}});
    ASSERT_GT(c0.skipUnit()->abtb().occupancy() +
                  c1.skipUnit()->abtb().occupancy(),
              0u);

    // A store from core 0 to the guarded GOT slot (simulating a
    // linker update executed on that core) must flush core 1's
    // ABTB through the coherence snoop.
    const auto &exe = rig.image->moduleAt(0);
    const auto before = rig.system->totalCoherenceFlushes();
    rig.image->addressSpace().poke64(
        exe.gotSlotAddrs[0],
        rig.image->symbolAddress("libfn"));
    rig.system->broadcastGotWrite(exe.gotSlotAddrs[0]);
    EXPECT_GT(rig.system->totalCoherenceFlushes(), before);
    EXPECT_EQ(c1.skipUnit()->abtb().occupancy(), 0u);
}

TEST(MultiCore, SkippingWorksOnEveryCore)
{
    Rig rig(enhancedParams(4));
    for (int round = 0; round < 4; ++round) {
        rig.system->runOnAll(rig.image->symbolAddress("worker"),
                             {{3, 0}, {3, 0}, {3, 0}, {3, 0}});
    }
    for (std::uint32_t i = 0; i < 4; ++i) {
        EXPECT_GT(rig.system->core(i)
                      .counters().skippedTrampolines,
                  0u)
            << "core " << i;
    }
}

TEST(MultiCore, CoherenceFlushCountedWhenGuardedSlotWritten)
{
    // End-to-end: thread 1's *architectural* store to the guarded
    // slot (through its own store path) flushes thread 0's ABTB.
    Rig rig(enhancedParams(2));
    rig.system->runOnAll(rig.image->symbolAddress("worker"),
                         {{4, 0}, {4, 0}});

    // Both cores now guard the GOT slot. Run `bump` (which stores
    // to app data, NOT the GOT) on both: no coherence flushes.
    const auto before = rig.system->totalCoherenceFlushes();
    rig.system->runOnAll(rig.image->symbolAddress("bump"),
                         {{0, 0}, {0, 0}});
    EXPECT_EQ(rig.system->totalCoherenceFlushes(), before);
}

TEST(MultiCore, QuantumSizeDoesNotChangeResults)
{
    auto run = [](std::uint64_t quantum) {
        MultiCoreParams p;
        p.numCores = 3;
        p.quantum = quantum;
        Rig rig(p);
        return rig.system->runOnAll(
            rig.image->symbolAddress("worker"),
            {{3, 7}, {2, 8}, {4, 9}});
    };
    const auto fine = run(1);
    const auto coarse = run(10000);
    for (std::size_t i = 0; i < fine.size(); ++i) {
        // Architectural results are interleaving-independent for
        // these data-race-free threads. (Instruction counts may
        // differ: with fine interleaving several threads can reach
        // the lazy resolver before the first resolution lands,
        // exactly as with glibc's reentrant resolver.)
        EXPECT_EQ(fine[i].returnValue, coarse[i].returnValue);
    }
}

TEST(MultiCore, StoreInvalidatesSiblingCaches)
{
    // Write-invalidate coherence: after thread 0 stores to the
    // shared counter, thread 1's cached copy of that line is gone.
    MultiCoreParams params;
    params.numCores = 2;
    params.quantum = 100000;
    Rig rig(params);
    rig.system->runOnAll(rig.image->symbolAddress("bump"),
                         {{0, 0}, {0, 0}});
    const auto data_base = rig.image->moduleAt(0).dataBase;
    // Thread 1 ran last (serialised by the long quantum), so the
    // line is in its L1D; thread 0's copy was invalidated by
    // thread 1's store.
    EXPECT_FALSE(
        rig.system->core(0).hierarchy().l1d().contains(data_base,
                                                       0));
}

TEST(MultiCore, RunQueueHandlesMoreThreadsThanCores)
{
    // M = 7 threads over N = 2 cores: a run-to-completion queue.
    MultiCoreParams params;
    params.numCores = 2;
    Rig rig(params);
    std::vector<std::pair<std::uint64_t, std::uint64_t>> args;
    for (std::uint64_t i = 0; i < 7; ++i)
        args.push_back({2, 10 * (i + 1)});
    const auto results = rig.system->runOnAll(
        rig.image->symbolAddress("worker"), args);
    ASSERT_EQ(results.size(), 7u);
    for (std::size_t i = 0; i < 7; ++i) {
        // libfn returns the thread index (arg2) + 100; worker adds
        // arg1 — queued threads keep their args-order identity.
        EXPECT_EQ(results[i].returnValue,
                  100 + i + 10 * (i + 1))
            << "thread " << i;
        EXPECT_GT(results[i].instructions, 0u) << "thread " << i;
    }
}

TEST(MultiCore, RunQueueDeterministicAndQuantumInvariant)
{
    auto run = [](std::uint64_t quantum) {
        MultiCoreParams p;
        p.numCores = 2;
        p.quantum = quantum;
        Rig rig(p);
        return rig.system->runOnAll(
            rig.image->symbolAddress("worker"),
            {{3, 1}, {4, 2}, {5, 3}, {2, 4}, {3, 5}});
    };
    const auto a = run(200);
    const auto b = run(200);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].cycles, b[i].cycles) << i;
        EXPECT_EQ(a[i].instructions, b[i].instructions) << i;
        EXPECT_EQ(a[i].returnValue, b[i].returnValue) << i;
    }
    // Architectural results are also quantum-invariant.
    const auto coarse = run(10000);
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].returnValue, coarse[i].returnValue) << i;
}

TEST(MultiCore, RunQueueSharesOneLazyResolution)
{
    // All 6 queued threads call libfn through the single shared
    // GOT: exactly one resolver trip, like the M == N case.
    MultiCoreParams params;
    params.numCores = 2;
    Rig rig(params);
    rig.system->runOnAll(
        rig.image->symbolAddress("worker"),
        {{2, 0}, {2, 0}, {2, 0}, {2, 0}, {2, 0}, {2, 0}});
    EXPECT_EQ(rig.linker->resolutionCount(), 1u);
}

TEST(MultiCore, RunQueueSkipUnitWorksForQueuedThreads)
{
    // Queued threads (index >= numCores) reuse warmed cores, so
    // the ABTB keeps skipping across the whole queue.
    Rig rig(enhancedParams(2));
    rig.system->runOnAll(
        rig.image->symbolAddress("worker"),
        {{4, 0}, {4, 0}, {4, 0}, {4, 0}, {4, 0}, {4, 0}});
    for (std::uint32_t i = 0; i < 2; ++i) {
        EXPECT_GT(
            rig.system->core(i).counters().skippedTrampolines,
            0u)
            << "core " << i;
    }
}

TEST(MultiCore, CoherenceDisableKeepsStaleLines)
{
    MultiCoreParams p;
    p.numCores = 2;
    p.quantum = 100000;
    p.cacheCoherence = false;
    Rig rig(p);
    rig.system->runOnAll(rig.image->symbolAddress("bump"),
                         {{0, 0}, {0, 0}});
    const auto data_base = rig.image->moduleAt(0).dataBase;
    // Without the snoop, thread 0's (stale) line survives.
    EXPECT_TRUE(
        rig.system->core(0).hierarchy().l1d().contains(data_base,
                                                       0));
}
