/**
 * @file
 * Unit and property tests for the GOT-address bloom filter.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <unordered_set>
#include <vector>

#include "core/bloom_filter.hh"
#include "stats/rng.hh"

using dlsim::core::BloomFilter;
using dlsim::stats::Rng;

TEST(Bloom, EmptyContainsNothing)
{
    BloomFilter bf(1024, 2);
    EXPECT_FALSE(bf.mayContain(0x1000));
    EXPECT_FALSE(bf.mayContain(0));
}

TEST(Bloom, InsertedAlwaysFound)
{
    BloomFilter bf(1024, 2);
    bf.insert(0x7f0000001238);
    EXPECT_TRUE(bf.mayContain(0x7f0000001238));
}

TEST(Bloom, ClearForgetsEverything)
{
    BloomFilter bf(1024, 2);
    bf.insert(0x1000);
    bf.clear();
    EXPECT_FALSE(bf.mayContain(0x1000));
    EXPECT_DOUBLE_EQ(bf.occupancy(), 0.0);
}

TEST(Bloom, SizeBytes)
{
    EXPECT_EQ(BloomFilter(1024, 2).sizeBytes(), 128u);
    EXPECT_EQ(BloomFilter(32768, 4).sizeBytes(), 4096u);
}

TEST(Bloom, OccupancyGrowsWithInsertions)
{
    BloomFilter bf(1024, 2);
    const double o0 = bf.occupancy();
    Rng rng(1);
    for (int i = 0; i < 100; ++i)
        bf.insert(rng.next() & ~7ull);
    EXPECT_GT(bf.occupancy(), o0);
    EXPECT_LE(bf.occupancy(), 1.0);
}

/** Property: no false negatives, ever. */
TEST(Bloom, NoFalseNegativesProperty)
{
    Rng rng(99);
    BloomFilter bf(4096, 3);
    std::vector<std::uint64_t> inserted;
    for (int i = 0; i < 500; ++i) {
        const auto addr = rng.next() & ~7ull;
        bf.insert(addr);
        inserted.push_back(addr);
    }
    for (const auto addr : inserted)
        EXPECT_TRUE(bf.mayContain(addr));
}

/**
 * Property: the false-positive rate of a well-sized filter stays
 * near its analytic value. This is the sizing question the paper
 * glosses over — an undersized filter saturates (see the
 * ablation bench) — so we pin the behaviour here.
 */
class BloomFpRate
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(BloomFpRate, MatchesAnalyticBound)
{
    const auto [bits, hashes, inserts] = GetParam();
    BloomFilter bf(static_cast<std::uint32_t>(bits),
                   static_cast<std::uint32_t>(hashes));
    Rng rng(7);
    std::unordered_set<std::uint64_t> members;
    for (int i = 0; i < inserts; ++i) {
        const auto addr = rng.next() & ~7ull;
        bf.insert(addr);
        members.insert(addr);
    }
    int fp = 0;
    const int probes = 20000;
    for (int i = 0; i < probes; ++i) {
        const auto addr = rng.next() & ~7ull;
        if (!members.count(addr) && bf.mayContain(addr))
            ++fp;
    }
    const double k = hashes;
    const double expected =
        std::pow(1.0 - std::exp(-k * inserts / double(bits)), k);
    const double measured = fp / double(probes);
    EXPECT_LE(measured, expected * 2.0 + 0.003)
        << "bits=" << bits << " k=" << hashes
        << " n=" << inserts;
}

INSTANTIATE_TEST_SUITE_P(
    Sizings, BloomFpRate,
    ::testing::Values(std::tuple{1024, 2, 64},
                      std::tuple{1024, 2, 600},
                      std::tuple{8192, 4, 600},
                      std::tuple{32768, 4, 600},
                      std::tuple{32768, 4, 2500}));

TEST(Bloom, InsertionCountTracked)
{
    BloomFilter bf(1024, 2);
    bf.insert(1 * 8);
    bf.insert(2 * 8);
    EXPECT_EQ(bf.insertions(), 2u);
}
