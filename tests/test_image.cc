/**
 * @file
 * Tests for the loaded image's decode machinery: slot lookup,
 * fall-through fast path, PLT flags, and post-dlclose behaviour.
 */

#include <gtest/gtest.h>

#include "elf/builder.hh"
#include "linker/loader.hh"

using namespace dlsim;
using namespace dlsim::linker;

namespace
{

std::unique_ptr<Image>
makeImage(Loader &loader)
{
    elf::ModuleBuilder app("app");
    app.setDataSize(4096);
    auto &f = app.function("f");
    f.nop();
    f.movImm(1, 5);
    f.callExternal("g");
    f.ret();

    elf::ModuleBuilder lib("lib");
    auto &g = lib.function("g");
    g.ret();

    return loader.load(app.build(), {lib.build()});
}

} // namespace

TEST(Image, DecodeAtFunctionStart)
{
    Loader loader;
    auto image = makeImage(loader);
    const Addr f = image->symbolAddress("f");
    const Slot *slot = image->decode(f);
    ASSERT_NE(slot, nullptr);
    EXPECT_EQ(slot->va, f);
    EXPECT_EQ(slot->inst.op, isa::Opcode::Nop);
    EXPECT_EQ(slot->flags, FlagNone);
    EXPECT_EQ(slot->moduleId, 0);
}

TEST(Image, DecodeMidInstructionFails)
{
    Loader loader;
    auto image = makeImage(loader);
    const Addr f = image->symbolAddress("f");
    // nop is 1 byte; f+1 starts the mov, but f+2 is mid-mov.
    EXPECT_NE(image->decode(f + 1), nullptr);
    EXPECT_EQ(image->decode(f + 2), nullptr);
}

TEST(Image, NextSlotFollowsFallThrough)
{
    Loader loader;
    auto image = makeImage(loader);
    const Slot *slot = image->decode(image->symbolAddress("f"));
    const Slot *next = image->nextSlot(slot);
    ASSERT_NE(next, nullptr);
    EXPECT_EQ(next->va, slot->va + slot->inst.size);
    EXPECT_EQ(next->inst.op, isa::Opcode::MovImm);
}

TEST(Image, PltSlotsFlagged)
{
    Loader loader;
    auto image = makeImage(loader);
    const auto &exe = image->moduleAt(0);
    const Slot *tramp = image->decode(exe.pltEntryVas[0]);
    ASSERT_NE(tramp, nullptr);
    EXPECT_TRUE(tramp->flags & FlagPlt);
    EXPECT_TRUE(tramp->flags & FlagPltJmp);
    const Slot *push = image->nextSlot(tramp);
    ASSERT_NE(push, nullptr);
    EXPECT_TRUE(push->flags & FlagPlt);
    EXPECT_FALSE(push->flags & FlagPltJmp);
}

TEST(Image, ModuleLookup)
{
    Loader loader;
    auto image = makeImage(loader);
    EXPECT_EQ(image->findModule("app"), 0u);
    EXPECT_EQ(image->findModule("lib"), 1u);
    EXPECT_EQ(image->findModule("nope"), SIZE_MAX);
}

TEST(Image, DlcloseRemovesSlotsFromDecode)
{
    Loader loader;
    auto image = makeImage(loader);
    const Addr g = image->symbolAddress("g");
    EXPECT_NE(image->decode(g), nullptr);
    loader.dlclose(*image, "lib");
    EXPECT_EQ(image->decode(g), nullptr);
    EXPECT_EQ(image->findModule("lib"), SIZE_MAX);
    // The app still decodes.
    EXPECT_NE(image->decode(image->symbolAddress("f")), nullptr);
}

TEST(Image, TotalTrampolinesExcludesUnloaded)
{
    Loader loader;
    auto image = makeImage(loader);
    // app imports g (1), lib imports nothing.
    EXPECT_EQ(image->totalTrampolines(), 1u);
}
