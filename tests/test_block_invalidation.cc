/**
 * @file
 * Regression tests for the basic-block translation cache's
 * invalidation contract: every path that changes decoded code —
 * a software patcher write, a dlclose+reload landing at the same
 * virtual addresses, a snapshot restore — must flush the cache, and
 * a same-value GOT rewrite (which changes no code) must not. Each
 * mutation lands in the middle of code whose blocks are already
 * cached and hot, and every run executes under the LockstepChecker
 * oracle, so a stale block being dispatched is caught as an
 * architectural divergence at the first wrong retire — the test
 * does not rely on the mutation happening to change a return value.
 */

#include <gtest/gtest.h>

#include "check/lockstep.hh"
#include "linker/patcher.hh"
#include "sim_fixture.hh"
#include "workload/engine.hh"

using namespace dlsim;
using namespace dlsim::workload;
using namespace dlsim::check;

namespace
{

WorkloadParams
smallWorkload(std::uint64_t seed)
{
    WorkloadParams p;
    p.name = "blockinv";
    p.seed = seed;
    p.numLibs = 3;
    p.funcsPerLib = 10;
    p.requests = {{"A", 0.6, 1, 3}, {"B", 0.4, 1, 2}};
    p.stepsPerRequest = 12;
    p.calledImports = 16;
    return p;
}

MachineConfig
blockMachine()
{
    MachineConfig mc;
    mc.enhanced = true;
    mc.core.blockDispatch = true;
    return mc;
}

/** Run `n` lockstep-checked requests (divergence throws). */
void
runChecked(Workbench &wb, int n)
{
    for (int i = 0; i < n; ++i)
        wb.runRequest();
}

} // namespace

TEST(BlockInvalidation, PatcherWriteMidRequestFlushesBlocks)
{
    auto mc = blockMachine();
    mc.nearLibraries = true; // call sites within rel32 reach
    mc.collectCallSiteTrace = true;
    Workbench wb(smallWorkload(11), mc);
    LockstepChecker checker(wb.core());
    wb.core().setRetireObserver(&checker);

    // Warm: resolve imports, collect the call-site trace, and let
    // the dispatcher cache blocks spanning the call sites.
    runChecked(wb, 40);
    ASSERT_GT(wb.image().liveBlocks(), 0u);
    ASSERT_FALSE(wb.core().callSiteTrace().empty());

    const auto flushes0 = wb.image().blockCacheFlushes();
    const auto gen0 = wb.image().blockGeneration();

    // Pause mid-request, with the core stopped inside hot cached
    // blocks, and patch every profiled call site from
    // `call trampoline` to `call function`.
    wb.beginRequest();
    bool done = wb.stepRequest(40);
    linker::Patcher patcher;
    const auto ps =
        patcher.apply(wb.image(), wb.core().callSiteTrace());
    EXPECT_GT(ps.sitesPatched, 0u);

    // The patched sites sit mid-block in cached blocks; if any of
    // those blocks survived, the core would retire the stale
    // `call trampoline` while the oracle decodes the patched slot
    // — an immediate divergence.
    EXPECT_GT(wb.image().blockCacheFlushes(), flushes0);
    EXPECT_GT(wb.image().blockGeneration(), gen0);

    while (!done)
        done = wb.stepRequest(100000);
    runChecked(wb, 40);
    EXPECT_GT(checker.stats().checkedRetires, 1000u);
    wb.core().setRetireObserver(nullptr);
}

TEST(BlockInvalidation, SameValueGotRewriteNeedsNoFlush)
{
    Workbench wb(smallWorkload(12), blockMachine());
    LockstepChecker checker(wb.core());
    wb.core().setRetireObserver(&checker);

    runChecked(wb, 30);
    ASSERT_GT(wb.image().liveBlocks(), 0u);

    const auto flushes0 = wb.image().blockCacheFlushes();
    const auto gen0 = wb.image().blockGeneration();

    // Mid-request, rewrite every GOT slot with its current value.
    // The block cache holds decoded code only — no GOT values — so
    // this must not flush anything (the ABTB-side conservative
    // coherence handling is exercised separately).
    wb.beginRequest();
    bool done = wb.stepRequest(40);
    auto &as = wb.image().addressSpace();
    for (const auto &m : wb.image().modules()) {
        for (const isa::Addr slot : m.gotSlotAddrs) {
            as.poke64(slot, as.peek64(slot));
            wb.core().onExternalGotWrite(slot);
            checker.onExternalWrite(slot);
        }
    }
    EXPECT_EQ(wb.image().blockCacheFlushes(), flushes0);
    EXPECT_EQ(wb.image().blockGeneration(), gen0);

    while (!done)
        done = wb.stepRequest(100000);
    runChecked(wb, 30);
    EXPECT_EQ(wb.image().blockCacheFlushes(), flushes0);
    EXPECT_GT(checker.stats().externalWrites, 0u);
    wb.core().setRetireObserver(nullptr);
}

TEST(BlockInvalidation, DlcloseReloadAtSameVaFlushesBlocks)
{
    // app calls libfn repeatedly; v1 returns 1, v2 returns 2. The
    // loader reuses the dlclose'd region, so v2's different code
    // lands at exactly v1's virtual addresses — the same-VA reload
    // hazard: a stale cached block at those addresses would retire
    // v1's instructions against v2's slots.
    elf::ModuleBuilder app("app");
    app.setDataSize(4096);
    auto &f = app.function("f");
    f.callExternal("libfn");
    f.callExternal("libfn");
    f.ret();

    auto lib = [](const std::string &name, std::int64_t value) {
        elf::ModuleBuilder mb(name);
        auto &fn = mb.function("libfn");
        fn.movImm(isa::RegRet, value);
        fn.ret();
        return mb.build();
    };

    cpu::CoreParams params = test::enhancedParams();
    params.blockDispatch = true;
    test::Sim sim(app.build(), {lib("libv1", 1)}, params);
    LockstepChecker checker(*sim.core);
    sim.core->setRetireObserver(&checker);

    EXPECT_EQ(sim.call("f").returnValue, 1u);
    EXPECT_EQ(sim.call("f").returnValue, 1u); // blocks now hot
    ASSERT_GT(sim.image->liveBlocks(), 0u);
    const isa::Addr v1_fn = sim.image->symbolAddress("libfn");
    const auto flushes0 = sim.image->blockCacheFlushes();

    sim.loader.dlclose(*sim.image, "libv1", [&](isa::Addr a) {
        sim.core->onExternalGotWrite(a);
        checker.onExternalWrite(a);
    });
    sim.loader.dlopen(*sim.image, lib("libv2", 2));
    // The reload really did land at the same addresses.
    ASSERT_EQ(sim.image->symbolAddress("libfn"), v1_fn);
    EXPECT_GT(sim.image->blockCacheFlushes(), flushes0);

    // The fork-based reference cannot see pages mapped after it was
    // forked; a dlopen between calls is a quiescent point, so
    // resyncing is the checker's documented contract. The block
    // cache is shared, not forked — a stale block would still
    // diverge on its first retire.
    checker.resync();
    EXPECT_EQ(sim.call("f").returnValue, 2u);
    EXPECT_EQ(sim.call("f").returnValue, 2u);
    EXPECT_GT(sim.image->liveBlocks(), 0u);
    sim.core->setRetireObserver(nullptr);
}

TEST(BlockInvalidation, SnapshotRestoreDropsBlocksOfPatchedCode)
{
    auto mc = blockMachine();
    mc.nearLibraries = true;
    mc.collectCallSiteTrace = true;
    const auto wl = smallWorkload(13);
    Workbench wb(wl, mc);
    LockstepChecker checker(wb.core());
    wb.core().setRetireObserver(&checker);

    // Warm, then checkpoint the unpatched machine.
    runChecked(wb, 30);
    const auto bytes = snapshotWorkbench(wb);

    // Diverge from the checkpoint: patch every profiled call site
    // and keep running, so the cache fills with blocks of the
    // *patched* code.
    linker::Patcher patcher;
    const auto ps =
        patcher.apply(wb.image(), wb.core().callSiteTrace());
    ASSERT_GT(ps.sitesPatched, 0u);
    runChecked(wb, 30);
    ASSERT_GT(wb.image().liveBlocks(), 0u);
    const auto flushes0 = wb.image().blockCacheFlushes();

    // Restore the unpatched snapshot into the same workbench. The
    // cached blocks still describe patched code; serving any of
    // them after the restore would retire a direct call where the
    // restored slots hold `call trampoline` — the oracle, resynced
    // per its snapshot contract, would diverge instantly.
    restoreWorkbench(wb, bytes.data(), bytes.size());
    EXPECT_GT(wb.image().blockCacheFlushes(), flushes0);
    EXPECT_EQ(wb.image().liveBlocks(), 0u);
    checker.resync();

    runChecked(wb, 30);
    EXPECT_GT(wb.image().liveBlocks(), 0u);
    EXPECT_GT(checker.stats().checkedRetires, 1000u);
    wb.core().setRetireObserver(nullptr);
}
