/**
 * @file
 * Tests for ELF-style symbol versioning and dlmopen namespace
 * isolation — the dynamic-linking substrate features that let one
 * process carry several ABI revisions or copies of a library.
 */

#include <gtest/gtest.h>

#include "sim_fixture.hh"

using namespace dlsim;
using namespace dlsim::isa;
using dlsim::test::Sim;

namespace
{

/** libv: one symbol, two versioned revisions, v2 the default. */
elf::Module
versionedLib()
{
    elf::ModuleBuilder mb("libv");
    auto &v1 = mb.function("compat_impl");
    v1.movImm(RegRet, 100);
    v1.ret();
    auto &v2 = mb.function("current_impl");
    v2.movImm(RegRet, 200);
    v2.ret();
    mb.exportVersion("api", "V1", "compat_impl");
    mb.exportVersion("api", "V2", "current_impl",
                     /*is_default=*/true);
    return mb.build();
}

elf::Module
exeCalling(const std::string &sym)
{
    elf::ModuleBuilder mb("app");
    mb.setDataSize(4096);
    auto &f = mb.function("f");
    f.callExternal(sym);
    f.ret();
    return mb.build();
}

} // namespace

TEST(Versioning, UnversionedImportBindsToDefault)
{
    Sim sim(exeCalling("api"), {versionedLib()});
    EXPECT_EQ(sim.call("f").returnValue, 200u);
}

TEST(Versioning, ExplicitVersionedImports)
{
    // An old binary pinned to V1 keeps the compat implementation.
    Sim old_app(exeCalling("api@V1"), {versionedLib()});
    EXPECT_EQ(old_app.call("f").returnValue, 100u);

    Sim new_app(exeCalling("api@V2"), {versionedLib()});
    EXPECT_EQ(new_app.call("f").returnValue, 200u);
}

TEST(Versioning, BothVersionsUsableFromOneBinary)
{
    elf::ModuleBuilder mb("app");
    mb.setDataSize(4096);
    auto &f = mb.function("f");
    f.callExternal("api@V1");
    f.push(RegRet);
    f.callExternal("api@V2");
    f.pop(5);
    f.alu(AluKind::Add, RegRet, RegRet, 5);
    f.ret();
    Sim sim(mb.build(), {versionedLib()});
    EXPECT_EQ(sim.call("f").returnValue, 300u);
    // Two distinct imports -> two PLT entries, two resolutions.
    EXPECT_EQ(sim.image->totalTrampolines(), 2u);
    EXPECT_EQ(sim.linker->resolutionCount(), 2u);
}

TEST(Versioning, MissingImplementationThrowsAtBuild)
{
    elf::ModuleBuilder mb("lib");
    mb.exportVersion("api", "V1", "ghost");
    EXPECT_THROW(mb.build(), std::invalid_argument);
}

TEST(Versioning, DefaultAliasVisibleInSymbolTable)
{
    Sim sim(exeCalling("api"), {versionedLib()});
    const auto by_name = sim.image->symbolAddress("api");
    const auto by_version = sim.image->symbolAddress("api@V2");
    EXPECT_EQ(by_name, by_version);
    EXPECT_NE(by_name, sim.image->symbolAddress("api@V1"));
}

namespace
{

elf::Module
namedLib(const std::string &module, std::int64_t value)
{
    elf::ModuleBuilder mb(module);
    auto &f = mb.function("plugin_entry");
    f.movImm(RegRet, value);
    f.ret();
    return mb.build();
}

/** A plugin that calls its own namespace's helper. */
elf::Module
pluginWithDep(std::int64_t base)
{
    elf::ModuleBuilder mb("plugin");
    auto &f = mb.function("plugin_entry");
    f.callExternal("helper");
    f.aluImm(AluKind::Add, RegRet, RegRet, base);
    f.ret();
    return mb.build();
}

elf::Module
helperLib(std::int64_t value)
{
    elf::ModuleBuilder mb("helper_lib");
    auto &f = mb.function("helper");
    f.movImm(RegRet, value);
    f.ret();
    return mb.build();
}

} // namespace

TEST(Namespaces, DlmopenIsolatesSymbols)
{
    Sim sim(exeCalling("api"), {versionedLib()});
    const auto ns =
        sim.loader.dlmopen(*sim.image, {namedLib("iso", 7)});

    // Visible inside its namespace, invisible in the default one.
    EXPECT_EQ(sim.image->symbolAddress("plugin_entry", ns),
              sim.image->symbolAddress("plugin_entry", ns));
    EXPECT_THROW(sim.image->symbolAddress("plugin_entry"),
                 std::out_of_range);
    // And the default namespace's symbols are invisible inside.
    EXPECT_THROW(sim.image->symbolAddress("api", ns),
                 std::out_of_range);
}

TEST(Namespaces, TwoCopiesOfOneLibraryCoexist)
{
    Sim sim(exeCalling("api"), {versionedLib()});
    const auto ns1 =
        sim.loader.dlmopen(*sim.image, {namedLib("copyA", 111)});
    const auto ns2 =
        sim.loader.dlmopen(*sim.image, {namedLib("copyB", 222)});
    ASSERT_NE(ns1, ns2);

    const auto r1 = sim.core->callFunction(
        sim.image->symbolAddress("plugin_entry", ns1));
    const auto r2 = sim.core->callFunction(
        sim.image->symbolAddress("plugin_entry", ns2));
    EXPECT_EQ(r1.returnValue, 111u);
    EXPECT_EQ(r2.returnValue, 222u);
}

TEST(Namespaces, ImportsResolveWithinOwnNamespace)
{
    // Both the default namespace and the dlmopen group define
    // `helper`; the plugin must bind to its group's copy.
    Sim sim(exeCalling("api"), {versionedLib(), helperLib(5)});
    const auto ns = sim.loader.dlmopen(
        *sim.image, {pluginWithDep(1000), helperLib(50)});

    const auto r = sim.core->callFunction(
        sim.image->symbolAddress("plugin_entry", ns));
    EXPECT_EQ(r.returnValue, 1050u); // 50 (its helper) + 1000
}

TEST(Namespaces, MissingDepFailsAtFirstCallNotLoad)
{
    // Lazy binding: a namespace lacking a dependency loads fine
    // but faults on first use, with the namespace identified.
    Sim sim(exeCalling("api"), {versionedLib(), helperLib(5)});
    const auto ns =
        sim.loader.dlmopen(*sim.image, {pluginWithDep(0)});
    EXPECT_THROW(sim.core->callFunction(sim.image->symbolAddress(
                     "plugin_entry", ns)),
                 std::out_of_range);
}

TEST(Namespaces, SkippingWorksInsideNamespaces)
{
    cpu::CoreParams params;
    params.skipUnitEnabled = true;
    Sim sim(exeCalling("api"), {versionedLib(), helperLib(5)},
            params);
    const auto ns = sim.loader.dlmopen(
        *sim.image, {pluginWithDep(1000), helperLib(50)});

    const auto entry =
        sim.image->symbolAddress("plugin_entry", ns);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(sim.core->callFunction(entry).returnValue,
                  1050u);
    EXPECT_GT(sim.core->counters().skippedTrampolines, 0u);
}
