/**
 * @file
 * Unit tests for the TLB model: page-granular hits, LRU, flushes,
 * and ASID behaviour (the retention option §3.3 of the paper
 * parallels for the ABTB).
 */

#include <gtest/gtest.h>

#include "mem/tlb.hh"

using namespace dlsim::mem;

TEST(Tlb, PageGranularity)
{
    Tlb t(TlbParams{"t", 16, 4});
    EXPECT_FALSE(t.access(0x1000, 0));
    EXPECT_TRUE(t.access(0x1ff8, 0)); // same 4KB page
    EXPECT_FALSE(t.access(0x2000, 0));
}

TEST(Tlb, FlushAll)
{
    Tlb t(TlbParams{"t", 16, 4});
    t.access(0x1000, 0);
    t.flushAll();
    EXPECT_FALSE(t.access(0x1000, 0));
}

TEST(Tlb, FlushAsidSelective)
{
    Tlb t(TlbParams{"t", 16, 4});
    t.access(0x1000, 1);
    t.access(0x1000, 2);
    t.flushAsid(1);
    EXPECT_FALSE(t.access(0x1000, 1));
    EXPECT_TRUE(t.access(0x1000, 2));
}

TEST(Tlb, AsidTaggedEntries)
{
    Tlb t(TlbParams{"t", 16, 4});
    t.access(0x1000, 1);
    EXPECT_FALSE(t.access(0x1000, 2));
}

TEST(Tlb, CapacityEviction)
{
    Tlb t(TlbParams{"t", 4, 4}); // one set, 4 entries
    for (Addr p = 0; p < 5; ++p)
        t.access(p << PageShift, 0);
    // The first page was LRU-evicted by the fifth.
    EXPECT_FALSE(t.access(0, 0));
}

TEST(Tlb, StatsAccumulateAndClear)
{
    Tlb t(TlbParams{"t", 16, 4});
    t.access(0x1000, 0);
    t.access(0x1000, 0);
    EXPECT_EQ(t.misses(), 1u);
    EXPECT_EQ(t.hits(), 1u);
    t.clearStats();
    EXPECT_EQ(t.misses(), 0u);
}

class TlbGeometry
    : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(TlbGeometry, WorkingSetWithinCapacityStaysWarm)
{
    const auto [entries, assoc] = GetParam();
    Tlb t(TlbParams{"t", static_cast<std::uint32_t>(entries),
                    static_cast<std::uint32_t>(assoc)});
    const int pages = entries / 2;
    for (int p = 0; p < pages; ++p)
        t.access(static_cast<Addr>(p) << PageShift, 0);
    for (int p = 0; p < pages; ++p)
        EXPECT_TRUE(
            t.access(static_cast<Addr>(p) << PageShift, 0));
}

INSTANTIATE_TEST_SUITE_P(Shapes, TlbGeometry,
                         ::testing::Values(std::pair{16, 4},
                                           std::pair{64, 4},
                                           std::pair{64, 8},
                                           std::pair{128, 4}));
