/**
 * @file
 * Cross-thread-count determinism: the same measurement grid run
 * through sim::JobRunner with 1 and with 4 workers must produce
 * byte-identical metric documents and rendered tables. This is the
 * contract every bench binary's --jobs flag relies on, and the
 * test the TSan smoke build runs (ctest -L tsan-smoke).
 */

#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common.hh"

using namespace dlsim;
using namespace dlsim::bench;

namespace
{

/** A small but non-trivial grid: 2 workloads x 2 machines. */
std::vector<std::function<ArmResult()>>
makeGrid()
{
    std::vector<std::function<ArmResult()>> work;
    for (const char *name : {"apache", "memcached"}) {
        for (const bool enhanced : {false, true}) {
            work.push_back([name, enhanced] {
                return runArm(workload::profileByName(name),
                              enhanced ? enhancedMachine()
                                       : baseMachine(),
                              20, 30);
            });
        }
    }
    return work;
}

/** Serialise the grid's results exactly as a bench would. */
std::string
renderJson(const std::vector<ArmResult> &arms)
{
    stats::MetricsDocument doc("test_determinism");
    const char *names[] = {"apache.base", "apache.enhanced",
                           "memcached.base",
                           "memcached.enhanced"};
    for (std::size_t i = 0; i < arms.size(); ++i) {
        auto &run = doc.addRun(names[i]);
        run.registry = arms[i].registry;
    }
    return doc.toJson();
}

/** Render a counters table exactly as a bench would. */
std::string
renderTable(const std::vector<ArmResult> &arms)
{
    stats::TablePrinter t({"Arm", "Cycles", "Insts",
                           "I$ misses", "Skips"});
    for (std::size_t i = 0; i < arms.size(); ++i) {
        const auto &c = arms[i].counters;
        t.addRow({std::to_string(i),
                  stats::TablePrinter::num(c.cycles),
                  stats::TablePrinter::num(c.instructions),
                  stats::TablePrinter::num(c.l1iMisses),
                  stats::TablePrinter::num(
                      c.skippedTrampolines)});
    }
    return t.render();
}

} // namespace

TEST(Determinism, SerialAndParallelRunsAreByteIdentical)
{
    auto serial_arms = sim::JobRunner(1).run(makeGrid());
    auto parallel_arms = sim::JobRunner(4).run(makeGrid());
    ASSERT_EQ(serial_arms.size(), parallel_arms.size());

    EXPECT_EQ(renderJson(serial_arms),
              renderJson(parallel_arms));
    EXPECT_EQ(renderTable(serial_arms),
              renderTable(parallel_arms));
}

TEST(Determinism, RepeatedParallelRunsAreByteIdentical)
{
    auto first = sim::JobRunner(4).run(makeGrid());
    auto second = sim::JobRunner(4).run(makeGrid());
    EXPECT_EQ(renderJson(first), renderJson(second));
}

TEST(Determinism, LatencySamplesMatchAcrossThreadCounts)
{
    auto serial_arms = sim::JobRunner(1).run(makeGrid());
    auto parallel_arms = sim::JobRunner(4).run(makeGrid());
    ASSERT_EQ(serial_arms.size(), parallel_arms.size());
    for (std::size_t i = 0; i < serial_arms.size(); ++i) {
        const auto &s = serial_arms[i].latency;
        const auto &p = parallel_arms[i].latency;
        ASSERT_EQ(s.size(), p.size());
        for (std::size_t k = 0; k < s.size(); ++k)
            EXPECT_EQ(s[k].samples(), p[k].samples())
                << "arm " << i << " kind " << k;
    }
}
