/**
 * @file
 * Unit tests for the loader: address-space layout (conventional,
 * ASLR, near-library), PLT/GOT construction, relocation, lazy and
 * eager binding, symbol interposition, and dlopen/dlclose.
 */

#include <gtest/gtest.h>

#include "elf/builder.hh"
#include "linker/loader.hh"

using namespace dlsim;
using namespace dlsim::linker;

namespace
{

elf::Module
makeExe()
{
    elf::ModuleBuilder mb("app");
    mb.setDataSize(4096);
    auto &main = mb.function("main");
    main.callExternal("libfn");
    main.halt();
    return mb.build();
}

elf::Module
makeLib(const std::string &name, const std::string &fn)
{
    elf::ModuleBuilder mb(name);
    mb.setDataSize(4096);
    auto &f = mb.function(fn);
    f.movImm(isa::RegRet, 42);
    f.ret();
    return mb.build();
}

} // namespace

TEST(Loader, ConventionalLayoutSeparatesExeAndLibs)
{
    Loader loader;
    auto image = loader.load(makeExe(), {makeLib("lib", "libfn")});

    const auto &exe = image->moduleAt(0);
    const auto &lib = image->moduleAt(1);
    EXPECT_EQ(exe.textBase, 0x400000u);
    // Libraries load beyond rel32 reach of the executable (paper
    // §2.3) — this is what necessitates the PLT.
    EXPECT_GT(lib.textBase - exe.textBase,
              static_cast<std::uint64_t>(isa::Rel32Max));
}

TEST(Loader, RegionsMappedWithExpectedPermissions)
{
    Loader loader;
    auto image = loader.load(makeExe(), {makeLib("lib", "libfn")});
    const auto &as = image->addressSpace();

    const auto &lib = image->moduleAt(1);
    const auto *text = as.findRegion(lib.textBase);
    ASSERT_NE(text, nullptr);
    EXPECT_EQ(text->perms, mem::PermRead | mem::PermExec);
    EXPECT_EQ(text->kind, mem::RegionKind::Text);

    const auto *got = as.findRegion(lib.gotBase);
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(got->kind, mem::RegionKind::Got);
    EXPECT_EQ(got->perms, mem::PermRead | mem::PermWrite);

    const auto *stack = as.findRegion(loader.stackTop() - 8);
    ASSERT_NE(stack, nullptr);
    EXPECT_EQ(stack->kind, mem::RegionKind::Stack);
}

TEST(Loader, PltGeometry)
{
    Loader loader;
    auto image = loader.load(makeExe(), {makeLib("lib", "libfn")});
    const auto &exe = image->moduleAt(0);

    ASSERT_EQ(exe.pltEntryVas.size(), 1u);
    EXPECT_EQ(exe.pltEntryVas[0], exe.pltBase + 16);
    EXPECT_EQ(exe.gotSlotAddrs[0], exe.gotBase + 16);

    // The trampoline decodes to jmp *[got slot].
    const Slot *tramp = image->decode(exe.pltEntryVas[0]);
    ASSERT_NE(tramp, nullptr);
    EXPECT_EQ(tramp->inst.op, isa::Opcode::JmpIndMem);
    EXPECT_TRUE(tramp->flags & FlagPltJmp);
    EXPECT_EQ(static_cast<std::uint64_t>(tramp->inst.imm),
              exe.gotSlotAddrs[0]);

    // Followed by push <reloc index> and jmp PLT0.
    const Slot *push = image->decode(exe.pltEntryVas[0] + 6);
    ASSERT_NE(push, nullptr);
    EXPECT_EQ(push->inst.op, isa::Opcode::PushImm);
    EXPECT_EQ(push->inst.imm, 0);
    const Slot *back = image->decode(exe.pltEntryVas[0] + 11);
    ASSERT_NE(back, nullptr);
    EXPECT_EQ(back->inst.op, isa::Opcode::JmpRel);
}

TEST(Loader, LazyBindingInitialGotValues)
{
    Loader loader(LoaderOptions{.lazyBinding = true});
    auto image = loader.load(makeExe(), {makeLib("lib", "libfn")});
    const auto &exe = image->moduleAt(0);
    // GOT[1] holds the resolver address; the import slot initially
    // points back into its own PLT entry (lazy).
    EXPECT_EQ(image->addressSpace().peek64(exe.gotBase + 8),
              ResolverVa);
    EXPECT_EQ(image->addressSpace().peek64(exe.gotSlotAddrs[0]),
              exe.lazyGotValue(0));
}

TEST(Loader, EagerBindingResolvesAtLoad)
{
    LoaderOptions opts;
    opts.lazyBinding = false;
    Loader loader(opts);
    auto image = loader.load(makeExe(), {makeLib("lib", "libfn")});
    const auto &exe = image->moduleAt(0);
    EXPECT_EQ(image->addressSpace().peek64(exe.gotSlotAddrs[0]),
              image->symbolAddress("libfn"));
}

TEST(Loader, CallSiteRelocatedToOwnPlt)
{
    Loader loader;
    auto image = loader.load(makeExe(), {makeLib("lib", "libfn")});
    const auto &exe = image->moduleAt(0);
    const Addr main_va = exe.funcAddrs[0];
    const Slot *call = image->decode(main_va);
    ASSERT_NE(call, nullptr);
    ASSERT_EQ(call->inst.op, isa::Opcode::CallRel);
    const Addr target = main_va + call->inst.size +
                        static_cast<Addr>(call->inst.imm);
    EXPECT_EQ(target, exe.pltEntryVas[0]);
}

TEST(Loader, SymbolInterpositionFirstModuleWins)
{
    // ELF resolution order: the first loaded module providing a
    // symbol wins (LD_PRELOAD-style interposition).
    Loader loader;
    auto image = loader.load(
        makeExe(),
        {makeLib("preload", "libfn"), makeLib("lib", "libfn")});
    const auto addr = image->symbolAddress("libfn");
    EXPECT_EQ(addr, image->moduleAt(1).funcAddrs[0]);
}

TEST(Loader, UndefinedSymbolThrows)
{
    Loader loader;
    auto image = loader.load(makeExe(), {makeLib("lib", "libfn")});
    EXPECT_THROW(image->symbolAddress("no_such"),
                 std::out_of_range);
}

TEST(Loader, AslrIsSeedDeterministicAndSeedSensitive)
{
    LoaderOptions a;
    a.aslr = true;
    a.aslrSeed = 1;
    LoaderOptions b = a;
    LoaderOptions c = a;
    c.aslrSeed = 2;

    auto i1 = Loader(a).load(makeExe(), {makeLib("lib", "libfn")});
    auto i2 = Loader(b).load(makeExe(), {makeLib("lib", "libfn")});
    auto i3 = Loader(c).load(makeExe(), {makeLib("lib", "libfn")});

    EXPECT_EQ(i1->moduleAt(1).textBase, i2->moduleAt(1).textBase);
    EXPECT_NE(i1->moduleAt(1).textBase, i3->moduleAt(1).textBase);
}

TEST(Loader, NearLibrariesWithinRel32)
{
    LoaderOptions opts;
    opts.nearLibraries = true;
    Loader loader(opts);
    auto image = loader.load(makeExe(), {makeLib("lib", "libfn")});
    const auto &exe = image->moduleAt(0);
    const auto &lib = image->moduleAt(1);
    EXPECT_LT(lib.textBase - exe.textBase,
              static_cast<std::uint64_t>(isa::Rel32Max));
}

TEST(Loader, DlopenAddsResolvableModule)
{
    Loader loader;
    auto image = loader.load(makeExe(), {makeLib("lib", "libfn")});
    loader.dlopen(*image, makeLib("plugin", "plugfn"));
    EXPECT_NE(image->findModule("plugin"), SIZE_MAX);
    EXPECT_NE(image->symbolAddress("plugfn"), 0u);
}

TEST(Loader, DlcloseRelazifiesImportersAndNotifies)
{
    Loader loader;
    auto image = loader.load(makeExe(), {makeLib("lib", "libfn")});
    const auto &exe = image->moduleAt(0);

    // Simulate a completed resolution.
    image->addressSpace().poke64(exe.gotSlotAddrs[0],
                                 image->symbolAddress("libfn"));

    std::vector<Addr> notified;
    loader.dlclose(*image, "lib",
                   [&](Addr a) { notified.push_back(a); });

    EXPECT_EQ(image->findModule("lib"), SIZE_MAX);
    // The importer's GOT slot was reset to its lazy value...
    EXPECT_EQ(image->addressSpace().peek64(exe.gotSlotAddrs[0]),
              exe.lazyGotValue(0));
    // ...and the write was reported (coherence traffic the ABTB
    // must observe).
    ASSERT_EQ(notified.size(), 1u);
    EXPECT_EQ(notified[0], exe.gotSlotAddrs[0]);
}

TEST(Loader, DlcloseUnknownModuleThrows)
{
    Loader loader;
    auto image = loader.load(makeExe(), {makeLib("lib", "libfn")});
    EXPECT_THROW(loader.dlclose(*image, "ghost"),
                 std::invalid_argument);
}

TEST(Loader, IfuncSelectionByHwCapLevel)
{
    elf::ModuleBuilder mb("lib");
    mb.function("v0").ret();
    mb.function("v1").ret();
    mb.exportIfunc("sym", {"v0", "v1"});

    LoaderOptions opts;
    opts.hwCapLevel = 1;
    Loader loader(opts);
    auto image = loader.load(makeExe(), {makeLib("l0", "libfn"),
                                         mb.build()});
    const auto &lib = *std::find_if(
        image->modules().begin(), image->modules().end(),
        [](const auto &m) { return m.module.name() == "lib"; });
    EXPECT_EQ(image->symbolAddress("sym"), lib.funcAddrs[1]);
}

TEST(Loader, TrampolineSymbolNames)
{
    Loader loader;
    auto image = loader.load(makeExe(), {makeLib("lib", "libfn")});
    const auto &exe = image->moduleAt(0);
    EXPECT_EQ(image->trampolineSymbol(exe.pltEntryVas[0]),
              "libfn@app");
    EXPECT_EQ(image->trampolineSymbol(0x1234), "");
    EXPECT_EQ(image->totalTrampolines(), 1u);
}

TEST(Loader, LayoutDumpMentionsModules)
{
    Loader loader;
    auto image = loader.load(makeExe(), {makeLib("lib", "libfn")});
    const auto dump = image->dumpLayout();
    EXPECT_NE(dump.find("app"), std::string::npos);
    EXPECT_NE(dump.find("lib"), std::string::npos);
}

/**
 * Option-matrix property: every combination of binding mode, ASLR,
 * layout, and PLT style must load and execute correctly.
 */
#include "sim_fixture.hh"

struct LoaderMatrix
{
    bool lazy;
    bool aslr;
    bool near;
    PltStyle style;
};

class LoaderOptionsMatrix
    : public ::testing::TestWithParam<LoaderMatrix>
{
};

TEST_P(LoaderOptionsMatrix, LoadsAndRuns)
{
    const auto m = GetParam();
    LoaderOptions opts;
    opts.lazyBinding = m.lazy;
    opts.aslr = m.aslr;
    opts.aslrSeed = 99;
    opts.nearLibraries = m.near;
    opts.pltStyle = m.style;

    elf::ModuleBuilder app("app");
    app.setDataSize(4096);
    auto &f = app.function("f");
    f.callExternal("libfn");
    f.aluImm(dlsim::isa::AluKind::Add, dlsim::isa::RegRet,
             dlsim::isa::RegRet, 1);
    f.ret();

    elf::ModuleBuilder lib("lib");
    auto &g = lib.function("libfn");
    g.movImm(dlsim::isa::RegRet, 41);
    g.ret();

    dlsim::test::Sim sim(app.build(), {lib.build()}, {}, opts);
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(sim.call("f").returnValue, 42u);
    EXPECT_EQ(sim.linker->resolutionCount(), m.lazy ? 1u : 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, LoaderOptionsMatrix,
    ::testing::Values(
        LoaderMatrix{true, false, false, PltStyle::X86},
        LoaderMatrix{false, false, false, PltStyle::X86},
        LoaderMatrix{true, true, false, PltStyle::X86},
        LoaderMatrix{true, false, true, PltStyle::X86},
        LoaderMatrix{true, true, true, PltStyle::X86},
        LoaderMatrix{true, false, false, PltStyle::Arm},
        LoaderMatrix{false, false, false, PltStyle::Arm},
        LoaderMatrix{true, true, false, PltStyle::Arm},
        LoaderMatrix{false, true, true, PltStyle::Arm}));
