/**
 * @file
 * Integration tests of the full trampoline-skip mechanism running
 * inside the core: architectural equivalence with the base machine,
 * actual skipping, the startup flush, misprediction parity, unload
 * invalidation, and the §3.4 explicit-invalidation variant.
 */

#include <gtest/gtest.h>

#include "sim_fixture.hh"

using namespace dlsim;
using namespace dlsim::isa;
using dlsim::test::Sim;
using dlsim::test::enhancedParams;

namespace
{

elf::Module
callerExe(int sites = 1)
{
    elf::ModuleBuilder mb("app");
    mb.setDataSize(4096);
    auto &f = mb.function("f");
    for (int i = 0; i < sites; ++i)
        f.callExternal("libfn");
    f.ret();
    return mb.build();
}

elf::Module
addLib(std::int64_t k)
{
    elf::ModuleBuilder mb("lib");
    auto &f = mb.function("libfn");
    f.aluImm(AluKind::Add, RegRet, RegArg0, k);
    f.ret();
    return mb.build();
}

} // namespace

TEST(SkipIntegration, TrampolineActuallySkipped)
{
    Sim sim(callerExe(), {addLib(5)}, enhancedParams());
    sim.call("f", 1); // resolve (flushes ABTB via the GOT store)
    sim.call("f", 1); // executes trampoline, populates ABTB
    sim.call("f", 1); // substitution trains the BTB

    sim.core->clearStats();
    const auto r = sim.call("f", 2);
    EXPECT_EQ(r.returnValue, 7u);
    const auto c = sim.core->counters();
    // Steady state: no PLT instruction is fetched or retired.
    EXPECT_EQ(c.trampolineInsts, 0u);
    EXPECT_EQ(c.skippedTrampolines, 1u);
}

TEST(SkipIntegration, ArchitecturalEquivalenceWithBase)
{
    Sim base(callerExe(3), {addLib(5)});
    Sim enh(callerExe(3), {addLib(5)}, enhancedParams());
    for (std::uint64_t arg = 0; arg < 32; ++arg) {
        EXPECT_EQ(base.call("f", arg).returnValue,
                  enh.call("f", arg).returnValue);
    }
    EXPECT_GT(enh.core->counters().skippedTrampolines, 0u);
}

TEST(SkipIntegration, StartupFlushHappensOncePerSymbol)
{
    // §3.2: "in practice, this happens only once per library call,
    // at the start of a program's execution".
    Sim sim(callerExe(), {addLib(0)}, enhancedParams());
    for (int i = 0; i < 10; ++i)
        sim.call("f", i);
    EXPECT_EQ(sim.core->skipUnit()->stats().storeFlushes, 1u);
}

TEST(SkipIntegration, EnhancedExecutesFewerInstructions)
{
    Sim base(callerExe(4), {addLib(0)});
    Sim enh(callerExe(4), {addLib(0)}, enhancedParams());
    for (int i = 0; i < 4; ++i) {
        base.call("f", i);
        enh.call("f", i);
    }
    base.core->clearStats();
    enh.core->clearStats();
    base.call("f", 9);
    enh.call("f", 9);
    // Four skipped trampoline jumps = four fewer instructions.
    EXPECT_EQ(base.core->counters().instructions,
              enh.core->counters().instructions + 4);
    // And four fewer loads (no GOT reads).
    EXPECT_EQ(base.core->counters().loads,
              enh.core->counters().loads + 4);
}

TEST(SkipIntegration, MispredictionParityWithBase)
{
    // §3.3: "we do not introduce any branch mispredictions that
    // were not present in the base system" — compare totals over
    // the warmup-and-steady window.
    Sim base(callerExe(), {addLib(0)});
    Sim enh(callerExe(), {addLib(0)}, enhancedParams());
    for (int i = 0; i < 16; ++i) {
        base.call("f", i);
        enh.call("f", i);
    }
    EXPECT_LE(enh.core->counters().mispredicts,
              base.core->counters().mispredicts + 1);
}

TEST(SkipIntegration, SteadyStateHasNoMispredicts)
{
    Sim sim(callerExe(), {addLib(0)}, enhancedParams());
    for (int i = 0; i < 8; ++i)
        sim.call("f", i);
    sim.core->clearStats();
    sim.call("f", 1);
    // The call (BTB-trained to the function) and the function's
    // ret (RAS) both predict correctly; only the final return to
    // the harness may mispredict.
    EXPECT_LE(sim.core->counters().mispredicts, 1u);
}

TEST(SkipIntegration, TailJumpBenefitsFromPopulatedAbtb)
{
    // A tail-jump site never populates the ABTB itself, but once a
    // normal call has populated the trampoline's entry, the jump's
    // resolution hits it too and skips.
    elf::ModuleBuilder mb("app");
    mb.setDataSize(4096);
    auto &helper = mb.function("helper");
    helper.jmpExternal("libfn");
    auto &f = mb.function("f");
    f.callExternal("libfn"); // populator
    f.callLocal("helper");   // tail-jump path
    f.aluImm(AluKind::Add, RegRet, RegRet, 1);
    f.ret();

    Sim sim(mb.build(), {addLib(0)}, enhancedParams());
    for (int i = 0; i < 4; ++i)
        sim.call("f", i);
    sim.core->clearStats();
    const auto r = sim.call("f", 10);
    EXPECT_EQ(r.returnValue, 11u);
    // Both the call site and the tail-jump site skip.
    EXPECT_EQ(sim.core->counters().skippedTrampolines, 2u);
    EXPECT_EQ(sim.core->counters().trampolineInsts, 0u);
}

TEST(SkipIntegration, VirtualCallsDoNotPopulateAbtb)
{
    // §2.4.2: register-indirect calls to plain functions must not
    // create ABTB entries.
    elf::ModuleBuilder mb("app");
    mb.setDataSize(4096);
    auto &f = mb.function("f");
    f.movFuncAddr(5, "libfn");
    f.callReg(5);
    f.ret();
    Sim sim(mb.build(), {addLib(0)}, enhancedParams());
    for (int i = 0; i < 4; ++i)
        sim.call("f", i);
    EXPECT_EQ(sim.core->skipUnit()->stats().populations, 0u);
    EXPECT_EQ(sim.core->counters().skippedTrampolines, 0u);
}

TEST(SkipIntegration, DlcloseInvalidatesViaCoherenceHook)
{
    Sim sim(callerExe(), {addLib(5)}, enhancedParams());
    for (int i = 0; i < 4; ++i)
        sim.call("f", i); // populated & skipping

    sim.loader.dlclose(*sim.image, "lib", [&](Addr a) {
        sim.core->onExternalGotWrite(a);
    });
    elf::ModuleBuilder v2("libv2");
    auto &g = v2.function("libfn");
    g.aluImm(AluKind::Add, RegRet, RegArg0, 1000);
    g.ret();
    sim.loader.dlopen(*sim.image, v2.build());

    // The flush prevents a stale skip into the unloaded library;
    // the checker (on by default) would abort otherwise.
    EXPECT_EQ(sim.call("f", 1).returnValue, 1001u);
    EXPECT_GE(sim.core->skipUnit()->stats().coherenceFlushes, 1u);
}

TEST(SkipIntegration, ExplicitInvalidationVariant)
{
    // §3.4: no bloom filter; the software executes AbtbFlush after
    // rewriting a GOT entry.
    auto params = enhancedParams();
    params.skip.explicitInvalidation = true;

    elf::ModuleBuilder mb("app");
    mb.setDataSize(4096);
    auto &f = mb.function("f");
    f.callExternal("libfn");
    f.ret();
    auto &g = mb.function("flush");
    g.abtbFlush();
    g.ret();

    Sim sim(mb.build(), {addLib(5)}, params);
    for (int i = 0; i < 4; ++i)
        sim.call("f", i);
    EXPECT_GT(sim.core->counters().skippedTrampolines, 0u);

    // Rewrite the GOT by hand (simulating a linker update), then
    // run the architectural flush instruction. (The resolver also
    // issues one explicit flush per resolution in this mode.)
    const auto flushes_before =
        sim.core->skipUnit()->stats().explicitFlushes;
    const auto &exe = sim.image->moduleAt(0);
    sim.image->addressSpace().poke64(
        exe.gotSlotAddrs[0], sim.image->symbolAddress("flush"));
    sim.call("flush");
    EXPECT_EQ(sim.core->skipUnit()->stats().explicitFlushes,
              flushes_before + 1);
    // Next call goes wherever the GOT now points — through the
    // trampoline, since the ABTB is empty.
    sim.core->clearStats();
    sim.call("f", 0);
    EXPECT_GT(sim.core->counters().trampolineInsts, 0u);
}

TEST(SkipIntegration, CheckerCatchesStaleEntries)
{
    // With explicit invalidation and NO flush, a GOT rewrite makes
    // the ABTB stale; the architectural checker must trip rather
    // than let execution diverge silently.
    auto params = enhancedParams();
    params.skip.explicitInvalidation = true;
    params.checkSkips = true;

    Sim sim(callerExe(), {addLib(5)}, params);
    for (int i = 0; i < 4; ++i)
        sim.call("f", i);

    const auto &exe = sim.image->moduleAt(0);
    sim.image->addressSpace().poke64(exe.gotSlotAddrs[0], 0x1234);
    EXPECT_THROW(sim.call("f", 0), cpu::SimError);
}

TEST(SkipIntegration, AbtbSizeOneStillWorks)
{
    auto params = enhancedParams();
    params.skip.abtb.entries = 1;
    params.skip.abtb.assoc = 1;
    Sim sim(callerExe(2), {addLib(3)}, params);
    for (int i = 0; i < 6; ++i)
        EXPECT_EQ(sim.call("f", i).returnValue, i + 3);
    EXPECT_GT(sim.core->counters().skippedTrampolines, 0u);
}

TEST(SkipIntegration, ContextSwitchFlushForcesRepopulation)
{
    Sim sim(callerExe(), {addLib(0)}, enhancedParams());
    for (int i = 0; i < 4; ++i)
        sim.call("f", i);
    // Same process reattached = a context switch (§3.3).
    sim.core->contextSwitch(sim.image.get(), sim.linker.get(), 0);
    sim.core->clearStats();
    sim.call("f", 1); // trampoline executes again once
    EXPECT_GT(sim.core->counters().trampolineInsts, 0u);
    sim.core->clearStats();
    sim.call("f", 1); // then skipping resumes
    sim.call("f", 1);
    EXPECT_GT(sim.core->counters().skippedTrampolines, 0u);
}
