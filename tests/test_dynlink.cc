/**
 * @file
 * Integration tests of dynamic linking in execution: lazy
 * resolution through the PLT, trampoline accounting, interposition,
 * ifuncs, tail-jump invocation, and dlclose/reload.
 */

#include <gtest/gtest.h>

#include "sim_fixture.hh"

using namespace dlsim;
using namespace dlsim::isa;
using dlsim::test::Sim;

namespace
{

elf::Module
callerExe(int calls = 1)
{
    elf::ModuleBuilder mb("app");
    mb.setDataSize(4096);
    auto &f = mb.function("f");
    for (int i = 0; i < calls; ++i)
        f.callExternal("libfn");
    f.ret();
    return mb.build();
}

elf::Module
valueLib(const std::string &name, const std::string &fn,
         std::int64_t value)
{
    elf::ModuleBuilder mb(name);
    auto &f = mb.function(fn);
    f.movImm(RegRet, value);
    f.ret();
    return mb.build();
}

} // namespace

TEST(DynLink, LazyResolutionOnFirstCall)
{
    Sim sim(callerExe(), {valueLib("lib", "libfn", 42)});
    const auto &exe = sim.image->moduleAt(0);

    EXPECT_EQ(sim.linker->resolutionCount(), 0u);
    EXPECT_EQ(sim.call("f").returnValue, 42u);
    EXPECT_EQ(sim.linker->resolutionCount(), 1u);
    // GOT now holds the real function address.
    EXPECT_EQ(sim.image->addressSpace().peek64(
                  exe.gotSlotAddrs[0]),
              sim.image->symbolAddress("libfn"));
}

TEST(DynLink, ResolutionHappensOncePerSymbol)
{
    Sim sim(callerExe(3), {valueLib("lib", "libfn", 42)});
    sim.call("f");
    sim.call("f");
    EXPECT_EQ(sim.linker->resolutionCount(), 1u);
}

TEST(DynLink, ResolverChargesConfiguredCost)
{
    cpu::CoreParams params;
    params.resolverInsts = 500;
    Sim sim(callerExe(), {valueLib("lib", "libfn", 1)}, params);
    const auto first = sim.call("f");
    const auto second = sim.call("f");
    EXPECT_GT(first.instructions, second.instructions + 400);
}

TEST(DynLink, TrampolineInstructionCounting)
{
    Sim sim(callerExe(), {valueLib("lib", "libfn", 1)});
    sim.call("f"); // resolve
    sim.core->clearStats();
    sim.call("f");
    const auto c = sim.core->counters();
    // Steady state: exactly one PLT instruction (the indirect
    // jump) per library call.
    EXPECT_EQ(c.trampolineInsts, 1u);
    EXPECT_EQ(c.trampolineJmps, 1u);
}

TEST(DynLink, FirstCallExecutesFullTrampolineAndPlt0)
{
    Sim sim(callerExe(), {valueLib("lib", "libfn", 1)});
    sim.core->clearStats();
    sim.call("f");
    const auto c = sim.core->counters();
    // jmp*m, push, jmp plt0, plt0 push, plt0 jmp*m = 5 PLT insts.
    EXPECT_EQ(c.trampolineInsts, 5u);
    EXPECT_EQ(c.resolverCalls, 1u);
}

TEST(DynLink, EagerBindingSkipsResolver)
{
    linker::LoaderOptions opts;
    opts.lazyBinding = false;
    Sim sim(callerExe(), {valueLib("lib", "libfn", 9)}, {}, opts);
    EXPECT_EQ(sim.call("f").returnValue, 9u);
    EXPECT_EQ(sim.linker->resolutionCount(), 0u);
    EXPECT_EQ(sim.core->counters().resolverCalls, 0u);
}

TEST(DynLink, InterpositionPicksFirstProvider)
{
    Sim sim(callerExe(), {valueLib("preload", "libfn", 1),
                          valueLib("lib", "libfn", 2)});
    EXPECT_EQ(sim.call("f").returnValue, 1u);
}

TEST(DynLink, CrossLibraryCallsUseCalleePlt)
{
    // app -> liba:outer -> libb:inner, each through its own PLT.
    elf::ModuleBuilder app("app");
    auto &f = app.function("f");
    f.callExternal("outer");
    f.ret();

    elf::ModuleBuilder liba("liba");
    auto &outer = liba.function("outer");
    outer.callExternal("inner");
    outer.aluImm(AluKind::Add, RegRet, RegRet, 1);
    outer.ret();

    Sim sim(app.build(),
            {liba.build(), valueLib("libb", "inner", 10)});
    EXPECT_EQ(sim.call("f").returnValue, 11u);
    EXPECT_EQ(sim.linker->resolutionCount(), 2u);
    EXPECT_EQ(sim.image->totalTrampolines(), 2u);
}

TEST(DynLink, TailJumpThroughPlt)
{
    // The §2.3 "unconventional trick": jmp sym@plt instead of call.
    elf::ModuleBuilder app("app");
    auto &helper = app.function("helper");
    helper.jmpExternal("libfn"); // tail call
    auto &f = app.function("f");
    f.callLocal("helper");
    f.aluImm(AluKind::Add, RegRet, RegRet, 100);
    f.ret();

    Sim sim(app.build(), {valueLib("lib", "libfn", 5)});
    EXPECT_EQ(sim.call("f").returnValue, 105u);
}

TEST(DynLink, IfuncResolvesPerHwCapLevel)
{
    auto make_lib = [] {
        elf::ModuleBuilder lib("lib");
        auto &v0 = lib.function("impl_generic");
        v0.movImm(RegRet, 100);
        v0.ret();
        auto &v1 = lib.function("impl_avx");
        v1.movImm(RegRet, 200);
        v1.ret();
        lib.exportIfunc("libfn", {"impl_generic", "impl_avx"});
        return lib.build();
    };

    Sim base(callerExe(), {make_lib()});
    EXPECT_EQ(base.call("f").returnValue, 100u);
    EXPECT_EQ(base.linker->ifuncResolutionCount(), 1u);

    linker::LoaderOptions opts;
    opts.hwCapLevel = 1;
    Sim fancy(callerExe(), {make_lib()}, {}, opts);
    EXPECT_EQ(fancy.call("f").returnValue, 200u);
}

TEST(DynLink, HwCapLevelClampsToCandidates)
{
    auto lib = [] {
        elf::ModuleBuilder mb("lib");
        auto &v0 = mb.function("v0");
        v0.movImm(RegRet, 1);
        v0.ret();
        mb.exportIfunc("libfn", {"v0"});
        return mb.build();
    }();
    linker::LoaderOptions opts;
    opts.hwCapLevel = 7;
    Sim sim(callerExe(), {std::move(lib)}, {}, opts);
    EXPECT_EQ(sim.call("f").returnValue, 1u);
}

TEST(DynLink, UndefinedSymbolThrowsAtFirstCall)
{
    Sim sim(callerExe(), {valueLib("lib", "otherfn", 1)});
    EXPECT_THROW(sim.call("f"), std::out_of_range);
}

TEST(DynLink, DlcloseThenDlopenReplacement)
{
    Sim sim(callerExe(), {valueLib("libv1", "libfn", 1)});
    EXPECT_EQ(sim.call("f").returnValue, 1u);

    // Unload v1; its GOT entries re-lazify (and would invalidate
    // the ABTB through the coherence hook, tested elsewhere).
    sim.loader.dlclose(*sim.image, "libv1", [&](isa::Addr a) {
        sim.core->onExternalGotWrite(a);
    });
    sim.loader.dlopen(*sim.image, valueLib("libv2", "libfn", 2));

    EXPECT_EQ(sim.call("f").returnValue, 2u);
    EXPECT_EQ(sim.linker->resolutionCount(), 2u);
}

TEST(DynLink, CallSiteProfilerRecordsResolvedTargets)
{
    cpu::CoreParams params;
    params.collectCallSiteTrace = true;
    Sim sim(callerExe(), {valueLib("lib", "libfn", 1)}, params);

    sim.call("f"); // resolving call: target still lazy, untraced
    sim.call("f"); // steady state: traced
    const auto &trace = sim.core->callSiteTrace();
    ASSERT_EQ(trace.size(), 1u);
    const auto &exe = sim.image->moduleAt(0);
    EXPECT_EQ(trace[0].trampolineVa, exe.pltEntryVas[0]);
    EXPECT_EQ(trace[0].targetVa,
              sim.image->symbolAddress("libfn"));
    EXPECT_FALSE(trace[0].tailJump);
}

TEST(DynLink, ProfilerFlagsTailJumps)
{
    elf::ModuleBuilder app("app");
    auto &helper = app.function("helper");
    helper.jmpExternal("libfn");
    auto &f = app.function("f");
    f.callLocal("helper");
    f.ret();

    cpu::CoreParams params;
    params.collectCallSiteTrace = true;
    Sim sim(app.build(), {valueLib("lib", "libfn", 5)}, params);
    sim.call("f");
    sim.call("f");
    const auto &trace = sim.core->callSiteTrace();
    ASSERT_EQ(trace.size(), 1u);
    EXPECT_TRUE(trace[0].tailJump);
}

TEST(DynLink, TrampolineProfileCountsExecutions)
{
    cpu::CoreParams params;
    params.profileTrampolines = true;
    Sim sim(callerExe(2), {valueLib("lib", "libfn", 1)}, params);
    sim.call("f");
    sim.call("f");
    const auto &counts = sim.core->trampolineCounts();
    ASSERT_EQ(counts.size(), 1u);
    EXPECT_EQ(counts.begin()->second, 4u);
}
