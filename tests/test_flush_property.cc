/**
 * @file
 * Property tests for the ABTB flush-accounting contract:
 *
 *   Abtb::flushes() == storeFlushes + coherenceFlushes
 *                      + contextSwitchFlushes + explicitFlushes
 *
 * i.e. every observable flush has exactly one attributed cause.
 * Covers the unit level (every invalidation path of §3.2-§3.4,
 * including the explicit-AbtbFlush arm), the integrated machine
 * (profile runs with live resolver traffic), and a seeded fuzz
 * sweep. Failures print a replayable `dlsim_fuzz` command line.
 */

#include <gtest/gtest.h>

#include "check/fuzz.hh"
#include "core/skip_unit.hh"
#include "workload/engine.hh"
#include "workload/profiles.hh"

using namespace dlsim;
using namespace dlsim::core;
using dlsim::isa::Opcode;

namespace
{

constexpr Addr Tramp = 0x401020;
constexpr Addr Func = 0x7f0000001000;
constexpr Addr GotSlot = 0x403010;

SkipUnitParams
smallParams()
{
    SkipUnitParams p;
    p.abtb.entries = 16;
    p.abtb.assoc = 4;
    return p;
}

void
populate(TrampolineSkipUnit &unit, Addr tramp = Tramp,
         Addr func = Func, Addr got = GotSlot)
{
    unit.retireControl(Opcode::CallRel, tramp, 0);
    unit.retireControl(Opcode::JmpIndMem, func, got);
}

std::uint64_t
causeSum(const SkipUnitStats &st)
{
    return st.storeFlushes + st.coherenceFlushes +
           st.contextSwitchFlushes + st.explicitFlushes;
}

/** The invariant under test. */
void
expectAccounted(const TrampolineSkipUnit &unit)
{
    EXPECT_EQ(unit.abtb().flushes(), causeSum(unit.stats()))
        << unit.dumpState();
}

} // namespace

TEST(FlushProperty, BloomHitStoreFlushesAndIsAccounted)
{
    TrampolineSkipUnit unit(smallParams());
    populate(unit);
    ASSERT_TRUE(unit.substituteTarget(Tramp).has_value());

    unit.retireStore(GotSlot); // §3.2: store to a tracked GOT slot.
    EXPECT_EQ(unit.stats().storeFlushes, 1u);
    EXPECT_EQ(unit.abtb().flushes(), 1u);
    EXPECT_FALSE(unit.substituteTarget(Tramp).has_value())
        << "entry must die with the flush";
    expectAccounted(unit);
}

TEST(FlushProperty, BloomMissStoreDoesNotFlush)
{
    TrampolineSkipUnit unit(smallParams());
    populate(unit);
    // A store far from any tracked slot: with one inserted address
    // the (deterministic) bloom lookup misses, so no flush.
    unit.retireStore(0x500000);
    EXPECT_EQ(unit.stats().storeFlushes, 0u);
    EXPECT_EQ(unit.abtb().flushes(), 0u);
    EXPECT_TRUE(unit.substituteTarget(Tramp).has_value());
    expectAccounted(unit);
}

TEST(FlushProperty, CoherenceInvalidationOfGotLineFlushes)
{
    TrampolineSkipUnit unit(smallParams());
    populate(unit);
    unit.coherenceInvalidate(GotSlot); // Cross-core store snoop.
    EXPECT_EQ(unit.stats().coherenceFlushes, 1u);
    EXPECT_EQ(unit.abtb().flushes(), 1u);
    EXPECT_FALSE(unit.substituteTarget(Tramp).has_value());
    expectAccounted(unit);
}

TEST(FlushProperty, ContextSwitchFlushIsAccounted)
{
    TrampolineSkipUnit unit(smallParams());
    populate(unit);
    unit.contextSwitch();
    EXPECT_EQ(unit.stats().contextSwitchFlushes, 1u);
    expectAccounted(unit);
}

TEST(FlushProperty, ExplicitArmStoresNeverFlush)
{
    // §3.4: no bloom filter; only AbtbFlush invalidates.
    auto p = smallParams();
    p.explicitInvalidation = true;
    TrampolineSkipUnit unit(p);
    populate(unit);

    unit.retireStore(GotSlot);
    unit.retireStore(GotSlot + 8);
    EXPECT_EQ(unit.abtb().flushes(), 0u);
    EXPECT_TRUE(unit.substituteTarget(Tramp).has_value())
        << "stores must be invisible to the explicit arm";

    unit.explicitFlush();
    EXPECT_EQ(unit.stats().explicitFlushes, 1u);
    EXPECT_EQ(unit.abtb().flushes(), 1u);
    EXPECT_FALSE(unit.substituteTarget(Tramp).has_value());
    expectAccounted(unit);
}

TEST(FlushProperty, EveryPathCombinedStaysAccounted)
{
    TrampolineSkipUnit unit(smallParams());
    for (int round = 0; round < 8; ++round) {
        const Addr got = GotSlot + 16 * round;
        populate(unit, Tramp + 16 * round, Func + 0x100 * round,
                 got);
        switch (round % 4) {
          case 0:
            unit.retireStore(got);
            break;
          case 1:
            unit.coherenceInvalidate(got);
            break;
          case 2:
            unit.contextSwitch();
            break;
          case 3:
            unit.explicitFlush();
            break;
        }
        expectAccounted(unit);
    }
    EXPECT_EQ(unit.abtb().flushes(), 8u);
    EXPECT_EQ(unit.stats().storeFlushes, 2u);
    EXPECT_EQ(unit.stats().coherenceFlushes, 2u);
    EXPECT_EQ(unit.stats().contextSwitchFlushes, 2u);
    EXPECT_EQ(unit.stats().explicitFlushes, 2u);
}

TEST(FlushProperty, ResolverTrafficIsAccountedOnRealMachine)
{
    // Integrated: lazy resolution rewrites GOT slots through the
    // real store path, so bloom-hit store flushes occur and must
    // each be attributed.
    workload::MachineConfig cfg;
    cfg.enhanced = true;
    workload::Workbench wb(workload::memcachedProfile(42), cfg);
    for (int i = 0; i < 80; ++i)
        wb.runRequest();

    const auto *unit = wb.core().skipUnit();
    ASSERT_NE(unit, nullptr);
    EXPECT_GT(unit->stats().storeFlushes, 0u);
    EXPECT_EQ(unit->abtb().flushes(), causeSum(unit->stats()))
        << unit->dumpState();
}

TEST(FlushProperty, ExplicitArmAbtbFlushInstructionOnRealMachine)
{
    // §3.4 integrated: the patched resolver executes AbtbFlush
    // after each GOT rewrite; those are the only flushes.
    workload::MachineConfig cfg;
    cfg.enhanced = true;
    cfg.explicitInvalidation = true;
    workload::Workbench wb(workload::memcachedProfile(43), cfg);
    for (int i = 0; i < 80; ++i)
        wb.runRequest();

    const auto *unit = wb.core().skipUnit();
    ASSERT_NE(unit, nullptr);
    EXPECT_EQ(unit->stats().storeFlushes, 0u);
    EXPECT_GT(unit->stats().explicitFlushes, 0u);
    EXPECT_EQ(unit->abtb().flushes(), causeSum(unit->stats()))
        << unit->dumpState();
}

TEST(FlushProperty, SeededFuzzSweepHoldsInvariant)
{
    // check::runCase() fails any case whose flush accounting
    // diverges (and any lockstep divergence). On failure, print the
    // failing seed and a replayable command line.
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        const auto c = check::caseFromSeed(seed);
        const auto r = check::runCase(c);
        EXPECT_TRUE(r.passed)
            << "failing seed: " << seed << "\n"
            << r.failure << "\nreproduce: "
            << check::reproLine(r.failingCase);
    }
}

TEST(FlushProperty, CrossCoreGotStoreFlushesSiblings)
{
    // A rebind broadcast in a multicore case must show up as
    // coherence flushes, each accounted (checked inside runCase).
    check::FuzzCase c;
    c.seed = 404;
    c.cores = 2;
    c.requests = 8;
    c.eventsMask = check::EvRebind;
    c.eventCount = 8;
    const auto r = check::runCase(c);
    EXPECT_TRUE(r.passed) << r.failure << "\nreproduce: "
                          << check::reproLine(r.failingCase);
    EXPECT_GT(r.coherenceFlushes, 0u);
}
