/**
 * @file
 * Unit tests for the OS layer's building blocks: the pipe ring
 * buffer (wrap-around, partial transfers, close/EOF), the
 * connection state machine, and the kernel scheduler's blocking
 * semantics — parked readers/writers, accept-backlog pressure,
 * quantum-expiry preemption of simulated calls, and deadlock
 * detection.
 */

#include <cstring>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "elf/builder.hh"
#include "linker/loader.hh"
#include "os/sched.hh"

using namespace dlsim;
using namespace dlsim::isa;
using dlsim::sim::MultiCoreParams;
using dlsim::sim::MultiCoreSystem;

namespace
{

/* ------------------------------------------------------------- */
/* Pipe ring buffer                                              */
/* ------------------------------------------------------------- */

std::vector<std::uint8_t>
bytes(std::initializer_list<int> vals)
{
    std::vector<std::uint8_t> v;
    for (int x : vals)
        v.push_back(static_cast<std::uint8_t>(x));
    return v;
}

TEST(Pipe, RingBufferWrapsAround)
{
    os::Pipe p(8);
    const auto a = bytes({1, 2, 3, 4, 5, 6});
    ASSERT_EQ(p.write(a.data(), a.size()), 6u);

    std::uint8_t out[8] = {};
    ASSERT_EQ(p.read(out, 4), 4u);
    EXPECT_EQ(0, std::memcmp(out, a.data(), 4));

    // head is now at 4 with 2 bytes in flight; this write wraps
    // around the end of the 8-byte ring.
    const auto b = bytes({7, 8, 9, 10, 11, 12});
    ASSERT_EQ(p.write(b.data(), b.size()), 6u);
    EXPECT_TRUE(p.full());

    std::uint8_t all[8] = {};
    ASSERT_EQ(p.read(all, 8), 8u);
    const auto expect = bytes({5, 6, 7, 8, 9, 10, 11, 12});
    EXPECT_EQ(0, std::memcmp(all, expect.data(), 8));
    EXPECT_TRUE(p.empty());
    EXPECT_EQ(p.stats().bytesWritten, 12u);
    EXPECT_EQ(p.stats().bytesRead, 12u);
}

TEST(Pipe, PartialWritesWhenNearlyFull)
{
    os::Pipe p(4);
    const auto six = bytes({1, 2, 3, 4, 5, 6});
    EXPECT_EQ(p.write(six.data(), six.size()), 4u); // Truncated.
    EXPECT_TRUE(p.full());
    EXPECT_EQ(p.write(six.data(), six.size()), 0u);
    EXPECT_EQ(p.freeSpace(), 0u);

    std::uint8_t out[4] = {};
    EXPECT_EQ(p.read(out, 4), 4u);
    EXPECT_EQ(0, std::memcmp(out, six.data(), 4));
}

TEST(Pipe, CloseDrainsThenEof)
{
    os::Pipe p(16);
    const auto a = bytes({9, 8, 7});
    ASSERT_EQ(p.write(a.data(), a.size()), 3u);
    p.close();
    EXPECT_FALSE(p.atEof()); // Still bytes to drain.
    EXPECT_EQ(p.write(a.data(), a.size()), 0u); // Discarded.

    std::uint8_t out[16] = {};
    EXPECT_EQ(p.read(out, 16), 3u);
    EXPECT_TRUE(p.atEof());
    EXPECT_EQ(p.read(out, 16), 0u);
}

TEST(Connection, ShutdownAdvancesStateMachine)
{
    os::Connection c(0, 16);
    EXPECT_EQ(c.state, os::ConnState::SynQueued);
    c.state = os::ConnState::Established;

    c.shutdownWrite(os::ConnSide::Client);
    EXPECT_EQ(c.state, os::ConnState::HalfClosed);
    EXPECT_TRUE(c.toServer.closed());
    EXPECT_FALSE(c.toClient.closed());

    c.shutdownWrite(os::ConnSide::Server);
    EXPECT_EQ(c.state, os::ConnState::Closed);
    EXPECT_TRUE(c.toClient.closed());
}

/* ------------------------------------------------------------- */
/* Kernel scheduler                                              */
/* ------------------------------------------------------------- */

/** worker(arg0, arg1, arg2): loop arg0 times calling libfn, then
 *  return libfn's result (arg2 + 100) plus arg1. */
elf::Module
makeExe()
{
    elf::ModuleBuilder mb("app");
    mb.setDataSize(4096);
    auto &w = mb.function("worker");
    auto top = w.newLabel();
    w.aluImm(AluKind::Add, 10, RegArg0, 0);
    w.bind(top);
    w.callExternal("libfn");
    w.aluImm(AluKind::Sub, 10, 10, 1);
    w.condBr(CondKind::Ne0, 10, top);
    w.alu(AluKind::Add, RegRet, RegRet, RegArg1);
    w.ret();
    return mb.build();
}

elf::Module
makeLib()
{
    elf::ModuleBuilder mb("lib");
    auto &f = mb.function("libfn");
    f.aluImm(AluKind::Add, RegRet, RegArg2, 100);
    f.ret();
    return mb.build();
}

struct Rig
{
    linker::Loader loader;
    std::unique_ptr<linker::Image> image;
    std::unique_ptr<linker::DynamicLinker> linker;
    std::unique_ptr<MultiCoreSystem> system;

    explicit Rig(std::uint32_t cores)
    {
        MultiCoreParams params;
        params.numCores = cores;
        image = loader.load(makeExe(), {makeLib()});
        linker = std::make_unique<linker::DynamicLinker>(*image);
        system = std::make_unique<MultiCoreSystem>(
            params, *image, *linker, loader.stackTop());
    }
};

/** A kernel thread driven by a lambda-based resumable state
 *  machine: `fn` is step(), `done` is onCallDone(). */
struct FuncThread : os::Thread
{
    std::function<void(os::Kernel &, FuncThread &)> fn;
    std::function<void(os::Kernel &, std::uint64_t, FuncThread &)>
        done;
    int state = 0;
    std::uint64_t retval = 0;

    void step(os::Kernel &k) override { fn(k, *this); }
    void onCallDone(os::Kernel &k, std::uint64_t r) override
    {
        retval = r;
        if (done)
            done(k, r, *this);
    }
};

std::unique_ptr<FuncThread>
thread(std::function<void(os::Kernel &, FuncThread &)> fn,
       std::function<void(os::Kernel &, std::uint64_t,
                          FuncThread &)>
           done = {})
{
    auto t = std::make_unique<FuncThread>();
    t->fn = std::move(fn);
    t->done = std::move(done);
    return t;
}

TEST(Kernel, BlockedReaderWokenByWriter)
{
    Rig rig(1);
    os::Kernel k(os::KernelParams{}, *rig.system, *rig.image,
                 *rig.linker);
    const std::int32_t pipe = k.pipeCreate(16);

    std::vector<std::uint8_t> got;
    // Reader first: it must park on the empty pipe before the
    // writer ever runs.
    k.spawn(thread([&, pipe](os::Kernel &kk, FuncThread &) {
        std::uint8_t buf[16];
        const long r = kk.pipeRead(pipe, buf, sizeof buf);
        if (r == os::Kernel::WouldBlock)
            return;
        if (r > 0) {
            got.insert(got.end(), buf, buf + r);
            return;
        }
        kk.exitThread(); // EOF.
    }),
            "reader");

    k.spawn(thread([&, pipe](os::Kernel &kk, FuncThread &t) {
        if (t.state == 0) {
            const auto msg = bytes({42, 43, 44});
            EXPECT_EQ(kk.pipeWrite(pipe, msg.data(), msg.size()),
                      3);
            t.state = 1;
            return;
        }
        kk.pipeCloseWrite(pipe);
        kk.exitThread();
    }),
            "writer");

    k.run();
    EXPECT_TRUE(k.allDone());
    EXPECT_EQ(got, bytes({42, 43, 44}));
    EXPECT_GE(k.stats().pipeBlockedReads, 1u);
    EXPECT_GE(k.stats().wakeups, 1u);
    EXPECT_EQ(k.stats().pipeBytesRead, 3u);
    EXPECT_EQ(k.stats().pipeBytesWritten, 3u);
}

TEST(Kernel, BlockedWriterWokenByReader)
{
    Rig rig(1);
    os::Kernel k(os::KernelParams{}, *rig.system, *rig.image,
                 *rig.linker);
    const std::int32_t pipe = k.pipeCreate(4); // Tiny ring.
    constexpr std::size_t Total = 12;

    std::size_t written = 0, read = 0;
    // Writer first so it fills the ring and parks before the
    // reader drains it.
    k.spawn(thread([&, pipe](os::Kernel &kk, FuncThread &) {
        if (written >= Total) {
            kk.pipeCloseWrite(pipe);
            kk.exitThread();
            return;
        }
        std::uint8_t buf[Total];
        for (std::size_t i = 0; i < Total - written; ++i)
            buf[i] = static_cast<std::uint8_t>(written + i);
        const long r =
            kk.pipeWrite(pipe, buf, Total - written);
        if (r > 0)
            written += static_cast<std::size_t>(r);
    }),
            "writer");

    k.spawn(thread([&, pipe](os::Kernel &kk, FuncThread &) {
        std::uint8_t buf[4];
        const long r = kk.pipeRead(pipe, buf, sizeof buf);
        if (r > 0) {
            for (long i = 0; i < r; ++i)
                EXPECT_EQ(buf[i], read + static_cast<size_t>(i));
            read += static_cast<std::size_t>(r);
            return;
        }
        if (r == 0)
            kk.exitThread(); // EOF after writer closed.
    }),
            "reader");

    k.run();
    EXPECT_EQ(written, Total);
    EXPECT_EQ(read, Total);
    EXPECT_GE(k.stats().pipeBlockedWrites, 1u);
    EXPECT_EQ(k.stats().pipeBytesWritten, Total);
}

TEST(Kernel, AcceptBacklogBlocksConnectors)
{
    Rig rig(1);
    os::Kernel k(os::KernelParams{}, *rig.system, *rig.image,
                 *rig.linker);
    constexpr std::int32_t Port = 5;
    k.listen(Port, /*backlog=*/1);

    auto connector = [&] {
        return thread([&](os::Kernel &kk, FuncThread &t) {
            if (t.state == 0) {
                const long r = kk.connect(Port);
                if (r == os::Kernel::WouldBlock)
                    return; // Backlog full: parked, retry.
                ASSERT_GE(r, 0);
                t.state = 1;
            }
            kk.exitThread();
        });
    };
    // Two connectors against a one-deep backlog; the acceptor is
    // spawned last so the second connect sees the queue full.
    k.spawn(connector(), "client0");
    k.spawn(connector(), "client1");

    int accepted = 0;
    k.spawn(thread([&](os::Kernel &kk, FuncThread &) {
        const long r = kk.accept(Port);
        if (r == os::Kernel::WouldBlock)
            return;
        ASSERT_GE(r, 0);
        EXPECT_EQ(kk.connection(static_cast<std::int32_t>(r))
                      .state,
                  os::ConnState::Established);
        if (++accepted == 2)
            kk.exitThread();
    }),
            "acceptor");

    k.run();
    EXPECT_EQ(accepted, 2);
    EXPECT_EQ(k.stats().connects, 2u);
    EXPECT_EQ(k.stats().accepts, 2u);
    EXPECT_GE(k.stats().backlogBlocks, 1u);
}

TEST(Kernel, SimCallsPreemptedAcrossThreads)
{
    // Three call() threads multiplex one core with a quantum far
    // shorter than a call, so every thread is preempted mid-call
    // and resumed with its saved register file.
    Rig rig(1);
    os::KernelParams kp;
    kp.quantum = 60;
    os::Kernel k(kp, *rig.system, *rig.image, *rig.linker);

    const isa::Addr worker = rig.image->symbolAddress("worker");
    std::vector<std::uint64_t> results(3, 0);
    for (std::uint64_t i = 0; i < 3; ++i) {
        k.spawn(thread(
                    [&, i, worker](os::Kernel &kk, FuncThread &t) {
                        if (t.state == 0) {
                            t.state = 1;
                            kk.call(worker, /*loops=*/20,
                                    /*arg1=*/10 * (i + 1),
                                    /*arg2=*/i);
                            return;
                        }
                        kk.exitThread();
                    },
                    [&, i](os::Kernel &, std::uint64_t r,
                           FuncThread &) { results[i] = r; }),
                "caller" + std::to_string(i));
    }

    k.run();
    for (std::uint64_t i = 0; i < 3; ++i)
        EXPECT_EQ(results[i], 100 + i + 10 * (i + 1)) << i;
    EXPECT_GE(k.stats().preemptions, 1u);
    EXPECT_GE(k.stats().threadSwitches, 3u);
    EXPECT_EQ(k.stats().simCalls, 3u);
}

TEST(Kernel, SchedulingIsDeterministic)
{
    auto run = [] {
        Rig rig(2);
        os::KernelParams kp;
        kp.quantum = 50;
        os::Kernel k(kp, *rig.system, *rig.image, *rig.linker);
        const isa::Addr worker =
            rig.image->symbolAddress("worker");
        for (std::uint64_t i = 0; i < 5; ++i) {
            k.spawn(thread([&, i, worker](os::Kernel &kk,
                                          FuncThread &t) {
                if (t.state == 0) {
                    t.state = 1;
                    kk.call(worker, 8, i, i);
                    return;
                }
                kk.exitThread();
            }),
                    "t" + std::to_string(i));
        }
        k.run();
        return std::tuple(k.now(), k.stats().rounds,
                          k.stats().dispatches,
                          k.stats().preemptions);
    };
    EXPECT_EQ(run(), run());
}

TEST(Kernel, DeadlockThrowsOsError)
{
    Rig rig(1);
    os::Kernel k(os::KernelParams{}, *rig.system, *rig.image,
                 *rig.linker);
    const std::int32_t pipe = k.pipeCreate(8);
    k.spawn(thread([&, pipe](os::Kernel &kk, FuncThread &) {
        std::uint8_t b;
        (void)kk.pipeRead(pipe, &b, 1); // Nobody will ever write.
    }),
            "starved");
    EXPECT_THROW(k.run(), os::OsError);
}

} // namespace
