/**
 * @file
 * Tests for sim::JobRunner: submission-order results, the inline
 * serial path, exception propagation (single failure keeps its
 * type, multiple failures are aggregated with task indices), the
 * every-job-still-runs guarantee, and the affinity-mask default
 * job count.
 */

#include <atomic>
#include <chrono>
#include <functional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#ifdef __linux__
#include <sched.h>
#endif

#include "sim/job_runner.hh"

using namespace dlsim;

TEST(JobRunner, DefaultJobsAtLeastOne)
{
    EXPECT_GE(sim::JobRunner::defaultJobs(), 1u);
    EXPECT_EQ(sim::JobRunner(0).jobs(),
              sim::JobRunner::defaultJobs());
    EXPECT_EQ(sim::JobRunner(3).jobs(), 3u);
}

TEST(JobRunner, ResultsComeBackInSubmissionOrder)
{
    constexpr int N = 64;
    std::vector<std::function<int()>> work;
    for (int i = 0; i < N; ++i) {
        work.push_back([i] {
            // Earlier jobs sleep longer, so with several workers
            // completion order is roughly the reverse of
            // submission order.
            std::this_thread::sleep_for(
                std::chrono::microseconds((N - i) * 10));
            return i;
        });
    }
    const auto results =
        sim::JobRunner(4).run(std::move(work));
    ASSERT_EQ(results.size(), static_cast<std::size_t>(N));
    for (int i = 0; i < N; ++i)
        EXPECT_EQ(results[i], i);
}

TEST(JobRunner, SerialPathRunsInline)
{
    const auto caller = std::this_thread::get_id();
    std::vector<std::function<std::thread::id()>> work;
    for (int i = 0; i < 4; ++i)
        work.push_back([] { return std::this_thread::get_id(); });
    const auto ids = sim::JobRunner(1).run(std::move(work));
    for (const auto &id : ids)
        EXPECT_EQ(id, caller);
}

TEST(JobRunner, EmptyBatchIsANoop)
{
    sim::JobRunner runner(4);
    runner.runAll({});
    EXPECT_TRUE(
        runner.run(std::vector<std::function<int()>>{}).empty());
}

TEST(JobRunner, SingleFailurePreservesExceptionType)
{
    for (const unsigned jobs : {1u, 4u}) {
        std::vector<std::function<void()>> work;
        work.push_back([] {});
        work.push_back(
            [] { throw std::invalid_argument("job 1 failed"); });
        work.push_back([] {});
        try {
            sim::JobRunner(jobs).runAll(std::move(work));
            FAIL() << "expected a rethrow (jobs=" << jobs << ")";
        } catch (const std::invalid_argument &e) {
            EXPECT_STREQ(e.what(), "job 1 failed");
        }
    }
}

TEST(JobRunner, MultipleFailuresAggregateEveryDiagnostic)
{
    for (const unsigned jobs : {1u, 4u}) {
        std::vector<std::function<void()>> work;
        work.push_back([] {});
        work.push_back(
            [] { throw std::runtime_error("job 1 failed"); });
        work.push_back([] {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(1));
        });
        work.push_back(
            [] { throw std::logic_error("job 3 failed"); });
        try {
            sim::JobRunner(jobs).runAll(std::move(work));
            FAIL() << "expected a rethrow (jobs=" << jobs << ")";
        } catch (const std::runtime_error &e) {
            const std::string what = e.what();
            EXPECT_NE(what.find("2 of 4 jobs failed"),
                      std::string::npos)
                << what;
            EXPECT_NE(what.find("task 1: job 1 failed"),
                      std::string::npos)
                << what;
            EXPECT_NE(what.find("task 3: job 3 failed"),
                      std::string::npos)
                << what;
        }
    }
}

TEST(JobRunner, FailureDoesNotPoisonSiblings)
{
    std::atomic<int> ran{0};
    std::vector<std::function<void()>> work;
    for (int i = 0; i < 16; ++i) {
        work.push_back([i, &ran] {
            ++ran;
            if (i % 4 == 0)
                throw std::runtime_error("boom");
        });
    }
    EXPECT_THROW(sim::JobRunner(4).runAll(std::move(work)),
                 std::runtime_error);
    EXPECT_EQ(ran.load(), 16);
}

TEST(JobRunner, MoreWorkersThanTasks)
{
    std::vector<std::function<int()>> work;
    work.push_back([] { return 7; });
    const auto results =
        sim::JobRunner(16).run(std::move(work));
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0], 7);
}

#ifdef __linux__
TEST(JobRunner, DefaultJobsClampsToAffinityMask)
{
    cpu_set_t saved;
    CPU_ZERO(&saved);
    if (sched_getaffinity(0, sizeof(saved), &saved) != 0)
        GTEST_SKIP() << "sched_getaffinity unavailable";

    // Pin to the lowest CPU in the current mask and confirm the
    // default job count follows the mask, not the machine.
    int lowest = -1;
    for (int c = 0; c < CPU_SETSIZE; ++c) {
        if (CPU_ISSET(c, &saved)) {
            lowest = c;
            break;
        }
    }
    ASSERT_GE(lowest, 0);
    cpu_set_t one;
    CPU_ZERO(&one);
    CPU_SET(lowest, &one);
    ASSERT_EQ(sched_setaffinity(0, sizeof(one), &one), 0);

    EXPECT_EQ(sim::JobRunner::affinityJobs(), 1u);
    EXPECT_EQ(sim::JobRunner::defaultJobs(), 1u);

    ASSERT_EQ(sched_setaffinity(0, sizeof(saved), &saved), 0);
    EXPECT_EQ(sim::JobRunner::affinityJobs(),
              static_cast<unsigned>(CPU_COUNT(&saved)));
}
#endif
