/**
 * @file
 * Tests for the software call-site patcher — the paper's evaluation
 * methodology (§4.3) and the §2.3 strawman, including its failure
 * modes: rel32 reach, tail jumps, and COW page copies.
 */

#include <gtest/gtest.h>

#include "linker/patcher.hh"
#include "sim_fixture.hh"

using namespace dlsim;
using namespace dlsim::isa;
using dlsim::test::Sim;

namespace
{

elf::Module
callerExe()
{
    elf::ModuleBuilder mb("app");
    mb.setDataSize(4096);
    auto &f = mb.function("f");
    f.callExternal("libfn");
    f.ret();
    return mb.build();
}

elf::Module
lib()
{
    elf::ModuleBuilder mb("lib");
    auto &f = mb.function("libfn");
    f.aluImm(AluKind::Add, RegRet, RegArg0, 7);
    f.ret();
    return mb.build();
}

/** Run with profiling and return the collected call-site trace. */
linker::CallSiteTrace
profile(Sim &sim, int warm_calls = 4)
{
    for (int i = 0; i < warm_calls; ++i)
        sim.call("f", i);
    return sim.core->callSiteTrace();
}

cpu::CoreParams
profilingParams()
{
    cpu::CoreParams p;
    p.collectCallSiteTrace = true;
    return p;
}

linker::LoaderOptions
nearOpts()
{
    linker::LoaderOptions o;
    o.nearLibraries = true;
    return o;
}

} // namespace

TEST(Patcher, PatchedCallBypassesTrampoline)
{
    Sim sim(callerExe(), {lib()}, profilingParams(), nearOpts());
    const auto trace = profile(sim);
    ASSERT_EQ(trace.size(), 1u);

    linker::Patcher patcher;
    const auto stats = patcher.apply(*sim.image, trace);
    EXPECT_EQ(stats.sitesPatched, 1u);
    EXPECT_EQ(stats.sitesOutOfReach, 0u);

    sim.core->clearStats();
    EXPECT_EQ(sim.call("f", 1).returnValue, 8u);
    // The trampoline is no longer on the call path at all.
    EXPECT_EQ(sim.core->counters().trampolineInsts, 0u);
}

TEST(Patcher, ConventionalLayoutIsOutOfReach)
{
    // Libraries mapped high (the normal memory map) are beyond
    // rel32 reach: the software approach simply cannot patch (§2.3).
    Sim sim(callerExe(), {lib()}, profilingParams());
    const auto trace = profile(sim);
    linker::Patcher patcher;
    const auto stats = patcher.apply(*sim.image, trace);
    EXPECT_EQ(stats.sitesPatched, 0u);
    EXPECT_EQ(stats.sitesOutOfReach, 1u);

    // Execution still works through the untouched trampoline.
    EXPECT_EQ(sim.call("f", 1).returnValue, 8u);
}

TEST(Patcher, TailJumpsSkippedByDefault)
{
    elf::ModuleBuilder mb("app");
    mb.setDataSize(4096);
    auto &helper = mb.function("helper");
    helper.jmpExternal("libfn");
    auto &f = mb.function("f");
    f.callLocal("helper");
    f.ret();

    Sim sim(mb.build(), {lib()}, profilingParams(), nearOpts());
    const auto trace = profile(sim);
    ASSERT_EQ(trace.size(), 1u);
    ASSERT_TRUE(trace[0].tailJump);

    linker::Patcher patcher;
    const auto stats = patcher.apply(*sim.image, trace);
    EXPECT_EQ(stats.tailJumpsSkipped, 1u);
    EXPECT_EQ(stats.sitesPatched, 0u);

    // With the opt-in (perfect knowledge), they can be patched.
    linker::PatcherOptions opts;
    opts.patchTailJumps = true;
    linker::Patcher bold(opts);
    const auto stats2 = bold.apply(*sim.image, trace);
    EXPECT_EQ(stats2.sitesPatched, 1u);
    EXPECT_EQ(sim.call("f", 1).returnValue, 8u);
}

TEST(Patcher, CowCopiesChargedAfterFork)
{
    // §5.5: patching after fork dirties shared text pages.
    Sim sim(callerExe(), {lib()}, profilingParams(), nearOpts());
    const auto trace = profile(sim);

    // Fork and run as the child, keeping the parent alive so the
    // pages stay shared.
    auto parent = sim.image->releaseAddressSpace();
    auto child = parent->fork();
    sim.image->adoptAddressSpace(std::move(child));

    linker::Patcher patcher;
    const auto stats = patcher.apply(*sim.image, trace);
    EXPECT_EQ(stats.sitesPatched, 1u);
    EXPECT_EQ(stats.pagesTouched, 1u);
    EXPECT_EQ(sim.image->addressSpace().cowCopies(
                  mem::RegionKind::Text),
              1u);
}

TEST(Patcher, NoCowCopiesWithoutSharing)
{
    Sim sim(callerExe(), {lib()}, profilingParams(), nearOpts());
    const auto trace = profile(sim);
    linker::Patcher patcher;
    patcher.apply(*sim.image, trace);
    EXPECT_EQ(sim.image->addressSpace().cowCopies(
                  mem::RegionKind::Text),
              0u);
}

TEST(Patcher, ProtectionRestoredAfterPatch)
{
    Sim sim(callerExe(), {lib()}, profilingParams(), nearOpts());
    const auto trace = profile(sim);
    linker::Patcher patcher;
    const auto stats = patcher.apply(*sim.image, trace);
    EXPECT_GE(stats.mprotectCalls, 2u);
    const auto *region =
        sim.image->addressSpace().findRegion(trace[0].callVa);
    ASSERT_NE(region, nullptr);
    EXPECT_EQ(region->perms, mem::PermRead | mem::PermExec);
}

TEST(Patcher, LeaveWritableOptionSkipsRestore)
{
    Sim sim(callerExe(), {lib()}, profilingParams(), nearOpts());
    const auto trace = profile(sim);
    linker::PatcherOptions opts;
    opts.restoreProtection = false; // the jitsec-style hazard
    linker::Patcher patcher(opts);
    patcher.apply(*sim.image, trace);
    const auto *region =
        sim.image->addressSpace().findRegion(trace[0].callVa);
    ASSERT_NE(region, nullptr);
    EXPECT_TRUE(region->perms & mem::PermWrite);
}

TEST(Patcher, PatchedAndUnpatchedMachinesAgree)
{
    // The patcher is the paper's *emulation* of the hardware: both
    // must compute identical results.
    Sim plain(callerExe(), {lib()}, profilingParams(), nearOpts());
    Sim patched(callerExe(), {lib()}, profilingParams(),
                nearOpts());
    const auto trace = profile(patched);
    linker::Patcher().apply(*patched.image, trace);
    for (std::uint64_t a = 0; a < 16; ++a) {
        EXPECT_EQ(plain.call("f", a).returnValue,
                  patched.call("f", a).returnValue);
    }
}
