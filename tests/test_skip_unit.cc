/**
 * @file
 * Unit tests for the TrampolineSkipUnit: the retire-time population
 * heuristic, target substitution, and all four invalidation paths
 * of paper §3.2-§3.4.
 */

#include <gtest/gtest.h>

#include "core/skip_unit.hh"

using namespace dlsim::core;
using dlsim::isa::Opcode;

namespace
{

constexpr Addr Tramp = 0x401020;
constexpr Addr Func = 0x7f0000001000;
constexpr Addr GotSlot = 0x403010;

SkipUnitParams
smallParams()
{
    SkipUnitParams p;
    p.abtb.entries = 16;
    p.abtb.assoc = 4;
    return p;
}

/** Feed the canonical trampoline retire pattern. */
void
feedPattern(TrampolineSkipUnit &unit, Addr tramp = Tramp,
            Addr func = Func, Addr got = GotSlot)
{
    unit.retireControl(Opcode::CallRel, tramp, 0);
    unit.retireControl(Opcode::JmpIndMem, func, got);
}

} // namespace

TEST(SkipUnit, CallThenMemIndirectJumpPopulates)
{
    TrampolineSkipUnit unit(smallParams());
    feedPattern(unit);
    const auto e = unit.substituteTarget(Tramp);
    ASSERT_TRUE(e.has_value());
    EXPECT_EQ(e->function, Func);
    EXPECT_EQ(unit.stats().populations, 1u);
    EXPECT_EQ(unit.stats().substitutions, 1u);
}

TEST(SkipUnit, RegisterIndirectJumpDoesNotPopulate)
{
    // No guarded load source -> must not populate (§3.2).
    TrampolineSkipUnit unit(smallParams());
    unit.retireControl(Opcode::CallRel, Tramp, 0);
    unit.retireControl(Opcode::JmpIndReg, Func, 0);
    EXPECT_FALSE(unit.substituteTarget(Tramp).has_value());
    EXPECT_EQ(unit.stats().populations, 0u);
}

TEST(SkipUnit, ReturnAfterCallDoesNotPopulate)
{
    // call f; f: ret — a return is indirect but not a trampoline.
    TrampolineSkipUnit unit(smallParams());
    unit.retireControl(Opcode::CallRel, Tramp, 0);
    unit.retireControl(Opcode::Ret, 0x400100, 0x7ffffff0);
    EXPECT_FALSE(unit.substituteTarget(Tramp).has_value());
}

TEST(SkipUnit, InterveningInstructionBreaksPattern)
{
    TrampolineSkipUnit unit(smallParams());
    unit.retireControl(Opcode::CallRel, Tramp, 0);
    unit.retireOther(); // e.g. the callee starts with push
    unit.retireControl(Opcode::JmpIndMem, Func, GotSlot);
    EXPECT_FALSE(unit.substituteTarget(Tramp).has_value());
}

TEST(SkipUnit, CallAfterCallRearmsPattern)
{
    TrampolineSkipUnit unit(smallParams());
    unit.retireControl(Opcode::CallRel, 0x111110, 0);
    unit.retireControl(Opcode::CallRel, Tramp, 0); // new pattern
    unit.retireControl(Opcode::JmpIndMem, Func, GotSlot);
    EXPECT_FALSE(unit.substituteTarget(0x111110).has_value());
    EXPECT_TRUE(unit.substituteTarget(Tramp).has_value());
}

TEST(SkipUnit, IndirectCallAlsoArmsPattern)
{
    // call *reg to a trampoline-shaped callee memoizes too.
    TrampolineSkipUnit unit(smallParams());
    unit.retireControl(Opcode::CallIndReg, Tramp, 0);
    unit.retireControl(Opcode::JmpIndMem, Func, GotSlot);
    EXPECT_TRUE(unit.substituteTarget(Tramp).has_value());
}

TEST(SkipUnit, StoreToGuardedSlotFlushes)
{
    TrampolineSkipUnit unit(smallParams());
    feedPattern(unit);
    unit.retireStore(GotSlot);
    EXPECT_FALSE(unit.substituteTarget(Tramp).has_value());
    EXPECT_EQ(unit.stats().storeFlushes, 1u);
}

TEST(SkipUnit, StoreElsewhereDoesNotFlush)
{
    TrampolineSkipUnit unit(smallParams());
    feedPattern(unit);
    // A stack push far from the GOT: overwhelmingly a bloom miss;
    // assert no flush was recorded for a non-colliding address.
    for (Addr a = 0x7ffffff000; a < 0x7ffffff100; a += 8) {
        if (unit.bloom().mayContain(a))
            continue; // skip the (rare) colliding address
        unit.retireStore(a);
    }
    EXPECT_TRUE(unit.substituteTarget(Tramp).has_value());
    EXPECT_EQ(unit.stats().storeFlushes, 0u);
}

TEST(SkipUnit, StoreBreaksCallPattern)
{
    TrampolineSkipUnit unit(smallParams());
    unit.retireControl(Opcode::CallRel, Tramp, 0);
    unit.retireStore(0x7ffffff000);
    unit.retireControl(Opcode::JmpIndMem, Func, GotSlot);
    EXPECT_FALSE(unit.substituteTarget(Tramp).has_value());
}

TEST(SkipUnit, CoherenceInvalidationFlushes)
{
    TrampolineSkipUnit unit(smallParams());
    feedPattern(unit);
    unit.coherenceInvalidate(GotSlot);
    EXPECT_FALSE(unit.substituteTarget(Tramp).has_value());
    EXPECT_EQ(unit.stats().coherenceFlushes, 1u);
}

TEST(SkipUnit, ContextSwitchFlushesByDefault)
{
    TrampolineSkipUnit unit(smallParams());
    feedPattern(unit);
    unit.contextSwitch();
    EXPECT_FALSE(unit.substituteTarget(Tramp).has_value());
    EXPECT_EQ(unit.stats().contextSwitchFlushes, 1u);
}

TEST(SkipUnit, AsidRetentionSurvivesContextSwitch)
{
    auto params = smallParams();
    params.asidRetention = true;
    TrampolineSkipUnit unit(params);
    unit.setAsid(1);
    feedPattern(unit);
    unit.contextSwitch();
    unit.setAsid(2);
    // Another process's identical trampoline address must miss.
    EXPECT_FALSE(unit.substituteTarget(Tramp).has_value());
    unit.setAsid(1);
    EXPECT_TRUE(unit.substituteTarget(Tramp).has_value());
    EXPECT_EQ(unit.stats().contextSwitchFlushes, 0u);
}

TEST(SkipUnit, ExplicitFlush)
{
    TrampolineSkipUnit unit(smallParams());
    feedPattern(unit);
    unit.explicitFlush();
    EXPECT_FALSE(unit.substituteTarget(Tramp).has_value());
    EXPECT_EQ(unit.stats().explicitFlushes, 1u);
}

TEST(SkipUnit, ExplicitInvalidationModeIgnoresStores)
{
    // §3.4 alternate implementation: no bloom filter; software must
    // invalidate explicitly.
    auto params = smallParams();
    params.explicitInvalidation = true;
    TrampolineSkipUnit unit(params);
    feedPattern(unit);
    unit.retireStore(GotSlot); // would flush in the default mode
    EXPECT_TRUE(unit.substituteTarget(Tramp).has_value());
    EXPECT_EQ(unit.stats().storeFlushes, 0u);
    unit.explicitFlush();
    EXPECT_FALSE(unit.substituteTarget(Tramp).has_value());
}

TEST(SkipUnit, ExplicitModeHardwareBytesExcludeBloom)
{
    auto params = smallParams();
    const auto with_bloom =
        TrampolineSkipUnit(params).hardwareBytes();
    params.explicitInvalidation = true;
    const auto without =
        TrampolineSkipUnit(params).hardwareBytes();
    EXPECT_GT(with_bloom, without);
    EXPECT_EQ(without, 16u * AbtbEntryBytes);
}

TEST(SkipUnit, ChainedTrampolineCollapse)
{
    // tramp -> f where f itself begins with jmp*m to g: the retire
    // stream after a skip is call(tramp-target), jmp*m(g), which
    // legally collapses the chain. Both slots end up guarded.
    TrampolineSkipUnit unit(smallParams());
    feedPattern(unit); // tramp -> Func guarded by GotSlot
    // Later: the skip happens, and Func's own first instruction is
    // a memory-indirect jump to G via SlotB.
    constexpr Addr G = 0x7f0000009000, SlotB = 0x403018;
    unit.retireControl(Opcode::CallRel, Tramp, 0);
    unit.retireControl(Opcode::JmpIndMem, G, SlotB);
    EXPECT_EQ(unit.substituteTarget(Tramp)->function, G);
    // A store to EITHER slot must flush (both are in the bloom).
    unit.retireStore(GotSlot);
    EXPECT_FALSE(unit.substituteTarget(Tramp).has_value());
}

TEST(SkipUnit, FlushClearsBloomToo)
{
    TrampolineSkipUnit unit(smallParams());
    feedPattern(unit);
    unit.explicitFlush();
    EXPECT_FALSE(unit.bloom().mayContain(GotSlot));
}

TEST(SkipUnit, StatsClearPreservesContents)
{
    TrampolineSkipUnit unit(smallParams());
    feedPattern(unit);
    unit.clearStats();
    EXPECT_EQ(unit.stats().populations, 0u);
    EXPECT_TRUE(unit.substituteTarget(Tramp).has_value());
}

#include "stats/rng.hh"

/**
 * Fuzz property: over random retire streams, the unit maintains its
 * invariants — occupancy bounded by capacity, substitutions only
 * for previously populated keys, flushes empty everything.
 */
class SkipUnitFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SkipUnitFuzz, InvariantsHoldOnRandomStreams)
{
    dlsim::stats::Rng rng(GetParam());
    auto params = smallParams();
    params.patternWindow =
        static_cast<std::uint32_t>(GetParam() % 3);
    TrampolineSkipUnit unit(params);

    std::uint64_t prev_pops = 0;
    for (int i = 0; i < 20000; ++i) {
        const auto roll = rng.nextBelow(100);
        const Addr addr = 0x400000 + rng.nextBelow(64) * 16;
        const Addr got = 0x600000 + rng.nextBelow(64) * 8;
        if (roll < 30) {
            unit.retireControl(dlsim::isa::Opcode::CallRel, addr,
                               0);
        } else if (roll < 55) {
            unit.retireControl(dlsim::isa::Opcode::JmpIndMem,
                               addr, got);
        } else if (roll < 70) {
            unit.retireStore(got);
        } else if (roll < 90) {
            unit.retireOther();
        } else if (roll < 95) {
            const auto e = unit.substituteTarget(addr);
            if (e) {
                // A hit implies a prior population survived.
                EXPECT_GT(unit.stats().populations, 0u);
            }
        } else if (roll < 97) {
            unit.contextSwitch();
        } else {
            unit.explicitFlush();
            EXPECT_EQ(unit.abtb().occupancy(), 0u);
        }
        // Capacity invariant.
        ASSERT_LE(unit.abtb().occupancy(),
                  params.abtb.entries);
        // Populations are monotone.
        ASSERT_GE(unit.stats().populations, prev_pops);
        prev_pops = unit.stats().populations;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SkipUnitFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6));
