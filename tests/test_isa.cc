/**
 * @file
 * Unit tests for the ISA: opcode classification, instruction
 * factories, encoding sizes, and the disassembler.
 */

#include <gtest/gtest.h>

#include "isa/instruction.hh"
#include "isa/opcode.hh"
#include "isa/registers.hh"

using namespace dlsim::isa;

TEST(Opcode, ControlClassification)
{
    EXPECT_TRUE(isControl(Opcode::CallRel));
    EXPECT_TRUE(isControl(Opcode::CallIndReg));
    EXPECT_TRUE(isControl(Opcode::CallIndMem));
    EXPECT_TRUE(isControl(Opcode::JmpRel));
    EXPECT_TRUE(isControl(Opcode::JmpIndReg));
    EXPECT_TRUE(isControl(Opcode::JmpIndMem));
    EXPECT_TRUE(isControl(Opcode::CondBr));
    EXPECT_TRUE(isControl(Opcode::Ret));
    EXPECT_FALSE(isControl(Opcode::Nop));
    EXPECT_FALSE(isControl(Opcode::IntAlu));
    EXPECT_FALSE(isControl(Opcode::Load));
    EXPECT_FALSE(isControl(Opcode::Store));
    EXPECT_FALSE(isControl(Opcode::Push));
    EXPECT_FALSE(isControl(Opcode::AbtbFlush));
}

TEST(Opcode, CallClassification)
{
    EXPECT_TRUE(isCall(Opcode::CallRel));
    EXPECT_TRUE(isCall(Opcode::CallIndReg));
    EXPECT_TRUE(isCall(Opcode::CallIndMem));
    EXPECT_FALSE(isCall(Opcode::JmpRel));
    EXPECT_FALSE(isCall(Opcode::Ret));
}

TEST(Opcode, IndirectClassification)
{
    EXPECT_TRUE(isIndirectControl(Opcode::JmpIndMem));
    EXPECT_TRUE(isIndirectControl(Opcode::JmpIndReg));
    EXPECT_TRUE(isIndirectControl(Opcode::Ret));
    EXPECT_FALSE(isIndirectControl(Opcode::JmpRel));
    EXPECT_FALSE(isIndirectControl(Opcode::CallRel));
}

TEST(Opcode, MemIndirectNeedsALoadSource)
{
    // Only these two have a guarded load source for the bloom
    // filter; the classification gates ABTB population.
    EXPECT_TRUE(isMemIndirectControl(Opcode::JmpIndMem));
    EXPECT_TRUE(isMemIndirectControl(Opcode::CallIndMem));
    EXPECT_FALSE(isMemIndirectControl(Opcode::JmpIndReg));
    EXPECT_FALSE(isMemIndirectControl(Opcode::Ret));
}

TEST(Opcode, LoadStoreClassification)
{
    EXPECT_TRUE(hasLoad(Opcode::Load));
    EXPECT_TRUE(hasLoad(Opcode::Pop));
    EXPECT_TRUE(hasLoad(Opcode::Ret));
    EXPECT_TRUE(hasLoad(Opcode::JmpIndMem));
    EXPECT_FALSE(hasLoad(Opcode::Store));
    EXPECT_TRUE(hasStore(Opcode::Store));
    EXPECT_TRUE(hasStore(Opcode::Push));
    EXPECT_TRUE(hasStore(Opcode::PushImm));
    EXPECT_TRUE(hasStore(Opcode::CallRel)); // pushes return address
    EXPECT_FALSE(hasStore(Opcode::Ret));
}

TEST(Opcode, NamesAreDistinctive)
{
    EXPECT_EQ(opcodeName(Opcode::CallRel), "call");
    EXPECT_EQ(opcodeName(Opcode::JmpIndMem), "jmp*m");
    EXPECT_EQ(opcodeName(Opcode::AbtbFlush), "abtbflush");
}

TEST(Instruction, FactorySizesPositive)
{
    EXPECT_GT(makeNop().size, 0);
    EXPECT_GT(makeRet().size, 0);
    EXPECT_GT(makeCallRel(0).size, 0);
}

TEST(Instruction, PltEntryIsSixteenBytes)
{
    // Matches x86-64 ELF PLT geometry (paper Fig. 2): four
    // trampolines per 64-byte I-cache line.
    const auto jmp = makeJmpIndMemAbs(0x1000);
    const auto push = makePushImm(3);
    const auto back = makeJmpRel(-32);
    EXPECT_EQ(jmp.size + push.size + back.size, 16);
}

TEST(Instruction, Rel32Reach)
{
    EXPECT_EQ(Rel32Max, (1ll << 31) - 1);
    EXPECT_EQ(Rel32Min, -(1ll << 31));
}

TEST(Instruction, FactoryFieldAssignment)
{
    const auto alu = makeAlu(AluKind::Xor, 2, 3, 4);
    EXPECT_EQ(alu.op, Opcode::IntAlu);
    EXPECT_EQ(alu.alu, AluKind::Xor);
    EXPECT_EQ(alu.dst, 2);
    EXPECT_EQ(alu.src1, 3);
    EXPECT_EQ(alu.src2, 4);

    const auto alui = makeAluImm(AluKind::Add, 2, 3, -7);
    EXPECT_EQ(alui.src2, NoReg);
    EXPECT_EQ(alui.imm, -7);

    const auto load = makeLoad(1, 4, 16);
    EXPECT_EQ(load.memBase, 4);
    EXPECT_EQ(load.imm, 16);

    const auto jmp = makeJmpIndMemAbs(0xdead000);
    EXPECT_EQ(jmp.memBase, NoReg);
    EXPECT_EQ(jmp.imm, 0xdead000);
}

TEST(Instruction, Disassembly)
{
    EXPECT_EQ(makeNop().toString(), "nop");
    EXPECT_EQ(makeMovImm(3, 42).toString(), "mov r3, 42");
    EXPECT_EQ(makeLoad(1, 4, 8).toString(), "load r1, [r4 + 8]");
    EXPECT_EQ(makePush(5).toString(), "push r5");
    // Relative targets render as absolute addresses given the pc.
    const auto call = makeCallRel(0x100);
    EXPECT_EQ(call.toString(0x1000),
              "call 0x" + [] {
                  char buf[32];
                  snprintf(buf, sizeof(buf), "%llx",
                           0x1000ull + 5 + 0x100);
                  return std::string(buf);
              }());
}

TEST(Registers, Conventions)
{
    EXPECT_LT(RegSp, NumRegs);
    EXPECT_LT(RegRet, NumRegs);
    EXPECT_NE(RegArg0, RegRet);
    EXPECT_EQ(NoReg, 0xff);
}
