/**
 * @file
 * Tests for the synthetic workload generator and Workbench: deter-
 * minism, structural properties, base/enhanced architectural
 * equivalence, and loose calibration bounds against the paper's
 * Table 2/3 characterisation (tight matching is the benches' job).
 */

#include <gtest/gtest.h>

#include "workload/engine.hh"
#include "workload/profiles.hh"
#include "workload/program.hh"

using namespace dlsim;
using namespace dlsim::workload;

namespace
{

/** A small, fast profile for structure tests. */
WorkloadParams
tinyParams()
{
    WorkloadParams p;
    p.name = "tiny";
    p.seed = 7;
    p.numLibs = 3;
    p.funcsPerLib = 8;
    p.libFnInsts = 10;
    p.requests = {{"A", 0.5, 1, 2}, {"B", 0.5, 1, 3}};
    p.stepsPerRequest = 6;
    p.appWorkInsts = 4;
    p.calledImports = 12;
    p.libDataBytes = 4096;
    p.appDataBytes = 8192;
    p.ifuncSymbols = 2;
    p.tailJumpFrac = 0.2;
    p.virtualCallFrac = 0.2;
    return p;
}

} // namespace

TEST(Program, DeterministicForSeed)
{
    const auto a = buildProgram(tinyParams());
    const auto b = buildProgram(tinyParams());
    ASSERT_EQ(a.libs.size(), b.libs.size());
    EXPECT_EQ(a.exe.textSize(), b.exe.textSize());
    for (std::size_t i = 0; i < a.libs.size(); ++i) {
        EXPECT_EQ(a.libs[i].textSize(), b.libs[i].textSize());
        EXPECT_EQ(a.libs[i].imports(), b.libs[i].imports());
    }
    EXPECT_EQ(a.calledSymbols, b.calledSymbols);
}

TEST(Program, SeedChangesProgram)
{
    auto p = tinyParams();
    const auto a = buildProgram(p);
    p.seed = 8;
    const auto b = buildProgram(p);
    EXPECT_NE(a.exe.textSize(), b.exe.textSize());
}

TEST(Program, StructureMatchesParams)
{
    const auto p = tinyParams();
    const auto prog = buildProgram(p);
    EXPECT_EQ(prog.libs.size(), p.numLibs); // no kernel module
    ASSERT_EQ(prog.handlers.size(), 2u);
    EXPECT_EQ(prog.handlers[0], "handle_A");
    std::uint32_t idx = 0;
    EXPECT_TRUE(prog.exe.findFunction("handle_A", idx));
    EXPECT_TRUE(prog.exe.findFunction("handle_B", idx));
    EXPECT_TRUE(prog.exe.findFunction("main", idx));
    EXPECT_LE(prog.calledSymbols.size(), p.calledImports);
}

TEST(Program, KernelModuleWhenConfigured)
{
    auto p = tinyParams();
    p.kernelFuncs = 10;
    const auto prog = buildProgram(p);
    ASSERT_EQ(prog.libs.size(), p.numLibs + 1);
    EXPECT_EQ(prog.libs.back().name(), "kernel");
    std::uint32_t idx = 0;
    EXPECT_TRUE(prog.libs.back().findFunction("sys_path", idx));
}

TEST(Program, IfuncSymbolsExported)
{
    const auto prog = buildProgram(tinyParams());
    int ifuncs = 0;
    for (const auto &lib : prog.libs) {
        for (const auto &[name, exp] : lib.exports())
            ifuncs += exp.ifunc;
    }
    EXPECT_EQ(ifuncs, 2);
}

TEST(Workbench, RunsRequestsAndCounts)
{
    Workbench wb(tinyParams(), MachineConfig{});
    const auto r = wb.runRequest();
    EXPECT_GT(r.instructions, 0u);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_LT(r.kind, 2u);
}

TEST(Workbench, SpecificKindUsesThatHandler)
{
    Workbench wb(tinyParams(), MachineConfig{});
    const auto r = wb.runRequest(1);
    EXPECT_EQ(r.kind, 1u);
}

TEST(Workbench, WarmupClearsStats)
{
    Workbench wb(tinyParams(), MachineConfig{});
    wb.warmup(5);
    EXPECT_EQ(wb.core().counters().instructions, 0u);
    wb.runRequest();
    EXPECT_GT(wb.core().counters().instructions, 0u);
}

TEST(Workbench, IdenticalRequestStreamsAcrossArms)
{
    // Base and enhanced arms must draw identical request streams.
    Workbench base(tinyParams(), MachineConfig{});
    MachineConfig enh;
    enh.enhanced = true;
    Workbench fast(tinyParams(), enh);
    for (int i = 0; i < 50; ++i) {
        EXPECT_EQ(base.runRequest().kind, fast.runRequest().kind);
    }
}

TEST(Workbench, BaseAndEnhancedArchitecturallyEquivalent)
{
    // The strongest end-to-end property: the mechanism must be
    // architecturally invisible. Identical streams must execute
    // identical work; only timing may differ. skippedTrampolines
    // confirms the mechanism was actually engaged.
    Workbench base(tinyParams(), MachineConfig{});
    MachineConfig cfg;
    cfg.enhanced = true;
    Workbench enh(tinyParams(), cfg);

    for (int i = 0; i < 100; ++i) {
        base.runRequest();
        enh.runRequest();
    }
    EXPECT_GT(enh.core().counters().skippedTrampolines, 0u);
    // Identical register file at the end of the identical stream.
    for (int r = 0; r < dlsim::isa::NumRegs; ++r) {
        EXPECT_EQ(base.core().state().regs[r],
                  enh.core().state().regs[r])
            << "register r" << r;
    }
}

TEST(Workbench, EnhancedRetiresFewerInstructions)
{
    Workbench base(tinyParams(), MachineConfig{});
    MachineConfig cfg;
    cfg.enhanced = true;
    Workbench enh(tinyParams(), cfg);
    base.warmup(20);
    enh.warmup(20);
    for (int i = 0; i < 100; ++i) {
        base.runRequest();
        enh.runRequest();
    }
    EXPECT_LT(enh.core().counters().instructions,
              base.core().counters().instructions);
    EXPECT_LE(enh.core().counters().cycles,
              base.core().counters().cycles);
}

/** Calibration smoke: loose bounds on the paper's Table 2/3. */
struct ProfileExpectation
{
    const char *name;
    double pkiLo, pkiHi;
    std::uint64_t distinctLo, distinctHi;
};

class ProfileCalibration
    : public ::testing::TestWithParam<ProfileExpectation>
{
};

TEST_P(ProfileCalibration, TrampolineBehaviourInRange)
{
    const auto exp = GetParam();
    MachineConfig mc;
    mc.profileTrampolines = true;
    Workbench wb(profileByName(exp.name), mc);
    wb.warmup(30);
    for (int i = 0; i < 250; ++i)
        wb.runRequest();
    const auto c = wb.core().counters();
    const double pki = c.pki(c.trampolineInsts);
    EXPECT_GE(pki, exp.pkiLo) << exp.name;
    EXPECT_LE(pki, exp.pkiHi) << exp.name;
    const auto distinct = wb.distinctTrampolinesExecuted();
    EXPECT_GE(distinct, exp.distinctLo) << exp.name;
    EXPECT_LE(distinct, exp.distinctHi) << exp.name;
}

INSTANTIATE_TEST_SUITE_P(
    PaperProfiles, ProfileCalibration,
    ::testing::Values(
        // Paper: apache 12.23 PKI / 501 distinct.
        ProfileExpectation{"apache", 7.0, 18.0, 320, 800},
        // Paper: memcached 1.75 PKI / 33 distinct.
        ProfileExpectation{"memcached", 0.9, 3.0, 18, 45},
        // Paper: mysql 5.56 PKI / 1611 distinct (accumulates with
        // run length; 250 requests reach a fraction).
        ProfileExpectation{"mysql", 3.0, 9.0, 300, 2000},
        // Paper: firefox 0.72 PKI / 2457 distinct.
        ProfileExpectation{"firefox", 0.3, 1.3, 500, 3000}));

TEST(Workbench, OrderingAcrossWorkloadsMatchesPaper)
{
    // Table 2's qualitative ordering:
    // apache > mysql > memcached > firefox in trampoline PKI.
    double pki[4];
    const char *names[4] = {"apache", "mysql", "memcached",
                            "firefox"};
    for (int i = 0; i < 4; ++i) {
        Workbench wb(profileByName(names[i]), MachineConfig{});
        wb.warmup(20);
        for (int r = 0; r < 120; ++r)
            wb.runRequest();
        const auto c = wb.core().counters();
        pki[i] = c.pki(c.trampolineInsts);
    }
    EXPECT_GT(pki[0], pki[1]);
    EXPECT_GT(pki[1], pki[2]);
    EXPECT_GT(pki[2], pki[3]);
}

TEST(Workbench, GeneratedMainRunsToHalt)
{
    // The generated program's `main` exercises every handler once
    // and halts — the whole-program (Core::run) path.
    Workbench wb(tinyParams(), MachineConfig{});
    wb.core().state().pc = wb.image().symbolAddress("main");
    const auto executed = wb.core().run(2'000'000);
    EXPECT_TRUE(wb.core().state().halted);
    EXPECT_GT(executed, 100u);
}

TEST(Workbench, ArmProfileEndToEnd)
{
    // A paper profile on ARM-style trampolines: higher trampoline
    // PKI (3 instructions per invocation), same distinct count.
    MachineConfig x86, arm;
    arm.pltStyle = linker::PltStyle::Arm;
    Workbench wx(memcachedProfile(), x86), wa(memcachedProfile(),
                                              arm);
    wx.warmup(20);
    wa.warmup(20);
    for (int i = 0; i < 80; ++i) {
        wx.runRequest();
        wa.runRequest();
    }
    const auto cx = wx.core().counters();
    const auto ca = wa.core().counters();
    EXPECT_EQ(cx.trampolineJmps, ca.trampolineJmps);
    EXPECT_NEAR(double(ca.trampolineInsts),
                3.0 * double(cx.trampolineInsts), 1.0);
}

TEST(Workbench, AslrArmRunsCorrectly)
{
    // Engine-level ASLR: randomised layout, same architectural
    // results as the deterministic layout.
    auto wl = tinyParams();
    MachineConfig plain, aslr;
    aslr.aslr = true;
    Workbench a(wl, plain), b(wl, aslr);
    for (int i = 0; i < 40; ++i) {
        // Registers may hold layout-dependent addresses, but the
        // computed work (instruction counts) is layout-invariant.
        const auto ra = a.runRequest();
        const auto rb = b.runRequest();
        EXPECT_EQ(ra.kind, rb.kind);
        EXPECT_EQ(ra.instructions, rb.instructions);
    }
    // The library really moved.
    EXPECT_NE(a.image().moduleAt(1).textBase,
              b.image().moduleAt(1).textBase);
}
