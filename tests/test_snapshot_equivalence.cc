/**
 * @file
 * Snapshot-equivalence properties: a serialize/restore round-trip at
 * any point of a run — request boundary or mid-request — is invisible
 * to the final metrics document. A straight run and a run that passed
 * through a snapshot produce byte-identical JSON.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "check/fuzz.hh"
#include "check/lockstep.hh"
#include "stats/metrics.hh"
#include "workload/engine.hh"
#include "workload/profiles.hh"

using namespace dlsim;
using namespace dlsim::workload;

namespace
{

WorkloadParams
equivWorkload(std::uint64_t seed)
{
    WorkloadParams p;
    p.name = "snap-equiv";
    p.seed = seed;
    p.numLibs = 3;
    p.funcsPerLib = 10;
    p.requests = {{"A", 0.6, 1, 3}, {"B", 0.4, 1, 2}};
    p.stepsPerRequest = 10;
    p.calledImports = 16;
    return p;
}

MachineConfig
enhancedConfig()
{
    MachineConfig cfg;
    cfg.enhanced = true;
    return cfg;
}

std::string
metricsJson(const Workbench &wb)
{
    stats::MetricsDocument doc("test_snapshot_equivalence");
    auto &run = doc.addRun("run");
    wb.reportMetrics(run.registry, "dlsim");
    // The page-translation cache restarts cold after a restore;
    // strip its process-local counters before the byte-compare.
    run.registry.erasePrefix("dlsim.mem.ptc.");
    return doc.toJson();
}

} // namespace

TEST(SnapshotEquivalence, BoundaryRoundTripIsMetricsInvisible)
{
    const auto wl = equivWorkload(1);
    const auto cfg = enhancedConfig();

    // Straight run: 12 requests.
    Workbench straight(wl, cfg);
    for (int i = 0; i < 12; ++i)
        straight.runRequest();

    // Same run, but serialized and restored into a fresh workbench
    // at the request boundary after 5.
    Workbench first(wl, cfg);
    for (int i = 0; i < 5; ++i)
        first.runRequest();
    const auto bytes = snapshotWorkbench(first);
    Workbench resumed(wl, cfg);
    restoreWorkbench(resumed, bytes.data(), bytes.size());
    for (int i = 0; i < 7; ++i)
        resumed.runRequest();

    EXPECT_EQ(metricsJson(straight), metricsJson(resumed));
}

TEST(SnapshotEquivalence, MidRequestRoundTripIsMetricsInvisible)
{
    const auto wl = equivWorkload(2);
    const auto cfg = enhancedConfig();

    Workbench straight(wl, cfg);
    for (int i = 0; i < 10; ++i)
        straight.runRequest();

    Workbench first(wl, cfg);
    for (int i = 0; i < 4; ++i)
        first.runRequest();
    // Stop inside request 5, snapshot there, and finish it on the
    // restored workbench.
    first.beginRequest();
    const bool done = first.stepRequest(37);
    ASSERT_FALSE(done) << "request finished before the snapshot "
                          "point; pick a smaller step";
    const auto bytes = snapshotWorkbench(first);

    Workbench resumed(wl, cfg);
    restoreWorkbench(resumed, bytes.data(), bytes.size());
    while (!resumed.stepRequest(64)) {
    }
    for (int i = 0; i < 5; ++i)
        resumed.runRequest();

    EXPECT_EQ(metricsJson(straight), metricsJson(resumed));
}

TEST(SnapshotEquivalence, CheckerStaysInLockstepAcrossRestore)
{
    // The oracle re-forks reference memory at attach, so a restored
    // workbench plus a fresh checker must stay clean mid-request.
    const auto wl = equivWorkload(3);
    const auto cfg = enhancedConfig();

    Workbench first(wl, cfg);
    for (int i = 0; i < 3; ++i)
        first.runRequest();
    first.beginRequest();
    ASSERT_FALSE(first.stepRequest(29));
    const auto bytes = snapshotWorkbench(first);

    Workbench resumed(wl, cfg);
    restoreWorkbench(resumed, bytes.data(), bytes.size());
    check::LockstepChecker checker(resumed.core());
    resumed.core().setRetireObserver(&checker);
    while (!resumed.stepRequest(64)) {
    }
    for (int i = 0; i < 20; ++i)
        resumed.runRequest();
    resumed.core().setRetireObserver(nullptr);

    EXPECT_GT(checker.stats().checkedRetires, 100u);
    EXPECT_GT(checker.stats().verifiedSubstitutions, 0u);
}

TEST(SnapshotEquivalence, FuzzCasesWithRandomSnapshotPoints)
{
    // check::runCase() executes each single-core EvSnapshot case
    // twice — with and without the mid-run save/restore round-trips
    // — and byte-compares the metrics documents.
    for (std::uint64_t seed : {501, 502, 503}) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        check::FuzzCase c;
        c.seed = seed;
        c.requests = 10;
        c.eventsMask = check::EvSnapshot | check::EvRebind;
        c.eventCount = 6;
        const auto r = check::runCase(c);
        EXPECT_TRUE(r.passed)
            << r.failure << "\nreproduce: "
            << check::reproLine(r.failingCase);
    }
}
