/**
 * @file
 * Unit tests for the address space: mapping, permissions, faults,
 * and — most importantly for the paper's §5.5 — fork/COW page
 * accounting.
 */

#include <gtest/gtest.h>

#include "mem/address_space.hh"

using namespace dlsim::mem;

namespace
{

AddressSpace
makeSpace()
{
    AddressSpace as;
    as.map(0x1000, 0x2000, PermRead | PermWrite, RegionKind::Data,
           "data");
    as.map(0x400000, 0x1000, PermRead | PermExec, RegionKind::Text,
           "text");
    return as;
}

} // namespace

TEST(AddressSpace, ReadWriteRoundTrip)
{
    auto as = makeSpace();
    EXPECT_EQ(as.write64(0x1008, 0xdeadbeef), MemFault::None);
    MemFault fault = MemFault::None;
    EXPECT_EQ(as.read64(0x1008, fault), 0xdeadbeefull);
    EXPECT_EQ(fault, MemFault::None);
}

TEST(AddressSpace, ZeroInitialized)
{
    auto as = makeSpace();
    MemFault fault = MemFault::None;
    EXPECT_EQ(as.read64(0x1010, fault), 0u);
    EXPECT_EQ(fault, MemFault::None);
}

TEST(AddressSpace, UnmappedFaults)
{
    auto as = makeSpace();
    MemFault fault = MemFault::None;
    as.read64(0x9000000, fault);
    EXPECT_EQ(fault, MemFault::Unmapped);
    EXPECT_EQ(as.write64(0x9000000, 1), MemFault::Unmapped);
}

TEST(AddressSpace, ProtectionFaults)
{
    auto as = makeSpace();
    // Text is not writable.
    EXPECT_EQ(as.write64(0x400000, 1), MemFault::Protection);
    // But readable.
    MemFault fault = MemFault::None;
    as.read64(0x400000, fault);
    EXPECT_EQ(fault, MemFault::None);
}

TEST(AddressSpace, MprotectChangesOutcome)
{
    auto as = makeSpace();
    EXPECT_TRUE(as.protect(0x400000,
                           PermRead | PermWrite | PermExec));
    EXPECT_EQ(as.write64(0x400000, 7), MemFault::None);
    EXPECT_TRUE(as.protect(0x400000, PermRead | PermExec));
    EXPECT_EQ(as.write64(0x400000, 7), MemFault::Protection);
}

TEST(AddressSpace, PokePeekBypassPermissions)
{
    auto as = makeSpace();
    as.poke64(0x400010, 99);
    EXPECT_EQ(as.peek64(0x400010), 99u);
}

TEST(AddressSpace, RegionLookup)
{
    auto as = makeSpace();
    const Region *r = as.findRegion(0x1500);
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->name, "data");
    EXPECT_EQ(r->kind, RegionKind::Data);
    EXPECT_EQ(as.findRegion(0xfff), nullptr);   // just below
    EXPECT_EQ(as.findRegion(0x3000), nullptr);  // just past end
    EXPECT_NE(as.findRegion(0x2ff8), nullptr);  // last word
}

TEST(AddressSpace, UnmapRemovesRegionAndPages)
{
    auto as = makeSpace();
    as.write64(0x1000, 1);
    EXPECT_TRUE(as.unmap(0x1000));
    MemFault fault = MemFault::None;
    as.read64(0x1000, fault);
    EXPECT_EQ(fault, MemFault::Unmapped);
    EXPECT_FALSE(as.unmap(0x1000));
}

TEST(AddressSpace, ForkSharesPages)
{
    auto parent = makeSpace();
    parent.write64(0x1000, 42);
    auto child = parent.fork();
    MemFault fault = MemFault::None;
    EXPECT_EQ(child->read64(0x1000, fault), 42u);
    EXPECT_GE(child->sharedPages(), 1u);
}

TEST(AddressSpace, CowCopyOnChildWrite)
{
    auto parent = makeSpace();
    parent.write64(0x1000, 42);
    auto child = parent.fork();

    EXPECT_EQ(child->cowCopies(RegionKind::Data), 0u);
    child->write64(0x1000, 7);
    EXPECT_EQ(child->cowCopies(RegionKind::Data), 1u);

    // Parent unaffected.
    MemFault fault = MemFault::None;
    EXPECT_EQ(parent.read64(0x1000, fault), 42u);
    EXPECT_EQ(child->read64(0x1000, fault), 7u);
}

TEST(AddressSpace, CowCopyOnParentWriteToo)
{
    auto parent = makeSpace();
    parent.write64(0x1000, 42);
    auto child = parent.fork();
    parent.write64(0x1000, 9);
    EXPECT_EQ(parent.cowCopies(RegionKind::Data), 1u);
    MemFault fault = MemFault::None;
    EXPECT_EQ(child->read64(0x1000, fault), 42u);
}

TEST(AddressSpace, CowCopyCountedOncePerPage)
{
    auto parent = makeSpace();
    parent.write64(0x1000, 1);
    auto child = parent.fork();
    child->write64(0x1000, 2);
    child->write64(0x1008, 3); // same page, already private
    EXPECT_EQ(child->cowCopies(RegionKind::Data), 1u);
}

TEST(AddressSpace, CowAccountsByRegionKind)
{
    auto parent = makeSpace();
    parent.poke64(0x400000, 5); // populate a text page
    parent.write64(0x1000, 1);
    auto child = parent.fork();
    // Patching text (poke bypasses the R/X permission, modelling
    // the patcher's post-mprotect write).
    child->poke64(0x400000, 6);
    EXPECT_EQ(child->cowCopies(RegionKind::Text), 1u);
    EXPECT_EQ(child->cowCopies(RegionKind::Data), 0u);
    EXPECT_EQ(child->cowCopiesTotal(), 1u);
}

TEST(AddressSpace, GrandchildForkChain)
{
    auto p = makeSpace();
    p.write64(0x1000, 1);
    auto c1 = p.fork();
    auto c2 = c1->fork();
    c2->write64(0x1000, 3);
    MemFault fault = MemFault::None;
    EXPECT_EQ(p.read64(0x1000, fault), 1u);
    EXPECT_EQ(c1->read64(0x1000, fault), 1u);
    EXPECT_EQ(c2->read64(0x1000, fault), 3u);
}

TEST(AddressSpace, PrivateBytesAfterCow)
{
    auto parent = makeSpace();
    parent.write64(0x1000, 1);
    auto child = parent.fork();
    EXPECT_EQ(child->privateBytes(), 0u);
    child->write64(0x1000, 2);
    EXPECT_EQ(child->privateBytes(), PageBytes);
}

TEST(AddressSpace, PresentPagesLazy)
{
    auto as = makeSpace();
    EXPECT_EQ(as.presentPages(), 0u);
    as.write64(0x1000, 1);
    EXPECT_EQ(as.presentPages(), 1u);
    as.write64(0x1008, 1); // same page
    EXPECT_EQ(as.presentPages(), 1u);
    as.write64(0x2000, 1); // next page
    EXPECT_EQ(as.presentPages(), 2u);
}

TEST(AddressSpace, FillRandomDeterministicAndInRange)
{
    auto a = makeSpace();
    auto b = makeSpace();
    a.fillRandom(0x1000, 0x2000, 7);
    b.fillRandom(0x1000, 0x2000, 7);
    for (Addr off = 0; off < 0x2000; off += 8)
        ASSERT_EQ(a.peek64(0x1000 + off), b.peek64(0x1000 + off));
    // A different seed diverges.
    auto c = makeSpace();
    c.fillRandom(0x1000, 0x2000, 8);
    int same = 0;
    for (Addr off = 0; off < 0x100; off += 8)
        same += a.peek64(0x1000 + off) == c.peek64(0x1000 + off);
    EXPECT_LT(same, 2);
}

TEST(AddressSpace, FillRandomPartialPage)
{
    auto as = makeSpace();
    as.fillRandom(0x1000, 64, 3); // only the first 8 words
    bool nonzero = false;
    for (Addr off = 0; off < 64; off += 8)
        nonzero |= as.peek64(0x1000 + off) != 0;
    EXPECT_TRUE(nonzero);
    EXPECT_EQ(as.peek64(0x1040), 0u); // beyond the fill
}
