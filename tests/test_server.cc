/**
 * @file
 * End-to-end tests for the OS-layer multi-tenant server: request
 * accounting and tenant churn through dlclose/dlopen, the run
 * checked instruction-by-instruction by the lockstep architectural
 * oracle, and cross-jobs / cross-block-dispatch determinism of the
 * metrics documents (the contract bench/server_traffic relies on).
 */

#include <functional>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "check/lockstep.hh"
#include "common.hh"
#include "os/server.hh"
#include "sim/job_runner.hh"

using namespace dlsim;
using namespace dlsim::bench;

namespace
{

/** A small, fast workload in the fuzz-harness mould. */
workload::WorkloadParams
smallWorkload(std::uint64_t seed)
{
    workload::WorkloadParams wl;
    wl.name = "server-test";
    wl.seed = seed;
    wl.numLibs = 2;
    wl.funcsPerLib = 3;
    wl.libFnInsts = 12;
    wl.unusedImportsPerModule = 4;
    wl.requests = {{"get", 1.0, 1, 2}, {"set", 0.5, 1, 3}};
    wl.stepsPerRequest = 2;
    wl.appWorkInsts = 4;
    wl.calledImports = 4;
    wl.interLibCallProb = 0.2;
    wl.libDataBytes = 1 << 12;
    wl.appDataBytes = 1 << 14;
    wl.hotDataBytes = 512;
    return wl;
}

workload::MachineConfig
serverMachine(bool enhanced, bool blocks)
{
    auto mc = enhanced ? enhancedMachine() : baseMachine();
    // Match bench/server_traffic: the enhanced server retains the
    // ABTB across ASID switches (§3.3), leaving churn correctness
    // to the coherence path (§3.2).
    if (enhanced)
        mc.asidRetention = true;
    mc.core.blockDispatch = blocks;
    return mc;
}

os::ServerParams
smallServer(std::uint64_t requests, std::uint64_t churn,
            std::uint32_t tenants)
{
    os::ServerParams sp;
    sp.workers = 2;
    sp.clients = 3;
    sp.tenants = tenants;
    sp.requests = requests;
    sp.churnPeriod = churn;
    sp.backlog = 2;
    sp.seed = 9;
    return sp;
}

/** Everything an arm of the determinism grid needs to compare. */
struct ServerRun
{
    os::ServerStats server;
    os::KernelStats kernel;
    std::uint64_t latencyCount = 0;
    std::uint64_t coherenceFlushes = 0;
    std::vector<std::uint32_t> generations;
    stats::MetricsRegistry registry;
};

ServerRun
runServer(bool enhanced, bool blocks, std::uint64_t requests,
          std::uint64_t churn, std::uint32_t tenants)
{
    const auto mc = serverMachine(enhanced, blocks);
    auto wl = smallWorkload(7);
    workload::Workbench wb(wl, mc);

    sim::MultiCoreParams mp;
    mp.numCores = 2;
    mp.core = workload::makeCoreParams(mc);
    os::Server server(wb, mp,
                      smallServer(requests, churn, tenants));
    server.run();

    ServerRun run;
    run.server = server.stats();
    run.kernel = server.kernel().stats();
    run.latencyCount = server.latency().count();
    run.coherenceFlushes = server.system().totalCoherenceFlushes();
    for (std::uint32_t t = 0; t < tenants; ++t)
        run.generations.push_back(server.tenantGeneration(t));
    server.reportMetrics(run.registry, "dlsim.os");
    server.system().reportMetrics(run.registry, "dlsim");
    run.registry.histogram("dlsim.os.server.latency",
                           server.latency());
    return run;
}

std::string
renderJson(const std::vector<ServerRun> &arms)
{
    stats::MetricsDocument doc("test_server");
    for (std::size_t i = 0; i < arms.size(); ++i) {
        auto &r = doc.addRun("arm" + std::to_string(i));
        r.registry = arms[i].registry;
    }
    return doc.toJson();
}

} // namespace

TEST(Server, ServesEveryRequestAndClosesEveryConnection)
{
    const auto run = runServer(/*enhanced=*/false,
                               /*blocks=*/false, 48, 0, 2);
    EXPECT_EQ(run.server.requestsServed, 48u);
    EXPECT_EQ(run.latencyCount, 48u);
    EXPECT_EQ(run.server.tenantChurns, 0u);
    // One socket per client, fully closed at drain.
    EXPECT_EQ(run.kernel.connects, 3u);
    EXPECT_EQ(run.kernel.accepts, 3u);
    EXPECT_EQ(run.kernel.connsClosed, 3u);
    EXPECT_EQ(run.kernel.threadsSpawned,
              run.kernel.threadsExited);
    // 32 bytes each way per request, plus nothing else.
    EXPECT_EQ(run.kernel.pipeBytesWritten, 48u * 2 * 32);
    EXPECT_EQ(run.kernel.pipeBytesRead, 48u * 2 * 32);
}

TEST(Server, ChurnReloadsTenantsAndBroadcastsGotResets)
{
    const auto run = runServer(/*enhanced=*/true,
                               /*blocks=*/false, 48, 12, 2);
    EXPECT_EQ(run.server.requestsServed, 48u);
    // 48 requests / churn period 12 = 3 reload opportunities.
    EXPECT_GE(run.server.tenantChurns, 2u);
    EXPECT_GE(run.server.gotResets, run.server.tenantChurns);
    // Round-robin churn advances tenant generations.
    std::uint32_t total_gens = 0;
    for (const auto g : run.generations)
        total_gens += g;
    EXPECT_EQ(total_gens, run.server.tenantChurns);
    // With ASID retention the ABTB survives tenant switches, so
    // the dlclose GOT resets must arrive as coherence flushes
    // (§3.2) — and the skip unit must actually be doing work.
    EXPECT_GT(run.coherenceFlushes, 0u);
    EXPECT_GT(run.registry.counterValue(
                  "dlsim.os.sched.asid_switches"),
              0u);
}

TEST(Server, TenantChurnRunsCleanUnderLockstepChecker)
{
    const auto mc = serverMachine(/*enhanced=*/true,
                                  /*blocks=*/false);
    auto wl = smallWorkload(7);
    workload::Workbench wb(wl, mc);

    sim::MultiCoreParams mp;
    mp.numCores = 2;
    mp.core = workload::makeCoreParams(mc);
    os::Server server(wb, mp, smallServer(36, 9, 2));

    // Attach after construction: worker stacks are mapped eagerly
    // at spawn, so the checkers' forked reference memory is
    // complete; churn-time remaps resync them via onFastForward.
    std::vector<std::unique_ptr<check::LockstepChecker>> checkers;
    for (std::uint32_t i = 0; i < server.system().numCores();
         ++i) {
        checkers.push_back(
            std::make_unique<check::LockstepChecker>(
                server.system().core(i)));
        server.system().core(i).setRetireObserver(
            checkers.back().get());
    }

    ASSERT_NO_THROW(server.run()); // LockstepError on divergence.
    EXPECT_EQ(server.stats().requestsServed, 36u);
    EXPECT_GE(server.stats().tenantChurns, 2u);

    std::uint64_t retires = 0, substitutions = 0;
    for (const auto &c : checkers) {
        retires += c->stats().checkedRetires;
        substitutions += c->stats().verifiedSubstitutions;
    }
    EXPECT_GT(retires, 0u);
    EXPECT_GT(substitutions, 0u)
        << "enhanced run never exercised the skip unit";
}

TEST(Server, MetricsIdenticalAcrossJobsAndBlockDispatch)
{
    // The exact grid bench/server_traffic's byte-identity contract
    // rests on: {base, enhanced} x {blocks off, on}, executed with
    // 1 and with 4 host workers.
    const auto makeGrid = [] {
        std::vector<std::function<ServerRun()>> work;
        for (const bool enhanced : {false, true})
            for (const bool blocks : {false, true})
                work.push_back([enhanced, blocks] {
                    return runServer(enhanced, blocks, 36, 9, 2);
                });
        return work;
    };

    const auto serial = sim::JobRunner(1).run(makeGrid());
    const auto parallel = sim::JobRunner(4).run(makeGrid());
    ASSERT_EQ(serial.size(), parallel.size());
    EXPECT_EQ(renderJson(serial), renderJson(parallel));

    // Block dispatch is a simulator-internal acceleration: for
    // each machine the blocks-on arm must report byte-identical
    // metrics to the blocks-off arm.
    const auto one = [&](const ServerRun &r) {
        return renderJson({r});
    };
    EXPECT_EQ(one(serial[0]), one(serial[1])) << "base arm";
    EXPECT_EQ(one(serial[2]), one(serial[3])) << "enhanced arm";
}
