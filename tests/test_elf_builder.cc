/**
 * @file
 * Unit tests for the object format and the assembler-style module
 * builders: label fixups, offsets, imports, relocations, ifuncs.
 */

#include <gtest/gtest.h>

#include "elf/builder.hh"
#include "elf/module.hh"

using namespace dlsim::elf;
using namespace dlsim::isa;

TEST(FunctionBuilder, OffsetsAndSize)
{
    ModuleBuilder mb("m");
    auto &fb = mb.function("f");
    fb.nop();          // 1 byte
    fb.movImm(1, 5);   // 7 bytes
    fb.ret();          // 1 byte
    const Module m = mb.build();
    const auto &fn = m.functions().at(0);
    ASSERT_EQ(fn.code.size(), 3u);
    EXPECT_EQ(fn.offsets[0], 0u);
    EXPECT_EQ(fn.offsets[1], 1u);
    EXPECT_EQ(fn.offsets[2], 8u);
    EXPECT_EQ(fn.sizeBytes, 9u);
}

TEST(FunctionBuilder, BackwardBranchDisplacement)
{
    ModuleBuilder mb("m");
    auto &fb = mb.function("f");
    Label top = fb.newLabel();
    fb.bind(top);
    fb.nop();
    fb.condBr(CondKind::Ne0, 1, top);
    fb.ret();
    const Module m = mb.build();
    const auto &fn = m.functions().at(0);
    const auto &br = fn.code[1];
    // Branch at offset 1, size 6; target offset 0 => disp = -7.
    EXPECT_EQ(br.imm, -7);
}

TEST(FunctionBuilder, ForwardBranchDisplacement)
{
    ModuleBuilder mb("m");
    auto &fb = mb.function("f");
    Label skip = fb.newLabel();
    fb.condBr(CondKind::Eq0, 2, skip);
    fb.nop();
    fb.nop();
    fb.bind(skip);
    fb.ret();
    const Module m = mb.build();
    const auto &br = m.functions().at(0).code[0];
    // Branch size 6; two nops to skip => disp = +2.
    EXPECT_EQ(br.imm, 2);
}

TEST(FunctionBuilder, LabelAtEndOfFunction)
{
    ModuleBuilder mb("m");
    auto &fb = mb.function("f");
    Label end = fb.newLabel();
    fb.jmp(end);
    fb.nop();
    fb.bind(end);
    const Module m = mb.build();
    const auto &jmp = m.functions().at(0).code[0];
    EXPECT_EQ(jmp.imm, 1); // skip the 1-byte nop
}

TEST(ModuleBuilder, ImportsDeduplicatedInOrder)
{
    ModuleBuilder mb("m");
    auto &fb = mb.function("f");
    fb.callExternal("write");
    fb.callExternal("read");
    fb.callExternal("write"); // duplicate
    fb.ret();
    const Module m = mb.build();
    ASSERT_EQ(m.imports().size(), 2u);
    EXPECT_EQ(m.imports()[0], "write");
    EXPECT_EQ(m.imports()[1], "read");
}

TEST(ModuleBuilder, DeclareImportReservesSparseSlot)
{
    // Paper §2: PLT entries exist in definition order even for
    // functions never called.
    ModuleBuilder mb("m");
    mb.declareImport("unused0");
    mb.declareImport("unused1");
    auto &fb = mb.function("f");
    fb.callExternal("used");
    fb.ret();
    const Module m = mb.build();
    ASSERT_EQ(m.imports().size(), 3u);
    EXPECT_EQ(m.imports()[0], "unused0");
    EXPECT_EQ(m.imports()[2], "used");
}

TEST(ModuleBuilder, RelocationsRecorded)
{
    ModuleBuilder mb("m");
    auto &f = mb.function("f");
    f.callExternal("ext");
    f.ret();
    auto &g = mb.function("g");
    g.callLocal("f");
    g.jmpExternal("ext2");
    const Module m = mb.build();

    ASSERT_EQ(m.relocations().size(), 3u);
    EXPECT_EQ(m.relocations()[0].kind, RelocKind::PltCall);
    EXPECT_EQ(m.relocations()[1].kind, RelocKind::LocalCall);
    EXPECT_EQ(m.relocations()[1].targetIndex, 0u); // f
    EXPECT_EQ(m.relocations()[2].kind, RelocKind::PltJump);
}

TEST(ModuleBuilder, DataAndFuncAddrRelocations)
{
    ModuleBuilder mb("m");
    auto &f = mb.function("f");
    f.movDataAddr(4, 0x80);
    f.movFuncAddr(5, "target");
    f.ret();
    const Module m = mb.build();
    ASSERT_EQ(m.relocations().size(), 2u);
    EXPECT_EQ(m.relocations()[0].kind, RelocKind::DataAddr);
    EXPECT_EQ(m.relocations()[0].addend, 0x80);
    EXPECT_EQ(m.relocations()[1].kind, RelocKind::FuncAddrAbs);
    EXPECT_EQ(m.relocations()[1].symbol, "target");
}

TEST(ModuleBuilder, EveryFunctionExported)
{
    ModuleBuilder mb("m");
    mb.function("a").ret();
    mb.function("b").ret();
    const Module m = mb.build();
    EXPECT_EQ(m.exports().count("a"), 1u);
    EXPECT_EQ(m.exports().count("b"), 1u);
}

TEST(ModuleBuilder, IfuncExport)
{
    ModuleBuilder mb("m");
    mb.function("memcpy_sse").ret();
    mb.function("memcpy_avx").ret();
    mb.exportIfunc("memcpy", {"memcpy_sse", "memcpy_avx"});
    const Module m = mb.build();
    const auto &exp = m.exports().at("memcpy");
    EXPECT_TRUE(exp.ifunc);
    ASSERT_EQ(exp.ifuncCandidates.size(), 2u);
}

TEST(ModuleBuilder, IfuncWithMissingCandidateThrows)
{
    ModuleBuilder mb("m");
    mb.function("v0").ret();
    mb.exportIfunc("sym", {"v0", "missing"});
    EXPECT_THROW(mb.build(), std::invalid_argument);
}

TEST(ModuleBuilder, LocalCallToUndefinedThrows)
{
    ModuleBuilder mb("m");
    mb.function("f").callLocal("nowhere");
    EXPECT_THROW(mb.build(), std::invalid_argument);
}

TEST(ModuleBuilder, FunctionBuilderReferenceStable)
{
    // FunctionBuilder references must survive creating further
    // functions (the generator interleaves emission).
    ModuleBuilder mb("m");
    auto &f = mb.function("f");
    for (int i = 0; i < 100; ++i)
        mb.function("g" + std::to_string(i)).ret();
    f.ret(); // still valid
    const Module m = mb.build();
    EXPECT_EQ(m.functions().size(), 101u);
}

TEST(Module, TextSizeAccounts16ByteAlignment)
{
    ModuleBuilder mb("m");
    mb.function("a").nop(); // 1 byte -> rounds to 16 for next fn
    mb.function("b").nop();
    const Module m = mb.build();
    EXPECT_EQ(m.textSize(), 17u); // 16 (aligned a) + 1
}

TEST(Module, FindFunction)
{
    ModuleBuilder mb("m");
    mb.function("x").ret();
    const Module m = mb.build();
    std::uint32_t idx = 99;
    EXPECT_TRUE(m.findFunction("x", idx));
    EXPECT_EQ(idx, 0u);
    EXPECT_FALSE(m.findFunction("y", idx));
}
