/**
 * @file
 * Tests for the performance-counter block: PKI normalisation,
 * interval subtraction, and formatting.
 */

#include <gtest/gtest.h>

#include "cpu/perf_counters.hh"

using dlsim::cpu::PerfCounters;

TEST(PerfCounters, PkiNormalisation)
{
    PerfCounters c;
    c.instructions = 2000;
    c.l1iMisses = 25;
    EXPECT_DOUBLE_EQ(c.pki(c.l1iMisses), 12.5);
}

TEST(PerfCounters, PkiWithZeroInstructions)
{
    PerfCounters c;
    EXPECT_DOUBLE_EQ(c.pki(123), 0.0);
    EXPECT_DOUBLE_EQ(c.ipc(), 0.0);
}

TEST(PerfCounters, Ipc)
{
    PerfCounters c;
    c.instructions = 300;
    c.cycles = 600;
    EXPECT_DOUBLE_EQ(c.ipc(), 0.5);
}

TEST(PerfCounters, IntervalSubtraction)
{
    PerfCounters a, b;
    a.instructions = 100;
    a.cycles = 200;
    a.trampolineInsts = 10;
    a.trampolineJmps = 8;
    a.skippedTrampolines = 4;
    a.loads = 30;
    a.stores = 20;
    a.branches = 15;
    a.mispredicts = 3;
    a.l1iMisses = 7;
    a.itlbMisses = 2;
    a.resolverCalls = 1;

    b = a;
    b.instructions = 40;
    b.cycles = 90;
    b.trampolineInsts = 4;

    const auto d = a - b;
    EXPECT_EQ(d.instructions, 60u);
    EXPECT_EQ(d.cycles, 110u);
    EXPECT_EQ(d.trampolineInsts, 6u);
    EXPECT_EQ(d.loads, 0u);
    EXPECT_EQ(d.mispredicts, 0u);
}

TEST(PerfCounters, ToStringMentionsKeyRows)
{
    PerfCounters c;
    c.instructions = 1000;
    c.cycles = 2000;
    c.trampolineInsts = 12;
    const auto s = c.toString();
    EXPECT_NE(s.find("trampoline insts PKI"), std::string::npos);
    EXPECT_NE(s.find("12.00"), std::string::npos);
    EXPECT_NE(s.find("IPC 0.50"), std::string::npos);
}
