/**
 * @file
 * Unit tests for the ABTB table: the trampoline-to-function mapping
 * at the heart of the paper's mechanism (§3.1, §5.3).
 */

#include <gtest/gtest.h>

#include "core/abtb.hh"

using namespace dlsim::core;

TEST(Abtb, MissThenHit)
{
    Abtb abtb(AbtbParams{16, 4});
    EXPECT_FALSE(abtb.lookup(0x1000).has_value());
    abtb.insert(0x1000, 0x7f0000002000, 0x5000);
    const auto e = abtb.lookup(0x1000);
    ASSERT_TRUE(e.has_value());
    EXPECT_EQ(e->function, 0x7f0000002000u);
    EXPECT_EQ(e->gotAddr, 0x5000u);
}

TEST(Abtb, InsertUpdatesExisting)
{
    Abtb abtb(AbtbParams{16, 4});
    abtb.insert(0x1000, 0xa, 0x1);
    abtb.insert(0x1000, 0xb, 0x2);
    EXPECT_EQ(abtb.lookup(0x1000)->function, 0xbu);
    EXPECT_EQ(abtb.occupancy(), 1u);
}

TEST(Abtb, HardwareCostTwelveBytesPerEntry)
{
    // Paper §5.3: 6B call target + 6B function address per entry;
    // "just 16 entries (192 bytes)". (The paper's 1.5KB figure for
    // 256 entries assumes the offset encoding its footnote 3
    // declines to count; raw cost is 256 x 12B = 3KB.)
    EXPECT_EQ(Abtb(AbtbParams{16, 4}).sizeBytes(), 192u);
    EXPECT_EQ(Abtb(AbtbParams{256, 4}).sizeBytes(), 3072u);
    EXPECT_EQ(AbtbEntryBytes, 12u);
}

TEST(Abtb, FlushAllEmpties)
{
    Abtb abtb(AbtbParams{16, 4});
    abtb.insert(0x10, 1, 2);
    abtb.insert(0x20, 3, 4);
    EXPECT_EQ(abtb.occupancy(), 2u);
    abtb.flushAll();
    EXPECT_EQ(abtb.occupancy(), 0u);
    EXPECT_FALSE(abtb.lookup(0x10).has_value());
}

TEST(Abtb, LruEvictionWithinSet)
{
    Abtb abtb(AbtbParams{4, 2}); // 2 sets x 2 ways
    // Trampolines are 16-byte aligned; same set every 2*16 bytes.
    abtb.insert(0x00, 1, 0);
    abtb.insert(0x40, 2, 0);
    abtb.lookup(0x00); // refresh
    abtb.insert(0x80, 3, 0); // evicts 0x40
    EXPECT_TRUE(abtb.lookup(0x00).has_value());
    EXPECT_FALSE(abtb.lookup(0x40).has_value());
    EXPECT_TRUE(abtb.lookup(0x80).has_value());
    EXPECT_EQ(abtb.evictions(), 1u);
}

TEST(Abtb, DeterministicVictimAndLruOrdering)
{
    // Victim selection must be deterministic: first invalid way,
    // else the true LRU. Filling an emptied set therefore causes no
    // evictions, and overflow evicts entries strictly in insertion-
    // age order.
    Abtb abtb(AbtbParams{4, 2}); // 2 sets x 2 ways
    abtb.insert(0x00, 1, 0);
    abtb.insert(0x40, 2, 0);
    abtb.flushAll();
    abtb.insert(0x00, 1, 0); // refill the empty set
    abtb.insert(0x40, 2, 0);
    EXPECT_EQ(abtb.evictions(), 0u);
    abtb.insert(0x80, 3, 0); // evicts 0x00 (oldest)
    EXPECT_EQ(abtb.evictions(), 1u);
    EXPECT_FALSE(abtb.lookup(0x00).has_value());
    ASSERT_TRUE(abtb.lookup(0x40).has_value());
    abtb.insert(0xc0, 4, 0); // evicts 0x80: 0x40 was refreshed
    EXPECT_EQ(abtb.evictions(), 2u);
    EXPECT_FALSE(abtb.lookup(0x80).has_value());
    EXPECT_TRUE(abtb.lookup(0x40).has_value());
    EXPECT_TRUE(abtb.lookup(0xc0).has_value());
}

TEST(Abtb, AsidTaggingIsolatesProcesses)
{
    Abtb abtb(AbtbParams{16, 4});
    abtb.insert(0x1000, 0xaaa, 0, /*asid=*/1);
    EXPECT_FALSE(abtb.lookup(0x1000, 2).has_value());
    ASSERT_TRUE(abtb.lookup(0x1000, 1).has_value());
    EXPECT_EQ(abtb.lookup(0x1000, 1)->function, 0xaaau);
}

TEST(Abtb, StatsAccounting)
{
    Abtb abtb(AbtbParams{16, 4});
    abtb.lookup(0x1);
    abtb.insert(0x1, 2, 3);
    abtb.lookup(0x1);
    EXPECT_EQ(abtb.lookups(), 2u);
    EXPECT_EQ(abtb.hits(), 1u);
    EXPECT_EQ(abtb.inserts(), 1u);
    abtb.clearStats();
    EXPECT_EQ(abtb.lookups(), 0u);
    // Contents survive a stats clear.
    EXPECT_TRUE(abtb.lookup(0x1).has_value());
}

/** Capacity sweep mirroring Fig. 5's ABTB sizes. */
class AbtbCapacity : public ::testing::TestWithParam<int>
{
};

TEST_P(AbtbCapacity, HoldsUpToCapacityDistinctTrampolines)
{
    const int entries = GetParam();
    Abtb abtb(AbtbParams{
        static_cast<std::uint32_t>(entries),
        static_cast<std::uint32_t>(std::min(entries, 4))});
    // Insert exactly `entries` trampolines at stride 16 so they
    // spread across sets uniformly.
    for (int i = 0; i < entries; ++i)
        abtb.insert(0x10000 + 16 * i, i, 0);
    int present = 0;
    for (int i = 0; i < entries; ++i)
        present += abtb.lookup(0x10000 + 16 * i).has_value();
    EXPECT_EQ(present, entries);
    EXPECT_EQ(abtb.evictions(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Fig5Sizes, AbtbCapacity,
                         ::testing::Values(1, 2, 4, 8, 16, 32, 64,
                                           128, 256, 512, 1024));
