/**
 * @file
 * Tests for the Image decode cache: first decode misses and
 * populates, repeat decodes hit, the software patcher's
 * decodeMutable invalidates the patched va, dlopen/dlclose rebuild
 * the cache wholesale, and a snapshot restore never serves slots
 * cached before the restore.
 */

#include <vector>

#include <gtest/gtest.h>

#include "elf/builder.hh"
#include "linker/loader.hh"
#include "snapshot/serializer.hh"

using namespace dlsim;
using namespace dlsim::linker;

namespace
{

std::unique_ptr<Image>
makeImage(Loader &loader)
{
    elf::ModuleBuilder app("app");
    app.setDataSize(4096);
    auto &f = app.function("f");
    f.nop();
    f.movImm(1, 5);
    f.callExternal("g");
    f.ret();

    elf::ModuleBuilder lib("lib");
    auto &g = lib.function("g");
    g.ret();

    return loader.load(app.build(), {lib.build()});
}

} // namespace

TEST(DecodeCache, FirstDecodeMissesThenHits)
{
    Loader loader;
    auto image = makeImage(loader);
    const Addr f = image->symbolAddress("f");

    const auto misses0 = image->decodeCacheMisses();
    const Slot *first = image->decode(f);
    ASSERT_NE(first, nullptr);
    EXPECT_EQ(image->decodeCacheMisses(), misses0 + 1);

    const auto hits0 = image->decodeCacheHits();
    const Slot *second = image->decode(f);
    EXPECT_EQ(second, first);
    EXPECT_EQ(image->decodeCacheHits(), hits0 + 1);
    EXPECT_EQ(image->decodeCacheMisses(), misses0 + 1);
}

TEST(DecodeCache, NonCodeAddressAlwaysMisses)
{
    Loader loader;
    auto image = makeImage(loader);
    const Addr f = image->symbolAddress("f");

    // f+2 is mid-instruction: not decodable, never cached.
    const auto misses0 = image->decodeCacheMisses();
    const auto hits0 = image->decodeCacheHits();
    EXPECT_EQ(image->decode(f + 2), nullptr);
    EXPECT_EQ(image->decode(f + 2), nullptr);
    EXPECT_EQ(image->decodeCacheMisses(), misses0 + 2);
    EXPECT_EQ(image->decodeCacheHits(), hits0);
}

TEST(DecodeCache, DecodeMutableInvalidatesCachedSlot)
{
    Loader loader;
    auto image = makeImage(loader);
    const Addr f = image->symbolAddress("f");

    ASSERT_NE(image->decode(f), nullptr); // miss, populates
    ASSERT_NE(image->decode(f), nullptr); // hit

    // The patcher's mutable access drops the cached translation.
    Slot *slot = image->decodeMutable(f);
    ASSERT_NE(slot, nullptr);

    const auto misses0 = image->decodeCacheMisses();
    const Slot *redecoded = image->decode(f);
    ASSERT_NE(redecoded, nullptr);
    EXPECT_EQ(redecoded, slot);
    EXPECT_EQ(image->decodeCacheMisses(), misses0 + 1);

    // Re-populated: the next decode hits again.
    const auto hits0 = image->decodeCacheHits();
    EXPECT_NE(image->decode(f), nullptr);
    EXPECT_EQ(image->decodeCacheHits(), hits0 + 1);
}

TEST(DecodeCache, PatcherRewriteIsVisibleAfterInvalidation)
{
    Loader loader;
    auto image = makeImage(loader);
    const Addr f = image->symbolAddress("f");

    const Slot *before = image->decode(f);
    ASSERT_NE(before, nullptr);
    const auto original_op = before->inst.op;

    Slot *patched = image->decodeMutable(f);
    ASSERT_NE(patched, nullptr);
    patched->inst.op = isa::Opcode::MovImm;

    const Slot *after = image->decode(f);
    ASSERT_NE(after, nullptr);
    EXPECT_EQ(after->inst.op, isa::Opcode::MovImm);
    EXPECT_NE(after->inst.op, original_op);
}

TEST(DecodeCache, DlcloseDropsCachedModuleSlots)
{
    Loader loader;
    auto image = makeImage(loader);
    const Addr f = image->symbolAddress("f");
    const Addr g = image->symbolAddress("g");

    ASSERT_NE(image->decode(f), nullptr);
    ASSERT_NE(image->decode(g), nullptr);
    ASSERT_NE(image->decode(g), nullptr); // cached

    loader.dlclose(*image, "lib");

    // The unloaded module's slots are gone — not served stale from
    // the cache — and the survivors re-populate.
    EXPECT_EQ(image->decode(g), nullptr);
    const Slot *still = image->decode(f);
    ASSERT_NE(still, nullptr);
    const auto hits0 = image->decodeCacheHits();
    EXPECT_EQ(image->decode(f), still);
    EXPECT_EQ(image->decodeCacheHits(), hits0 + 1);
}

TEST(DecodeCache, SnapshotRestoreDropsStaleCachedSlots)
{
    Loader loader;
    auto image = makeImage(loader);
    const Addr f = image->symbolAddress("f");
    const Addr g = image->symbolAddress("g");

    // Populate the cache, then checkpoint the image.
    const Slot *before = image->decode(f);
    ASSERT_NE(before, nullptr);
    const auto original_op = before->inst.op;
    ASSERT_NE(image->decode(g), nullptr);

    snapshot::Serializer s;
    s.beginSection("image");
    image->save(s);
    s.endSection();
    const auto bytes = s.finish();

    // Mutate past the checkpoint: patch f's first instruction and
    // unload the library. Both paths invalidate their cache
    // entries, so the cache now reflects the *mutated* image.
    Slot *patched = image->decodeMutable(f);
    ASSERT_NE(patched, nullptr);
    patched->inst.op = isa::Opcode::MovImm;
    loader.dlclose(*image, "lib");
    ASSERT_EQ(image->decode(f)->inst.op, isa::Opcode::MovImm);
    ASSERT_EQ(image->decode(g), nullptr);

    // Restore. Every translation cached against the mutated image
    // must be gone: f decodes to the snapshotted opcode, g is
    // decodable again.
    snapshot::Deserializer d(bytes.data(), bytes.size());
    d.enterSection("image");
    image->load(d);
    d.leaveSection();

    const Slot *restored = image->decode(f);
    ASSERT_NE(restored, nullptr);
    EXPECT_EQ(restored->inst.op, original_op);
    const Slot *g_restored = image->decode(g);
    ASSERT_NE(g_restored, nullptr);
    EXPECT_EQ(g_restored->inst.op, isa::Opcode::Ret);

    // And the cache re-populates normally after the restore.
    const auto hits0 = image->decodeCacheHits();
    EXPECT_EQ(image->decode(f), restored);
    EXPECT_EQ(image->decodeCacheHits(), hits0 + 1);
}

TEST(DecodeCache, ManyDistinctVasStayConsistent)
{
    Loader loader;
    elf::ModuleBuilder app("app");
    app.setDataSize(4096);
    auto &f = app.function("f");
    for (int i = 0; i < 200; ++i)
        f.movImm(1, i);
    f.ret();
    auto image = loader.load(app.build(), {});

    // Decode every slot of the function once (populating the
    // cache), then again: the second pass must be all hits.
    std::vector<const Slot *> first_pass;
    Addr va = image->symbolAddress("f");
    while (true) {
        const Slot *s = image->decode(va);
        ASSERT_NE(s, nullptr);
        first_pass.push_back(s);
        if (s->inst.op == isa::Opcode::Ret)
            break;
        va += s->inst.size;
    }
    ASSERT_GE(first_pass.size(), 201u);

    const auto misses0 = image->decodeCacheMisses();
    for (const Slot *slot : first_pass)
        EXPECT_EQ(image->decode(slot->va), slot);
    EXPECT_EQ(image->decodeCacheMisses(), misses0);
}
