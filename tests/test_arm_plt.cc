/**
 * @file
 * Tests for ARM-style trampolines (paper Fig. 2b): PLT geometry,
 * lazy resolution through the three-instruction sequence, the
 * pattern-window population heuristic, and the skip path.
 */

#include <gtest/gtest.h>

#include "core/skip_unit.hh"
#include "sim_fixture.hh"
#include "workload/engine.hh"

using namespace dlsim;
using namespace dlsim::isa;
using dlsim::test::Sim;

namespace
{

elf::Module
callerExe(int sites = 1)
{
    elf::ModuleBuilder mb("app");
    mb.setDataSize(4096);
    auto &f = mb.function("f");
    for (int i = 0; i < sites; ++i)
        f.callExternal("libfn");
    f.ret();
    return mb.build();
}

elf::Module
lib()
{
    elf::ModuleBuilder mb("lib");
    auto &f = mb.function("libfn");
    f.aluImm(AluKind::Add, RegRet, RegArg0, 9);
    f.ret();
    return mb.build();
}

linker::LoaderOptions
armOpts()
{
    linker::LoaderOptions o;
    o.pltStyle = linker::PltStyle::Arm;
    return o;
}

cpu::CoreParams
armEnhanced()
{
    cpu::CoreParams p;
    p.skipUnitEnabled = true;
    p.skip.patternWindow = 2; // the two address-materialisers
    return p;
}

} // namespace

TEST(ArmPlt, EntryGeometry)
{
    Sim sim(callerExe(), {lib()}, {}, armOpts());
    const auto &exe = sim.image->moduleAt(0);
    EXPECT_EQ(exe.pltStride, linker::ArmPltEntryBytes);
    EXPECT_EQ(exe.lazyEntryOffset, 12u);

    // mov r12, #got; add r12, r12, #0; ldr pc, [r12].
    const Addr entry = exe.pltEntryVas[0];
    const auto *mov = sim.image->decode(entry);
    ASSERT_NE(mov, nullptr);
    EXPECT_EQ(mov->inst.op, Opcode::MovImm);
    EXPECT_EQ(mov->inst.size, 4);
    const auto *add = sim.image->decode(entry + 4);
    ASSERT_NE(add, nullptr);
    EXPECT_EQ(add->inst.op, Opcode::IntAlu);
    const auto *ldr = sim.image->decode(entry + 8);
    ASSERT_NE(ldr, nullptr);
    EXPECT_EQ(ldr->inst.op, Opcode::JmpIndMem);
    EXPECT_TRUE(ldr->flags & linker::FlagPltJmp);
    EXPECT_EQ(ldr->pltIndex, 0);
}

TEST(ArmPlt, LazyResolutionWorks)
{
    Sim sim(callerExe(), {lib()}, {}, armOpts());
    EXPECT_EQ(sim.call("f", 1).returnValue, 10u);
    EXPECT_EQ(sim.linker->resolutionCount(), 1u);
    EXPECT_EQ(sim.call("f", 2).returnValue, 11u);
    EXPECT_EQ(sim.linker->resolutionCount(), 1u);
}

TEST(ArmPlt, TrampolineCostsThreeInstructions)
{
    Sim sim(callerExe(), {lib()}, {}, armOpts());
    sim.call("f", 0); // resolve
    sim.core->clearStats();
    sim.call("f", 0);
    // Steady state: mov + add + ldr per call (vs 1 for x86).
    EXPECT_EQ(sim.core->counters().trampolineInsts, 3u);
    EXPECT_EQ(sim.core->counters().trampolineJmps, 1u);
}

TEST(ArmPlt, SkipUnitWithWindowSkipsWholeSequence)
{
    Sim sim(callerExe(), {lib()}, armEnhanced(), armOpts());
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(sim.call("f", i).returnValue, i + 9u);
    sim.core->clearStats();
    const auto r = sim.call("f", 5);
    EXPECT_EQ(r.returnValue, 14u);
    // All three trampoline instructions elided.
    EXPECT_EQ(sim.core->counters().trampolineInsts, 0u);
    EXPECT_EQ(sim.core->counters().skippedTrampolines, 1u);
}

TEST(ArmPlt, ExactPatternWindowZeroDoesNotPopulate)
{
    // The paper's x86-exact heuristic cannot memoize ARM
    // trampolines: the prologue breaks the adjacency.
    cpu::CoreParams params;
    params.skipUnitEnabled = true;
    params.skip.patternWindow = 0;
    Sim sim(callerExe(), {lib()}, params, armOpts());
    for (int i = 0; i < 5; ++i)
        sim.call("f", i);
    EXPECT_EQ(sim.core->skipUnit()->stats().populations, 0u);
    EXPECT_EQ(sim.core->counters().skippedTrampolines, 0u);
}

TEST(ArmPlt, ArchitecturalEquivalenceWithBase)
{
    Sim base(callerExe(3), {lib()}, {}, armOpts());
    Sim enh(callerExe(3), {lib()}, armEnhanced(), armOpts());
    for (std::uint64_t a = 0; a < 24; ++a) {
        EXPECT_EQ(base.call("f", a).returnValue,
                  enh.call("f", a).returnValue);
    }
    EXPECT_GT(enh.core->counters().skippedTrampolines, 0u);
}

TEST(ArmPlt, WindowBrokenByInterveningStore)
{
    // A store between the call and the indirect jump must clear
    // the pattern (it could alias the GOT slot).
    core::SkipUnitParams params;
    params.patternWindow = 2;
    core::TrampolineSkipUnit unit(params);
    unit.retireControl(Opcode::CallRel, 0x1000, 0);
    unit.retireOther();
    unit.retireStore(0x7fff0000);
    unit.retireControl(Opcode::JmpIndMem, 0x2000, 0x3000);
    EXPECT_EQ(unit.stats().populations, 0u);
}

TEST(ArmPlt, WindowExhaustedByTooManyInstructions)
{
    core::SkipUnitParams params;
    params.patternWindow = 2;
    core::TrampolineSkipUnit unit(params);
    unit.retireControl(Opcode::CallRel, 0x1000, 0);
    unit.retireOther();
    unit.retireOther();
    unit.retireOther(); // third simple instruction: window over
    unit.retireControl(Opcode::JmpIndMem, 0x2000, 0x3000);
    EXPECT_EQ(unit.stats().populations, 0u);
}

TEST(ArmPlt, WindowAllowsUpToConfiguredInstructions)
{
    core::SkipUnitParams params;
    params.patternWindow = 2;
    core::TrampolineSkipUnit unit(params);
    unit.retireControl(Opcode::CallRel, 0x1000, 0);
    unit.retireOther();
    unit.retireOther();
    unit.retireControl(Opcode::JmpIndMem, 0x2000, 0x3000);
    EXPECT_EQ(unit.stats().populations, 1u);
    EXPECT_EQ(unit.substituteTarget(0x1000)->function, 0x2000u);
}

TEST(ArmPlt, WorkbenchEndToEnd)
{
    // The full workload engine on ARM-style trampolines.
    workload::WorkloadParams wl;
    wl.name = "arm-tiny";
    wl.seed = 11;
    wl.numLibs = 2;
    wl.funcsPerLib = 6;
    wl.requests = {{"A", 1.0, 1, 2}};
    wl.stepsPerRequest = 6;
    wl.calledImports = 8;
    wl.libDataBytes = 4096;
    wl.appDataBytes = 8192;

    workload::MachineConfig base;
    base.pltStyle = linker::PltStyle::Arm;
    workload::MachineConfig enh = base;
    enh.enhanced = true;

    workload::Workbench wb(wl, base), we(wl, enh);
    for (int i = 0; i < 60; ++i) {
        wb.runRequest();
        we.runRequest();
    }
    for (int r = 0; r < isa::NumRegs; ++r) {
        EXPECT_EQ(wb.core().state().regs[r],
                  we.core().state().regs[r]);
    }
    EXPECT_GT(we.core().counters().skippedTrampolines, 0u);
    // ARM trampolines retire 3 instructions each on the base arm.
    const auto &cb = wb.core().counters();
    EXPECT_EQ(cb.trampolineInsts % 1, 0u);
    EXPECT_GE(cb.trampolineInsts, cb.trampolineJmps * 3);
}
