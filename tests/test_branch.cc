/**
 * @file
 * Unit tests for the branch-prediction structures: BTB, direction
 * predictors, return address stack, and the predictor facade whose
 * resolve() path the ABTB mechanism trains with substituted targets.
 */

#include <gtest/gtest.h>

#include "branch/btb.hh"
#include "branch/direction.hh"
#include "branch/predictor.hh"
#include "branch/ras.hh"
#include "isa/instruction.hh"

using namespace dlsim::branch;
using namespace dlsim::isa;

TEST(Btb, MissThenHit)
{
    Btb btb(BtbParams{64, 4});
    EXPECT_FALSE(btb.lookup(0x1000).has_value());
    btb.update(0x1000, 0x2000);
    const auto t = btb.lookup(0x1000);
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(*t, 0x2000u);
}

TEST(Btb, UpdateOverwritesTarget)
{
    // This is exactly how the ABTB redirects a library call: the
    // entry for the call site is retrained from the trampoline
    // address to the function address.
    Btb btb(BtbParams{64, 4});
    btb.update(0x1000, 0x2000); // trampoline
    btb.update(0x1000, 0x7f0000001000); // library function
    EXPECT_EQ(*btb.lookup(0x1000), 0x7f0000001000u);
}

TEST(Btb, LruWithinSet)
{
    Btb btb(BtbParams{4, 2}); // 2 sets x 2 ways
    // pcs spaced by 2 sets * 4 bytes map to the same set.
    btb.update(0x00, 1);
    btb.update(0x08, 2);
    btb.lookup(0x00); // refresh
    btb.update(0x10, 3); // evicts 0x08
    EXPECT_TRUE(btb.lookup(0x00).has_value());
    EXPECT_FALSE(btb.lookup(0x08).has_value());
    EXPECT_TRUE(btb.lookup(0x10).has_value());
}

TEST(Btb, InvalidateSingleAndAll)
{
    Btb btb(BtbParams{64, 4});
    btb.update(0x1000, 1);
    btb.update(0x2000, 2);
    btb.invalidate(0x1000);
    EXPECT_FALSE(btb.lookup(0x1000).has_value());
    EXPECT_TRUE(btb.lookup(0x2000).has_value());
    btb.invalidateAll();
    EXPECT_FALSE(btb.lookup(0x2000).has_value());
}

TEST(Btb, Stats)
{
    Btb btb(BtbParams{64, 4});
    btb.lookup(0x1000);
    btb.update(0x1000, 2);
    btb.lookup(0x1000);
    EXPECT_EQ(btb.lookups(), 2u);
    EXPECT_EQ(btb.hits(), 1u);
    EXPECT_EQ(btb.misses(), 1u);
}

TEST(Bimodal, LearnsStableDirection)
{
    BimodalPredictor p(1024);
    for (int i = 0; i < 4; ++i)
        p.update(0x40, true);
    EXPECT_TRUE(p.predict(0x40));
    for (int i = 0; i < 4; ++i)
        p.update(0x40, false);
    EXPECT_FALSE(p.predict(0x40));
}

TEST(Bimodal, HysteresisSurvivesOneFlip)
{
    BimodalPredictor p(1024);
    for (int i = 0; i < 4; ++i)
        p.update(0x40, true);
    p.update(0x40, false); // single anomaly
    EXPECT_TRUE(p.predict(0x40));
}

TEST(Gshare, LearnsAlternatingPatternBimodalCannot)
{
    GsharePredictor g(4096, 8);
    BimodalPredictor b(4096);
    int g_correct = 0, b_correct = 0;
    bool dir = false;
    for (int i = 0; i < 2000; ++i) {
        dir = !dir; // strict alternation
        g_correct += g.predict(0x80) == dir;
        b_correct += b.predict(0x80) == dir;
        g.update(0x80, dir);
        b.update(0x80, dir);
    }
    EXPECT_GT(g_correct, 1800); // history captures the pattern
    EXPECT_LT(b_correct, 1200); // bimodal cannot
}

TEST(Direction, FactoryAndUnknownName)
{
    EXPECT_NE(makeDirectionPredictor("bimodal"), nullptr);
    EXPECT_NE(makeDirectionPredictor("gshare"), nullptr);
    EXPECT_THROW(makeDirectionPredictor("oracle"),
                 std::invalid_argument);
}

TEST(Ras, LifoOrder)
{
    ReturnAddressStack ras(8);
    ras.push(1);
    ras.push(2);
    EXPECT_EQ(*ras.pop(), 2u);
    EXPECT_EQ(*ras.pop(), 1u);
    EXPECT_FALSE(ras.pop().has_value());
}

TEST(Ras, OverflowWrapsKeepingNewest)
{
    ReturnAddressStack ras(2);
    ras.push(1);
    ras.push(2);
    ras.push(3); // overwrites 1
    EXPECT_EQ(*ras.pop(), 3u);
    EXPECT_EQ(*ras.pop(), 2u);
    EXPECT_FALSE(ras.pop().has_value());
}

TEST(Ras, Clear)
{
    ReturnAddressStack ras(4);
    ras.push(1);
    ras.clear();
    EXPECT_FALSE(ras.pop().has_value());
}

TEST(Predictor, CallPredictionViaBtbAndRasForReturn)
{
    BranchPredictor bp(PredictorParams{});
    const auto call = makeCallRel(0x100);
    const Addr pc = 0x1000;

    // Cold call: predicts fall-through (no BTB entry).
    EXPECT_EQ(bp.predictNext(call, pc), pc + call.size);
    bp.resolve(call, pc, true, 0x2000);
    // Warm call: predicted from the BTB.
    EXPECT_EQ(bp.predictNext(call, pc), 0x2000u);

    // The matching return pops the RAS (two calls were pushed).
    const auto ret = makeRet();
    EXPECT_EQ(bp.predictNext(ret, 0x2000), pc + call.size);
    EXPECT_EQ(bp.predictNext(ret, 0x2000), pc + call.size);
    // RAS exhausted: falls through.
    EXPECT_EQ(bp.predictNext(ret, 0x2000), 0x2000u + ret.size);
}

TEST(Predictor, CondBrUsesDirectionThenBtb)
{
    // Bimodal keeps the per-pc direction independent of global
    // history, making the expected predictions exact.
    PredictorParams params;
    params.direction = "bimodal";
    BranchPredictor bp(params);
    const auto br = makeCondBr(CondKind::Ne0, 1, 0x40);
    const Addr pc = 0x3000;
    const Addr target = pc + br.size + 0x40;

    // Train taken a few times.
    for (int i = 0; i < 4; ++i)
        bp.resolve(br, pc, true, target);
    EXPECT_EQ(bp.predictNext(br, pc), target);

    // Train not-taken.
    for (int i = 0; i < 4; ++i)
        bp.resolve(br, pc, false, pc + br.size);
    EXPECT_EQ(bp.predictNext(br, pc), pc + br.size);
}

TEST(Predictor, ContextSwitchClearsRas)
{
    BranchPredictor bp(PredictorParams{});
    const auto call = makeCallRel(0);
    bp.predictNext(call, 0x1000); // pushes RAS
    bp.contextSwitch();
    const auto ret = makeRet();
    EXPECT_EQ(bp.predictNext(ret, 0x5000), 0x5000u + ret.size);
}

#include "branch/indirect.hh"

TEST(Indirect, ColdMissThenHit)
{
    IndirectPredictorParams params;
    params.enabled = true;
    IndirectPredictor ip(params);
    EXPECT_FALSE(ip.predict(0x1000).has_value());
    ip.update(0x1000, 0x2000);
    const auto t = ip.predict(0x1000);
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(*t, 0x2000u);
}

TEST(Indirect, PathHistoryDisambiguatesPolymorphicTargets)
{
    // A virtual-call site alternating between two receivers,
    // correlated with the preceding taken branch: a BTB (last
    // target only) mispredicts every time; the history-indexed
    // cache learns both.
    IndirectPredictorParams params;
    params.enabled = true;
    IndirectPredictor ip(params);
    Btb btb(BtbParams{});

    int ip_correct = 0, btb_correct = 0;
    const Addr site = 0x5000;
    for (int i = 0; i < 400; ++i) {
        const bool variant = i % 2 == 0;
        const Addr lead = variant ? 0x100 : 0x200;
        const Addr target = variant ? 0xaaa0 : 0xbbb0;
        // The leading taken branch shapes the path history.
        ip.updateHistory(lead);
        const auto pi = ip.predict(site);
        ip_correct += pi && *pi == target;
        const auto pb = btb.lookup(site);
        btb_correct += pb && *pb == target;
        ip.update(site, target);
        btb.update(site, target);
    }
    EXPECT_GT(ip_correct, 380);
    EXPECT_LT(btb_correct, 20); // alternation defeats last-target
}

TEST(Indirect, ResetClearsState)
{
    IndirectPredictorParams params;
    params.enabled = true;
    IndirectPredictor ip(params);
    ip.update(0x1000, 0x2000);
    ip.reset();
    EXPECT_FALSE(ip.predict(0x1000).has_value());
}

TEST(Predictor, IndirectCacheUsedWhenEnabled)
{
    PredictorParams params;
    params.indirect.enabled = true;
    BranchPredictor bp(params);
    const auto jmp = makeJmpIndMem(4, 0);
    bp.resolve(jmp, 0x7000, true, 0x9000);
    EXPECT_EQ(bp.predictNext(jmp, 0x7000), 0x9000u);
}

TEST(Tournament, TracksTheBetterComponent)
{
    TournamentPredictor t(4096, 8);
    // Alternating pattern: gshare wins, chooser should migrate.
    bool dir = false;
    int correct_late = 0;
    for (int i = 0; i < 2000; ++i) {
        dir = !dir;
        const bool p = t.predict(0x40);
        if (i >= 1000)
            correct_late += p == dir;
        t.update(0x40, dir);
    }
    EXPECT_GT(correct_late, 950);

    // Heavily biased branch at another pc: never worse than
    // bimodal once warm.
    TournamentPredictor t2(4096, 8);
    int biased_correct = 0;
    for (int i = 0; i < 500; ++i) {
        const bool taken = i % 16 != 0;
        if (i >= 100)
            biased_correct += t2.predict(0x80) == taken;
        t2.update(0x80, taken);
    }
    EXPECT_GT(biased_correct, 340);
}

TEST(Tournament, ResetRestoresColdState)
{
    TournamentPredictor t(1024, 8);
    for (int i = 0; i < 16; ++i)
        t.update(0x40, true);
    t.reset();
    // Weakly-not-taken components after reset.
    EXPECT_FALSE(t.predict(0x40));
}
