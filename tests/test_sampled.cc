/**
 * @file
 * Tests for sim::SampledExecution: spec parsing, the off-by-default
 * guarantee (disabled sampling is the exact path, byte for byte),
 * accuracy of the extrapolated metrics against exact simulation on
 * the paper's steady-state profiles, determinism, and the lockstep
 * oracle across fast-forward/detail boundaries.
 */

#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "check/lockstep.hh"
#include "common.hh"
#include "sim/sampled.hh"
#include "workload/profiles.hh"

using namespace dlsim;
using namespace dlsim::bench;

namespace
{

/** Sampled-mode parameters small enough that the short test grids
 *  still cross many window boundaries. */
sim::SampleParams
testSample()
{
    sim::SampleParams sp;
    sp.enabled = true;
    sp.warmup = 500;
    sp.detail = 2500;
    sp.fastforward = 7500;
    return sp;
}

std::string
renderJson(const ArmResult &arm, const char *name)
{
    stats::MetricsDocument doc("test_sampled");
    doc.addRun(name).registry = arm.registry;
    return doc.toJson();
}

double
skipRate(const cpu::PerfCounters &c)
{
    const double den = static_cast<double>(c.trampolineJmps +
                                           c.skippedTrampolines);
    return den == 0.0 ? 0.0 : c.skippedTrampolines / den;
}

double
gauge(const ArmResult &arm, const std::string &name)
{
    const auto *m = arm.registry.find(name);
    return m ? m->gauge : 0.0;
}

} // namespace

TEST(SampleParams, ParsesWellFormedSpecs)
{
    sim::SampleParams sp;
    ASSERT_TRUE(sim::SampleParams::parse("100:2000:30000", sp));
    EXPECT_TRUE(sp.enabled);
    EXPECT_EQ(sp.warmup, 100u);
    EXPECT_EQ(sp.detail, 2000u);
    EXPECT_EQ(sp.fastforward, 30000u);
    EXPECT_EQ(sp.spec(), "100:2000:30000");

    // Zero warmup is legal: the first window starts in detail.
    ASSERT_TRUE(sim::SampleParams::parse("0:1:1", sp));
    EXPECT_EQ(sp.warmup, 0u);
}

TEST(SampleParams, RejectsMalformedSpecs)
{
    const char *bad[] = {
        "",          "10",        "10:20",     "10:20:30:40",
        "a:20:30",   "10:b:30",   "10:20:c",   "10::30",
        "-1:20:30",  "10:0:30",   "10:20:0",   " 10:20:30",
    };
    for (const char *spec : bad) {
        sim::SampleParams sp;
        std::string error;
        EXPECT_FALSE(sim::SampleParams::parse(spec, sp, &error))
            << "spec '" << spec << "' should be rejected";
        EXPECT_FALSE(error.empty()) << spec;
        EXPECT_FALSE(sp.enabled) << spec;
    }
}

TEST(Sampled, DisabledSamplingIsTheExactPath)
{
    const auto wl = workload::apacheProfile();
    const auto mc = enhancedMachine();
    const auto exact = runArm(wl, mc, 10, 20);
    // Explicitly-disabled params must take the identical path.
    const auto off = runArm(wl, mc, 10, 20, sim::SampleParams{});
    EXPECT_EQ(renderJson(exact, "arm"), renderJson(off, "arm"));
    EXPECT_EQ(exact.counters.cycles, off.counters.cycles);
    EXPECT_EQ(exact.counters.instructions,
              off.counters.instructions);
    EXPECT_FALSE(off.registry.has("dlsim.sampled.windows"));
}

TEST(Sampled, SampledRunsAreDeterministic)
{
    const auto wl = workload::memcachedProfile();
    const auto a = runArm(wl, enhancedMachine(), 10, 20,
                          testSample());
    const auto b = runArm(wl, enhancedMachine(), 10, 20,
                          testSample());
    EXPECT_EQ(renderJson(a, "arm"), renderJson(b, "arm"));
}

TEST(Sampled, ExtrapolationTracksExactOnSteadyStateProfiles)
{
    // Tolerances: sampling is an estimator, not an oracle. IPC
    // extrapolates detail-window CPI over fast-forwarded
    // instructions; the instruction streams themselves differ
    // slightly because fast-forward executes the PLT jumps the
    // ABTB elides in exact enhanced mode.
    constexpr double kIpcRelTol = 0.25;
    constexpr double kInstRelTol = 0.10;
    constexpr double kSkipAbsTol = 0.15;

    for (const char *name :
         {"apache", "firefox", "memcached", "mysql"}) {
        SCOPED_TRACE(name);
        const auto wl = workload::profileByName(name);
        const auto mc = enhancedMachine();
        const int warmup = 20, requests = 30;

        const auto exact = runArm(wl, mc, warmup, requests);
        const auto sampled =
            runArm(wl, mc, warmup, requests, testSample());

        // The run actually sampled: several windows, and a
        // non-trivial share of instructions fast-forwarded.
        EXPECT_GE(sampled.registry.counterValue(
                      "dlsim.sampled.windows"),
                  2u);
        EXPECT_GT(sampled.registry.counterValue(
                      "dlsim.sampled.ff_instructions"),
                  0u);

        const double exact_ipc = exact.counters.ipc();
        const double sampled_ipc =
            gauge(sampled, "dlsim.sampled.extrapolated_ipc");
        ASSERT_GT(exact_ipc, 0.0);
        ASSERT_GT(sampled_ipc, 0.0);
        EXPECT_LE(std::abs(sampled_ipc - exact_ipc) / exact_ipc,
                  kIpcRelTol)
            << "exact ipc " << exact_ipc << " sampled ipc "
            << sampled_ipc;

        const auto sampled_insts = sampled.registry.counterValue(
            "dlsim.sampled.total_instructions");
        const double exact_insts =
            static_cast<double>(exact.counters.instructions);
        ASSERT_GT(exact_insts, 0.0);
        EXPECT_LE(std::abs(static_cast<double>(sampled_insts) -
                           exact_insts) /
                      exact_insts,
                  kInstRelTol)
            << "exact insts " << exact.counters.instructions
            << " sampled insts " << sampled_insts;

        // ABTB effectiveness seen in the detail windows tracks the
        // exact run's steady-state skip rate.
        EXPECT_LE(std::abs(skipRate(sampled.counters) -
                           skipRate(exact.counters)),
                  kSkipAbsTol)
            << "exact skip " << skipRate(exact.counters)
            << " sampled skip " << skipRate(sampled.counters);
    }
}

TEST(Sampled, LockstepOracleHoldsAcrossPhaseBoundaries)
{
    const auto wl = workload::apacheProfile();
    workload::MachineConfig mc = enhancedMachine();
    workload::Workbench wb(wl, mc);

    sim::SampleParams sp;
    sp.enabled = true;
    sp.warmup = 200;
    sp.detail = 1000;
    sp.fastforward = 5000;
    wb.setSampling(sp);
    wb.warmup(5);

    check::LockstepChecker checker(wb.core());
    wb.core().setRetireObserver(&checker);
    for (int i = 0; i < 30; ++i)
        wb.runRequest(); // LockstepError on any divergence
    wb.core().setRetireObserver(nullptr);

    const auto &ls = checker.stats();
    EXPECT_GT(ls.checkedRetires, 0u);
    EXPECT_GT(ls.fastForwardSyncs, 0u);

    ASSERT_NE(wb.sampler(), nullptr);
    const auto &ss = wb.sampler()->stats();
    EXPECT_GE(ss.windows, 2u);
    EXPECT_GT(ss.ffInsts, 0u);
    EXPECT_GT(ss.detailInsts, 0u);
}
