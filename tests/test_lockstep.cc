/**
 * @file
 * Tentpole tests for the lockstep architectural oracle: clean runs
 * stay in lockstep on both PLT styles and all invalidation arms, the
 * oracle's divergence reports carry full forensic context, and a
 * deliberately injected flush-suppression bug is caught.
 */

#include <gtest/gtest.h>

#include "check/fuzz.hh"
#include "check/lockstep.hh"
#include "workload/engine.hh"
#include "workload/profiles.hh"

using namespace dlsim;
using namespace dlsim::workload;
using namespace dlsim::check;

namespace
{

WorkloadParams
smallWorkload(std::uint64_t seed)
{
    WorkloadParams p;
    p.name = "lockstep";
    p.seed = seed;
    p.numLibs = 3;
    p.funcsPerLib = 10;
    p.requests = {{"A", 0.6, 1, 3}, {"B", 0.4, 1, 2}};
    p.stepsPerRequest = 10;
    p.calledImports = 16;
    return p;
}

/** Attach a checker and run `n` requests; return final stats. */
LockstepStats
runChecked(Workbench &wb, int n)
{
    LockstepChecker checker(wb.core());
    wb.core().setRetireObserver(&checker);
    for (int i = 0; i < n; ++i)
        wb.runRequest();
    wb.core().setRetireObserver(nullptr);
    return checker.stats();
}

} // namespace

TEST(Lockstep, CleanRunX86Lazy)
{
    MachineConfig cfg;
    cfg.enhanced = true;
    Workbench wb(smallWorkload(1), cfg);
    const auto st = runChecked(wb, 120);

    EXPECT_GT(st.checkedRetires, 1000u);
    EXPECT_GT(st.resolverReplays, 0u);
    EXPECT_GT(st.verifiedSubstitutions, 0u);
    // Every substitution the core performed was walked and verified.
    EXPECT_EQ(st.verifiedSubstitutions,
              wb.core().skipUnit()->stats().substitutions);
    // The x86 trampoline elides exactly one instruction: jmp *GOT.
    EXPECT_EQ(st.walkedInstructions, st.verifiedSubstitutions);
}

TEST(Lockstep, CleanRunArmPlt)
{
    MachineConfig cfg;
    cfg.enhanced = true;
    cfg.pltStyle = linker::PltStyle::Arm;
    Workbench wb(smallWorkload(2), cfg);
    const auto st = runChecked(wb, 120);

    EXPECT_GT(st.verifiedSubstitutions, 0u);
    EXPECT_EQ(st.verifiedSubstitutions,
              wb.core().skipUnit()->stats().substitutions);
    // ARM trampolines elide the scratch-register prologue too, so
    // each walk covers more than one instruction.
    EXPECT_GT(st.walkedInstructions,
              2 * st.verifiedSubstitutions);
}

TEST(Lockstep, CleanRunExplicitInvalidation)
{
    MachineConfig cfg;
    cfg.enhanced = true;
    cfg.explicitInvalidation = true;
    Workbench wb(smallWorkload(3), cfg);
    const auto st = runChecked(wb, 120);

    EXPECT_GT(st.verifiedSubstitutions, 0u);
    // §3.4: invalidation is the explicit AbtbFlush the resolver
    // issues; no store flushes exist in this arm.
    EXPECT_EQ(wb.core().skipUnit()->stats().storeFlushes, 0u);
    EXPECT_GT(wb.core().skipUnit()->stats().explicitFlushes, 0u);
}

TEST(Lockstep, CleanRunBaseMachineNoSkipUnit)
{
    // The oracle is also valid against the unenhanced machine:
    // no substitutions, pure instruction-by-instruction lockstep.
    Workbench wb(smallWorkload(4), MachineConfig{});
    const auto st = runChecked(wb, 60);
    EXPECT_GT(st.checkedRetires, 500u);
    EXPECT_EQ(st.verifiedSubstitutions, 0u);
}

TEST(Lockstep, CleanRunApacheProfile)
{
    MachineConfig cfg;
    cfg.enhanced = true;
    Workbench wb(apacheProfile(42), cfg);
    const auto st = runChecked(wb, 40);
    EXPECT_GT(st.verifiedSubstitutions, 0u);
}

TEST(Lockstep, MultiCoreCleanUnderCoherence)
{
    FuzzCase c;
    c.seed = 301;
    c.cores = 3;
    c.requests = 8;
    c.eventsMask = EvRebind | EvGotRewriteSame;
    c.eventCount = 6;
    const auto r = runCase(c);
    EXPECT_TRUE(r.passed) << r.failure << "\nreproduce: "
                          << reproLine(r.failingCase);
    EXPECT_GT(r.stats.verifiedSubstitutions, 0u);
    EXPECT_GT(r.coherenceFlushes, 0u);
}

TEST(Lockstep, ExternalRewritesStayClean)
{
    FuzzCase c;
    c.seed = 302;
    c.requests = 12;
    c.eventsMask = EvRebind | EvGotRewriteSame | EvNoiseStore |
                   EvContextSwitch | EvSpuriousFlush;
    c.eventCount = 12;
    const auto r = runCase(c);
    EXPECT_TRUE(r.passed) << r.failure << "\nreproduce: "
                          << reproLine(r.failingCase);
    EXPECT_GT(r.stats.externalWrites, 0u);
}

TEST(Lockstep, InjectedFlushSuppressionIsCaught)
{
    // The acceptance demo: suppress the §3.2 bloom-hit store flush
    // (a broken invalidation path) and prove the harness sees the
    // resulting stale substitution as an architectural divergence.
    FuzzCase c;
    c.seed = 7001;
    c.requests = 14;
    c.eventsMask = EvRebind;
    c.eventCount = 10;
    c.numLibs = 2;
    c.funcsPerLib = 8;
    c.calledImports = 6;
    c.injectFlushSuppression = true;

    const auto caught = runCase(c);
    ASSERT_FALSE(caught.passed)
        << "oracle missed the injected flush-suppression bug";
    EXPECT_NE(caught.failure.find("lockstep divergence"),
              std::string::npos)
        << caught.failure;

    // The same configuration without the bug is clean.
    FuzzCase clean = c;
    clean.injectFlushSuppression = false;
    const auto ok = runCase(clean);
    EXPECT_TRUE(ok.passed) << ok.failure;
    EXPECT_GT(ok.stats.verifiedSubstitutions, 0u);
}

TEST(Lockstep, DivergenceReportCarriesFullContext)
{
    FuzzCase c;
    c.seed = 7001;
    c.requests = 14;
    c.eventsMask = EvRebind;
    c.eventCount = 10;
    c.numLibs = 2;
    c.funcsPerLib = 8;
    c.calledImports = 6;
    c.injectFlushSuppression = true;

    const auto r = runCase(c);
    ASSERT_FALSE(r.passed);
    // Cycle, retire index, pc, disassembly, and the skip-unit dump
    // must all be present for post-mortem debugging.
    EXPECT_NE(r.failure.find("at cycle"), std::string::npos)
        << r.failure;
    EXPECT_NE(r.failure.find("retired instruction"),
              std::string::npos);
    EXPECT_NE(r.failure.find("inst:"), std::string::npos);
    EXPECT_NE(r.failure.find("abtb:"), std::string::npos);
    EXPECT_NE(r.failure.find("INJECTED-BUG"), std::string::npos)
        << "skip-unit dump should flag the armed fault injection";
}

TEST(Lockstep, ShrinkerReducesFailingCase)
{
    FuzzCase c;
    c.seed = 7001;
    c.requests = 56; // Deliberately oversized.
    c.eventsMask = EvRebind;
    c.eventCount = 40;
    c.numLibs = 4;
    c.funcsPerLib = 16;
    c.calledImports = 12;
    c.injectFlushSuppression = true;
    ASSERT_FALSE(runCase(c).passed);

    std::string why;
    const auto small = shrinkCase(c, 48, &why);
    EXPECT_FALSE(runCase(small).passed)
        << "shrunk case must still fail";
    EXPECT_LT(small.requests, c.requests);
    EXPECT_LT(small.eventCount, c.eventCount);
    EXPECT_TRUE(small.injectFlushSuppression)
        << "shrinking must never remove the fault injection";
    EXPECT_FALSE(why.empty());
    // The repro line round-trips every field that matters.
    EXPECT_NE(reproLine(small).find("--inject-bug-config"),
              std::string::npos);
}
