/**
 * @file
 * Unit tests for the set-associative cache model: hit/miss
 * behaviour, LRU replacement, ASID isolation, and geometry sweeps.
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"

using namespace dlsim::mem;

namespace
{

CacheParams
tiny()
{
    // 4 sets x 2 ways x 64B lines = 512B.
    return CacheParams{"tiny", 512, 2, 64};
}

} // namespace

TEST(Cache, ColdMissThenHit)
{
    Cache c(tiny());
    EXPECT_FALSE(c.access(0x1000, 0));
    EXPECT_TRUE(c.access(0x1000, 0));
    EXPECT_TRUE(c.access(0x1030, 0)); // same 64B line
    EXPECT_EQ(c.misses(), 1u);
    EXPECT_EQ(c.hits(), 2u);
}

TEST(Cache, DistinctLinesMiss)
{
    Cache c(tiny());
    c.access(0x0, 0);
    EXPECT_FALSE(c.access(0x40, 0));
    EXPECT_EQ(c.misses(), 2u);
}

TEST(Cache, LruEviction)
{
    Cache c(tiny()); // 2-way: 3 conflicting lines evict the oldest
    // Lines mapping to the same set differ by 4*64 = 256 bytes.
    c.access(0x000, 0);
    c.access(0x100, 0);
    c.access(0x000, 0);      // refresh line 0
    c.access(0x200, 0);      // evicts 0x100 (LRU)
    EXPECT_TRUE(c.contains(0x000, 0));
    EXPECT_FALSE(c.contains(0x100, 0));
    EXPECT_TRUE(c.contains(0x200, 0));
}

TEST(Cache, AsidIsolation)
{
    Cache c(tiny());
    c.access(0x1000, 1);
    EXPECT_FALSE(c.contains(0x1000, 2));
    EXPECT_FALSE(c.access(0x1000, 2)); // different process: miss
}

TEST(Cache, InvalidateLineHonorsAsid)
{
    // Two processes cache the same line; a targeted invalidation of
    // one address space must not clobber the other's copy.
    Cache c(tiny());
    c.access(0x1000, 1);
    c.access(0x1000, 2);
    c.invalidateLine(0x1000, 2);
    EXPECT_TRUE(c.contains(0x1000, 1));
    EXPECT_FALSE(c.contains(0x1000, 2));
}

TEST(Cache, InvalidateLineMissesOtherAsid)
{
    Cache c(tiny());
    c.access(0x1000, 1);
    c.invalidateLine(0x1000, 2); // no-op: asid 2 holds nothing
    EXPECT_TRUE(c.contains(0x1000, 1));
}

TEST(Cache, InvalidateLineAllAsids)
{
    // The coherence variant is the sledgehammer: a physical snoop
    // drops every address space's copy.
    Cache c(tiny());
    c.access(0x1000, 1);
    c.access(0x1000, 2);
    c.invalidateLineAllAsids(0x1000);
    EXPECT_FALSE(c.contains(0x1000, 1));
    EXPECT_FALSE(c.contains(0x1000, 2));
}

TEST(Cache, PrefetchAccounting)
{
    Cache c(tiny());
    c.prefetch(0x1000, 0);
    EXPECT_EQ(c.prefetches(), 1u);
    EXPECT_EQ(c.accesses(), 0u); // demand stats untouched
    c.prefetch(0x1000, 0);       // already present: not a fill
    EXPECT_EQ(c.prefetches(), 1u);
    EXPECT_TRUE(c.access(0x1000, 0)); // demand access hits the fill
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.misses(), 0u);
}

TEST(Cache, PrefetchFillsCountEvictions)
{
    Cache c(tiny()); // 2-way; same set every 0x100
    c.access(0x000, 0);
    c.access(0x100, 0);
    c.prefetch(0x200, 0); // set full: the fill evicts the LRU
    EXPECT_EQ(c.evictions(), 1u);
    EXPECT_FALSE(c.contains(0x000, 0));
    EXPECT_TRUE(c.contains(0x100, 0));
    EXPECT_TRUE(c.contains(0x200, 0));
}

TEST(Cache, DeterministicFillAfterInvalidation)
{
    // A targeted invalidation opens a hole in a full set; the next
    // fill must take the hole (first invalid way) and leave the
    // surviving entry's LRU position intact.
    Cache c(tiny());
    c.access(0x000, 0);
    c.access(0x100, 0);
    c.invalidateLine(0x000, 0);
    c.access(0x200, 0); // fills the hole, no eviction
    EXPECT_EQ(c.evictions(), 0u);
    EXPECT_TRUE(c.contains(0x100, 0));
    EXPECT_TRUE(c.contains(0x200, 0));
    c.access(0x300, 0); // set full again: evicts 0x100, the LRU
    EXPECT_EQ(c.evictions(), 1u);
    EXPECT_FALSE(c.contains(0x100, 0));
    EXPECT_TRUE(c.contains(0x200, 0));
    EXPECT_TRUE(c.contains(0x300, 0));
}

TEST(Cache, HitInLaterWayAfterEarlierInvalidation)
{
    // Regression guard for the two-pass lookup: a hit residing in a
    // later way than an invalidated one must still be found (a
    // single fused hit+victim scan that breaks at the first invalid
    // way would miss it and double-allocate).
    Cache c(tiny());
    c.access(0x000, 0); // way 0
    c.access(0x100, 0); // way 1
    c.invalidateLine(0x000, 0);
    EXPECT_TRUE(c.access(0x100, 0)); // must hit, not refill
    EXPECT_EQ(c.hits(), 1u);
}

TEST(Cache, InvalidateAll)
{
    Cache c(tiny());
    c.access(0x0, 0);
    c.access(0x40, 0);
    c.invalidateAll();
    EXPECT_FALSE(c.contains(0x0, 0));
    EXPECT_FALSE(c.contains(0x40, 0));
}

TEST(Cache, MissRateAndClearStats)
{
    Cache c(tiny());
    c.access(0x0, 0);
    c.access(0x0, 0);
    EXPECT_DOUBLE_EQ(c.missRate(), 0.5);
    c.clearStats();
    EXPECT_EQ(c.accesses(), 0u);
    EXPECT_DOUBLE_EQ(c.missRate(), 0.0);
    EXPECT_TRUE(c.contains(0x0, 0)); // contents survive
}

TEST(Cache, NonPowerOfTwoSets)
{
    // 12 sets (e.g. a 12MB LLC shape) must index correctly.
    Cache c(CacheParams{"llc", 12 * 64 * 2, 2, 64});
    for (Addr a = 0; a < 64 * 1024; a += 64)
        c.access(a, 0);
    EXPECT_GT(c.misses(), 0u);
    // Re-touch the last lines: they must still be present.
    EXPECT_TRUE(c.contains(64 * 1024 - 64, 0));
}

TEST(Cache, FullyUsedCapacityNoEvictionWithinWorkingSet)
{
    // Working set exactly equal to capacity, accessed round-robin,
    // never conflicts with LRU in a set-assoc cache when lines map
    // uniformly.
    Cache c(CacheParams{"c", 4096, 4, 64}); // 64 lines
    for (int round = 0; round < 3; ++round) {
        for (Addr a = 0; a < 4096; a += 64)
            c.access(a, 0);
    }
    EXPECT_EQ(c.misses(), 64u); // only the cold round misses
}

/** Geometry sweep: every configuration behaves sanely. */
struct Geometry
{
    std::uint64_t size;
    std::uint32_t assoc;
};

class CacheGeometry : public ::testing::TestWithParam<Geometry>
{
};

TEST_P(CacheGeometry, ColdThenWarm)
{
    const auto g = GetParam();
    Cache c(CacheParams{"g", g.size, g.assoc, 64});
    const Addr span = g.size / 2; // half capacity: must all fit
    for (Addr a = 0; a < span; a += 64)
        EXPECT_FALSE(c.access(a, 0));
    for (Addr a = 0; a < span; a += 64)
        EXPECT_TRUE(c.access(a, 0)) << "addr " << a;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CacheGeometry,
    ::testing::Values(Geometry{1024, 1}, Geometry{4096, 2},
                      Geometry{32 * 1024, 8},
                      Geometry{256 * 1024, 8},
                      Geometry{12 * 1024 * 1024, 16}));

/**
 * Differential property test: the cache must agree, access for
 * access, with a naive reference LRU model over random streams.
 */
#include <list>

#include "stats/rng.hh"

namespace
{

/** Textbook set-associative LRU, kept deliberately naive. */
class ReferenceCache
{
  public:
    ReferenceCache(std::uint64_t size, std::uint32_t assoc)
        : assoc_(assoc), sets_(size / 64 / assoc)
    {
    }

    bool
    access(Addr addr, std::uint16_t asid)
    {
        const std::uint64_t line = addr >> 6;
        auto &set = sets_[line % sets_.size()];
        const auto key = std::make_pair(line, asid);
        for (auto it = set.begin(); it != set.end(); ++it) {
            if (*it == key) {
                set.erase(it);
                set.push_front(key); // most recent first
                return true;
            }
        }
        set.push_front(key);
        if (set.size() > assoc_)
            set.pop_back();
        return false;
    }

  private:
    std::uint32_t assoc_;
    std::vector<std::list<std::pair<std::uint64_t,
                                    std::uint16_t>>> sets_;
};

} // namespace

class CacheVsReference : public ::testing::TestWithParam<Geometry>
{
};

TEST_P(CacheVsReference, AgreesOnRandomStream)
{
    const auto g = GetParam();
    Cache cache(CacheParams{"dut", g.size, g.assoc, 64});
    ReferenceCache ref(g.size, g.assoc);
    dlsim::stats::Rng rng(g.size ^ g.assoc);

    for (int i = 0; i < 20000; ++i) {
        // Mix of hot region (locality) and cold sweeps.
        const Addr addr = rng.nextBool(0.7)
                              ? (rng.nextBelow(64) * 64)
                              : (rng.nextBelow(1 << 16) * 64);
        const std::uint16_t asid =
            static_cast<std::uint16_t>(rng.nextBelow(2));
        ASSERT_EQ(cache.access(addr, asid), ref.access(addr, asid))
            << "access " << i << " addr " << addr;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CacheVsReference,
    ::testing::Values(Geometry{1024, 1}, Geometry{1024, 2},
                      Geometry{4096, 4}, Geometry{32 * 1024, 8}));
