/**
 * @file
 * Sweep the ABTB size on the memcached workload and print the
 * fraction of trampolines skipped — the per-workload view behind
 * the paper's Fig. 5 ("with just 16 entries we can skip more than
 * 75% of the trampolines").
 */

#include <cstdio>

#include "stats/table.hh"
#include "workload/engine.hh"
#include "workload/profiles.hh"

using namespace dlsim;
using namespace dlsim::workload;

int
main()
{
    std::printf("Trampolines skipped vs ABTB size (memcached)\n\n");

    stats::TablePrinter table(
        {"ABTB entries", "Storage (bytes)", "Skipped", "Executed",
         "Skip rate"});

    for (std::uint32_t entries : {1u, 2u, 4u, 8u, 16u, 32u, 64u,
                                  128u, 256u, 512u, 1024u}) {
        MachineConfig mc;
        mc.enhanced = true;
        mc.abtbEntries = entries;
        mc.abtbAssoc = std::min(entries, 4u);

        Workbench wb(memcachedProfile(), mc);
        wb.warmup(100);
        for (int i = 0; i < 400; ++i)
            wb.runRequest();

        const auto c = wb.core().counters();
        const auto total =
            c.skippedTrampolines + c.trampolineJmps;
        const double rate =
            total ? 100.0 * double(c.skippedTrampolines) /
                        double(total)
                  : 0.0;
        table.addRow(
            {std::to_string(entries),
             std::to_string(entries * 12),
             stats::TablePrinter::num(c.skippedTrampolines),
             stats::TablePrinter::num(c.trampolineJmps),
             stats::TablePrinter::num(rate, 1) + "%"});
    }
    std::printf("%s", table.render().c_str());
    return 0;
}
