/**
 * @file
 * The paper's headline experiment in miniature: an Apache-like web
 * server (SPECweb-style request mix) measured per request on the
 * base and ABTB-enhanced machines. Prints mean latency per request
 * type and the overall improvement (paper: up to 4%, Fig. 6).
 */

#include <cstdio>
#include <vector>

#include "stats/cdf.hh"
#include "stats/table.hh"
#include "workload/engine.hh"
#include "workload/profiles.hh"

using namespace dlsim;
using namespace dlsim::workload;

namespace
{

constexpr int WarmupRequests = 200;
constexpr int MeasuredRequests = 1500;

std::vector<stats::SampleSet>
measure(bool enhanced)
{
    MachineConfig mc;
    mc.enhanced = enhanced;
    Workbench wb(apacheProfile(), mc);
    wb.warmup(WarmupRequests);

    std::vector<stats::SampleSet> by_kind(
        wb.params().requests.size());
    for (int i = 0; i < MeasuredRequests; ++i) {
        const auto r = wb.runRequest();
        by_kind[r.kind].add(static_cast<double>(r.cycles));
    }
    for (auto &s : by_kind)
        s.trimOutliers();
    return by_kind;
}

} // namespace

int
main()
{
    std::printf("Apache/SPECweb request latency, base vs enhanced\n");
    std::printf("(same request stream on both machines)\n\n");

    const auto base = measure(false);
    const auto enh = measure(true);

    const auto profile = apacheProfile();
    stats::TablePrinter table({"Request", "Base (cycles)",
                               "Enhanced (cycles)", "Improvement",
                               "p95 base", "p95 enh"});
    double total_base = 0, total_enh = 0;
    for (std::size_t k = 0; k < profile.requests.size(); ++k) {
        const double b = base[k].mean(), e = enh[k].mean();
        total_base += b * static_cast<double>(base[k].count());
        total_enh += e * static_cast<double>(enh[k].count());
        table.addRow({profile.requests[k].name,
                      stats::TablePrinter::num(b, 0),
                      stats::TablePrinter::num(e, 0),
                      stats::TablePrinter::num(
                          100.0 * (b - e) / b, 2) + "%",
                      stats::TablePrinter::num(
                          base[k].percentile(95), 0),
                      stats::TablePrinter::num(
                          enh[k].percentile(95), 0)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("overall mean improvement: %.2f%%\n",
                100.0 * (total_base - total_enh) / total_base);
    return 0;
}
