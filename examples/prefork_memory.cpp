/**
 * @file
 * The paper's §5.5 memory-savings argument, demonstrated: a prefork
 * server (Apache-style) whose workers either (a) run the software
 * call-site patcher — copying every patched text page per process —
 * or (b) rely on the proposed hardware, which leaves code pages
 * shared copy-on-write forever.
 */

#include <cstdio>

#include "linker/patcher.hh"
#include "sim/system.hh"
#include "workload/engine.hh"
#include "workload/profiles.hh"

using namespace dlsim;
using namespace dlsim::workload;

namespace
{

constexpr int Workers = 16;
constexpr int RequestsPerWorker = 10;

sim::MemoryStats
runServer(bool software_patching)
{
    MachineConfig mc;
    mc.enhanced = !software_patching; // hardware vs software
    mc.nearLibraries = software_patching;
    mc.collectCallSiteTrace = software_patching;

    Workbench wb(apacheProfile(), mc);
    sim::System system(wb.core(), wb.image(), wb.linker());

    // Profile in the master before forking (the paper's Pin run).
    for (int i = 0; i < 50; ++i)
        wb.runRequest();
    const auto trace = wb.core().callSiteTrace();

    auto &master = system.initialProcess();
    std::vector<sim::Process *> workers;
    for (int i = 0; i < Workers; ++i)
        workers.push_back(&system.fork(master));

    linker::Patcher patcher;
    for (auto *w : workers) {
        system.switchTo(*w);
        if (software_patching)
            patcher.apply(wb.image(), trace);
        for (int i = 0; i < RequestsPerWorker; ++i)
            wb.runRequest();
    }
    return system.memoryStats();
}

} // namespace

int
main()
{
    std::printf("Prefork server, %d workers: software patching "
                "vs proposed hardware (paper 5.5)\n\n",
                Workers);

    const auto sw = runServer(true);
    const auto hw = runServer(false);

    const auto report = [](const char *name,
                           const sim::MemoryStats &m) {
        std::printf("%s:\n", name);
        std::printf("  text pages copied (COW broken): %llu "
                    "(%.2f MB wasted)\n",
                    (unsigned long long)m.textCowCopies,
                    double(m.textCowCopies) * 4096 / (1 << 20));
        std::printf("  data/stack pages copied:        %llu "
                    "(inherent to forking)\n",
                    (unsigned long long)(m.dataCowCopies +
                                         m.stackCowCopies +
                                         m.gotCowCopies));
        std::printf("  pages still shared:             %llu\n\n",
                    (unsigned long long)m.sharedPages);
    };
    report("software call-site patching", sw);
    report("proposed hardware (ABTB)", hw);

    std::printf("per-worker text waste under patching: %.1f KB\n",
                double(sw.textCowCopies) * 4096 / 1024 /
                    Workers);
    std::printf("hardware approach text waste: %llu bytes\n",
                (unsigned long long)(hw.textCowCopies * 4096));
    return 0;
}
