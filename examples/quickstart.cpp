/**
 * @file
 * Quickstart: build a tiny dynamically linked program with the
 * public API, run it on the base machine and on the ABTB-enhanced
 * machine, and compare what the hardware sees.
 *
 * The program is the paper's Figure 1 in miniature: an application
 * calls printf-like library functions through PLT trampolines; the
 * proposed hardware memoizes each trampoline's target and skips it.
 */

#include <cstdio>

#include "cpu/core.hh"
#include "elf/builder.hh"
#include "linker/dynamic_linker.hh"
#include "linker/loader.hh"

using namespace dlsim;
using namespace dlsim::isa;

namespace
{

/** The application: calls two library functions in a loop. */
elf::Module
makeApp()
{
    elf::ModuleBuilder mb("app");
    mb.setDataSize(4096);

    auto &work = mb.function("do_work");
    // r1 = iteration count.
    auto top = work.newLabel();
    work.bind(top);
    work.callExternal("format");   // via format@plt
    work.callExternal("checksum"); // via checksum@plt
    work.aluImm(AluKind::Sub, RegArg0, RegArg0, 1);
    work.condBr(CondKind::Ne0, RegArg0, top);
    work.ret();
    return mb.build();
}

/** A library exporting the two functions. */
elf::Module
makeLib()
{
    elf::ModuleBuilder mb("libfmt");
    mb.setDataSize(4096);

    auto &format = mb.function("format");
    format.movDataAddr(4, 0);
    format.load(5, 4, 0);
    format.aluImm(AluKind::Add, 5, 5, 1);
    format.store(5, 4, 0);
    format.ret();

    auto &checksum = mb.function("checksum");
    checksum.aluImm(AluKind::Xor, RegRet, RegArg0, 0x5a);
    checksum.ret();
    return mb.build();
}

/** Assemble one machine and run the workload on it. */
cpu::PerfCounters
run(bool enhanced)
{
    cpu::CoreParams params;
    params.skipUnitEnabled = enhanced;

    linker::Loader loader;
    auto image = loader.load(makeApp(), {makeLib()});
    linker::DynamicLinker linker(*image);
    cpu::Core core(params);
    core.attachProcess(image.get(), &linker, 0);
    core.initStack(loader.stackTop());

    // Warm up (lazy resolution + predictor training), then measure.
    core.callFunction(image->symbolAddress("do_work"), 16);
    core.clearStats();
    core.callFunction(image->symbolAddress("do_work"), 1000);

    if (enhanced) {
        const auto &s = core.skipUnit()->stats();
        std::printf("  [skip unit] substitutions=%llu "
                    "populations=%llu startup flushes=%llu\n",
                    (unsigned long long)s.substitutions,
                    (unsigned long long)s.populations,
                    (unsigned long long)s.storeFlushes);
        std::printf("  [skip unit] hardware cost: %llu bytes\n",
                    (unsigned long long)
                        core.skipUnit()->hardwareBytes());
    }
    return core.counters();
}

} // namespace

int
main()
{
    std::printf("dlsim quickstart: base vs ABTB-enhanced machine\n");
    std::printf("------------------------------------------------\n");

    std::printf("base machine:\n");
    const auto base = run(false);
    std::printf("%s\n", base.toString().c_str());

    std::printf("enhanced machine (trampoline skip):\n");
    const auto enh = run(true);
    std::printf("%s\n", enh.toString().c_str());

    const double speedup =
        100.0 * (double(base.cycles) - double(enh.cycles)) /
        double(base.cycles);
    std::printf("instructions saved : %llu\n",
                (unsigned long long)(base.instructions -
                                     enh.instructions));
    std::printf("cycle reduction    : %.2f%%\n", speedup);
    std::printf("trampoline insts   : %.2f -> %.2f PKI\n",
                base.pki(base.trampolineInsts),
                enh.pki(enh.trampolineInsts));
    return 0;
}
