/**
 * @file
 * A multithreaded server (memcached-style) on a 4-core machine with
 * the proposed hardware on every core: threads of one process share
 * the address space, lazily resolve the same GOT exactly once, and
 * each core's ABTB warms independently — with coherence
 * invalidations keeping the tables correct when the GOT changes
 * (paper §3.2's coherence clause, §5.5's multithreaded-server
 * discussion).
 */

#include <cstdio>

#include "sim/multicore.hh"
#include "workload/engine.hh"
#include "workload/profiles.hh"

using namespace dlsim;

int
main()
{
    // Build the memcached program through the workload engine,
    // then run its GET handler on four cores concurrently.
    workload::MachineConfig mc;
    mc.enhanced = true;
    workload::Workbench wb(workload::memcachedProfile(), mc);

    sim::MultiCoreParams params;
    params.numCores = 4;
    params.core = workload::makeCoreParams(mc);
    sim::MultiCoreSystem system(params, wb.image(), wb.linker(),
                                wb.loader().stackTop());

    const auto handler = wb.handlerAddress(0); // GET

    std::printf("4 threads serving memcached GETs, ABTB on every "
                "core\n\n");
    std::printf("%-8s %-14s %-14s %-10s\n", "round",
                "thread cycles", "skipped", "coh.flushes");
    for (int round = 0; round < 6; ++round) {
        const auto results = system.runOnAll(
            handler, {{1, 11}, {1, 22}, {1, 33}, {1, 44}});

        std::uint64_t skipped = 0;
        for (std::uint32_t c = 0; c < system.numCores(); ++c)
            skipped +=
                system.core(c).counters().skippedTrampolines;
        std::printf("%-8d %-14llu %-14llu %-10llu\n", round,
                    (unsigned long long)results[0].cycles,
                    (unsigned long long)skipped,
                    (unsigned long long)
                        system.totalCoherenceFlushes());
    }

    std::printf("\nshared state after the run:\n");
    std::printf("  lazy resolutions (process-wide): %llu\n",
                (unsigned long long)
                    wb.linker().resolutionCount());
    for (std::uint32_t c = 0; c < system.numCores(); ++c) {
        const auto &unit = *system.core(c).skipUnit();
        std::printf("  core %u: ABTB occupancy %llu, "
                    "populations %llu\n",
                    c,
                    (unsigned long long)unit.abtb().occupancy(),
                    (unsigned long long)
                        unit.stats().populations);
    }
    std::printf("\nNote: each core pays its own ABTB warm-up "
                "(tables are per-core), but the GOT is resolved "
                "once for the whole process.\n");
    return 0;
}
