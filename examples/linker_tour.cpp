/**
 * @file
 * A guided tour of the dynamic-linking machinery: process layout,
 * PLT disassembly, lazy GOT state before and after the first call,
 * ifunc resolution, and library unload/reload.
 */

#include <cstdio>

#include "cpu/core.hh"
#include "elf/builder.hh"
#include "linker/dynamic_linker.hh"
#include "linker/loader.hh"

using namespace dlsim;
using namespace dlsim::isa;

int
main()
{
    // -- Build an app that calls `greet` and the ifunc `memfill`.
    elf::ModuleBuilder app("app");
    app.setDataSize(4096);
    auto &main_fn = app.function("entry");
    main_fn.callExternal("greet");
    main_fn.callExternal("memfill");
    main_fn.ret();

    elf::ModuleBuilder lib("libgreet");
    auto &greet = lib.function("greet");
    greet.movImm(RegRet, 1);
    greet.ret();
    auto &generic = lib.function("memfill_generic");
    generic.movImm(RegRet, 100);
    generic.ret();
    auto &avx = lib.function("memfill_avx");
    avx.movImm(RegRet, 200);
    avx.ret();
    lib.exportIfunc("memfill", {"memfill_generic", "memfill_avx"});

    // -- Load with the conventional memory map.
    linker::LoaderOptions opts;
    opts.hwCapLevel = 1; // pretend the CPU has the fancy ISA
    linker::Loader loader(opts);
    auto image = loader.load(app.build(), {lib.build()});
    linker::DynamicLinker dl(*image);

    std::printf("=== Process layout ===\n%s\n",
                image->dumpLayout().c_str());

    // -- Disassemble the app's PLT entry for `greet` (Fig. 2).
    const auto &exe = image->moduleAt(0);
    std::printf("=== PLT entry for %s ===\n",
                image->trampolineSymbol(exe.pltEntryVas[0])
                    .c_str());
    Addr va = exe.pltEntryVas[0];
    for (int i = 0; i < 3; ++i) {
        const auto *slot = image->decode(va);
        std::printf("  %#llx: %s\n", (unsigned long long)va,
                    slot->inst.toString(va).c_str());
        va += slot->inst.size;
    }

    // -- GOT state before/after lazy resolution.
    auto got = [&](int k) {
        return image->addressSpace().peek64(exe.gotSlotAddrs[k]);
    };
    std::printf("\n=== Lazy binding ===\n");
    std::printf("GOT[greet]   before: %#llx (lazy, points into "
                "the PLT)\n",
                (unsigned long long)got(0));

    cpu::Core core;
    core.attachProcess(image.get(), &dl, 0);
    core.initStack(loader.stackTop());
    const auto r = core.callFunction(
        image->symbolAddress("entry"));
    std::printf("GOT[greet]   after : %#llx (== greet)\n",
                (unsigned long long)got(0));
    std::printf("GOT[memfill] after : %#llx (== memfill_avx, "
                "picked by the ifunc selector)\n",
                (unsigned long long)got(1));
    std::printf("entry() returned %llu (memfill_avx's 200)\n",
                (unsigned long long)r.returnValue);
    std::printf("resolver ran %llu times (%llu ifunc)\n",
                (unsigned long long)dl.resolutionCount(),
                (unsigned long long)dl.ifuncResolutionCount());

    // -- Unload and replace the library.
    std::printf("\n=== dlclose / dlopen ===\n");
    loader.dlclose(*image, "libgreet", [&](Addr a) {
        std::printf("  GOT write at %#llx reported to the core\n",
                    (unsigned long long)a);
        core.onExternalGotWrite(a);
    });
    std::printf("GOT[greet] re-lazified: %#llx\n",
                (unsigned long long)got(0));

    elf::ModuleBuilder lib2("libgreet2");
    auto &g2 = lib2.function("greet");
    g2.movImm(RegRet, 2);
    g2.ret();
    auto &m2 = lib2.function("memfill");
    m2.movImm(RegRet, 300);
    m2.ret();
    loader.dlopen(*image, lib2.build());

    const auto r2 = core.callFunction(
        image->symbolAddress("entry"));
    std::printf("entry() now returns %llu (new library's 300)\n",
                (unsigned long long)r2.returnValue);
    return 0;
}
