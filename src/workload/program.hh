/**
 * @file
 * Synthetic program builder: turns WorkloadParams into an executable
 * module plus its shared libraries.
 *
 * Generated structure:
 *
 *  - `numLibs` libraries, each exporting `funcsPerLib` functions
 *    (`l<i>f<j>`). A function body is straight-line work (ALU ops,
 *    data-dependent loads/stores into the library's data section,
 *    conditional branches) and, with probability interLibCallProb, a
 *    PLT call into a strictly deeper library — giving the
 *    library-calls-library behaviour of real software stacks with a
 *    DAG call structure (no recursion).
 *  - An executable exporting one request-handler function per
 *    RequestClass. A handler loops `arg0` times over a static step
 *    sequence; each step does local work, touches the application
 *    dataset, and possibly calls a library symbol drawn from the
 *    configured popularity distribution — via a normal PLT call, a
 *    tail-jump helper, or a virtual-call-style register-indirect
 *    call.
 *  - Optional ifunc exports with two implementation variants each.
 *  - A `main` that exercises every handler once and halts.
 *
 * Register convention of generated code: r1/r2 are arguments (work
 * count, data seed), r0 the return value; handlers own r10 (loop
 * counter), r11 (seed/LCG), r13 (reserved); library bodies use only
 * r1, r4-r9, r12, so handler state survives calls.
 */

#ifndef DLSIM_WORKLOAD_PROGRAM_HH
#define DLSIM_WORKLOAD_PROGRAM_HH

#include <string>
#include <vector>

#include "elf/module.hh"
#include "workload/params.hh"

namespace dlsim::workload
{

/** Output of the generator. */
struct BuiltProgram
{
    elf::Module exe;
    std::vector<elf::Module> libs;
    /** Handler function name per request class, in order. */
    std::vector<std::string> handlers;
    /** All library symbols the application may call. */
    std::vector<std::string> calledSymbols;
};

/** Generate a program from parameters (deterministic in seed). */
BuiltProgram buildProgram(const WorkloadParams &params);

} // namespace dlsim::workload

#endif // DLSIM_WORKLOAD_PROGRAM_HH
