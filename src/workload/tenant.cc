#include "workload/tenant.hh"

#include <cassert>

#include "elf/builder.hh"
#include "isa/registers.hh"
#include "stats/rng.hh"

namespace dlsim::workload
{

using elf::FunctionBuilder;
using elf::ModuleBuilder;
using isa::AluKind;
using isa::CondKind;

namespace
{

// Program-generator register convention (see program.hh).
constexpr isa::Reg RegWork = 1;  // arg0: loop count / helper seed
constexpr isa::Reg RegSeed2 = 2; // arg1: data seed
constexpr isa::Reg RegBase = 4;  // module data base
constexpr isa::Reg RegA = 5;
constexpr isa::Reg RegB = 6;
constexpr isa::Reg RegC = 7;
constexpr isa::Reg RegLoop = 10; // handler-owned
constexpr isa::Reg RegSeed = 11; // handler-owned

/** Word-aligned index mask for a data section of `bytes`. */
std::int64_t
dataMask(std::uint64_t bytes)
{
    assert(bytes >= 16 && (bytes & (bytes - 1)) == 0);
    return static_cast<std::int64_t>(bytes - 8) & ~7ll;
}

/** Emit an LCG step plus a data-dependent load-modify-store. */
void
emitDataTouch(FunctionBuilder &fb, isa::Reg seed_reg,
              std::uint64_t mul, std::uint64_t add,
              std::int64_t mask)
{
    fb.aluImm(AluKind::Mul, seed_reg, seed_reg,
              static_cast<std::int64_t>(mul));
    fb.aluImm(AluKind::Add, seed_reg, seed_reg,
              static_cast<std::int64_t>(add));
    fb.aluImm(AluKind::Shr, RegA, seed_reg, 7);
    fb.aluImm(AluKind::And, RegA, RegA, mask);
    fb.alu(AluKind::Add, RegB, RegBase, RegA);
    fb.load(RegC, RegB, 0);
    fb.alu(AluKind::Xor, RegC, RegC, seed_reg);
    fb.store(RegC, RegB, 0);
}

} // namespace

elf::Module
buildTenantModule(const TenantSpec &spec)
{
    assert(spec.helperFuncs >= 1);
    stats::Rng rng(spec.seed ^ 0x7e4a47u);
    const std::int64_t mask = dataMask(spec.dataBytes);

    ModuleBuilder mb(spec.moduleName);
    mb.setDataSize(spec.dataBytes);

    // Helper chain: w<i> scrambles its r1 argument against the
    // tenant's data section, then calls w<i+1> (library register
    // discipline: r1, r4-r9, r12 only).
    std::vector<std::string> helpers;
    for (std::uint32_t i = 0; i < spec.helperFuncs; ++i)
        helpers.push_back(spec.moduleName + "_w" +
                          std::to_string(i));
    for (std::uint32_t i = 0; i < spec.helperFuncs; ++i) {
        FunctionBuilder &fb = mb.function(helpers[i]);
        fb.movDataAddr(RegBase, 0);
        emitDataTouch(fb, RegWork, rng.next() | 1,
                      rng.next() | 1, mask);
        if (i + 1 < spec.helperFuncs)
            fb.callLocal(helpers[i + 1]);
        fb.aluImm(AluKind::Add, isa::RegRet, RegWork, 0);
        fb.ret();
    }

    // The exported handler: r1 = iterations, r2 = seed.
    FunctionBuilder &fb = mb.function(spec.handlerSym);
    fb.aluImm(AluKind::Add, RegLoop, RegWork, 0);
    fb.aluImm(AluKind::Add, RegSeed, RegSeed2, 0);
    fb.movDataAddr(RegBase, 0);
    elf::Label top = fb.newLabel();
    fb.bind(top);
    emitDataTouch(fb, RegSeed, rng.next() | 1, rng.next() | 1,
                  mask);
    fb.aluImm(AluKind::Add, RegWork, RegSeed, 0);
    fb.callLocal(helpers[0]);
    fb.movDataAddr(RegBase, 0); // Callee clobbered the base.
    if (!spec.externCalls.empty()) {
        // Call into the shared base libraries on roughly half the
        // iterations (seed-bit gated), alternating between two
        // imports when available.
        const std::string &sym0 = spec.externCalls[0];
        const std::string &sym1 =
            spec.externCalls[spec.externCalls.size() > 1 ? 1 : 0];
        elf::Label skip = fb.newLabel();
        fb.aluImm(AluKind::Shr, RegA, RegSeed, 13);
        fb.aluImm(AluKind::And, RegA, RegA, 1);
        fb.condBr(CondKind::Ne0, RegA, skip);
        fb.aluImm(AluKind::Add, RegWork, RegSeed, 0);
        fb.callExternal(sym0);
        fb.movDataAddr(RegBase, 0);
        fb.bind(skip);
        elf::Label skip2 = fb.newLabel();
        fb.aluImm(AluKind::Shr, RegA, RegSeed, 21);
        fb.aluImm(AluKind::And, RegA, RegA, 1);
        fb.condBr(CondKind::Ne0, RegA, skip2);
        fb.aluImm(AluKind::Add, RegWork, RegSeed, 0);
        fb.callExternal(sym1);
        fb.movDataAddr(RegBase, 0);
        fb.bind(skip2);
    }
    fb.aluImm(AluKind::Sub, RegLoop, RegLoop, 1);
    fb.condBr(CondKind::Ne0, RegLoop, top);
    fb.aluImm(AluKind::Add, isa::RegRet, RegSeed, 0);
    fb.ret();

    return mb.build();
}

elf::Module
buildDispatchModule(const std::string &module_name,
                    const std::vector<std::string> &handler_syms)
{
    ModuleBuilder mb(module_name);
    mb.setDataSize(64);
    for (std::size_t k = 0; k < handler_syms.size(); ++k) {
        FunctionBuilder &fb =
            mb.function("dispatch" + std::to_string(k));
        // Arguments (r1 = work, r2 = seed) pass straight through;
        // the forwarding call is the churn-sensitive PLT/GOT site.
        fb.callExternal(handler_syms[k]);
        fb.ret();
    }
    return mb.build();
}

} // namespace dlsim::workload
