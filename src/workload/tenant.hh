/**
 * @file
 * Tenant plugin generator for the multi-tenant server layer.
 *
 * A tenant is a small shared library exporting one request handler,
 * `t<k>_handle`. The module *name* carries a generation number
 * (`tenant<k>_g<gen>`) but the handler symbol does not: when a
 * tenant is churned (dlclose of generation g, dlopen of g+1), every
 * GOT entry that resolved into the old module is reset by the
 * loader, and the next call through the dispatch module's PLT
 * lazily re-binds the same symbol to the new generation — the
 * plugin-reload pattern of the paper's motivation (§1, §2.3.1).
 *
 * The dispatch module is a thin stable veneer the server calls into:
 * one `dispatch<k>` export per tenant slot that forwards through its
 * own PLT to `t<k>_handle`. It is loaded once; churn invalidates
 * only its GOT entries (via the dlclose hook, which the server
 * broadcasts as coherence traffic to every core, §3.2).
 *
 * Generated code follows the program-generator register discipline:
 * r1/r2 carry (work, seed) arguments, r0 the result; handlers own
 * r10 (loop) and r11 (seed) which library code never touches;
 * r4 is the module data base, reloaded after every call.
 */

#ifndef DLSIM_WORKLOAD_TENANT_HH
#define DLSIM_WORKLOAD_TENANT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "elf/module.hh"

namespace dlsim::workload
{

/** Recipe for one tenant library generation. */
struct TenantSpec
{
    /** Module name; must be unique per generation. */
    std::string moduleName;
    /** Exported handler symbol; stable across generations. */
    std::string handlerSym;
    std::uint64_t seed = 1;
    /** Internal helper functions (called from the handler). */
    std::uint32_t helperFuncs = 4;
    /** Data section size. */
    std::uint64_t dataBytes = 4096;
    /**
     * Symbols of the shared base libraries this tenant calls
     * through its own PLT (drawn per loop iteration). May be empty.
     */
    std::vector<std::string> externCalls;
};

/** Build one tenant library (deterministic in the spec). */
elf::Module buildTenantModule(const TenantSpec &spec);

/**
 * Build the dispatch veneer: exports `dispatch<k>` forwarding to
 * `handler_syms[k]` through the PLT, for each k.
 */
elf::Module buildDispatchModule(
    const std::string &module_name,
    const std::vector<std::string> &handler_syms);

} // namespace dlsim::workload

#endif // DLSIM_WORKLOAD_TENANT_HH
