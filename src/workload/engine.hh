/**
 * @file
 * Workbench: an assembled simulation — generated program, loader,
 * dynamic linker, and core — plus the request-driven measurement
 * loop the paper's evaluation uses (per-request latency, Fig. 6-8).
 *
 * A MachineConfig selects the base machine or the ABTB-enhanced
 * machine (and the loader/patcher variants of the paper's software
 * methodology). Base and enhanced runs built from the same
 * WorkloadParams execute the identical program with identical
 * request streams, so measured deltas are the mechanism's.
 */

#ifndef DLSIM_WORKLOAD_ENGINE_HH
#define DLSIM_WORKLOAD_ENGINE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cpu/core.hh"
#include "linker/dynamic_linker.hh"
#include "linker/loader.hh"
#include "sim/sampled.hh"
#include "stats/rng.hh"
#include "workload/params.hh"
#include "workload/program.hh"

namespace dlsim::snapshot
{
class Serializer;
class Deserializer;
}

namespace dlsim::workload
{

/** Machine-side configuration of one experiment arm. */
struct MachineConfig
{
    /** Enable the trampoline-skip hardware. */
    bool enhanced = false;

    /** ABTB geometry (paper default: 256 entries, <1.5KB). */
    std::uint32_t abtbEntries = 256;
    std::uint32_t abtbAssoc = 4;
    std::uint32_t bloomBits = 65536;
    std::uint32_t bloomHashes = 6;
    bool explicitInvalidation = false;
    bool asidRetention = false;

    /** Trampoline flavour; Arm implies a pattern window of 2. */
    linker::PltStyle pltStyle = linker::PltStyle::X86;

    /** Loader behaviour. */
    bool lazyBinding = true;
    bool aslr = false;
    bool nearLibraries = false;

    /** Profiling switches. */
    bool profileTrampolines = false;
    bool collectCallSiteTrace = false;

    /** Base core parameters (caches, predictor, penalties). */
    cpu::CoreParams core;
};

/** Build the CoreParams implied by a MachineConfig. */
cpu::CoreParams makeCoreParams(const MachineConfig &mc);

/**
 * FNV-1a fingerprint over every field of (WorkloadParams,
 * MachineConfig). Stored in a snapshot's header; a snapshot may
 * only be restored into a Workbench built from parameters with the
 * identical fingerprint.
 */
std::uint64_t configFingerprint(const WorkloadParams &wl,
                                const MachineConfig &mc);

/**
 * Fingerprint of only the *structural* machine parameters — the
 * ones that determine what simulated state contains (image layout,
 * cache/TLB/predictor geometry, profiling switches). Timing scalars
 * (issue width, penalties, latencies) and the skip-unit
 * configuration are excluded: a snapshot-based sweep may change
 * those per arm via Workbench::reconfigure.
 */
std::uint64_t structuralFingerprint(const MachineConfig &mc);

/** One measured request. */
struct RequestResult
{
    std::uint32_t kind = 0;
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
};

/** An assembled, runnable experiment arm. */
class Workbench
{
  public:
    Workbench(const WorkloadParams &wl, const MachineConfig &mc);

    /**
     * Build around an already-generated program. buildProgram() is
     * deterministic in the WorkloadParams, so sweep arms over the
     * same workload can share one immutable BuiltProgram instead of
     * regenerating it per task — the dominant constant cost of a
     * parallel grid cell. `program` must be non-null and built from
     * `wl`.
     *
     * @param for_restore The machine is about to be overwritten by
     *        restoreWorkbench: skip address-space content that the
     *        restore replaces wholesale (text-page materialisation,
     *        data-region seeding). Layout, slots, symbols, and the
     *        module table — the parts a restore keeps — are built
     *        identically. A for_restore Workbench that is never
     *        restored must not be run.
     */
    Workbench(const WorkloadParams &wl, const MachineConfig &mc,
              std::shared_ptr<const BuiltProgram> program,
              bool for_restore = false);

    ~Workbench();

    /** Run `requests` requests and discard results; clears stats. */
    void warmup(std::uint32_t requests);

    /** Run one request of a kind drawn from the configured mix. */
    RequestResult runRequest();

    /** Run one request of a specific kind. */
    RequestResult runRequest(std::uint32_t kind);

    /** @name Incremental requests (harness / snapshot hooks) @{ */
    /**
     * Draw the next request from the mix and set up the handler
     * call without running it (same RNG stream as runRequest()).
     * @return The drawn request kind.
     */
    std::uint32_t beginRequest();

    /** Set up a request of a specific kind without running it. */
    void beginRequest(std::uint32_t kind);

    /**
     * Advance the in-progress request by at most `max_insts`
     * retired instructions. @return True once it has returned.
     * Between steps a harness may inject events (external GOT
     * writes, context switches) or snapshot the workbench.
     */
    bool stepRequest(std::uint64_t max_insts);
    /** @} */

    /**
     * Attach (or detach) sampled execution. When attached,
     * runRequest()/warmup() alternate detailed sample windows and
     * functional fast-forward instead of timing every instruction;
     * request cycles become CPI extrapolations. The request stream
     * (RNG draws, kinds, work items) is identical to exact mode.
     * Passing params with enabled == false detaches.
     */
    void setSampling(const sim::SampleParams &params);
    bool sampling() const { return sampler_ != nullptr; }
    const sim::SampledExecution *sampler() const
    {
        return sampler_.get();
    }

    cpu::Core &core() { return *core_; }
    linker::Image &image() { return *image_; }
    linker::DynamicLinker &linker() { return *linker_; }
    linker::Loader &loader() { return *loader_; }
    const WorkloadParams &params() const { return wl_; }
    const MachineConfig &machine() const { return mc_; }
    const BuiltProgram &program() const { return *program_; }

    /** Handler entry address for a request kind. */
    isa::Addr handlerAddress(std::uint32_t kind) const
    {
        return handlerAddrs_.at(kind);
    }

    /** Distinct trampolines executed (needs profileTrampolines). */
    std::uint64_t distinctTrampolinesExecuted() const;

    /**
     * Register the whole arm's statistics under `prefix` ("dlsim"):
     * the core's structures plus workload-level facts such as the
     * distinct-trampoline census when profiling is on.
     */
    void reportMetrics(stats::MetricsRegistry &reg,
                       const std::string &prefix) const;

    /**
     * Checkpoint the whole arm: request RNG, image (slots + module
     * state), linker counters, address space + backing pages, and
     * the core. Use snapshotWorkbench()/restoreWorkbench() for the
     * framed, fingerprinted byte-buffer form.
     */
    void save(snapshot::Serializer &s) const;
    void load(snapshot::Deserializer &d);

    /**
     * Re-target this (typically just-restored) arm at a sweep
     * configuration: timing scalars are overridden and the skip
     * unit is replaced with a cold one of the arm's geometry (or
     * removed). Structurally incompatible configs (different image
     * layout, cache geometry, profiling switches) throw
     * SnapshotError — a snapshot sweep can vary timing and the
     * mechanism under test, not the machine the state was warmed
     * on.
     */
    void reconfigure(const MachineConfig &mc);

  private:
    void seedDataRegions();

    WorkloadParams wl_;
    MachineConfig mc_;
    std::shared_ptr<const BuiltProgram> program_;
    std::unique_ptr<linker::Loader> loader_;
    std::unique_ptr<linker::Image> image_;
    std::unique_ptr<linker::DynamicLinker> linker_;
    std::unique_ptr<cpu::Core> core_;
    std::unique_ptr<sim::SampledExecution> sampler_;
    std::vector<isa::Addr> handlerAddrs_;
    stats::Rng reqRng_;
    std::unique_ptr<stats::DiscreteDistribution> mix_;
};

/**
 * Serialize `wb` into a self-validating snapshot buffer (header,
 * fingerprint, per-structure CRCs). See docs/snapshots.md.
 */
std::vector<std::uint8_t> snapshotWorkbench(const Workbench &wb);

/**
 * Restore `wb` from a buffer produced by snapshotWorkbench. The
 * Workbench must have been built from the same (WorkloadParams,
 * MachineConfig); throws snapshot::SnapshotError on any magic,
 * version, CRC, fingerprint, or geometry mismatch — never loads
 * partial state.
 *
 * @param trusted Skip the per-section payload checksums. Only for
 *        buffers whose integrity the caller already owns: bytes
 *        serialized in-process this run, or a file verified once
 *        with Deserializer::verifyAllSections(). Sweep drivers
 *        restoring one warm state into every arm use this — the
 *        checksum pass otherwise dominates fan-out cost.
 */
void restoreWorkbench(Workbench &wb, const std::uint8_t *data,
                      std::size_t size, bool trusted = false);

/**
 * Cheaply validate that `bytes` is a well-formed snapshot whose
 * fingerprint matches (wl, mc); throws SnapshotError otherwise.
 */
void checkSnapshotCompatible(const std::vector<std::uint8_t> &bytes,
                             const WorkloadParams &wl,
                             const MachineConfig &mc);

} // namespace dlsim::workload

#endif // DLSIM_WORKLOAD_ENGINE_HH
