/**
 * @file
 * Workbench: an assembled simulation — generated program, loader,
 * dynamic linker, and core — plus the request-driven measurement
 * loop the paper's evaluation uses (per-request latency, Fig. 6-8).
 *
 * A MachineConfig selects the base machine or the ABTB-enhanced
 * machine (and the loader/patcher variants of the paper's software
 * methodology). Base and enhanced runs built from the same
 * WorkloadParams execute the identical program with identical
 * request streams, so measured deltas are the mechanism's.
 */

#ifndef DLSIM_WORKLOAD_ENGINE_HH
#define DLSIM_WORKLOAD_ENGINE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cpu/core.hh"
#include "linker/dynamic_linker.hh"
#include "linker/loader.hh"
#include "stats/rng.hh"
#include "workload/params.hh"
#include "workload/program.hh"

namespace dlsim::workload
{

/** Machine-side configuration of one experiment arm. */
struct MachineConfig
{
    /** Enable the trampoline-skip hardware. */
    bool enhanced = false;

    /** ABTB geometry (paper default: 256 entries, <1.5KB). */
    std::uint32_t abtbEntries = 256;
    std::uint32_t abtbAssoc = 4;
    std::uint32_t bloomBits = 65536;
    std::uint32_t bloomHashes = 6;
    bool explicitInvalidation = false;
    bool asidRetention = false;

    /** Trampoline flavour; Arm implies a pattern window of 2. */
    linker::PltStyle pltStyle = linker::PltStyle::X86;

    /** Loader behaviour. */
    bool lazyBinding = true;
    bool aslr = false;
    bool nearLibraries = false;

    /** Profiling switches. */
    bool profileTrampolines = false;
    bool collectCallSiteTrace = false;

    /** Base core parameters (caches, predictor, penalties). */
    cpu::CoreParams core;
};

/** Build the CoreParams implied by a MachineConfig. */
cpu::CoreParams makeCoreParams(const MachineConfig &mc);

/** One measured request. */
struct RequestResult
{
    std::uint32_t kind = 0;
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
};

/** An assembled, runnable experiment arm. */
class Workbench
{
  public:
    Workbench(const WorkloadParams &wl, const MachineConfig &mc);

    /** Run `requests` requests and discard results; clears stats. */
    void warmup(std::uint32_t requests);

    /** Run one request of a kind drawn from the configured mix. */
    RequestResult runRequest();

    /** Run one request of a specific kind. */
    RequestResult runRequest(std::uint32_t kind);

    cpu::Core &core() { return *core_; }
    linker::Image &image() { return *image_; }
    linker::DynamicLinker &linker() { return *linker_; }
    linker::Loader &loader() { return *loader_; }
    const WorkloadParams &params() const { return wl_; }
    const MachineConfig &machine() const { return mc_; }
    const BuiltProgram &program() const { return program_; }

    /** Handler entry address for a request kind. */
    isa::Addr handlerAddress(std::uint32_t kind) const
    {
        return handlerAddrs_.at(kind);
    }

    /** Distinct trampolines executed (needs profileTrampolines). */
    std::uint64_t distinctTrampolinesExecuted() const;

    /**
     * Register the whole arm's statistics under `prefix` ("dlsim"):
     * the core's structures plus workload-level facts such as the
     * distinct-trampoline census when profiling is on.
     */
    void reportMetrics(stats::MetricsRegistry &reg,
                       const std::string &prefix) const;

  private:
    void seedDataRegions();

    WorkloadParams wl_;
    MachineConfig mc_;
    BuiltProgram program_;
    std::unique_ptr<linker::Loader> loader_;
    std::unique_ptr<linker::Image> image_;
    std::unique_ptr<linker::DynamicLinker> linker_;
    std::unique_ptr<cpu::Core> core_;
    std::vector<isa::Addr> handlerAddrs_;
    stats::Rng reqRng_;
    std::unique_ptr<stats::DiscreteDistribution> mix_;
};

} // namespace dlsim::workload

#endif // DLSIM_WORKLOAD_ENGINE_HH
