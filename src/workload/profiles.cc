#include "workload/profiles.hh"

#include <stdexcept>

namespace dlsim::workload
{

WorkloadParams
apacheProfile(std::uint64_t seed)
{
    WorkloadParams p;
    p.name = "apache";
    p.seed = seed;

    // httpd + PHP + supporting libraries: a deep stack of small
    // library functions that call each other constantly, plus a
    // large per-request kernel/network path. Library bodies are
    // small, so trampoline and GOT lines are a large share of the
    // touched footprint — the paper's headline workload.
    p.numLibs = 10;
    p.funcsPerLib = 80;
    p.libFnInsts = 5;
    p.unusedImportsPerModule = 24;
    p.interLibCallProb = 0.65;
    p.maxNestedCallSites = 1;

    // The six SPECweb 2009 request types of Fig. 6.
    p.requests = {
        {"Home", 0.10, 1, 2},        {"Catalog", 0.25, 1, 2},
        {"FileCatalog", 0.15, 1, 2}, {"File", 0.20, 1, 3},
        {"Index", 0.15, 1, 2},       {"Search", 0.15, 2, 3},
    };
    p.stepsPerRequest = 180;
    p.appWorkInsts = 3;
    p.libCallProbPerStep = 1.0;
    p.calledImports = 240;
    p.popularity = Popularity::SteepCutoff;
    p.hotSet = 12;
    p.hotFraction = 0.85;

    p.loadFrac = 0.20;
    p.storeFrac = 0.08;
    p.condFrac = 0.14;
    p.volatileBranchFrac = 0.5;

    p.libDataBytes = 1 << 16;
    p.appDataBytes = 4 << 20;
    p.datasetAccessesPerStep = 1;
    p.datasetHotFrac = 0.6;
    p.hotDataFrac = 0.99;

    p.kernelFuncs = 310;
    p.kernelFnInsts = 14;
    p.kernelCallsPerRequest = 1;

    p.ifuncSymbols = 12;
    p.tailJumpFrac = 0.05;
    p.virtualCallFrac = 0.05;
    return p;
}

WorkloadParams
firefoxProfile(std::uint64_t seed)
{
    WorkloadParams p;
    p.name = "firefox";
    p.seed = seed;

    // A very large code base: thousands of library functions, most
    // called rarely; execution dominated by small compute kernels,
    // so the trampoline rate is low (0.72 PKI in Table 2) even
    // though the distinct-trampoline count is the highest (2457).
    p.numLibs = 12;
    p.funcsPerLib = 300;
    p.libFnInsts = 20;
    p.unusedImportsPerModule = 48;
    p.interLibCallProb = 0.70;
    p.maxNestedCallSites = 3;
    p.nestedExecProb = 0.25;

    // The five Peacekeeper categories of Table 5.
    p.requests = {
        {"Rendering", 0.25, 4, 10},     {"HTML5Canvas", 0.20, 4, 10},
        {"Data", 0.20, 3, 8},          {"DOMOperations", 0.20, 4, 12},
        {"TextParsing", 0.15, 5, 12},
    };
    p.stepsPerRequest = 60;
    p.appWorkInsts = 40;
    p.libCallProbPerStep = 0.03; // rare, guarded call sites
    p.calledImports = 700;
    p.coverageFraction = 0.3;
    p.popularity = Popularity::Zipf;
    p.zipfS = 1.5;

    p.loadFrac = 0.18;
    p.storeFrac = 0.06;
    p.condFrac = 0.10;
    p.volatileBranchFrac = 0.25;

    p.libDataBytes = 1 << 16;
    p.appDataBytes = 2 << 20;
    p.datasetAccessesPerStep = 0;
    p.hotDataFrac = 0.97;

    p.ifuncSymbols = 16; // string routines etc.
    p.tailJumpFrac = 0.02;
    p.virtualCallFrac = 0.15; // C++-heavy code base
    return p;
}

WorkloadParams
memcachedProfile(std::uint64_t seed)
{
    WorkloadParams p;
    p.name = "memcached";
    p.seed = seed;

    // Tiny user code footprint (memcached + libevent + a libc
    // slice) over a large in-memory dataset, with a heavy kernel
    // network path per request: few trampolines (33 distinct) but
    // high I$ pressure from the PLT-free kernel path.
    p.numLibs = 2;
    p.funcsPerLib = 12;
    p.libFnInsts = 22;
    p.unusedImportsPerModule = 12;
    p.interLibCallProb = 0.15;

    p.requests = {
        {"GET", 0.90, 1, 2},
        {"SET", 0.10, 1, 3},
    };
    p.stepsPerRequest = 40;
    p.appWorkInsts = 20;
    p.libCallProbPerStep = 1.0;
    p.calledImports = 30;
    p.popularity = Popularity::SteepCutoff;
    p.hotSet = 8;
    p.hotFraction = 0.85;

    p.loadFrac = 0.26;
    p.storeFrac = 0.10;
    p.condFrac = 0.10;
    p.volatileBranchFrac = 0.45;

    p.libDataBytes = 1 << 14;
    p.appDataBytes = 32 << 20; // the key-value store
    p.datasetAccessesPerStep = 3;
    p.datasetHotFrac = 0.15;
    p.hotDataFrac = 0.85;

    p.kernelFuncs = 130;
    p.kernelFnInsts = 28;
    p.kernelCallsPerRequest = 2; // receive + send paths
    return p;
}

WorkloadParams
mysqlProfile(std::uint64_t seed)
{
    WorkloadParams p;
    p.name = "mysql";
    p.seed = seed;

    p.numLibs = 10;
    p.funcsPerLib = 240;
    p.libFnInsts = 12;
    p.unusedImportsPerModule = 32;
    p.interLibCallProb = 0.55;
    p.maxNestedCallSites = 3;
    p.nestedExecProb = 0.4;

    // TPC-C's two dominant transactions (Fig. 8 / Table 6).
    p.requests = {
        {"NewOrder", 0.5, 2, 5},
        {"Payment", 0.5, 1, 3},
    };
    p.stepsPerRequest = 110;
    p.appWorkInsts = 14;
    p.libCallProbPerStep = 0.35;
    p.calledImports = 450;
    p.coverageFraction = 0.3;
    p.popularity = Popularity::SteepCutoff;
    p.hotSet = 32;
    p.hotFraction = 0.85;

    p.loadFrac = 0.22;
    p.storeFrac = 0.10;
    p.condFrac = 0.18; // OLTP is branchy (14.44 mispredict PKI)
    p.volatileBranchFrac = 0.45;

    p.libDataBytes = 1 << 15;
    p.appDataBytes = 16 << 20; // buffer pool
    p.datasetAccessesPerStep = 1;
    p.datasetHotFrac = 0.9;
    p.hotDataFrac = 0.98;

    p.kernelFuncs = 70;
    p.kernelFnInsts = 24;
    p.kernelCallsPerRequest = 1;

    p.ifuncSymbols = 8;
    p.tailJumpFrac = 0.03;
    p.virtualCallFrac = 0.10;
    return p;
}

WorkloadParams
profileByName(const std::string &name, std::uint64_t seed)
{
    if (name == "apache")
        return apacheProfile(seed);
    if (name == "firefox")
        return firefoxProfile(seed);
    if (name == "memcached")
        return memcachedProfile(seed);
    if (name == "mysql")
        return mysqlProfile(seed);
    throw std::invalid_argument("unknown workload profile: " + name);
}

std::vector<WorkloadParams>
allProfiles(std::uint64_t seed)
{
    return {apacheProfile(seed), firefoxProfile(seed),
            memcachedProfile(seed), mysqlProfile(seed)};
}

} // namespace dlsim::workload
