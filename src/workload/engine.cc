#include "workload/engine.hh"

#include <cassert>

#include "mem/address_space.hh"
#include "snapshot/format.hh"
#include "snapshot/serializer.hh"
#include "stats/metrics.hh"

namespace dlsim::workload
{

namespace
{

void
mixCache(snapshot::Fingerprint &fp, const mem::CacheParams &p)
{
    fp.mix(p.name);
    fp.mix(p.sizeBytes);
    fp.mix(p.assoc);
    fp.mix(p.lineBytes);
}

void
mixTlb(snapshot::Fingerprint &fp, const mem::TlbParams &p)
{
    fp.mix(p.name);
    fp.mix(p.entries);
    fp.mix(p.assoc);
}

/**
 * Parameters that determine what simulated state *contains*: image
 * layout, cache/TLB/predictor geometry, profiling switches. A warm
 * snapshot is only meaningful on a machine that matches these.
 */
void
mixStructural(snapshot::Fingerprint &fp, const MachineConfig &mc)
{
    fp.mix(static_cast<std::uint32_t>(mc.pltStyle));
    fp.mix(mc.lazyBinding);
    fp.mix(mc.aslr);
    fp.mix(mc.nearLibraries);
    fp.mix(mc.profileTrampolines);
    fp.mix(mc.collectCallSiteTrace);

    const cpu::CoreParams &c = mc.core;
    mixCache(fp, c.mem.l1i);
    mixCache(fp, c.mem.l1d);
    mixCache(fp, c.mem.l2);
    mixCache(fp, c.mem.l3);
    mixTlb(fp, c.mem.itlb);
    mixTlb(fp, c.mem.dtlb);
    fp.mix(c.mem.iPrefetchNextLine);

    fp.mix(c.predictor.btb.entries);
    fp.mix(c.predictor.btb.assoc);
    fp.mix(c.predictor.direction);
    fp.mix(static_cast<std::uint64_t>(c.predictor.rasDepth));
    fp.mix(c.predictor.indirect.enabled);
    fp.mix(c.predictor.indirect.entries);
    fp.mix(c.predictor.indirect.assoc);
    fp.mix(c.predictor.indirect.historyBits);

    fp.mix(c.checkSkips);
    fp.mix(c.asidTlbRetention);
    fp.mix(c.tracePath);
}

/** Timing scalars — overridable post-restore via reconfigure(). */
void
mixTiming(snapshot::Fingerprint &fp, const MachineConfig &mc)
{
    fp.mix(mc.core.issueWidth);
    fp.mix(mc.core.mispredictPenalty);
    fp.mix(mc.core.resolverInsts);
    fp.mix(mc.core.resolverCycles);
    fp.mix(mc.core.mem.l2Latency);
    fp.mix(mc.core.mem.l3Latency);
    fp.mix(mc.core.mem.memLatency);
    fp.mix(mc.core.mem.walkLatency);
}

/** Skip-unit configuration — replaceable via reconfigure(). */
void
mixSkip(snapshot::Fingerprint &fp, const MachineConfig &mc)
{
    fp.mix(mc.enhanced);
    fp.mix(mc.abtbEntries);
    fp.mix(mc.abtbAssoc);
    fp.mix(mc.bloomBits);
    fp.mix(mc.bloomHashes);
    fp.mix(mc.explicitInvalidation);
    fp.mix(mc.asidRetention);
    fp.mix(mc.core.skipUnitEnabled);
    fp.mix(mc.core.skip.abtb.entries);
    fp.mix(mc.core.skip.abtb.assoc);
    fp.mix(mc.core.skip.bloomBits);
    fp.mix(mc.core.skip.bloomHashes);
    fp.mix(mc.core.skip.explicitInvalidation);
    fp.mix(mc.core.skip.asidRetention);
    fp.mix(mc.core.skip.patternWindow);
    fp.mix(mc.core.skip.buggySuppressStoreFlush);
}

void
mixWorkload(snapshot::Fingerprint &fp, const WorkloadParams &wl)
{
    fp.mix(wl.name);
    fp.mix(wl.seed);
    fp.mix(wl.numLibs);
    fp.mix(wl.funcsPerLib);
    fp.mix(wl.libFnInsts);
    fp.mix(wl.unusedImportsPerModule);
    fp.mix(static_cast<std::uint64_t>(wl.requests.size()));
    for (const auto &rc : wl.requests) {
        fp.mix(rc.name);
        fp.mix(rc.weight);
        fp.mix(rc.minWork);
        fp.mix(rc.maxWork);
    }
    fp.mix(wl.stepsPerRequest);
    fp.mix(wl.appWorkInsts);
    fp.mix(wl.libCallProbPerStep);
    fp.mix(wl.calledImports);
    fp.mix(wl.coverageFraction);
    fp.mix(static_cast<std::uint32_t>(wl.popularity));
    fp.mix(wl.zipfS);
    fp.mix(wl.hotSet);
    fp.mix(wl.hotFraction);
    fp.mix(wl.interLibCallProb);
    fp.mix(wl.maxNestedCallSites);
    fp.mix(wl.nestedExecProb);
    fp.mix(wl.loadFrac);
    fp.mix(wl.storeFrac);
    fp.mix(wl.condFrac);
    fp.mix(wl.volatileBranchFrac);
    fp.mix(wl.libDataBytes);
    fp.mix(wl.appDataBytes);
    fp.mix(wl.datasetAccessesPerStep);
    fp.mix(wl.datasetHotFrac);
    fp.mix(wl.hotDataFrac);
    fp.mix(wl.hotDataBytes);
    fp.mix(wl.kernelFuncs);
    fp.mix(wl.kernelFnInsts);
    fp.mix(wl.kernelCallsPerRequest);
    fp.mix(wl.ifuncSymbols);
    fp.mix(wl.tailJumpFrac);
    fp.mix(wl.virtualCallFrac);
}

} // namespace

std::uint64_t
configFingerprint(const WorkloadParams &wl, const MachineConfig &mc)
{
    snapshot::Fingerprint fp;
    mixWorkload(fp, wl);
    mixStructural(fp, mc);
    mixTiming(fp, mc);
    mixSkip(fp, mc);
    return fp.value();
}

std::uint64_t
structuralFingerprint(const MachineConfig &mc)
{
    snapshot::Fingerprint fp;
    mixStructural(fp, mc);
    return fp.value();
}

cpu::CoreParams
makeCoreParams(const MachineConfig &mc)
{
    cpu::CoreParams params = mc.core;
    params.skipUnitEnabled = mc.enhanced;
    params.skip.abtb.entries = mc.abtbEntries;
    params.skip.abtb.assoc = mc.abtbAssoc;
    params.skip.bloomBits = mc.bloomBits;
    params.skip.bloomHashes = mc.bloomHashes;
    params.skip.explicitInvalidation = mc.explicitInvalidation;
    params.skip.asidRetention = mc.asidRetention;
    if (mc.pltStyle == linker::PltStyle::Arm)
        params.skip.patternWindow = 2;
    params.profileTrampolines = mc.profileTrampolines;
    params.collectCallSiteTrace = mc.collectCallSiteTrace;
    return params;
}

Workbench::Workbench(const WorkloadParams &wl,
                     const MachineConfig &mc)
    : Workbench(wl, mc,
                std::make_shared<const BuiltProgram>(
                    buildProgram(wl)))
{
}

Workbench::Workbench(const WorkloadParams &wl,
                     const MachineConfig &mc,
                     std::shared_ptr<const BuiltProgram> program,
                     bool for_restore)
    : wl_(wl), mc_(mc), program_(std::move(program)),
      reqRng_(wl.seed ^ 0x5eedull)
{
    assert(program_ != nullptr);
    linker::LoaderOptions opts;
    opts.lazyBinding = mc.lazyBinding;
    opts.aslr = mc.aslr;
    opts.aslrSeed = wl.seed + 1;
    opts.nearLibraries = mc.nearLibraries;
    opts.pltStyle = mc.pltStyle;
    opts.skeletonForRestore = for_restore;
    loader_ = std::make_unique<linker::Loader>(opts);

    image_ = loader_->load(program_->exe, program_->libs);
    linker_ = std::make_unique<linker::DynamicLinker>(*image_);
    core_ = std::make_unique<cpu::Core>(makeCoreParams(mc));
    core_->attachProcess(image_.get(), linker_.get(), /*asid=*/0);
    core_->initStack(loader_->stackTop());

    if (!for_restore)
        seedDataRegions();

    handlerAddrs_.reserve(program_->handlers.size());
    for (const auto &name : program_->handlers)
        handlerAddrs_.push_back(image_->symbolAddress(name));

    std::vector<double> weights;
    weights.reserve(wl_.requests.size());
    for (const auto &rc : wl_.requests)
        weights.push_back(rc.weight);
    mix_ = std::make_unique<stats::DiscreteDistribution>(
        std::move(weights));
}

void
Workbench::seedDataRegions()
{
    // Fill every module data section with pseudo-random words so
    // that data-dependent branches in generated code see entropy.
    stats::Rng rng(wl_.seed ^ 0xda7aull);
    auto &as = image_->addressSpace();
    for (const auto &lm : image_->modules()) {
        if (lm.module.dataSize() > 0)
            as.fillRandom(lm.dataBase, lm.module.dataSize(),
                          rng.next());
    }
}

Workbench::~Workbench() = default;

void
Workbench::setSampling(const sim::SampleParams &params)
{
    if (!params.enabled) {
        sampler_.reset();
        return;
    }
    sampler_ = std::make_unique<sim::SampledExecution>(
        *core_, *image_, *linker_, params);
}

void
Workbench::warmup(std::uint32_t requests)
{
    for (std::uint32_t n = 0; n < requests; ++n)
        runRequest();
    core_->clearStats();
    image_->addressSpace().clearPtcStats();
    if (sampler_)
        sampler_->clearStats();
}

RequestResult
Workbench::runRequest()
{
    return runRequest(
        static_cast<std::uint32_t>(mix_->sample(reqRng_)));
}

RequestResult
Workbench::runRequest(std::uint32_t kind)
{
    assert(kind < wl_.requests.size());
    const auto &rc = wl_.requests[kind];
    const std::uint64_t work =
        reqRng_.nextRange(rc.minWork, rc.maxWork);
    const std::uint64_t seed = reqRng_.next() | 1;

    if (sampler_) {
        // Identical RNG draws, identical request: only the
        // execution engine differs.
        core_->beginCall(handlerAddrs_[kind], work, seed);
        const auto est = sampler_->runToReturn();
        return RequestResult{kind, est.cycles, est.instructions};
    }

    const auto r =
        core_->callFunction(handlerAddrs_[kind], work, seed);
    return RequestResult{kind, r.cycles, r.instructions};
}

std::uint32_t
Workbench::beginRequest()
{
    const auto kind =
        static_cast<std::uint32_t>(mix_->sample(reqRng_));
    beginRequest(kind);
    return kind;
}

void
Workbench::beginRequest(std::uint32_t kind)
{
    assert(kind < wl_.requests.size());
    const auto &rc = wl_.requests[kind];
    const std::uint64_t work =
        reqRng_.nextRange(rc.minWork, rc.maxWork);
    const std::uint64_t seed = reqRng_.next() | 1;
    core_->beginCall(handlerAddrs_[kind], work, seed);
}

bool
Workbench::stepRequest(std::uint64_t max_insts)
{
    return core_->runQuantum(max_insts);
}

std::uint64_t
Workbench::distinctTrampolinesExecuted() const
{
    return core_->trampolineCounts().size();
}

void
Workbench::save(snapshot::Serializer &s) const
{
    // The request RNG is the only workbench-owned mutable state;
    // everything else lives in the image, linker, address space,
    // and core. The page pool is emitted after the address space
    // (ids are assigned while the space serializes) but restored
    // first — the Deserializer finds sections by tag, not order.
    s.beginSection("workbench");
    reqRng_.save(s);
    s.endSection();

    s.beginSection("image");
    image_->save(s);
    s.endSection();

    s.beginSection("linker");
    linker_->save(s);
    s.endSection();

    mem::PagePoolSaver pool;
    s.beginSection("memory");
    image_->addressSpace().save(s, pool);
    s.endSection();

    s.beginSection("pages");
    pool.save(s);
    s.endSection();

    s.beginSection("core");
    core_->save(s);
    s.endSection();
}

void
Workbench::load(snapshot::Deserializer &d)
{
    mem::PagePoolLoader pool;
    d.enterSection("pages");
    pool.load(d);
    d.leaveSection();

    d.enterSection("memory");
    image_->addressSpace().load(d, pool);
    d.leaveSection();

    d.enterSection("image");
    image_->load(d);
    d.leaveSection();

    d.enterSection("linker");
    linker_->load(d);
    d.leaveSection();

    d.enterSection("core");
    core_->load(d);
    d.leaveSection();

    d.enterSection("workbench");
    reqRng_.load(d);
    d.leaveSection();
}

void
Workbench::reconfigure(const MachineConfig &mc)
{
    if (structuralFingerprint(mc) != structuralFingerprint(mc_)) {
        throw snapshot::SnapshotError(
            "reconfigure: structurally incompatible machine config "
            "(a snapshot sweep may vary timing scalars and the "
            "skip unit, not image layout or cache/TLB/predictor "
            "geometry)");
    }
    core_->setTiming(mc.core.issueWidth, mc.core.mispredictPenalty,
                     mc.core.resolverInsts, mc.core.resolverCycles);
    core_->hierarchy().setLatencies(
        mc.core.mem.l2Latency, mc.core.mem.l3Latency,
        mc.core.mem.memLatency, mc.core.mem.walkLatency);
    const cpu::CoreParams cp = makeCoreParams(mc);
    core_->resetSkipUnit(cp.skipUnitEnabled, cp.skip);
    core_->setBlockDispatch(mc.core.blockDispatch);
    mc_ = mc;
}

std::vector<std::uint8_t>
snapshotWorkbench(const Workbench &wb)
{
    snapshot::Serializer s(
        configFingerprint(wb.params(), wb.machine()));
    wb.save(s);
    return s.finish();
}

void
restoreWorkbench(Workbench &wb, const std::uint8_t *data,
                 std::size_t size, bool trusted)
{
    snapshot::Deserializer d(data, size, !trusted);
    if (d.fingerprint() !=
        configFingerprint(wb.params(), wb.machine())) {
        throw snapshot::SnapshotError(
            "snapshot was taken with different workload/machine "
            "parameters (fingerprint mismatch)");
    }
    wb.load(d);
}

void
checkSnapshotCompatible(const std::vector<std::uint8_t> &bytes,
                        const WorkloadParams &wl,
                        const MachineConfig &mc)
{
    snapshot::Deserializer d(bytes.data(), bytes.size());
    if (d.fingerprint() != configFingerprint(wl, mc)) {
        throw snapshot::SnapshotError(
            "snapshot was taken with different workload/machine "
            "parameters (fingerprint mismatch)");
    }
}

void
Workbench::reportMetrics(stats::MetricsRegistry &reg,
                         const std::string &prefix) const
{
    core_->reportMetrics(reg, prefix);
    if (sampler_)
        sampler_->reportMetrics(reg, prefix);
    if (mc_.profileTrampolines) {
        reg.counter(prefix + ".workload.distinct_trampolines",
                    distinctTrampolinesExecuted());
    }
    const auto &as = image_->addressSpace();
    reg.counter(prefix + ".mem.ptc.hits", as.ptcHits());
    reg.counter(prefix + ".mem.ptc.misses", as.ptcMisses());
    reg.counter(prefix + ".mem.ptc.flushes", as.ptcFlushes());
    reg.gauge(prefix + ".workload.library_count",
              static_cast<double>(wl_.numLibs));
}

} // namespace dlsim::workload
