#include "workload/engine.hh"

#include <cassert>

#include "mem/address_space.hh"
#include "stats/metrics.hh"

namespace dlsim::workload
{

cpu::CoreParams
makeCoreParams(const MachineConfig &mc)
{
    cpu::CoreParams params = mc.core;
    params.skipUnitEnabled = mc.enhanced;
    params.skip.abtb.entries = mc.abtbEntries;
    params.skip.abtb.assoc = mc.abtbAssoc;
    params.skip.bloomBits = mc.bloomBits;
    params.skip.bloomHashes = mc.bloomHashes;
    params.skip.explicitInvalidation = mc.explicitInvalidation;
    params.skip.asidRetention = mc.asidRetention;
    if (mc.pltStyle == linker::PltStyle::Arm)
        params.skip.patternWindow = 2;
    params.profileTrampolines = mc.profileTrampolines;
    params.collectCallSiteTrace = mc.collectCallSiteTrace;
    return params;
}

Workbench::Workbench(const WorkloadParams &wl,
                     const MachineConfig &mc)
    : wl_(wl), mc_(mc), program_(buildProgram(wl)),
      reqRng_(wl.seed ^ 0x5eedull)
{
    linker::LoaderOptions opts;
    opts.lazyBinding = mc.lazyBinding;
    opts.aslr = mc.aslr;
    opts.aslrSeed = wl.seed + 1;
    opts.nearLibraries = mc.nearLibraries;
    opts.pltStyle = mc.pltStyle;
    loader_ = std::make_unique<linker::Loader>(opts);

    image_ = loader_->load(program_.exe, program_.libs);
    linker_ = std::make_unique<linker::DynamicLinker>(*image_);
    core_ = std::make_unique<cpu::Core>(makeCoreParams(mc));
    core_->attachProcess(image_.get(), linker_.get(), /*asid=*/0);
    core_->initStack(loader_->stackTop());

    seedDataRegions();

    handlerAddrs_.reserve(program_.handlers.size());
    for (const auto &name : program_.handlers)
        handlerAddrs_.push_back(image_->symbolAddress(name));

    std::vector<double> weights;
    weights.reserve(wl_.requests.size());
    for (const auto &rc : wl_.requests)
        weights.push_back(rc.weight);
    mix_ = std::make_unique<stats::DiscreteDistribution>(
        std::move(weights));
}

void
Workbench::seedDataRegions()
{
    // Fill every module data section with pseudo-random words so
    // that data-dependent branches in generated code see entropy.
    stats::Rng rng(wl_.seed ^ 0xda7aull);
    auto &as = image_->addressSpace();
    for (const auto &lm : image_->modules()) {
        if (lm.module.dataSize() > 0)
            as.fillRandom(lm.dataBase, lm.module.dataSize(),
                          rng.next());
    }
}

void
Workbench::warmup(std::uint32_t requests)
{
    for (std::uint32_t n = 0; n < requests; ++n)
        runRequest();
    core_->clearStats();
}

RequestResult
Workbench::runRequest()
{
    return runRequest(
        static_cast<std::uint32_t>(mix_->sample(reqRng_)));
}

RequestResult
Workbench::runRequest(std::uint32_t kind)
{
    assert(kind < wl_.requests.size());
    const auto &rc = wl_.requests[kind];
    const std::uint64_t work =
        reqRng_.nextRange(rc.minWork, rc.maxWork);
    const std::uint64_t seed = reqRng_.next() | 1;

    const auto r =
        core_->callFunction(handlerAddrs_[kind], work, seed);
    return RequestResult{kind, r.cycles, r.instructions};
}

std::uint64_t
Workbench::distinctTrampolinesExecuted() const
{
    return core_->trampolineCounts().size();
}

void
Workbench::reportMetrics(stats::MetricsRegistry &reg,
                         const std::string &prefix) const
{
    core_->reportMetrics(reg, prefix);
    if (mc_.profileTrampolines) {
        reg.counter(prefix + ".workload.distinct_trampolines",
                    distinctTrampolinesExecuted());
    }
    reg.gauge(prefix + ".workload.library_count",
              static_cast<double>(wl_.numLibs));
}

} // namespace dlsim::workload
