/**
 * @file
 * Parameters of the synthetic workload generator.
 *
 * The generator produces an application + library module set whose
 * *library-call behaviour* is calibrated to the paper's published
 * workload characterisation (Tables 2 and 3, Fig. 4): trampoline
 * executions per kilo-instruction, number of distinct trampolines,
 * and the popularity skew across them. Everything else (cache and
 * TLB footprints, branch entropy) is shaped by the secondary knobs
 * so the base machine lands near the paper's Table 4 counters.
 */

#ifndef DLSIM_WORKLOAD_PARAMS_HH
#define DLSIM_WORKLOAD_PARAMS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace dlsim::workload
{

/** One request type (e.g. SPECweb "Catalog", memcached "GET"). */
struct RequestClass
{
    std::string name;
    double weight = 1.0;   ///< Share of the request mix.
    /** Payload-size argument range: the handler loops this many
     *  times over its step sequence (uniform draw per request). */
    std::uint32_t minWork = 1;
    std::uint32_t maxWork = 2;
};

/** Trampoline-popularity model across the app's called imports. */
enum class Popularity : std::uint8_t
{
    Uniform,     ///< All called imports equally likely.
    Zipf,        ///< Long shallow tail (Firefox in Fig. 4).
    SteepCutoff, ///< Hot set + rare tail (Apache/Memcached).
};

/** Generator parameters. */
struct WorkloadParams
{
    std::string name = "custom";
    std::uint64_t seed = 42;

    /** @name Module structure @{ */
    std::uint32_t numLibs = 8;
    std::uint32_t funcsPerLib = 64;
    /** Mean plain instructions per library function body. */
    std::uint32_t libFnInsts = 40;
    /** Extra imports declared but never called per module (sparse,
     *  definition-ordered PLT sections, paper §2). */
    std::uint32_t unusedImportsPerModule = 16;
    /** @} */

    /** @name Application / request structure @{ */
    std::vector<RequestClass> requests{{"default", 1.0, 1, 2}};
    /** Static steps in a handler's per-iteration body. */
    std::uint32_t stepsPerRequest = 30;
    /** Plain instructions per handler step. */
    std::uint32_t appWorkInsts = 8;
    /** Dynamic probability that a handler step's library-call site
     *  executes. Every step keeps a *static* call site; when this
     *  is < 1 the call is guarded by a data-dependent test taken
     *  with probability ~2^-round(-log2(p)). */
    double libCallProbPerStep = 1.0;
    /** Distinct library symbols the application calls. */
    std::uint32_t calledImports = 120;
    /** @} */

    /** @name Popularity of called imports @{ */
    /** Fraction of called imports guaranteed a static call site
     *  (spread evenly across the site sequence); the remaining
     *  sites follow the popularity model. */
    double coverageFraction = 1.0;
    Popularity popularity = Popularity::SteepCutoff;
    double zipfS = 1.0;        ///< For Popularity::Zipf.
    std::uint32_t hotSet = 10; ///< For SteepCutoff.
    double hotFraction = 0.9;  ///< Calls landing in the hot set.
    /** @} */

    /** @name Library-to-library calls @{ */
    /** Per-site probability that a library function has a call site
     *  into a deeper library (up to maxNestedCallSites sites). */
    double interLibCallProb = 0.3;
    /** Static nested-call sites a library function may carry. */
    std::uint32_t maxNestedCallSites = 2;
    /** Dynamic (data-dependent) execution probability per nested
     *  site, rounded to a power of 1/2. 1.0 = unconditional. */
    double nestedExecProb = 0.5;
    /** @} */

    /** @name Instruction mix inside generated bodies @{ */
    double loadFrac = 0.20;
    double storeFrac = 0.08;
    double condFrac = 0.12;
    /** Fraction of conditional branches whose direction depends on
     *  per-request data (mispredict fuel); the rest are static. */
    double volatileBranchFrac = 0.5;
    /** @} */

    /** @name Data footprints and locality @{ */
    std::uint64_t libDataBytes = 1 << 16;
    /** Application data section ("dataset"); large for memcached. */
    std::uint64_t appDataBytes = 1 << 20;
    /** Random dataset loads per handler step (D-side pressure). */
    std::uint32_t datasetAccessesPerStep = 1;
    /** Fraction of dataset-access sites confined to the hot window
     *  (independent of hotDataFrac; low for memcached's random
     *  key-value lookups, high for a warm buffer pool). */
    double datasetHotFrac = 0.0;
    /** Fraction of generated access sites confined to a small hot
     *  window of their data section (real code has locality; the
     *  rest roam the full section and generate D$/D-TLB misses). */
    /** Small enough that all modules' hot windows fit L1D. */
    double hotDataFrac = 0.85;
    std::uint64_t hotDataBytes = 2048;
    /** @} */

    /** @name Kernel/syscall path (PLT-free cold code) @{ */
    /**
     * Size of a "kernel" module traversed via one `sys_path` import
     * per handler iteration: a wide tree of functions with plain
     * bodies and *direct* calls. Models the network/syscall code a
     * server executes per request — instruction-cache and I-TLB
     * pressure with no trampolines, which is how e.g. memcached
     * shows 52 I$-miss PKI yet only 33 distinct trampolines.
     */
    std::uint32_t kernelFuncs = 0;
    std::uint32_t kernelFnInsts = 24;
    std::uint32_t kernelCallsPerRequest = 1;
    /** @} */

    /** @name Optional mechanism-relevant features @{ */
    /** Library symbols exported as GNU ifuncs (paper §2.4.1). */
    std::uint32_t ifuncSymbols = 0;
    /** Fraction of app call steps invoked via a tail-jump helper
     *  (`jmp sym@plt`, the §2.3 "unconventional trick"). */
    double tailJumpFrac = 0.0;
    /** Fraction of app call steps using a C++-virtual-style
     *  register-indirect call to a function pointer (§2.4.2);
     *  these bypass the PLT and must not populate the ABTB. */
    double virtualCallFrac = 0.0;
    /** @} */
};

} // namespace dlsim::workload

#endif // DLSIM_WORKLOAD_PARAMS_HH
