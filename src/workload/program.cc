#include "workload/program.hh"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <unordered_map>

#include "elf/builder.hh"
#include "stats/rng.hh"

namespace dlsim::workload
{

namespace
{

using elf::FunctionBuilder;
using elf::ModuleBuilder;
using isa::AluKind;
using isa::CondKind;
using isa::Reg;
using stats::Rng;

/** Registers (see program.hh for the convention). */
constexpr Reg RegWork = isa::RegArg0;  // r1
constexpr Reg RegSeed2 = isa::RegArg1; // r2
constexpr Reg RegBase = 4;
constexpr Reg RegScratchA = 5;
constexpr Reg RegScratchB = 6;
constexpr Reg RegScratchC = 7;
constexpr Reg RegScratchD = 8;
constexpr Reg RegScratchE = 9;
constexpr Reg RegLoop = 10;
constexpr Reg RegSeed = 11;
constexpr Reg RegPtr = 12;

/** Aligned-8 address mask covering a data section. */
std::uint64_t
maskFor(std::uint64_t bytes)
{
    const std::uint64_t pot = std::bit_floor(bytes);
    assert(pot >= 64);
    return (pot - 1) & ~7ull;
}

/** Shared body-emission context. */
struct BodyCtx
{
    FunctionBuilder &fb;
    Rng &rng;
    const WorkloadParams &p;
    std::uint64_t dataMask; ///< For RegBase-relative accesses.
    Reg seedReg;            ///< LCG register (r1 in libs, r11 in app).
};

/** Advance the per-request pseudo-random seed register. */
void
emitLcgStep(BodyCtx &ctx)
{
    ctx.fb.aluImm(AluKind::Mul, ctx.seedReg, ctx.seedReg,
                  6364136223846793005ll);
    ctx.fb.aluImm(AluKind::Add, ctx.seedReg, ctx.seedReg,
                  1442695040888963407ll);
}

/** Compute a random in-section address into RegScratchA. */
void
emitRandomAddress(BodyCtx &ctx, std::uint64_t mask)
{
    emitLcgStep(ctx);
    ctx.fb.aluImm(AluKind::Shr, RegScratchA, ctx.seedReg, 11);
    ctx.fb.aluImm(AluKind::And, RegScratchA, RegScratchA,
                  static_cast<std::int64_t>(mask));
    ctx.fb.alu(AluKind::Add, RegScratchA, RegScratchA, RegBase);
}

/** A data-dependent load; value lands in RegScratchB. */
void
emitRandomLoad(BodyCtx &ctx, std::uint64_t mask)
{
    emitRandomAddress(ctx, mask);
    ctx.fb.load(RegScratchB, RegScratchA, 0);
}

/** A data-dependent store. */
void
emitRandomStore(BodyCtx &ctx, std::uint64_t mask)
{
    emitRandomAddress(ctx, mask);
    ctx.fb.store(RegScratchB, RegScratchA, 0);
}

/** One plain ALU instruction on scratch registers. */
void
emitPlainAlu(BodyCtx &ctx)
{
    static constexpr AluKind kinds[] = {AluKind::Add, AluKind::Sub,
                                        AluKind::Xor, AluKind::And,
                                        AluKind::Or};
    const auto kind =
        kinds[ctx.rng.nextBelow(std::size(kinds))];
    const Reg dst = static_cast<Reg>(
        RegScratchC + ctx.rng.nextBelow(3)); // r7..r9
    ctx.fb.alu(kind, dst, RegScratchB,
               static_cast<Reg>(RegScratchC + ctx.rng.nextBelow(3)));
}

/**
 * A conditional branch over a short forward block. Volatile
 * branches test loaded data (direction varies per request); static
 * branches test a constant (fully predictable once warm).
 */
void
emitCondBlock(BodyCtx &ctx)
{
    const bool volatile_br =
        ctx.rng.nextBool(ctx.p.volatileBranchFrac);
    if (volatile_br) {
        ctx.fb.aluImm(AluKind::And, RegScratchC, RegScratchB, 1);
    } else {
        ctx.fb.aluImm(AluKind::And, RegScratchC, RegScratchC, 0);
    }
    elf::Label skip = ctx.fb.newLabel();
    ctx.fb.condBr(CondKind::Ne0, RegScratchC, skip);
    const auto filler = 1 + ctx.rng.nextBelow(3);
    for (std::uint64_t n = 0; n < filler; ++n)
        emitPlainAlu(ctx);
    ctx.fb.bind(skip);
}

/**
 * Pick the access mask for a memory-touching site: most sites stay
 * inside a hot window (locality), the rest roam the full section.
 * The choice is made at generation time, so a given site's
 * behaviour is stable across executions.
 */
std::uint64_t
accessMask(BodyCtx &ctx, std::uint64_t full_mask)
{
    if (ctx.rng.nextBool(ctx.p.hotDataFrac)) {
        const std::uint64_t hot = maskFor(
            std::min<std::uint64_t>(ctx.p.hotDataBytes,
                                    full_mask + 8));
        return hot;
    }
    return full_mask;
}

/** One work event, drawn from the configured instruction mix. */
void
emitWorkEvent(BodyCtx &ctx, std::uint64_t mask)
{
    const double u = ctx.rng.nextDouble();
    if (u < ctx.p.loadFrac) {
        emitRandomLoad(ctx, accessMask(ctx, mask));
    } else if (u < ctx.p.loadFrac + ctx.p.storeFrac) {
        emitRandomStore(ctx, accessMask(ctx, mask));
    } else if (u <
               ctx.p.loadFrac + ctx.p.storeFrac + ctx.p.condFrac) {
        emitCondBlock(ctx);
    } else {
        emitPlainAlu(ctx);
    }
}

/** Library function name. */
std::string
libFnName(std::uint32_t lib, std::uint32_t fn)
{
    return "l" + std::to_string(lib) + "f" + std::to_string(fn);
}

/** ifunc symbol name. */
std::string
ifuncName(std::uint32_t n)
{
    return "ix" + std::to_string(n);
}

/**
 * Emit a guarded external call: executes with probability ~2^-k on
 * a data-dependent condition (k == 0 emits an unconditional call).
 */
void
emitGuardedExternalCall(BodyCtx &ctx, const std::string &sym, int k)
{
    FunctionBuilder &fb = ctx.fb;
    elf::Label skip = fb.newLabel();
    if (k > 0) {
        emitLcgStep(ctx);
        fb.aluImm(AluKind::Shr, RegScratchC, ctx.seedReg, 23);
        fb.aluImm(AluKind::And, RegScratchC, RegScratchC,
                  (1ll << k) - 1);
        fb.condBr(CondKind::Ne0, RegScratchC, skip);
    }
    fb.aluImm(AluKind::Add, RegWork, ctx.seedReg, 0);
    fb.callExternal(sym);
    fb.movDataAddr(RegBase, 0); // callee clobbered the base
    if (k > 0)
        fb.bind(skip);
}

/** Probability to guard shift amount (power of 1/2). */
int
guardShiftFor(double prob)
{
    if (prob >= 1.0)
        return 0;
    return std::clamp<int>(
        static_cast<int>(std::lround(-std::log2(prob))), 1, 10);
}

/** Emit one library function body. */
void
emitLibFunction(ModuleBuilder &mb, const std::string &name,
                const WorkloadParams &p, Rng rng,
                const std::vector<std::string> &nested_calls,
                std::uint64_t data_mask)
{
    FunctionBuilder &fb = mb.function(name);
    BodyCtx ctx{fb, rng, p, data_mask, RegWork};

    // Base pointer into this library's data section. Accesses are
    // masked into [0, data_mask], so the base stays at offset 0.
    fb.movDataAddr(RegBase, 0);

    const std::uint32_t events =
        p.libFnInsts / 2 +
        static_cast<std::uint32_t>(rng.nextBelow(p.libFnInsts + 1));
    // Spread the nested call sites across the body.
    std::vector<std::uint32_t> call_pos;
    for (std::size_t n = 0; n < nested_calls.size(); ++n) {
        call_pos.push_back(static_cast<std::uint32_t>(
            rng.nextBelow(events + 1)));
    }
    const int guard = guardShiftFor(p.nestedExecProb);

    std::size_t emitted_calls = 0;
    for (std::uint32_t e = 0; e <= events; ++e) {
        for (std::size_t n = 0; n < nested_calls.size(); ++n) {
            if (call_pos[n] == e) {
                emitGuardedExternalCall(ctx, nested_calls[n],
                                        guard);
                ++emitted_calls;
            }
        }
        if (e < events)
            emitWorkEvent(ctx, data_mask);
    }
    assert(emitted_calls == nested_calls.size());
    (void)emitted_calls;

    fb.alu(AluKind::Add, isa::RegRet, RegScratchB, ctx.seedReg);
    fb.ret();
}

} // namespace

BuiltProgram
buildProgram(const WorkloadParams &p)
{
    assert(p.numLibs >= 1);
    assert(!p.requests.empty());

    Rng master(p.seed);
    BuiltProgram out{elf::Module{"<pending>"}, {}, {}, {}};

    const std::uint64_t lib_mask = maskFor(p.libDataBytes);
    const std::uint64_t app_mask = maskFor(p.appDataBytes);

    // ------------------------------------------------------------
    // Plan the symbol universe.
    // ------------------------------------------------------------
    struct FnPlan
    {
        std::string name;
        std::vector<std::string> nestedCalls; // empty = leaf
    };
    std::vector<std::vector<FnPlan>> plans(p.numLibs);
    std::vector<std::string> universe;

    Rng plan_rng = master.fork();
    for (std::uint32_t i = 0; i < p.numLibs; ++i) {
        plans[i].reserve(p.funcsPerLib);
        for (std::uint32_t j = 0; j < p.funcsPerLib; ++j) {
            FnPlan fp;
            fp.name = libFnName(i, j);
            for (std::uint32_t s = 0;
                 i + 1 < p.numLibs && s < p.maxNestedCallSites;
                 ++s) {
                if (!plan_rng.nextBool(p.interLibCallProb))
                    continue;
                const auto k = static_cast<std::uint32_t>(
                    plan_rng.nextRange(i + 1, p.numLibs - 1));
                const auto fn = static_cast<std::uint32_t>(
                    plan_rng.nextBelow(p.funcsPerLib));
                fp.nestedCalls.push_back(libFnName(k, fn));
            }
            universe.push_back(fp.name);
            plans[i].push_back(std::move(fp));
        }
    }
    // ifunc symbols: one per entry, hosted round-robin on libraries.
    for (std::uint32_t n = 0; n < p.ifuncSymbols; ++n)
        universe.push_back(ifuncName(n));

    // ------------------------------------------------------------
    // Build the libraries.
    // ------------------------------------------------------------
    for (std::uint32_t i = 0; i < p.numLibs; ++i) {
        ModuleBuilder mb("lib" + std::to_string(i));
        mb.setDataSize(p.libDataBytes);

        for (const auto &fp : plans[i]) {
            emitLibFunction(mb, fp.name, p, master.fork(),
                            fp.nestedCalls, lib_mask);
        }

        // ifunc implementations hosted by this library.
        for (std::uint32_t n = i; n < p.ifuncSymbols;
             n += p.numLibs) {
            const std::string base = ifuncName(n);
            emitLibFunction(mb, base + "_v0", p, master.fork(), {},
                            lib_mask);
            emitLibFunction(mb, base + "_v1", p, master.fork(), {},
                            lib_mask);
            mb.exportIfunc(base, {base + "_v0", base + "_v1"});
        }

        // Sparse-PLT filler: declared, never called (paper §2).
        for (std::uint32_t n = 0; n < p.unusedImportsPerModule;
             ++n) {
            const auto pick =
                master.nextBelow(p.numLibs * p.funcsPerLib);
            const auto lib = static_cast<std::uint32_t>(
                pick / p.funcsPerLib);
            if (lib == i)
                continue; // own symbols need no import
            mb.declareImport(libFnName(
                lib,
                static_cast<std::uint32_t>(pick % p.funcsPerLib)));
        }

        out.libs.push_back(mb.build());
    }

    // ------------------------------------------------------------
    // Kernel/syscall-path module: a wide two-level tree of
    // functions with direct calls only (no PLT), traversed once per
    // `sys_path` call. Being larger than L1I, each traversal
    // streams cold code.
    // ------------------------------------------------------------
    if (p.kernelFuncs > 0) {
        ModuleBuilder mb("kernel");
        mb.setDataSize(p.libDataBytes);
        constexpr std::uint32_t GroupSize = 24;

        for (std::uint32_t i = 0; i < p.kernelFuncs; ++i) {
            FunctionBuilder &fb =
                mb.function("k" + std::to_string(i));
            Rng rng = master.fork();
            BodyCtx ctx{fb, rng, p, lib_mask, RegWork};
            fb.movDataAddr(RegBase, 0);
            for (std::uint32_t e = 0; e < p.kernelFnInsts; ++e)
                emitWorkEvent(ctx, lib_mask);
            fb.alu(AluKind::Add, isa::RegRet, RegScratchB,
                   RegWork);
            fb.ret();
        }

        const std::uint32_t groups =
            (p.kernelFuncs + GroupSize - 1) / GroupSize;
        for (std::uint32_t g = 0; g < groups; ++g) {
            FunctionBuilder &fb =
                mb.function("d" + std::to_string(g));
            for (std::uint32_t i = g * GroupSize;
                 i < std::min(p.kernelFuncs,
                              (g + 1) * GroupSize);
                 ++i) {
                fb.callLocal("k" + std::to_string(i));
            }
            fb.ret();
        }

        FunctionBuilder &fb = mb.function("sys_path");
        for (std::uint32_t g = 0; g < groups; ++g)
            fb.callLocal("d" + std::to_string(g));
        fb.ret();

        out.libs.push_back(mb.build());
    }

    // ------------------------------------------------------------
    // Pick the application's called imports and their popularity.
    // ------------------------------------------------------------
    Rng pick_rng = master.fork();
    std::vector<std::string> called = universe;
    // Fisher-Yates shuffle, then truncate.
    for (std::size_t n = called.size() - 1; n > 0; --n) {
        const auto m = pick_rng.nextBelow(n + 1);
        std::swap(called[n], called[m]);
    }
    if (called.size() > p.calledImports)
        called.resize(p.calledImports);
    out.calledSymbols = called;

    // Coverage pass: a coverageFraction share of called imports is
    // guaranteed a static site, spread evenly over the site
    // sequence (remaining-ratio Bernoulli); other sites follow the
    // popularity model.
    const std::size_t total_sites =
        std::size_t{p.stepsPerRequest} * p.requests.size();
    std::size_t coverage_left = std::min<std::size_t>(
        total_sites,
        static_cast<std::size_t>(p.coverageFraction *
                                 static_cast<double>(
                                     called.size())));
    std::size_t sites_left = total_sites;
    std::size_t coverage_cursor = 0;
    const stats::ZipfDistribution zipf(called.size(), p.zipfS);
    const auto draw_symbol = [&](Rng &rng) -> const std::string & {
        const bool cover =
            sites_left > 0 && coverage_left > 0 &&
            rng.nextDouble() <
                static_cast<double>(coverage_left) /
                    static_cast<double>(sites_left);
        if (sites_left > 0)
            --sites_left;
        if (cover) {
            --coverage_left;
            return called[coverage_cursor++ % called.size()];
        }
        switch (p.popularity) {
          case Popularity::Uniform:
            return called[rng.nextBelow(called.size())];
          case Popularity::Zipf:
            return called[zipf.sample(rng)];
          case Popularity::SteepCutoff: {
            const std::size_t hot =
                std::min<std::size_t>(p.hotSet, called.size());
            if (rng.nextBool(p.hotFraction) && hot > 0)
                return called[rng.nextBelow(hot)];
            return called[rng.nextBelow(called.size())];
          }
        }
        return called.front();
    };

    // ------------------------------------------------------------
    // Build the executable.
    // ------------------------------------------------------------
    ModuleBuilder mb("app");
    mb.setDataSize(p.appDataBytes);

    // Tail-jump helpers, created on demand per symbol.
    std::unordered_map<std::string, std::string> tail_helpers;
    const auto tail_helper_for =
        [&](const std::string &sym) -> const std::string & {
        auto it = tail_helpers.find(sym);
        if (it == tail_helpers.end()) {
            const std::string helper = "tj_" + sym;
            FunctionBuilder &fb = mb.function(helper);
            fb.aluImm(AluKind::Add, RegScratchC, RegWork, 7);
            fb.alu(AluKind::Xor, RegScratchD, RegScratchC,
                   RegWork);
            fb.jmpExternal(sym); // the §2.3 "jump trick"
            it = tail_helpers.emplace(sym, helper).first;
        }
        return it->second;
    };

    Rng app_rng = master.fork();
    for (std::size_t h = 0; h < p.requests.size(); ++h) {
        const std::string handler =
            "handle_" + p.requests[h].name;
        out.handlers.push_back(handler);

        FunctionBuilder &fb = mb.function(handler);
        BodyCtx ctx{fb, app_rng, p, app_mask, RegSeed};

        // Prologue: r10 = work count, r11 = seed.
        fb.aluImm(AluKind::Add, RegLoop, RegWork, 0);
        fb.aluImm(AluKind::Add, RegSeed, RegSeed2, 0);
        fb.movDataAddr(RegBase, 0);

        elf::Label loop_top = fb.newLabel();
        fb.bind(loop_top);

        // Kernel path (network receive / syscall work).
        for (std::uint32_t c = 0;
             p.kernelFuncs > 0 && c < p.kernelCallsPerRequest;
             ++c) {
            fb.aluImm(AluKind::Add, RegWork, RegSeed, 0);
            fb.callExternal("sys_path");
            fb.movDataAddr(RegBase, 0);
        }

        for (std::uint32_t s = 0; s < p.stepsPerRequest; ++s) {
            // Local work.
            for (std::uint32_t w = 0; w < p.appWorkInsts; ++w)
                emitWorkEvent(ctx, app_mask);
            // Dataset touches (key-value lookups / buffer pool).
            for (std::uint32_t d = 0;
                 d < p.datasetAccessesPerStep; ++d) {
                const std::uint64_t mask =
                    app_rng.nextBool(p.datasetHotFrac)
                        ? maskFor(std::min<std::uint64_t>(
                              p.hotDataBytes, app_mask + 8))
                        : app_mask;
                emitRandomLoad(ctx, mask);
            }
            // Library call: every step carries a static call site;
            // when libCallProbPerStep < 1 the call is guarded by a
            // data-dependent condition executing with probability
            // ~2^-k, so rarely-called sites still exist statically
            // (how a browser reaches thousands of distinct
            // trampolines at a low dynamic rate).
            {
                const std::string &sym = draw_symbol(app_rng);
                elf::Label skip_call = fb.newLabel();
                const bool guarded = p.libCallProbPerStep < 1.0;
                if (guarded) {
                    const auto k = std::clamp<int>(
                        static_cast<int>(std::lround(
                            -std::log2(p.libCallProbPerStep))),
                        1, 10);
                    emitLcgStep(ctx);
                    fb.aluImm(AluKind::Shr, RegScratchC, RegSeed,
                              17);
                    fb.aluImm(AluKind::And, RegScratchC,
                              RegScratchC, (1ll << k) - 1);
                    fb.condBr(CondKind::Ne0, RegScratchC,
                              skip_call);
                }
                // Pass the evolving seed as the callee argument.
                fb.aluImm(AluKind::Add, RegWork, RegSeed, 0);
                const double mode = app_rng.nextDouble();
                if (mode < p.virtualCallFrac) {
                    fb.movFuncAddr(RegPtr, sym);
                    fb.callReg(RegPtr);
                } else if (mode <
                           p.virtualCallFrac + p.tailJumpFrac) {
                    fb.callLocal(tail_helper_for(sym));
                } else {
                    fb.callExternal(sym);
                }
                fb.movDataAddr(RegBase, 0); // reload after call
                if (guarded)
                    fb.bind(skip_call);
            }
        }

        fb.aluImm(AluKind::Sub, RegLoop, RegLoop, 1);
        fb.condBr(CondKind::Ne0, RegLoop, loop_top);
        fb.aluImm(AluKind::Add, isa::RegRet, RegSeed, 0);
        fb.ret();
    }

    // main: run each handler once, then halt.
    {
        FunctionBuilder &fb = mb.function("main");
        for (const auto &handler : out.handlers) {
            fb.movImm(RegWork, 1);
            fb.movImm(RegSeed2,
                      static_cast<std::int64_t>(master.next() >> 1));
            fb.callLocal(handler);
        }
        fb.halt();
    }

    out.exe = mb.build();
    return out;
}

} // namespace dlsim::workload
