/**
 * @file
 * Calibrated workload profiles for the paper's four applications.
 *
 * Each profile's library-call behaviour targets the paper's
 * published characterisation:
 *
 *   workload   | tramp PKI (T2) | distinct tramps (T3) | Fig.4 shape
 *   -----------+----------------+----------------------+------------
 *   apache     | 12.23          | 501                  | steep cutoff
 *   firefox    | 0.72           | 2457                 | shallow Zipf
 *   memcached  | 1.75           | 33                   | very steep
 *   mysql      | 5.56           | 1611                 | moderate
 *
 * Request classes mirror the paper's: the six SPECweb 2009 request
 * types for Apache (Fig. 6), GET/SET for Memcached (Fig. 7), TPC-C
 * NewOrder/Payment for MySQL (Fig. 8 / Table 6), and the five
 * Peacekeeper categories for Firefox (Table 5).
 */

#ifndef DLSIM_WORKLOAD_PROFILES_HH
#define DLSIM_WORKLOAD_PROFILES_HH

#include "workload/params.hh"

namespace dlsim::workload
{

/** Apache httpd + PHP serving SPECweb 2009 (prefork MPM). */
WorkloadParams apacheProfile(std::uint64_t seed = 42);

/** Firefox running the Peacekeeper browser benchmark. */
WorkloadParams firefoxProfile(std::uint64_t seed = 42);

/** Memcached driven by the CloudSuite data-caching client. */
WorkloadParams memcachedProfile(std::uint64_t seed = 42);

/** MySQL running OLTP-Bench TPC-C. */
WorkloadParams mysqlProfile(std::uint64_t seed = 42);

/** Profile lookup by name ("apache", "firefox", ...). */
WorkloadParams profileByName(const std::string &name,
                             std::uint64_t seed = 42);

/** All four paper workloads, in Table 2 order. */
std::vector<WorkloadParams> allProfiles(std::uint64_t seed = 42);

} // namespace dlsim::workload

#endif // DLSIM_WORKLOAD_PROFILES_HH
