/**
 * @file
 * Assembler-style builders for constructing modules.
 *
 * FunctionBuilder emits instructions with label support for
 * intra-function control flow and records relocations for everything
 * the loader must fix up: local calls, PLT calls/tail-jumps to
 * imported symbols, data-address and function-address
 * materialisation.
 *
 * ModuleBuilder owns the functions of one module and finalises them
 * into a Module. Every defined function is exported by name (ELF
 * default visibility), which is what lets one library's functions
 * call another's through the PLT.
 */

#ifndef DLSIM_ELF_BUILDER_HH
#define DLSIM_ELF_BUILDER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "elf/module.hh"
#include "isa/instruction.hh"

namespace dlsim::elf
{

class ModuleBuilder;

/** Opaque label handle for intra-function branches. */
struct Label
{
    std::uint32_t id;
};

/**
 * Emits the body of one function.
 *
 * Obtained from ModuleBuilder::function(); finalised when the
 * ModuleBuilder builds. Emitting after build() is a usage error.
 */
class FunctionBuilder
{
  public:
    /** Raw emission; prefer the typed helpers below. */
    void emit(isa::Instruction inst);

    /** @name Straight-line helpers @{ */
    void nop() { emit(isa::makeNop()); }
    void alu(isa::AluKind k, isa::Reg d, isa::Reg s1, isa::Reg s2)
    {
        emit(isa::makeAlu(k, d, s1, s2));
    }
    void aluImm(isa::AluKind k, isa::Reg d, isa::Reg s1,
                std::int64_t imm)
    {
        emit(isa::makeAluImm(k, d, s1, imm));
    }
    void movImm(isa::Reg d, std::int64_t imm)
    {
        emit(isa::makeMovImm(d, imm));
    }
    void load(isa::Reg d, isa::Reg base, std::int64_t disp)
    {
        emit(isa::makeLoad(d, base, disp));
    }
    void store(isa::Reg s, isa::Reg base, std::int64_t disp)
    {
        emit(isa::makeStore(s, base, disp));
    }
    void push(isa::Reg s) { emit(isa::makePush(s)); }
    void pop(isa::Reg d) { emit(isa::makePop(d)); }
    void ret() { emit(isa::makeRet()); }
    void halt() { emit(isa::makeHalt()); }
    void abtbFlush() { emit(isa::makeAbtbFlush()); }
    /** @} */

    /** @name Labels and intra-function branches @{ */
    Label newLabel();
    /** Bind a label to the current position. */
    void bind(Label label);
    void condBr(isa::CondKind cond, isa::Reg src, Label target);
    void jmp(Label target);
    /** @} */

    /** @name Calls @{ */
    /** Direct call to a function defined in this module. */
    void callLocal(const std::string &fn);
    /** Direct tail-jump to a function defined in this module. */
    void jmpLocal(const std::string &fn);
    /** Call an imported symbol through this module's PLT. */
    void callExternal(const std::string &sym);
    /**
     * Tail-jump an imported symbol through the PLT — the
     * "unconventional trick" of paper §2.3 (jump used to invoke a
     * function), which a naive stack-walking software patcher
     * mishandles.
     */
    void jmpExternal(const std::string &sym);
    /** Indirect call through a register (C++-virtual-call style). */
    void callReg(isa::Reg target) { emit(isa::makeCallIndReg(target)); }
    /** Indirect call through memory. */
    void callMem(isa::Reg base, std::int64_t disp)
    {
        emit(isa::makeCallIndMem(base, disp));
    }
    void jmpReg(isa::Reg target) { emit(isa::makeJmpIndReg(target)); }
    /** @} */

    /** @name Address materialisation (relocated movs) @{ */
    /** dst = this module's data base + offset. */
    void movDataAddr(isa::Reg dst, std::int64_t offset);
    /** dst = absolute address of a (possibly external) function. */
    void movFuncAddr(isa::Reg dst, const std::string &symbol);
    /** @} */

    /** Number of instructions emitted so far. */
    std::size_t numInsts() const { return code_.size(); }

  private:
    friend class ModuleBuilder;

    FunctionBuilder(ModuleBuilder &owner, std::string name,
                    std::uint32_t func_index);

    /** Resolve labels, compute offsets, and return the Function. */
    Function finalize();

    ModuleBuilder &owner_;
    std::string name_;
    std::uint32_t funcIndex_;
    std::vector<isa::Instruction> code_;

    struct PendingBranch
    {
        std::uint32_t instIndex;
        std::uint32_t labelId;
    };
    std::vector<std::int32_t> labelPos_; // -1 while unbound.
    std::vector<PendingBranch> pending_;
};

/** Builds one Module. */
class ModuleBuilder
{
  public:
    explicit ModuleBuilder(std::string name);

    ModuleBuilder(const ModuleBuilder &) = delete;
    ModuleBuilder &operator=(const ModuleBuilder &) = delete;

    /**
     * Start (or continue) a function. The returned builder stays
     * valid until build().
     */
    FunctionBuilder &function(const std::string &name);

    /**
     * Declare an import without calling it, reserving a PLT slot.
     * Models the sparse, definition-ordered PLT sections of §2.
     */
    void declareImport(const std::string &sym);

    /**
     * Export an ifunc: `sym` resolves at load time to one of the
     * named candidate functions (all must be defined here).
     */
    void exportIfunc(const std::string &sym,
                     const std::vector<std::string> &candidates);

    /**
     * Export a versioned alias (ELF symbol versioning): importers
     * naming `sym@version` bind to `impl`; when `is_default` the
     * plain name `sym` also binds to `impl` (the `@@` default).
     * Lets a library carry several ABI revisions of one function.
     */
    void exportVersion(const std::string &sym,
                       const std::string &version,
                       const std::string &impl,
                       bool is_default = false);

    /** Reserve a data section of the given byte size. */
    void setDataSize(std::uint64_t bytes);

    /** Finalise into a Module. The builder is consumed. */
    Module build();

  private:
    friend class FunctionBuilder;

    /** Relocation recorded before symbol names are resolved. */
    struct PendingReloc
    {
        RelocKind kind;
        std::uint32_t funcIndex;
        std::uint32_t instIndex;
        std::int64_t addend;
        std::string symbol;
    };

    std::unique_ptr<Module> module_;
    std::vector<std::unique_ptr<FunctionBuilder>> builders_;
    std::unordered_map<std::string, std::size_t> builderIndex_;
    std::vector<PendingReloc> pendingRelocs_;
    struct IfuncDecl
    {
        std::string sym;
        std::vector<std::string> candidates;
    };
    std::vector<IfuncDecl> ifuncs_;
    struct VersionDecl
    {
        std::string sym;
        std::string version;
        std::string impl;
        bool isDefault;
    };
    std::vector<VersionDecl> versions_;
    bool built_ = false;
};

} // namespace dlsim::elf

#endif // DLSIM_ELF_BUILDER_HH
