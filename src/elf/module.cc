#include "elf/module.hh"

#include <cassert>

namespace dlsim::elf
{

bool
Module::findFunction(const std::string &name,
                     std::uint32_t &index) const
{
    const auto it = functionIndex_.find(name);
    if (it == functionIndex_.end())
        return false;
    index = it->second;
    return true;
}

std::uint64_t
Module::textSize() const
{
    std::uint64_t total = 0;
    for (const auto &fn : functions_) {
        // Functions are 16-byte aligned at load time.
        total = (total + 15) & ~15ull;
        total += fn.sizeBytes;
    }
    return total;
}

std::uint32_t
Module::addFunction(Function fn)
{
    assert(functionIndex_.find(fn.name) == functionIndex_.end());
    const auto index = static_cast<std::uint32_t>(functions_.size());
    functionIndex_.emplace(fn.name, index);
    functions_.push_back(std::move(fn));
    return index;
}

void
Module::addExport(const std::string &sym, Export exp)
{
    exports_[sym] = std::move(exp);
}

std::uint32_t
Module::addImport(const std::string &sym)
{
    const auto it = importIndex_.find(sym);
    if (it != importIndex_.end())
        return it->second;
    const auto index = static_cast<std::uint32_t>(imports_.size());
    importIndex_.emplace(sym, index);
    imports_.push_back(sym);
    return index;
}

void
Module::addRelocation(Relocation reloc)
{
    relocs_.push_back(std::move(reloc));
}

} // namespace dlsim::elf
