/**
 * @file
 * The dlsim object format: a compiled module (executable or shared
 * library) before loading.
 *
 * A Module mirrors the parts of an ELF object that dynamic linking
 * interacts with: a text section of functions, an export symbol
 * table, an ordered import list (each import will receive a PLT slot
 * and a GOTPLT slot at load time), relocations for call sites and
 * address materialisation, and a BSS-like data section size.
 *
 * Per the paper (§2), compilers allocate PLT entries in the order the
 * corresponding symbols appear; a program typically calls only a
 * small, scattered subset, which makes PLT/GOT accesses spatially
 * sparse. Imports here are therefore an *ordered list*, and workload
 * generators may declare more imports than they call.
 */

#ifndef DLSIM_ELF_MODULE_HH
#define DLSIM_ELF_MODULE_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "isa/instruction.hh"

namespace dlsim::elf
{

using isa::Addr;

/** A function: decoded instructions plus their byte offsets. */
struct Function
{
    std::string name;
    std::vector<isa::Instruction> code;
    /** Byte offset of each instruction from the function start. */
    std::vector<std::uint32_t> offsets;
    /** Total encoded size in bytes. */
    std::uint32_t sizeBytes = 0;
};

/** Relocation kinds understood by the loader. */
enum class RelocKind : std::uint8_t
{
    PltCall,     ///< CallRel to the module's own PLT entry (import).
    PltJump,     ///< JmpRel tail-call through the PLT (import).
    LocalCall,   ///< CallRel to another function in this module.
    LocalJump,   ///< JmpRel to another function in this module.
    DataAddr,    ///< MovImm imm = module data base + addend.
    FuncAddrAbs, ///< MovImm imm = absolute address of a symbol
                 ///< (function-pointer materialisation; resolved
                 ///< eagerly at load, like an x86-64 movabs fixed by
                 ///< a GLOB_DAT-style relocation).
};

/** One relocation record. */
struct Relocation
{
    RelocKind kind;
    std::uint32_t funcIndex;  ///< Function containing the site.
    std::uint32_t instIndex;  ///< Instruction index within it.
    std::uint32_t targetIndex = 0; ///< Import index or local func index.
    std::int64_t addend = 0;  ///< For DataAddr.
    std::string symbol;       ///< For FuncAddrAbs.
};

/** An exported symbol: either a plain function or an ifunc. */
struct Export
{
    std::uint32_t funcIndex = 0;
    bool ifunc = false;
    /**
     * Candidate implementations for an ifunc (GNU indirect function,
     * paper §2.4.1). The dynamic linker picks one at resolution time
     * based on the configured hardware level.
     */
    std::vector<std::uint32_t> ifuncCandidates;
};

/** A compiled module. */
class Module
{
  public:
    explicit Module(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }

    const std::vector<Function> &functions() const
    {
        return functions_;
    }
    const std::vector<std::string> &imports() const { return imports_; }
    const std::vector<Relocation> &relocations() const
    {
        return relocs_;
    }
    const std::unordered_map<std::string, Export> &exports() const
    {
        return exports_;
    }
    std::uint64_t dataSize() const { return dataSize_; }

    /** Function index by name; returns false if absent. */
    bool findFunction(const std::string &name,
                      std::uint32_t &index) const;

    /** Total text bytes (functions only, PLT added at load). */
    std::uint64_t textSize() const;

    /** @name Construction interface (used by ModuleBuilder) @{ */
    std::uint32_t addFunction(Function fn);
    void addExport(const std::string &sym, Export exp);
    std::uint32_t addImport(const std::string &sym);
    void addRelocation(Relocation reloc);
    void setDataSize(std::uint64_t bytes) { dataSize_ = bytes; }
    /** @} */

  private:
    std::string name_;
    std::vector<Function> functions_;
    std::unordered_map<std::string, std::uint32_t> functionIndex_;
    std::unordered_map<std::string, Export> exports_;
    std::vector<std::string> imports_;
    std::unordered_map<std::string, std::uint32_t> importIndex_;
    std::vector<Relocation> relocs_;
    std::uint64_t dataSize_ = 0;
};

} // namespace dlsim::elf

#endif // DLSIM_ELF_MODULE_HH
