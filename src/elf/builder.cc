#include "elf/builder.hh"

#include <cassert>
#include <stdexcept>

namespace dlsim::elf
{

// -- FunctionBuilder ------------------------------------------------

FunctionBuilder::FunctionBuilder(ModuleBuilder &owner,
                                 std::string name,
                                 std::uint32_t func_index)
    : owner_(owner), name_(std::move(name)), funcIndex_(func_index)
{
}

void
FunctionBuilder::emit(isa::Instruction inst)
{
    code_.push_back(inst);
}

Label
FunctionBuilder::newLabel()
{
    labelPos_.push_back(-1);
    return Label{static_cast<std::uint32_t>(labelPos_.size() - 1)};
}

void
FunctionBuilder::bind(Label label)
{
    assert(label.id < labelPos_.size());
    assert(labelPos_[label.id] < 0 && "label bound twice");
    labelPos_[label.id] = static_cast<std::int32_t>(code_.size());
}

void
FunctionBuilder::condBr(isa::CondKind cond, isa::Reg src, Label target)
{
    pending_.push_back(
        {static_cast<std::uint32_t>(code_.size()), target.id});
    emit(isa::makeCondBr(cond, src, 0));
}

void
FunctionBuilder::jmp(Label target)
{
    pending_.push_back(
        {static_cast<std::uint32_t>(code_.size()), target.id});
    emit(isa::makeJmpRel(0));
}

void
FunctionBuilder::callLocal(const std::string &fn)
{
    owner_.pendingRelocs_.push_back(
        {RelocKind::LocalCall, funcIndex_,
         static_cast<std::uint32_t>(code_.size()), 0, fn});
    emit(isa::makeCallRel(0));
}

void
FunctionBuilder::jmpLocal(const std::string &fn)
{
    owner_.pendingRelocs_.push_back(
        {RelocKind::LocalJump, funcIndex_,
         static_cast<std::uint32_t>(code_.size()), 0, fn});
    emit(isa::makeJmpRel(0));
}

void
FunctionBuilder::callExternal(const std::string &sym)
{
    owner_.pendingRelocs_.push_back(
        {RelocKind::PltCall, funcIndex_,
         static_cast<std::uint32_t>(code_.size()), 0, sym});
    emit(isa::makeCallRel(0));
}

void
FunctionBuilder::jmpExternal(const std::string &sym)
{
    owner_.pendingRelocs_.push_back(
        {RelocKind::PltJump, funcIndex_,
         static_cast<std::uint32_t>(code_.size()), 0, sym});
    emit(isa::makeJmpRel(0));
}

void
FunctionBuilder::movDataAddr(isa::Reg dst, std::int64_t offset)
{
    owner_.pendingRelocs_.push_back(
        {RelocKind::DataAddr, funcIndex_,
         static_cast<std::uint32_t>(code_.size()), offset, {}});
    emit(isa::makeMovImm(dst, 0));
}

void
FunctionBuilder::movFuncAddr(isa::Reg dst, const std::string &symbol)
{
    owner_.pendingRelocs_.push_back(
        {RelocKind::FuncAddrAbs, funcIndex_,
         static_cast<std::uint32_t>(code_.size()), 0, symbol});
    emit(isa::makeMovImm(dst, 0));
}

Function
FunctionBuilder::finalize()
{
    Function fn;
    fn.name = name_;
    fn.code = code_;
    fn.offsets.resize(fn.code.size());
    std::uint32_t off = 0;
    for (std::size_t i = 0; i < fn.code.size(); ++i) {
        fn.offsets[i] = off;
        off += fn.code[i].size;
    }
    fn.sizeBytes = off;

    for (const auto &pb : pending_) {
        const std::int32_t target_inst = labelPos_.at(pb.labelId);
        assert(target_inst >= 0 && "unbound label");
        const std::uint32_t target_off =
            static_cast<std::size_t>(target_inst) == fn.code.size()
                ? fn.sizeBytes
                : fn.offsets[static_cast<std::size_t>(target_inst)];
        auto &inst = fn.code[pb.instIndex];
        const std::uint32_t next_off =
            fn.offsets[pb.instIndex] + inst.size;
        inst.imm = static_cast<std::int64_t>(target_off) -
                   static_cast<std::int64_t>(next_off);
    }
    return fn;
}

// -- ModuleBuilder ---------------------------------------------------

ModuleBuilder::ModuleBuilder(std::string name)
    : module_(std::make_unique<Module>(std::move(name)))
{
}

FunctionBuilder &
ModuleBuilder::function(const std::string &name)
{
    assert(!built_);
    const auto it = builderIndex_.find(name);
    if (it != builderIndex_.end())
        return *builders_[it->second];
    const auto index = builders_.size();
    builders_.push_back(std::unique_ptr<FunctionBuilder>(
        new FunctionBuilder(*this, name,
                            static_cast<std::uint32_t>(index))));
    builderIndex_.emplace(name, index);
    return *builders_.back();
}

void
ModuleBuilder::declareImport(const std::string &sym)
{
    module_->addImport(sym);
}

void
ModuleBuilder::exportIfunc(const std::string &sym,
                           const std::vector<std::string> &candidates)
{
    ifuncs_.push_back({sym, candidates});
}

void
ModuleBuilder::exportVersion(const std::string &sym,
                             const std::string &version,
                             const std::string &impl,
                             bool is_default)
{
    versions_.push_back({sym, version, impl, is_default});
}

void
ModuleBuilder::setDataSize(std::uint64_t bytes)
{
    module_->setDataSize(bytes);
}

Module
ModuleBuilder::build()
{
    assert(!built_);
    built_ = true;

    for (auto &fb : builders_) {
        Function fn = fb->finalize();
        const auto index = module_->addFunction(std::move(fn));
        // Plain export for every defined function (ELF default
        // visibility); ifunc exports are overlaid below.
        Export exp;
        exp.funcIndex = index;
        module_->addExport(fb->name_, exp);
    }

    for (const auto &decl : ifuncs_) {
        Export exp;
        exp.ifunc = true;
        for (const auto &cand : decl.candidates) {
            std::uint32_t index = 0;
            if (!module_->findFunction(cand, index)) {
                throw std::invalid_argument(
                    "ifunc candidate not defined: " + cand);
            }
            exp.ifuncCandidates.push_back(index);
        }
        assert(!exp.ifuncCandidates.empty());
        exp.funcIndex = exp.ifuncCandidates.front();
        module_->addExport(decl.sym, exp);
    }

    for (const auto &decl : versions_) {
        std::uint32_t index = 0;
        if (!module_->findFunction(decl.impl, index)) {
            throw std::invalid_argument(
                "versioned export implementation not defined: " +
                decl.impl);
        }
        Export exp;
        exp.funcIndex = index;
        module_->addExport(decl.sym + "@" + decl.version, exp);
        if (decl.isDefault)
            module_->addExport(decl.sym, exp);
    }

    for (auto &pr : pendingRelocs_) {
        Relocation reloc;
        reloc.kind = pr.kind;
        reloc.funcIndex = pr.funcIndex;
        reloc.instIndex = pr.instIndex;
        reloc.addend = pr.addend;
        switch (pr.kind) {
          case RelocKind::LocalCall:
          case RelocKind::LocalJump: {
            std::uint32_t index = 0;
            if (!module_->findFunction(pr.symbol, index)) {
                throw std::invalid_argument(
                    "local call target not defined: " + pr.symbol);
            }
            reloc.targetIndex = index;
            break;
          }
          case RelocKind::PltCall:
          case RelocKind::PltJump:
            reloc.targetIndex = module_->addImport(pr.symbol);
            break;
          case RelocKind::DataAddr:
            break;
          case RelocKind::FuncAddrAbs:
            reloc.symbol = pr.symbol;
            break;
        }
        module_->addRelocation(std::move(reloc));
    }
    pendingRelocs_.clear();

    return std::move(*module_);
}

} // namespace dlsim::elf
