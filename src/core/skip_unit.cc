#include "core/skip_unit.hh"

#include <algorithm>
#include <sstream>
#include <vector>

#include "snapshot/serializer.hh"

#include "stats/metrics.hh"

namespace dlsim::core
{

TrampolineSkipUnit::TrampolineSkipUnit(const SkipUnitParams &params)
    : params_(params), abtb_(params.abtb),
      bloom_(params.bloomBits, params.bloomHashes)
{
}

std::optional<AbtbEntry>
TrampolineSkipUnit::substituteTarget(Addr resolved_target)
{
    const auto entry = abtb_.lookup(resolved_target, asid_);
    if (!entry)
        return std::nullopt;
    ++stats_.substitutions;
    return entry;
}

void
TrampolineSkipUnit::retireControl(isa::Opcode op, Addr actual_target,
                                  Addr load_src_addr)
{
    // Population heuristic (§3.2): a retired call followed — within
    // the configured pattern window — by a retired memory-indirect
    // jump identifies a trampoline. Only memory-indirect jumps
    // qualify: the bloom filter needs the load-source (GOT slot)
    // address; returns and register-indirect jumps have no guarded
    // slot and must not populate.
    if (patternArmed_ && op == isa::Opcode::JmpIndMem) {
        abtb_.insert(lastCallTarget_, actual_target, load_src_addr,
                     asid_);
        if (!params_.explicitInvalidation) {
            bloom_.insert(load_src_addr);
            bloomShadow_.insert(load_src_addr);
        }
        ++stats_.populations;
    }

    patternArmed_ = isa::isCall(op);
    if (patternArmed_) {
        lastCallTarget_ = actual_target;
        windowLeft_ = params_.patternWindow;
    }
}

void
TrampolineSkipUnit::flushFor(std::uint64_t SkipUnitStats::*counter,
                             Addr addr, bool check_bloom)
{
    if (check_bloom) {
        if (params_.explicitInvalidation)
            return; // §3.4: stores are ignored entirely.
        if (!bloom_.mayContain(addr))
            return;
        if (!bloomShadow_.count(addr))
            ++stats_.falsePositiveFlushes;
    }
    abtb_.flushAll();
    bloom_.clear();
    bloomShadow_.clear();
    ++(stats_.*counter);
}

void
TrampolineSkipUnit::retireStore(Addr addr)
{
    // A store between the call and the indirect jump could alias
    // the GOT slot; the pattern must not survive it.
    patternArmed_ = false;
    if (params_.buggySuppressStoreFlush)
        return; // Fault injection: drop the §3.2 flush on purpose.
    flushFor(&SkipUnitStats::storeFlushes, addr, true);
}

void
TrampolineSkipUnit::coherenceInvalidate(Addr addr)
{
    flushFor(&SkipUnitStats::coherenceFlushes, addr, true);
}

void
TrampolineSkipUnit::contextSwitch()
{
    patternArmed_ = false;
    if (params_.asidRetention)
        return;
    flushFor(&SkipUnitStats::contextSwitchFlushes, 0, false);
}

void
TrampolineSkipUnit::explicitFlush()
{
    flushFor(&SkipUnitStats::explicitFlushes, 0, false);
}

std::string
TrampolineSkipUnit::dumpState() const
{
    std::ostringstream os;
    os << "skip: substitutions=" << stats_.substitutions
       << " populations=" << stats_.populations
       << " storeFlushes=" << stats_.storeFlushes
       << " coherenceFlushes=" << stats_.coherenceFlushes
       << " contextSwitchFlushes=" << stats_.contextSwitchFlushes
       << " explicitFlushes=" << stats_.explicitFlushes
       << " falsePositiveFlushes=" << stats_.falsePositiveFlushes
       << "\n";
    os << "pattern: armed=" << (patternArmed_ ? 1 : 0)
       << " lastCallTarget=0x" << std::hex << lastCallTarget_
       << std::dec << " windowLeft=" << windowLeft_
       << " asid=" << asid_ << "\n";
    os << "mode: "
       << (params_.explicitInvalidation ? "explicit-invalidation"
                                        : "bloom-guarded")
       << (params_.asidRetention ? ", asid-retention" : "")
       << (params_.buggySuppressStoreFlush
               ? ", INJECTED-BUG(store flush suppressed)"
               : "")
       << "\n";
    if (!params_.explicitInvalidation) {
        os << "bloom: insertions=" << bloom_.insertions()
           << " occupancy=" << bloom_.occupancy()
           << " tracked_slots=" << bloomShadow_.size() << "\n";
    }
    os << abtb_.dump();
    return os.str();
}

std::uint64_t
TrampolineSkipUnit::hardwareBytes() const
{
    return abtb_.sizeBytes() +
           (params_.explicitInvalidation ? 0 : bloom_.sizeBytes());
}

void
TrampolineSkipUnit::reportMetrics(stats::MetricsRegistry &reg,
                                  const std::string &prefix) const
{
    abtb_.reportMetrics(reg, prefix + ".abtb");
    if (!params_.explicitInvalidation)
        bloom_.reportMetrics(reg, prefix + ".bloom");
    const std::string skip = prefix + ".skip";
    reg.counter(skip + ".substitutions", stats_.substitutions);
    reg.counter(skip + ".populations", stats_.populations);
    reg.counter(skip + ".store_flushes", stats_.storeFlushes);
    reg.counter(skip + ".coherence_flushes",
                stats_.coherenceFlushes);
    reg.counter(skip + ".context_switch_flushes",
                stats_.contextSwitchFlushes);
    reg.counter(skip + ".explicit_flushes", stats_.explicitFlushes);
    reg.counter(skip + ".false_positive_flushes",
                stats_.falsePositiveFlushes);
    reg.gauge(skip + ".hardware_bytes",
              static_cast<double>(hardwareBytes()));
}


void
TrampolineSkipUnit::save(snapshot::Serializer &s) const
{
    s.beginStruct("skip");
    s.u32(params_.bloomBits);
    s.u32(params_.bloomHashes);
    s.boolean(params_.explicitInvalidation);
    s.boolean(params_.asidRetention);
    s.u32(params_.patternWindow);
    s.boolean(params_.buggySuppressStoreFlush);
    s.u64(stats_.substitutions);
    s.u64(stats_.populations);
    s.u64(stats_.storeFlushes);
    s.u64(stats_.coherenceFlushes);
    s.u64(stats_.contextSwitchFlushes);
    s.u64(stats_.explicitFlushes);
    s.u64(stats_.falsePositiveFlushes);
    s.boolean(patternArmed_);
    s.u64(lastCallTarget_);
    s.u32(windowLeft_);
    s.u16(asid_);
    // The shadow set is unordered; emit sorted for stable bytes.
    std::vector<Addr> shadow(bloomShadow_.begin(),
                             bloomShadow_.end());
    std::sort(shadow.begin(), shadow.end());
    s.u64(shadow.size());
    for (const Addr a : shadow)
        s.u64(a);
    s.endStruct();
    abtb_.save(s);
    bloom_.save(s);
}

void
TrampolineSkipUnit::load(snapshot::Deserializer &d)
{
    d.enterStruct("skip");
    d.checkU32(params_.bloomBits, "skip bloomBits");
    d.checkU32(params_.bloomHashes, "skip bloomHashes");
    d.checkBool(params_.explicitInvalidation,
                "skip explicitInvalidation");
    d.checkBool(params_.asidRetention, "skip asidRetention");
    d.checkU32(params_.patternWindow, "skip patternWindow");
    d.checkBool(params_.buggySuppressStoreFlush,
                "skip buggySuppressStoreFlush");
    stats_.substitutions = d.u64();
    stats_.populations = d.u64();
    stats_.storeFlushes = d.u64();
    stats_.coherenceFlushes = d.u64();
    stats_.contextSwitchFlushes = d.u64();
    stats_.explicitFlushes = d.u64();
    stats_.falsePositiveFlushes = d.u64();
    patternArmed_ = d.boolean();
    lastCallTarget_ = d.u64();
    windowLeft_ = d.u32();
    asid_ = d.u16();
    bloomShadow_.clear();
    const std::uint64_t n = d.u64();
    bloomShadow_.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i)
        bloomShadow_.insert(d.u64());
    d.leaveStruct();
    abtb_.load(d);
    bloom_.load(d);
}

} // namespace dlsim::core
