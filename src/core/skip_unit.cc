#include "core/skip_unit.hh"

#include "stats/metrics.hh"

namespace dlsim::core
{

TrampolineSkipUnit::TrampolineSkipUnit(const SkipUnitParams &params)
    : params_(params), abtb_(params.abtb),
      bloom_(params.bloomBits, params.bloomHashes)
{
}

std::optional<AbtbEntry>
TrampolineSkipUnit::substituteTarget(Addr resolved_target)
{
    const auto entry = abtb_.lookup(resolved_target, asid_);
    if (!entry)
        return std::nullopt;
    ++stats_.substitutions;
    return entry;
}

void
TrampolineSkipUnit::retireControl(isa::Opcode op, Addr actual_target,
                                  Addr load_src_addr)
{
    // Population heuristic (§3.2): a retired call followed — within
    // the configured pattern window — by a retired memory-indirect
    // jump identifies a trampoline. Only memory-indirect jumps
    // qualify: the bloom filter needs the load-source (GOT slot)
    // address; returns and register-indirect jumps have no guarded
    // slot and must not populate.
    if (patternArmed_ && op == isa::Opcode::JmpIndMem) {
        abtb_.insert(lastCallTarget_, actual_target, load_src_addr,
                     asid_);
        if (!params_.explicitInvalidation) {
            bloom_.insert(load_src_addr);
            bloomShadow_.insert(load_src_addr);
        }
        ++stats_.populations;
    }

    patternArmed_ = isa::isCall(op);
    if (patternArmed_) {
        lastCallTarget_ = actual_target;
        windowLeft_ = params_.patternWindow;
    }
}

void
TrampolineSkipUnit::flushFor(std::uint64_t SkipUnitStats::*counter,
                             Addr addr, bool check_bloom)
{
    if (check_bloom) {
        if (params_.explicitInvalidation)
            return; // §3.4: stores are ignored entirely.
        if (!bloom_.mayContain(addr))
            return;
        if (!bloomShadow_.count(addr))
            ++stats_.falsePositiveFlushes;
    }
    abtb_.flushAll();
    bloom_.clear();
    bloomShadow_.clear();
    ++(stats_.*counter);
}

void
TrampolineSkipUnit::retireStore(Addr addr)
{
    // A store between the call and the indirect jump could alias
    // the GOT slot; the pattern must not survive it.
    patternArmed_ = false;
    flushFor(&SkipUnitStats::storeFlushes, addr, true);
}

void
TrampolineSkipUnit::retireOther()
{
    // Simple instructions consume the pattern window (the ARM
    // trampoline's address-materialising prologue).
    if (patternArmed_) {
        if (windowLeft_ == 0)
            patternArmed_ = false;
        else
            --windowLeft_;
    }
}

void
TrampolineSkipUnit::coherenceInvalidate(Addr addr)
{
    flushFor(&SkipUnitStats::coherenceFlushes, addr, true);
}

void
TrampolineSkipUnit::contextSwitch()
{
    patternArmed_ = false;
    if (params_.asidRetention)
        return;
    flushFor(&SkipUnitStats::contextSwitchFlushes, 0, false);
}

void
TrampolineSkipUnit::explicitFlush()
{
    flushFor(&SkipUnitStats::explicitFlushes, 0, false);
}

std::uint64_t
TrampolineSkipUnit::hardwareBytes() const
{
    return abtb_.sizeBytes() +
           (params_.explicitInvalidation ? 0 : bloom_.sizeBytes());
}

void
TrampolineSkipUnit::reportMetrics(stats::MetricsRegistry &reg,
                                  const std::string &prefix) const
{
    abtb_.reportMetrics(reg, prefix + ".abtb");
    if (!params_.explicitInvalidation)
        bloom_.reportMetrics(reg, prefix + ".bloom");
    const std::string skip = prefix + ".skip";
    reg.counter(skip + ".substitutions", stats_.substitutions);
    reg.counter(skip + ".populations", stats_.populations);
    reg.counter(skip + ".store_flushes", stats_.storeFlushes);
    reg.counter(skip + ".coherence_flushes",
                stats_.coherenceFlushes);
    reg.counter(skip + ".context_switch_flushes",
                stats_.contextSwitchFlushes);
    reg.counter(skip + ".explicit_flushes", stats_.explicitFlushes);
    reg.counter(skip + ".false_positive_flushes",
                stats_.falsePositiveFlushes);
    reg.gauge(skip + ".hardware_bytes",
              static_cast<double>(hardwareBytes()));
}

} // namespace dlsim::core
