/**
 * @file
 * TrampolineSkipUnit: the complete speculative trampoline-skip
 * mechanism of paper §3 — the ABTB, its guarding bloom filter, the
 * retire-time population heuristic, the resolution-time target
 * substitution, and every invalidation path (§3.3, §3.4).
 *
 * Integration contract with the CPU:
 *
 *  - At branch resolution, call substituteTarget() with the
 *    architecturally resolved target. On a hit, the CPU must treat
 *    the returned function address as the correct target: compare
 *    the front-end prediction against it, train the BTB with it, and
 *    continue fetching from it — thereby never fetching the
 *    trampoline.
 *  - At retire, call exactly one of retireControl / retireStore /
 *    retireOther per retired instruction, in program order.
 *  - On a context switch, call contextSwitch().
 *  - For coherence invalidations from other cores, call
 *    coherenceInvalidate().
 */

#ifndef DLSIM_CORE_SKIP_UNIT_HH
#define DLSIM_CORE_SKIP_UNIT_HH

#include <cstdint>
#include <optional>
#include <unordered_set>

#include "core/abtb.hh"
#include "core/bloom_filter.hh"
#include "isa/opcode.hh"

namespace dlsim::snapshot
{
class Serializer;
class Deserializer;
}

namespace dlsim::core
{

/** Full configuration of the mechanism. */
struct SkipUnitParams
{
    AbtbParams abtb;

    /**
     * Bloom filter sizing. The paper calls the filter "small", but
     * every retired store probes it, and the filter accumulates one
     * GOT slot per trampoline between flushes — several hundred for
     * Apache-class programs. An undersized filter saturates and its
     * false positives flush the ABTB continuously, erasing the
     * mechanism's benefit (see bench/ablation_bloom). 32Kbit (4KB)
     * with 4 hashes keeps the false-positive rate ~1e-5.
     */
    std::uint32_t bloomBits = 65536;
    std::uint32_t bloomHashes = 6;

    /**
     * §3.4 alternate implementation: no bloom filter; stores never
     * flush the ABTB, and software is responsible for executing
     * AbtbFlush when it rewrites a GOT entry. Cheaper hardware,
     * architecturally visible.
     */
    bool explicitInvalidation = false;

    /**
     * Retain entries across context switches (ASID-style), the
     * option §3.3 sketches for TLB-like retention. When false, a
     * context switch clears the ABTB just like an unmanaged TLB.
     */
    bool asidRetention = false;

    /**
     * Population pattern window: how many simple (non-control,
     * non-store) retired instructions may sit between the call and
     * the memory-indirect jump that identify a trampoline. 0 gives
     * the paper's exact x86 pattern (call immediately followed by
     * `jmp *GOT`); ARM-style trampolines (paper Fig. 2b) carry two
     * address-materialising instructions before `ldr pc, [...]`
     * and need a window of 2. Skipping then also elides those
     * scratch-register writes — safe because PLT scratch registers
     * are ABI call-clobbered.
     */
    std::uint32_t patternWindow = 0;

    /**
     * FAULT INJECTION (testing only): suppress the §3.2 bloom-hit
     * store flush, leaving stale ABTB entries live after a GOT
     * rewrite. Exists to prove the lockstep oracle catches a
     * broken invalidation path (tests/test_lockstep.cc,
     * dlsim_fuzz --inject-bug); never set in real experiments.
     */
    bool buggySuppressStoreFlush = false;
};

/** Mechanism statistics. */
struct SkipUnitStats
{
    std::uint64_t substitutions = 0;   ///< Resolution-time ABTB hits.
    std::uint64_t populations = 0;     ///< Call+indirect-jump inserts.
    std::uint64_t storeFlushes = 0;    ///< Bloom-hit store flushes.
    std::uint64_t coherenceFlushes = 0;
    std::uint64_t contextSwitchFlushes = 0;
    std::uint64_t explicitFlushes = 0;
    std::uint64_t falsePositiveFlushes = 0; ///< Bloom FP (diagnostic).
};

/** The paper's mechanism, front to back. */
class TrampolineSkipUnit
{
  public:
    explicit TrampolineSkipUnit(const SkipUnitParams &params = {});

    /**
     * Resolution-time: given the architecturally resolved target of
     * a call/jump, return the trampoline's memoized entry (function
     * address plus diagnostics) when the target is a known
     * trampoline.
     */
    std::optional<AbtbEntry> substituteTarget(Addr resolved_target);

    /**
     * Retire a control-transfer instruction.
     * @param op            The opcode.
     * @param actual_target Architecturally resolved target.
     * @param load_src_addr For memory-indirect transfers, the
     *                      address the target was loaded from (the
     *                      GOT slot); ignored otherwise.
     */
    void retireControl(isa::Opcode op, Addr actual_target,
                       Addr load_src_addr);

    /** Retire a store; a bloom hit clears the ABTB (§3.2). */
    void retireStore(Addr addr);

    /** Retire any other instruction. Inline: this is the hook on
     *  the block dispatcher's per-body-op path, and it only touches
     *  the pattern-window state. */
    void retireOther()
    {
        // Simple instructions consume the pattern window (the ARM
        // trampoline's address-materialising prologue).
        if (patternArmed_) {
            if (windowLeft_ == 0)
                patternArmed_ = false;
            else
                --windowLeft_;
        }
    }

    /** Coherence invalidation received from the memory system. */
    void coherenceInvalidate(Addr addr);

    /** OS context switch. */
    void contextSwitch();

    /** The AbtbFlush instruction (§3.4). */
    void explicitFlush();

    /**
     * Set the current address-space id. Entries are ASID-tagged so
     * that asidRetention mode stays correct across processes.
     */
    void setAsid(std::uint16_t asid) { asid_ = asid; }
    std::uint16_t asid() const { return asid_; }

    const Abtb &abtb() const { return abtb_; }
    const BloomFilter &bloom() const { return bloom_; }
    const SkipUnitStats &stats() const { return stats_; }
    const SkipUnitParams &params() const { return params_; }

    /** Total state: ABTB + bloom filter (0 when explicit mode). */
    std::uint64_t hardwareBytes() const;

    void clearStats() { stats_ = {}; }

    /** Human-readable state dump: stats, pattern detector, bloom
     *  occupancy, and every valid ABTB entry (divergence reports). */
    std::string dumpState() const;

    /** Register the mechanism's counters under `prefix`:
     *  `<prefix>.abtb.*`, `<prefix>.bloom.*`, `<prefix>.skip.*`. */
    void reportMetrics(stats::MetricsRegistry &reg,
                       const std::string &prefix) const;

    /** Checkpoint ABTB, bloom filter, and pattern/stat state. */
    void save(snapshot::Serializer &s) const;

    /** Restore; throws SnapshotError on config mismatch. */
    void load(snapshot::Deserializer &d);

  private:
    void flushFor(std::uint64_t SkipUnitStats::*counter, Addr addr,
                  bool check_bloom);

    SkipUnitParams params_;
    Abtb abtb_;
    BloomFilter bloom_;
    SkipUnitStats stats_;

    /** Retire-stream pattern state: preceding retired call plus
     *  the remaining intervening-instruction budget. */
    bool patternArmed_ = false;
    Addr lastCallTarget_ = 0;
    std::uint32_t windowLeft_ = 0;
    std::uint16_t asid_ = 0;

    /**
     * Exact shadow of bloom contents, used only to classify
     * false-positive flushes in stats (not part of the hardware).
     */
    std::unordered_set<Addr> bloomShadow_;
};

} // namespace dlsim::core

#endif // DLSIM_CORE_SKIP_UNIT_HH
