/**
 * @file
 * The Alternate BTB (ABTB) — the paper's central hardware structure.
 *
 * A retire-time table mapping a trampoline's address to the library
 * function the trampoline branches to. Each entry costs 12 bytes
 * (two 48-bit virtual addresses, paper §5.3): 256 entries therefore
 * total under 1.5KB, the headline hardware budget.
 *
 * The table sits off the critical fetch path: it is consulted at
 * branch *resolution* (is the resolved target a known trampoline?)
 * and written at *retire* (call followed by memory-indirect jump).
 */

#ifndef DLSIM_CORE_ABTB_HH
#define DLSIM_CORE_ABTB_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "isa/instruction.hh"

namespace dlsim::stats
{
class MetricsRegistry;
}

namespace dlsim::snapshot
{
class Serializer;
class Deserializer;
}

namespace dlsim::core
{

using isa::Addr;

/** Bytes of storage per ABTB entry (two 48-bit addresses). */
constexpr std::uint32_t AbtbEntryBytes = 12;

/** ABTB geometry. */
struct AbtbParams
{
    std::uint32_t entries = 256;
    std::uint32_t assoc = 4;
};

/** One ABTB mapping. */
struct AbtbEntry
{
    Addr trampoline = 0; ///< Key: address of the PLT entry.
    Addr function = 0;   ///< Value: the trampoline's branch target.
    Addr gotAddr = 0;    ///< Slot the target was loaded from
                         ///< (checker/diagnostics; the hardware
                         ///< stores this only in the bloom filter).
    std::uint16_t asid = 0; ///< Address-space tag (ASID retention,
                            ///< paper §3.3 "context switch").
};

/** The alternate BTB table. */
class Abtb
{
  public:
    explicit Abtb(const AbtbParams &params);

    /** Resolution-time lookup by resolved branch target. */
    std::optional<AbtbEntry> lookup(Addr trampoline,
                                    std::uint16_t asid = 0);

    /** Retire-time insert of a (trampoline -> function) mapping. */
    void insert(Addr trampoline, Addr function, Addr got_addr,
                std::uint16_t asid = 0);

    /** Clear every entry (bloom hit, context switch, or explicit). */
    void flushAll();

    /** Storage cost in bytes (paper §5.3 accounting). */
    std::uint64_t sizeBytes() const
    {
        return std::uint64_t{params_.entries} * AbtbEntryBytes;
    }

    const AbtbParams &params() const { return params_; }

    std::uint64_t lookups() const { return lookups_; }
    std::uint64_t hits() const { return hits_; }
    std::uint64_t inserts() const { return inserts_; }
    std::uint64_t evictions() const { return evictions_; }
    /** flushAll() invocations — the observable flush count the
     *  skip unit's per-cause accounting must add up to. */
    std::uint64_t flushes() const { return flushes_; }
    std::uint64_t occupancy() const;

    void clearStats();

    /** Human-readable dump of every valid entry (diagnostics). */
    std::string dump() const;

    /**
     * Register lookup/hit/insert/eviction counters and the occupancy
     * gauge under `prefix` (e.g. "dlsim.core.abtb").
     */
    void reportMetrics(stats::MetricsRegistry &reg,
                       const std::string &prefix) const;

    /** Checkpoint contents, LRU state, and counters. */
    void save(snapshot::Serializer &s) const;

    /** Restore; throws SnapshotError on geometry mismatch. */
    void load(snapshot::Deserializer &d);

  private:
    struct Way
    {
        AbtbEntry entry;
        bool valid = false;
        std::uint64_t lastUse = 0;
    };

    /** First invalid way in the set, else first LRU-minimal one. */
    Way *findVictim(std::size_t set);

    std::size_t setOf(Addr trampoline) const
    {
        // Trampolines are 16-byte aligned.
        return static_cast<std::size_t>((trampoline >> 4) &
                                        (numSets_ - 1));
    }

    AbtbParams params_;
    std::uint64_t numSets_;
    std::vector<Way> ways_;
    std::uint64_t tick_ = 0;
    std::uint64_t lookups_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t inserts_ = 0;
    std::uint64_t evictions_ = 0;
    std::uint64_t flushes_ = 0;
};

} // namespace dlsim::core

#endif // DLSIM_CORE_ABTB_HH
