/**
 * @file
 * Bloom filter over GOT-slot addresses (paper §3.1).
 *
 * The filter stores the addresses of the GOT entries backing current
 * ABTB entries. A retired store (or an inbound coherence
 * invalidation) whose address hits the filter may invalidate an ABTB
 * mapping, so the whole ABTB is cleared — conservative but correct,
 * and in practice triggered only once per library call at program
 * start, when the lazy resolver writes each slot.
 *
 * The filter is insert-only; it is cleared together with the ABTB.
 */

#ifndef DLSIM_CORE_BLOOM_FILTER_HH
#define DLSIM_CORE_BLOOM_FILTER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/instruction.hh"

namespace dlsim::stats
{
class MetricsRegistry;
}

namespace dlsim::snapshot
{
class Serializer;
class Deserializer;
}

namespace dlsim::core
{

using isa::Addr;

/** A k-hash bloom filter over 64-bit addresses. */
class BloomFilter
{
  public:
    /**
     * @param bits   Number of filter bits; must be a power of two.
     * @param hashes Number of hash functions (k).
     */
    explicit BloomFilter(std::uint32_t bits = 1024,
                         std::uint32_t hashes = 2);

    void insert(Addr addr);

    /** May return true for addresses never inserted (false
     *  positives); never returns false for inserted ones. */
    bool mayContain(Addr addr) const;

    void clear();

    std::uint32_t bits() const
    {
        return static_cast<std::uint32_t>(word_.size() * 64);
    }
    std::uint32_t numHashes() const { return hashes_; }
    std::uint64_t insertions() const { return insertions_; }

    /** Fraction of set bits (diagnostic for sizing ablations). */
    double occupancy() const;

    /** Storage cost in bytes. */
    std::uint64_t sizeBytes() const { return word_.size() * 8; }

    /** Register insertion count and occupancy under `prefix`. */
    void reportMetrics(stats::MetricsRegistry &reg,
                       const std::string &prefix) const;

    /** Checkpoint the bit array and insertion count. */
    void save(snapshot::Serializer &s) const;

    /** Restore; throws SnapshotError on sizing mismatch. */
    void load(snapshot::Deserializer &d);

  private:
    std::uint64_t hash(Addr addr, std::uint32_t i) const;

    std::vector<std::uint64_t> word_;
    std::uint32_t hashes_;
    std::uint64_t mask_;
    std::uint64_t insertions_ = 0;
};

} // namespace dlsim::core

#endif // DLSIM_CORE_BLOOM_FILTER_HH
