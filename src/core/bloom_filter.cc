#include "core/bloom_filter.hh"

#include "snapshot/serializer.hh"

#include <bit>
#include <cassert>

#include "stats/metrics.hh"

namespace dlsim::core
{

BloomFilter::BloomFilter(std::uint32_t bits, std::uint32_t hashes)
    : hashes_(hashes)
{
    assert(bits >= 64 && std::has_single_bit(bits));
    assert(hashes >= 1);
    word_.resize(bits / 64, 0);
    mask_ = bits - 1;
}

std::uint64_t
BloomFilter::hash(Addr addr, std::uint32_t i) const
{
    // GOT slots are 8-byte aligned; drop the low bits, then mix with
    // a different odd multiplier per hash function.
    std::uint64_t x = (addr >> 3) + 0x9e3779b97f4a7c15ull * (i + 1);
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return (x ^ (x >> 31)) & mask_;
}

void
BloomFilter::insert(Addr addr)
{
    ++insertions_;
    for (std::uint32_t i = 0; i < hashes_; ++i) {
        const std::uint64_t bit = hash(addr, i);
        word_[bit >> 6] |= 1ull << (bit & 63);
    }
}

bool
BloomFilter::mayContain(Addr addr) const
{
    for (std::uint32_t i = 0; i < hashes_; ++i) {
        const std::uint64_t bit = hash(addr, i);
        if (!(word_[bit >> 6] & (1ull << (bit & 63))))
            return false;
    }
    return true;
}

void
BloomFilter::clear()
{
    std::fill(word_.begin(), word_.end(), 0);
}

double
BloomFilter::occupancy() const
{
    std::uint64_t set = 0;
    for (const auto w : word_)
        set += static_cast<std::uint64_t>(std::popcount(w));
    return static_cast<double>(set) /
           static_cast<double>(word_.size() * 64);
}

void
BloomFilter::reportMetrics(stats::MetricsRegistry &reg,
                           const std::string &prefix) const
{
    reg.counter(prefix + ".insertions", insertions_);
    reg.gauge(prefix + ".occupancy", occupancy());
    reg.gauge(prefix + ".size_bytes",
              static_cast<double>(sizeBytes()));
}


void
BloomFilter::save(snapshot::Serializer &s) const
{
    s.beginStruct("bloom");
    s.u32(bits());
    s.u32(hashes_);
    s.u64(insertions_);
    for (const std::uint64_t w : word_)
        s.u64(w);
    s.endStruct();
}

void
BloomFilter::load(snapshot::Deserializer &d)
{
    d.enterStruct("bloom");
    d.checkU32(bits(), "bloom bits");
    d.checkU32(hashes_, "bloom hashes");
    insertions_ = d.u64();
    for (std::uint64_t &w : word_)
        w = d.u64();
    d.leaveStruct();
}

} // namespace dlsim::core
