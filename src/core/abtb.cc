#include "core/abtb.hh"

#include "snapshot/serializer.hh"

#include <bit>
#include <cassert>
#include <sstream>

#include "stats/metrics.hh"

namespace dlsim::core
{

Abtb::Abtb(const AbtbParams &params) : params_(params)
{
    assert(params_.assoc > 0);
    assert(params_.entries >= params_.assoc);
    numSets_ = params_.entries / params_.assoc;
    assert(std::has_single_bit(numSets_));
    ways_.resize(numSets_ * params_.assoc);
}

std::optional<AbtbEntry>
Abtb::lookup(Addr trampoline, std::uint16_t asid)
{
    ++lookups_;
    ++tick_;
    Way *base = &ways_[setOf(trampoline) * params_.assoc];
    for (std::uint32_t w = 0; w < params_.assoc; ++w) {
        Way &way = base[w];
        if (way.valid && way.entry.trampoline == trampoline &&
            way.entry.asid == asid) {
            way.lastUse = tick_;
            ++hits_;
            return way.entry;
        }
    }
    return std::nullopt;
}

Abtb::Way *
Abtb::findVictim(std::size_t set)
{
    Way *base = &ways_[set * params_.assoc];
    Way *victim = base;
    for (std::uint32_t w = 0; w < params_.assoc; ++w) {
        Way &way = base[w];
        if (!way.valid)
            return &way; // first invalid way, deterministically
        if (way.lastUse < victim->lastUse)
            victim = &way;
    }
    return victim;
}

void
Abtb::insert(Addr trampoline, Addr function, Addr got_addr,
             std::uint16_t asid)
{
    ++tick_;
    ++inserts_;
    Way *base = &ways_[setOf(trampoline) * params_.assoc];
    for (std::uint32_t w = 0; w < params_.assoc; ++w) {
        Way &way = base[w];
        if (way.valid && way.entry.trampoline == trampoline &&
            way.entry.asid == asid) {
            way.entry.function = function;
            way.entry.gotAddr = got_addr;
            way.lastUse = tick_;
            return;
        }
    }
    Way *victim = findVictim(setOf(trampoline));
    if (victim->valid)
        ++evictions_;
    victim->valid = true;
    victim->entry = {trampoline, function, got_addr, asid};
    victim->lastUse = tick_;
}

void
Abtb::flushAll()
{
    ++flushes_;
    for (auto &way : ways_)
        way.valid = false;
}

std::uint64_t
Abtb::occupancy() const
{
    std::uint64_t n = 0;
    for (const auto &way : ways_) {
        if (way.valid)
            ++n;
    }
    return n;
}

void
Abtb::clearStats()
{
    lookups_ = hits_ = inserts_ = evictions_ = flushes_ = 0;
}

std::string
Abtb::dump() const
{
    std::ostringstream os;
    os << "abtb: " << occupancy() << "/" << params_.entries
       << " valid, lookups=" << lookups_ << " hits=" << hits_
       << " inserts=" << inserts_ << " evictions=" << evictions_
       << " flushes=" << flushes_ << "\n";
    for (std::size_t set = 0; set < numSets_; ++set) {
        for (std::uint32_t w = 0; w < params_.assoc; ++w) {
            const Way &way = ways_[set * params_.assoc + w];
            if (!way.valid)
                continue;
            os << "  [" << set << "." << w << "] tramp=0x"
               << std::hex << way.entry.trampoline << " -> fn=0x"
               << way.entry.function << " got=0x"
               << way.entry.gotAddr << std::dec << " asid="
               << way.entry.asid << "\n";
        }
    }
    return os.str();
}

void
Abtb::reportMetrics(stats::MetricsRegistry &reg,
                    const std::string &prefix) const
{
    reg.counter(prefix + ".lookups", lookups_);
    reg.counter(prefix + ".hits", hits_);
    reg.counter(prefix + ".misses", lookups_ - hits_);
    reg.counter(prefix + ".inserts", inserts_);
    reg.counter(prefix + ".evictions", evictions_);
    reg.counter(prefix + ".flushes", flushes_);
    reg.gauge(prefix + ".occupancy",
              static_cast<double>(occupancy()));
    reg.gauge(prefix + ".size_bytes",
              static_cast<double>(sizeBytes()));
}


void
Abtb::save(snapshot::Serializer &s) const
{
    s.beginStruct("abtb");
    s.u32(params_.entries);
    s.u32(params_.assoc);
    s.u64(tick_);
    s.u64(lookups_);
    s.u64(hits_);
    s.u64(inserts_);
    s.u64(evictions_);
    s.u64(flushes_);
    for (const Way &w : ways_) {
        s.u64(w.entry.trampoline);
        s.u64(w.entry.function);
        s.u64(w.entry.gotAddr);
        s.u16(w.entry.asid);
        s.boolean(w.valid);
        s.u64(w.lastUse);
    }
    s.endStruct();
}

void
Abtb::load(snapshot::Deserializer &d)
{
    d.enterStruct("abtb");
    d.checkU32(params_.entries, "abtb entries");
    d.checkU32(params_.assoc, "abtb assoc");
    tick_ = d.u64();
    lookups_ = d.u64();
    hits_ = d.u64();
    inserts_ = d.u64();
    evictions_ = d.u64();
    flushes_ = d.u64();
    for (Way &w : ways_) {
        w.entry.trampoline = d.u64();
        w.entry.function = d.u64();
        w.entry.gotAddr = d.u64();
        w.entry.asid = d.u16();
        w.valid = d.boolean();
        w.lastUse = d.u64();
    }
    d.leaveStruct();
}

} // namespace dlsim::core
