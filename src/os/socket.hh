/**
 * @file
 * Listener and connection state machines — the control plane of the
 * OS layer's sockets.
 *
 * A Listener owns an accept backlog (SYN queue): connect() enqueues
 * a half-open connection, accept() pops it and establishes it. When
 * the backlog is full, further connectors block (the kernel parks
 * them in connectWaiters); when it is empty, acceptors block.
 *
 * A Connection is a bidirectional byte stream built from two pipes
 * (client-to-server and server-to-client). Each side can close its
 * write direction independently (half-close, like shutdown(WR));
 * the connection is Closed once both directions are.
 */

#ifndef DLSIM_OS_SOCKET_HH
#define DLSIM_OS_SOCKET_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "os/pipe.hh"

namespace dlsim::os
{

/** Which end of a connection a thread holds. */
enum class ConnSide : std::uint8_t
{
    Client,
    Server,
};

/** Connection lifecycle (paper-agnostic TCP-ish reduction). */
enum class ConnState : std::uint8_t
{
    /** connect() done, sitting in the listener's backlog. */
    SynQueued,
    /** accept() done; both directions open. */
    Established,
    /** One direction closed. */
    HalfClosed,
    /** Both directions closed. */
    Closed,
};

/** One bidirectional connection. */
struct Connection
{
    Connection(std::int32_t id, std::size_t pipe_capacity)
        : id(id), toServer(pipe_capacity), toClient(pipe_capacity)
    {
    }

    std::int32_t id;
    ConnState state = ConnState::SynQueued;
    Pipe toServer; ///< Client writes, server reads.
    Pipe toClient; ///< Server writes, client reads.

    Pipe &txPipe(ConnSide side)
    {
        return side == ConnSide::Client ? toServer : toClient;
    }
    Pipe &rxPipe(ConnSide side)
    {
        return side == ConnSide::Client ? toClient : toServer;
    }

    /** Close `side`'s write direction; advances the state machine
     *  Established -> HalfClosed -> Closed. */
    void shutdownWrite(ConnSide side);
};

/** One listening socket. */
struct Listener
{
    std::int32_t port = 0;
    std::uint32_t backlogMax = 1;
    /** Half-open connections awaiting accept (SYN queue). */
    std::deque<std::int32_t> backlog;
    /** Threads blocked in accept() (backlog empty). */
    std::vector<std::uint32_t> acceptWaiters;
    /** Threads blocked in connect() (backlog full). */
    std::vector<std::uint32_t> connectWaiters;
};

} // namespace dlsim::os

#endif // DLSIM_OS_SOCKET_HH
