/**
 * @file
 * Multi-tenant request server built on os::Kernel — the top layer
 * of the OS-like subsystem.
 *
 * Topology: `clients` client threads connect to one listening port
 * over kernel sockets and send fixed 32-byte request records;
 * `workers` worker threads accept, read, parse, switch to the
 * target tenant's address space (ASID context switch, §3.3), call
 * the tenant's handler through the dispatch module's PLT (simulated
 * execution in preemptible quanta), and write a 32-byte response.
 * Clients measure request latency in virtual cycles.
 *
 * Tenants are plugin libraries churned at runtime: every
 * `churnPeriod` served requests the next tenant (round-robin) is
 * dlclosed and reloaded as a new generation. The dlclose resets the
 * dispatch module's GOT entries — each reset is broadcast to every
 * core's trampoline-skip unit as coherence traffic (§3.2) — and the
 * next request for that tenant lazily re-binds to the new
 * generation. A tenant is only churned when quiescent (no in-flight
 * call into it); requests arriving mid-churn are unaffected because
 * the dispatch veneer itself is never unloaded.
 *
 * Fully deterministic: byte-identical metrics for any host
 * parallelism and block dispatch on or off.
 */

#ifndef DLSIM_OS_SERVER_HH
#define DLSIM_OS_SERVER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "os/sched.hh"
#include "sim/multicore.hh"
#include "stats/cdf.hh"
#include "stats/metrics.hh"
#include "workload/engine.hh"
#include "workload/tenant.hh"

namespace dlsim::os
{

/** Server topology and traffic configuration. */
struct ServerParams
{
    std::uint32_t workers = 4;
    std::uint32_t clients = 8;
    std::uint32_t tenants = 2;
    /** Total requests across all clients. */
    std::uint64_t requests = 1000;
    /** Served requests between tenant reloads; 0 = no churn. */
    std::uint64_t churnPeriod = 0;
    /** Listener accept backlog (connect blocks when full). */
    std::uint32_t backlog = 4;
    /** Tenant handler loop iterations per request. */
    std::uint32_t workPerRequest = 6;
    std::uint64_t seed = 1;
    KernelParams kernel;
};

/** Server-level activity counters. */
struct ServerStats
{
    std::uint64_t requestsServed = 0;
    std::uint64_t tenantChurns = 0;
    /** GOT entries reset by dlclose across all churns. */
    std::uint64_t gotResets = 0;
    /** Churns deferred until the tenant went quiescent. */
    std::uint64_t deferredChurns = 0;
};

/**
 * The server: owns the MultiCoreSystem and Kernel, loads the
 * tenant and dispatch modules into the workbench's image, and
 * spawns the client/worker threads.
 */
class Server
{
  public:
    Server(workload::Workbench &wb,
           const sim::MultiCoreParams &mc_params,
           const ServerParams &params);
    ~Server();

    /** Serve until every client finished. Throws OsError on
     *  deadlock. */
    void run();

    /** Bounded variant for incremental drivers (fuzzing).
     *  @return True when all threads have exited. */
    bool runRounds(std::uint64_t rounds);

    /** Force-churn a tenant now if quiescent, else defer (fuzz
     *  event injection). */
    void requestChurn(std::uint32_t tenant);

    Kernel &kernel() { return kernel_; }
    sim::MultiCoreSystem &system() { return sys_; }
    const ServerStats &stats() const { return stats_; }
    /** Per-request latency in virtual cycles. */
    const stats::SampleSet &latency() const { return latency_; }
    const ServerParams &params() const { return params_; }
    std::uint32_t tenantGeneration(std::uint32_t t) const
    {
        return gen_[t];
    }

    /**
     * Register `<prefix>.server.*` plus the kernel's scheduler,
     * pipe, and socket counters (pass "dlsim.os"). Latency
     * percentiles are reported as gauges in virtual cycles.
     */
    void reportMetrics(stats::MetricsRegistry &reg,
                       const std::string &prefix) const;

  private:
    friend class ServerClient;
    friend class ServerWorker;

    static constexpr std::int32_t Port = 7;
    /** Wire format: four u64 fields, little-endian. */
    static constexpr std::size_t RecordBytes = 32;

    std::string tenantModuleName(std::uint32_t t,
                                 std::uint32_t gen) const;
    workload::TenantSpec tenantSpec(std::uint32_t t,
                                    std::uint32_t gen) const;
    isa::Addr dispatchAddress(std::uint32_t t) const
    {
        return dispatchAddrs_[t];
    }

    /** Request accounting from the worker path. */
    void beginDispatch(Kernel &k, std::uint32_t tenant);
    void endDispatch(Kernel &k, std::uint32_t tenant);
    void noteClientDone(Kernel &k);
    bool draining() const { return clientsDone_ >= params_.clients; }

    /** dlclose generation g, dlopen g+1, resync observers. */
    void churnTenant(std::uint32_t t);
    void resyncObservers();

    workload::Workbench &wb_;
    ServerParams params_;
    sim::MultiCoreSystem sys_;
    Kernel kernel_;

    std::vector<std::uint32_t> gen_;
    std::vector<std::uint32_t> inFlight_;
    std::vector<bool> churnPending_;
    std::vector<isa::Addr> dispatchAddrs_;
    std::uint32_t nextChurnTenant_ = 0;
    std::uint32_t clientsDone_ = 0;

    ServerStats stats_;
    stats::SampleSet latency_;
};

} // namespace dlsim::os

#endif // DLSIM_OS_SERVER_HH
