/**
 * @file
 * Pipe: a fixed-capacity byte ring buffer, the kernel-side data
 * plane of the OS layer's pipes and socket connections.
 *
 * The ring itself is non-blocking — read()/write() move as many
 * bytes as fit and return the count. Blocking semantics (a reader
 * waiting on an empty pipe, a writer on a full one) live in
 * os::Kernel, which parks the calling thread and records it in the
 * waiter lists kept here.
 */

#ifndef DLSIM_OS_PIPE_HH
#define DLSIM_OS_PIPE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dlsim::os
{

/** Per-pipe traffic counters. */
struct PipeStats
{
    std::uint64_t bytesWritten = 0;
    std::uint64_t bytesRead = 0;
};

/** Fixed-capacity byte ring buffer with waiter bookkeeping. */
class Pipe
{
  public:
    explicit Pipe(std::size_t capacity);

    std::size_t capacity() const { return buf_.size(); }
    std::size_t size() const { return count_; }
    std::size_t freeSpace() const { return buf_.size() - count_; }
    bool empty() const { return count_ == 0; }
    bool full() const { return count_ == buf_.size(); }

    /**
     * Copy up to `n` bytes out of the ring (FIFO order, wrapping).
     * @return Bytes actually read (0 when empty).
     */
    std::size_t read(std::uint8_t *dst, std::size_t n);

    /**
     * Copy up to `n` bytes into the ring (partial writes allowed).
     * @return Bytes actually written (0 when full or closed).
     */
    std::size_t write(const std::uint8_t *src, std::size_t n);

    /** Close the write end: readers drain the remaining bytes and
     *  then see end-of-stream; writes are discarded. */
    void close() { closed_ = true; }
    bool closed() const { return closed_; }

    /** End-of-stream: closed and fully drained. */
    bool atEof() const { return closed_ && count_ == 0; }

    const PipeStats &stats() const { return stats_; }

    /** @name Waiter lists (managed by os::Kernel) @{ */
    std::vector<std::uint32_t> &readWaiters()
    {
        return readWaiters_;
    }
    std::vector<std::uint32_t> &writeWaiters()
    {
        return writeWaiters_;
    }
    /** @} */

  private:
    std::vector<std::uint8_t> buf_;
    std::size_t head_ = 0; ///< Next byte to read.
    std::size_t count_ = 0;
    bool closed_ = false;
    PipeStats stats_;
    std::vector<std::uint32_t> readWaiters_;
    std::vector<std::uint32_t> writeWaiters_;
};

} // namespace dlsim::os

#endif // DLSIM_OS_PIPE_HH
