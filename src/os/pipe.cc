#include "os/pipe.hh"

#include <algorithm>
#include <cassert>

namespace dlsim::os
{

Pipe::Pipe(std::size_t capacity) : buf_(capacity)
{
    assert(capacity > 0);
}

std::size_t
Pipe::read(std::uint8_t *dst, std::size_t n)
{
    const std::size_t take = std::min(n, count_);
    for (std::size_t i = 0; i < take; ++i) {
        dst[i] = buf_[head_];
        head_ = (head_ + 1) % buf_.size();
    }
    count_ -= take;
    stats_.bytesRead += take;
    return take;
}

std::size_t
Pipe::write(const std::uint8_t *src, std::size_t n)
{
    if (closed_)
        return 0;
    const std::size_t put = std::min(n, freeSpace());
    std::size_t tail = (head_ + count_) % buf_.size();
    for (std::size_t i = 0; i < put; ++i) {
        buf_[tail] = src[i];
        tail = (tail + 1) % buf_.size();
    }
    count_ += put;
    stats_.bytesWritten += put;
    return put;
}

} // namespace dlsim::os
