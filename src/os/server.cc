#include "os/server.hh"

#include <cassert>
#include <cstring>

#include "stats/rng.hh"
#include "workload/program.hh"

namespace dlsim::os
{

namespace
{

void
putU64(std::uint8_t *p, std::uint64_t v)
{
    std::memcpy(p, &v, sizeof v);
}

std::uint64_t
getU64(const std::uint8_t *p)
{
    std::uint64_t v;
    std::memcpy(&v, p, sizeof v);
    return v;
}

} // namespace

/**
 * One client: open a persistent connection, then for each of its
 * requests send a 32-byte record (tenant, work, seed, reqid), read
 * the 32-byte response, and record the round-trip latency.
 */
class ServerClient : public Thread
{
  public:
    ServerClient(Server &srv, std::uint32_t index,
                 std::uint64_t requests)
        : srv_(srv),
          rng_(srv.params().seed * 0x9e3779b9u + index),
          index_(index), remaining_(requests)
    {
    }

    void step(Kernel &k) override
    {
        for (;;) {
            switch (st_) {
              case St::Connect: {
                if (remaining_ == 0) {
                    st_ = St::Done;
                    continue;
                }
                const long r = k.connect(Server::Port);
                if (r == Kernel::WouldBlock)
                    return;
                assert(r >= 0);
                conn_ = static_cast<std::int32_t>(r);
                prepareRequest(k);
                st_ = St::Send;
                continue;
              }
              case St::Send: {
                while (pos_ < Server::RecordBytes) {
                    const long w = k.connWrite(
                        conn_, ConnSide::Client, buf_ + pos_,
                        Server::RecordBytes - pos_);
                    if (w == Kernel::WouldBlock)
                        return;
                    assert(w > 0);
                    pos_ += static_cast<std::size_t>(w);
                }
                pos_ = 0;
                st_ = St::Recv;
                continue;
              }
              case St::Recv: {
                while (pos_ < Server::RecordBytes) {
                    const long r = k.connRead(
                        conn_, ConnSide::Client, buf_ + pos_,
                        Server::RecordBytes - pos_);
                    if (r == Kernel::WouldBlock)
                        return;
                    if (r == 0) { // Server hung up on us.
                        st_ = St::Done;
                        break;
                    }
                    pos_ += static_cast<std::size_t>(r);
                }
                if (st_ == St::Done)
                    continue;
                srv_.latency_.add(static_cast<double>(
                    k.now() - sendStamp_));
                --remaining_;
                if (remaining_ == 0) {
                    st_ = St::Done;
                } else {
                    prepareRequest(k);
                    st_ = St::Send;
                }
                continue;
              }
              case St::Done: {
                if (conn_ >= 0)
                    k.connShutdown(conn_, ConnSide::Client);
                srv_.noteClientDone(k);
                k.exitThread();
                return;
              }
            }
        }
    }

  private:
    enum class St
    {
        Connect,
        Send,
        Recv,
        Done,
    };

    void prepareRequest(Kernel &k)
    {
        const std::uint64_t tenant =
            rng_.nextBelow(srv_.params().tenants);
        putU64(buf_ + 0, tenant);
        putU64(buf_ + 8, srv_.params().workPerRequest);
        putU64(buf_ + 16, rng_.next() | 1);
        putU64(buf_ + 24,
               (static_cast<std::uint64_t>(index_) << 32) | seq_++);
        pos_ = 0;
        sendStamp_ = k.now();
    }

    Server &srv_;
    stats::Rng rng_;
    std::uint32_t index_;
    std::uint64_t remaining_;
    St st_ = St::Connect;
    std::int32_t conn_ = -1;
    std::uint8_t buf_[Server::RecordBytes] = {};
    std::size_t pos_ = 0;
    std::uint64_t sendStamp_ = 0;
    std::uint32_t seq_ = 0;
};

/**
 * One worker: accept a connection, then loop read-request →
 * ASID-switch to the tenant → call its handler through the dispatch
 * PLT → write-response, until the client hangs up; then accept the
 * next connection. Exits once the server is draining.
 */
class ServerWorker : public Thread
{
  public:
    explicit ServerWorker(Server &srv) : srv_(srv) {}

    void step(Kernel &k) override
    {
        for (;;) {
            switch (st_) {
              case St::Accept: {
                if (srv_.draining()) {
                    k.exitThread();
                    return;
                }
                const long r = k.accept(Server::Port);
                if (r == Kernel::WouldBlock)
                    return;
                conn_ = static_cast<std::int32_t>(r);
                pos_ = 0;
                st_ = St::Read;
                continue;
              }
              case St::Read: {
                while (pos_ < Server::RecordBytes) {
                    const long r = k.connRead(
                        conn_, ConnSide::Server, buf_ + pos_,
                        Server::RecordBytes - pos_);
                    if (r == Kernel::WouldBlock)
                        return;
                    if (r == 0) { // Client done with this conn.
                        k.connShutdown(conn_, ConnSide::Server);
                        conn_ = -1;
                        st_ = St::Accept;
                        break;
                    }
                    pos_ += static_cast<std::size_t>(r);
                }
                if (st_ == St::Accept)
                    continue;
                tenant_ = static_cast<std::uint32_t>(
                    getU64(buf_ + 0));
                reqId_ = getU64(buf_ + 24);
                srv_.beginDispatch(k, tenant_);
                k.call(srv_.dispatchAddress(tenant_),
                       getU64(buf_ + 8), getU64(buf_ + 16));
                st_ = St::InCall;
                return;
              }
              case St::InCall:
                // Waiting for onCallDone; nothing to step.
                return;
              case St::Write: {
                while (pos_ < Server::RecordBytes) {
                    const long w = k.connWrite(
                        conn_, ConnSide::Server, buf_ + pos_,
                        Server::RecordBytes - pos_);
                    if (w == Kernel::WouldBlock)
                        return;
                    assert(w > 0);
                    pos_ += static_cast<std::size_t>(w);
                }
                pos_ = 0;
                st_ = St::Read;
                continue;
              }
            }
        }
    }

    void onCallDone(Kernel &k, std::uint64_t retval) override
    {
        assert(st_ == St::InCall);
        putU64(buf_ + 0, retval);
        putU64(buf_ + 8, tenant_);
        putU64(buf_ + 16, 0x52455350ull); // "RESP"
        putU64(buf_ + 24, reqId_);
        pos_ = 0;
        st_ = St::Write;
        srv_.endDispatch(k, tenant_);
    }

  private:
    enum class St
    {
        Accept,
        Read,
        InCall,
        Write,
    };

    Server &srv_;
    St st_ = St::Accept;
    std::int32_t conn_ = -1;
    std::uint8_t buf_[Server::RecordBytes] = {};
    std::size_t pos_ = 0;
    std::uint32_t tenant_ = 0;
    std::uint64_t reqId_ = 0;
};

Server::Server(workload::Workbench &wb,
               const sim::MultiCoreParams &mc_params,
               const ServerParams &params)
    : wb_(wb), params_(params),
      sys_(mc_params, wb.image(), wb.linker(),
           wb.loader().stackTop()),
      kernel_(params.kernel, sys_, wb.image(), wb.linker())
{
    assert(params_.workers >= 1 && params_.clients >= 1 &&
           params_.tenants >= 1);

    gen_.assign(params_.tenants, 0);
    inFlight_.assign(params_.tenants, 0);
    churnPending_.assign(params_.tenants, false);

    // Load generation 0 of every tenant, then the dispatch veneer
    // whose PLT imports bind lazily into whichever generation is
    // current at call time.
    std::vector<std::string> handler_syms;
    for (std::uint32_t t = 0; t < params_.tenants; ++t) {
        wb_.loader().dlopen(
            wb_.image(),
            workload::buildTenantModule(tenantSpec(t, 0)));
        handler_syms.push_back("t" + std::to_string(t) +
                               "_handle");
    }
    wb_.loader().dlopen(wb_.image(),
                        workload::buildDispatchModule(
                            "dispatch_mod", handler_syms));
    for (std::uint32_t t = 0; t < params_.tenants; ++t)
        dispatchAddrs_.push_back(wb_.image().symbolAddress(
            "dispatch" + std::to_string(t)));

    kernel_.listen(Port, params_.backlog);

    // Workers first (lower tids drain the accept queue eagerly).
    // Worker stacks are mapped eagerly so a lockstep checker
    // attached after construction sees every mapping when it forks
    // its reference memory.
    for (std::uint32_t w = 0; w < params_.workers; ++w)
        kernel_.spawn(std::make_unique<ServerWorker>(*this),
                      "worker" + std::to_string(w), 0,
                      /*eager_stack=*/true);
    const std::uint64_t per = params_.requests / params_.clients;
    const std::uint64_t extra = params_.requests % params_.clients;
    for (std::uint32_t c = 0; c < params_.clients; ++c)
        kernel_.spawn(std::make_unique<ServerClient>(
                          *this, c, per + (c < extra ? 1 : 0)),
                      "client" + std::to_string(c));
}

Server::~Server() = default;

std::string
Server::tenantModuleName(std::uint32_t t, std::uint32_t gen) const
{
    return "tenant" + std::to_string(t) + "_g" +
           std::to_string(gen);
}

workload::TenantSpec
Server::tenantSpec(std::uint32_t t, std::uint32_t gen) const
{
    workload::TenantSpec spec;
    spec.moduleName = tenantModuleName(t, gen);
    spec.handlerSym = "t" + std::to_string(t) + "_handle";
    spec.seed = params_.seed * 1000003u + t * 257u + gen;
    // Each generation calls a different pair of base-library
    // symbols, so churn also reshuffles cross-library binding.
    const auto &syms = wb_.program().calledSymbols;
    if (!syms.empty()) {
        spec.externCalls.push_back(
            syms[(t * 7u + gen * 13u) % syms.size()]);
        spec.externCalls.push_back(
            syms[(t * 11u + gen * 17u + 3u) % syms.size()]);
    }
    return spec;
}

void
Server::beginDispatch(Kernel &k, std::uint32_t tenant)
{
    if (tenant >= params_.tenants)
        throw OsError("request names unknown tenant " +
                      std::to_string(tenant));
    k.setAsid(static_cast<std::uint16_t>(1 + tenant));
    ++inFlight_[tenant];
}

void
Server::endDispatch(Kernel &k, std::uint32_t tenant)
{
    assert(inFlight_[tenant] > 0);
    --inFlight_[tenant];
    ++stats_.requestsServed;

    if (params_.churnPeriod != 0 &&
        stats_.requestsServed % params_.churnPeriod == 0) {
        requestChurn(nextChurnTenant_);
        nextChurnTenant_ =
            (nextChurnTenant_ + 1) % params_.tenants;
    }
    // A churn deferred while this tenant was busy can fire as soon
    // as its last in-flight call retires.
    if (churnPending_[tenant] && inFlight_[tenant] == 0) {
        churnPending_[tenant] = false;
        churnTenant(tenant);
    }
    (void)k;
}

void
Server::requestChurn(std::uint32_t tenant)
{
    assert(tenant < params_.tenants);
    if (inFlight_[tenant] == 0) {
        churnTenant(tenant);
    } else if (!churnPending_[tenant]) {
        churnPending_[tenant] = true;
        ++stats_.deferredChurns;
    }
}

void
Server::churnTenant(std::uint32_t t)
{
    const std::string old_name = tenantModuleName(t, gen_[t]);
    ++gen_[t];
    // Every GOT entry the unload resets is coherence traffic all
    // skip units must observe (paper §3.2).
    wb_.loader().dlclose(wb_.image(), old_name,
                         [this](isa::Addr addr) {
                             sys_.broadcastGotWrite(addr);
                             ++stats_.gotResets;
                         });
    wb_.loader().dlopen(
        wb_.image(),
        workload::buildTenantModule(tenantSpec(t, gen_[t])));
    ++stats_.tenantChurns;
    resyncObservers();
}

void
Server::resyncObservers()
{
    // The reference machines fork memory lazily; a churn remapped
    // module pages and rewrote GOT slots behind their backs.
    for (std::uint32_t i = 0; i < sys_.numCores(); ++i) {
        cpu::Core &c = sys_.core(i);
        if (c.observer() != nullptr)
            c.observer()->onFastForward(c.state());
    }
}

void
Server::noteClientDone(Kernel &k)
{
    ++clientsDone_;
    if (draining())
        k.wakeAcceptors(Port);
}

void
Server::run()
{
    kernel_.run();
    assert(stats_.requestsServed == params_.requests);
}

bool
Server::runRounds(std::uint64_t rounds)
{
    return kernel_.runRounds(rounds);
}

void
Server::reportMetrics(stats::MetricsRegistry &reg,
                      const std::string &prefix) const
{
    kernel_.reportMetrics(reg, prefix);
    reg.counter(prefix + ".server.requests_served",
                stats_.requestsServed);
    reg.counter(prefix + ".server.tenant_churns",
                stats_.tenantChurns);
    reg.counter(prefix + ".server.got_resets", stats_.gotResets);
    reg.counter(prefix + ".server.deferred_churns",
                stats_.deferredChurns);
    reg.gauge(prefix + ".server.tenants", params_.tenants);
    reg.gauge(prefix + ".server.workers", params_.workers);
    reg.gauge(prefix + ".server.clients", params_.clients);
    // Always emitted (0 when idle) so the metric key set is
    // independent of traffic — the golden key test relies on that.
    const bool have = latency_.count() > 0;
    reg.gauge(prefix + ".server.latency_p50_cycles",
              have ? latency_.percentile(0.50) : 0.0);
    reg.gauge(prefix + ".server.latency_p99_cycles",
              have ? latency_.percentile(0.99) : 0.0);
}

} // namespace dlsim::os
