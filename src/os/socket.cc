#include "os/socket.hh"

namespace dlsim::os
{

void
Connection::shutdownWrite(ConnSide side)
{
    Pipe &tx = txPipe(side);
    if (tx.closed())
        return;
    tx.close();
    if (state == ConnState::Established)
        state = ConnState::HalfClosed;
    else if (state == ConnState::HalfClosed &&
             toServer.closed() && toClient.closed())
        state = ConnState::Closed;
}

} // namespace dlsim::os
