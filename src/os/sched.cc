#include "os/sched.hh"

#include <algorithm>
#include <cassert>

#include "isa/registers.hh"
#include "linker/dynamic_linker.hh"
#include "linker/image.hh"

namespace dlsim::os
{

Kernel::Kernel(const KernelParams &params,
               sim::MultiCoreSystem &sys, linker::Image &image,
               linker::DynamicLinker &linker)
    : params_(params), sys_(sys), image_(image), linker_(linker)
{
    running_.assign(sys_.numCores(), NoTid);
    lastTid_.assign(sys_.numCores(), NoTid);
    coreAsid_.assign(sys_.numCores(), 0);
}

std::uint32_t
Kernel::spawn(std::unique_ptr<Thread> body, std::string name,
              std::uint16_t asid, bool eager_stack)
{
    const auto tid = static_cast<std::uint32_t>(tcbs_.size());
    tcbs_.emplace_back();
    Tcb &t = tcbs_.back();
    t.body = std::move(body);
    t.name = std::move(name);
    t.asid = asid;
    if (eager_stack)
        t.stackTop = sys_.allocThreadStack();
    ready_.push_back(tid);
    ++liveThreads_;
    ++stats_.threadsSpawned;
    return tid;
}

void
Kernel::ensureStack(Tcb &t)
{
    if (t.stackTop == 0)
        t.stackTop = sys_.allocThreadStack();
}

void
Kernel::dispatch(std::uint32_t core)
{
    if (ready_.empty())
        return;
    const std::uint32_t tid = ready_.front();
    ready_.pop_front();
    Tcb &t = tcbs_[tid];
    assert(t.state == ThreadState::Ready);

    cpu::Core &c = sys_.core(core);
    c.setState(t.ctx);
    if (coreAsid_[core] != t.asid) {
        c.contextSwitch(&image_, &linker_, t.asid);
        coreAsid_[core] = t.asid;
        ++stats_.asidSwitches;
    }
    // Resuming a thread mid-call on a (possibly different) core:
    // the lockstep checker's reference machine must adopt this
    // thread's full context before the next retired instruction.
    if (t.inSimCall && c.observer() != nullptr)
        c.observer()->onFastForward(c.state());

    if (lastTid_[core] != tid) {
        lastTid_[core] = tid;
        ++stats_.threadSwitches;
    }
    t.state = ThreadState::Running;
    running_[core] = tid;
    ++stats_.dispatches;
}

void
Kernel::undispatch(std::uint32_t core, ThreadState to)
{
    const std::uint32_t tid = running_[core];
    Tcb &t = tcbs_[tid];
    t.ctx = sys_.core(core).state();
    t.state = to;
    if (to == ThreadState::Ready)
        ready_.push_back(tid);
    running_[core] = NoTid;
}

void
Kernel::startCall(std::uint32_t core, Tcb &t)
{
    cpu::Core &c = sys_.core(core);
    ensureStack(t);
    if (c.state().regs[isa::RegSp] == 0)
        c.initStack(t.stackTop);
    c.beginCall(t.callFn, t.callArgs[0], t.callArgs[1],
                t.callArgs[2]);
    t.callPending = false;
    t.inSimCall = true;
    ++stats_.simCalls;
}

std::uint64_t
Kernel::runSlice(std::uint32_t core)
{
    const std::uint32_t tid = running_[core];
    Tcb &t = tcbs_[tid];
    cpu::Core &c = sys_.core(core);
    curTid_ = tid;
    curCore_ = core;

    const std::uint64_t cycles0 = c.cycleCount();
    std::uint64_t kernel_cycles = 0;
    std::uint64_t budget = params_.quantum;

    while (budget > 0 && t.state == ThreadState::Running) {
        if (t.inSimCall) {
            const std::uint64_t insts0 = c.instructionsRetired();
            const bool done = c.runQuantum(budget);
            const std::uint64_t used =
                c.instructionsRetired() - insts0;
            budget -= std::min(budget, used);
            if (!done)
                break; // Quantum expired mid-call.
            t.inSimCall = false;
            t.body->onCallDone(*this,
                               c.state().regs[isa::RegRet]);
            ++stats_.kernelSteps;
            kernel_cycles += params_.kernelStepCycles;
            budget -= std::min(budget, params_.kernelStepInsts);
        } else {
            t.body->step(*this);
            ++stats_.kernelSteps;
            kernel_cycles += params_.kernelStepCycles;
            budget -= std::min(budget, params_.kernelStepInsts);
        }
        if (t.callPending && t.state == ThreadState::Running)
            startCall(core, t);
        if (t.yielded) {
            t.yielded = false;
            break;
        }
    }

    switch (t.state) {
      case ThreadState::Running:
        // Budget exhausted (or yield). Preempt only when someone
        // else is waiting; otherwise keep the core hot.
        if (params_.preempt && !ready_.empty()) {
            if (budget == 0)
                ++stats_.preemptions;
            undispatch(core, ThreadState::Ready);
        } else {
            // Keep the thread at the head of the queue so the next
            // round re-dispatches it on this core.
            t.ctx = c.state();
            t.state = ThreadState::Ready;
            running_[core] = NoTid;
            ready_.push_front(tid);
        }
        break;
      case ThreadState::Blocked:
        ++stats_.blocks;
        undispatch(core, ThreadState::Blocked);
        break;
      case ThreadState::Done:
        t.ctx = c.state();
        running_[core] = NoTid;
        --liveThreads_;
        ++stats_.threadsExited;
        break;
      case ThreadState::Ready:
        assert(false && "thread cannot be Ready mid-slice");
        break;
    }
    return (c.cycleCount() - cycles0) + kernel_cycles;
}

bool
Kernel::runRounds(std::uint64_t max_rounds)
{
    for (std::uint64_t r = 0; r < max_rounds; ++r) {
        if (allDone())
            return true;
        bool any = false;
        std::uint64_t round_cost = 0;
        for (std::uint32_t i = 0; i < sys_.numCores(); ++i) {
            if (running_[i] == NoTid)
                dispatch(i);
            if (running_[i] == NoTid) {
                ++stats_.idleSlices;
                continue;
            }
            any = true;
            round_cost = std::max(round_cost, runSlice(i));
        }
        ++stats_.rounds;
        now_ += round_cost;
        if (!any)
            throw OsError("os::Kernel deadlock: " +
                          std::to_string(liveThreads_) +
                          " live thread(s), none runnable");
    }
    return allDone();
}

void
Kernel::run()
{
    runRounds(UINT64_MAX);
}

void
Kernel::call(isa::Addr fn, std::uint64_t arg0, std::uint64_t arg1,
             std::uint64_t arg2)
{
    Tcb &t = tcbs_[curTid_];
    assert(!t.inSimCall && !t.callPending);
    t.callPending = true;
    t.callFn = fn;
    t.callArgs[0] = arg0;
    t.callArgs[1] = arg1;
    t.callArgs[2] = arg2;
}

void
Kernel::exitThread()
{
    tcbs_[curTid_].state = ThreadState::Done;
}

void
Kernel::yield()
{
    tcbs_[curTid_].yielded = true;
}

void
Kernel::setAsid(std::uint16_t asid)
{
    Tcb &t = tcbs_[curTid_];
    if (t.asid == asid)
        return;
    t.asid = asid;
    if (coreAsid_[curCore_] != asid) {
        sys_.core(curCore_).contextSwitch(&image_, &linker_, asid);
        coreAsid_[curCore_] = asid;
        ++stats_.asidSwitches;
    }
}

void
Kernel::block(std::vector<std::uint32_t> &waiters)
{
    waiters.push_back(curTid_);
    tcbs_[curTid_].state = ThreadState::Blocked;
}

void
Kernel::wakeAll(std::vector<std::uint32_t> &waiters)
{
    for (const std::uint32_t tid : waiters) {
        Tcb &t = tcbs_[tid];
        if (t.state != ThreadState::Blocked)
            continue;
        t.state = ThreadState::Ready;
        ready_.push_back(tid);
        ++stats_.wakeups;
    }
    waiters.clear();
}

Pipe &
Kernel::pipeAt(std::int32_t id)
{
    return *pipes_.at(static_cast<std::size_t>(id));
}

std::int32_t
Kernel::pipeCreate(std::size_t capacity)
{
    pipes_.push_back(std::make_unique<Pipe>(capacity));
    return static_cast<std::int32_t>(pipes_.size() - 1);
}

long
Kernel::pipeRead(std::int32_t pipe, std::uint8_t *dst,
                 std::size_t n)
{
    Pipe &p = pipeAt(pipe);
    if (!p.empty()) {
        const std::size_t got = p.read(dst, n);
        stats_.pipeBytesRead += got;
        wakeAll(p.writeWaiters());
        return static_cast<long>(got);
    }
    if (p.atEof())
        return 0;
    ++stats_.pipeBlockedReads;
    block(p.readWaiters());
    return WouldBlock;
}

long
Kernel::pipeWrite(std::int32_t pipe, const std::uint8_t *src,
                  std::size_t n)
{
    Pipe &p = pipeAt(pipe);
    if (p.closed())
        return Error;
    const std::size_t put = p.write(src, n);
    if (put > 0) {
        stats_.pipeBytesWritten += put;
        wakeAll(p.readWaiters());
        return static_cast<long>(put);
    }
    ++stats_.pipeBlockedWrites;
    block(p.writeWaiters());
    return WouldBlock;
}

void
Kernel::pipeCloseWrite(std::int32_t pipe)
{
    Pipe &p = pipeAt(pipe);
    p.close();
    wakeAll(p.readWaiters());
    wakeAll(p.writeWaiters());
}

void
Kernel::listen(std::int32_t port, std::uint32_t backlog)
{
    Listener &l = listeners_[port];
    l.port = port;
    l.backlogMax = std::max<std::uint32_t>(1, backlog);
    ++stats_.listens;
}

long
Kernel::connect(std::int32_t port)
{
    auto it = listeners_.find(port);
    if (it == listeners_.end())
        return Error;
    Listener &l = it->second;
    if (l.backlog.size() >= l.backlogMax) {
        ++stats_.backlogBlocks;
        block(l.connectWaiters);
        return WouldBlock;
    }
    conns_.push_back(std::make_unique<Connection>(
        static_cast<std::int32_t>(conns_.size()),
        params_.pipeCapacity));
    Connection &conn = *conns_.back();
    l.backlog.push_back(conn.id);
    wakeAll(l.acceptWaiters);
    ++stats_.connects;
    return conn.id;
}

long
Kernel::accept(std::int32_t port)
{
    Listener &l = listeners_.at(port);
    if (l.backlog.empty()) {
        block(l.acceptWaiters);
        return WouldBlock;
    }
    const std::int32_t cid = l.backlog.front();
    l.backlog.pop_front();
    connection(cid).state = ConnState::Established;
    wakeAll(l.connectWaiters); // A backlog slot freed up.
    ++stats_.accepts;
    return cid;
}

long
Kernel::connRead(std::int32_t conn, ConnSide side,
                 std::uint8_t *dst, std::size_t n)
{
    Pipe &rx = connection(conn).rxPipe(side);
    if (!rx.empty()) {
        const std::size_t got = rx.read(dst, n);
        stats_.pipeBytesRead += got;
        wakeAll(rx.writeWaiters());
        return static_cast<long>(got);
    }
    if (rx.atEof())
        return 0;
    ++stats_.pipeBlockedReads;
    block(rx.readWaiters());
    return WouldBlock;
}

long
Kernel::connWrite(std::int32_t conn, ConnSide side,
                  const std::uint8_t *src, std::size_t n)
{
    Pipe &tx = connection(conn).txPipe(side);
    if (tx.closed())
        return Error;
    const std::size_t put = tx.write(src, n);
    if (put > 0) {
        stats_.pipeBytesWritten += put;
        wakeAll(tx.readWaiters());
        return static_cast<long>(put);
    }
    ++stats_.pipeBlockedWrites;
    block(tx.writeWaiters());
    return WouldBlock;
}

void
Kernel::connShutdown(std::int32_t conn, ConnSide side)
{
    Connection &c = connection(conn);
    const bool was_closed = c.state == ConnState::Closed;
    Pipe &tx = c.txPipe(side);
    c.shutdownWrite(side);
    wakeAll(tx.readWaiters()); // Readers now see EOF.
    wakeAll(tx.writeWaiters());
    if (!was_closed && c.state == ConnState::Closed)
        ++stats_.connsClosed;
}

void
Kernel::wakeAcceptors(std::int32_t port)
{
    auto it = listeners_.find(port);
    if (it != listeners_.end())
        wakeAll(it->second.acceptWaiters);
}

void
Kernel::reportMetrics(stats::MetricsRegistry &reg,
                      const std::string &prefix) const
{
    const auto counter = [&](const char *name, std::uint64_t v) {
        reg.counter(prefix + name, v);
    };
    counter(".sched.rounds", stats_.rounds);
    counter(".sched.dispatches", stats_.dispatches);
    counter(".sched.preemptions", stats_.preemptions);
    counter(".sched.thread_switches", stats_.threadSwitches);
    counter(".sched.asid_switches", stats_.asidSwitches);
    counter(".sched.idle_slices", stats_.idleSlices);
    counter(".sched.kernel_steps", stats_.kernelSteps);
    counter(".sched.sim_calls", stats_.simCalls);
    counter(".sched.blocks", stats_.blocks);
    counter(".sched.wakeups", stats_.wakeups);
    counter(".threads.spawned", stats_.threadsSpawned);
    counter(".threads.exited", stats_.threadsExited);
    counter(".pipe.blocked_reads", stats_.pipeBlockedReads);
    counter(".pipe.blocked_writes", stats_.pipeBlockedWrites);
    counter(".pipe.bytes_read", stats_.pipeBytesRead);
    counter(".pipe.bytes_written", stats_.pipeBytesWritten);
    counter(".sock.listens", stats_.listens);
    counter(".sock.connects", stats_.connects);
    counter(".sock.accepts", stats_.accepts);
    counter(".sock.backlog_blocks", stats_.backlogBlocks);
    counter(".sock.conns_closed", stats_.connsClosed);
    reg.gauge(prefix + ".vtime_cycles",
              static_cast<double>(now_));
}

} // namespace dlsim::os
