/**
 * @file
 * os::Kernel — a deterministic OS-like layer on top of
 * sim::MultiCoreSystem: a round-robin thread scheduler with
 * blocking/ready states, pipes, and listen/accept/connect sockets.
 *
 * Threads are kernel-level entities: their *control logic* is a
 * host-side state machine (Thread::step), and their *work* is
 * simulated CPU execution started with Kernel::call() — a function
 * call on the shared image that runs in preemptible quanta on
 * whichever core the scheduler dispatched the thread to. A thread's
 * register file travels with it (cpu::MachineState context saved on
 * un-dispatch, restored on dispatch), so M threads multiplex over N
 * cores exactly like an SMP kernel's run queue, including quantum-
 * expiry preemption in the middle of a call — and in the middle of
 * a trampoline sequence, which is precisely the §3.3 case the
 * ABTB's context-switch flush policy exists for.
 *
 * Everything runs on one host thread with a virtual clock: rounds
 * of one slice per core, each round advancing virtual time by the
 * largest cycle count any core consumed (cores run in parallel in
 * simulated time). All scheduling decisions depend only on
 * simulated state, so runs are byte-identical for any host
 * parallelism and for block dispatch on or off.
 *
 * Address-space isolation between tenants is modelled with ASIDs:
 * Kernel::setAsid() performs a cpu::Core::contextSwitch, flushing
 * TLBs/RAS/ABTB per paper §3.3 (unless ASID retention is
 * configured). Thread switches within one ASID restore registers
 * only — like an OS switching threads of one process.
 */

#ifndef DLSIM_OS_SCHED_HH
#define DLSIM_OS_SCHED_HH

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "cpu/core.hh"
#include "os/pipe.hh"
#include "os/socket.hh"
#include "sim/multicore.hh"
#include "stats/metrics.hh"

namespace dlsim::os
{

class Kernel;

/** Kernel scheduling errors (deadlock, bad handles). */
class OsError : public std::runtime_error
{
    using std::runtime_error::runtime_error;
};

/** Scheduler configuration. */
struct KernelParams
{
    /** Slice budget per dispatch, in retired instructions. */
    std::uint64_t quantum = 400;
    /** Requeue a still-running thread at quantum expiry when other
     *  threads are ready (off = run-to-block). */
    bool preempt = true;
    /** Synthetic cost of one kernel step (syscall + scheduler
     *  work), charged against the slice budget and virtual time. */
    std::uint64_t kernelStepInsts = 32;
    std::uint64_t kernelStepCycles = 48;
    /** Byte capacity of each connection's two pipes. */
    std::size_t pipeCapacity = 256;
};

/** Thread lifecycle. */
enum class ThreadState : std::uint8_t
{
    Ready,
    Running,
    Blocked,
    Done,
};

/**
 * Base class of a kernel thread's control logic.
 *
 * step() is invoked whenever the thread is scheduled and no
 * simulated call is in flight. It performs kernel work through the
 * Kernel API and returns; a syscall that blocked (returned
 * Kernel::WouldBlock) parks the thread, and step() must return
 * right after it. step() is re-invoked after wakeup — bodies are
 * written as resumable state machines, like a kernel's syscall
 * restart logic.
 */
class Thread
{
  public:
    virtual ~Thread() = default;

    /** One kernel step; see class comment for the contract. */
    virtual void step(Kernel &k) = 0;

    /** A call() started earlier retired its final instruction. */
    virtual void onCallDone(Kernel &k, std::uint64_t retval)
    {
        (void)k;
        (void)retval;
    }
};

/** Aggregate kernel activity counters. */
struct KernelStats
{
    std::uint64_t rounds = 0;
    std::uint64_t dispatches = 0;
    std::uint64_t preemptions = 0;
    std::uint64_t threadSwitches = 0;
    std::uint64_t asidSwitches = 0;
    std::uint64_t idleSlices = 0;
    std::uint64_t kernelSteps = 0;
    std::uint64_t simCalls = 0;
    std::uint64_t blocks = 0;
    std::uint64_t wakeups = 0;
    std::uint64_t threadsSpawned = 0;
    std::uint64_t threadsExited = 0;
    std::uint64_t pipeBlockedReads = 0;
    std::uint64_t pipeBlockedWrites = 0;
    std::uint64_t pipeBytesRead = 0;
    std::uint64_t pipeBytesWritten = 0;
    std::uint64_t listens = 0;
    std::uint64_t connects = 0;
    std::uint64_t accepts = 0;
    std::uint64_t backlogBlocks = 0;
    std::uint64_t connsClosed = 0;
};

/** The scheduler plus its pipe and socket tables. */
class Kernel
{
  public:
    /** Syscall result: the calling thread was parked; return from
     *  step() immediately and retry when re-invoked. */
    static constexpr long WouldBlock = -1;
    /** Syscall result: invalid operation (no listener on the port,
     *  write on a closed pipe). */
    static constexpr long Error = -2;

    Kernel(const KernelParams &params, sim::MultiCoreSystem &sys,
           linker::Image &image, linker::DynamicLinker &linker);

    /**
     * Create a thread in Ready state.
     * @param eager_stack Map its call stack now instead of at the
     *        first call(); required when a lockstep checker will be
     *        attached before the run (the checker forks reference
     *        memory at attach and would miss later mappings).
     * @return The thread id.
     */
    std::uint32_t spawn(std::unique_ptr<Thread> body,
                        std::string name, std::uint16_t asid = 0,
                        bool eager_stack = false);

    /**
     * Run scheduler rounds (one slice per core per round) until all
     * threads are Done or `max_rounds` elapse. Throws OsError on
     * deadlock (live threads, none runnable).
     * @return True when all threads are Done.
     */
    bool runRounds(std::uint64_t max_rounds);

    /** Run to completion (no round bound). */
    void run();

    bool allDone() const { return liveThreads_ == 0; }

    /** @name Syscalls (valid inside step()/onCallDone() only) @{ */
    /** Calling thread's id. */
    std::uint32_t self() const { return curTid_; }

    /** Virtual time in cycles (round-granular). */
    std::uint64_t now() const { return now_; }

    /** Begin a simulated function call; onCallDone fires when it
     *  returns. At most one call in flight per thread. */
    void call(isa::Addr fn, std::uint64_t arg0 = 0,
              std::uint64_t arg1 = 0, std::uint64_t arg2 = 0);

    /** Terminate the calling thread. */
    void exitThread();

    /** Give up the rest of the slice, staying Ready. */
    void yield();

    /**
     * Switch the calling thread's address space (tenant). Performs
     * a §3.3 context switch on the current core when the ASID
     * actually changes.
     */
    void setAsid(std::uint16_t asid);

    /** Create a standalone pipe. @return Pipe id. */
    std::int32_t pipeCreate(std::size_t capacity);

    /** Read up to n bytes; 0 = EOF, WouldBlock = parked. */
    long pipeRead(std::int32_t pipe, std::uint8_t *dst,
                  std::size_t n);

    /** Write up to n bytes (partial writes allowed); WouldBlock =
     *  pipe full, parked. Error = closed. */
    long pipeWrite(std::int32_t pipe, const std::uint8_t *src,
                   std::size_t n);

    /** Close a pipe's write end; blocked readers see EOF. */
    void pipeCloseWrite(std::int32_t pipe);

    /** Open a listening socket on `port`. */
    void listen(std::int32_t port, std::uint32_t backlog);

    /** Connect to `port`: queue in the backlog. @return Connection
     *  id, WouldBlock (backlog full) or Error (no listener). */
    long connect(std::int32_t port);

    /** Accept on `port`. @return Connection id or WouldBlock. */
    long accept(std::int32_t port);

    /** Connection stream I/O; same contract as pipeRead/pipeWrite. */
    long connRead(std::int32_t conn, ConnSide side,
                  std::uint8_t *dst, std::size_t n);
    long connWrite(std::int32_t conn, ConnSide side,
                   const std::uint8_t *src, std::size_t n);

    /** Half-close `side`'s write direction. */
    void connShutdown(std::int32_t conn, ConnSide side);

    /** Wake every thread parked in accept() on `port` — used by a
     *  server draining its acceptors once all clients are done. */
    void wakeAcceptors(std::int32_t port);
    /** @} */

    Connection &connection(std::int32_t id)
    {
        return *conns_.at(static_cast<std::size_t>(id));
    }
    ThreadState threadState(std::uint32_t tid) const
    {
        return tcbs_[tid].state;
    }

    const KernelStats &stats() const { return stats_; }
    sim::MultiCoreSystem &system() { return sys_; }

    /**
     * Register scheduler/pipe/socket activity as counters under
     * `<prefix>.sched.*`, `<prefix>.pipe.*`, `<prefix>.sock.*` and
     * the virtual clock as a gauge. Pass "dlsim.os".
     */
    void reportMetrics(stats::MetricsRegistry &reg,
                       const std::string &prefix) const;

  private:
    /** Per-thread control block. */
    struct Tcb
    {
        std::unique_ptr<Thread> body;
        std::string name;
        ThreadState state = ThreadState::Ready;
        std::uint16_t asid = 0;
        cpu::MachineState ctx{};
        bool inSimCall = false;
        isa::Addr stackTop = 0;

        /** Pending call() captured during a kernel step. */
        bool callPending = false;
        isa::Addr callFn = 0;
        std::uint64_t callArgs[3] = {0, 0, 0};
        bool yielded = false;
    };

    void dispatch(std::uint32_t core);
    void undispatch(std::uint32_t core, ThreadState to);
    /** Run one slice of core `i`'s current thread.
     *  @return Cycles consumed (simulated + synthetic kernel). */
    std::uint64_t runSlice(std::uint32_t core);
    /** Start the pending call on the thread's current core. */
    void startCall(std::uint32_t core, Tcb &t);
    void ensureStack(Tcb &t);
    /** Park the current thread on `waiters`. */
    void block(std::vector<std::uint32_t> &waiters);
    void wakeAll(std::vector<std::uint32_t> &waiters);
    Pipe &pipeAt(std::int32_t id);

    KernelParams params_;
    sim::MultiCoreSystem &sys_;
    linker::Image &image_;
    linker::DynamicLinker &linker_;

    std::deque<Tcb> tcbs_; ///< Stable addresses; tid = index.
    std::deque<std::uint32_t> ready_;
    std::vector<std::uint32_t> running_; ///< Per core; NoTid = idle.
    std::vector<std::uint32_t> lastTid_; ///< Last thread per core.
    std::vector<std::uint16_t> coreAsid_;
    std::uint32_t liveThreads_ = 0;

    std::vector<std::unique_ptr<Pipe>> pipes_;
    std::map<std::int32_t, Listener> listeners_;
    std::vector<std::unique_ptr<Connection>> conns_;

    std::uint64_t now_ = 0;
    std::uint32_t curTid_ = 0;
    std::uint32_t curCore_ = 0;
    KernelStats stats_;

    static constexpr std::uint32_t NoTid = UINT32_MAX;
};

} // namespace dlsim::os

#endif // DLSIM_OS_SCHED_HH
