#include "stats/cdf.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace dlsim::stats
{

void
SampleSet::add(double sample)
{
    samples_.push_back(sample);
    sorted_ = false;
}

void
SampleSet::ensureSorted() const
{
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
}

double
SampleSet::mean() const
{
    if (samples_.empty())
        return 0.0;
    return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
           static_cast<double>(samples_.size());
}

double
SampleSet::min() const
{
    ensureSorted();
    return samples_.empty() ? 0.0 : samples_.front();
}

double
SampleSet::max() const
{
    ensureSorted();
    return samples_.empty() ? 0.0 : samples_.back();
}

double
SampleSet::percentile(double p) const
{
    assert(p >= 0.0 && p <= 100.0);
    if (samples_.empty())
        return 0.0;
    ensureSorted();
    const auto n = samples_.size();
    auto rank = static_cast<std::size_t>(
        std::ceil(p / 100.0 * static_cast<double>(n)));
    if (rank > 0)
        --rank;
    if (rank >= n)
        rank = n - 1;
    return samples_[rank];
}

std::vector<std::pair<double, double>>
SampleSet::cdfPoints(std::size_t points) const
{
    std::vector<std::pair<double, double>> out;
    if (samples_.empty() || points == 0)
        return out;
    ensureSorted();
    out.reserve(points);
    const auto n = samples_.size();
    for (std::size_t i = 1; i <= points; ++i) {
        const double frac = static_cast<double>(i) /
                            static_cast<double>(points);
        auto idx = static_cast<std::size_t>(
            frac * static_cast<double>(n));
        if (idx > 0)
            --idx;
        out.emplace_back(samples_[idx], frac);
    }
    return out;
}

double
SampleSet::fractionBelow(double value) const
{
    if (samples_.empty())
        return 0.0;
    ensureSorted();
    const auto it =
        std::upper_bound(samples_.begin(), samples_.end(), value);
    return static_cast<double>(it - samples_.begin()) /
           static_cast<double>(samples_.size());
}

std::size_t
SampleSet::trimOutliers(double multiple)
{
    if (samples_.empty())
        return 0;
    const double cutoff = percentile(50.0) * multiple;
    ensureSorted();
    const auto it =
        std::upper_bound(samples_.begin(), samples_.end(), cutoff);
    const auto removed = static_cast<std::size_t>(samples_.end() - it);
    samples_.erase(it, samples_.end());
    return removed;
}

} // namespace dlsim::stats
