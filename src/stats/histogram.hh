/**
 * @file
 * Fixed-bin-width histogram used for the request-processing-time plots
 * (Fig. 7 of the paper) and for distribution sanity checks in tests.
 */

#ifndef DLSIM_STATS_HISTOGRAM_HH
#define DLSIM_STATS_HISTOGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

namespace dlsim::stats
{

/**
 * Histogram over [lo, hi) with a fixed number of equal-width bins.
 *
 * Samples below lo land in an underflow bucket; samples at or above hi
 * land in an overflow bucket, so no sample is ever dropped.
 */
class Histogram
{
  public:
    /**
     * @param lo   Inclusive lower bound of the binned range.
     * @param hi   Exclusive upper bound of the binned range.
     * @param bins Number of equal-width bins. @pre bins > 0, hi > lo.
     */
    Histogram(double lo, double hi, std::size_t bins);

    /** Record one sample. */
    void add(double sample);

    /** Number of samples recorded, including under/overflow. */
    std::uint64_t count() const { return count_; }

    /** Mean of all recorded samples. */
    double mean() const;

    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }

    std::size_t numBins() const { return counts_.size(); }

    /** Count in bin i. */
    std::uint64_t binCount(std::size_t i) const { return counts_.at(i); }

    /** Center of bin i (for plotting). */
    double binCenter(std::size_t i) const;

    /** Fraction of total samples in bin i. */
    double binFraction(std::size_t i) const;

    /** Center of the most populated bin (the histogram peak). */
    double peakCenter() const;

    /** Reset all counts. */
    void clear();

    /**
     * Render an ASCII plot, one row per bin, bar length proportional
     * to the bin fraction. Rows outside [firstBin, lastBin] are
     * skipped when the caller wants to zoom on the main peak, as the
     * paper does for the Memcached histograms.
     */
    std::string render(std::size_t width = 50) const;

  private:
    double lo_;
    double binWidth_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
};

} // namespace dlsim::stats

#endif // DLSIM_STATS_HISTOGRAM_HH
