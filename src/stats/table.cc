#include "stats/table.hh"

#include <cassert>
#include <iomanip>
#include <sstream>

namespace dlsim::stats
{

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    assert(!headers_.empty());
}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    assert(cells.size() == headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
TablePrinter::num(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

std::string
TablePrinter::num(std::uint64_t v)
{
    std::string raw = std::to_string(v);
    std::string out;
    const auto n = raw.size();
    for (std::size_t i = 0; i < n; ++i) {
        if (i > 0 && (n - i) % 3 == 0)
            out.push_back(',');
        out.push_back(raw[i]);
    }
    return out;
}

std::string
TablePrinter::render() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream os;
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c]))
               << row[c];
            os << (c + 1 == row.size() ? "\n" : "  ");
        }
    };
    emit_row(headers_);
    std::size_t total = 0;
    for (auto w : widths)
        total += w + 2;
    os << std::string(total > 2 ? total - 2 : total, '-') << "\n";
    for (const auto &row : rows_)
        emit_row(row);
    return os.str();
}

std::string
TablePrinter::renderCsv() const
{
    std::ostringstream os;
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c)
            os << row[c] << (c + 1 == row.size() ? "\n" : ",");
    };
    emit_row(headers_);
    for (const auto &row : rows_)
        emit_row(row);
    return os.str();
}

} // namespace dlsim::stats
