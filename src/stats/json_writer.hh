/**
 * @file
 * Minimal JSON emission and validation for the metrics export layer.
 *
 * The simulator has no third-party dependencies, so JSON support is
 * built in: a streaming writer with automatic comma/indent handling
 * (enough to serialise a MetricsDocument) and a strict recursive-
 * descent validator used by tests and by tools/bench_to_json to check
 * the documents it emits.
 */

#ifndef DLSIM_STATS_JSON_WRITER_HH
#define DLSIM_STATS_JSON_WRITER_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace dlsim::stats
{

/** Escape a string for embedding inside a JSON string literal. */
std::string jsonEscape(const std::string &s);

/**
 * Format a double as a valid JSON number. JSON has no NaN/Inf, so
 * non-finite values serialise as 0 (metrics should never produce
 * them; this keeps a bad sample from corrupting a whole document).
 */
std::string jsonNumber(double v);

/**
 * Streaming JSON writer.
 *
 * Usage:
 * @code
 *   JsonWriter w(os);
 *   w.beginObject();
 *   w.field("schema", "dlsim-metrics-v1");
 *   w.key("runs");
 *   w.beginArray();
 *   ...
 *   w.endArray();
 *   w.endObject();
 * @endcode
 *
 * The writer inserts commas, newlines, and indentation; the caller is
 * responsible for balanced begin/end calls and for emitting a key
 * before every value inside an object.
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os, int indentWidth = 2);

    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    /** Emit an object key; the next value() attaches to it. */
    void key(const std::string &k);

    void value(const std::string &v);
    void value(const char *v);
    void value(double v);
    void value(std::uint64_t v);
    void value(std::int64_t v);
    void value(bool v);

    /** key() + value() in one call. */
    void field(const std::string &k, const std::string &v);
    void field(const std::string &k, const char *v);
    void field(const std::string &k, double v);
    void field(const std::string &k, std::uint64_t v);
    void field(const std::string &k, bool v);

  private:
    void beforeValue();
    void indent();
    void raw(const std::string &text);

    struct Level
    {
        bool isArray = false;
        std::size_t items = 0;
    };

    std::ostream &os_;
    int indentWidth_;
    std::vector<Level> stack_;
    bool pendingKey_ = false;
};

/**
 * Validate that `text` is exactly one well-formed JSON value with
 * nothing but whitespace after it. Builds no document — this is a
 * checker, not a parser library.
 *
 * @param text  The candidate document.
 * @param error When non-null, receives a position-annotated message
 *              on failure.
 * @return True when the text is valid JSON.
 */
bool jsonValidate(const std::string &text,
                  std::string *error = nullptr);

} // namespace dlsim::stats

#endif // DLSIM_STATS_JSON_WRITER_HH
