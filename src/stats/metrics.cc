#include "stats/metrics.hh"

#include <fstream>
#include <sstream>

#include "stats/json_writer.hh"

namespace dlsim::stats
{

void
MetricsRegistry::counter(const std::string &name, std::uint64_t value)
{
    assertOwned();
    Metric m;
    m.kind = MetricKind::Counter;
    m.counter = value;
    metrics_[name] = m;
}

void
MetricsRegistry::gauge(const std::string &name, double value)
{
    assertOwned();
    Metric m;
    m.kind = MetricKind::Gauge;
    m.gauge = value;
    metrics_[name] = m;
}

void
MetricsRegistry::histogram(const std::string &name,
                           const SampleSet &samples,
                           std::size_t cdfPoints)
{
    assertOwned();
    Metric m;
    m.kind = MetricKind::Histogram;
    m.histogram.count = samples.count();
    if (samples.count() > 0) {
        m.histogram.mean = samples.mean();
        m.histogram.min = samples.min();
        m.histogram.max = samples.max();
        for (const double p : {50.0, 75.0, 90.0, 95.0, 99.0})
            m.histogram.percentiles.emplace_back(
                p, samples.percentile(p));
        if (cdfPoints > 0)
            m.histogram.cdf = samples.cdfPoints(cdfPoints);
    }
    metrics_[name] = m;
}

std::size_t
MetricsRegistry::erasePrefix(const std::string &prefix)
{
    assertOwned();
    const auto first = metrics_.lower_bound(prefix);
    auto last = first;
    while (last != metrics_.end() &&
           last->first.compare(0, prefix.size(), prefix) == 0)
        ++last;
    const auto n =
        static_cast<std::size_t>(std::distance(first, last));
    metrics_.erase(first, last);
    return n;
}

bool
MetricsRegistry::has(const std::string &name) const
{
    return metrics_.count(name) > 0;
}

const Metric *
MetricsRegistry::find(const std::string &name) const
{
    const auto it = metrics_.find(name);
    return it == metrics_.end() ? nullptr : &it->second;
}

std::uint64_t
MetricsRegistry::counterValue(const std::string &name) const
{
    const Metric *m = find(name);
    return (m && m->kind == MetricKind::Counter) ? m->counter : 0;
}

MetricsRun &
MetricsDocument::addRun(const std::string &name)
{
    runs_.emplace_back();
    runs_.back().name = name;
    return runs_.back();
}

namespace
{

void
writeMetric(JsonWriter &w, const Metric &m)
{
    w.beginObject();
    switch (m.kind) {
      case MetricKind::Counter:
        w.field("kind", "counter");
        w.field("value", m.counter);
        break;
      case MetricKind::Gauge:
        w.field("kind", "gauge");
        w.field("value", m.gauge);
        break;
      case MetricKind::Histogram:
        w.field("kind", "histogram");
        w.field("count", m.histogram.count);
        if (m.histogram.count > 0) {
            w.field("mean", m.histogram.mean);
            w.field("min", m.histogram.min);
            w.field("max", m.histogram.max);
            w.key("percentiles");
            w.beginObject();
            for (const auto &[pct, value] : m.histogram.percentiles) {
                w.field("p" + jsonNumber(pct), value);
            }
            w.endObject();
            if (!m.histogram.cdf.empty()) {
                w.key("cdf");
                w.beginArray();
                for (const auto &[value, frac] : m.histogram.cdf) {
                    w.beginArray();
                    w.value(value);
                    w.value(frac);
                    w.endArray();
                }
                w.endArray();
            }
        }
        break;
    }
    w.endObject();
}

} // namespace

std::string
MetricsDocument::toJson() const
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.field("schema", SchemaName);
    w.field("version", SchemaVersion);
    w.field("tool", tool_);
    w.key("runs");
    w.beginArray();
    for (const MetricsRun &run : runs_) {
        w.beginObject();
        w.field("name", run.name);
        w.key("context");
        w.beginObject();
        for (const auto &[key, value] : run.context)
            w.field(key, value);
        w.endObject();
        w.key("metrics");
        w.beginObject();
        for (const auto &[name, metric] :
             run.registry.metrics()) {
            w.key(name);
            writeMetric(w, metric);
        }
        w.endObject();
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << '\n';
    return os.str();
}

bool
MetricsDocument::writeFile(const std::string &path,
                           std::string *error) const
{
    std::ofstream out(path);
    if (!out) {
        if (error)
            *error = "cannot open " + path + " for writing";
        return false;
    }
    out << toJson();
    out.flush();
    if (!out) {
        if (error)
            *error = "write to " + path + " failed";
        return false;
    }
    return true;
}

} // namespace dlsim::stats
