/**
 * @file
 * Plain-text table rendering for bench output. Every bench binary
 * prints the same rows/series the paper reports using this printer.
 */

#ifndef DLSIM_STATS_TABLE_HH
#define DLSIM_STATS_TABLE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace dlsim::stats
{

/**
 * Column-aligned ASCII table builder.
 *
 * Usage:
 * @code
 *   TablePrinter t({"Workload", "PKI"});
 *   t.addRow({"apache", TablePrinter::num(12.23)});
 *   std::cout << t.render();
 * @endcode
 */
class TablePrinter
{
  public:
    explicit TablePrinter(std::vector<std::string> headers);

    /** Append a row; must have the same arity as the header. */
    void addRow(std::vector<std::string> cells);

    /** Format a double with fixed precision. */
    static std::string num(double v, int precision = 2);

    /** Format an integer with thousands grouping. */
    static std::string num(std::uint64_t v);

    /** Render with a header underline and column padding. */
    std::string render() const;

    /** Render as CSV (for downstream plotting). */
    std::string renderCsv() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace dlsim::stats

#endif // DLSIM_STATS_TABLE_HH
