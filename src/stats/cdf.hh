/**
 * @file
 * Sample collector with percentile and CDF extraction.
 *
 * Used for the request-latency CDFs of Fig. 6 (Apache) and Fig. 8
 * (MySQL) and the percentile summary of Table 6. Includes the same
 * outlier-trimming the paper applies ("5 to 6 outlier measurements per
 * 10,000 requests ... we omit them from the plots for clarity").
 */

#ifndef DLSIM_STATS_CDF_HH
#define DLSIM_STATS_CDF_HH

#include <cstdint>
#include <utility>
#include <vector>

namespace dlsim::stats
{

/**
 * Collects scalar samples and answers distribution queries.
 *
 * Queries sort lazily; adding samples after a query is allowed and
 * simply re-sorts on the next query.
 */
class SampleSet
{
  public:
    /** Record one sample. */
    void add(double sample);

    std::size_t count() const { return samples_.size(); }

    double mean() const;

    double min() const;
    double max() const;

    /**
     * Percentile via nearest-rank on the sorted samples.
     * @param p Percentile in [0, 100].
     */
    double percentile(double p) const;

    /**
     * Evenly spaced CDF points: `points` pairs of (value, fraction of
     * samples <= value), suitable for plotting a CDF curve.
     */
    std::vector<std::pair<double, double>> cdfPoints(
        std::size_t points) const;

    /**
     * Fraction of samples <= value (empirical CDF evaluated at value).
     */
    double fractionBelow(double value) const;

    /**
     * Drop samples above `multiple` times the median, mirroring the
     * paper's removal of rare perturbation-induced outliers.
     * @return Number of samples removed.
     */
    std::size_t trimOutliers(double multiple = 10.0);

    const std::vector<double> &samples() const { return samples_; }

  private:
    void ensureSorted() const;

    mutable std::vector<double> samples_;
    mutable bool sorted_ = false;
};

} // namespace dlsim::stats

#endif // DLSIM_STATS_CDF_HH
