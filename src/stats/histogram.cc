#include "stats/histogram.hh"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace dlsim::stats
{

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), binWidth_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0)
{
    assert(bins > 0 && hi > lo);
}

void
Histogram::add(double sample)
{
    ++count_;
    sum_ += sample;
    if (sample < lo_) {
        ++underflow_;
        return;
    }
    const auto bin = static_cast<std::size_t>((sample - lo_) / binWidth_);
    if (bin >= counts_.size()) {
        ++overflow_;
        return;
    }
    ++counts_[bin];
}

double
Histogram::mean() const
{
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double
Histogram::binCenter(std::size_t i) const
{
    return lo_ + (static_cast<double>(i) + 0.5) * binWidth_;
}

double
Histogram::binFraction(std::size_t i) const
{
    if (count_ == 0)
        return 0.0;
    return static_cast<double>(counts_.at(i)) /
           static_cast<double>(count_);
}

double
Histogram::peakCenter() const
{
    const auto it = std::max_element(counts_.begin(), counts_.end());
    return binCenter(static_cast<std::size_t>(it - counts_.begin()));
}

void
Histogram::clear()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    underflow_ = overflow_ = count_ = 0;
    sum_ = 0.0;
}

std::string
Histogram::render(std::size_t width) const
{
    std::ostringstream os;
    const std::uint64_t max_count =
        *std::max_element(counts_.begin(), counts_.end());
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        const std::size_t bar =
            max_count == 0
                ? 0
                : static_cast<std::size_t>(counts_[i] * width / max_count);
        os << binCenter(i) << "\t" << counts_[i] << "\t"
           << std::string(bar, '#') << "\n";
    }
    return os.str();
}

} // namespace dlsim::stats
