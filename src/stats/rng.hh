/**
 * @file
 * Deterministic pseudo-random number generation and the discrete
 * distributions used by the synthetic workload generator.
 *
 * All randomness in dlsim flows through Rng so that a given seed fully
 * determines a simulation. Base and enhanced runs of an experiment use
 * identical seeds, making measured deltas attributable to the
 * mechanism under study rather than to workload noise.
 */

#ifndef DLSIM_STATS_RNG_HH
#define DLSIM_STATS_RNG_HH

#include <cstdint>
#include <vector>

namespace dlsim::snapshot
{
class Serializer;
class Deserializer;
}

namespace dlsim::stats
{

/**
 * Deterministic 64-bit PRNG (xoshiro256** seeded via splitmix64).
 *
 * Not cryptographic; chosen for speed and reproducibility across
 * platforms. Never use std::rand or std::random_device inside the
 * simulator.
 */
class Rng
{
  public:
    /** Construct a generator from a 64-bit seed. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound). @pre bound > 0. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. @pre lo <= hi. */
    std::uint64_t nextRange(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw with probability p of returning true. */
    bool nextBool(double p);

    /**
     * Derive an independent child generator. Used to give each
     * module/function of a generated workload its own stream so that
     * adding a function does not perturb the others.
     */
    Rng fork();

    /** Checkpoint the generator state mid-stream. */
    void save(snapshot::Serializer &s) const;
    void load(snapshot::Deserializer &d);

  private:
    std::uint64_t s_[4];
};

/**
 * Zipf(s) distribution over ranks [0, n). Rank 0 is most popular.
 *
 * Used to model trampoline popularity for workloads with shallow
 * frequency curves (e.g., Firefox in Fig. 4 of the paper).
 */
class ZipfDistribution
{
  public:
    /**
     * @param n Number of ranks.
     * @param s Skew exponent; s == 0 degenerates to uniform.
     */
    ZipfDistribution(std::size_t n, double s);

    /** Draw a rank. */
    std::size_t sample(Rng &rng) const;

    /** Probability mass of a given rank. */
    double pmf(std::size_t rank) const;

    std::size_t size() const { return cdf_.size(); }

  private:
    std::vector<double> cdf_;
};

/**
 * Arbitrary discrete distribution given non-negative weights.
 *
 * Used for request-type mixes (e.g., the SPECweb request types of
 * Fig. 6) and for the steep-cutoff trampoline popularity models of
 * Apache and Memcached.
 */
class DiscreteDistribution
{
  public:
    explicit DiscreteDistribution(std::vector<double> weights);

    std::size_t sample(Rng &rng) const;

    double pmf(std::size_t index) const;

    std::size_t size() const { return cdf_.size(); }

  private:
    std::vector<double> cdf_;
};

} // namespace dlsim::stats

#endif // DLSIM_STATS_RNG_HH
