/**
 * @file
 * Hierarchical metrics registry and versioned JSON export.
 *
 * Every simulated structure (caches, TLBs, BTB, direction predictor,
 * RAS, ABTB, bloom filter, skip unit, perf-counter block) reports its
 * statistics into a MetricsRegistry under a dotted path such as
 * `dlsim.cpu.l1i.misses` or `dlsim.core.abtb.evictions`. A registry
 * snapshot is the machine-readable twin of the human-readable tables
 * the benches print: the paper's argument rests on per-structure
 * counters (Table 4, Fig. 5), and counters are only trustworthy when
 * they are observable — so every bench and the CLI can serialise one
 * or more registries to a versioned JSON document via `--json-out`.
 *
 * Naming convention (see docs/metrics.md):
 *   dlsim.<layer>.<structure>.<stat>
 * with snake_case stat names, `counter` for monotonic event counts,
 * `gauge` for derived or instantaneous values, and `histogram` for
 * latency SampleSets (serialised with percentiles and CDF points).
 */

#ifndef DLSIM_STATS_METRICS_HH
#define DLSIM_STATS_METRICS_HH

#include <cassert>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "stats/cdf.hh"

namespace dlsim::stats
{

/** What a metric measures. */
enum class MetricKind
{
    Counter,  ///< Monotonic event count (hits, misses, flushes).
    Gauge,    ///< Instantaneous or derived value (occupancy, IPC).
    Histogram ///< Distribution summary of a SampleSet.
};

/** Serialisable summary of a SampleSet. */
struct HistogramSummary
{
    std::uint64_t count = 0;
    double mean = 0.0;
    double min = 0.0;
    double max = 0.0;
    /** (percentile, value) pairs, e.g. (99, 1234.0). */
    std::vector<std::pair<double, double>> percentiles;
    /** (value, fraction-below) pairs for plotting a CDF curve. */
    std::vector<std::pair<double, double>> cdf;
};

/** One registered metric. */
struct Metric
{
    MetricKind kind = MetricKind::Counter;
    std::uint64_t counter = 0;
    double gauge = 0.0;
    HistogramSummary histogram;
};

/**
 * A snapshot of named metrics, sorted by full dotted path so that
 * serialisation (and golden-file tests over the key set) is
 * deterministic. Registering a name twice overwrites — structures
 * report fresh snapshots, they do not accumulate here.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;

    /**
     * Copying or moving a registry re-binds ownership: the
     * destination belongs to whichever thread mutates it next.
     * This is the one-registry-per-job handoff — a job thread
     * fills a registry, the runner joins, and the submitting
     * thread copies it into a MetricsDocument.
     */
    MetricsRegistry(const MetricsRegistry &other)
        : metrics_(other.metrics_)
    {
    }
    MetricsRegistry(MetricsRegistry &&other) noexcept
        : metrics_(std::move(other.metrics_))
    {
    }
    MetricsRegistry &
    operator=(const MetricsRegistry &other)
    {
        metrics_ = other.metrics_;
        owner_ = std::thread::id{};
        return *this;
    }
    MetricsRegistry &
    operator=(MetricsRegistry &&other) noexcept
    {
        metrics_ = std::move(other.metrics_);
        owner_ = std::thread::id{};
        return *this;
    }

    void counter(const std::string &name, std::uint64_t value);
    void gauge(const std::string &name, double value);

    /**
     * Register a histogram summary of `samples`.
     * @param cdfPoints Number of evenly spaced CDF points to
     *                  serialise (0 omits the curve).
     */
    void histogram(const std::string &name,
                   const SampleSet &samples,
                   std::size_t cdfPoints = 16);

    /**
     * Drop every metric whose name starts with `prefix`. Used to
     * strip process-local accelerator statistics (e.g. the page-
     * translation-cache counters, which restart cold after a
     * snapshot restore) before byte-comparing two registries.
     * @return Number of metrics removed.
     */
    std::size_t erasePrefix(const std::string &prefix);

    bool has(const std::string &name) const;
    /** Null when `name` is not registered. */
    const Metric *find(const std::string &name) const;
    /** Convenience: counter value, or 0 when missing. */
    std::uint64_t counterValue(const std::string &name) const;

    const std::map<std::string, Metric> &
    metrics() const
    {
        return metrics_;
    }
    std::size_t size() const { return metrics_.size(); }
    void
    clear()
    {
        assertOwned();
        metrics_.clear();
    }

  private:
    /**
     * One-registry-per-job ownership rule: a registry is mutated
     * by exactly one thread. The first mutating call binds the
     * owner; every later mutation asserts it came from the same
     * thread (assertions stay enabled in all dlsim build types).
     * Copy/move re-bind ownership on the destination, giving the
     * post-join handoff from a JobRunner worker to the submitting
     * thread. Reads are not checked — results are consumed after
     * the join's happens-before edge.
     */
    void
    assertOwned()
    {
        if (owner_ == std::thread::id{}) {
            owner_ = std::this_thread::get_id();
            return;
        }
        assert(owner_ == std::this_thread::get_id() &&
               "MetricsRegistry mutated from two threads; give "
               "each job its own registry");
    }

    std::map<std::string, Metric> metrics_;
    std::thread::id owner_{};
};

/** One named run (experiment arm) inside a MetricsDocument. */
struct MetricsRun
{
    std::string name;
    /** Free-form string context (workload, machine, request count). */
    std::vector<std::pair<std::string, std::string>> context;
    MetricsRegistry registry;

    /** Append one context entry (chainable). */
    MetricsRun &
    with(const std::string &key, const std::string &value)
    {
        context.emplace_back(key, value);
        return *this;
    }
};

/**
 * A versioned multi-run JSON document. Schema `dlsim-metrics-v1`:
 *
 * @code{.json}
 * {
 *   "schema": "dlsim-metrics-v1",
 *   "version": 1,
 *   "tool": "table4_microarch_counters",
 *   "runs": [
 *     {
 *       "name": "apache.base",
 *       "context": {"workload": "apache", "machine": "base"},
 *       "metrics": {
 *         "dlsim.cpu.l1i.misses": {"kind": "counter", "value": 42},
 *         ...
 *       }
 *     }
 *   ]
 * }
 * @endcode
 */
class MetricsDocument
{
  public:
    static constexpr const char *SchemaName = "dlsim-metrics-v1";
    static constexpr std::uint64_t SchemaVersion = 1;

    explicit MetricsDocument(std::string tool)
        : tool_(std::move(tool))
    {
    }

    /** Append a run and return it for filling. */
    MetricsRun &addRun(const std::string &name);

    const std::vector<MetricsRun> &runs() const { return runs_; }
    const std::string &tool() const { return tool_; }

    std::string toJson() const;

    /**
     * Serialise to `path`.
     * @return False (with *error set when non-null) on I/O failure.
     */
    bool writeFile(const std::string &path,
                   std::string *error = nullptr) const;

  private:
    std::string tool_;
    std::vector<MetricsRun> runs_;
};

} // namespace dlsim::stats

#endif // DLSIM_STATS_METRICS_HH
