#include "stats/rng.hh"

#include <cassert>
#include <cmath>

#include "snapshot/serializer.hh"

namespace dlsim::stats
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto &s : s_)
        s = splitmix64(x);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    assert(bound > 0);
    // Rejection-free multiply-shift reduction; bias is negligible for
    // the bounds used in workload generation.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
}

std::uint64_t
Rng::nextRange(std::uint64_t lo, std::uint64_t hi)
{
    assert(lo <= hi);
    return lo + nextBelow(hi - lo + 1);
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

Rng
Rng::fork()
{
    return Rng(next() ^ 0xd1b54a32d192ed03ull);
}

ZipfDistribution::ZipfDistribution(std::size_t n, double s)
{
    assert(n > 0);
    cdf_.resize(n);
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
        cdf_[i] = acc;
    }
    for (auto &v : cdf_)
        v /= acc;
}

std::size_t
ZipfDistribution::sample(Rng &rng) const
{
    const double u = rng.nextDouble();
    // Binary search for the first cdf entry >= u.
    std::size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
        const std::size_t mid = (lo + hi) / 2;
        if (cdf_[mid] < u)
            lo = mid + 1;
        else
            hi = mid;
    }
    return lo;
}

double
ZipfDistribution::pmf(std::size_t rank) const
{
    assert(rank < cdf_.size());
    return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

DiscreteDistribution::DiscreteDistribution(std::vector<double> weights)
{
    assert(!weights.empty());
    cdf_ = std::move(weights);
    double acc = 0.0;
    for (auto &w : cdf_) {
        assert(w >= 0.0);
        acc += w;
        w = acc;
    }
    assert(acc > 0.0);
    for (auto &v : cdf_)
        v /= acc;
}

std::size_t
DiscreteDistribution::sample(Rng &rng) const
{
    const double u = rng.nextDouble();
    std::size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
        const std::size_t mid = (lo + hi) / 2;
        if (cdf_[mid] < u)
            lo = mid + 1;
        else
            hi = mid;
    }
    return lo;
}

double
DiscreteDistribution::pmf(std::size_t index) const
{
    assert(index < cdf_.size());
    return index == 0 ? cdf_[0] : cdf_[index] - cdf_[index - 1];
}


void
Rng::save(snapshot::Serializer &s) const
{
    s.beginStruct("rng");
    for (const std::uint64_t w : s_)
        s.u64(w);
    s.endStruct();
}

void
Rng::load(snapshot::Deserializer &d)
{
    d.enterStruct("rng");
    for (std::uint64_t &w : s_)
        w = d.u64();
    d.leaveStruct();
}

} // namespace dlsim::stats
