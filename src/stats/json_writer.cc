#include "stats/json_writer.hh"

#include <cassert>
#include <cmath>
#include <cstdio>

namespace dlsim::stats
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "0";
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.12g", v);
    return buf;
}

JsonWriter::JsonWriter(std::ostream &os, int indentWidth)
    : os_(os), indentWidth_(indentWidth)
{
}

void
JsonWriter::indent()
{
    os_ << '\n';
    for (std::size_t i = 0;
         i < stack_.size() * static_cast<std::size_t>(indentWidth_);
         ++i)
        os_ << ' ';
}

void
JsonWriter::beforeValue()
{
    if (pendingKey_) {
        pendingKey_ = false;
        return; // the key already positioned us
    }
    if (!stack_.empty()) {
        if (stack_.back().items > 0)
            os_ << ',';
        indent();
        ++stack_.back().items;
    }
}

void
JsonWriter::raw(const std::string &text)
{
    beforeValue();
    os_ << text;
}

void
JsonWriter::beginObject()
{
    beforeValue();
    os_ << '{';
    stack_.push_back(Level{false, 0});
}

void
JsonWriter::endObject()
{
    assert(!stack_.empty() && !stack_.back().isArray);
    const bool had_items = stack_.back().items > 0;
    stack_.pop_back();
    if (had_items)
        indent();
    os_ << '}';
}

void
JsonWriter::beginArray()
{
    beforeValue();
    os_ << '[';
    stack_.push_back(Level{true, 0});
}

void
JsonWriter::endArray()
{
    assert(!stack_.empty() && stack_.back().isArray);
    const bool had_items = stack_.back().items > 0;
    stack_.pop_back();
    if (had_items)
        indent();
    os_ << ']';
}

void
JsonWriter::key(const std::string &k)
{
    assert(!stack_.empty() && !stack_.back().isArray);
    assert(!pendingKey_);
    if (stack_.back().items > 0)
        os_ << ',';
    indent();
    ++stack_.back().items;
    os_ << '"' << jsonEscape(k) << "\": ";
    pendingKey_ = true;
}

void
JsonWriter::value(const std::string &v)
{
    raw('"' + jsonEscape(v) + '"');
}

void
JsonWriter::value(const char *v)
{
    value(std::string(v));
}

void
JsonWriter::value(double v)
{
    raw(jsonNumber(v));
}

void
JsonWriter::value(std::uint64_t v)
{
    raw(std::to_string(v));
}

void
JsonWriter::value(std::int64_t v)
{
    raw(std::to_string(v));
}

void
JsonWriter::value(bool v)
{
    raw(v ? "true" : "false");
}

void
JsonWriter::field(const std::string &k, const std::string &v)
{
    key(k);
    value(v);
}

void
JsonWriter::field(const std::string &k, const char *v)
{
    key(k);
    value(v);
}

void
JsonWriter::field(const std::string &k, double v)
{
    key(k);
    value(v);
}

void
JsonWriter::field(const std::string &k, std::uint64_t v)
{
    key(k);
    value(v);
}

void
JsonWriter::field(const std::string &k, bool v)
{
    key(k);
    value(v);
}

namespace
{

/** Recursive-descent JSON checker over a raw character range. */
class Validator
{
  public:
    Validator(const std::string &text, std::string *error)
        : text_(text), error_(error)
    {
    }

    bool
    run()
    {
        skipWs();
        if (!parseValue())
            return false;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing characters after document");
        return true;
    }

  private:
    bool
    fail(const std::string &what)
    {
        if (error_) {
            *error_ = what + " at offset " + std::to_string(pos_);
        }
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    literal(const char *word)
    {
        const std::size_t n = std::string(word).size();
        if (text_.compare(pos_, n, word) != 0)
            return fail(std::string("expected '") + word + "'");
        pos_ += n;
        return true;
    }

    bool
    parseString()
    {
        if (pos_ >= text_.size() || text_[pos_] != '"')
            return fail("expected string");
        ++pos_;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("raw control character in string");
            if (c == '\\') {
                ++pos_;
                if (pos_ >= text_.size())
                    return fail("truncated escape");
                const char e = text_[pos_];
                if (e == 'u') {
                    for (int i = 0; i < 4; ++i) {
                        ++pos_;
                        if (pos_ >= text_.size() ||
                            !std::isxdigit(static_cast<
                                           unsigned char>(
                                text_[pos_])))
                            return fail("bad \\u escape");
                    }
                } else if (e != '"' && e != '\\' && e != '/' &&
                           e != 'b' && e != 'f' && e != 'n' &&
                           e != 'r' && e != 't') {
                    return fail("bad escape character");
                }
            }
            ++pos_;
        }
        return fail("unterminated string");
    }

    bool
    parseNumber()
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        if (pos_ >= text_.size() ||
            !std::isdigit(static_cast<unsigned char>(text_[pos_])))
            return fail("expected digit");
        if (text_[pos_] == '0') {
            ++pos_;
        } else {
            while (pos_ < text_.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        }
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            if (pos_ >= text_.size() ||
                !std::isdigit(
                    static_cast<unsigned char>(text_[pos_])))
                return fail("expected fraction digit");
            while (pos_ < text_.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            if (pos_ >= text_.size() ||
                !std::isdigit(
                    static_cast<unsigned char>(text_[pos_])))
                return fail("expected exponent digit");
            while (pos_ < text_.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        }
        return pos_ > start;
    }

    bool
    parseValue()
    {
        if (++depth_ > MaxDepth)
            return fail("nesting too deep");
        bool ok = false;
        skipWs();
        if (pos_ >= text_.size()) {
            ok = fail("unexpected end of document");
        } else {
            switch (text_[pos_]) {
              case '{':
                ok = parseObject();
                break;
              case '[':
                ok = parseArray();
                break;
              case '"':
                ok = parseString();
                break;
              case 't':
                ok = literal("true");
                break;
              case 'f':
                ok = literal("false");
                break;
              case 'n':
                ok = literal("null");
                break;
              default:
                ok = parseNumber();
                break;
            }
        }
        --depth_;
        return ok;
    }

    bool
    parseObject()
    {
        ++pos_; // '{'
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (!parseString())
                return false;
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != ':')
                return fail("expected ':'");
            ++pos_;
            if (!parseValue())
                return false;
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (pos_ < text_.size() && text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool
    parseArray()
    {
        ++pos_; // '['
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            if (!parseValue())
                return false;
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (pos_ < text_.size() && text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    static constexpr int MaxDepth = 256;

    const std::string &text_;
    std::string *error_;
    std::size_t pos_ = 0;
    int depth_ = 0;
};

} // namespace

bool
jsonValidate(const std::string &text, std::string *error)
{
    return Validator(text, error).run();
}

} // namespace dlsim::stats
