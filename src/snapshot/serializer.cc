#include "snapshot/serializer.hh"

#include <cstring>

namespace dlsim::snapshot
{

namespace
{

void
putU32(std::vector<std::uint8_t> &out, std::size_t at,
       std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out[at + i] = static_cast<std::uint8_t>(v >> (8 * i));
}

void
appendU32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
appendU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t
readU32(const std::uint8_t *p)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
}

std::uint64_t
readU64(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

void
checkTag(const std::string &tag)
{
    if (tag.empty() || tag.size() > MaxTagBytes)
        throw SnapshotError("snapshot: bad tag '" + tag + "'");
}

} // namespace

// --------------------------------------------------------------
// Serializer
// --------------------------------------------------------------

std::vector<std::uint8_t> &
Serializer::buf()
{
    if (!inSection_)
        throw SnapshotError(
            "snapshot: write outside any section");
    return sections_.back().data;
}

void
Serializer::beginSection(const std::string &tag)
{
    checkTag(tag);
    if (inSection_)
        throw SnapshotError(
            "snapshot: nested section '" + tag + "'");
    for (const auto &s : sections_)
        if (s.tag == tag)
            throw SnapshotError(
                "snapshot: duplicate section '" + tag + "'");
    sections_.push_back({tag, {}});
    inSection_ = true;
}

void
Serializer::endSection()
{
    if (!inSection_)
        throw SnapshotError("snapshot: endSection without begin");
    if (!structStack_.empty())
        throw SnapshotError(
            "snapshot: endSection with open struct");
    inSection_ = false;
}

void
Serializer::beginStruct(const std::string &tag)
{
    checkTag(tag);
    auto &out = buf();
    out.push_back(static_cast<std::uint8_t>(tag.size()));
    out.insert(out.end(), tag.begin(), tag.end());
    // Reserve the length and CRC slots; patched in endStruct.
    const std::size_t slot = out.size();
    appendU32(out, 0);
    appendU32(out, 0);
    structStack_.push_back(slot);
}

void
Serializer::endStruct()
{
    if (structStack_.empty())
        throw SnapshotError("snapshot: endStruct without begin");
    auto &out = buf();
    const std::size_t slot = structStack_.back();
    structStack_.pop_back();
    const std::size_t payload = slot + 8;
    const std::size_t len = out.size() - payload;
    putU32(out, slot, static_cast<std::uint32_t>(len));
    putU32(out, slot + 4, crc32(out.data() + payload, len));
}

void
Serializer::u8(std::uint8_t v)
{
    buf().push_back(v);
}

void
Serializer::u16(std::uint16_t v)
{
    auto &out = buf();
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void
Serializer::u32(std::uint32_t v)
{
    appendU32(buf(), v);
}

void
Serializer::u64(std::uint64_t v)
{
    appendU64(buf(), v);
}

void
Serializer::i64(std::int64_t v)
{
    appendU64(buf(), static_cast<std::uint64_t>(v));
}

void
Serializer::f64(double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    appendU64(buf(), bits);
}

void
Serializer::boolean(bool v)
{
    buf().push_back(v ? 1 : 0);
}

void
Serializer::str(const std::string &v)
{
    auto &out = buf();
    appendU32(out, static_cast<std::uint32_t>(v.size()));
    out.insert(out.end(), v.begin(), v.end());
}

void
Serializer::bytes(const void *data, std::size_t size)
{
    auto &out = buf();
    const auto *p = static_cast<const std::uint8_t *>(data);
    out.insert(out.end(), p, p + size);
}

std::vector<std::uint8_t>
Serializer::finish() const
{
    if (inSection_)
        throw SnapshotError("snapshot: finish with open section");

    std::vector<std::uint8_t> table;
    std::uint64_t offset =
        HeaderBytes + sections_.size() * TableEntryBytes;
    for (const auto &s : sections_) {
        std::uint8_t tag[16] = {};
        std::memcpy(tag, s.tag.data(), s.tag.size());
        table.insert(table.end(), tag, tag + 16);
        appendU64(table, offset);
        appendU64(table, s.data.size());
        appendU32(table, crc32(s.data.data(), s.data.size()));
        appendU32(table, 0);
        offset += s.data.size();
    }

    std::vector<std::uint8_t> out;
    out.reserve(offset);
    appendU32(out, Magic);
    appendU32(out, FormatVersion);
    appendU64(out, fingerprint_);
    appendU32(out, static_cast<std::uint32_t>(sections_.size()));
    appendU32(out, crc32(table.data(), table.size()));
    out.insert(out.end(), table.begin(), table.end());
    for (const auto &s : sections_)
        out.insert(out.end(), s.data.begin(), s.data.end());
    return out;
}

// --------------------------------------------------------------
// Deserializer
// --------------------------------------------------------------

Deserializer::Deserializer(const std::uint8_t *data,
                           std::size_t size,
                           bool verify_sections)
    : data_(data), size_(size), verifySections_(verify_sections)
{
    if (size_ < HeaderBytes)
        throw SnapshotError("snapshot: truncated header");
    if (readU32(data_) != Magic)
        throw SnapshotError("snapshot: bad magic (not a dlsim "
                            "snapshot)");
    const std::uint32_t version = readU32(data_ + 4);
    if (version != FormatVersion)
        throw SnapshotError(
            "snapshot: unsupported format version " +
            std::to_string(version) + " (expected " +
            std::to_string(FormatVersion) + ")");
    fingerprint_ = readU64(data_ + 8);
    const std::uint32_t count = readU32(data_ + 16);
    const std::uint32_t tableCrc = readU32(data_ + 20);

    const std::size_t tableBytes = count * TableEntryBytes;
    if (size_ < HeaderBytes + tableBytes)
        throw SnapshotError("snapshot: truncated section table");
    if (crc32(data_ + HeaderBytes, tableBytes) != tableCrc)
        throw SnapshotError(
            "snapshot: section table CRC mismatch");

    for (std::uint32_t i = 0; i < count; ++i) {
        const std::uint8_t *e =
            data_ + HeaderBytes + i * TableEntryBytes;
        Section s;
        const char *tag = reinterpret_cast<const char *>(e);
        s.tag.assign(tag, strnlen(tag, 16));
        s.offset = readU64(e + 16);
        s.size = readU64(e + 24);
        s.crc = readU32(e + 32);
        if (s.offset > size_ || s.size > size_ - s.offset)
            throw SnapshotError("snapshot: section '" + s.tag +
                                "' out of bounds");
        sections_.push_back(std::move(s));
    }
}

void
Deserializer::verifyAllSections() const
{
    for (const auto &s : sections_) {
        if (crc32(data_ + s.offset, s.size) != s.crc)
            throw SnapshotError("snapshot: section '" + s.tag +
                                "' CRC mismatch");
    }
}

bool
Deserializer::hasSection(const std::string &tag) const
{
    for (const auto &s : sections_)
        if (s.tag == tag)
            return true;
    return false;
}

void
Deserializer::enterSection(const std::string &tag)
{
    if (inSection_)
        throw SnapshotError(
            "snapshot: enterSection inside section '" +
            sectionTag_ + "'");
    for (const auto &s : sections_) {
        if (s.tag != tag)
            continue;
        if (verifySections_ &&
            crc32(data_ + s.offset, s.size) != s.crc)
            throw SnapshotError("snapshot: section '" + tag +
                                "' CRC mismatch");
        sectionTag_ = tag;
        cursor_ = s.offset;
        sectionEnd_ = s.offset + s.size;
        inSection_ = true;
        return;
    }
    throw SnapshotError("snapshot: missing section '" + tag + "'");
}

void
Deserializer::leaveSection()
{
    if (!inSection_)
        throw SnapshotError(
            "snapshot: leaveSection without enter");
    if (!structEnds_.empty())
        fail("leaveSection with open struct");
    if (cursor_ != sectionEnd_)
        fail("trailing bytes in section");
    inSection_ = false;
}

void
Deserializer::enterStruct(const std::string &tag)
{
    const std::size_t tagLen = u8();
    if (tagLen > MaxTagBytes || cursor_ + tagLen > limit())
        fail("corrupt struct tag");
    const std::string found(
        reinterpret_cast<const char *>(data_ + cursor_), tagLen);
    cursor_ += tagLen;
    if (found != tag)
        fail("expected struct '" + tag + "', found '" + found +
             "'");
    const std::uint32_t len = u32();
    const std::uint32_t crc = u32();
    (void)crc;
    if (len > limit() - cursor_)
        fail("struct '" + tag + "' exceeds its container");
    // The struct payload (and the stored CRC field itself) is
    // already covered by the section CRC verified in enterSection,
    // so recomputing per struct would checksum every restored byte
    // twice — on multi-megabyte warm states that doubles restore
    // cost. The field stays in the format for tooling and for
    // localizing corruption when a section check fails.
    structEnds_.push_back(cursor_ + len);
}

void
Deserializer::leaveStruct()
{
    if (structEnds_.empty())
        throw SnapshotError(
            "snapshot: leaveStruct without enter");
    if (cursor_ != structEnds_.back())
        fail("trailing bytes in struct");
    structEnds_.pop_back();
}

std::size_t
Deserializer::limit() const
{
    return structEnds_.empty() ? sectionEnd_ : structEnds_.back();
}

const std::uint8_t *
Deserializer::take(std::size_t n)
{
    if (!inSection_)
        throw SnapshotError("snapshot: read outside any section");
    if (n > limit() - cursor_ || cursor_ > limit())
        fail("truncated read of " + std::to_string(n) + " bytes");
    const std::uint8_t *p = data_ + cursor_;
    cursor_ += n;
    return p;
}

std::uint8_t
Deserializer::u8()
{
    return take(1)[0];
}

std::uint16_t
Deserializer::u16()
{
    const std::uint8_t *p = take(2);
    return static_cast<std::uint16_t>(
        p[0] | (static_cast<std::uint16_t>(p[1]) << 8));
}

std::uint32_t
Deserializer::u32()
{
    return readU32(take(4));
}

std::uint64_t
Deserializer::u64()
{
    return readU64(take(8));
}

std::int64_t
Deserializer::i64()
{
    return static_cast<std::int64_t>(u64());
}

double
Deserializer::f64()
{
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

bool
Deserializer::boolean()
{
    const std::uint8_t v = u8();
    if (v > 1)
        fail("bad boolean value " + std::to_string(v));
    return v != 0;
}

std::string
Deserializer::str()
{
    const std::uint32_t len = u32();
    const std::uint8_t *p = take(len);
    return std::string(reinterpret_cast<const char *>(p), len);
}

void
Deserializer::bytes(void *out, std::size_t size)
{
    std::memcpy(out, take(size), size);
}

void
Deserializer::checkU32(std::uint32_t expected,
                       const std::string &what)
{
    const std::uint32_t got = u32();
    if (got != expected)
        fail(what + " mismatch: snapshot has " +
             std::to_string(got) + ", machine has " +
             std::to_string(expected));
}

void
Deserializer::checkU64(std::uint64_t expected,
                       const std::string &what)
{
    const std::uint64_t got = u64();
    if (got != expected)
        fail(what + " mismatch: snapshot has " +
             std::to_string(got) + ", machine has " +
             std::to_string(expected));
}

void
Deserializer::checkBool(bool expected, const std::string &what)
{
    const bool got = boolean();
    if (got != expected)
        fail(what + " mismatch: snapshot has " +
             std::string(got ? "true" : "false") +
             ", machine has " +
             std::string(expected ? "true" : "false"));
}

void
Deserializer::fail(const std::string &what) const
{
    std::string where = sectionTag_.empty()
                            ? std::string("header")
                            : "section '" + sectionTag_ + "'";
    throw SnapshotError("snapshot: " + where + ": " + what);
}

} // namespace dlsim::snapshot
