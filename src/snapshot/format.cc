#include "snapshot/format.hh"

#include <array>

namespace dlsim::snapshot
{

namespace
{

std::array<std::uint32_t, 256>
makeCrcTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t n = 0; n < 256; ++n) {
        std::uint32_t c = n;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
        table[n] = c;
    }
    return table;
}

} // namespace

std::uint32_t
crc32(const std::uint8_t *data, std::size_t size)
{
    static const auto table = makeCrcTable();
    std::uint32_t c = 0xffffffffu;
    for (std::size_t i = 0; i < size; ++i)
        c = table[(c ^ data[i]) & 0xffu] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

} // namespace dlsim::snapshot
