#include "snapshot/format.hh"

#include <array>

namespace dlsim::snapshot
{

namespace
{

/**
 * Slice-by-8 CRC-32 tables: table[0] is the classic byte-at-a-time
 * table; table[k][b] extends it so eight bytes fold in per step.
 * Same polynomial (0xedb88320), bit-identical results — snapshot
 * checksums dominate restore cost on multi-megabyte warm states, so
 * the bulk loop matters (docs/performance.md).
 */
std::array<std::array<std::uint32_t, 256>, 8>
makeCrcTables()
{
    std::array<std::array<std::uint32_t, 256>, 8> t{};
    for (std::uint32_t n = 0; n < 256; ++n) {
        std::uint32_t c = n;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
        t[0][n] = c;
    }
    for (std::uint32_t n = 0; n < 256; ++n)
        for (std::size_t k = 1; k < 8; ++k)
            t[k][n] = t[0][t[k - 1][n] & 0xffu] ^ (t[k - 1][n] >> 8);
    return t;
}

} // namespace

std::uint32_t
crc32(const std::uint8_t *data, std::size_t size)
{
    static const auto t = makeCrcTables();
    std::uint32_t c = 0xffffffffu;
    while (size >= 8) {
        const std::uint32_t lo =
            c ^ (static_cast<std::uint32_t>(data[0]) |
                 static_cast<std::uint32_t>(data[1]) << 8 |
                 static_cast<std::uint32_t>(data[2]) << 16 |
                 static_cast<std::uint32_t>(data[3]) << 24);
        c = t[7][lo & 0xffu] ^ t[6][(lo >> 8) & 0xffu] ^
            t[5][(lo >> 16) & 0xffu] ^ t[4][lo >> 24] ^
            t[3][data[4]] ^ t[2][data[5]] ^ t[1][data[6]] ^
            t[0][data[7]];
        data += 8;
        size -= 8;
    }
    for (std::size_t i = 0; i < size; ++i)
        c = t[0][(c ^ data[i]) & 0xffu] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

} // namespace dlsim::snapshot
