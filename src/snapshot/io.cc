#include "snapshot/io.hh"

#include <cstdio>

#include "snapshot/format.hh"

namespace dlsim::snapshot
{

void
writeFile(const std::string &path,
          const std::vector<std::uint8_t> &bytes)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        throw SnapshotError("snapshot: cannot open '" + path +
                            "' for writing");
    const std::size_t n =
        bytes.empty()
            ? 0
            : std::fwrite(bytes.data(), 1, bytes.size(), f);
    const bool ok = n == bytes.size() && std::fclose(f) == 0;
    if (!ok) {
        std::remove(path.c_str());
        throw SnapshotError("snapshot: short write to '" + path +
                            "'");
    }
}

std::vector<std::uint8_t>
readFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        throw SnapshotError("snapshot: cannot open '" + path +
                            "'");
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    if (size < 0) {
        std::fclose(f);
        throw SnapshotError("snapshot: cannot size '" + path +
                            "'");
    }
    std::vector<std::uint8_t> bytes(
        static_cast<std::size_t>(size));
    const std::size_t n =
        bytes.empty() ? 0
                      : std::fread(bytes.data(), 1, bytes.size(), f);
    std::fclose(f);
    if (n != bytes.size())
        throw SnapshotError("snapshot: short read from '" + path +
                            "'");
    return bytes;
}

} // namespace dlsim::snapshot
