/**
 * @file
 * Serializer/Deserializer visitors for the dlsim snapshot format.
 *
 * Stateful structures implement
 *
 *     void save(snapshot::Serializer &) const;
 *     void load(snapshot::Deserializer &);
 *
 * writing their fields inside one or more struct records
 * (beginStruct/endStruct). Top-level composers group structures into
 * named sections; the Deserializer locates sections by tag, so the
 * file's section order is not part of the contract.
 *
 * Everything is little-endian. All readers bounds-check against the
 * enclosing struct/section and throw SnapshotError on any
 * inconsistency — a failed load never leaves partial state behind,
 * because callers load into a freshly built machine and discard it
 * on error.
 */

#ifndef DLSIM_SNAPSHOT_SERIALIZER_HH
#define DLSIM_SNAPSHOT_SERIALIZER_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "snapshot/format.hh"

namespace dlsim::snapshot
{

/** @name Little-endian readers for Deserializer::raw() views @{ */
inline std::uint16_t
le16(const std::uint8_t *p)
{
    return static_cast<std::uint16_t>(p[0] |
                                      (std::uint16_t{p[1]} << 8));
}

inline std::uint64_t
le64(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | p[i];
    return v;
}
/** @} */

/** Builds a snapshot byte stream section by section. */
class Serializer
{
  public:
    explicit Serializer(std::uint64_t fingerprint = 0)
        : fingerprint_(fingerprint)
    {
    }

    /** Open a top-level section; tags must be unique per file. */
    void beginSection(const std::string &tag);
    void endSection();

    /** Open a nested, CRC-framed struct record. */
    void beginStruct(const std::string &tag);
    void endStruct();

    void u8(std::uint8_t v);
    void u16(std::uint16_t v);
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void i64(std::int64_t v);
    void f64(double v);
    void boolean(bool v);
    void str(const std::string &v);
    void bytes(const void *data, std::size_t size);

    /** Assemble header + section table + payloads. */
    std::vector<std::uint8_t> finish() const;

  private:
    struct Section
    {
        std::string tag;
        std::vector<std::uint8_t> data;
    };

    std::vector<std::uint8_t> &buf();

    std::uint64_t fingerprint_;
    std::vector<Section> sections_;
    bool inSection_ = false;
    /** Offsets (into the open section) of unpatched struct
     *  length/CRC slots, innermost last. */
    std::vector<std::size_t> structStack_;
};

/** Reads and validates a snapshot byte stream. */
class Deserializer
{
  public:
    /**
     * Parse and validate the header and section table.
     * The buffer must outlive the Deserializer.
     *
     * @param verify_sections When false, enterSection skips the
     *        per-section payload CRC. For repeated restores of one
     *        already-verified (or just-serialized) in-memory buffer
     *        the checksum pass dominates restore cost; callers that
     *        own the buffer's integrity opt out and verify once via
     *        verifyAllSections() when the bytes came from disk.
     * @throws SnapshotError on bad magic/version/CRC/layout.
     */
    Deserializer(const std::uint8_t *data, std::size_t size,
                 bool verify_sections = true);

    /** Checksum every section payload; throws on any mismatch. */
    void verifyAllSections() const;

    /** Parameter fingerprint recorded at save time. */
    std::uint64_t fingerprint() const { return fingerprint_; }

    bool hasSection(const std::string &tag) const;

    /** Position the cursor at a section; verifies its CRC. */
    void enterSection(const std::string &tag);

    /** Close the section; throws if bytes remain unread. */
    void leaveSection();

    /** Enter a struct record; verifies tag and payload CRC. */
    void enterStruct(const std::string &tag);

    /** Close the struct; throws if bytes remain unread. */
    void leaveStruct();

    std::uint8_t u8();
    std::uint16_t u16();
    std::uint32_t u32();
    std::uint64_t u64();
    std::int64_t i64();
    double f64();
    bool boolean();
    std::string str();
    void bytes(void *out, std::size_t size);

    /**
     * Zero-copy view of the next `n` payload bytes; advances the
     * cursor. For bulk fixed-layout records (e.g. the image's slot
     * array) where a per-field read loop is measurable restore
     * cost. The pointer is valid for the buffer's lifetime.
     */
    const std::uint8_t *raw(std::size_t n) { return take(n); }

    /** Read a u32 and require it to equal `expected`. */
    void checkU32(std::uint32_t expected, const std::string &what);

    /** Read a u64 and require it to equal `expected`. */
    void checkU64(std::uint64_t expected, const std::string &what);

    /** Read a bool and require it to equal `expected`. */
    void checkBool(bool expected, const std::string &what);

    [[noreturn]] void fail(const std::string &what) const;

  private:
    struct Section
    {
        std::string tag;
        std::size_t offset = 0;
        std::size_t size = 0;
        std::uint32_t crc = 0;
    };

    const std::uint8_t *take(std::size_t n);
    std::size_t limit() const;

    const std::uint8_t *data_;
    std::size_t size_;
    std::uint64_t fingerprint_ = 0;
    std::vector<Section> sections_;
    std::string sectionTag_;
    std::size_t cursor_ = 0;
    std::size_t sectionEnd_ = 0;
    bool inSection_ = false;
    bool verifySections_ = true;
    /** End offsets of open struct records, innermost last. */
    std::vector<std::size_t> structEnds_;
};

} // namespace dlsim::snapshot

#endif // DLSIM_SNAPSHOT_SERIALIZER_HH
