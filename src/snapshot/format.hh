/**
 * @file
 * On-disk snapshot format constants and primitives.
 *
 * A dlsim snapshot is a little-endian binary container:
 *
 *   header:  u32 magic ("DLSN"), u32 format version,
 *            u64 parameter fingerprint, u32 section count,
 *            u32 CRC-32 of the section table
 *   table:   per section: 16-byte NUL-padded tag, u64 payload
 *            offset, u64 payload size, u32 payload CRC-32,
 *            u32 reserved (zero)
 *   payload: section payloads, in table order
 *
 * Within a section payload, state is stored as nestable struct
 * records: [u8 tag length][tag][u32 payload length][u32 payload
 * CRC-32][payload]. Every struct record therefore carries its own
 * checksum, so corruption is attributed to a named structure.
 *
 * Any mismatch — magic, version, CRC, fingerprint, geometry — must
 * raise SnapshotError before any partial state becomes visible; see
 * docs/snapshots.md for the full contract.
 */

#ifndef DLSIM_SNAPSHOT_FORMAT_HH
#define DLSIM_SNAPSHOT_FORMAT_HH

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace dlsim::snapshot
{

/** "DLSN" read as a little-endian u32. */
constexpr std::uint32_t Magic = 0x4e534c44u;

/** Current snapshot format version. */
constexpr std::uint32_t FormatVersion = 1;

/** Fixed header size in bytes (magic..table CRC). */
constexpr std::size_t HeaderBytes = 4 + 4 + 8 + 4 + 4;

/** Section-table entry size in bytes. */
constexpr std::size_t TableEntryBytes = 16 + 8 + 8 + 4 + 4;

/** Longest section/struct tag, excluding the terminator. */
constexpr std::size_t MaxTagBytes = 15;

/** Raised on any malformed, corrupt, or incompatible snapshot. */
class SnapshotError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** CRC-32 (IEEE 802.3 polynomial, reflected) of `size` bytes. */
std::uint32_t crc32(const std::uint8_t *data, std::size_t size);

/**
 * FNV-1a 64-bit hasher used for parameter fingerprints: a snapshot
 * may only be restored into a machine built from parameters whose
 * fingerprint matches the one recorded at save time.
 */
class Fingerprint
{
  public:
    void
    mix(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            h_ ^= (v >> (8 * i)) & 0xffu;
            h_ *= 0x100000001b3ull;
        }
    }

    void mix(std::uint32_t v) { mix(static_cast<std::uint64_t>(v)); }
    void mix(bool v) { mix(static_cast<std::uint64_t>(v)); }

    void
    mix(double v)
    {
        std::uint64_t bits;
        static_assert(sizeof(bits) == sizeof(v));
        __builtin_memcpy(&bits, &v, sizeof(bits));
        mix(bits);
    }

    void
    mix(const std::string &s)
    {
        mix(static_cast<std::uint64_t>(s.size()));
        for (const char c : s) {
            h_ ^= static_cast<std::uint8_t>(c);
            h_ *= 0x100000001b3ull;
        }
    }

    std::uint64_t value() const { return h_; }

  private:
    std::uint64_t h_ = 0xcbf29ce484222325ull;
};

} // namespace dlsim::snapshot

#endif // DLSIM_SNAPSHOT_FORMAT_HH
