/**
 * @file
 * Whole-file snapshot I/O. Reads/writes are all-or-nothing: a
 * failed write removes the partial file, a failed read throws
 * before any bytes reach a Deserializer.
 */

#ifndef DLSIM_SNAPSHOT_IO_HH
#define DLSIM_SNAPSHOT_IO_HH

#include <cstdint>
#include <string>
#include <vector>

namespace dlsim::snapshot
{

/** Write `bytes` to `path`. @throws SnapshotError on I/O error. */
void writeFile(const std::string &path,
               const std::vector<std::uint8_t> &bytes);

/** Read all of `path`. @throws SnapshotError on I/O error. */
std::vector<std::uint8_t> readFile(const std::string &path);

} // namespace dlsim::snapshot

#endif // DLSIM_SNAPSHOT_IO_HH
