#include "sim/job_runner.hh"

#include <algorithm>
#include <atomic>
#include <thread>

namespace dlsim::sim
{

JobRunner::JobRunner(unsigned jobs)
    : jobs_(jobs == 0 ? defaultJobs() : jobs)
{
}

unsigned
JobRunner::defaultJobs()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

void
JobRunner::runAll(std::vector<std::function<void()>> tasks)
{
    const std::size_t n = tasks.size();
    std::vector<std::exception_ptr> errors(n);

    // Workers claim tasks from a shared cursor. Claim order is
    // nondeterministic; result order is not — each task writes
    // only its own slot, and the caller consumes slots in
    // submission order.
    std::atomic<std::size_t> next{0};
    const auto worker = [&] {
        while (true) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            try {
                tasks[i]();
            } catch (...) {
                errors[i] = std::current_exception();
            }
        }
    };

    const unsigned threads = static_cast<unsigned>(
        std::min<std::size_t>(jobs_, n));
    if (threads <= 1) {
        worker(); // serial path: no threads, same semantics
    } else {
        std::vector<std::thread> pool;
        pool.reserve(threads);
        for (unsigned t = 0; t < threads; ++t)
            pool.emplace_back(worker);
        for (auto &th : pool)
            th.join();
    }

    for (auto &error : errors) {
        if (error)
            std::rethrow_exception(error);
    }
}

} // namespace dlsim::sim
