#include "sim/job_runner.hh"

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>

#ifdef __linux__
#include <sched.h>
#endif

namespace dlsim::sim
{

JobRunner::JobRunner(unsigned jobs)
    : jobs_(jobs == 0 ? defaultJobs() : jobs)
{
}

unsigned
JobRunner::affinityJobs()
{
#ifdef __linux__
    cpu_set_t set;
    CPU_ZERO(&set);
    if (sched_getaffinity(0, sizeof(set), &set) == 0) {
        const int n = CPU_COUNT(&set);
        if (n > 0)
            return static_cast<unsigned>(n);
    }
#endif
    return 0;
}

unsigned
JobRunner::defaultJobs()
{
    // hardware_concurrency() reports the machine, not the process:
    // under a cgroup cpuset or taskset it oversubscribes, and the
    // surplus workers just contend. The affinity mask is what the
    // scheduler will actually give us.
    if (const unsigned affinity = affinityJobs())
        return affinity;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

void
JobRunner::runAll(std::vector<std::function<void()>> tasks)
{
    const std::size_t n = tasks.size();
    std::vector<std::exception_ptr> errors(n);

    // Workers claim tasks from a shared cursor. Claim order is
    // nondeterministic; result order is not — each task writes
    // only its own slot, and the caller consumes slots in
    // submission order.
    std::atomic<std::size_t> next{0};
    const auto worker = [&] {
        while (true) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            try {
                tasks[i]();
            } catch (...) {
                errors[i] = std::current_exception();
            }
        }
    };

    const unsigned threads = static_cast<unsigned>(
        std::min<std::size_t>(jobs_, n));
    if (threads <= 1) {
        worker(); // serial path: no threads, same semantics
    } else {
        std::vector<std::thread> pool;
        pool.reserve(threads);
        for (unsigned t = 0; t < threads; ++t)
            pool.emplace_back(worker);
        for (auto &th : pool)
            th.join();
    }

    std::size_t failed = 0;
    std::size_t first = n;
    for (std::size_t i = 0; i < n; ++i) {
        if (errors[i]) {
            ++failed;
            if (first == n)
                first = i;
        }
    }
    if (failed == 0)
        return;
    if (failed == 1)
        std::rethrow_exception(errors[first]);

    // Several independent jobs failed: surface every diagnostic.
    // The aggregate necessarily loses the original exception types;
    // a single failure (the common case) keeps its type above.
    std::string msg = std::to_string(failed) + " of " +
                      std::to_string(n) + " jobs failed:";
    for (std::size_t i = 0; i < n; ++i) {
        if (!errors[i])
            continue;
        msg += "\n  task " + std::to_string(i) + ": ";
        try {
            std::rethrow_exception(errors[i]);
        } catch (const std::exception &e) {
            msg += e.what();
        } catch (...) {
            msg += "unknown exception";
        }
    }
    throw std::runtime_error(msg);
}

} // namespace dlsim::sim
