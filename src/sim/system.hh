/**
 * @file
 * OS-level process model: fork with copy-on-write page sharing and
 * context switching between processes on one core.
 *
 * This layer exists for two of the paper's arguments:
 *
 *  - §5.5 memory savings: prefork servers (Apache) share library and
 *    program text COW across hundreds of processes; a software
 *    call-site patcher dirties ~280 text pages per process while the
 *    proposed hardware dirties none. System::memoryStats()
 *    aggregates exactly that accounting.
 *  - §3.3 context switches: ABTB entries are virtual and must be
 *    flushed on a switch unless an ASID-style retention scheme is
 *    used; System::switchTo() drives that path.
 *
 * dlsim shares one code image across processes (same modules loaded
 * at the same addresses in every process, as fork semantics give);
 * each process owns its address space, swapped into the image while
 * the process runs. Call-site patches therefore apply semantically
 * to all processes — which is what would happen anyway, since every
 * process resolves the same symbols — while the per-process COW page
 * accounting remains exact.
 */

#ifndef DLSIM_SIM_SYSTEM_HH
#define DLSIM_SIM_SYSTEM_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cpu/core.hh"
#include "linker/dynamic_linker.hh"
#include "linker/image.hh"
#include "mem/address_space.hh"

namespace dlsim::snapshot
{
class Serializer;
class Deserializer;
}

namespace dlsim::sim
{

/** One simulated OS process. */
struct Process
{
    std::uint16_t asid = 0;
    std::string name;
    /** Owned while the process is switched out; while running, the
     *  address space lives inside the shared Image. */
    std::unique_ptr<mem::AddressSpace> as;
    cpu::MachineState state;
};

/** Aggregated memory accounting across all processes. */
struct MemoryStats
{
    std::uint64_t textCowCopies = 0;
    std::uint64_t gotCowCopies = 0;
    std::uint64_t dataCowCopies = 0;
    std::uint64_t stackCowCopies = 0;
    std::uint64_t sharedPages = 0;
    std::uint64_t privateBytes = 0;

    std::uint64_t totalCowCopies() const
    {
        return textCowCopies + gotCowCopies + dataCowCopies +
               stackCowCopies;
    }
};

/** Single-core multi-process system. */
class System
{
  public:
    /**
     * Takes an already-attached core/image/linker; the image's
     * current address space becomes process 0.
     */
    System(cpu::Core &core, linker::Image &image,
           linker::DynamicLinker &linker);

    /** The master process (process 0). */
    Process &initialProcess() { return *processes_.front(); }

    /**
     * Fork `parent`: the child shares all pages copy-on-write and
     * inherits the register state the parent last ran with.
     */
    Process &fork(Process &parent);

    /** Context-switch the core to `proc`. */
    void switchTo(Process &proc);

    Process &current() { return *current_; }

    std::size_t numProcesses() const { return processes_.size(); }
    Process &process(std::size_t i) { return *processes_[i]; }

    /** COW/page accounting across every process (§5.5). */
    MemoryStats memoryStats() const;

    cpu::Core &core() { return core_; }
    linker::Image &image() { return image_; }

    /**
     * Checkpoint the whole system: the process table (ASIDs,
     * register state, per-process address spaces with their COW
     * sharing topology), the shared image, the linker, and the
     * core. The referenced core/image/linker objects themselves
     * must be rebuilt from the same parameters before load().
     */
    void save(snapshot::Serializer &s) const;

    /** Restore; replaces the process table. Throws SnapshotError
     *  on any mismatch, leaving the system untouched on the
     *  process-table level until all records parse. */
    void load(snapshot::Deserializer &d);

  private:
    const mem::AddressSpace &spaceOf(const Process &proc) const;

    cpu::Core &core_;
    linker::Image &image_;
    linker::DynamicLinker &linker_;
    std::vector<std::unique_ptr<Process>> processes_;
    Process *current_;
    std::uint16_t nextAsid_ = 1;
};

} // namespace dlsim::sim

#endif // DLSIM_SIM_SYSTEM_HH
