#include "sim/multicore.hh"

#include <cassert>

#include "mem/address_space.hh"

namespace dlsim::sim
{

MultiCoreSystem::MultiCoreSystem(const MultiCoreParams &params,
                                 linker::Image &image,
                                 linker::DynamicLinker &linker,
                                 isa::Addr main_stack_top)
    : params_(params), image_(image)
{
    assert(params_.numCores >= 1);

    // Carve one stack region per core below the main stack (with a
    // guard page between them), like a threading runtime does.
    isa::Addr stack_top =
        main_stack_top - params_.stackBytes - mem::PageBytes;
    for (std::uint32_t i = 0; i < params_.numCores; ++i) {
        image_.addressSpace().map(
            stack_top - params_.stackBytes, params_.stackBytes,
            mem::PermRead | mem::PermWrite, mem::RegionKind::Stack,
            "tstack" + std::to_string(i));

        auto core = std::make_unique<cpu::Core>(params_.core);
        core->attachProcess(&image_, &linker, /*asid=*/0);
        core->initStack(stack_top);
        cores_.push_back(std::move(core));
        coreStackTops_.push_back(stack_top);

        stack_top -= params_.stackBytes + mem::PageBytes;
    }
    nextStackTop_ = stack_top;

    // Wire write-invalidate coherence: each core's retired stores
    // are snooped by every other core's caches and skip unit. Any
    // attached retire observer (lockstep checker) on a sibling is
    // told too, so its reference memory sees cross-thread stores at
    // the same quantum boundary the timing core does.
    for (std::uint32_t i = 0; i < params_.numCores; ++i) {
        cores_[i]->setStoreSnoopHook([this, i](isa::Addr addr) {
            ++snoopedStores_;
            for (std::uint32_t j = 0; j < cores_.size(); ++j) {
                if (j == i)
                    continue;
                if (params_.cacheCoherence) {
                    cores_[j]->hierarchy().invalidateDataLine(
                        addr);
                }
                if (auto *unit = cores_[j]->skipUnit())
                    unit->coherenceInvalidate(addr);
                if (auto *obs = cores_[j]->observer())
                    obs->onExternalWrite(addr);
            }
        });
    }
}

isa::Addr
MultiCoreSystem::allocThreadStack()
{
    const isa::Addr top = nextStackTop_;
    image_.addressSpace().map(
        top - params_.stackBytes, params_.stackBytes,
        mem::PermRead | mem::PermWrite, mem::RegionKind::Stack,
        "tstack" +
            std::to_string(params_.numCores + extraStacks_));
    ++extraStacks_;
    nextStackTop_ = top - params_.stackBytes - mem::PageBytes;
    return top;
}

std::vector<ThreadResult>
MultiCoreSystem::runOnAll(
    isa::Addr fn,
    const std::vector<std::pair<std::uint64_t, std::uint64_t>>
        &args)
{
    assert(!args.empty());
    const std::size_t threads = args.size();

    // Run-to-completion queue: core i's current thread, and the
    // next queued thread index. Each core runs one thread at a time
    // and a finished call leaves the stack balanced, so a queued
    // thread reuses the stack of whatever core frees up first —
    // with M == N this degenerates to the original one-thread-per-
    // core behaviour, byte for byte (no redundant stack resets, no
    // extra mappings).
    constexpr std::size_t None = SIZE_MAX;
    struct Slot
    {
        std::size_t thread = None;
        std::uint64_t insts0 = 0;
        std::uint64_t cycles0 = 0;
    };
    std::vector<Slot> slot(cores_.size());
    std::vector<ThreadResult> results(threads);
    std::size_t next = 0;
    std::size_t live = 0;

    const auto dispatch = [&](std::size_t i) {
        if (next >= threads)
            return;
        const std::size_t t = next++;
        // Queued threads (beyond the initial N) inherit a stack a
        // previous call may have touched; reset sp to the core's
        // stack top so every thread starts from a clean frame.
        if (t >= cores_.size())
            cores_[i]->initStack(coreStackTops_[i]);
        slot[i].thread = t;
        slot[i].insts0 = cores_[i]->counters().instructions;
        slot[i].cycles0 = cores_[i]->counters().cycles;
        cores_[i]->beginCall(fn, args[t].first, args[t].second,
                             static_cast<std::uint64_t>(t));
        ++live;
    };

    for (std::size_t i = 0; i < cores_.size() && next < threads;
         ++i)
        dispatch(i);

    while (live > 0) {
        for (std::size_t i = 0; i < cores_.size(); ++i) {
            if (slot[i].thread == None)
                continue;
            if (!cores_[i]->runQuantum(params_.quantum))
                continue;
            const std::size_t t = slot[i].thread;
            const auto c = cores_[i]->counters();
            results[t].instructions =
                c.instructions - slot[i].insts0;
            results[t].cycles = c.cycles - slot[i].cycles0;
            results[t].returnValue =
                cores_[i]->state().regs[isa::RegRet];
            slot[i].thread = None;
            --live;
            // The freed core picks up the next queued thread; its
            // first quantum runs in the next round, preserving the
            // fixed round-robin interleaving.
            dispatch(i);
        }
    }
    return results;
}

void
MultiCoreSystem::broadcastGotWrite(isa::Addr addr)
{
    for (auto &core : cores_)
        core->onExternalGotWrite(addr);
}

std::uint64_t
MultiCoreSystem::totalCoherenceFlushes() const
{
    std::uint64_t total = 0;
    for (const auto &core : cores_) {
        if (const auto *unit = core->skipUnit())
            total += unit->stats().coherenceFlushes;
    }
    return total;
}

void
MultiCoreSystem::reportMetrics(stats::MetricsRegistry &reg,
                               const std::string &prefix) const
{
    const std::string p = prefix + ".multicore.";
    core::SkipUnitStats sum;
    for (const auto &core : cores_) {
        if (const auto *unit = core->skipUnit()) {
            const auto &st = unit->stats();
            sum.substitutions += st.substitutions;
            sum.storeFlushes += st.storeFlushes;
            sum.coherenceFlushes += st.coherenceFlushes;
            sum.contextSwitchFlushes += st.contextSwitchFlushes;
            sum.explicitFlushes += st.explicitFlushes;
            sum.falsePositiveFlushes += st.falsePositiveFlushes;
        }
    }
    reg.gauge(p + "cores", static_cast<double>(cores_.size()));
    reg.gauge(p + "quantum",
              static_cast<double>(params_.quantum));
    reg.gauge(p + "snooped_stores",
              static_cast<double>(snoopedStores_));
    reg.gauge(p + "substitutions",
              static_cast<double>(sum.substitutions));
    reg.gauge(p + "store_flushes",
              static_cast<double>(sum.storeFlushes));
    reg.gauge(p + "coherence_flushes",
              static_cast<double>(sum.coherenceFlushes));
    reg.gauge(p + "context_switch_flushes",
              static_cast<double>(sum.contextSwitchFlushes));
    reg.gauge(p + "explicit_flushes",
              static_cast<double>(sum.explicitFlushes));
    reg.gauge(p + "false_positive_flushes",
              static_cast<double>(sum.falsePositiveFlushes));
}

} // namespace dlsim::sim
