#include "sim/multicore.hh"

#include <cassert>

#include "mem/address_space.hh"

namespace dlsim::sim
{

MultiCoreSystem::MultiCoreSystem(const MultiCoreParams &params,
                                 linker::Image &image,
                                 linker::DynamicLinker &linker,
                                 isa::Addr main_stack_top)
    : params_(params), image_(image)
{
    assert(params_.numCores >= 1);

    // Carve one stack region per core below the main stack (with a
    // guard page between them), like a threading runtime does.
    isa::Addr stack_top =
        main_stack_top - params_.stackBytes - mem::PageBytes;
    for (std::uint32_t i = 0; i < params_.numCores; ++i) {
        image_.addressSpace().map(
            stack_top - params_.stackBytes, params_.stackBytes,
            mem::PermRead | mem::PermWrite, mem::RegionKind::Stack,
            "tstack" + std::to_string(i));

        auto core = std::make_unique<cpu::Core>(params_.core);
        core->attachProcess(&image_, &linker, /*asid=*/0);
        core->initStack(stack_top);
        cores_.push_back(std::move(core));

        stack_top -= params_.stackBytes + mem::PageBytes;
    }

    // Wire write-invalidate coherence: each core's retired stores
    // are snooped by every other core's caches and skip unit. Any
    // attached retire observer (lockstep checker) on a sibling is
    // told too, so its reference memory sees cross-thread stores at
    // the same quantum boundary the timing core does.
    for (std::uint32_t i = 0; i < params_.numCores; ++i) {
        cores_[i]->setStoreSnoopHook([this, i](isa::Addr addr) {
            for (std::uint32_t j = 0; j < cores_.size(); ++j) {
                if (j == i)
                    continue;
                if (params_.cacheCoherence) {
                    cores_[j]->hierarchy().invalidateDataLine(
                        addr);
                }
                if (auto *unit = cores_[j]->skipUnit())
                    unit->coherenceInvalidate(addr);
                if (auto *obs = cores_[j]->observer())
                    obs->onExternalWrite(addr);
            }
        });
    }
}

std::vector<ThreadResult>
MultiCoreSystem::runOnAll(
    isa::Addr fn,
    const std::vector<std::pair<std::uint64_t, std::uint64_t>>
        &args)
{
    assert(args.size() == cores_.size());

    struct Progress
    {
        bool done = false;
        std::uint64_t insts0 = 0;
        std::uint64_t cycles0 = 0;
    };
    std::vector<Progress> progress(cores_.size());

    for (std::size_t i = 0; i < cores_.size(); ++i) {
        progress[i].insts0 = cores_[i]->counters().instructions;
        progress[i].cycles0 = cores_[i]->counters().cycles;
        cores_[i]->beginCall(fn, args[i].first, args[i].second,
                             static_cast<std::uint64_t>(i));
    }

    bool all_done = false;
    while (!all_done) {
        all_done = true;
        for (std::size_t i = 0; i < cores_.size(); ++i) {
            if (progress[i].done)
                continue;
            progress[i].done =
                cores_[i]->runQuantum(params_.quantum);
            all_done &= progress[i].done;
        }
    }

    std::vector<ThreadResult> results(cores_.size());
    for (std::size_t i = 0; i < cores_.size(); ++i) {
        const auto c = cores_[i]->counters();
        results[i].instructions =
            c.instructions - progress[i].insts0;
        results[i].cycles = c.cycles - progress[i].cycles0;
        results[i].returnValue =
            cores_[i]->state().regs[isa::RegRet];
    }
    return results;
}

void
MultiCoreSystem::broadcastGotWrite(isa::Addr addr)
{
    for (auto &core : cores_)
        core->onExternalGotWrite(addr);
}

std::uint64_t
MultiCoreSystem::totalCoherenceFlushes() const
{
    std::uint64_t total = 0;
    for (const auto &core : cores_) {
        if (const auto *unit = core->skipUnit())
            total += unit->stats().coherenceFlushes;
    }
    return total;
}

} // namespace dlsim::sim
