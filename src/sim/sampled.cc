#include "sim/sampled.hh"

#include <cctype>
#include <sstream>

#include "stats/metrics.hh"

namespace dlsim::sim
{

namespace
{

std::string
hexAddr(isa::Addr addr)
{
    std::ostringstream os;
    os << "0x" << std::hex << addr;
    return os.str();
}

} // namespace

bool
SampleParams::parse(const std::string &spec, SampleParams &out,
                    std::string *error)
{
    const auto fail = [&](const char *msg) {
        if (error)
            *error = std::string(msg) + " (got '" + spec +
                     "', expected W:D:F decimal instruction "
                     "counts, e.g. 2000:10000:100000)";
        return false;
    };

    std::uint64_t vals[3] = {0, 0, 0};
    std::size_t pos = 0;
    for (int f = 0; f < 3; ++f) {
        if (pos >= spec.size() ||
            !std::isdigit(static_cast<unsigned char>(spec[pos])))
            return fail("malformed sample spec");
        while (pos < spec.size() &&
               std::isdigit(static_cast<unsigned char>(spec[pos]))) {
            vals[f] = vals[f] * 10 +
                      static_cast<std::uint64_t>(spec[pos] - '0');
            ++pos;
        }
        if (f < 2) {
            if (pos >= spec.size() || spec[pos] != ':')
                return fail("malformed sample spec");
            ++pos;
        }
    }
    if (pos != spec.size())
        return fail("trailing characters in sample spec");
    if (vals[1] == 0)
        return fail("detail window D must be >= 1");
    if (vals[2] == 0)
        return fail("fast-forward length F must be >= 1");

    out.enabled = true;
    out.warmup = vals[0];
    out.detail = vals[1];
    out.fastforward = vals[2];
    return true;
}

std::string
SampleParams::spec() const
{
    return std::to_string(warmup) + ":" + std::to_string(detail) +
           ":" + std::to_string(fastforward);
}

SampledExecution::SampledExecution(cpu::Core &core,
                                   linker::Image &image,
                                   linker::DynamicLinker &linker,
                                   const SampleParams &params)
    : core_(core), image_(image), linker_(linker),
      ref_(&image, &image.addressSpace()), params_(params)
{
    // One knob drives both executors: a --blocks 0 run must be
    // block-free in the fast-forward phases too.
    ref_.setBlockDispatch(core.params().blockDispatch);
    phase_ = params_.warmup > 0 ? Phase::Warmup : Phase::Detail;
    phaseLeft_ =
        params_.warmup > 0 ? params_.warmup : params_.detail;
}

SampledExecution::CallEstimate
SampledExecution::runToReturn()
{
    std::uint64_t det_insts = 0;
    std::uint64_t det_cycles = 0;
    std::uint64_t ff_insts = 0;
    bool done = false;
    while (!done) {
        if (phase_ == Phase::FastForward)
            done = runFastForward(ff_insts);
        else
            done = runDetailedPhase(det_insts, det_cycles);
    }

    CallEstimate est;
    est.instructions = det_insts + ff_insts;
    est.cycles =
        det_cycles +
        static_cast<std::uint64_t>(
            static_cast<double>(ff_insts) * stats_.cpi() + 0.5);
    return est;
}

bool
SampledExecution::runDetailedPhase(std::uint64_t &det_insts,
                                   std::uint64_t &det_cycles)
{
    const auto insts0 = core_.instructionsRetired();
    const auto cycles0 = core_.cycleCount();
    const bool done = core_.runQuantum(phaseLeft_);
    const auto ran = core_.instructionsRetired() - insts0;
    const auto cyc = core_.cycleCount() - cycles0;

    det_insts += ran;
    det_cycles += cyc;
    if (phase_ == Phase::Detail) {
        stats_.detailInsts += ran;
        stats_.detailCycles += cyc;
    } else {
        stats_.warmupInsts += ran;
        stats_.warmupCycles += cyc;
    }

    // The quantum can overshoot by a synthetic resolver bulk-add;
    // clamp. Phase transitions happen only when the budget is spent
    // — a call returning mid-phase resumes the same phase on the
    // next call, so the sample grid spans the whole run.
    phaseLeft_ = ran >= phaseLeft_ ? 0 : phaseLeft_ - ran;
    if (phaseLeft_ == 0) {
        if (phase_ == Phase::Warmup) {
            phase_ = Phase::Detail;
            phaseLeft_ = params_.detail;
        } else {
            ++stats_.windows;
            phase_ = Phase::FastForward;
            phaseLeft_ = params_.fastforward;
        }
    }
    return done;
}

bool
SampledExecution::runFastForward(std::uint64_t &ff_insts)
{
    // Hand off: copy register state onto the functional engine. Its
    // memory *is* the live address space, so no state is copied
    // back for stores.
    ref_.sync(core_.state());

    bool done = false;
    std::uint64_t executed = 0;
    while (phaseLeft_ > 0) {
        const auto r =
            ref_.runFast(phaseLeft_, cpu::MagicReturnVa);
        executed += r.steps;
        phaseLeft_ -= r.steps;
        if (r.stop == check::FastStop::Resolver) {
            const auto cost = serviceResolverFunctional();
            executed += cost;
            phaseLeft_ =
                cost >= phaseLeft_ ? 0 : phaseLeft_ - cost;
            continue;
        }
        if (r.stop == check::FastStop::StopPc ||
            r.stop == check::FastStop::Halted) {
            done = true;
        }
        break;
    }

    stats_.ffInsts += executed;
    ff_insts += executed;

    // Hand back: the timing core adopts the functional state and
    // resumes detailed execution. An attached observer (lockstep
    // checker) resyncs as it would after a snapshot restore.
    core_.setState(ref_.state());
    if (auto *obs = core_.observer())
        obs->onFastForward(core_.state());

    if (phaseLeft_ == 0) {
        phase_ =
            params_.warmup > 0 ? Phase::Warmup : Phase::Detail;
        phaseLeft_ =
            params_.warmup > 0 ? params_.warmup : params_.detail;
    }
    return done;
}

std::uint64_t
SampledExecution::serviceResolverFunctional()
{
    // The functional mirror of Core::serviceResolver, minus all
    // timing: pop the PLT0 operands, run the linker, store the GOT
    // entry architecturally. The skip unit still snoops the store
    // (and performs the explicit-invalidation flush when that
    // variant is configured) so ABTB entries can never go stale
    // across a fast-forward phase — the checkSkips invariant holds
    // in sampled runs too.
    auto &st = ref_.state();
    auto &as = ref_.memory();
    auto &regs = st.regs;

    const auto pop = [&]() -> std::uint64_t {
        mem::MemFault fault = mem::MemFault::None;
        const auto value = as.read64(regs[isa::RegSp], fault);
        if (fault != mem::MemFault::None) {
            throw cpu::SimError(
                "sampled resolver: stack read fault at " +
                hexAddr(regs[isa::RegSp]));
        }
        regs[isa::RegSp] += 8;
        return value;
    };

    const auto module_id = static_cast<std::uint32_t>(pop());
    const auto reloc_idx = static_cast<std::uint32_t>(pop());
    const auto result = linker_.resolve(module_id, reloc_idx);

    if (as.write64(result.gotAddr, result.value) !=
        mem::MemFault::None) {
        throw cpu::SimError("sampled resolver: GOT store fault at " +
                            hexAddr(result.gotAddr));
    }
    if (auto *su = core_.skipUnit()) {
        su->retireStore(result.gotAddr);
        if (core_.params().skip.explicitInvalidation)
            su->explicitFlush();
    }

    ++stats_.ffResolverTraps;
    st.pc = result.target;
    return core_.params().resolverInsts;
}

void
SampledExecution::reportMetrics(stats::MetricsRegistry &reg,
                                const std::string &prefix) const
{
    const std::string p = prefix + ".sampled.";
    reg.counter(p + "windows", stats_.windows);
    reg.counter(p + "detail_instructions", stats_.detailInsts);
    reg.counter(p + "warmup_instructions", stats_.warmupInsts);
    reg.counter(p + "ff_instructions", stats_.ffInsts);
    reg.counter(p + "resolver_traps", stats_.ffResolverTraps);
    reg.counter(p + "total_instructions", stats_.totalInsts());
    reg.gauge(p + "coverage", stats_.coverage());
    reg.gauge(p + "cpi", stats_.cpi());
    reg.gauge(p + "extrapolated_cycles",
              stats_.extrapolatedCycles());
    reg.gauge(p + "extrapolated_ipc",
              stats_.extrapolatedCycles() > 0
                  ? static_cast<double>(stats_.totalInsts()) /
                        stats_.extrapolatedCycles()
                  : 0.0);
}

} // namespace dlsim::sim
