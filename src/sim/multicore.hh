/**
 * @file
 * Multicore system: N cores running threads of one process (shared
 * address space), with write-invalidate coherence between the
 * cores' private caches *and their trampoline-skip units*.
 *
 * This exercises the coherence path of paper §3.2: "When the
 * processor retires a store instruction to an address that hits in
 * the bloom filter (**or an invalidation for such an address is
 * received from the coherence subsystem**), all entries in ABTB and
 * the bloom filter are cleared." When one thread's lazy resolution
 * writes a GOT slot, every other core that memoized a trampoline
 * backed by that slot must drop its ABTB — otherwise a sibling
 * thread could keep skipping into a stale target.
 *
 * Execution interleaves deterministically: cores advance round-
 * robin in fixed instruction quanta on one host thread, so runs are
 * exactly reproducible.
 */

#ifndef DLSIM_SIM_MULTICORE_HH
#define DLSIM_SIM_MULTICORE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "cpu/core.hh"
#include "linker/dynamic_linker.hh"
#include "linker/image.hh"

namespace dlsim::sim
{

/** Multicore configuration. */
struct MultiCoreParams
{
    std::uint32_t numCores = 4;
    /** Instructions per scheduling quantum. */
    std::uint64_t quantum = 200;
    /** Per-thread stack bytes (stacks are carved below the
     *  process's main stack). */
    std::uint64_t stackBytes = 1 << 20;
    /** Forward stores to other cores' caches as invalidations. */
    bool cacheCoherence = true;
    cpu::CoreParams core;
};

/** One completed thread request. */
struct ThreadResult
{
    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0;
    std::uint64_t returnValue = 0;
};

/**
 * N cores over one shared image (threads of one process).
 */
class MultiCoreSystem
{
  public:
    /**
     * @param main_stack_top Top of the process's stack region;
     *        thread stacks are allocated downward from it.
     */
    MultiCoreSystem(const MultiCoreParams &params,
                    linker::Image &image,
                    linker::DynamicLinker &linker,
                    isa::Addr main_stack_top);

    std::uint32_t numCores() const
    {
        return static_cast<std::uint32_t>(cores_.size());
    }
    cpu::Core &core(std::uint32_t i) { return *cores_[i]; }

    /**
     * Run one function call on every core concurrently
     * (deterministic round-robin interleaving) and return each
     * thread's result.
     * @param fn   Entry address, shared by all threads.
     * @param args Per-thread (arg0, arg1) pairs; size must equal
     *             numCores().
     */
    std::vector<ThreadResult> runOnAll(
        isa::Addr fn,
        const std::vector<std::pair<std::uint64_t,
                                    std::uint64_t>> &args);

    /** Broadcast an external GOT write (e.g. dlclose) to every
     *  core's skip unit. */
    void broadcastGotWrite(isa::Addr addr);

    /** Total coherence flushes across all cores' skip units. */
    std::uint64_t totalCoherenceFlushes() const;

  private:
    MultiCoreParams params_;
    linker::Image &image_;
    std::vector<std::unique_ptr<cpu::Core>> cores_;
};

} // namespace dlsim::sim

#endif // DLSIM_SIM_MULTICORE_HH
