/**
 * @file
 * Multicore system: N cores running threads of one process (shared
 * address space), with write-invalidate coherence between the
 * cores' private caches *and their trampoline-skip units*.
 *
 * This exercises the coherence path of paper §3.2: "When the
 * processor retires a store instruction to an address that hits in
 * the bloom filter (**or an invalidation for such an address is
 * received from the coherence subsystem**), all entries in ABTB and
 * the bloom filter are cleared." When one thread's lazy resolution
 * writes a GOT slot, every other core that memoized a trampoline
 * backed by that slot must drop its ABTB — otherwise a sibling
 * thread could keep skipping into a stale target.
 *
 * Execution interleaves deterministically: cores advance round-
 * robin in fixed instruction quanta on one host thread, so runs are
 * exactly reproducible.
 */

#ifndef DLSIM_SIM_MULTICORE_HH
#define DLSIM_SIM_MULTICORE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cpu/core.hh"
#include "linker/dynamic_linker.hh"
#include "linker/image.hh"
#include "stats/metrics.hh"

namespace dlsim::sim
{

/** Multicore configuration. */
struct MultiCoreParams
{
    std::uint32_t numCores = 4;
    /** Instructions per scheduling quantum. */
    std::uint64_t quantum = 200;
    /** Per-thread stack bytes (stacks are carved below the
     *  process's main stack). */
    std::uint64_t stackBytes = 1 << 20;
    /** Forward stores to other cores' caches as invalidations. */
    bool cacheCoherence = true;
    cpu::CoreParams core;
};

/** One completed thread request. */
struct ThreadResult
{
    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0;
    std::uint64_t returnValue = 0;
};

/**
 * N cores over one shared image (threads of one process).
 */
class MultiCoreSystem
{
  public:
    /**
     * @param main_stack_top Top of the process's stack region;
     *        thread stacks are allocated downward from it.
     */
    MultiCoreSystem(const MultiCoreParams &params,
                    linker::Image &image,
                    linker::DynamicLinker &linker,
                    isa::Addr main_stack_top);

    std::uint32_t numCores() const
    {
        return static_cast<std::uint32_t>(cores_.size());
    }
    cpu::Core &core(std::uint32_t i) { return *cores_[i]; }
    const cpu::Core &core(std::uint32_t i) const
    {
        return *cores_[i];
    }

    /** Top of core `i`'s built-in thread stack. */
    isa::Addr coreStackTop(std::uint32_t i) const
    {
        return coreStackTops_[i];
    }

    /**
     * Map one more thread stack (with a guard page) below the ones
     * already carved and return its top. An OS-like layer running
     * M > numCores() blocking threads calls this once per thread;
     * runOnAll() does not need it (its threads run to completion,
     * so a queued thread reuses the stack of the core it lands on).
     */
    isa::Addr allocThreadStack();

    /**
     * Run M = args.size() function-call threads over the N cores as
     * a run-to-completion queue (deterministic round-robin
     * interleaving) and return each thread's result in args order.
     * Threads 0..N-1 start immediately on cores 0..N-1; each time a
     * thread finishes, the next queued one is dispatched on the
     * freed core. The M == N case is byte-identical to the original
     * one-thread-per-core semantics.
     * @param fn   Entry address, shared by all threads.
     * @param args Per-thread (arg0, arg1) pairs; any size >= 1.
     */
    std::vector<ThreadResult> runOnAll(
        isa::Addr fn,
        const std::vector<std::pair<std::uint64_t,
                                    std::uint64_t>> &args);

    /** Broadcast an external GOT write (e.g. dlclose) to every
     *  core's skip unit. */
    void broadcastGotWrite(isa::Addr addr);

    /** Total coherence flushes across all cores' skip units. */
    std::uint64_t totalCoherenceFlushes() const;

    /** Stores snooped onto sibling cores (coherence traffic). */
    std::uint64_t snoopedStores() const { return snoopedStores_; }

    /**
     * Register the system-level view under `<prefix>.multicore.*`:
     * core count, quantum, snooped stores, and the skip-unit flush
     * causes summed across cores (paper §3.2/§3.3 accounting).
     * Gauges, so documents distinguish them from per-core counters.
     */
    void reportMetrics(stats::MetricsRegistry &reg,
                       const std::string &prefix) const;

    const MultiCoreParams &params() const { return params_; }

  private:
    MultiCoreParams params_;
    linker::Image &image_;
    std::vector<std::unique_ptr<cpu::Core>> cores_;
    std::vector<isa::Addr> coreStackTops_;
    /** Top of the next stack allocThreadStack() will carve. */
    isa::Addr nextStackTop_ = 0;
    std::uint32_t extraStacks_ = 0;
    std::uint64_t snoopedStores_ = 0;
};

} // namespace dlsim::sim

#endif // DLSIM_SIM_MULTICORE_HH
