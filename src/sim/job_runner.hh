/**
 * @file
 * Fixed-size thread-pool runner for independent simulation jobs.
 *
 * Every bench binary replays a (workload x machine-config x arm)
 * grid whose cells are completely independent: each cell builds its
 * own Workbench (image, linker, core, RNGs) and fills its own
 * MetricsRegistry. JobRunner executes such a grid on N host
 * threads and hands the results back strictly in submission order,
 * so tables, CDFs and --json-out documents printed from the results
 * are byte-identical to a serial run.
 *
 * Ownership rule (enforced by a debug assert in MetricsRegistry):
 * everything a job touches — Workbench, Image, DynamicLinker,
 * MetricsRegistry, Rng — is constructed inside the job closure and
 * owned by exactly one worker thread until the job returns. The
 * returned results become visible to the submitting thread with a
 * happens-before edge through the worker join.
 */

#ifndef DLSIM_SIM_JOB_RUNNER_HH
#define DLSIM_SIM_JOB_RUNNER_HH

#include <cstddef>
#include <exception>
#include <functional>
#include <utility>
#include <vector>

namespace dlsim::sim
{

/**
 * Runs a batch of independent jobs on a fixed number of host
 * threads.
 *
 * With jobs == 1 no threads are spawned and the batch runs inline
 * on the calling thread — exactly the historical serial path.
 * Failure semantics are identical in both modes: every job runs to
 * completion (jobs are independent, a failure cannot poison its
 * siblings), then failures are reported. A single failed job has
 * its original exception rethrown (type preserved); when several
 * jobs fail, every failure is aggregated — task index plus what() —
 * into one std::runtime_error, so no diagnostic is silently
 * dropped.
 */
class JobRunner
{
  public:
    /** @param jobs Worker count; 0 selects defaultJobs(). */
    explicit JobRunner(unsigned jobs = 0);

    /**
     * CPUs this process may actually run on: the scheduler affinity
     * mask (which is how cgroup cpusets and `taskset` limits show
     * up inside CI containers), falling back to
     * std::thread::hardware_concurrency when the mask is
     * unavailable. Always >= 1.
     */
    static unsigned defaultJobs();

    /** The affinity-mask CPU count alone; 0 when unavailable
     *  (non-Linux, or sched_getaffinity failed). */
    static unsigned affinityJobs();

    unsigned jobs() const { return jobs_; }

    /**
     * Execute every task, blocking until all have finished. If
     * exactly one task failed, its exception is rethrown; if
     * several failed, throws a std::runtime_error aggregating every
     * task index and message.
     */
    void runAll(std::vector<std::function<void()>> tasks);

    /**
     * Execute every task and return their results indexed by
     * submission order. R must be default-constructible and
     * movable; a failed task leaves a default-constructed R and
     * failures propagate after the batch drains (see runAll).
     */
    template <typename R>
    std::vector<R>
    run(std::vector<std::function<R()>> tasks)
    {
        std::vector<R> results(tasks.size());
        std::vector<std::function<void()>> thunks;
        thunks.reserve(tasks.size());
        for (std::size_t i = 0; i < tasks.size(); ++i) {
            thunks.push_back([&results, &tasks, i] {
                results[i] = tasks[i]();
            });
        }
        runAll(std::move(thunks));
        return results;
    }

  private:
    unsigned jobs_;
};

} // namespace dlsim::sim

#endif // DLSIM_SIM_JOB_RUNNER_HH
