/**
 * @file
 * Fixed-size thread-pool runner for independent simulation jobs.
 *
 * Every bench binary replays a (workload x machine-config x arm)
 * grid whose cells are completely independent: each cell builds its
 * own Workbench (image, linker, core, RNGs) and fills its own
 * MetricsRegistry. JobRunner executes such a grid on N host
 * threads and hands the results back strictly in submission order,
 * so tables, CDFs and --json-out documents printed from the results
 * are byte-identical to a serial run.
 *
 * Ownership rule (enforced by a debug assert in MetricsRegistry):
 * everything a job touches — Workbench, Image, DynamicLinker,
 * MetricsRegistry, Rng — is constructed inside the job closure and
 * owned by exactly one worker thread until the job returns. The
 * returned results become visible to the submitting thread with a
 * happens-before edge through the worker join.
 */

#ifndef DLSIM_SIM_JOB_RUNNER_HH
#define DLSIM_SIM_JOB_RUNNER_HH

#include <cstddef>
#include <exception>
#include <functional>
#include <utility>
#include <vector>

namespace dlsim::sim
{

/**
 * Runs a batch of independent jobs on a fixed number of host
 * threads.
 *
 * With jobs == 1 no threads are spawned and the batch runs inline
 * on the calling thread — exactly the historical serial path.
 * Failure semantics are identical in both modes: every job runs to
 * completion (jobs are independent, a failure cannot poison its
 * siblings), then the exception of the earliest-submitted failed
 * job is rethrown.
 */
class JobRunner
{
  public:
    /** @param jobs Worker count; 0 selects defaultJobs(). */
    explicit JobRunner(unsigned jobs = 0);

    /** std::thread::hardware_concurrency, clamped to >= 1. */
    static unsigned defaultJobs();

    unsigned jobs() const { return jobs_; }

    /**
     * Execute every task, blocking until all have finished.
     * Rethrows the earliest-submitted task's exception, if any.
     */
    void runAll(std::vector<std::function<void()>> tasks);

    /**
     * Execute every task and return their results indexed by
     * submission order. R must be default-constructible and
     * movable; a failed task leaves a default-constructed R and
     * its exception is rethrown after the batch drains.
     */
    template <typename R>
    std::vector<R>
    run(std::vector<std::function<R()>> tasks)
    {
        std::vector<R> results(tasks.size());
        std::vector<std::function<void()>> thunks;
        thunks.reserve(tasks.size());
        for (std::size_t i = 0; i < tasks.size(); ++i) {
            thunks.push_back([&results, &tasks, i] {
                results[i] = tasks[i]();
            });
        }
        runAll(std::move(thunks));
        return results;
    }

  private:
    unsigned jobs_;
};

} // namespace dlsim::sim

#endif // DLSIM_SIM_JOB_RUNNER_HH
