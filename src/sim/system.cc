#include "sim/system.hh"

#include <cassert>

#include "snapshot/serializer.hh"

namespace dlsim::sim
{

System::System(cpu::Core &core, linker::Image &image,
               linker::DynamicLinker &linker)
    : core_(core), image_(image), linker_(linker)
{
    auto proc = std::make_unique<Process>();
    proc->asid = 0;
    proc->name = "proc0";
    processes_.push_back(std::move(proc));
    current_ = processes_.front().get();
}

Process &
System::fork(Process &parent)
{
    auto child = std::make_unique<Process>();
    child->asid = nextAsid_++;
    child->name = "proc" + std::to_string(child->asid);

    if (&parent == current_) {
        child->as = image_.addressSpace().fork();
        child->state = core_.state();
    } else {
        assert(parent.as);
        child->as = parent.as->fork();
        child->state = parent.state;
    }

    processes_.push_back(std::move(child));
    return *processes_.back();
}

void
System::switchTo(Process &proc)
{
    if (&proc == current_)
        return;
    current_->as = image_.releaseAddressSpace();
    current_->state = core_.state();

    image_.adoptAddressSpace(std::move(proc.as));
    core_.contextSwitch(&image_, &linker_, proc.asid);
    core_.setState(proc.state);
    current_ = &proc;
}

const mem::AddressSpace &
System::spaceOf(const Process &proc) const
{
    if (&proc == current_)
        return image_.addressSpace();
    return *proc.as;
}

void
System::save(snapshot::Serializer &s) const
{
    // Every process's space registers its pages through one shared
    // pool so COW sharing (and the §5.5 accounting derived from it)
    // survives the roundtrip; the pool section is written last but
    // restored first (sections are located by tag).
    mem::PagePoolSaver pool;

    s.beginSection("system");
    s.beginStruct("sys");
    s.u16(nextAsid_);
    s.u32(static_cast<std::uint32_t>(processes_.size()));
    std::uint32_t cur = 0;
    for (std::size_t i = 0; i < processes_.size(); ++i) {
        if (processes_[i].get() == current_)
            cur = static_cast<std::uint32_t>(i);
    }
    s.u32(cur);
    s.endStruct();

    for (const auto &proc : processes_) {
        s.beginStruct("proc");
        s.u16(proc->asid);
        s.str(proc->name);
        // The running process's architectural state lives in the
        // core (proc->state is stale while scheduled); snapshot the
        // effective state either way.
        const cpu::MachineState &st = (proc.get() == current_)
                                          ? core_.state()
                                          : proc->state;
        for (std::uint64_t reg : st.regs)
            s.u64(reg);
        s.u64(st.pc);
        s.boolean(st.halted);
        s.endStruct();
        spaceOf(*proc).save(s, pool);
    }
    s.endSection();

    s.beginSection("pages");
    pool.save(s);
    s.endSection();

    s.beginSection("image");
    image_.save(s);
    s.endSection();

    s.beginSection("linker");
    linker_.save(s);
    s.endSection();

    s.beginSection("core");
    core_.save(s);
    s.endSection();
}

void
System::load(snapshot::Deserializer &d)
{
    mem::PagePoolLoader pool;
    d.enterSection("pages");
    pool.load(d);
    d.leaveSection();

    d.enterSection("system");
    d.enterStruct("sys");
    const std::uint16_t nextAsid = d.u16();
    const std::uint32_t count = d.u32();
    const std::uint32_t cur = d.u32();
    d.leaveStruct();
    if (count == 0 || cur >= count)
        d.fail("corrupt process table");

    std::vector<std::unique_ptr<Process>> procs;
    procs.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        auto p = std::make_unique<Process>();
        d.enterStruct("proc");
        p->asid = d.u16();
        p->name = d.str();
        for (auto &reg : p->state.regs)
            reg = d.u64();
        p->state.pc = d.u64();
        p->state.halted = d.boolean();
        d.leaveStruct();
        p->as = std::make_unique<mem::AddressSpace>();
        p->as->load(d, pool);
        procs.push_back(std::move(p));
    }
    d.leaveSection();

    d.enterSection("image");
    image_.load(d);
    d.leaveSection();

    d.enterSection("linker");
    linker_.load(d);
    d.leaveSection();

    d.enterSection("core");
    core_.load(d);
    d.leaveSection();

    // Commit: swap in the restored process table and hand the
    // scheduled process's space to the shared image (dropping the
    // space the image held before the restore).
    processes_ = std::move(procs);
    current_ = processes_[cur].get();
    nextAsid_ = nextAsid;
    image_.releaseAddressSpace();
    image_.adoptAddressSpace(std::move(current_->as));
}

MemoryStats
System::memoryStats() const
{
    MemoryStats stats;
    for (const auto &proc : processes_) {
        const auto &as = spaceOf(*proc);
        stats.textCowCopies +=
            as.cowCopies(mem::RegionKind::Text);
        stats.gotCowCopies += as.cowCopies(mem::RegionKind::Got);
        stats.dataCowCopies +=
            as.cowCopies(mem::RegionKind::Data);
        stats.stackCowCopies +=
            as.cowCopies(mem::RegionKind::Stack);
        stats.sharedPages += as.sharedPages();
        stats.privateBytes += as.privateBytes();
    }
    return stats;
}

} // namespace dlsim::sim
