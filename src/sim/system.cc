#include "sim/system.hh"

#include <cassert>

namespace dlsim::sim
{

System::System(cpu::Core &core, linker::Image &image,
               linker::DynamicLinker &linker)
    : core_(core), image_(image), linker_(linker)
{
    auto proc = std::make_unique<Process>();
    proc->asid = 0;
    proc->name = "proc0";
    processes_.push_back(std::move(proc));
    current_ = processes_.front().get();
}

Process &
System::fork(Process &parent)
{
    auto child = std::make_unique<Process>();
    child->asid = nextAsid_++;
    child->name = "proc" + std::to_string(child->asid);

    if (&parent == current_) {
        child->as = image_.addressSpace().fork();
        child->state = core_.state();
    } else {
        assert(parent.as);
        child->as = parent.as->fork();
        child->state = parent.state;
    }

    processes_.push_back(std::move(child));
    return *processes_.back();
}

void
System::switchTo(Process &proc)
{
    if (&proc == current_)
        return;
    current_->as = image_.releaseAddressSpace();
    current_->state = core_.state();

    image_.adoptAddressSpace(std::move(proc.as));
    core_.contextSwitch(&image_, &linker_, proc.asid);
    core_.setState(proc.state);
    current_ = &proc;
}

const mem::AddressSpace &
System::spaceOf(const Process &proc) const
{
    if (&proc == current_)
        return image_.addressSpace();
    return *proc.as;
}

MemoryStats
System::memoryStats() const
{
    MemoryStats stats;
    for (const auto &proc : processes_) {
        const auto &as = spaceOf(*proc);
        stats.textCowCopies +=
            as.cowCopies(mem::RegionKind::Text);
        stats.gotCowCopies += as.cowCopies(mem::RegionKind::Got);
        stats.dataCowCopies +=
            as.cowCopies(mem::RegionKind::Data);
        stats.stackCowCopies +=
            as.cowCopies(mem::RegionKind::Stack);
        stats.sharedPages += as.sharedPages();
        stats.privateBytes += as.privateBytes();
    }
    return stats;
}

} // namespace dlsim::sim
