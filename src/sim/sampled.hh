/**
 * @file
 * SampledExecution: SMARTS-style sampled simulation for one core.
 *
 * Detailed timing simulation (cpu::Core::step) costs an order of
 * magnitude more host time per instruction than functional
 * execution. The paper's results only need detailed timing in
 * short, periodic windows, so a sampled run alternates three
 * phases over the retired-instruction stream:
 *
 *   warmup (W insts)   detailed execution, *not* counted into the
 *                      CPI estimate — it re-warms caches, TLBs and
 *                      predictors after a functional gap;
 *   detail (D insts)   detailed execution, measured — these windows
 *                      produce the CPI used for extrapolation;
 *   fast-forward (F)   functional execution on a check::RefCore
 *                      bound directly to the process image: no
 *                      timing, no cache/BTB/ABTB probes, but every
 *                      architectural effect is real — GOT writes,
 *                      resolver traps (serviced functionally, with
 *                      the skip unit snooping the GOT store exactly
 *                      as the architectural data path would), and
 *                      stores all land in the live address space.
 *
 * The phase machine persists across requests, so the sample grid is
 * laid over the whole run rather than per request. Cycle counts for
 * fast-forwarded instructions are extrapolated from the measured
 * CPI of completed detail windows; instruction counts are exact up
 * to trampoline elision (the functional engine executes the PLT
 * jumps the enhanced machine's ABTB would skip).
 *
 * Exact mode is untouched: sampling only exists on a Workbench that
 * explicitly attached a SampledExecution (BenchArgs --sample=W:D:F,
 * default off), and every golden/determinism contract is stated for
 * exact mode.
 */

#ifndef DLSIM_SIM_SAMPLED_HH
#define DLSIM_SIM_SAMPLED_HH

#include <cstdint>
#include <string>

#include "check/ref_core.hh"
#include "cpu/core.hh"
#include "linker/dynamic_linker.hh"
#include "linker/image.hh"

namespace dlsim::stats
{
class MetricsRegistry;
}

namespace dlsim::sim
{

/** Sample-grid geometry, in retired instructions. */
struct SampleParams
{
    bool enabled = false;
    /** Detailed, unmeasured re-warm phase (may be 0). */
    std::uint64_t warmup = 2000;
    /** Detailed, measured window (>= 1). */
    std::uint64_t detail = 10000;
    /** Functional fast-forward phase (>= 1). */
    std::uint64_t fastforward = 100000;

    /**
     * Parse a "W:D:F" spec (decimal instruction counts; D and F
     * must be >= 1). On success fills `out` with enabled=true and
     * returns true; on failure returns false with a diagnostic in
     * `*error` (if non-null) and leaves `out` untouched.
     */
    static bool parse(const std::string &spec, SampleParams &out,
                      std::string *error = nullptr);

    /** The "W:D:F" form of this geometry. */
    std::string spec() const;
};

/** Work accounting of one sampled run (since the last clear). */
struct SampledStats
{
    /** Completed detail windows. */
    std::uint64_t windows = 0;
    /** Instructions retired in detail windows. */
    std::uint64_t detailInsts = 0;
    /** Cycles accumulated in detail windows. */
    std::uint64_t detailCycles = 0;
    /** Instructions retired in warmup phases (detailed, unmeasured). */
    std::uint64_t warmupInsts = 0;
    /** Cycles accumulated in warmup phases. */
    std::uint64_t warmupCycles = 0;
    /** Instructions executed functionally (incl. the synthetic
     *  resolver cost, mirroring exact mode's accounting). */
    std::uint64_t ffInsts = 0;
    /** Resolver traps serviced functionally. */
    std::uint64_t ffResolverTraps = 0;

    /** Measured CPI of the detail windows (1.0 until one exists). */
    double cpi() const
    {
        return detailInsts == 0
                   ? 1.0
                   : static_cast<double>(detailCycles) /
                         static_cast<double>(detailInsts);
    }

    std::uint64_t totalInsts() const
    {
        return detailInsts + warmupInsts + ffInsts;
    }

    /** Fraction of instructions executed with detailed timing. */
    double coverage() const
    {
        const auto total = totalInsts();
        return total == 0 ? 1.0
                          : static_cast<double>(detailInsts +
                                                warmupInsts) /
                                static_cast<double>(total);
    }

    /** Measured cycles plus CPI-extrapolated fast-forward cycles. */
    double extrapolatedCycles() const
    {
        return static_cast<double>(detailCycles + warmupCycles) +
               static_cast<double>(ffInsts) * cpi();
    }
};

/**
 * Drives one core's in-progress call (Core::beginCall) to
 * completion, alternating detailed sample windows and functional
 * fast-forward. One instance per Workbench; the phase machine and
 * stats persist across calls.
 */
class SampledExecution
{
  public:
    /** Estimated cost of one driven call. */
    struct CallEstimate
    {
        /** Exact count of instructions the call retired (detailed
         *  plus functional plus synthetic resolver cost). */
        std::uint64_t instructions = 0;
        /** Detailed cycles plus CPI-extrapolated ff cycles. */
        std::uint64_t cycles = 0;
    };

    SampledExecution(cpu::Core &core, linker::Image &image,
                     linker::DynamicLinker &linker,
                     const SampleParams &params);

    /** Run the call set up by Core::beginCall until it returns
     *  (pc == MagicReturnVa) or the machine halts. */
    CallEstimate runToReturn();

    const SampleParams &params() const { return params_; }
    const SampledStats &stats() const { return stats_; }

    /** Zero the stats (phase machine keeps its position). */
    void clearStats() { stats_ = SampledStats{}; }

    /**
     * Register `<prefix>.sampled.*`: the sample-grid work split,
     * measured CPI, coverage, and the extrapolated totals. Only
     * sampled runs carry these keys — exact-mode documents (and the
     * metrics golden) are unchanged.
     */
    void reportMetrics(stats::MetricsRegistry &reg,
                       const std::string &prefix) const;

  private:
    /** Run one detailed (warmup or detail) quantum.
     *  @return True once the call has returned/halted. */
    bool runDetailedPhase(std::uint64_t &det_insts,
                          std::uint64_t &det_cycles);
    /** Run one functional phase. @return True once done. */
    bool runFastForward(std::uint64_t &ff_insts);
    /** Service a resolver trap functionally; returns the synthetic
     *  instruction cost (CoreParams::resolverInsts). */
    std::uint64_t serviceResolverFunctional();

    enum class Phase
    {
        Warmup,
        Detail,
        FastForward
    };

    cpu::Core &core_;
    linker::Image &image_;
    linker::DynamicLinker &linker_;
    check::RefCore ref_;
    SampleParams params_;
    SampledStats stats_;
    Phase phase_ = Phase::Warmup;
    std::uint64_t phaseLeft_ = 0;
};

} // namespace dlsim::sim

#endif // DLSIM_SIM_SAMPLED_HH
