/**
 * @file
 * Branch target buffer.
 *
 * The BTB is the structure the paper's mechanism piggybacks on: the
 * ABTB-driven update path trains the BTB entry of a library call site
 * with the *library function* address instead of the trampoline
 * address, which is what makes the front end skip the trampoline.
 * The BTB itself needs no modification — exactly the paper's claim.
 */

#ifndef DLSIM_BRANCH_BTB_HH
#define DLSIM_BRANCH_BTB_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "isa/instruction.hh"

namespace dlsim::stats
{
class MetricsRegistry;
}

namespace dlsim::snapshot
{
class Serializer;
class Deserializer;
}

namespace dlsim::branch
{

using isa::Addr;

/** BTB geometry (2K entries, typical of the paper's era of core). */
struct BtbParams
{
    std::uint32_t entries = 2048;
    std::uint32_t assoc = 4;
};

/** Set-associative, fully tagged branch target buffer. */
class Btb
{
  public:
    explicit Btb(const BtbParams &params);

    /** Predicted target for the branch at pc, if any. */
    std::optional<Addr> lookup(Addr pc);

    /** Train the entry for pc with a resolved target. */
    void update(Addr pc, Addr target);

    /** Remove the entry for pc (used by tests). */
    void invalidate(Addr pc);

    /** Flush everything (context switch without ASIDs). */
    void invalidateAll();

    std::uint64_t lookups() const { return lookups_; }
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return lookups_ - hits_; }
    std::uint64_t evictions() const { return evictions_; }
    void clearStats() { lookups_ = hits_ = evictions_ = 0; }

    /** Register lookup/hit/miss/eviction counters under `prefix`. */
    void reportMetrics(stats::MetricsRegistry &reg,
                       const std::string &prefix) const;

    /** Checkpoint contents, LRU state, and counters. */
    void save(snapshot::Serializer &s) const;

    /** Restore; throws SnapshotError on geometry mismatch. */
    void load(snapshot::Deserializer &d);

  private:
    struct Entry
    {
        Addr pc = 0;
        Addr target = 0;
        bool valid = false;
        std::uint64_t lastUse = 0;
    };

    /** First invalid entry in the set, else first LRU-minimal one. */
    Entry *findVictim(std::size_t set);

    std::size_t setOf(Addr pc) const
    {
        return static_cast<std::size_t>((pc >> 2) & (numSets_ - 1));
    }

    BtbParams params_;
    std::uint64_t numSets_;
    std::vector<Entry> entries_;
    std::uint64_t tick_ = 0;
    std::uint64_t lookups_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t evictions_ = 0;
};

} // namespace dlsim::branch

#endif // DLSIM_BRANCH_BTB_HH
