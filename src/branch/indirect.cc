#include "branch/indirect.hh"

#include <bit>
#include <cassert>

#include "snapshot/serializer.hh"

namespace dlsim::branch
{

IndirectPredictor::IndirectPredictor(
    const IndirectPredictorParams &params)
    : params_(params)
{
    assert(params_.assoc > 0 &&
           params_.entries >= params_.assoc);
    numSets_ = params_.entries / params_.assoc;
    assert(std::has_single_bit(numSets_));
    entries_.resize(numSets_ * params_.assoc);
}

std::uint64_t
IndirectPredictor::indexTag(Addr pc) const
{
    // Mix the pc with the folded path history; the full mixed
    // value serves as the tag, its low bits as the set index.
    std::uint64_t x = (pc >> 2) ^ (history_ * 0x9e3779b9u);
    x ^= x >> 17;
    return x;
}

std::optional<Addr>
IndirectPredictor::predict(Addr pc)
{
    ++tick_;
    const std::uint64_t it = indexTag(pc);
    Entry *base =
        &entries_[(it & (numSets_ - 1)) * params_.assoc];
    for (std::uint32_t w = 0; w < params_.assoc; ++w) {
        Entry &e = base[w];
        if (e.valid && e.tag == it) {
            e.lastUse = tick_;
            return e.target;
        }
    }
    return std::nullopt;
}

void
IndirectPredictor::update(Addr pc, Addr target)
{
    ++tick_;
    const std::uint64_t it = indexTag(pc);
    Entry *base =
        &entries_[(it & (numSets_ - 1)) * params_.assoc];
    Entry *victim = base;
    for (std::uint32_t w = 0; w < params_.assoc; ++w) {
        Entry &e = base[w];
        if (e.valid && e.tag == it) {
            e.target = target;
            e.lastUse = tick_;
            return;
        }
        if (!e.valid) {
            victim = &e;
        } else if (victim->valid &&
                   e.lastUse < victim->lastUse) {
            victim = &e;
        }
    }
    victim->valid = true;
    victim->tag = it;
    victim->target = target;
    victim->lastUse = tick_;
}

void
IndirectPredictor::updateHistory(Addr target)
{
    const std::uint64_t mask =
        (1ull << params_.historyBits) - 1;
    history_ = ((history_ << 2) ^ (target >> 4)) & mask;
}

void
IndirectPredictor::reset()
{
    for (auto &e : entries_)
        e.valid = false;
    history_ = 0;
}


void
IndirectPredictor::save(snapshot::Serializer &s) const
{
    s.beginStruct("indirect");
    s.boolean(params_.enabled);
    s.u32(params_.entries);
    s.u32(params_.assoc);
    s.u32(params_.historyBits);
    s.u64(history_);
    s.u64(tick_);
    for (const Entry &e : entries_) {
        s.u64(e.tag);
        s.u64(e.target);
        s.boolean(e.valid);
        s.u64(e.lastUse);
    }
    s.endStruct();
}

void
IndirectPredictor::load(snapshot::Deserializer &d)
{
    d.enterStruct("indirect");
    d.checkBool(params_.enabled, "indirect enabled");
    d.checkU32(params_.entries, "indirect entries");
    d.checkU32(params_.assoc, "indirect assoc");
    d.checkU32(params_.historyBits, "indirect historyBits");
    history_ = d.u64();
    tick_ = d.u64();
    // Bulk-unpack (u64 tag, u64 target, bool, u64 lastUse = 25
    // bytes/entry, matching save()); see Cache::load.
    constexpr std::size_t EntryWireBytes = 25;
    const std::uint8_t *p = d.raw(entries_.size() * EntryWireBytes);
    for (Entry &e : entries_) {
        e.tag = snapshot::le64(p);
        e.target = snapshot::le64(p + 8);
        e.valid = p[16] != 0;
        e.lastUse = snapshot::le64(p + 17);
        p += EntryWireBytes;
    }
    d.leaveStruct();
}

} // namespace dlsim::branch
