#include "branch/ras.hh"

#include <cassert>

#include "stats/metrics.hh"

namespace dlsim::branch
{

ReturnAddressStack::ReturnAddressStack(std::size_t depth)
    : stack_(depth, 0)
{
    assert(depth > 0);
}

void
ReturnAddressStack::push(Addr ret_addr)
{
    ++pushes_;
    stack_[top_] = ret_addr;
    top_ = (top_ + 1) % stack_.size();
    if (occupancy_ < stack_.size())
        ++occupancy_;
}

std::optional<Addr>
ReturnAddressStack::pop()
{
    if (occupancy_ == 0) {
        ++underflows_;
        return std::nullopt;
    }
    ++pops_;
    top_ = (top_ + stack_.size() - 1) % stack_.size();
    --occupancy_;
    return stack_[top_];
}

void
ReturnAddressStack::clear()
{
    top_ = 0;
    occupancy_ = 0;
}

void
ReturnAddressStack::reportMetrics(stats::MetricsRegistry &reg,
                                  const std::string &prefix) const
{
    reg.counter(prefix + ".pushes", pushes_);
    reg.counter(prefix + ".pops", pops_);
    reg.counter(prefix + ".underflows", underflows_);
}

} // namespace dlsim::branch
