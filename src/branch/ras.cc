#include "branch/ras.hh"

#include <cassert>

#include "snapshot/serializer.hh"

#include "stats/metrics.hh"

namespace dlsim::branch
{

ReturnAddressStack::ReturnAddressStack(std::size_t depth)
    : stack_(depth, 0)
{
    assert(depth > 0);
}

void
ReturnAddressStack::push(Addr ret_addr)
{
    ++pushes_;
    stack_[top_] = ret_addr;
    top_ = (top_ + 1) % stack_.size();
    if (occupancy_ < stack_.size())
        ++occupancy_;
}

std::optional<Addr>
ReturnAddressStack::pop()
{
    if (occupancy_ == 0) {
        ++underflows_;
        return std::nullopt;
    }
    ++pops_;
    top_ = (top_ + stack_.size() - 1) % stack_.size();
    --occupancy_;
    return stack_[top_];
}

void
ReturnAddressStack::clear()
{
    top_ = 0;
    occupancy_ = 0;
}

void
ReturnAddressStack::reportMetrics(stats::MetricsRegistry &reg,
                                  const std::string &prefix) const
{
    reg.counter(prefix + ".pushes", pushes_);
    reg.counter(prefix + ".pops", pops_);
    reg.counter(prefix + ".underflows", underflows_);
}


void
ReturnAddressStack::save(snapshot::Serializer &s) const
{
    s.beginStruct("ras");
    s.u64(stack_.size());
    s.u64(top_);
    s.u64(occupancy_);
    s.u64(pushes_);
    s.u64(pops_);
    s.u64(underflows_);
    for (const Addr a : stack_)
        s.u64(a);
    s.endStruct();
}

void
ReturnAddressStack::load(snapshot::Deserializer &d)
{
    d.enterStruct("ras");
    d.checkU64(stack_.size(), "ras depth");
    top_ = d.u64();
    occupancy_ = d.u64();
    pushes_ = d.u64();
    pops_ = d.u64();
    underflows_ = d.u64();
    for (Addr &a : stack_)
        a = d.u64();
    d.leaveStruct();
}

} // namespace dlsim::branch
