/**
 * @file
 * Conditional-branch direction predictors.
 *
 * Two classic schemes are provided behind one interface: a bimodal
 * table of 2-bit saturating counters, and a gshare predictor (global
 * history XOR pc). The workloads' conditional branches are partly
 * data-dependent, so direction mispredictions contribute to the
 * "Branch Mispredictions" row of Table 4 alongside the target
 * mispredictions the trampoline mechanism removes.
 */

#ifndef DLSIM_BRANCH_DIRECTION_HH
#define DLSIM_BRANCH_DIRECTION_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "isa/instruction.hh"

namespace dlsim::branch
{

using isa::Addr;

/** Interface for direction predictors. */
class DirectionPredictor
{
  public:
    virtual ~DirectionPredictor() = default;

    /** Predict taken/not-taken for the conditional branch at pc. */
    virtual bool predict(Addr pc) = 0;

    /** Train with the resolved direction. */
    virtual void update(Addr pc, bool taken) = 0;

    /** Reset all state. */
    virtual void reset() = 0;
};

/** Table of 2-bit saturating counters indexed by pc. */
class BimodalPredictor : public DirectionPredictor
{
  public:
    /** @param entries Table size; must be a power of two. */
    explicit BimodalPredictor(std::size_t entries = 16384);

    bool predict(Addr pc) override;
    void update(Addr pc, bool taken) override;
    void reset() override;

  private:
    std::size_t indexOf(Addr pc) const
    {
        return static_cast<std::size_t>((pc >> 2) &
                                        (table_.size() - 1));
    }

    std::vector<std::uint8_t> table_;
};

/** Global-history predictor: index = (pc >> 2) XOR GHR. */
class GsharePredictor : public DirectionPredictor
{
  public:
    /**
     * @param entries     Table size; must be a power of two.
     * @param historyBits Global history length.
     */
    explicit GsharePredictor(std::size_t entries = 16384,
                             std::uint32_t historyBits = 12);

    bool predict(Addr pc) override;
    void update(Addr pc, bool taken) override;
    void reset() override;

  private:
    std::size_t indexOf(Addr pc) const
    {
        return static_cast<std::size_t>(((pc >> 2) ^ history_) &
                                        (table_.size() - 1));
    }

    std::vector<std::uint8_t> table_;
    std::uint64_t history_ = 0;
    std::uint64_t historyMask_;
};

/**
 * Tournament predictor: bimodal and gshare components with a
 * per-pc chooser of 2-bit counters selecting whichever component
 * has been predicting this branch better (Alpha 21264 style).
 */
class TournamentPredictor : public DirectionPredictor
{
  public:
    explicit TournamentPredictor(std::size_t entries = 16384,
                                 std::uint32_t historyBits = 12);

    bool predict(Addr pc) override;
    void update(Addr pc, bool taken) override;
    void reset() override;

  private:
    std::size_t chooserIndex(Addr pc) const
    {
        return static_cast<std::size_t>((pc >> 2) &
                                        (chooser_.size() - 1));
    }

    BimodalPredictor bimodal_;
    GsharePredictor gshare_;
    /** 0-1 favour bimodal, 2-3 favour gshare. */
    std::vector<std::uint8_t> chooser_;
};

/** Factory by name ("bimodal", "gshare", or "tournament"). */
std::unique_ptr<DirectionPredictor> makeDirectionPredictor(
    const std::string &kind);

} // namespace dlsim::branch

#endif // DLSIM_BRANCH_DIRECTION_HH
