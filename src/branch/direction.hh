/**
 * @file
 * Conditional-branch direction predictors.
 *
 * Two classic schemes are provided behind one interface: a bimodal
 * table of 2-bit saturating counters, and a gshare predictor (global
 * history XOR pc). The workloads' conditional branches are partly
 * data-dependent, so direction mispredictions contribute to the
 * "Branch Mispredictions" row of Table 4 alongside the target
 * mispredictions the trampoline mechanism removes.
 */

#ifndef DLSIM_BRANCH_DIRECTION_HH
#define DLSIM_BRANCH_DIRECTION_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "isa/instruction.hh"

namespace dlsim::stats
{
class MetricsRegistry;
}

namespace dlsim::snapshot
{
class Serializer;
class Deserializer;
}

namespace dlsim::branch
{

using isa::Addr;

/**
 * Interface for direction predictors.
 *
 * The public predict/update/reset entry points are non-virtual
 * counting wrappers (predictions, mispredicts) around the protected
 * doPredict/doUpdate/doReset hooks that concrete schemes implement,
 * so every scheme gets identical accounting for free.
 */
class DirectionPredictor
{
  public:
    virtual ~DirectionPredictor() = default;

    /** Predict taken/not-taken for the conditional branch at pc. */
    bool
    predict(Addr pc)
    {
        ++predictions_;
        return doPredict(pc);
    }

    /**
     * Train with the resolved direction. Re-derives the prediction
     * first to classify the outcome as a mispredict; callers train
     * immediately after predicting the same branch, so the table
     * state still matches prediction time.
     */
    void
    update(Addr pc, bool taken)
    {
        if (doPredict(pc) != taken)
            ++mispredicts_;
        doUpdate(pc, taken);
    }

    /** Reset all predictor state (statistics survive). */
    void reset() { doReset(); }

    std::uint64_t predictions() const { return predictions_; }
    std::uint64_t mispredicts() const { return mispredicts_; }
    void clearStats() { predictions_ = mispredicts_ = 0; }

    /** Register prediction/mispredict counters under `prefix`. */
    void reportMetrics(stats::MetricsRegistry &reg,
                       const std::string &prefix) const;

    /** Checkpoint counters plus the scheme's tables (doSave). */
    void save(snapshot::Serializer &s) const;

    /** Restore; throws SnapshotError on geometry mismatch. */
    void load(snapshot::Deserializer &d);

  protected:
    virtual bool doPredict(Addr pc) = 0;
    virtual void doUpdate(Addr pc, bool taken) = 0;
    virtual void doReset() = 0;
    virtual void doSave(snapshot::Serializer &s) const = 0;
    virtual void doLoad(snapshot::Deserializer &d) = 0;

  private:
    std::uint64_t predictions_ = 0;
    std::uint64_t mispredicts_ = 0;
};

/** Table of 2-bit saturating counters indexed by pc. */
class BimodalPredictor : public DirectionPredictor
{
  public:
    /** @param entries Table size; must be a power of two. */
    explicit BimodalPredictor(std::size_t entries = 16384);

  protected:
    bool doPredict(Addr pc) override;
    void doUpdate(Addr pc, bool taken) override;
    void doReset() override;
    void doSave(snapshot::Serializer &s) const override;
    void doLoad(snapshot::Deserializer &d) override;

  private:
    std::size_t indexOf(Addr pc) const
    {
        return static_cast<std::size_t>((pc >> 2) &
                                        (table_.size() - 1));
    }

    std::vector<std::uint8_t> table_;
};

/** Global-history predictor: index = (pc >> 2) XOR GHR. */
class GsharePredictor : public DirectionPredictor
{
  public:
    /**
     * @param entries     Table size; must be a power of two.
     * @param historyBits Global history length.
     */
    explicit GsharePredictor(std::size_t entries = 16384,
                             std::uint32_t historyBits = 12);

  protected:
    bool doPredict(Addr pc) override;
    void doUpdate(Addr pc, bool taken) override;
    void doReset() override;
    void doSave(snapshot::Serializer &s) const override;
    void doLoad(snapshot::Deserializer &d) override;

  private:
    std::size_t indexOf(Addr pc) const
    {
        return static_cast<std::size_t>(((pc >> 2) ^ history_) &
                                        (table_.size() - 1));
    }

    std::vector<std::uint8_t> table_;
    std::uint64_t history_ = 0;
    std::uint64_t historyMask_;
};

/**
 * Tournament predictor: bimodal and gshare components with a
 * per-pc chooser of 2-bit counters selecting whichever component
 * has been predicting this branch better (Alpha 21264 style).
 */
class TournamentPredictor : public DirectionPredictor
{
  public:
    explicit TournamentPredictor(std::size_t entries = 16384,
                                 std::uint32_t historyBits = 12);

  protected:
    bool doPredict(Addr pc) override;
    void doUpdate(Addr pc, bool taken) override;
    void doReset() override;
    void doSave(snapshot::Serializer &s) const override;
    void doLoad(snapshot::Deserializer &d) override;

  private:
    std::size_t chooserIndex(Addr pc) const
    {
        return static_cast<std::size_t>((pc >> 2) &
                                        (chooser_.size() - 1));
    }

    BimodalPredictor bimodal_;
    GsharePredictor gshare_;
    /** 0-1 favour bimodal, 2-3 favour gshare. */
    std::vector<std::uint8_t> chooser_;
};

/** Factory by name ("bimodal", "gshare", or "tournament"). */
std::unique_ptr<DirectionPredictor> makeDirectionPredictor(
    const std::string &kind);

} // namespace dlsim::branch

#endif // DLSIM_BRANCH_DIRECTION_HH
