#include "branch/predictor.hh"

#include "snapshot/serializer.hh"

namespace dlsim::branch
{

BranchPredictor::BranchPredictor(const PredictorParams &params)
    : btb_(params.btb),
      direction_(makeDirectionPredictor(params.direction)),
      ras_(params.rasDepth), indirect_(params.indirect)
{
}

Addr
BranchPredictor::predictNext(const isa::Instruction &inst, Addr pc)
{
    const Addr fallthrough = pc + inst.size;
    switch (inst.op) {
      case isa::Opcode::CondBr: {
        if (!direction_->predict(pc))
            return fallthrough;
        const auto target = btb_.lookup(pc);
        return target ? *target : fallthrough;
      }
      case isa::Opcode::CallRel: {
        ras_.push(fallthrough);
        const auto target = btb_.lookup(pc);
        return target ? *target : fallthrough;
      }
      case isa::Opcode::CallIndReg:
      case isa::Opcode::CallIndMem: {
        ras_.push(fallthrough);
        if (indirect_.params().enabled) {
            if (const auto t = indirect_.predict(pc))
                return *t;
        }
        const auto target = btb_.lookup(pc);
        return target ? *target : fallthrough;
      }
      case isa::Opcode::JmpRel: {
        const auto target = btb_.lookup(pc);
        return target ? *target : fallthrough;
      }
      case isa::Opcode::JmpIndReg:
      case isa::Opcode::JmpIndMem: {
        if (indirect_.params().enabled) {
            if (const auto t = indirect_.predict(pc))
                return *t;
        }
        const auto target = btb_.lookup(pc);
        return target ? *target : fallthrough;
      }
      case isa::Opcode::Ret: {
        const auto target = ras_.pop();
        return target ? *target : fallthrough;
      }
      default:
        return fallthrough;
    }
}

void
BranchPredictor::resolve(const isa::Instruction &inst, Addr pc,
                         bool taken, Addr effective_next)
{
    switch (inst.op) {
      case isa::Opcode::CondBr:
        direction_->update(pc, taken);
        if (taken)
            btb_.update(pc, effective_next);
        break;
      case isa::Opcode::CallRel:
      case isa::Opcode::JmpRel:
        btb_.update(pc, effective_next);
        break;
      case isa::Opcode::CallIndReg:
      case isa::Opcode::CallIndMem:
      case isa::Opcode::JmpIndReg:
      case isa::Opcode::JmpIndMem:
        btb_.update(pc, effective_next);
        if (indirect_.params().enabled)
            indirect_.update(pc, effective_next);
        break;
      case isa::Opcode::Ret:
        // The RAS self-corrects via pushes/pops.
        break;
      default:
        break;
    }
    if (indirect_.params().enabled && taken)
        indirect_.updateHistory(effective_next);
}

void
BranchPredictor::contextSwitch()
{
    ras_.clear();
    indirect_.reset();
}

void
BranchPredictor::clearStats()
{
    btb_.clearStats();
    direction_->clearStats();
    ras_.clearStats();
}

void
BranchPredictor::reportMetrics(stats::MetricsRegistry &reg,
                               const std::string &prefix) const
{
    btb_.reportMetrics(reg, prefix + ".btb");
    direction_->reportMetrics(reg, prefix + ".direction");
    ras_.reportMetrics(reg, prefix + ".ras");
}


void
BranchPredictor::save(snapshot::Serializer &s) const
{
    btb_.save(s);
    direction_->save(s);
    ras_.save(s);
    indirect_.save(s);
}

void
BranchPredictor::load(snapshot::Deserializer &d)
{
    btb_.load(d);
    direction_->load(d);
    ras_.load(d);
    indirect_.load(d);
}

} // namespace dlsim::branch
