/**
 * @file
 * Front-end branch predictor facade: BTB + direction predictor +
 * return address stack behind the two calls the core makes —
 * predictNext() at fetch and resolve() at branch resolution.
 *
 * The trampoline-skip mechanism needs no changes here: the core
 * passes the *effective* resolved target (possibly substituted by
 * the ABTB) into resolve(), and the standard update path trains the
 * BTB with it. This mirrors the paper's claim that the front end is
 * unmodified.
 */

#ifndef DLSIM_BRANCH_PREDICTOR_HH
#define DLSIM_BRANCH_PREDICTOR_HH

#include <memory>
#include <string>

#include "branch/btb.hh"
#include "branch/direction.hh"
#include "branch/indirect.hh"
#include "branch/ras.hh"
#include "isa/instruction.hh"

namespace dlsim::branch
{

/** Predictor configuration. */
struct PredictorParams
{
    BtbParams btb;
    std::string direction = "gshare";
    std::size_t rasDepth = 32;
    /** Optional VPC-style indirect target cache (§6 related work).*/
    IndirectPredictorParams indirect;
};

/** The front-end predictor ensemble. */
class BranchPredictor
{
  public:
    explicit BranchPredictor(const PredictorParams &params);

    /**
     * Fetch-time prediction of the next pc for a control-transfer
     * instruction at pc. Calls push the return address stack;
     * returns pop it.
     */
    Addr predictNext(const isa::Instruction &inst, Addr pc);

    /**
     * Resolution-time training.
     * @param taken          Whether the transfer redirected.
     * @param effective_next The correct next pc (post-ABTB).
     */
    void resolve(const isa::Instruction &inst, Addr pc, bool taken,
                 Addr effective_next);

    /** Context switch: clear the RAS (speculative state). */
    void contextSwitch();

    /** Clear all ensemble statistics (BTB, direction, RAS). */
    void clearStats();

    /** Register the whole ensemble's counters under `prefix`:
     *  `<prefix>.btb.*`, `<prefix>.direction.*`, `<prefix>.ras.*`. */
    void reportMetrics(stats::MetricsRegistry &reg,
                       const std::string &prefix) const;

    Btb &btb() { return btb_; }
    const Btb &btb() const { return btb_; }
    ReturnAddressStack &ras() { return ras_; }
    IndirectPredictor &indirect() { return indirect_; }

    /** Checkpoint the whole ensemble. */
    void save(snapshot::Serializer &s) const;
    void load(snapshot::Deserializer &d);

  private:
    Btb btb_;
    std::unique_ptr<DirectionPredictor> direction_;
    ReturnAddressStack ras_;
    IndirectPredictor indirect_;
};

} // namespace dlsim::branch

#endif // DLSIM_BRANCH_PREDICTOR_HH
