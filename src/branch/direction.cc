#include "branch/direction.hh"

#include <bit>
#include <cassert>
#include <stdexcept>

namespace dlsim::branch
{

namespace
{

constexpr std::uint8_t WeaklyNotTaken = 1;

std::uint8_t
bump(std::uint8_t counter, bool taken)
{
    if (taken)
        return counter < 3 ? counter + 1 : 3;
    return counter > 0 ? counter - 1 : 0;
}

} // namespace

BimodalPredictor::BimodalPredictor(std::size_t entries)
    : table_(entries, WeaklyNotTaken)
{
    assert(std::has_single_bit(entries));
}

bool
BimodalPredictor::predict(Addr pc)
{
    return table_[indexOf(pc)] >= 2;
}

void
BimodalPredictor::update(Addr pc, bool taken)
{
    auto &c = table_[indexOf(pc)];
    c = bump(c, taken);
}

void
BimodalPredictor::reset()
{
    std::fill(table_.begin(), table_.end(), WeaklyNotTaken);
}

GsharePredictor::GsharePredictor(std::size_t entries,
                                 std::uint32_t historyBits)
    : table_(entries, WeaklyNotTaken),
      historyMask_((1ull << historyBits) - 1)
{
    assert(std::has_single_bit(entries));
    assert(historyBits > 0 && historyBits < 64);
}

bool
GsharePredictor::predict(Addr pc)
{
    return table_[indexOf(pc)] >= 2;
}

void
GsharePredictor::update(Addr pc, bool taken)
{
    auto &c = table_[indexOf(pc)];
    c = bump(c, taken);
    history_ = ((history_ << 1) | (taken ? 1 : 0)) & historyMask_;
}

void
GsharePredictor::reset()
{
    std::fill(table_.begin(), table_.end(), WeaklyNotTaken);
    history_ = 0;
}

TournamentPredictor::TournamentPredictor(std::size_t entries,
                                         std::uint32_t historyBits)
    : bimodal_(entries), gshare_(entries, historyBits),
      chooser_(entries, 2) // weakly favour gshare
{
    assert(std::has_single_bit(entries));
}

bool
TournamentPredictor::predict(Addr pc)
{
    const bool use_gshare = chooser_[chooserIndex(pc)] >= 2;
    return use_gshare ? gshare_.predict(pc)
                      : bimodal_.predict(pc);
}

void
TournamentPredictor::update(Addr pc, bool taken)
{
    const bool b = bimodal_.predict(pc) == taken;
    const bool g = gshare_.predict(pc) == taken;
    auto &choice = chooser_[chooserIndex(pc)];
    if (g && !b) {
        choice = bump(choice, true);
    } else if (b && !g) {
        choice = bump(choice, false);
    }
    bimodal_.update(pc, taken);
    gshare_.update(pc, taken);
}

void
TournamentPredictor::reset()
{
    bimodal_.reset();
    gshare_.reset();
    std::fill(chooser_.begin(), chooser_.end(), 2);
}

std::unique_ptr<DirectionPredictor>
makeDirectionPredictor(const std::string &kind)
{
    if (kind == "bimodal")
        return std::make_unique<BimodalPredictor>();
    if (kind == "gshare")
        return std::make_unique<GsharePredictor>();
    if (kind == "tournament")
        return std::make_unique<TournamentPredictor>();
    throw std::invalid_argument("unknown direction predictor: " +
                                kind);
}

} // namespace dlsim::branch
