#include "branch/direction.hh"

#include <bit>
#include <cassert>
#include <stdexcept>

#include "snapshot/serializer.hh"

#include "stats/metrics.hh"

namespace dlsim::branch
{

void
DirectionPredictor::reportMetrics(stats::MetricsRegistry &reg,
                                  const std::string &prefix) const
{
    reg.counter(prefix + ".predictions", predictions_);
    reg.counter(prefix + ".mispredicts", mispredicts_);
    reg.gauge(prefix + ".mispredict_rate",
              predictions_ == 0
                  ? 0.0
                  : static_cast<double>(mispredicts_) /
                        static_cast<double>(predictions_));
}

namespace
{

constexpr std::uint8_t WeaklyNotTaken = 1;

std::uint8_t
bump(std::uint8_t counter, bool taken)
{
    if (taken)
        return counter < 3 ? counter + 1 : 3;
    return counter > 0 ? counter - 1 : 0;
}

} // namespace

BimodalPredictor::BimodalPredictor(std::size_t entries)
    : table_(entries, WeaklyNotTaken)
{
    assert(std::has_single_bit(entries));
}

bool
BimodalPredictor::doPredict(Addr pc)
{
    return table_[indexOf(pc)] >= 2;
}

void
BimodalPredictor::doUpdate(Addr pc, bool taken)
{
    auto &c = table_[indexOf(pc)];
    c = bump(c, taken);
}

void
BimodalPredictor::doReset()
{
    std::fill(table_.begin(), table_.end(), WeaklyNotTaken);
}

GsharePredictor::GsharePredictor(std::size_t entries,
                                 std::uint32_t historyBits)
    : table_(entries, WeaklyNotTaken),
      historyMask_((1ull << historyBits) - 1)
{
    assert(std::has_single_bit(entries));
    assert(historyBits > 0 && historyBits < 64);
}

bool
GsharePredictor::doPredict(Addr pc)
{
    return table_[indexOf(pc)] >= 2;
}

void
GsharePredictor::doUpdate(Addr pc, bool taken)
{
    auto &c = table_[indexOf(pc)];
    c = bump(c, taken);
    history_ = ((history_ << 1) | (taken ? 1 : 0)) & historyMask_;
}

void
GsharePredictor::doReset()
{
    std::fill(table_.begin(), table_.end(), WeaklyNotTaken);
    history_ = 0;
}

TournamentPredictor::TournamentPredictor(std::size_t entries,
                                         std::uint32_t historyBits)
    : bimodal_(entries), gshare_(entries, historyBits),
      chooser_(entries, 2) // weakly favour gshare
{
    assert(std::has_single_bit(entries));
}

bool
TournamentPredictor::doPredict(Addr pc)
{
    const bool use_gshare = chooser_[chooserIndex(pc)] >= 2;
    return use_gshare ? gshare_.predict(pc)
                      : bimodal_.predict(pc);
}

void
TournamentPredictor::doUpdate(Addr pc, bool taken)
{
    const bool b = bimodal_.predict(pc) == taken;
    const bool g = gshare_.predict(pc) == taken;
    auto &choice = chooser_[chooserIndex(pc)];
    if (g && !b) {
        choice = bump(choice, true);
    } else if (b && !g) {
        choice = bump(choice, false);
    }
    bimodal_.update(pc, taken);
    gshare_.update(pc, taken);
}

void
TournamentPredictor::doReset()
{
    bimodal_.reset();
    gshare_.reset();
    std::fill(chooser_.begin(), chooser_.end(), 2);
}

std::unique_ptr<DirectionPredictor>
makeDirectionPredictor(const std::string &kind)
{
    if (kind == "bimodal")
        return std::make_unique<BimodalPredictor>();
    if (kind == "gshare")
        return std::make_unique<GsharePredictor>();
    if (kind == "tournament")
        return std::make_unique<TournamentPredictor>();
    throw std::invalid_argument("unknown direction predictor: " +
                                kind);
}


void
DirectionPredictor::save(snapshot::Serializer &s) const
{
    s.beginStruct("dir");
    s.u64(predictions_);
    s.u64(mispredicts_);
    s.endStruct();
    doSave(s);
}

void
DirectionPredictor::load(snapshot::Deserializer &d)
{
    d.enterStruct("dir");
    predictions_ = d.u64();
    mispredicts_ = d.u64();
    d.leaveStruct();
    doLoad(d);
}

void
BimodalPredictor::doSave(snapshot::Serializer &s) const
{
    s.beginStruct("bimodal");
    s.u64(table_.size());
    s.bytes(table_.data(), table_.size());
    s.endStruct();
}

void
BimodalPredictor::doLoad(snapshot::Deserializer &d)
{
    d.enterStruct("bimodal");
    d.checkU64(table_.size(), "bimodal table size");
    d.bytes(table_.data(), table_.size());
    d.leaveStruct();
}

void
GsharePredictor::doSave(snapshot::Serializer &s) const
{
    s.beginStruct("gshare");
    s.u64(table_.size());
    s.u64(historyMask_);
    s.u64(history_);
    s.bytes(table_.data(), table_.size());
    s.endStruct();
}

void
GsharePredictor::doLoad(snapshot::Deserializer &d)
{
    d.enterStruct("gshare");
    d.checkU64(table_.size(), "gshare table size");
    d.checkU64(historyMask_, "gshare history mask");
    history_ = d.u64();
    d.bytes(table_.data(), table_.size());
    d.leaveStruct();
}

void
TournamentPredictor::doSave(snapshot::Serializer &s) const
{
    s.beginStruct("tourn");
    s.u64(chooser_.size());
    s.bytes(chooser_.data(), chooser_.size());
    s.endStruct();
    // Component predictors carry their own (accruing) counters, so
    // they roundtrip through their full save/load, not doSave.
    bimodal_.save(s);
    gshare_.save(s);
}

void
TournamentPredictor::doLoad(snapshot::Deserializer &d)
{
    d.enterStruct("tourn");
    d.checkU64(chooser_.size(), "tournament chooser size");
    d.bytes(chooser_.data(), chooser_.size());
    d.leaveStruct();
    bimodal_.load(d);
    gshare_.load(d);
}

} // namespace dlsim::branch
