#include "branch/btb.hh"

#include <bit>
#include <cassert>

#include "snapshot/serializer.hh"

#include "stats/metrics.hh"

namespace dlsim::branch
{

Btb::Btb(const BtbParams &params) : params_(params)
{
    assert(params_.assoc > 0 && params_.entries >= params_.assoc);
    numSets_ = params_.entries / params_.assoc;
    assert(std::has_single_bit(numSets_));
    entries_.resize(numSets_ * params_.assoc);
}

std::optional<Addr>
Btb::lookup(Addr pc)
{
    ++lookups_;
    ++tick_;
    Entry *base = &entries_[setOf(pc) * params_.assoc];
    for (std::uint32_t w = 0; w < params_.assoc; ++w) {
        Entry &e = base[w];
        if (e.valid && e.pc == pc) {
            e.lastUse = tick_;
            ++hits_;
            return e.target;
        }
    }
    return std::nullopt;
}

Btb::Entry *
Btb::findVictim(std::size_t set)
{
    Entry *base = &entries_[set * params_.assoc];
    Entry *victim = base;
    for (std::uint32_t w = 0; w < params_.assoc; ++w) {
        Entry &e = base[w];
        if (!e.valid)
            return &e; // first invalid entry, deterministically
        if (e.lastUse < victim->lastUse)
            victim = &e;
    }
    return victim;
}

void
Btb::update(Addr pc, Addr target)
{
    ++tick_;
    Entry *base = &entries_[setOf(pc) * params_.assoc];
    for (std::uint32_t w = 0; w < params_.assoc; ++w) {
        Entry &e = base[w];
        if (e.valid && e.pc == pc) {
            e.target = target;
            e.lastUse = tick_;
            return;
        }
    }
    Entry *victim = findVictim(setOf(pc));
    if (victim->valid)
        ++evictions_;
    victim->valid = true;
    victim->pc = pc;
    victim->target = target;
    victim->lastUse = tick_;
}

void
Btb::invalidate(Addr pc)
{
    Entry *base = &entries_[setOf(pc) * params_.assoc];
    for (std::uint32_t w = 0; w < params_.assoc; ++w) {
        if (base[w].valid && base[w].pc == pc)
            base[w].valid = false;
    }
}

void
Btb::invalidateAll()
{
    for (auto &e : entries_)
        e.valid = false;
}

void
Btb::reportMetrics(stats::MetricsRegistry &reg,
                   const std::string &prefix) const
{
    reg.counter(prefix + ".lookups", lookups_);
    reg.counter(prefix + ".hits", hits_);
    reg.counter(prefix + ".misses", misses());
    reg.counter(prefix + ".evictions", evictions_);
}


void
Btb::save(snapshot::Serializer &s) const
{
    s.beginStruct("btb");
    s.u32(params_.entries);
    s.u32(params_.assoc);
    s.u64(tick_);
    s.u64(lookups_);
    s.u64(hits_);
    s.u64(evictions_);
    for (const Entry &e : entries_) {
        s.u64(e.pc);
        s.u64(e.target);
        s.boolean(e.valid);
        s.u64(e.lastUse);
    }
    s.endStruct();
}

void
Btb::load(snapshot::Deserializer &d)
{
    d.enterStruct("btb");
    d.checkU32(params_.entries, "btb entries");
    d.checkU32(params_.assoc, "btb assoc");
    tick_ = d.u64();
    lookups_ = d.u64();
    hits_ = d.u64();
    evictions_ = d.u64();
    // Bulk-unpack (u64 pc, u64 target, bool, u64 lastUse = 25
    // bytes/entry, matching save()); see Cache::load.
    constexpr std::size_t EntryWireBytes = 25;
    const std::uint8_t *p = d.raw(entries_.size() * EntryWireBytes);
    for (Entry &e : entries_) {
        e.pc = snapshot::le64(p);
        e.target = snapshot::le64(p + 8);
        e.valid = p[16] != 0;
        e.lastUse = snapshot::le64(p + 17);
        p += EntryWireBytes;
    }
    d.leaveStruct();
}

} // namespace dlsim::branch
