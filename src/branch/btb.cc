#include "branch/btb.hh"

#include <bit>
#include <cassert>

namespace dlsim::branch
{

Btb::Btb(const BtbParams &params) : params_(params)
{
    assert(params_.assoc > 0 && params_.entries >= params_.assoc);
    numSets_ = params_.entries / params_.assoc;
    assert(std::has_single_bit(numSets_));
    entries_.resize(numSets_ * params_.assoc);
}

std::optional<Addr>
Btb::lookup(Addr pc)
{
    ++lookups_;
    ++tick_;
    Entry *base = &entries_[setOf(pc) * params_.assoc];
    for (std::uint32_t w = 0; w < params_.assoc; ++w) {
        Entry &e = base[w];
        if (e.valid && e.pc == pc) {
            e.lastUse = tick_;
            ++hits_;
            return e.target;
        }
    }
    return std::nullopt;
}

void
Btb::update(Addr pc, Addr target)
{
    ++tick_;
    Entry *base = &entries_[setOf(pc) * params_.assoc];
    Entry *victim = base;
    for (std::uint32_t w = 0; w < params_.assoc; ++w) {
        Entry &e = base[w];
        if (e.valid && e.pc == pc) {
            e.target = target;
            e.lastUse = tick_;
            return;
        }
        if (!e.valid) {
            victim = &e;
        } else if (victim->valid && e.lastUse < victim->lastUse) {
            victim = &e;
        }
    }
    victim->valid = true;
    victim->pc = pc;
    victim->target = target;
    victim->lastUse = tick_;
}

void
Btb::invalidate(Addr pc)
{
    Entry *base = &entries_[setOf(pc) * params_.assoc];
    for (std::uint32_t w = 0; w < params_.assoc; ++w) {
        if (base[w].valid && base[w].pc == pc)
            base[w].valid = false;
    }
}

void
Btb::invalidateAll()
{
    for (auto &e : entries_)
        e.valid = false;
}

} // namespace dlsim::branch
