/**
 * @file
 * Return address stack used to predict `ret` targets.
 */

#ifndef DLSIM_BRANCH_RAS_HH
#define DLSIM_BRANCH_RAS_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "isa/instruction.hh"

namespace dlsim::stats
{
class MetricsRegistry;
}

namespace dlsim::snapshot
{
class Serializer;
class Deserializer;
}

namespace dlsim::branch
{

using isa::Addr;

/**
 * Circular return address stack. Overflow silently wraps (overwriting
 * the oldest entry) and underflow predicts nothing, matching typical
 * hardware behaviour.
 */
class ReturnAddressStack
{
  public:
    explicit ReturnAddressStack(std::size_t depth = 32);

    /** Push the return address of a call. */
    void push(Addr ret_addr);

    /** Pop the predicted target of a ret, if the stack is nonempty. */
    std::optional<Addr> pop();

    /** Reset (context switch). */
    void clear();

    std::size_t depth() const { return stack_.size(); }
    std::size_t occupancy() const { return occupancy_; }

    std::uint64_t pushes() const { return pushes_; }
    std::uint64_t pops() const { return pops_; }
    std::uint64_t underflows() const { return underflows_; }
    void clearStats() { pushes_ = pops_ = underflows_ = 0; }

    /** Register push/pop/underflow counters under `prefix`. */
    void reportMetrics(stats::MetricsRegistry &reg,
                       const std::string &prefix) const;

    /** Checkpoint the stack and counters. */
    void save(snapshot::Serializer &s) const;

    /** Restore; throws SnapshotError on depth mismatch. */
    void load(snapshot::Deserializer &d);

  private:
    std::vector<Addr> stack_;
    std::size_t top_ = 0;
    std::size_t occupancy_ = 0;
    std::uint64_t pushes_ = 0;
    std::uint64_t pops_ = 0;
    std::uint64_t underflows_ = 0;
};

} // namespace dlsim::branch

#endif // DLSIM_BRANCH_RAS_HH
