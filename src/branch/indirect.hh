/**
 * @file
 * Path-history-based indirect-target predictor.
 *
 * The paper's related work (§6) discusses VPC prediction [Kim et
 * al., ISCA'07] as hardware devirtualisation for indirect branches.
 * dlsim provides a classic target cache indexed by pc hashed with a
 * folded path history, so polymorphic indirect branches (virtual
 * calls through changing receivers) can be predicted where a plain
 * BTB holds only the last target. Trampoline branches are
 * monomorphic after resolution, so this structure neither helps nor
 * harms the mechanism — which the front-end ablation demonstrates.
 */

#ifndef DLSIM_BRANCH_INDIRECT_HH
#define DLSIM_BRANCH_INDIRECT_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "isa/instruction.hh"

namespace dlsim::snapshot
{
class Serializer;
class Deserializer;
}

namespace dlsim::branch
{

using isa::Addr;

/** Indirect target cache geometry. */
struct IndirectPredictorParams
{
    /** Use the target cache for indirect transfers (otherwise the
     *  BTB's last-target behaviour applies). */
    bool enabled = false;
    std::uint32_t entries = 512;
    std::uint32_t assoc = 4;
    std::uint32_t historyBits = 8;
};

/** Tagged, path-history-indexed target cache. */
class IndirectPredictor
{
  public:
    explicit IndirectPredictor(
        const IndirectPredictorParams &params = {});

    /** Predicted target for the indirect branch at pc, if any. */
    std::optional<Addr> predict(Addr pc);

    /** Train with the resolved target (same history point). */
    void update(Addr pc, Addr target);

    /** Fold a taken-transfer target into the path history. */
    void updateHistory(Addr target);

    /** Context switch. */
    void reset();

    const IndirectPredictorParams &params() const
    {
        return params_;
    }

    /** Checkpoint contents, path history, and LRU state. */
    void save(snapshot::Serializer &s) const;

    /** Restore; throws SnapshotError on geometry mismatch. */
    void load(snapshot::Deserializer &d);

  private:
    struct Entry
    {
        std::uint64_t tag = 0;
        Addr target = 0;
        bool valid = false;
        std::uint64_t lastUse = 0;
    };

    std::uint64_t indexTag(Addr pc) const;

    IndirectPredictorParams params_;
    std::uint64_t numSets_;
    std::vector<Entry> entries_;
    std::uint64_t history_ = 0;
    std::uint64_t tick_ = 0;
};

} // namespace dlsim::branch

#endif // DLSIM_BRANCH_INDIRECT_HH
