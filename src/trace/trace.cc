#include "trace/trace.hh"

#include <cstring>

namespace dlsim::trace
{

namespace
{

constexpr std::size_t EventBytes = 1 + 1 + 1 + 1 + 8 + 8 + 8;
constexpr std::size_t HeaderBytes = 4 + 4 + 8;
constexpr std::size_t FlushThreshold = 1 << 20;

void
put64(std::vector<std::uint8_t> &buf, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint64_t
get64(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

} // namespace

TraceWriter::TraceWriter(const std::string &path)
    : out_(path, std::ios::binary | std::ios::trunc)
{
    buffer_.reserve(FlushThreshold + EventBytes);
    // Placeholder header; count patched in close().
    std::vector<std::uint8_t> header;
    put64(header, (std::uint64_t{TraceVersion} << 32) | TraceMagic);
    put64(header, 0);
    out_.write(reinterpret_cast<const char *>(header.data()),
               static_cast<std::streamsize>(header.size()));
}

TraceWriter::~TraceWriter()
{
    if (!closed_)
        close();
}

void
TraceWriter::append(const TraceEvent &event)
{
    buffer_.push_back(static_cast<std::uint8_t>(event.kind));
    buffer_.push_back(static_cast<std::uint8_t>(event.op));
    buffer_.push_back(event.flags);
    buffer_.push_back(event.taken);
    put64(buffer_, event.pc);
    put64(buffer_, event.addr);
    put64(buffer_, event.loadSrc);
    ++count_;
    if (buffer_.size() >= FlushThreshold) {
        out_.write(reinterpret_cast<const char *>(buffer_.data()),
                   static_cast<std::streamsize>(buffer_.size()));
        buffer_.clear();
    }
}

void
TraceWriter::close()
{
    if (closed_)
        return;
    closed_ = true;
    if (!buffer_.empty()) {
        out_.write(reinterpret_cast<const char *>(buffer_.data()),
                   static_cast<std::streamsize>(buffer_.size()));
        buffer_.clear();
    }
    // Patch the event count into the header.
    out_.seekp(8);
    std::vector<std::uint8_t> c;
    put64(c, count_);
    out_.write(reinterpret_cast<const char *>(c.data()), 8);
    out_.flush();
}

TraceReader::TraceReader(const std::string &path)
    : in_(path, std::ios::binary)
{
    if (!in_.good()) {
        error_ = TraceError::OpenFailed;
        return;
    }
    in_.seekg(0, std::ios::end);
    const auto end = in_.tellg();
    in_.seekg(0);
    if (end < static_cast<std::streamoff>(HeaderBytes)) {
        error_ = TraceError::Truncated;
        return;
    }
    std::uint8_t header[HeaderBytes];
    in_.read(reinterpret_cast<char *>(header), HeaderBytes);
    if (!in_.good()) {
        error_ = TraceError::Truncated;
        return;
    }
    const std::uint64_t magic = get64(header);
    if ((magic & 0xffffffffull) != TraceMagic) {
        error_ = TraceError::BadMagic;
        return;
    }
    if ((magic >> 32) != TraceVersion) {
        error_ = TraceError::BadVersion;
        return;
    }
    count_ = get64(header + 8);
    // The record stream must be exactly count_ events long: a
    // short file would silently truncate a replay, a long one
    // indicates an interrupted rewrite or foreign data.
    const std::uint64_t expect =
        HeaderBytes + count_ * EventBytes;
    if (static_cast<std::uint64_t>(end) != expect) {
        error_ = TraceError::BadLength;
        count_ = 0;
        return;
    }
    error_ = TraceError::None;
    good_ = true;
}

const char *
TraceReader::errorString() const
{
    switch (error_) {
    case TraceError::None:
        return "no error";
    case TraceError::OpenFailed:
        return "cannot open trace file";
    case TraceError::BadMagic:
        return "bad magic (not a dlsim trace)";
    case TraceError::BadVersion:
        return "unsupported trace format version";
    case TraceError::BadLength:
        return "file length inconsistent with event count "
               "(truncated or corrupt trace)";
    case TraceError::Truncated:
        return "trace ended mid-record";
    }
    return "unknown error";
}

bool
TraceReader::next(TraceEvent &event)
{
    if (!good_ || read_ >= count_)
        return false;
    std::uint8_t raw[EventBytes];
    in_.read(reinterpret_cast<char *>(raw), EventBytes);
    if (!in_.good()) {
        good_ = false;
        error_ = TraceError::Truncated;
        return false;
    }
    event.kind = static_cast<EventKind>(raw[0]);
    event.op = static_cast<isa::Opcode>(raw[1]);
    event.flags = raw[2];
    event.taken = raw[3];
    event.pc = get64(raw + 4);
    event.addr = get64(raw + 12);
    event.loadSrc = get64(raw + 20);
    ++read_;
    return true;
}

void
TraceReader::rewind()
{
    if (!good_)
        return;
    in_.clear();
    in_.seekg(HeaderBytes);
    read_ = 0;
}

} // namespace dlsim::trace
