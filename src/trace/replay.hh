/**
 * @file
 * Trace-driven replay of the trampoline-skip mechanism.
 *
 * Replays a base-machine retire trace through a TrampolineSkipUnit
 * and reports what the mechanism *would* have done — populations,
 * substitutions (skips), and flushes — without functional
 * simulation. A single recorded run can be swept against many ABTB
 * and bloom-filter geometries in a fraction of the time, exactly
 * how the paper evaluated ABTB sizes against its Pin collections
 * (Fig. 5).
 *
 * Caveat inherited from the paper's methodology: the trace comes
 * from the *base* machine, whose retire stream still contains the
 * trampolines; in the enhanced machine, skipped trampolines would
 * not retire and hence not repopulate the ABTB. Replay therefore
 * slightly over-counts populations and under-counts nothing — the
 * skip-rate estimate is conservative.
 */

#ifndef DLSIM_TRACE_REPLAY_HH
#define DLSIM_TRACE_REPLAY_HH

#include <cstdint>

#include "core/skip_unit.hh"
#include "trace/trace.hh"

namespace dlsim::trace
{

/** Outcome of one replay. */
struct ReplayResult
{
    std::uint64_t events = 0;
    std::uint64_t controlTransfers = 0;
    std::uint64_t stores = 0;
    /** Trampoline executions in the trace (FlagPltJmp retires). */
    std::uint64_t trampolineExecutions = 0;
    /** Trampoline executions whose entering branch would have been
     *  substituted (skipped) by the mechanism. */
    std::uint64_t wouldSkip = 0;
    core::SkipUnitStats skipStats;

    double skipRate() const
    {
        return trampolineExecutions == 0
                   ? 0.0
                   : static_cast<double>(wouldSkip) /
                         static_cast<double>(
                             trampolineExecutions);
    }
};

/**
 * Replay a trace against a freshly constructed skip unit.
 * The reader is rewound first.
 */
ReplayResult replaySkipUnit(TraceReader &reader,
                            const core::SkipUnitParams &params);

} // namespace dlsim::trace

#endif // DLSIM_TRACE_REPLAY_HH
