#include "trace/replay.hh"

namespace dlsim::trace
{

namespace
{

/** FlagPltJmp as written by the core (mirrors linker::SlotFlag). */
constexpr std::uint8_t FlagPltJmpBit = 2;

} // namespace

ReplayResult
replaySkipUnit(TraceReader &reader,
               const core::SkipUnitParams &params)
{
    reader.rewind();
    core::TrampolineSkipUnit unit(params);
    ReplayResult result;

    // While "skipping" a trampoline the enhanced machine would not
    // retire its instructions, so they must not reach the unit.
    bool skipping = false;
    std::uint32_t skip_budget = 0;

    TraceEvent event;
    while (reader.next(event)) {
        ++result.events;

        if (skipping) {
            if (event.kind == EventKind::Other &&
                skip_budget > 0) {
                // ARM-style address-materialising prologue.
                --skip_budget;
                continue;
            }
            if (event.kind == EventKind::Control &&
                (event.flags & FlagPltJmpBit)) {
                // The trampoline's own indirect jump: elided.
                ++result.trampolineExecutions;
                skipping = false;
                continue;
            }
            // Anything else means the skip window closed.
            skipping = false;
        }

        switch (event.kind) {
          case EventKind::Control: {
            ++result.controlTransfers;
            if (event.flags & FlagPltJmpBit)
                ++result.trampolineExecutions;
            if (event.taken) {
                if (unit.substituteTarget(event.addr)) {
                    // The enhanced machine redirects to the
                    // memoized function; the trampoline that
                    // follows in this base trace is never
                    // fetched.
                    ++result.wouldSkip;
                    skipping = true;
                    skip_budget = params.patternWindow;
                }
            }
            unit.retireControl(event.op, event.addr,
                               event.loadSrc);
            break;
          }
          case EventKind::Store:
            ++result.stores;
            unit.retireStore(event.addr);
            break;
          case EventKind::Other:
            unit.retireOther();
            break;
        }
    }

    result.skipStats = unit.stats();
    return result;
}

} // namespace dlsim::trace
