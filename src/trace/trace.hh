/**
 * @file
 * Retire-stream tracing: the Intel-Pin analogue of the paper's
 * methodology (§4.3), generalised.
 *
 * A trace records the events the front-end structures care about —
 * control transfers (with resolved targets and, for memory-indirect
 * ones, the GOT load source) and stores (for bloom-filter snooping)
 * — so that mechanism configurations can be swept by *replaying* a
 * single base-machine run instead of re-simulating it. This is
 * exactly the experimental structure the paper used: collect with
 * Pin once, evaluate many configurations against the collection.
 *
 * The format is a flat stream of fixed-size little-endian records
 * with a small header; no compression (traces are short-lived
 * experiment artefacts).
 */

#ifndef DLSIM_TRACE_TRACE_HH
#define DLSIM_TRACE_TRACE_HH

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "isa/instruction.hh"
#include "isa/opcode.hh"

namespace dlsim::trace
{

using isa::Addr;

/** Record kinds. */
enum class EventKind : std::uint8_t
{
    Control = 1, ///< A retired control transfer.
    Store = 2,   ///< A retired store (address only).
    Other = 3,   ///< Any other retired instruction (count only).
};

/** One trace event (fixed 26-byte wire format). */
struct TraceEvent
{
    EventKind kind = EventKind::Other;
    isa::Opcode op = isa::Opcode::Nop;
    /** FlagPlt-style bits for control events. */
    std::uint8_t flags = 0;
    std::uint8_t taken = 0;
    Addr pc = 0;
    /** Resolved target (Control) or store address (Store). */
    Addr addr = 0;
    /** GOT load source for memory-indirect control. */
    Addr loadSrc = 0;
};

/** Magic + version at the head of every trace file. */
constexpr std::uint32_t TraceMagic = 0x444c5452; // "DLTR"
constexpr std::uint32_t TraceVersion = 1;

/** Streaming trace writer. */
class TraceWriter
{
  public:
    explicit TraceWriter(const std::string &path);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** True when the file opened successfully. */
    bool good() const { return out_.good(); }

    void append(const TraceEvent &event);

    /** Events written so far. */
    std::uint64_t count() const { return count_; }

    /** Flush and finalise the header. */
    void close();

  private:
    std::ofstream out_;
    std::vector<std::uint8_t> buffer_;
    std::uint64_t count_ = 0;
    bool closed_ = false;
};

/** Why a TraceReader is not good(). */
enum class TraceError : std::uint8_t
{
    None = 0,
    OpenFailed, ///< File missing or unreadable.
    BadMagic,   ///< Not a dlsim trace file.
    BadVersion, ///< Trace format version mismatch.
    BadLength,  ///< File size inconsistent with the header count.
    Truncated,  ///< Stream ended mid-record.
};

/**
 * Streaming trace reader.
 *
 * The whole file is validated up front: magic, version, and that
 * the byte length matches the header's event count exactly. A
 * corrupt or truncated trace is reported through error() instead of
 * silently yielding a partial event stream (which would make a
 * replay experiment quietly measure a shorter run).
 */
class TraceReader
{
  public:
    explicit TraceReader(const std::string &path);

    bool good() const { return good_; }

    /** Why the reader is bad (None while good()). */
    TraceError error() const { return error_; }

    /** Human-readable form of error(). */
    const char *errorString() const;

    /** Total events per the header. */
    std::uint64_t count() const { return count_; }

    /** Read the next event. @return False at end of trace (or on
     *  a mid-record truncation, which also sets error()). */
    bool next(TraceEvent &event);

    /** Rewind to the first event. */
    void rewind();

  private:
    std::ifstream in_;
    std::uint64_t count_ = 0;
    std::uint64_t read_ = 0;
    bool good_ = false;
    TraceError error_ = TraceError::OpenFailed;
};

} // namespace dlsim::trace

#endif // DLSIM_TRACE_TRACE_HH
