/**
 * @file
 * Register identifiers for the dlsim abstract ISA.
 *
 * The ISA models an x86-64-class machine: 16 general-purpose 64-bit
 * registers, with one register architecturally designated as the stack
 * pointer (used implicitly by push/pop/call/ret).
 */

#ifndef DLSIM_ISA_REGISTERS_HH
#define DLSIM_ISA_REGISTERS_HH

#include <cstdint>

namespace dlsim::isa
{

/** Register index type. */
using Reg = std::uint8_t;

/** Number of general-purpose registers. */
constexpr Reg NumRegs = 16;

/** The stack pointer (x86-64 %rsp analogue). */
constexpr Reg RegSp = 15;

/** Conventional return-value register (%rax analogue). */
constexpr Reg RegRet = 0;

/** First argument register (%rdi analogue). */
constexpr Reg RegArg0 = 1;

/** Second argument register. */
constexpr Reg RegArg1 = 2;

/** Third argument register. */
constexpr Reg RegArg2 = 3;

/** Sentinel meaning "no register operand". */
constexpr Reg NoReg = 0xff;

} // namespace dlsim::isa

#endif // DLSIM_ISA_REGISTERS_HH
