/**
 * @file
 * The decoded-instruction representation and its builders.
 *
 * dlsim keeps instructions decoded (a module's text section is a
 * vector of Instruction plus byte offsets). Instructions still have
 * realistic byte sizes so that instruction-cache and I-TLB behaviour
 * — a first-class concern of the paper — is modelled faithfully: PLT
 * trampolines occupy 16 bytes, exactly as on x86-64 ELF, so four
 * trampolines fit a 64-byte cache line.
 */

#ifndef DLSIM_ISA_INSTRUCTION_HH
#define DLSIM_ISA_INSTRUCTION_HH

#include <cstdint>
#include <string>

#include "isa/opcode.hh"
#include "isa/registers.hh"

namespace dlsim::isa
{

/** Virtual address type used throughout the simulator. */
using Addr = std::uint64_t;

/** Maximum reach of a rel32 displacement, as on x86-64 (±2GB). */
constexpr std::int64_t Rel32Max = (1ll << 31) - 1;
constexpr std::int64_t Rel32Min = -(1ll << 31);

/**
 * One decoded instruction.
 *
 * Fields are interpreted per opcode:
 *  - IntAlu: dst = src1 <alu> (src2, or imm when src2 == NoReg)
 *  - Load/Store and memory-indirect control: effective address is
 *    regs[memBase] + imm, or the absolute address imm when memBase ==
 *    NoReg (standing in for x86-64 RIP-relative addressing)
 *  - CallRel/JmpRel/CondBr: imm is a signed displacement from the
 *    address of the *next* instruction, limited to rel32 reach
 */
struct Instruction
{
    Opcode op = Opcode::Nop;
    std::uint8_t size = 1;      ///< Encoded size in bytes (1..15).
    AluKind alu = AluKind::Add;
    CondKind cond = CondKind::Ne0;
    Reg dst = NoReg;
    Reg src1 = NoReg;
    Reg src2 = NoReg;
    Reg memBase = NoReg;
    std::int64_t imm = 0;

    /** Disassemble for diagnostics, given the instruction's pc. */
    std::string toString(Addr pc = 0) const;
};

/** @name Instruction factories
 *  Convenience constructors producing instructions with the byte
 *  sizes of their closest x86-64 encodings.
 *  @{
 */
Instruction makeNop();
Instruction makeAlu(AluKind kind, Reg dst, Reg src1, Reg src2);
Instruction makeAluImm(AluKind kind, Reg dst, Reg src1,
                       std::int64_t imm);
Instruction makeMovImm(Reg dst, std::int64_t imm);
Instruction makeLoad(Reg dst, Reg base, std::int64_t disp);
Instruction makeStore(Reg src, Reg base, std::int64_t disp);
Instruction makePush(Reg src);
Instruction makePushImm(std::int64_t imm);
Instruction makePop(Reg dst);
Instruction makeCallRel(std::int64_t disp);
Instruction makeCallIndReg(Reg target);
Instruction makeCallIndMem(Reg base, std::int64_t disp);
Instruction makeJmpRel(std::int64_t disp);
Instruction makeJmpIndReg(Reg target);
Instruction makeJmpIndMem(Reg base, std::int64_t disp);
Instruction makeJmpIndMemAbs(Addr addr);
Instruction makeCondBr(CondKind cond, Reg src, std::int64_t disp);
Instruction makeRet();
Instruction makeHalt();
Instruction makeAbtbFlush();
/** @} */

} // namespace dlsim::isa

#endif // DLSIM_ISA_INSTRUCTION_HH
