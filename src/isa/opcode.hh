/**
 * @file
 * Opcodes of the dlsim abstract ISA and their static classification.
 *
 * The set is deliberately small but covers everything the paper's
 * mechanism interacts with: plain integer work, loads/stores, the full
 * family of control transfers (direct/indirect call and jump,
 * conditional branch, return), stack operations (calls push their
 * return address, as on x86-64), and the `AbtbFlush` instruction of
 * the paper's §3.4 alternate implementation.
 */

#ifndef DLSIM_ISA_OPCODE_HH
#define DLSIM_ISA_OPCODE_HH

#include <cstdint>
#include <string_view>

namespace dlsim::isa
{

/** Instruction opcodes. */
enum class Opcode : std::uint8_t
{
    Nop,        ///< No operation.
    IntAlu,     ///< dst = src1 <aluKind> (src2 or imm).
    MovImm,     ///< dst = imm.
    Load,       ///< dst = mem64[base + disp].
    Store,      ///< mem64[base + disp] = src1.
    Push,       ///< sp -= 8; mem64[sp] = src1.
    PushImm,    ///< sp -= 8; mem64[sp] = imm (PLT relocation index).
    Pop,        ///< dst = mem64[sp]; sp += 8.
    CallRel,    ///< push return address; pc = next + disp (rel32).
    CallIndReg, ///< push return address; pc = src1.
    CallIndMem, ///< push return address; pc = mem64[base + disp].
    JmpRel,     ///< pc = next + disp (rel32).
    JmpIndReg,  ///< pc = src1.
    JmpIndMem,  ///< pc = mem64[base + disp]  (the PLT trampoline).
    CondBr,     ///< if cond(src1): pc = next + disp.
    Ret,        ///< pc = mem64[sp]; sp += 8.
    Halt,       ///< Stop the hart (end of top-level program).
    AbtbFlush,  ///< Architecturally flush the ABTB (paper §3.4).
};

/** ALU operation selector for Opcode::IntAlu. */
enum class AluKind : std::uint8_t
{
    Add,
    Sub,
    And,
    Or,
    Xor,
    Mul,
    Shr,
};

/** Condition selector for Opcode::CondBr, evaluated on src1. */
enum class CondKind : std::uint8_t
{
    Eq0, ///< Taken iff src1 == 0.
    Ne0, ///< Taken iff src1 != 0.
    Lt0, ///< Taken iff (signed) src1 < 0.
    Ge0, ///< Taken iff (signed) src1 >= 0.
};

/** Human-readable mnemonic. */
std::string_view opcodeName(Opcode op);

/** True for any instruction that may redirect the pc. */
bool isControl(Opcode op);

/** True for direct or indirect calls. */
bool isCall(Opcode op);

/** True for unconditional non-call jumps. */
bool isJump(Opcode op);

/** True for control transfers whose target is not pc-relative. */
bool isIndirectControl(Opcode op);

/**
 * True for indirect control transfers that read their target from
 * memory. These are the instructions whose load-source address feeds
 * the paper's bloom filter when an ABTB entry is created.
 */
bool isMemIndirectControl(Opcode op);

/** True if the instruction performs a data-memory read. */
bool hasLoad(Opcode op);

/** True if the instruction performs a data-memory write. */
bool hasStore(Opcode op);

} // namespace dlsim::isa

#endif // DLSIM_ISA_OPCODE_HH
