#include "isa/instruction.hh"

#include <sstream>

namespace dlsim::isa
{

namespace
{

/** Byte sizes chosen to match typical x86-64 encodings. */
constexpr std::uint8_t SizeNop = 1;
constexpr std::uint8_t SizeAlu = 3;
constexpr std::uint8_t SizeAluImm = 4;
constexpr std::uint8_t SizeMovImm = 7;
constexpr std::uint8_t SizeLoad = 4;
constexpr std::uint8_t SizeStore = 4;
constexpr std::uint8_t SizePush = 2;
constexpr std::uint8_t SizePushImm = 5;
constexpr std::uint8_t SizePop = 2;
constexpr std::uint8_t SizeCallRel = 5;
constexpr std::uint8_t SizeCallInd = 3;
constexpr std::uint8_t SizeCallIndMem = 7;
constexpr std::uint8_t SizeJmpRel = 5;
constexpr std::uint8_t SizeJmpInd = 3;
constexpr std::uint8_t SizeJmpIndMem = 6;
constexpr std::uint8_t SizeCondBr = 6;
constexpr std::uint8_t SizeRet = 1;
constexpr std::uint8_t SizeHalt = 2;
constexpr std::uint8_t SizeAbtbFlush = 3;

} // namespace

std::string
Instruction::toString(Addr pc) const
{
    std::ostringstream os;
    os << opcodeName(op);
    auto reg = [](Reg r) { return "r" + std::to_string(r); };
    switch (op) {
      case Opcode::IntAlu:
        os << " " << reg(dst) << ", " << reg(src1) << ", ";
        if (src2 == NoReg)
            os << imm;
        else
            os << reg(src2);
        break;
      case Opcode::MovImm:
        os << " " << reg(dst) << ", " << imm;
        break;
      case Opcode::Load:
        os << " " << reg(dst) << ", [";
        if (memBase != NoReg)
            os << reg(memBase) << " + ";
        os << imm << "]";
        break;
      case Opcode::Store:
        os << " [";
        if (memBase != NoReg)
            os << reg(memBase) << " + ";
        os << imm << "], " << reg(src1);
        break;
      case Opcode::Push:
        os << " " << reg(src1);
        break;
      case Opcode::PushImm:
        os << " " << imm;
        break;
      case Opcode::Pop:
        os << " " << reg(dst);
        break;
      case Opcode::CallRel:
      case Opcode::JmpRel:
      case Opcode::CondBr:
        os << " 0x" << std::hex << (pc + size + imm);
        break;
      case Opcode::CallIndReg:
      case Opcode::JmpIndReg:
        os << " *" << reg(src1);
        break;
      case Opcode::CallIndMem:
      case Opcode::JmpIndMem:
        os << " *[";
        if (memBase != NoReg)
            os << reg(memBase) << " + ";
        os << "0x" << std::hex << imm << "]";
        break;
      default:
        break;
    }
    return os.str();
}

Instruction
makeNop()
{
    Instruction i;
    i.op = Opcode::Nop;
    i.size = SizeNop;
    return i;
}

Instruction
makeAlu(AluKind kind, Reg dst, Reg src1, Reg src2)
{
    Instruction i;
    i.op = Opcode::IntAlu;
    i.size = SizeAlu;
    i.alu = kind;
    i.dst = dst;
    i.src1 = src1;
    i.src2 = src2;
    return i;
}

Instruction
makeAluImm(AluKind kind, Reg dst, Reg src1, std::int64_t imm)
{
    Instruction i;
    i.op = Opcode::IntAlu;
    i.size = SizeAluImm;
    i.alu = kind;
    i.dst = dst;
    i.src1 = src1;
    i.src2 = NoReg;
    i.imm = imm;
    return i;
}

Instruction
makeMovImm(Reg dst, std::int64_t imm)
{
    Instruction i;
    i.op = Opcode::MovImm;
    i.size = SizeMovImm;
    i.dst = dst;
    i.imm = imm;
    return i;
}

Instruction
makeLoad(Reg dst, Reg base, std::int64_t disp)
{
    Instruction i;
    i.op = Opcode::Load;
    i.size = SizeLoad;
    i.dst = dst;
    i.memBase = base;
    i.imm = disp;
    return i;
}

Instruction
makeStore(Reg src, Reg base, std::int64_t disp)
{
    Instruction i;
    i.op = Opcode::Store;
    i.size = SizeStore;
    i.src1 = src;
    i.memBase = base;
    i.imm = disp;
    return i;
}

Instruction
makePush(Reg src)
{
    Instruction i;
    i.op = Opcode::Push;
    i.size = SizePush;
    i.src1 = src;
    return i;
}

Instruction
makePushImm(std::int64_t imm)
{
    Instruction i;
    i.op = Opcode::PushImm;
    i.size = SizePushImm;
    i.imm = imm;
    return i;
}

Instruction
makePop(Reg dst)
{
    Instruction i;
    i.op = Opcode::Pop;
    i.size = SizePop;
    i.dst = dst;
    return i;
}

Instruction
makeCallRel(std::int64_t disp)
{
    Instruction i;
    i.op = Opcode::CallRel;
    i.size = SizeCallRel;
    i.imm = disp;
    return i;
}

Instruction
makeCallIndReg(Reg target)
{
    Instruction i;
    i.op = Opcode::CallIndReg;
    i.size = SizeCallInd;
    i.src1 = target;
    return i;
}

Instruction
makeCallIndMem(Reg base, std::int64_t disp)
{
    Instruction i;
    i.op = Opcode::CallIndMem;
    i.size = SizeCallIndMem;
    i.memBase = base;
    i.imm = disp;
    return i;
}

Instruction
makeJmpRel(std::int64_t disp)
{
    Instruction i;
    i.op = Opcode::JmpRel;
    i.size = SizeJmpRel;
    i.imm = disp;
    return i;
}

Instruction
makeJmpIndReg(Reg target)
{
    Instruction i;
    i.op = Opcode::JmpIndReg;
    i.size = SizeJmpInd;
    i.src1 = target;
    return i;
}

Instruction
makeJmpIndMem(Reg base, std::int64_t disp)
{
    Instruction i;
    i.op = Opcode::JmpIndMem;
    i.size = SizeJmpIndMem;
    i.memBase = base;
    i.imm = disp;
    return i;
}

Instruction
makeJmpIndMemAbs(Addr addr)
{
    return makeJmpIndMem(NoReg, static_cast<std::int64_t>(addr));
}

Instruction
makeCondBr(CondKind cond, Reg src, std::int64_t disp)
{
    Instruction i;
    i.op = Opcode::CondBr;
    i.size = SizeCondBr;
    i.cond = cond;
    i.src1 = src;
    i.imm = disp;
    return i;
}

Instruction
makeRet()
{
    Instruction i;
    i.op = Opcode::Ret;
    i.size = SizeRet;
    return i;
}

Instruction
makeHalt()
{
    Instruction i;
    i.op = Opcode::Halt;
    i.size = SizeHalt;
    return i;
}

Instruction
makeAbtbFlush()
{
    Instruction i;
    i.op = Opcode::AbtbFlush;
    i.size = SizeAbtbFlush;
    return i;
}

} // namespace dlsim::isa
