#include "isa/opcode.hh"

namespace dlsim::isa
{

std::string_view
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Nop: return "nop";
      case Opcode::IntAlu: return "alu";
      case Opcode::MovImm: return "mov";
      case Opcode::Load: return "load";
      case Opcode::Store: return "store";
      case Opcode::Push: return "push";
      case Opcode::PushImm: return "pushi";
      case Opcode::Pop: return "pop";
      case Opcode::CallRel: return "call";
      case Opcode::CallIndReg: return "call*r";
      case Opcode::CallIndMem: return "call*m";
      case Opcode::JmpRel: return "jmp";
      case Opcode::JmpIndReg: return "jmp*r";
      case Opcode::JmpIndMem: return "jmp*m";
      case Opcode::CondBr: return "jcc";
      case Opcode::Ret: return "ret";
      case Opcode::Halt: return "halt";
      case Opcode::AbtbFlush: return "abtbflush";
    }
    return "?";
}

bool
isControl(Opcode op)
{
    switch (op) {
      case Opcode::CallRel:
      case Opcode::CallIndReg:
      case Opcode::CallIndMem:
      case Opcode::JmpRel:
      case Opcode::JmpIndReg:
      case Opcode::JmpIndMem:
      case Opcode::CondBr:
      case Opcode::Ret:
        return true;
      default:
        return false;
    }
}

bool
isCall(Opcode op)
{
    return op == Opcode::CallRel || op == Opcode::CallIndReg ||
           op == Opcode::CallIndMem;
}

bool
isJump(Opcode op)
{
    return op == Opcode::JmpRel || op == Opcode::JmpIndReg ||
           op == Opcode::JmpIndMem;
}

bool
isIndirectControl(Opcode op)
{
    switch (op) {
      case Opcode::CallIndReg:
      case Opcode::CallIndMem:
      case Opcode::JmpIndReg:
      case Opcode::JmpIndMem:
      case Opcode::Ret:
        return true;
      default:
        return false;
    }
}

bool
isMemIndirectControl(Opcode op)
{
    return op == Opcode::CallIndMem || op == Opcode::JmpIndMem;
}

bool
hasLoad(Opcode op)
{
    switch (op) {
      case Opcode::Load:
      case Opcode::Pop:
      case Opcode::Ret:
      case Opcode::CallIndMem:
      case Opcode::JmpIndMem:
        return true;
      default:
        return false;
    }
}

bool
hasStore(Opcode op)
{
    switch (op) {
      case Opcode::Store:
      case Opcode::Push:
      case Opcode::PushImm:
      case Opcode::CallRel:
      case Opcode::CallIndReg:
      case Opcode::CallIndMem:
        return true;
      default:
        return false;
    }
}

} // namespace dlsim::isa
