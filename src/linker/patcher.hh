/**
 * @file
 * The software call-site patcher: the paper's evaluation methodology
 * (§4.3) and the strawman software solution of §2.3.
 *
 * Given a trace of library call sites (collected by the CPU's
 * profiler, standing in for the paper's Pin tool), the patcher
 * rewrites each direct `call trampoline` into `call function`,
 * making pages writable and dirtying them in the process. Its
 * statistics expose every cost the paper attributes to the software
 * approach:
 *
 *  - sites whose target lies beyond rel32 reach cannot be patched at
 *    all (requires the near-library loader layout);
 *  - tail-jump invocations (`jmp sym@plt`) are skipped by default
 *    because a stack-walking resolver cannot find the patch site;
 *  - every touched text page loses its COW sharing, which the
 *    prefork memory-savings experiment (§5.5) accounts per process.
 */

#ifndef DLSIM_LINKER_PATCHER_HH
#define DLSIM_LINKER_PATCHER_HH

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "linker/image.hh"

namespace dlsim::linker
{

/** One profiled library call site. */
struct CallSiteRecord
{
    Addr callVa = 0;       ///< The call (or tail-jump) instruction.
    Addr trampolineVa = 0; ///< PLT entry it targets.
    Addr targetVa = 0;     ///< Resolved library function.
    bool tailJump = false; ///< Invoked with jmp rather than call.
};

/** A deduplicated profile of library call sites. */
using CallSiteTrace = std::vector<CallSiteRecord>;

/** Patcher configuration. */
struct PatcherOptions
{
    /**
     * Also patch tail-jump sites. Off by default: the paper's §2.3
     * explains a stack-walking software resolver cannot locate them
     * (the stack holds the preceding call's return address, and
     * patching that would corrupt execution).
     */
    bool patchTailJumps = false;

    /** Restore PermExec-only after patching (re-mprotect). */
    bool restoreProtection = true;
};

/** Result statistics of one patching pass. */
struct PatchStats
{
    std::uint64_t sitesPatched = 0;
    std::uint64_t sitesOutOfReach = 0;
    std::uint64_t tailJumpsSkipped = 0;
    std::uint64_t pagesTouched = 0; ///< Distinct text pages dirtied.
    std::uint64_t mprotectCalls = 0;
};

/**
 * Applies call-site patching to a loaded image.
 */
class Patcher
{
  public:
    explicit Patcher(PatcherOptions options = {})
        : options_(options)
    {
    }

    /**
     * Rewrite the call sites in `trace` to target their resolved
     * functions directly. Text pages are made writable, dirtied
     * (COW-copied if shared), and optionally re-protected.
     */
    PatchStats apply(Image &image, const CallSiteTrace &trace);

    const PatcherOptions &options() const { return options_; }

  private:
    PatcherOptions options_;
};

} // namespace dlsim::linker

#endif // DLSIM_LINKER_PATCHER_HH
