#include "linker/patcher.hh"

#include <cassert>

namespace dlsim::linker
{

PatchStats
Patcher::apply(Image &image, const CallSiteTrace &trace)
{
    PatchStats stats;
    auto &as = image.addressSpace();
    std::unordered_set<Addr> touched_pages;

    for (const auto &record : trace) {
        if (record.tailJump && !options_.patchTailJumps) {
            ++stats.tailJumpsSkipped;
            continue;
        }

        Slot *slot = image.decodeMutable(record.callVa);
        assert(slot != nullptr);
        assert(slot->inst.op == isa::Opcode::CallRel ||
               slot->inst.op == isa::Opcode::JmpRel);

        const auto disp =
            static_cast<std::int64_t>(record.targetVa) -
            static_cast<std::int64_t>(record.callVa +
                                      slot->inst.size);
        if (disp < isa::Rel32Min || disp > isa::Rel32Max) {
            // The library is mapped beyond ±2GB of this site; a
            // rel32 call cannot encode it (paper §2.3).
            ++stats.sitesOutOfReach;
            continue;
        }

        const Addr page = record.callVa & ~(mem::PageBytes - 1);
        if (touched_pages.insert(page).second) {
            // mprotect(PROT_READ|PROT_WRITE|PROT_EXEC), then dirty
            // the page so a shared (COW) page is copied — this is
            // the memory cost §5.5 quantifies.
            as.protect(record.callVa, mem::PermRead |
                                          mem::PermWrite |
                                          mem::PermExec);
            ++stats.mprotectCalls;
        }
        // Dirty the page (keeps the stored word identical; only the
        // COW accounting matters — real instruction bytes live in
        // the decode slots).
        as.poke64(page, as.peek64(page));

        slot->inst.imm = disp;
        ++stats.sitesPatched;
    }

    if (options_.restoreProtection) {
        for (const Addr page : touched_pages) {
            as.protect(page, mem::PermRead | mem::PermExec);
            ++stats.mprotectCalls;
        }
    }

    stats.pagesTouched = touched_pages.size();
    return stats;
}

} // namespace dlsim::linker
