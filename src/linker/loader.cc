#include "linker/loader.hh"

#include <cassert>
#include <functional>
#include <stdexcept>

namespace dlsim::linker
{

namespace
{

Addr
alignUp(Addr value, Addr alignment)
{
    return (value + alignment - 1) & ~(alignment - 1);
}

bool
fitsRel32(std::int64_t disp)
{
    return disp >= isa::Rel32Min && disp <= isa::Rel32Max;
}

} // namespace

Loader::Loader(LoaderOptions options)
    : options_(options), rng_(options.aslrSeed)
{
}

std::unique_ptr<Image>
Loader::load(elf::Module exe, std::vector<elf::Module> libs)
{
    auto image = std::make_unique<Image>();
    image->setHwCapLevel(options_.hwCapLevel);

    const auto exe_id = image->addModule(std::move(exe));
    std::vector<std::uint16_t> lib_ids;
    lib_ids.reserve(libs.size());
    for (auto &lib : libs)
        lib_ids.push_back(image->addModule(std::move(lib)));

    // Executable at its fixed low base.
    libCursor_ = options_.exeBase;
    placeModule(*image, exe_id);

    // Heap directly above the executable image.
    heapBase_ = alignUp(libCursor_, mem::PageBytes);
    image->addressSpace().map(heapBase_, options_.heapSize,
                              mem::PermRead | mem::PermWrite,
                              mem::RegionKind::Data, "heap");

    // Libraries: conventionally high; optionally near (within rel32
    // reach) for the software patcher; optionally randomised.
    if (options_.nearLibraries) {
        libCursor_ = alignUp(heapBase_ + options_.heapSize +
                                 (8ull << 20),
                             mem::PageBytes);
    } else {
        libCursor_ = options_.libBase;
        if (options_.aslr) {
            libCursor_ +=
                rng_.nextBelow(1ull << 16) * mem::PageBytes;
        }
    }
    for (const auto id : lib_ids) {
        if (options_.aslr) {
            libCursor_ +=
                rng_.nextBelow(64) * mem::PageBytes;
        }
        placeModule(*image, id);
        if (options_.nearLibraries) {
            // The custom allocator must keep every library within
            // rel32 reach of every call site (paper §4.3).
            const std::int64_t span = static_cast<std::int64_t>(
                libCursor_ - options_.exeBase);
            if (!fitsRel32(span)) {
                throw std::runtime_error(
                    "near-library layout exceeded rel32 reach");
            }
        }
    }

    // Stack.
    stackTop_ = options_.stackTop;
    if (options_.aslr)
        stackTop_ -= rng_.nextBelow(256) * mem::PageBytes;
    image->addressSpace().map(stackTop_ - options_.stackSize,
                              options_.stackSize,
                              mem::PermRead | mem::PermWrite,
                              mem::RegionKind::Stack, "stack");

    // A restore target skips indexing, relocation, and binding:
    // Image::load re-runs indexSlots and overwrites every slot
    // field, and the restored page pool replaces the GOT pages
    // bindModule would have written.
    if (!options_.skeletonForRestore) {
        image->indexSlots();

        relocateModule(*image, exe_id);
        for (const auto id : lib_ids)
            relocateModule(*image, id);

        bindModule(*image, exe_id);
        for (const auto id : lib_ids)
            bindModule(*image, id);
    }

    return image;
}

std::uint16_t
Loader::dlopen(Image &image, elf::Module lib)
{
    // First-fit reuse of dlclose'd regions (see the header): the
    // span check runs against the module before it is moved into
    // the image. Skipped under ASLR, which wants fresh placement.
    Addr reuse_base = 0;
    if (!options_.aslr) {
        const Addr need = moduleSpan(lib);
        for (auto it = freed_.begin(); it != freed_.end(); ++it) {
            if (need <= it->span) {
                reuse_base = it->base;
                freed_.erase(it);
                break;
            }
        }
    }

    const auto id = image.addModule(std::move(lib));
    if (reuse_base != 0) {
        const Addr saved = libCursor_;
        libCursor_ = reuse_base;
        placeModule(image, id);
        libCursor_ = saved;
    } else {
        if (options_.aslr)
            libCursor_ += rng_.nextBelow(64) * mem::PageBytes;
        placeModule(image, id);
    }
    image.indexSlots();
    relocateModule(image, id);
    bindModule(image, id);
    return id;
}

std::uint16_t
Loader::dlmopen(Image &image, std::vector<elf::Module> modules)
{
    const auto ns = image.newNamespace();
    std::vector<std::uint16_t> ids;
    ids.reserve(modules.size());
    for (auto &mod : modules) {
        const auto id = image.addModule(std::move(mod));
        image.moduleAt(id).namespaceId = ns;
        if (options_.aslr)
            libCursor_ += rng_.nextBelow(64) * mem::PageBytes;
        placeModule(image, id);
        ids.push_back(id);
    }
    image.indexSlots();
    for (const auto id : ids)
        relocateModule(image, id);
    for (const auto id : ids)
        bindModule(image, id);
    return ns;
}

void
Loader::dlclose(Image &image, const std::string &module_name,
                const std::function<void(Addr)> &got_write_hook)
{
    const auto id = image.findModule(module_name);
    if (id == SIZE_MAX)
        throw std::invalid_argument("dlclose: not loaded: " +
                                    module_name);
    auto &closing = image.moduleAt(id);
    const Addr lo = closing.textBase;
    const Addr hi = closing.textBase + closing.textSize;

    // Re-lazify every GOTPLT slot in other modules that resolved
    // into the closing module.
    for (auto &lm : image.modules_) {
        if (!lm.loaded || lm.id == closing.id)
            continue;
        for (std::uint32_t k = 0; k < lm.gotSlotAddrs.size(); ++k) {
            const Addr slot = lm.gotSlotAddrs[k];
            const std::uint64_t value =
                image.addressSpace().peek64(slot);
            if (value >= lo && value < hi) {
                image.addressSpace().poke64(slot,
                                            lm.lazyGotValue(k));
                if (got_write_hook)
                    got_write_hook(slot);
            }
        }
    }

    image.addressSpace().unmap(closing.textBase);
    image.addressSpace().unmap(closing.gotBase);
    if (closing.module.dataSize() > 0)
        image.addressSpace().unmap(closing.dataBase);
    image.removeModuleSlots(closing.id);

    // The whole span placeModule consumed (text+PLT, GOT, data,
    // guard page) becomes reusable by a later dlopen.
    const Addr end = closing.dataBase +
                     alignUp(closing.module.dataSize(),
                             mem::PageBytes) +
                     mem::PageBytes;
    freed_.push_back({closing.textBase, end - closing.textBase});
}

Addr
Loader::moduleSpan(const elf::Module &mod) const
{
    // Must mirror placeModule's layout arithmetic exactly.
    Addr off = 0;
    for (const auto &fn : mod.functions()) {
        off = alignUp(off, 16);
        off += fn.sizeBytes;
    }
    const bool arm = options_.pltStyle == PltStyle::Arm;
    const Addr stride = arm ? ArmPltEntryBytes : PltEntryBytes;
    const auto num_imports = static_cast<Addr>(mod.imports().size());
    const Addr plt_bytes = PltEntryBytes + num_imports * stride;
    const Addr text_size =
        alignUp(alignUp(off, 16) + plt_bytes, mem::PageBytes);
    const Addr got_bytes =
        alignUp((num_imports + 2) * 8, mem::PageBytes);
    const Addr data_bytes = alignUp(mod.dataSize(), mem::PageBytes);
    return text_size + got_bytes + data_bytes +
           mem::PageBytes; // guard page
}

void
Loader::placeModule(Image &image, std::uint16_t module_id)
{
    auto &lm = image.moduleAt(module_id);
    const auto &mod = lm.module;

    lm.textBase = alignUp(libCursor_, mem::PageBytes);

    // Lay out functions, 16-byte aligned.
    Addr off = 0;
    lm.funcAddrs.resize(mod.functions().size());
    for (std::size_t i = 0; i < mod.functions().size(); ++i) {
        off = alignUp(off, 16);
        lm.funcAddrs[i] = lm.textBase + off;
        off += mod.functions()[i].sizeBytes;
    }

    // PLT: PLT0 plus one fixed-stride entry per import.
    const bool arm = options_.pltStyle == PltStyle::Arm;
    lm.pltStride = arm ? ArmPltEntryBytes : PltEntryBytes;
    lm.lazyEntryOffset = arm ? 12 : 6;
    lm.pltBase = lm.textBase + alignUp(off, 16);
    const auto num_imports =
        static_cast<std::uint32_t>(mod.imports().size());
    const Addr plt_bytes =
        PltEntryBytes +
        static_cast<Addr>(num_imports) * lm.pltStride;
    lm.textSize = alignUp((lm.pltBase - lm.textBase) + plt_bytes,
                          mem::PageBytes);

    image.addressSpace().map(lm.textBase, lm.textSize,
                             mem::PermRead | mem::PermExec,
                             mem::RegionKind::Text,
                             mod.name() + ".text");
    // Materialise the text pages: code is file-backed and present,
    // so forked processes share (and COW-account) it.
    if (!options_.skeletonForRestore) {
        for (Addr page = lm.textBase;
             page < lm.textBase + lm.textSize;
             page += mem::PageBytes) {
            image.addressSpace().poke64(page, 0);
        }
    }

    // GOT: [0]=module id, [1]=resolver, [2+k]=import k.
    lm.gotBase = lm.textBase + lm.textSize;
    const Addr got_bytes = alignUp(
        static_cast<Addr>(num_imports + 2) * 8, mem::PageBytes);
    image.addressSpace().map(lm.gotBase, got_bytes,
                             mem::PermRead | mem::PermWrite,
                             mem::RegionKind::Got,
                             mod.name() + ".got");

    lm.gotSlotAddrs.resize(num_imports);
    lm.pltEntryVas.resize(num_imports);
    for (std::uint32_t k = 0; k < num_imports; ++k) {
        lm.gotSlotAddrs[k] = lm.gotBase + 8ull * (2 + k);
        lm.pltEntryVas[k] = lm.pltBase + PltEntryBytes +
                            lm.pltStride * static_cast<Addr>(k);
    }

    // Data section.
    lm.dataBase = lm.gotBase + got_bytes;
    if (mod.dataSize() > 0) {
        image.addressSpace().map(
            lm.dataBase, alignUp(mod.dataSize(), mem::PageBytes),
            mem::PermRead | mem::PermWrite, mem::RegionKind::Data,
            mod.name() + ".data");
    }

    libCursor_ = lm.dataBase +
                 alignUp(mod.dataSize(), mem::PageBytes) +
                 mem::PageBytes; // guard page

    // Emit decode slots: function bodies first.
    for (std::size_t i = 0; i < mod.functions().size(); ++i) {
        const auto &fn = mod.functions()[i];
        for (std::size_t j = 0; j < fn.code.size(); ++j) {
            Slot slot;
            slot.va = lm.funcAddrs[i] + fn.offsets[j];
            slot.moduleId = module_id;
            slot.inst = fn.code[j];
            image.addSlot(slot);
        }
    }

    // PLT0: push <module id>; jmp *GOT[1].
    {
        Slot push0;
        push0.va = lm.pltBase;
        push0.flags = FlagPlt;
        push0.moduleId = module_id;
        push0.inst = isa::makePushImm(module_id);
        image.addSlot(push0);

        Slot jmp0;
        jmp0.va = lm.pltBase + push0.inst.size;
        jmp0.flags = FlagPlt;
        jmp0.moduleId = module_id;
        jmp0.inst = isa::makeJmpIndMemAbs(lm.gotBase + 8);
        image.addSlot(jmp0);
    }

    // PLT entries.
    const auto emit = [&](Addr va, isa::Instruction inst,
                          std::uint8_t flags, std::uint32_t k) {
        Slot slot;
        slot.va = va;
        slot.flags = flags;
        slot.moduleId = module_id;
        slot.pltIndex = static_cast<std::uint16_t>(k);
        slot.inst = inst;
        image.addSlot(slot);
        return va + inst.size;
    };

    for (std::uint32_t k = 0; k < num_imports; ++k) {
        const Addr entry = lm.pltEntryVas[k];
        Addr va = entry;

        if (arm) {
            // ARM style (paper Fig. 2b): two 4-byte address-
            // materialising instructions into the scratch register
            // (ip analogue, r12), then `ldr pc, [r12]`. Fixed
            // 4-byte encodings, as on a RISC ISA.
            isa::Instruction mov = isa::makeMovImm(
                12, static_cast<std::int64_t>(
                        lm.gotSlotAddrs[k]));
            mov.size = 4;
            isa::Instruction add =
                isa::makeAluImm(isa::AluKind::Add, 12, 12, 0);
            add.size = 4;
            isa::Instruction ldr = isa::makeJmpIndMem(12, 0);
            ldr.size = 4;
            va = emit(va, mov, FlagPlt, k);
            va = emit(va, add, FlagPlt, k);
            va = emit(va, ldr, FlagPlt | FlagPltJmp, k);
        } else {
            // x86-64 style: jmp *GOT[2+k].
            va = emit(va,
                      isa::makeJmpIndMemAbs(lm.gotSlotAddrs[k]),
                      FlagPlt | FlagPltJmp, k);
        }

        // Lazy tail: push k; jmp PLT0 (first execution only).
        assert(va == entry + lm.lazyEntryOffset);
        isa::Instruction push = isa::makePushImm(k);
        if (arm)
            push.size = 4;
        va = emit(va, push, FlagPlt, k);
        isa::Instruction back = isa::makeJmpRel(0);
        if (arm)
            back.size = 4;
        back.imm = static_cast<std::int64_t>(lm.pltBase) -
                   static_cast<std::int64_t>(va + back.size);
        emit(va, back, FlagPlt, k);
    }
}

void
Loader::relocateModule(Image &image, std::uint16_t module_id)
{
    auto &lm = image.moduleAt(module_id);
    const auto &mod = lm.module;

    for (const auto &reloc : mod.relocations()) {
        const auto &fn = mod.functions()[reloc.funcIndex];
        const Addr inst_va = lm.funcAddrs[reloc.funcIndex] +
                             fn.offsets[reloc.instIndex];
        Slot *slot = image.decodeMutable(inst_va);
        assert(slot != nullptr);

        switch (reloc.kind) {
          case elf::RelocKind::PltCall:
          case elf::RelocKind::PltJump: {
            const Addr target = lm.pltEntryVas[reloc.targetIndex];
            const auto disp =
                static_cast<std::int64_t>(target) -
                static_cast<std::int64_t>(inst_va +
                                          slot->inst.size);
            assert(fitsRel32(disp));
            slot->inst.imm = disp;
            break;
          }
          case elf::RelocKind::LocalCall:
          case elf::RelocKind::LocalJump: {
            const Addr target = lm.funcAddrs[reloc.targetIndex];
            const auto disp =
                static_cast<std::int64_t>(target) -
                static_cast<std::int64_t>(inst_va +
                                          slot->inst.size);
            assert(fitsRel32(disp));
            slot->inst.imm = disp;
            break;
          }
          case elf::RelocKind::DataAddr:
            slot->inst.imm = static_cast<std::int64_t>(
                lm.dataBase + static_cast<Addr>(reloc.addend));
            break;
          case elf::RelocKind::FuncAddrAbs:
            // Eager, GLOB_DAT-style: resolved at load time,
            // within the module's own namespace.
            slot->inst.imm = static_cast<std::int64_t>(
                image.symbolAddress(reloc.symbol,
                                    lm.namespaceId));
            break;
        }
    }
}

void
Loader::bindModule(Image &image, std::uint16_t module_id)
{
    auto &lm = image.moduleAt(module_id);
    auto &as = image.addressSpace();

    as.poke64(lm.gotBase, module_id);
    as.poke64(lm.gotBase + 8, ResolverVa);

    for (std::uint32_t k = 0; k < lm.gotSlotAddrs.size(); ++k) {
        if (options_.lazyBinding) {
            as.poke64(lm.gotSlotAddrs[k], lm.lazyGotValue(k));
        } else {
            as.poke64(lm.gotSlotAddrs[k],
                      image.symbolAddress(lm.module.imports()[k],
                                          lm.namespaceId));
        }
    }
}

} // namespace dlsim::linker
