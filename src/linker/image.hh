/**
 * @file
 * The loaded process image: modules mapped into an address space,
 * their PLT/GOT sections, and the decode index the CPU fetches from.
 *
 * PLT geometry matches x86-64 ELF (paper Fig. 2): each trampoline is
 * 16 bytes — an indirect jump through the module's GOTPLT slot,
 * followed by a push of the relocation index and a jump to PLT0 that
 * are executed only on the first (resolving) invocation. Four
 * trampolines share a 64-byte I-cache line, but because programs call
 * a sparse subset of the available imports, PLT lines are effectively
 * dedicated per used trampoline — the I-cache pressure the paper
 * measures.
 */

#ifndef DLSIM_LINKER_IMAGE_HH
#define DLSIM_LINKER_IMAGE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "elf/module.hh"
#include "isa/instruction.hh"
#include "mem/address_space.hh"

namespace dlsim::snapshot
{
class Serializer;
class Deserializer;
}

namespace dlsim::linker
{

using isa::Addr;

/** Virtual address the GOT[1] resolver slot points at. Control
 *  transfers to this address trap to the DynamicLinker's resolver
 *  (standing in for _dl_runtime_resolve in ld.so). */
constexpr Addr ResolverVa = 0x0000700000000000ull;

/** Bytes per PLT entry and for PLT0, as on x86-64 ELF. */
constexpr std::uint32_t PltEntryBytes = 16;

/** Bytes per PLT entry in ARM style (three 4-byte instructions
 *  plus the 8-byte lazy tail, padded; paper Fig. 2b). */
constexpr std::uint32_t ArmPltEntryBytes = 24;

/**
 * Trampoline flavour emitted by the loader (paper Fig. 2).
 *
 * X86: a single memory-indirect jump (`jmp *sym@got.plt`).
 * Arm: an address-materialising prologue (two ALU instructions
 * writing the scratch register, standing in for ARM's
 * `add ip, pc, ...; add ip, ip, ...`) followed by the indirect
 * load-and-branch (`ldr pc, [ip, ...]`). Skipping an ARM trampoline
 * also skips the scratch-register writes; this is safe because the
 * ABI makes ip call-clobbered, exactly the property real ARM PLTs
 * rely on.
 */
enum class PltStyle : std::uint8_t
{
    X86,
    Arm,
};

/** Flags on decoded slots. */
enum SlotFlag : std::uint8_t
{
    FlagNone = 0,
    /** Instruction belongs to a PLT section. */
    FlagPlt = 1,
    /** The first (jmp *GOT) instruction of a PLT entry. */
    FlagPltJmp = 2,
};

/** Sentinel for Slot::pltIndex on non-PLT slots. */
constexpr std::uint16_t NoPltIndex = 0xffff;

/** One decoded instruction at a fixed virtual address. */
struct Slot
{
    Addr va = 0;
    std::uint8_t flags = FlagNone;
    std::uint16_t moduleId = 0;
    /** Import index when this is a PLT entry's slot. */
    std::uint16_t pltIndex = NoPltIndex;
    isa::Instruction inst;
};

/** Runtime state of one loaded module. */
struct LoadedModule
{
    explicit LoadedModule(elf::Module m) : module(std::move(m)) {}

    elf::Module module;
    std::uint16_t id = 0;
    Addr textBase = 0;
    Addr pltBase = 0;  ///< PLT0 address; entry k at +16*(k+1).
    Addr gotBase = 0;  ///< GOT[0]=module id, GOT[1]=resolver,
                       ///< GOT[2+k]=import k.
    Addr dataBase = 0;
    std::uint64_t textSize = 0; ///< Including the PLT.
    /** Resolution scope (dlmopen namespace); 0 = default. */
    std::uint16_t namespaceId = 0;
    std::vector<Addr> funcAddrs;    ///< Per defined function.
    std::vector<Addr> pltEntryVas;  ///< Per import: trampoline addr.
    std::vector<Addr> gotSlotAddrs; ///< Per import: GOTPLT slot addr.
    bool loaded = true;
    /** Byte offset from a PLT entry to its lazy re-entry push. */
    std::uint32_t lazyEntryOffset = 6;
    /** Stride between PLT entries for this module. */
    std::uint32_t pltStride = PltEntryBytes;

    /** Address of PLT entry k's lazy re-entry point (its push). */
    Addr lazyGotValue(std::uint32_t import_index) const
    {
        return pltEntryVas[import_index] + lazyEntryOffset;
    }
};

/**
 * A loaded process image.
 *
 * Owns the address space, the loaded modules, and the decode index.
 * Construction is performed by Loader; runtime symbol binding by
 * DynamicLinker; execution by cpu::Core.
 */
class Image
{
  public:
    Image();

    /** @name Decode @{ */
    /** Decoded slot at va, or nullptr when va is not code. */
    const Slot *decode(Addr va) const;
    /**
     * Mutable access for the software patcher. Invalidates the
     * decode-cache entry for va: a patched call site must not be
     * served from a cached translation (see docs/performance.md).
     */
    Slot *decodeMutable(Addr va);
    /**
     * Contiguous successor slot (fall-through fast path). Inline:
     * the fast-forward interpreter calls this once per non-transfer
     * instruction, and the common case is a single adjacency check.
     */
    const Slot *
    nextSlot(const Slot *slot) const
    {
        const Slot *next = slot + 1;
        if (next != slots_.data() + slots_.size() &&
            next->va == slot->va + slot->inst.size) {
            return next;
        }
        return decode(slot->va + slot->inst.size);
    }

    /** Decode-cache observability (tests, docs/performance.md). */
    std::uint64_t decodeCacheHits() const { return decodeHits_; }
    std::uint64_t decodeCacheMisses() const
    {
        return decodeMisses_;
    }
    /** @} */

    /** @name Basic-block translation cache @{
     *
     * A block is a maximal straight-line run of non-control
     * instructions starting at a head va, optionally ending in one
     * control transfer or Halt (the terminator). Blocks are packed
     * into a flat arena of pre-decoded ops and found through an
     * open-addressed head-va table, so the executors pay one lookup
     * per block instead of one per instruction. The cache holds
     * decoded code only — no GOT values, no predictor or skip-unit
     * state — so GOT rebinds need no flush; anything that changes
     * decoded code (patcher writes, dlopen/dlclose re-indexing,
     * snapshot restore) must call invalidateBlocks().
     */

    /** One pre-decoded instruction of a cached block. */
    struct BlockOp
    {
        isa::Instruction inst;
        Addr va = 0;
        std::uint8_t flags = FlagNone;
    };

    /** Block descriptor. Ops live at blockOps(b)[0 .. bodyOps-1];
     *  when hasTerm the terminator op follows at [bodyOps]. */
    struct Block
    {
        Addr headVa = 0;
        /** First va past the body: the terminator's va when
         *  hasTerm, else the resume pc after the last body op. */
        Addr endVa = 0;
        std::uint32_t firstOp = 0;
        std::uint32_t termSlot = 0; ///< slots_ index (hasTerm only).
        std::uint16_t bodyOps = 0;
        /** Body ops carrying FlagPlt, so full-block dispatch can
         *  bump the trampoline-instruction counter in one add. */
        std::uint16_t pltBodyOps = 0;
        bool hasTerm = false;
        /** Memoized successor block indices (fast-forward
         *  chaining); -1 until first execution. Indices stay valid
         *  until the next invalidateBlocks(): the arena is
         *  append-only between flushes. */
        std::int32_t succTaken = -1;
        std::int32_t succFall = -1;
    };

    /** Longest body a cached block may carry. */
    static constexpr std::uint16_t MaxBlockOps = 64;

    /**
     * Arena index of the block headed at va, building and caching
     * it on first use; -1 when va is not decodable. The returned
     * index (not a Block pointer) is stable until the next
     * invalidateBlocks(); pointers into blocks_/blockOps_ are not —
     * building a successor block may reallocate both vectors.
     */
    std::int32_t blockIndex(Addr head) const;

    const Block &block(std::int32_t index) const
    {
        return blocks_[static_cast<std::uint32_t>(index)];
    }
    const BlockOp *blockOps(const Block &b) const
    {
        return blockOps_.data() + b.firstOp;
    }
    /** Decoded slot by slots_ index (terminator dispatch). */
    const Slot *slotAt(std::uint32_t index) const
    {
        return &slots_[index];
    }

    /** Memoize a successor edge (const for the same single-owner
     *  reason the decode cache is mutable). */
    void memoSuccTaken(std::int32_t index, std::int32_t succ) const
    {
        blocks_[static_cast<std::uint32_t>(index)].succTaken = succ;
    }
    void memoSuccFall(std::int32_t index, std::int32_t succ) const
    {
        blocks_[static_cast<std::uint32_t>(index)].succFall = succ;
    }

    /**
     * Drop every cached block and bump the generation. Wired into
     * decodeMutable() (software patcher) and indexSlots()
     * (dlopen/dlclose/snapshot restore); see the class comment for
     * why GOT rebinds are exempt.
     */
    void invalidateBlocks();

    /** Block-cache observability (bench_wallclock gauges). */
    std::uint64_t blockCacheHits() const { return blockHits_; }
    std::uint64_t blockCacheBuilds() const { return blockBuilds_; }
    std::uint64_t blockCacheFlushes() const { return blockFlushes_; }
    std::uint64_t blockGeneration() const { return blockGen_; }
    std::size_t liveBlocks() const { return blocks_.size(); }
    /** @} */

    mem::AddressSpace &addressSpace() { return *as_; }
    const mem::AddressSpace &addressSpace() const { return *as_; }

    /** Replace the backing address space (process fork support). */
    void adoptAddressSpace(std::unique_ptr<mem::AddressSpace> as);

    /** Take the backing address space (context-switch support). */
    std::unique_ptr<mem::AddressSpace> releaseAddressSpace();

    /** @name Modules and symbols @{ */
    const std::vector<LoadedModule> &modules() const
    {
        return modules_;
    }
    LoadedModule &moduleAt(std::size_t id) { return modules_[id]; }
    const LoadedModule &moduleAt(std::size_t id) const
    {
        return modules_[id];
    }

    /** Find a loaded module by name; SIZE_MAX when absent. */
    std::size_t findModule(const std::string &name) const;

    /**
     * Address of a defined symbol using ELF resolution order (first
     * loaded module that exports it wins), searched within one
     * dlmopen namespace. Throws when undefined in that namespace.
     * Ifuncs resolve to their currently selected candidate.
     * Versioned lookups use the `name@version` spelling.
     */
    Addr symbolAddress(const std::string &name,
                       std::uint16_t ns = 0) const;

    /**
     * The exporting module and export record for a symbol, in
     * resolution order within namespace `ns`. @return false when no
     * loaded module of that namespace defines it.
     */
    bool lookupExport(const std::string &name, std::size_t &module_id,
                      const elf::Export *&exp,
                      std::uint16_t ns = 0) const;

    /** Allocate a fresh dlmopen namespace id. */
    std::uint16_t newNamespace() { return nextNamespace_++; }
    /** @} */

    /** @name Trampoline census (Tables 2/3, Fig. 4 support) @{ */
    /** Total PLT entries (trampolines) across loaded modules. */
    std::uint64_t totalTrampolines() const;
    /** Symbol name for a trampoline address; empty if not a PLT. */
    std::string trampolineSymbol(Addr plt_jmp_va) const;
    /** @} */

    /** Hardware-capability level used to select ifunc candidates. */
    std::uint32_t hwCapLevel() const { return hwCapLevel_; }
    void setHwCapLevel(std::uint32_t level) { hwCapLevel_ = level; }

    /** Human-readable layout dump (examples / debugging). */
    std::string dumpLayout() const;

    /**
     * Checkpoint the image's mutable runtime state: per-module
     * loaded/namespace flags, every decoded slot (the software
     * patcher mutates slots in place, so patch state lives here),
     * hwcap level, and namespace allocation. The decode index and
     * cache are derived and rebuilt on load. The backing address
     * space is serialized separately by the composer.
     */
    void save(snapshot::Serializer &s) const;

    /** Restore; throws SnapshotError on module/slot count
     *  mismatch. Rebuilds the decode index. */
    void load(snapshot::Deserializer &d);

    /** @name Construction interface (Loader/DynamicLinker) @{ */
    std::uint16_t addModule(elf::Module module);
    void addSlot(Slot slot);
    /** (Re)build the va -> slot index after adding slots. */
    void indexSlots();
    /** Drop a module's slots from the decode index (dlclose). */
    void removeModuleSlots(std::uint16_t module_id);
    /** @} */

  private:
    /** Insert (va -> slot index) into the decode cache. */
    void fastInsert(Addr va, std::uint32_t index) const;
    /** Drop the cached entry for va (tombstone), if present. */
    void fastErase(Addr va);
    /** Clear and re-size the decode cache for slots_.size(). */
    void fastReset();

    /** Walk slots from `head`, append a new block; -1 when `head`
     *  is not in the decode index. */
    std::int32_t buildBlock(Addr head) const;
    void blockTableInsert(Addr va, std::int32_t index) const;
    /** Re-size the head-va table and re-insert every live block. */
    void blockTableGrow() const;

    std::unique_ptr<mem::AddressSpace> as_;
    std::vector<LoadedModule> modules_;
    std::vector<Slot> slots_;
    std::unordered_map<Addr, std::uint32_t> slotIndex_;

    /**
     * Decode cache: an open-addressed (linear probing) va -> slot
     * index table in front of slotIndex_, populated on first
     * decode of each pc. Steady-state fetch resolves a pc with one
     * hash and (almost always) one probe against two flat arrays
     * instead of an unordered_map walk. Invalidated entry-wise by
     * decodeMutable (software patcher) and wholesale by
     * indexSlots/removeModuleSlots (dlopen/dlclose). Mutable: the
     * cache is populated from const decode(); an Image is owned by
     * a single job thread (docs/performance.md).
     */
    mutable std::vector<Addr> fastKeys_;
    mutable std::vector<std::uint32_t> fastVals_;
    mutable std::uint64_t fastMask_ = 0;
    mutable std::uint64_t decodeHits_ = 0;
    mutable std::uint64_t decodeMisses_ = 0;

    /**
     * Block cache (see the public section). Never serialized: like
     * the decode cache it is derived state, rebuilt on demand after
     * a restore. Mutable for the same single-owner reason.
     */
    mutable std::vector<BlockOp> blockOps_;
    mutable std::vector<Block> blocks_;
    mutable std::vector<Addr> blockKeys_;
    mutable std::vector<std::int32_t> blockVals_;
    mutable std::uint64_t blockMask_ = 0;
    mutable std::uint64_t blockGen_ = 0;
    mutable std::uint64_t blockHits_ = 0;
    mutable std::uint64_t blockBuilds_ = 0;
    mutable std::uint64_t blockFlushes_ = 0;
    std::unordered_map<Addr, std::pair<std::uint16_t, std::uint32_t>>
        pltJmpInfo_; ///< trampoline va -> (module, import index).
    std::uint32_t hwCapLevel_ = 0;
    std::uint16_t nextNamespace_ = 1;

    friend class Loader;
    friend class DynamicLinker;
};

} // namespace dlsim::linker

#endif // DLSIM_LINKER_IMAGE_HH
