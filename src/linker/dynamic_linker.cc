#include "linker/dynamic_linker.hh"

#include "snapshot/serializer.hh"

#include <stdexcept>

namespace dlsim::linker
{

DynamicLinker::ResolveResult
DynamicLinker::resolve(std::uint32_t module_id,
                       std::uint32_t import_index)
{
    const auto &lm = image_.moduleAt(module_id);
    if (import_index >= lm.module.imports().size())
        throw std::out_of_range("bad relocation index");
    const std::string &sym = lm.module.imports()[import_index];

    std::size_t def_module = 0;
    const elf::Export *exp = nullptr;
    if (!image_.lookupExport(sym, def_module, exp,
                             lm.namespaceId)) {
        throw std::out_of_range("undefined symbol at runtime: " +
                                sym + " (namespace " +
                                std::to_string(lm.namespaceId) +
                                ")");
    }

    ResolveResult result;
    result.symbol = sym;
    result.gotAddr = lm.gotSlotAddrs[import_index];
    result.ifunc = exp->ifunc;

    const auto &def = image_.moduleAt(def_module);
    if (exp->ifunc) {
        ++ifuncResolutions_;
        const auto pick = std::min<std::size_t>(
            image_.hwCapLevel(), exp->ifuncCandidates.size() - 1);
        result.value = def.funcAddrs[exp->ifuncCandidates[pick]];
    } else {
        result.value = def.funcAddrs[exp->funcIndex];
    }
    result.target = result.value;

    ++resolutions_;
    return result;
}


void
DynamicLinker::save(snapshot::Serializer &s) const
{
    s.beginStruct("dlink");
    s.u64(resolutions_);
    s.u64(ifuncResolutions_);
    s.endStruct();
}

void
DynamicLinker::load(snapshot::Deserializer &d)
{
    d.enterStruct("dlink");
    resolutions_ = d.u64();
    ifuncResolutions_ = d.u64();
    d.leaveStruct();
}

} // namespace dlsim::linker
