/**
 * @file
 * Runtime lazy symbol resolution (the _dl_runtime_resolve analogue).
 *
 * The CPU traps control transfers to ResolverVa and calls into this
 * class with the module id and relocation index the PLT pushed. The
 * returned action tells the CPU what to store into the GOT slot —
 * performed as an architectural store on the CPU's data path, so the
 * D-cache and (crucially) the ABTB's bloom filter observe it — and
 * where execution continues.
 *
 * Resolution happens once per (module, import): exactly the paper's
 * observation that "entries in the dynamic linker lookup tables are
 * updated only once, when each symbol is resolved, typically at the
 * first execution of the corresponding library call."
 */

#ifndef DLSIM_LINKER_DYNAMIC_LINKER_HH
#define DLSIM_LINKER_DYNAMIC_LINKER_HH

#include <cstdint>
#include <string>

#include "linker/image.hh"

namespace dlsim::snapshot
{
class Serializer;
class Deserializer;
}

namespace dlsim::linker
{

/** The runtime resolver. */
class DynamicLinker
{
  public:
    explicit DynamicLinker(Image &image) : image_(image) {}

    /** What the CPU must do to complete a lazy resolution. */
    struct ResolveResult
    {
        Addr gotAddr = 0;          ///< GOTPLT slot to update.
        std::uint64_t value = 0;   ///< Resolved function address.
        Addr target = 0;           ///< Continue execution here.
        bool ifunc = false;        ///< An ifunc selector ran.
        std::string symbol;        ///< Resolved symbol (diagnostics).
    };

    /**
     * Resolve import `import_index` of module `module_id`.
     * @throws std::out_of_range if the symbol is undefined.
     */
    ResolveResult resolve(std::uint32_t module_id,
                          std::uint32_t import_index);

    /** Number of resolutions performed so far. */
    std::uint64_t resolutionCount() const { return resolutions_; }

    /** Number of resolutions that ran an ifunc selector. */
    std::uint64_t ifuncResolutionCount() const
    {
        return ifuncResolutions_;
    }

    Image &image() { return image_; }

    /** Checkpoint resolution counters. */
    void save(snapshot::Serializer &s) const;
    void load(snapshot::Deserializer &d);

  private:
    Image &image_;
    std::uint64_t resolutions_ = 0;
    std::uint64_t ifuncResolutions_ = 0;
};

} // namespace dlsim::linker

#endif // DLSIM_LINKER_DYNAMIC_LINKER_HH
