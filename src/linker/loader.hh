/**
 * @file
 * The program loader: maps modules into an Image, builds PLT/GOT
 * sections, and applies relocations.
 *
 * Layout reproduces the conventional process memory map the paper
 * describes (§2.3): the executable low in the address space, shared
 * libraries mapped high — far beyond the ±2GB reach of a rel32 call,
 * which is precisely why direct calls to library functions are
 * impossible and trampolines exist. Two alternatives are supported:
 *
 *  - ASLR: randomise library and stack placement (paper §2.1,
 *    "Security").
 *  - Near-library allocation: place libraries within rel32 reach of
 *    the executable, the custom-allocator arrangement the paper's
 *    software evaluation methodology needs (§4.3) and one of the
 *    things that make a software solution unattractive (§2.3).
 */

#ifndef DLSIM_LINKER_LOADER_HH
#define DLSIM_LINKER_LOADER_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "elf/module.hh"
#include "linker/image.hh"
#include "stats/rng.hh"

namespace dlsim::linker
{

/** Loader configuration. */
struct LoaderOptions
{
    /** Lazy (default, like ld.so) or eager (BIND_NOW) binding. */
    bool lazyBinding = true;

    /** Randomise library/stack placement. */
    bool aslr = false;
    std::uint64_t aslrSeed = 1;

    /**
     * Load libraries just above the executable, within rel32 reach —
     * required by the software call-site patcher.
     */
    bool nearLibraries = false;

    Addr exeBase = 0x400000;
    Addr libBase = 0x7f0000000000ull;
    Addr stackTop = 0x7ffffffff000ull;
    std::uint64_t stackSize = 1 << 20;
    std::uint64_t heapSize = 1 << 22;

    /** Select among ifunc candidates (0 = baseline hardware). */
    std::uint32_t hwCapLevel = 0;

    /** Trampoline flavour (paper Fig. 2: x86-64 or ARM style). */
    PltStyle pltStyle = PltStyle::X86;

    /**
     * Build a skeleton for a snapshot restore: skip the load-time
     * work a restore replaces wholesale — text-page
     * materialisation, relocation (slot immediates), GOT binding,
     * and the slot index (all pages come from the snapshot's page
     * pool, every slot field from its image record, and
     * Image::load re-runs indexSlots). Layout, module metadata,
     * and symbol tables — the parts a restore keeps — are built
     * identically. An image built this way and never restored is
     * not runnable.
     */
    bool skeletonForRestore = false;
};

/**
 * Builds a runnable Image from an executable module plus libraries.
 *
 * Also provides dlopen/dlclose-style dynamic load and unload on an
 * existing image.
 */
class Loader
{
  public:
    explicit Loader(LoaderOptions options = {});

    /**
     * Load an executable and its libraries. Module order determines
     * symbol resolution precedence (executable first, then libraries
     * in the given order, like DT_NEEDED order with LD_PRELOAD at the
     * front).
     */
    std::unique_ptr<Image> load(elf::Module exe,
                                std::vector<elf::Module> libs);

    /**
     * Load an additional library into a live image (dlopen). Like
     * mmap, the loader reuses address space a prior dlclose
     * released when the incoming module fits (first fit; disabled
     * under ASLR) — so a close/reload cycle lands the new module at
     * the old virtual addresses, the scenario every stale-code
     * cache (decode index, basic-block cache) must survive.
     * @return The new module's id.
     */
    std::uint16_t dlopen(Image &image, elf::Module lib);

    /**
     * Load a module group into a *fresh namespace* (dlmopen with
     * LM_ID_NEWLM): the group's symbols are invisible to the
     * default namespace and its imports resolve only within the
     * group — complete symbol isolation, e.g. for loading two
     * versions of a library side by side.
     * @return The new namespace id.
     */
    std::uint16_t dlmopen(Image &image,
                          std::vector<elf::Module> modules);

    /**
     * Unload a library (dlclose). GOTPLT entries in other modules
     * that resolved into the closed module are reset to their lazy
     * values; each such GOT write is reported through got_write_hook
     * (modelling the coherence traffic a real unload generates) so
     * the ABTB can observe it.
     */
    void dlclose(Image &image, const std::string &module_name,
                 const std::function<void(Addr)> &got_write_hook = {});

    const LoaderOptions &options() const { return options_; }

    /** Stack region info of the last load. */
    Addr stackTop() const { return stackTop_; }

    /** Heap (scratch data) region base of the last load. */
    Addr heapBase() const { return heapBase_; }

  private:
    /** Map one module at the cursor and emit its slots. */
    void placeModule(Image &image, std::uint16_t module_id);

    /** Address-space span placeModule would consume for `mod`
     *  (text+PLT, GOT, data, guard page), without side effects. */
    Addr moduleSpan(const elf::Module &mod) const;

    /** Apply a module's relocations (after placement). */
    void relocateModule(Image &image, std::uint16_t module_id);

    /** Populate a module's GOT (lazy or eager). */
    void bindModule(Image &image, std::uint16_t module_id);

    /** A region dlclose released, available for dlopen reuse. */
    struct FreeRegion
    {
        Addr base = 0;
        Addr span = 0;
    };

    LoaderOptions options_;
    stats::Rng rng_;
    std::vector<FreeRegion> freed_;
    Addr libCursor_ = 0;
    Addr stackTop_ = 0;
    Addr heapBase_ = 0;
};

} // namespace dlsim::linker

#endif // DLSIM_LINKER_LOADER_HH
