#include "linker/image.hh"

#include "isa/opcode.hh"
#include "snapshot/serializer.hh"

#include <bit>
#include <sstream>
#include <stdexcept>

namespace dlsim::linker
{

namespace
{

/** Empty/tombstone sentinels for the decode cache's value array. */
constexpr std::uint32_t FastEmpty = 0xffffffffu;
constexpr std::uint32_t FastTombstone = 0xfffffffeu;

/** Empty sentinel for the block table's value array (no tombstones:
 *  the block cache is only ever flushed wholesale). */
constexpr std::int32_t BlockEmpty = -1;

/** A block terminator: any control transfer, or Halt. Everything
 *  else (including AbtbFlush, which is a hint, not a transfer) is
 *  straight-line body. */
inline bool
endsBlock(isa::Opcode op)
{
    return isa::isControl(op) || op == isa::Opcode::Halt;
}

/** Mix a va into a well-distributed hash (vas are structured). */
inline std::uint64_t
fastHash(Addr va)
{
    std::uint64_t h = va * 0x9e3779b97f4a7c15ull;
    return h ^ (h >> 29);
}

} // namespace

Image::Image() : as_(std::make_unique<mem::AddressSpace>()) {}

const Slot *
Image::decode(Addr va) const
{
    if (fastMask_ != 0) {
        std::uint64_t i = fastHash(va) & fastMask_;
        while (true) {
            const std::uint32_t v = fastVals_[i];
            if (v == FastEmpty)
                break;
            if (v != FastTombstone && fastKeys_[i] == va) {
                ++decodeHits_;
                return &slots_[v];
            }
            i = (i + 1) & fastMask_;
        }
    }
    ++decodeMisses_;
    const auto it = slotIndex_.find(va);
    if (it == slotIndex_.end())
        return nullptr;
    fastInsert(va, it->second);
    return &slots_[it->second];
}

void
Image::fastInsert(Addr va, std::uint32_t index) const
{
    if (fastMask_ == 0)
        return;
    std::uint64_t i = fastHash(va) & fastMask_;
    while (fastVals_[i] != FastEmpty &&
           fastVals_[i] != FastTombstone) {
        i = (i + 1) & fastMask_;
    }
    fastKeys_[i] = va;
    fastVals_[i] = index;
}

void
Image::fastErase(Addr va)
{
    if (fastMask_ == 0)
        return;
    std::uint64_t i = fastHash(va) & fastMask_;
    while (fastVals_[i] != FastEmpty) {
        if (fastVals_[i] != FastTombstone && fastKeys_[i] == va) {
            // A tombstone, not FastEmpty: later entries may have
            // probed past this slot.
            fastVals_[i] = FastTombstone;
            return;
        }
        i = (i + 1) & fastMask_;
    }
}

void
Image::fastReset()
{
    // Capacity 2x the live key count keeps the load factor <= 0.5
    // (a re-inserted key reuses its own tombstone, so patch
    // invalidation cannot grow the occupancy).
    const std::uint64_t capacity = std::bit_ceil(
        std::max<std::uint64_t>(16, 2 * slots_.size()));
    fastMask_ = capacity - 1;
    fastKeys_.assign(capacity, 0);
    fastVals_.assign(capacity, FastEmpty);
}

Slot *
Image::decodeMutable(Addr va)
{
    const auto it = slotIndex_.find(va);
    if (it == slotIndex_.end())
        return nullptr;
    // The caller is about to rewrite this slot (software call-site
    // patching); drop the cached translation so the next fetch
    // re-resolves it, and flush the block cache — any cached block
    // may hold a pre-decoded copy of this slot in its body.
    fastErase(va);
    invalidateBlocks();
    return &slots_[it->second];
}

std::int32_t
Image::blockIndex(Addr head) const
{
    if (blockMask_ != 0) {
        std::uint64_t i = fastHash(head) & blockMask_;
        while (blockVals_[i] != BlockEmpty) {
            if (blockKeys_[i] == head) {
                ++blockHits_;
                return blockVals_[i];
            }
            i = (i + 1) & blockMask_;
        }
    }
    return buildBlock(head);
}

std::int32_t
Image::buildBlock(Addr head) const
{
    // Head lookup goes straight to slotIndex_, not decode(): block
    // building must not perturb the decode-cache hit/miss counters
    // relative to per-instruction dispatch.
    auto it = slotIndex_.find(head);
    if (it == slotIndex_.end())
        return BlockEmpty;

    Block b;
    b.headVa = head;
    b.firstOp = static_cast<std::uint32_t>(blockOps_.size());
    std::uint32_t cur = it->second;
    Addr va = head;
    while (true) {
        const Slot &s = slots_[cur];
        if (endsBlock(s.inst.op)) {
            b.hasTerm = true;
            b.termSlot = cur;
            b.endVa = va;
            blockOps_.push_back({s.inst, s.va, s.flags});
            break;
        }
        if (b.bodyOps == MaxBlockOps) {
            b.endVa = va; // capped: resume here, no terminator
            break;
        }
        blockOps_.push_back({s.inst, s.va, s.flags});
        ++b.bodyOps;
        if (s.flags & FlagPlt)
            ++b.pltBodyOps;
        va += s.inst.size;
        // Mirror nextSlot(): adjacency first, then the index.
        const std::uint32_t next = cur + 1;
        if (next < slots_.size() && slots_[next].va == va) {
            cur = next;
            continue;
        }
        const auto nit = slotIndex_.find(va);
        if (nit == slotIndex_.end()) {
            b.endVa = va; // runs off decoded code; resume at va
            break;
        }
        cur = nit->second;
    }

    const auto index = static_cast<std::int32_t>(blocks_.size());
    blocks_.push_back(b);
    ++blockBuilds_;
    if (blockMask_ == 0 || 2 * blocks_.size() > blockMask_ + 1)
        blockTableGrow();
    else
        blockTableInsert(head, index);
    return index;
}

void
Image::blockTableInsert(Addr va, std::int32_t index) const
{
    std::uint64_t i = fastHash(va) & blockMask_;
    while (blockVals_[i] != BlockEmpty)
        i = (i + 1) & blockMask_;
    blockKeys_[i] = va;
    blockVals_[i] = index;
}

void
Image::blockTableGrow() const
{
    const std::uint64_t capacity = std::bit_ceil(
        std::max<std::uint64_t>(1024, 4 * blocks_.size()));
    blockMask_ = capacity - 1;
    blockKeys_.assign(capacity, 0);
    blockVals_.assign(capacity, BlockEmpty);
    for (std::size_t i = 0; i < blocks_.size(); ++i) {
        blockTableInsert(blocks_[i].headVa,
                         static_cast<std::int32_t>(i));
    }
}

void
Image::invalidateBlocks()
{
    if (blocks_.empty())
        return;
    blocks_.clear();
    blockOps_.clear();
    blockKeys_.clear();
    blockVals_.clear();
    blockMask_ = 0;
    ++blockGen_;
    ++blockFlushes_;
}

void
Image::adoptAddressSpace(std::unique_ptr<mem::AddressSpace> as)
{
    as_ = std::move(as);
}

std::unique_ptr<mem::AddressSpace>
Image::releaseAddressSpace()
{
    return std::move(as_);
}

std::size_t
Image::findModule(const std::string &name) const
{
    for (std::size_t i = 0; i < modules_.size(); ++i) {
        if (modules_[i].loaded && modules_[i].module.name() == name)
            return i;
    }
    return SIZE_MAX;
}

bool
Image::lookupExport(const std::string &name, std::size_t &module_id,
                    const elf::Export *&exp,
                    std::uint16_t ns) const
{
    for (std::size_t i = 0; i < modules_.size(); ++i) {
        if (!modules_[i].loaded || modules_[i].namespaceId != ns)
            continue;
        const auto &exports = modules_[i].module.exports();
        const auto it = exports.find(name);
        if (it != exports.end()) {
            module_id = i;
            exp = &it->second;
            return true;
        }
    }
    return false;
}

Addr
Image::symbolAddress(const std::string &name, std::uint16_t ns) const
{
    std::size_t module_id = 0;
    const elf::Export *exp = nullptr;
    if (!lookupExport(name, module_id, exp, ns))
        throw std::out_of_range("undefined symbol: " + name);
    const auto &lm = modules_[module_id];
    if (exp->ifunc) {
        const auto pick =
            std::min<std::size_t>(hwCapLevel_,
                                  exp->ifuncCandidates.size() - 1);
        return lm.funcAddrs[exp->ifuncCandidates[pick]];
    }
    return lm.funcAddrs[exp->funcIndex];
}

std::uint64_t
Image::totalTrampolines() const
{
    std::uint64_t total = 0;
    for (const auto &lm : modules_) {
        if (lm.loaded)
            total += lm.pltEntryVas.size();
    }
    return total;
}

std::string
Image::trampolineSymbol(Addr plt_jmp_va) const
{
    const auto it = pltJmpInfo_.find(plt_jmp_va);
    if (it == pltJmpInfo_.end())
        return {};
    const auto &lm = modules_[it->second.first];
    return lm.module.imports()[it->second.second] + "@" +
           lm.module.name();
}

std::string
Image::dumpLayout() const
{
    std::ostringstream os;
    os << std::hex;
    for (const auto &lm : modules_) {
        if (!lm.loaded)
            continue;
        os << lm.module.name() << ":\n"
           << "  text 0x" << lm.textBase << " (+0x" << lm.textSize
           << " bytes, " << std::dec
           << lm.module.functions().size() << " functions)\n"
           << std::hex << "  plt  0x" << lm.pltBase << " ("
           << std::dec << lm.pltEntryVas.size() << " entries)\n"
           << std::hex << "  got  0x" << lm.gotBase << "\n"
           << "  data 0x" << lm.dataBase << " (+0x"
           << lm.module.dataSize() << ")\n";
    }
    return os.str();
}

std::uint16_t
Image::addModule(elf::Module module)
{
    const auto id = static_cast<std::uint16_t>(modules_.size());
    LoadedModule lm{std::move(module)};
    lm.id = id;
    modules_.push_back(std::move(lm));
    return id;
}

void
Image::addSlot(Slot slot)
{
    slots_.push_back(slot);
}

void
Image::indexSlots()
{
    // Re-indexing means the decodable-code set changed (dlopen,
    // dlclose, snapshot restore): every cached block is suspect.
    invalidateBlocks();
    slotIndex_.clear();
    pltJmpInfo_.clear();
    fastReset();
    slotIndex_.reserve(slots_.size());
    for (std::uint32_t i = 0; i < slots_.size(); ++i) {
        const Slot &s = slots_[i];
        if (!modules_[s.moduleId].loaded)
            continue;
        slotIndex_.emplace(s.va, i);
        if ((s.flags & FlagPltJmp) && s.pltIndex != NoPltIndex) {
            pltJmpInfo_.emplace(
                s.va, std::make_pair(s.moduleId,
                                     std::uint32_t{s.pltIndex}));
        }
    }
}

void
Image::removeModuleSlots(std::uint16_t module_id)
{
    modules_[module_id].loaded = false;
    indexSlots();
}


void
Image::save(snapshot::Serializer &s) const
{
    s.beginStruct("image");
    s.u32(hwCapLevel_);
    s.u16(nextNamespace_);
    s.u32(static_cast<std::uint32_t>(modules_.size()));
    for (const LoadedModule &m : modules_) {
        s.boolean(m.loaded);
        s.u16(m.namespaceId);
    }
    s.u64(slots_.size());
    for (const Slot &slot : slots_) {
        s.u64(slot.va);
        s.u8(slot.flags);
        s.u16(slot.moduleId);
        s.u16(slot.pltIndex);
        s.u8(static_cast<std::uint8_t>(slot.inst.op));
        s.u8(slot.inst.size);
        s.u8(static_cast<std::uint8_t>(slot.inst.alu));
        s.u8(static_cast<std::uint8_t>(slot.inst.cond));
        s.u8(slot.inst.dst);
        s.u8(slot.inst.src1);
        s.u8(slot.inst.src2);
        s.u8(slot.inst.memBase);
        s.i64(slot.inst.imm);
    }
    s.u64(decodeHits_);
    s.u64(decodeMisses_);
    s.endStruct();
}

void
Image::load(snapshot::Deserializer &d)
{
    d.enterStruct("image");
    hwCapLevel_ = d.u32();
    nextNamespace_ = d.u16();
    d.checkU32(static_cast<std::uint32_t>(modules_.size()),
               "image module count");
    for (LoadedModule &m : modules_) {
        m.loaded = d.boolean();
        m.namespaceId = d.u16();
    }
    d.checkU64(slots_.size(), "image slot count");
    // Bulk-unpack the slot array. Each slot is a fixed 29-byte
    // record (the field-by-field layout save() writes: u64 va, u8
    // flags, u16 moduleId, u16 pltIndex, eight u8 instruction
    // fields, i64 imm); one raw() view replaces ~13 bounds-checked
    // reads per slot, which is measurable when a sweep restores a
    // several-hundred-thousand-slot image into every arm.
    constexpr std::size_t SlotWireBytes = 29;
    const std::uint8_t *p = d.raw(slots_.size() * SlotWireBytes);
    for (Slot &slot : slots_) {
        slot.va = snapshot::le64(p);
        slot.flags = p[8];
        slot.moduleId = snapshot::le16(p + 9);
        slot.pltIndex = snapshot::le16(p + 11);
        slot.inst.op = static_cast<isa::Opcode>(p[13]);
        slot.inst.size = p[14];
        slot.inst.alu = static_cast<isa::AluKind>(p[15]);
        slot.inst.cond = static_cast<isa::CondKind>(p[16]);
        slot.inst.dst = p[17];
        slot.inst.src1 = p[18];
        slot.inst.src2 = p[19];
        slot.inst.memBase = p[20];
        slot.inst.imm =
            static_cast<std::int64_t>(snapshot::le64(p + 21));
        p += SlotWireBytes;
    }
    const std::uint64_t hits = d.u64();
    const std::uint64_t misses = d.u64();
    d.leaveStruct();
    // Rebuild the derived decode index (and reset the decode
    // cache) from the restored slots and loaded flags, then pin
    // the counters the restored run should continue from.
    indexSlots();
    decodeHits_ = hits;
    decodeMisses_ = misses;
}

} // namespace dlsim::linker
