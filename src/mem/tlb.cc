#include "mem/tlb.hh"

#include <bit>
#include <cassert>

#include "snapshot/serializer.hh"
#include "stats/metrics.hh"

namespace dlsim::mem
{

Tlb::Tlb(const TlbParams &params) : params_(params)
{
    assert(params_.assoc > 0 && params_.entries >= params_.assoc);
    numSets_ = params_.entries / params_.assoc;
    assert(std::has_single_bit(numSets_));
    entries_.resize(numSets_ * params_.assoc);
}

Tlb::Entry *
Tlb::findVictim(std::size_t set)
{
    Entry *base = &entries_[set * params_.assoc];
    Entry *victim = base;
    for (std::uint32_t w = 0; w < params_.assoc; ++w) {
        Entry &e = base[w];
        if (!(e.key & 1))
            return &e; // first invalid entry, deterministically
        if (e.lastUse < victim->lastUse)
            victim = &e;
    }
    return victim;
}

bool
Tlb::accessMiss(std::uint64_t vpn, std::size_t set,
                std::uint16_t asid)
{
    ++misses_;
    Entry *victim = findVictim(set);
    if (victim->key & 1)
        ++evictions_;
    victim->key = entryKey(vpn, asid);
    victim->lastUse = tick_;
    lastEntry_ = victim;
    return false;
}

void
Tlb::flushAll()
{
    lastEntry_ = nullptr; // the repeat precondition no longer holds
    for (auto &e : entries_)
        e.key &= ~std::uint64_t{1};
}

void
Tlb::flushAsid(std::uint16_t asid)
{
    lastEntry_ = nullptr; // the repeat precondition no longer holds
    for (auto &e : entries_) {
        if (((e.key >> 1) & 0xffff) == asid)
            e.key &= ~std::uint64_t{1};
    }
}

void
Tlb::clearStats()
{
    hits_ = misses_ = evictions_ = 0;
}

void
Tlb::reportMetrics(stats::MetricsRegistry &reg,
                   const std::string &prefix) const
{
    reg.counter(prefix + ".hits", hits_);
    reg.counter(prefix + ".misses", misses_);
    reg.counter(prefix + ".evictions", evictions_);
}

void
Tlb::save(snapshot::Serializer &s) const
{
    s.beginStruct("tlb");
    s.str(params_.name);
    s.u32(params_.entries);
    s.u32(params_.assoc);
    s.u64(tick_);
    s.u64(hits_);
    s.u64(misses_);
    s.u64(evictions_);
    for (const Entry &e : entries_) {
        // Decompose the packed key into the original wire fields.
        s.u64(e.key >> 17);
        s.u16(static_cast<std::uint16_t>((e.key >> 1) & 0xffff));
        s.boolean((e.key & 1) != 0);
        s.u64(e.lastUse);
    }
    s.endStruct();
}

void
Tlb::load(snapshot::Deserializer &d)
{
    d.enterStruct("tlb");
    const std::string name = d.str();
    if (name != params_.name)
        d.fail("tlb name mismatch: snapshot has '" + name +
               "', machine has '" + params_.name + "'");
    d.checkU32(params_.entries, params_.name + " entries");
    d.checkU32(params_.assoc, params_.name + " assoc");
    tick_ = d.u64();
    hits_ = d.u64();
    misses_ = d.u64();
    evictions_ = d.u64();
    // Bulk-unpack (u64 vpn, u16 asid, bool, u64 lastUse = 19
    // bytes/entry, matching save()); see Cache::load.
    constexpr std::size_t EntryWireBytes = 19;
    const std::uint8_t *p = d.raw(entries_.size() * EntryWireBytes);
    for (Entry &e : entries_) {
        e.key = (snapshot::le64(p) << 17) |
                (static_cast<std::uint64_t>(snapshot::le16(p + 8))
                 << 1) |
                (p[10] != 0 ? 1 : 0);
        e.lastUse = snapshot::le64(p + 11);
        p += EntryWireBytes;
    }
    lastEntry_ = nullptr; // transient; never valid across a restore
    d.leaveStruct();
}

} // namespace dlsim::mem
