#include "mem/address_space.hh"

#include <algorithm>
#include <cassert>

#include "snapshot/serializer.hh"

namespace dlsim::mem
{

Addr
AddressSpace::map(Addr start, Addr size, std::uint8_t perms,
                  RegionKind kind, std::string name)
{
    assert(size > 0);
    for (const auto &r : regions_) {
        // Overlap is a construction bug in the caller (loader).
        assert(start + size <= r.start || start >= r.end());
        (void)r;
    }
    Region region{start, size, perms, kind, std::move(name)};
    const auto it = std::lower_bound(
        regions_.begin(), regions_.end(), region,
        [](const Region &a, const Region &b) {
            return a.start < b.start;
        });
    regions_.insert(it, std::move(region));
    lastRegion_ = 0;
    flushPageCache();
    return start;
}

bool
AddressSpace::protect(Addr addr, std::uint8_t perms)
{
    auto *r = const_cast<Region *>(findRegion(addr));
    if (!r)
        return false;
    r->perms = perms;
    flushPageCache();
    return true;
}

bool
AddressSpace::unmap(Addr addr)
{
    for (auto it = regions_.begin(); it != regions_.end(); ++it) {
        if (it->contains(addr)) {
            const Addr first = it->start >> PageShift;
            const Addr last = (it->end() - 1) >> PageShift;
            for (Addr p = first; p <= last; ++p)
                pages_.erase(p);
            regions_.erase(it);
            lastRegion_ = 0;
            flushPageCache();
            return true;
        }
    }
    return false;
}

const Region *
AddressSpace::findRegion(Addr addr) const
{
    if (regions_.empty())
        return nullptr;
    // Fast path: repeated accesses within the same region.
    if (lastRegion_ < regions_.size() &&
        regions_[lastRegion_].contains(addr)) {
        return &regions_[lastRegion_];
    }
    // Binary search for the last region with start <= addr.
    std::size_t lo = 0, hi = regions_.size();
    while (lo < hi) {
        const std::size_t mid = (lo + hi) / 2;
        if (regions_[mid].start <= addr)
            lo = mid + 1;
        else
            hi = mid;
    }
    if (lo == 0)
        return nullptr;
    const Region &r = regions_[lo - 1];
    if (!r.contains(addr))
        return nullptr;
    lastRegion_ = lo - 1;
    return &r;
}

RegionKind
AddressSpace::kindOf(Addr addr) const
{
    const Region *r = findRegion(addr);
    return r ? r->kind : RegionKind::Data;
}

AddressSpace::PageSlot &
AddressSpace::touchPage(Addr page_num, bool for_write)
{
    auto &slot = pages_[page_num];
    if (!slot.page) {
        slot.page = std::make_shared<PhysPage>();
        slot.cow = false;
        return slot;
    }
    if (for_write && slot.cow) {
        if (slot.page.use_count() > 1) {
            // First write to a shared COW page: copy it.
            slot.page = std::make_shared<PhysPage>(*slot.page);
            const auto kind = kindOf(page_num << PageShift);
            ++cowCopies_[static_cast<std::size_t>(kind)];
        }
        slot.cow = false;
    }
    return slot;
}

std::uint64_t
AddressSpace::read64Slow(Addr addr, MemFault &fault)
{
    assert((addr & 7) == 0);
    ++ptcMisses_;
    const Addr page_num = addr >> PageShift;
    CachedPage &e = cache_[page_num & (CacheSlots - 1)];
    const Region *r = findRegion(addr);
    if (!r) {
        fault = MemFault::Unmapped;
        return 0;
    }
    if (!(r->perms & PermRead)) {
        fault = MemFault::Protection;
        return 0;
    }
    fault = MemFault::None;
    auto &slot = touchPage(page_num, false);
    e.tag = page_num;
    e.page = slot.page.get();
    e.readOk = true;
    e.writeOk = (r->perms & PermWrite) && !slot.cow;
    return slot.page->words[(addr & (PageBytes - 1)) >> 3];
}

MemFault
AddressSpace::write64Slow(Addr addr, std::uint64_t value)
{
    assert((addr & 7) == 0);
    ++ptcMisses_;
    const Addr page_num = addr >> PageShift;
    CachedPage &e = cache_[page_num & (CacheSlots - 1)];
    const Region *r = findRegion(addr);
    if (!r)
        return MemFault::Unmapped;
    if (!(r->perms & PermWrite))
        return MemFault::Protection;
    auto &slot = touchPage(page_num, true);
    e.tag = page_num;
    e.page = slot.page.get();
    e.readOk = (r->perms & PermRead) != 0;
    e.writeOk = true; // touchPage(for_write) left it non-COW
    slot.page->words[(addr & (PageBytes - 1)) >> 3] = value;
    return MemFault::None;
}

void
AddressSpace::poke64(Addr addr, std::uint64_t value)
{
    assert((addr & 7) == 0);
    const Region *r = findRegion(addr);
    assert(r != nullptr);
    const Addr page_num = addr >> PageShift;
    auto &slot = touchPage(page_num, true);
    // Keep the translation cache coherent: the touch may have
    // COW-copied the backing page out from under a cached entry.
    CachedPage &e = cache_[page_num & (CacheSlots - 1)];
    e.tag = page_num;
    e.page = slot.page.get();
    e.readOk = (r->perms & PermRead) != 0;
    e.writeOk = (r->perms & PermWrite) != 0;
    slot.page->words[(addr & (PageBytes - 1)) >> 3] = value;
}

std::uint64_t
AddressSpace::peek64(Addr addr) const
{
    assert((addr & 7) == 0);
    const auto it = pages_.find(addr >> PageShift);
    if (it == pages_.end() || !it->second.page)
        return 0;
    return it->second.page->words[(addr & (PageBytes - 1)) >> 3];
}

void
AddressSpace::fillRandom(Addr start, std::uint64_t bytes,
                         std::uint64_t seed)
{
    assert((start & (PageBytes - 1)) == 0);
    flushPageCache(); // the touches below may COW-copy cached pages
    std::uint64_t x = seed;
    const auto next = [&x] {
        x += 0x9e3779b97f4a7c15ull;
        std::uint64_t z = x;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    };
    for (Addr off = 0; off < bytes; off += PageBytes) {
        auto &slot = touchPage((start + off) >> PageShift, true);
        const std::uint64_t words =
            std::min<std::uint64_t>(WordsPerPage,
                                    (bytes - off) / 8);
        for (std::uint64_t w = 0; w < words; ++w)
            slot.page->words[w] = next();
    }
}

std::unique_ptr<AddressSpace>
AddressSpace::fork() const
{
    auto child = std::make_unique<AddressSpace>();
    child->regions_ = regions_;
    for (const auto &[page_num, slot] : pages_) {
        PageSlot shared;
        shared.page = slot.page;
        // Every private page becomes COW in both parent and child —
        // including currently read-only text, which an mprotect may
        // later make writable (this is how call-site patching after
        // fork breaks sharing, paper §5.5).
        shared.cow = true;
        child->pages_.emplace(page_num, shared);
        auto &mine =
            const_cast<AddressSpace *>(this)->pages_[page_num];
        mine.cow = true;
    }
    // Every page just became COW, so cached writeOk bits are stale.
    flushPageCache();
    return child;
}

std::uint64_t
AddressSpace::cowCopies(RegionKind kind) const
{
    return cowCopies_[static_cast<std::size_t>(kind)];
}

std::uint64_t
AddressSpace::cowCopiesTotal() const
{
    std::uint64_t total = 0;
    for (auto v : cowCopies_)
        total += v;
    return total;
}

std::uint64_t
AddressSpace::sharedPages() const
{
    std::uint64_t n = 0;
    for (const auto &[page_num, slot] : pages_) {
        (void)page_num;
        if (slot.page && slot.page.use_count() > 1)
            ++n;
    }
    return n;
}

std::uint64_t
AddressSpace::privateBytes() const
{
    std::uint64_t n = 0;
    for (const auto &[page_num, slot] : pages_) {
        (void)page_num;
        if (slot.page && slot.page.use_count() == 1)
            ++n;
    }
    return n * PageBytes;
}

std::uint32_t
PagePoolSaver::idOf(const std::shared_ptr<PhysPage> &page)
{
    const auto it = ids_.find(page.get());
    if (it != ids_.end())
        return it->second;
    const auto id = static_cast<std::uint32_t>(pages_.size());
    pages_.push_back(page.get());
    ids_.emplace(page.get(), id);
    return id;
}

void
PagePoolSaver::save(snapshot::Serializer &s) const
{
    s.beginStruct("pages");
    s.u32(static_cast<std::uint32_t>(pages_.size()));
    for (const PhysPage *page : pages_)
        s.bytes(page->words.data(), PageBytes);
    s.endStruct();
}

void
PagePoolLoader::load(snapshot::Deserializer &d)
{
    d.enterStruct("pages");
    const std::uint32_t count = d.u32();
    pages_.clear();
    pages_.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        auto page = std::make_shared<PhysPage>();
        d.bytes(page->words.data(), PageBytes);
        pages_.push_back(std::move(page));
    }
    d.leaveStruct();
}

const std::shared_ptr<PhysPage> &
PagePoolLoader::page(std::uint32_t id) const
{
    if (id >= pages_.size())
        throw snapshot::SnapshotError(
            "snapshot: page id " + std::to_string(id) +
            " out of range (pool has " +
            std::to_string(pages_.size()) + ")");
    return pages_[id];
}

void
AddressSpace::save(snapshot::Serializer &s,
                   PagePoolSaver &pool) const
{
    s.beginStruct("aspace");
    s.u32(static_cast<std::uint32_t>(regions_.size()));
    for (const Region &r : regions_) {
        s.u64(r.start);
        s.u64(r.size);
        s.u8(r.perms);
        s.u8(static_cast<std::uint8_t>(r.kind));
        s.str(r.name);
    }
    for (const std::uint64_t c : cowCopies_)
        s.u64(c);
    // The page table is an unordered map; emit in page-number order
    // so identical state always produces identical bytes.
    std::vector<Addr> nums;
    nums.reserve(pages_.size());
    for (const auto &[num, slot] : pages_) {
        (void)slot;
        nums.push_back(num);
    }
    std::sort(nums.begin(), nums.end());
    s.u64(nums.size());
    for (const Addr num : nums) {
        const PageSlot &slot = pages_.at(num);
        s.u64(num);
        s.u32(pool.idOf(slot.page));
        s.boolean(slot.cow);
    }
    s.endStruct();
}

void
AddressSpace::load(snapshot::Deserializer &d,
                   const PagePoolLoader &pool)
{
    d.enterStruct("aspace");
    regions_.clear();
    lastRegion_ = 0;
    const std::uint32_t nregions = d.u32();
    regions_.reserve(nregions);
    for (std::uint32_t i = 0; i < nregions; ++i) {
        Region r;
        r.start = d.u64();
        r.size = d.u64();
        r.perms = d.u8();
        r.kind = static_cast<RegionKind>(d.u8());
        r.name = d.str();
        regions_.push_back(std::move(r));
    }
    for (std::uint64_t &c : cowCopies_)
        c = d.u64();
    pages_.clear();
    const std::uint64_t npages = d.u64();
    pages_.reserve(npages);
    for (std::uint64_t i = 0; i < npages; ++i) {
        const Addr num = d.u64();
        PageSlot slot;
        slot.page = pool.page(d.u32());
        slot.cow = d.boolean();
        pages_.emplace(num, std::move(slot));
    }
    d.leaveStruct();
    flushPageCache();
}

} // namespace dlsim::mem
