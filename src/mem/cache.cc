#include "mem/cache.hh"

#include <bit>
#include <cassert>

#include "snapshot/serializer.hh"
#include "stats/metrics.hh"

namespace dlsim::mem
{

Cache::Cache(const CacheParams &params) : params_(params)
{
    assert(params_.lineBytes > 0 &&
           std::has_single_bit(params_.lineBytes));
    assert(params_.assoc > 0);
    lineShift_ = static_cast<std::uint32_t>(
        std::countr_zero(params_.lineBytes));
    const std::uint64_t lines = params_.sizeBytes / params_.lineBytes;
    assert(lines >= params_.assoc);
    numSets_ = lines / params_.assoc;
    setsArePow2_ = std::has_single_bit(numSets_);
    assocPow2_ = std::has_single_bit(params_.assoc);
    if (assocPow2_)
        assocShift_ = static_cast<std::uint32_t>(
            std::countr_zero(params_.assoc));
    ways_.resize(numSets_ * params_.assoc);
    mruWay_.assign(numSets_, 0);
}

Cache::Way *
Cache::findWay(std::uint64_t line, std::size_t set,
               std::uint16_t asid)
{
    Way *base = &ways_[set * params_.assoc];
    // Branchless select over the set: fixed trip count, no
    // data-dependent early exit (at most one way can match).
    const std::uint64_t want = wayKey(line, asid);
    std::uint32_t hit = params_.assoc;
    for (std::uint32_t w = 0; w < params_.assoc; ++w)
        hit = base[w].key == want ? w : hit;
    if (hit == params_.assoc)
        return nullptr;
    mruWay_[set] = hit;
    return &base[hit];
}

Cache::Way *
Cache::findVictim(std::size_t set)
{
    Way *base = &ways_[set * params_.assoc];
    Way *victim = base;
    for (std::uint32_t w = 0; w < params_.assoc; ++w) {
        Way &way = base[w];
        if (!(way.key & 1))
            return &way; // first invalid way, deterministically
        if (way.lastUse < victim->lastUse)
            victim = &way;
    }
    return victim;
}

void
Cache::fill(Way *victim, std::uint64_t line, std::uint16_t asid)
{
    if (victim->key & 1)
        ++evictions_;
    victim->key = wayKey(line, asid);
    victim->lastUse = tick_;
    // The filled line is the set's next likely hit.
    const std::size_t slot = static_cast<std::size_t>(
        victim - ways_.data());
    mruWay_[slot / params_.assoc] =
        static_cast<std::uint32_t>(slot % params_.assoc);
}

bool
Cache::accessMiss(std::uint64_t line, std::size_t set,
                  std::uint16_t asid)
{
    ++misses_;
    Way *victim = findVictim(set);
    fill(victim, line, asid);
    lastWay_ = victim;
    return false;
}

void
Cache::prefetch(Addr addr, std::uint16_t asid)
{
    // A prefetch fill can move the MRU hand, so a touchRepeat()
    // after it would no longer mirror a real access().
    lastWay_ = nullptr;
    ++tick_;
    const std::uint64_t line = lineOf(addr);
    const std::size_t set = setOf(line);
    if (Way *way = findWay(line, set, asid)) {
        way->lastUse = tick_;
        return;
    }
    ++prefetches_;
    fill(findVictim(set), line, asid);
}

bool
Cache::contains(Addr addr, std::uint16_t asid) const
{
    const std::uint64_t line = lineOf(addr);
    const std::size_t set = setOf(line);
    const std::uint64_t want = wayKey(line, asid);
    const Way *base = &ways_[set * params_.assoc];
    for (std::uint32_t w = 0; w < params_.assoc; ++w) {
        if (base[w].key == want)
            return true;
    }
    return false;
}

void
Cache::invalidateLine(Addr addr, std::uint16_t asid)
{
    lastWay_ = nullptr; // the repeat precondition no longer holds
    const std::uint64_t line = lineOf(addr);
    const std::size_t set = setOf(line);
    const std::uint64_t want = wayKey(line, asid);
    Way *base = &ways_[set * params_.assoc];
    for (std::uint32_t w = 0; w < params_.assoc; ++w) {
        if (base[w].key == want)
            base[w].key &= ~std::uint64_t{1};
    }
}

void
Cache::invalidateLineAllAsids(Addr addr)
{
    lastWay_ = nullptr; // the repeat precondition no longer holds
    const std::uint64_t line = lineOf(addr);
    const std::size_t set = setOf(line);
    Way *base = &ways_[set * params_.assoc];
    for (std::uint32_t w = 0; w < params_.assoc; ++w) {
        if ((base[w].key & 1) && (base[w].key >> 17) == line)
            base[w].key &= ~std::uint64_t{1};
    }
}

void
Cache::invalidateAll()
{
    lastWay_ = nullptr;
    for (auto &way : ways_)
        way.key &= ~std::uint64_t{1};
}

double
Cache::missRate() const
{
    const auto total = hits_ + misses_;
    return total == 0
               ? 0.0
               : static_cast<double>(misses_) /
                     static_cast<double>(total);
}

void
Cache::clearStats()
{
    hits_ = misses_ = prefetches_ = evictions_ = 0;
}

void
Cache::reportMetrics(stats::MetricsRegistry &reg,
                     const std::string &prefix) const
{
    reg.counter(prefix + ".hits", hits_);
    reg.counter(prefix + ".misses", misses_);
    reg.counter(prefix + ".prefetches", prefetches_);
    reg.counter(prefix + ".evictions", evictions_);
    reg.gauge(prefix + ".miss_rate", missRate());
}

void
Cache::save(snapshot::Serializer &s) const
{
    s.beginStruct("cache");
    s.str(params_.name);
    s.u64(params_.sizeBytes);
    s.u32(params_.assoc);
    s.u32(params_.lineBytes);
    s.u64(tick_);
    s.u64(hits_);
    s.u64(misses_);
    s.u64(prefetches_);
    s.u64(evictions_);
    for (const Way &w : ways_) {
        // Decompose the packed key into the original wire fields.
        s.u64(w.key >> 17);
        s.u16(static_cast<std::uint16_t>((w.key >> 1) & 0xffff));
        s.boolean((w.key & 1) != 0);
        s.u64(w.lastUse);
    }
    for (const std::uint32_t m : mruWay_)
        s.u32(m);
    s.endStruct();
}

void
Cache::load(snapshot::Deserializer &d)
{
    d.enterStruct("cache");
    const std::string name = d.str();
    if (name != params_.name)
        d.fail("cache name mismatch: snapshot has '" + name +
               "', machine has '" + params_.name + "'");
    d.checkU64(params_.sizeBytes, params_.name + " sizeBytes");
    d.checkU32(params_.assoc, params_.name + " assoc");
    d.checkU32(params_.lineBytes, params_.name + " lineBytes");
    tick_ = d.u64();
    hits_ = d.u64();
    misses_ = d.u64();
    prefetches_ = d.u64();
    evictions_ = d.u64();
    // Bulk-unpack the way array (u64 tag, u16 asid, bool valid,
    // u64 lastUse = 19 bytes/way, the layout save() writes): a
    // sweep restores tens of thousands of ways per arm, so the
    // per-field bounds-checked reads are measurable restore cost.
    constexpr std::size_t WayWireBytes = 19;
    const std::uint8_t *p = d.raw(ways_.size() * WayWireBytes);
    for (Way &w : ways_) {
        w.key = (snapshot::le64(p) << 17) |
                (static_cast<std::uint64_t>(snapshot::le16(p + 8))
                 << 1) |
                (p[10] != 0 ? 1 : 0);
        w.lastUse = snapshot::le64(p + 11);
        p += WayWireBytes;
    }
    for (std::uint32_t &m : mruWay_)
        m = d.u32();
    lastWay_ = nullptr; // transient; never valid across a restore
    d.leaveStruct();
}

} // namespace dlsim::mem
