#include "mem/cache.hh"

#include <bit>
#include <cassert>

namespace dlsim::mem
{

Cache::Cache(const CacheParams &params) : params_(params)
{
    assert(params_.lineBytes > 0 &&
           std::has_single_bit(params_.lineBytes));
    assert(params_.assoc > 0);
    lineShift_ = static_cast<std::uint32_t>(
        std::countr_zero(params_.lineBytes));
    const std::uint64_t lines = params_.sizeBytes / params_.lineBytes;
    assert(lines >= params_.assoc);
    numSets_ = lines / params_.assoc;
    setsArePow2_ = std::has_single_bit(numSets_);
    ways_.resize(numSets_ * params_.assoc);
}

bool
Cache::access(Addr addr, std::uint16_t asid)
{
    ++tick_;
    const std::uint64_t line = lineOf(addr);
    const std::size_t set = setOf(line);
    Way *base = &ways_[set * params_.assoc];
    Way *victim = base;
    for (std::uint32_t w = 0; w < params_.assoc; ++w) {
        Way &way = base[w];
        if (way.valid && way.tag == line && way.asid == asid) {
            way.lastUse = tick_;
            ++hits_;
            return true;
        }
        if (!way.valid) {
            victim = &way;
        } else if (victim->valid && way.lastUse < victim->lastUse) {
            victim = &way;
        }
    }
    ++misses_;
    victim->valid = true;
    victim->tag = line;
    victim->asid = asid;
    victim->lastUse = tick_;
    return false;
}

void
Cache::prefetch(Addr addr, std::uint16_t asid)
{
    ++tick_;
    const std::uint64_t line = lineOf(addr);
    const std::size_t set = setOf(line);
    Way *base = &ways_[set * params_.assoc];
    Way *victim = base;
    for (std::uint32_t w = 0; w < params_.assoc; ++w) {
        Way &way = base[w];
        if (way.valid && way.tag == line && way.asid == asid) {
            way.lastUse = tick_;
            return;
        }
        if (!way.valid) {
            victim = &way;
        } else if (victim->valid && way.lastUse < victim->lastUse) {
            victim = &way;
        }
    }
    victim->valid = true;
    victim->tag = line;
    victim->asid = asid;
    victim->lastUse = tick_;
}

bool
Cache::contains(Addr addr, std::uint16_t asid) const
{
    const std::uint64_t line = lineOf(addr);
    const std::size_t set = setOf(line);
    const Way *base = &ways_[set * params_.assoc];
    for (std::uint32_t w = 0; w < params_.assoc; ++w) {
        const Way &way = base[w];
        if (way.valid && way.tag == line && way.asid == asid)
            return true;
    }
    return false;
}

void
Cache::invalidateLine(Addr addr)
{
    const std::uint64_t line = lineOf(addr);
    const std::size_t set = setOf(line);
    Way *base = &ways_[set * params_.assoc];
    for (std::uint32_t w = 0; w < params_.assoc; ++w) {
        if (base[w].valid && base[w].tag == line)
            base[w].valid = false;
    }
}

void
Cache::invalidateAll()
{
    for (auto &way : ways_)
        way.valid = false;
}

double
Cache::missRate() const
{
    const auto total = hits_ + misses_;
    return total == 0
               ? 0.0
               : static_cast<double>(misses_) /
                     static_cast<double>(total);
}

void
Cache::clearStats()
{
    hits_ = misses_ = 0;
}

} // namespace dlsim::mem
