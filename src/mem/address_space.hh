/**
 * @file
 * Per-process virtual address space with lazily allocated, reference-
 * counted physical pages and copy-on-write sharing.
 *
 * COW page accounting is load-bearing for the reproduction: §5.5 of
 * the paper argues that a software call-site-patching approach defeats
 * COW sharing of library text (~280 copied pages / 1.1MB per Apache
 * process), while the proposed hardware leaves code pages untouched.
 * fork() and the page-copy counters here regenerate that analysis.
 */

#ifndef DLSIM_MEM_ADDRESS_SPACE_HH
#define DLSIM_MEM_ADDRESS_SPACE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "isa/instruction.hh"

namespace dlsim::snapshot
{
class Serializer;
class Deserializer;
}

namespace dlsim::mem
{

using isa::Addr;

/** Page geometry (4KB pages, 64-bit words). */
constexpr Addr PageShift = 12;
constexpr Addr PageBytes = 1ull << PageShift;
constexpr std::size_t WordsPerPage = PageBytes / 8;

/** Page permission bits. */
enum Perm : std::uint8_t
{
    PermNone = 0,
    PermRead = 1,
    PermWrite = 2,
    PermExec = 4,
};

/** Classification of mapped regions, for page-copy accounting. */
enum class RegionKind : std::uint8_t
{
    Text,  ///< Executable code (including PLT sections).
    Got,   ///< Linker lookup tables (GOT / GOTPLT).
    Data,  ///< Module data sections and heap.
    Stack, ///< Thread stack.
};

/** A mapped virtual region. */
struct Region
{
    Addr start = 0;
    Addr size = 0;
    std::uint8_t perms = PermNone;
    RegionKind kind = RegionKind::Data;
    std::string name;

    bool contains(Addr a) const { return a >= start && a - start < size; }
    Addr end() const { return start + size; }
};

/** Faults reported by AddressSpace accesses. */
enum class MemFault : std::uint8_t
{
    None,
    Unmapped,
    Protection,
};

/**
 * A page of backing storage, shareable between address spaces.
 */
struct PhysPage
{
    std::array<std::uint64_t, WordsPerPage> words{};
};

/**
 * Deduplicating page pool for checkpointing. COW-shared pages are
 * identified by pointer, so a backing page referenced by several
 * address spaces (or several page numbers) is written once and the
 * sharing topology — and with it sharedPages()/privateBytes()
 * accounting — survives a save/load roundtrip exactly.
 *
 * Usage: every AddressSpace::save records page ids through one
 * shared saver, then the saver itself is saved (after all spaces).
 * On restore the loader is loaded first and handed to every
 * AddressSpace::load.
 */
class PagePoolSaver
{
  public:
    /** Id of `page`, registering it on first sight. */
    std::uint32_t idOf(const std::shared_ptr<PhysPage> &page);

    /** Write all registered pages ("pages" struct record). */
    void save(snapshot::Serializer &s) const;

  private:
    std::vector<const PhysPage *> pages_;
    std::unordered_map<const PhysPage *, std::uint32_t> ids_;
};

/** Restores the pool written by PagePoolSaver. */
class PagePoolLoader
{
  public:
    void load(snapshot::Deserializer &d);

    /** Shared page for `id`; throws SnapshotError if out of range. */
    const std::shared_ptr<PhysPage> &page(std::uint32_t id) const;

  private:
    std::vector<std::shared_ptr<PhysPage>> pages_;
};

/**
 * Virtual address space: region list plus a page table mapping page
 * numbers to shared backing pages.
 *
 * Pages are allocated on first touch. fork() produces a child that
 * shares every present page; writable pages are marked copy-on-write
 * in both parent and child, and the first subsequent write to such a
 * page copies it and bumps the per-region-kind copy counters.
 */
class AddressSpace
{
  public:
    AddressSpace() = default;

    /**
     * Map a region. Overlapping an existing region is a usage error.
     * @return Start address (== start argument).
     */
    Addr map(Addr start, Addr size, std::uint8_t perms, RegionKind kind,
             std::string name);

    /** Change permissions of the region containing addr (mprotect). */
    bool protect(Addr addr, std::uint8_t perms);

    /** Remove the region containing addr; frees this space's refs. */
    bool unmap(Addr addr);

    /** Region lookup; nullptr when unmapped. */
    const Region *findRegion(Addr addr) const;

    /** All current regions (for diagnostics and layout dumps). */
    const std::vector<Region> &regions() const { return regions_; }

    /**
     * Aligned 64-bit load. @param fault receives the fault kind
     * (None on success); the returned value is 0 on fault.
     */
    std::uint64_t read64(Addr addr, MemFault &fault);

    /** Aligned 64-bit store. @return Fault kind (None on success). */
    MemFault write64(Addr addr, std::uint64_t value);

    /**
     * Store that bypasses permission checks (used by the loader to
     * populate GOT/data and by the software patcher after mprotect
     * accounting has been done explicitly). Still honours COW.
     */
    void poke64(Addr addr, std::uint64_t value);

    /** Load that bypasses permission checks (loader/debugger use). */
    std::uint64_t peek64(Addr addr) const;

    /**
     * Fill [start, start+bytes) with deterministic pseudo-random
     * words (page-at-a-time; much faster than per-word poke64).
     * Used to seed workload data sections. @pre page-aligned start.
     */
    void fillRandom(Addr start, std::uint64_t bytes,
                    std::uint64_t seed);

    /**
     * Fork: duplicate the region table and share all present pages
     * copy-on-write, as the OS does for a child process.
     */
    std::unique_ptr<AddressSpace> fork() const;

    /** @name COW and footprint accounting @{ */
    std::uint64_t cowCopies(RegionKind kind) const;
    std::uint64_t cowCopiesTotal() const;
    /** Pages currently present (allocated) in this space. */
    std::uint64_t presentPages() const { return pages_.size(); }
    /**
     * Pages in this space whose backing is shared with another space.
     */
    std::uint64_t sharedPages() const;
    /** Bytes of backing uniquely owned by this space. */
    std::uint64_t privateBytes() const;
    /** @} */

    /**
     * Checkpoint regions, the page table (as pool ids), and COW
     * accounting. Backing pages themselves are written once by the
     * shared `pool`.
     */
    void save(snapshot::Serializer &s, PagePoolSaver &pool) const;

    /** Restore from a snapshot; replaces all current state. */
    void load(snapshot::Deserializer &d,
              const PagePoolLoader &pool);

  private:
    struct PageSlot
    {
        std::shared_ptr<PhysPage> page;
        bool cow = false;
    };

    PageSlot &touchPage(Addr page_num, bool for_write);
    RegionKind kindOf(Addr addr) const;

    /** Regions sorted by start address for binary search. */
    std::vector<Region> regions_;
    /** Index of the most recently hit region (locality cache). */
    mutable std::size_t lastRegion_ = 0;
    std::unordered_map<Addr, PageSlot> pages_;
    std::array<std::uint64_t, 4> cowCopies_{};
};

} // namespace dlsim::mem

#endif // DLSIM_MEM_ADDRESS_SPACE_HH
