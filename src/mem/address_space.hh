/**
 * @file
 * Per-process virtual address space with lazily allocated, reference-
 * counted physical pages and copy-on-write sharing.
 *
 * COW page accounting is load-bearing for the reproduction: §5.5 of
 * the paper argues that a software call-site-patching approach defeats
 * COW sharing of library text (~280 copied pages / 1.1MB per Apache
 * process), while the proposed hardware leaves code pages untouched.
 * fork() and the page-copy counters here regenerate that analysis.
 */

#ifndef DLSIM_MEM_ADDRESS_SPACE_HH
#define DLSIM_MEM_ADDRESS_SPACE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "isa/instruction.hh"

namespace dlsim::snapshot
{
class Serializer;
class Deserializer;
}

namespace dlsim::mem
{

using isa::Addr;

/** Page geometry (4KB pages, 64-bit words). */
constexpr Addr PageShift = 12;
constexpr Addr PageBytes = 1ull << PageShift;
constexpr std::size_t WordsPerPage = PageBytes / 8;

/** Page permission bits. */
enum Perm : std::uint8_t
{
    PermNone = 0,
    PermRead = 1,
    PermWrite = 2,
    PermExec = 4,
};

/** Classification of mapped regions, for page-copy accounting. */
enum class RegionKind : std::uint8_t
{
    Text,  ///< Executable code (including PLT sections).
    Got,   ///< Linker lookup tables (GOT / GOTPLT).
    Data,  ///< Module data sections and heap.
    Stack, ///< Thread stack.
};

/** A mapped virtual region. */
struct Region
{
    Addr start = 0;
    Addr size = 0;
    std::uint8_t perms = PermNone;
    RegionKind kind = RegionKind::Data;
    std::string name;

    bool contains(Addr a) const { return a >= start && a - start < size; }
    Addr end() const { return start + size; }
};

/** Faults reported by AddressSpace accesses. */
enum class MemFault : std::uint8_t
{
    None,
    Unmapped,
    Protection,
};

/**
 * A page of backing storage, shareable between address spaces.
 */
struct PhysPage
{
    std::array<std::uint64_t, WordsPerPage> words{};
};

/**
 * Deduplicating page pool for checkpointing. COW-shared pages are
 * identified by pointer, so a backing page referenced by several
 * address spaces (or several page numbers) is written once and the
 * sharing topology — and with it sharedPages()/privateBytes()
 * accounting — survives a save/load roundtrip exactly.
 *
 * Usage: every AddressSpace::save records page ids through one
 * shared saver, then the saver itself is saved (after all spaces).
 * On restore the loader is loaded first and handed to every
 * AddressSpace::load.
 */
class PagePoolSaver
{
  public:
    /** Id of `page`, registering it on first sight. */
    std::uint32_t idOf(const std::shared_ptr<PhysPage> &page);

    /** Write all registered pages ("pages" struct record). */
    void save(snapshot::Serializer &s) const;

  private:
    std::vector<const PhysPage *> pages_;
    std::unordered_map<const PhysPage *, std::uint32_t> ids_;
};

/** Restores the pool written by PagePoolSaver. */
class PagePoolLoader
{
  public:
    void load(snapshot::Deserializer &d);

    /** Shared page for `id`; throws SnapshotError if out of range. */
    const std::shared_ptr<PhysPage> &page(std::uint32_t id) const;

  private:
    std::vector<std::shared_ptr<PhysPage>> pages_;
};

/**
 * Virtual address space: region list plus a page table mapping page
 * numbers to shared backing pages.
 *
 * Pages are allocated on first touch. fork() produces a child that
 * shares every present page; writable pages are marked copy-on-write
 * in both parent and child, and the first subsequent write to such a
 * page copies it and bumps the per-region-kind copy counters.
 */
class AddressSpace
{
  public:
    AddressSpace() = default;

    /**
     * Map a region. Overlapping an existing region is a usage error.
     * @return Start address (== start argument).
     */
    Addr map(Addr start, Addr size, std::uint8_t perms, RegionKind kind,
             std::string name);

    /** Change permissions of the region containing addr (mprotect). */
    bool protect(Addr addr, std::uint8_t perms);

    /** Remove the region containing addr; frees this space's refs. */
    bool unmap(Addr addr);

    /** Region lookup; nullptr when unmapped. */
    const Region *findRegion(Addr addr) const;

    /** All current regions (for diagnostics and layout dumps). */
    const std::vector<Region> &regions() const { return regions_; }

    /**
     * Aligned 64-bit load. @param fault receives the fault kind
     * (None on success); the returned value is 0 on fault.
     *
     * Defined inline so the translation-cache hit — the common case
     * in both the timing core and the fast-forward interpreter —
     * compiles to a handful of instructions at the call site.
     */
    std::uint64_t
    read64(Addr addr, MemFault &fault)
    {
        const Addr page_num = addr >> PageShift;
        const CachedPage &e = cache_[page_num & (CacheSlots - 1)];
        if (e.tag == page_num && e.readOk) {
            ++ptcHits_;
            fault = MemFault::None;
            return e.page->words[(addr & (PageBytes - 1)) >> 3];
        }
        return read64Slow(addr, fault);
    }

    /** Aligned 64-bit store. @return Fault kind (None on success). */
    MemFault
    write64(Addr addr, std::uint64_t value)
    {
        const Addr page_num = addr >> PageShift;
        const CachedPage &e = cache_[page_num & (CacheSlots - 1)];
        if (e.tag == page_num && e.writeOk) {
            ++ptcHits_;
            e.page->words[(addr & (PageBytes - 1)) >> 3] = value;
            return MemFault::None;
        }
        return write64Slow(addr, value);
    }

    /**
     * Store that bypasses permission checks (used by the loader to
     * populate GOT/data and by the software patcher after mprotect
     * accounting has been done explicitly). Still honours COW.
     */
    void poke64(Addr addr, std::uint64_t value);

    /** Load that bypasses permission checks (loader/debugger use). */
    std::uint64_t peek64(Addr addr) const;

    /**
     * Fill [start, start+bytes) with deterministic pseudo-random
     * words (page-at-a-time; much faster than per-word poke64).
     * Used to seed workload data sections. @pre page-aligned start.
     */
    void fillRandom(Addr start, std::uint64_t bytes,
                    std::uint64_t seed);

    /**
     * Fork: duplicate the region table and share all present pages
     * copy-on-write, as the OS does for a child process.
     */
    std::unique_ptr<AddressSpace> fork() const;

    /** @name COW and footprint accounting @{ */
    std::uint64_t cowCopies(RegionKind kind) const;
    std::uint64_t cowCopiesTotal() const;
    /** Pages currently present (allocated) in this space. */
    std::uint64_t presentPages() const { return pages_.size(); }
    /**
     * Pages in this space whose backing is shared with another space.
     */
    std::uint64_t sharedPages() const;
    /** Bytes of backing uniquely owned by this space. */
    std::uint64_t privateBytes() const;
    /** @} */

    /** @name Page-translation-cache statistics @{
     *
     * Hit/miss/flush counts for the inline translation cache, so
     * its effectiveness shows up in --json-out documents
     * (dlsim.mem.ptc.*). Counted on read64/write64 only — peek64/
     * poke64 are harness accessors, not simulated traffic. The
     * counters are NOT serialized: the cache starts cold after a
     * restore, so the hit/miss split is a property of the process,
     * not of the architectural state (snapshot-equivalence
     * comparisons strip the dlsim.mem.ptc. prefix for this reason).
     */
    std::uint64_t ptcHits() const { return ptcHits_; }
    std::uint64_t ptcMisses() const { return ptcMisses_; }
    std::uint64_t ptcFlushes() const { return ptcFlushes_; }
    void clearPtcStats()
    {
        ptcHits_ = ptcMisses_ = ptcFlushes_ = 0;
    }
    /** @} */

    /**
     * Checkpoint regions, the page table (as pool ids), and COW
     * accounting. Backing pages themselves are written once by the
     * shared `pool`.
     */
    void save(snapshot::Serializer &s, PagePoolSaver &pool) const;

    /** Restore from a snapshot; replaces all current state. */
    void load(snapshot::Deserializer &d,
              const PagePoolLoader &pool);

  private:
    struct PageSlot
    {
        std::shared_ptr<PhysPage> page;
        bool cow = false;
    };

    /**
     * Direct-mapped page-translation cache over the region +
     * page-table lookup — the hot-loop cost of every simulated
     * memory access (both the timing core and the fast-forward
     * interpreter). Purely an accelerator: hits reproduce exactly
     * what the slow path would do, so no architectural state or
     * counter can differ.
     *
     * Invariants: an entry is filled only from the slow path;
     * `writeOk` implies the backing page was non-COW at fill time
     * (a hit can therefore store without the COW check or copy
     * accounting — the slow path would not have copied either).
     * Every operation that can change a translation — map, protect,
     * unmap, fork (pages become COW), snapshot load, fillRandom
     * (may COW-copy) — flushes the cache. A COW copy in the write
     * slow path refills the entry, replacing the stale pointer.
     */
    struct CachedPage
    {
        Addr tag = ~Addr{0};
        PhysPage *page = nullptr;
        bool readOk = false;
        bool writeOk = false;
    };
    /** Direct-mapped slot count. 4096 covers a 16MB working set
     *  without conflict aliasing; at 24 bytes/slot the table is
     *  still well under L2-resident. */
    static constexpr std::size_t CacheSlots = 4096;

    void
    flushPageCache() const
    {
        ++ptcFlushes_;
        for (CachedPage &e : cache_)
            e = CachedPage{};
    }

    /** Cache-miss paths: region/permission checks, page touch
     *  (allocation, COW copy), then refill of the cache entry. */
    std::uint64_t read64Slow(Addr addr, MemFault &fault);
    MemFault write64Slow(Addr addr, std::uint64_t value);

    PageSlot &touchPage(Addr page_num, bool for_write);
    RegionKind kindOf(Addr addr) const;

    /** Regions sorted by start address for binary search. */
    std::vector<Region> regions_;
    /** Index of the most recently hit region (locality cache). */
    mutable std::size_t lastRegion_ = 0;
    std::unordered_map<Addr, PageSlot> pages_;
    std::array<std::uint64_t, 4> cowCopies_{};
    mutable std::array<CachedPage, CacheSlots> cache_{};
    /** Translation-cache statistics. Mutable: flushPageCache() is
     *  const (called from accounting-neutral paths). Not serialized
     *  — see the accessor block's contract. */
    mutable std::uint64_t ptcHits_ = 0;
    mutable std::uint64_t ptcMisses_ = 0;
    mutable std::uint64_t ptcFlushes_ = 0;
};

} // namespace dlsim::mem

#endif // DLSIM_MEM_ADDRESS_SPACE_HH
