/**
 * @file
 * Memory hierarchy: split L1 caches and TLBs over a unified L2/L3.
 *
 * Geometry defaults approximate the paper's testbed class of machine
 * (32KB split L1s, 12MB last-level cache). The hierarchy converts
 * each instruction fetch and data access into TLB and cache lookups
 * and reports the extra cycles the access costs, which the CPU's
 * timing model adds to the cycle count.
 */

#ifndef DLSIM_MEM_HIERARCHY_HH
#define DLSIM_MEM_HIERARCHY_HH

#include <cstdint>

#include "mem/cache.hh"
#include "mem/tlb.hh"

namespace dlsim::mem
{

/** Hierarchy geometry and latencies (cycles). */
struct HierarchyParams
{
    CacheParams l1i{"l1i", 32 * 1024, 8, 64};
    CacheParams l1d{"l1d", 32 * 1024, 8, 64};
    CacheParams l2{"l2", 256 * 1024, 8, 64};
    CacheParams l3{"l3", 12 * 1024 * 1024, 16, 64};
    TlbParams itlb{"itlb", 64, 4};
    TlbParams dtlb{"dtlb", 64, 4};

    std::uint32_t l2Latency = 12;
    std::uint32_t l3Latency = 36;
    std::uint32_t memLatency = 220;
    std::uint32_t walkLatency = 50;

    /**
     * Next-line instruction prefetcher: on every fetch, fill the
     * following line into L1I (latency assumed hidden). Used by
     * the prefetch ablation: streaming prefetch reduces the
     * I-cache pressure of straight-line code but cannot help the
     * trampoline's non-sequential PLT/GOT accesses.
     */
    bool iPrefetchNextLine = false;
};

/** Outcome of one access through the hierarchy. */
struct AccessResult
{
    bool tlbHit = true;
    bool l1Hit = true;
    bool l2Hit = true;
    bool l3Hit = true;
    std::uint32_t extraCycles = 0;
};

/**
 * The full hierarchy. Instruction fetches go through I-TLB and L1I;
 * data accesses through D-TLB and L1D; both share L2 and L3.
 */
class Hierarchy
{
  public:
    explicit Hierarchy(const HierarchyParams &params = {});

    /** Fetch of the instruction at addr. */
    AccessResult fetch(Addr addr, std::uint16_t asid);

    /** Data access at addr. */
    AccessResult data(Addr addr, std::uint16_t asid);

    /** Context-switch without ASID support: flush both TLBs. */
    void flushTlbs();

    /** Coherence write-invalidate from another core: drop the line
     *  from the data-side caches in every address space (a physical
     *  snoop cannot know which ASIDs map the line). */
    void invalidateDataLine(Addr addr);

    /** Targeted invalidation of one address space's copy, e.g. when
     *  this core observes a store to a GOT slot it caches. */
    void invalidateDataLine(Addr addr, std::uint16_t asid);

    const Cache &l1i() const { return l1i_; }
    const Cache &l1d() const { return l1d_; }
    const Cache &l2() const { return l2_; }
    const Cache &l3() const { return l3_; }
    const Tlb &itlb() const { return itlb_; }
    const Tlb &dtlb() const { return dtlb_; }

    const HierarchyParams &params() const { return params_; }

    /**
     * Override the hierarchy's latency scalars. Used when fanning a
     * machine sweep out from a restored snapshot: latencies are pure
     * timing inputs, so changing them post-restore cannot perturb
     * cache/TLB contents.
     */
    void setLatencies(std::uint32_t l2, std::uint32_t l3,
                      std::uint32_t mem, std::uint32_t walk)
    {
        params_.l2Latency = l2;
        params_.l3Latency = l3;
        params_.memLatency = mem;
        params_.walkLatency = walk;
    }

    /** Checkpoint every level (geometry-checked on load). */
    void save(snapshot::Serializer &s) const;
    void load(snapshot::Deserializer &d);

    void clearStats();

    /** Register every level's counters under `prefix` (e.g.
     *  "dlsim.cpu" yields "dlsim.cpu.l1i.misses", ...). */
    void reportMetrics(stats::MetricsRegistry &reg,
                       const std::string &prefix) const;

  private:
    AccessResult accessThrough(Tlb &tlb, Cache &l1, Addr addr,
                               std::uint16_t asid);

    HierarchyParams params_;
    Cache l1i_;
    Cache l1d_;
    Cache l2_;
    Cache l3_;
    Tlb itlb_;
    Tlb dtlb_;
};

} // namespace dlsim::mem

#endif // DLSIM_MEM_HIERARCHY_HH
