/**
 * @file
 * Memory hierarchy: split L1 caches and TLBs over a unified L2/L3.
 *
 * Geometry defaults approximate the paper's testbed class of machine
 * (32KB split L1s, 12MB last-level cache). The hierarchy converts
 * each instruction fetch and data access into TLB and cache lookups
 * and reports the extra cycles the access costs, which the CPU's
 * timing model adds to the cycle count.
 */

#ifndef DLSIM_MEM_HIERARCHY_HH
#define DLSIM_MEM_HIERARCHY_HH

#include <cstdint>

#include "mem/cache.hh"
#include "mem/tlb.hh"

namespace dlsim::mem
{

/** Hierarchy geometry and latencies (cycles). */
struct HierarchyParams
{
    CacheParams l1i{"l1i", 32 * 1024, 8, 64};
    CacheParams l1d{"l1d", 32 * 1024, 8, 64};
    CacheParams l2{"l2", 256 * 1024, 8, 64};
    CacheParams l3{"l3", 12 * 1024 * 1024, 16, 64};
    TlbParams itlb{"itlb", 64, 4};
    TlbParams dtlb{"dtlb", 64, 4};

    std::uint32_t l2Latency = 12;
    std::uint32_t l3Latency = 36;
    std::uint32_t memLatency = 220;
    std::uint32_t walkLatency = 50;

    /**
     * Next-line instruction prefetcher: on every fetch, fill the
     * following line into L1I (latency assumed hidden). Used by
     * the prefetch ablation: streaming prefetch reduces the
     * I-cache pressure of straight-line code but cannot help the
     * trampoline's non-sequential PLT/GOT accesses.
     */
    bool iPrefetchNextLine = false;
};

/** Outcome of one access through the hierarchy. */
struct AccessResult
{
    bool tlbHit = true;
    bool l1Hit = true;
    bool l2Hit = true;
    bool l3Hit = true;
    std::uint32_t extraCycles = 0;
};

/**
 * The full hierarchy. Instruction fetches go through I-TLB and L1I;
 * data accesses through D-TLB and L1D; both share L2 and L3.
 */
class Hierarchy
{
  public:
    explicit Hierarchy(const HierarchyParams &params = {});

    /** Fetch of the instruction at addr. */
    AccessResult
    fetch(Addr addr, std::uint16_t asid)
    {
        const auto res = accessThrough(itlb_, l1i_, addr, asid);
        if (params_.iPrefetchNextLine)
            l1i_.prefetch(addr + params_.l1i.lineBytes, asid);
        return res;
    }

    /**
     * Repeat-fetch fast path for the block dispatcher: the previous
     * hierarchy operation was an I-side fetch() of an address on the
     * same L1I line (same-line implies same-page whenever lineBytes
     * <= PageBytes, since lines are aligned power-of-two runs), and
     * no prefetch ran (caller must gate on !iPrefetchNextLine). A
     * repeat fetch() is then a guaranteed full hit — the line was
     * just filled or touched, and nothing between two fetches of one
     * basic block touches the I-side structures — costing exactly
     * one itlb and one l1i hit and zero extra cycles, which is
     * precisely what this performs. Byte-identical counters/LRU to
     * calling fetch() again, at a fraction of the cost.
     */
    void fetchRepeat()
    {
        itlb_.touchRepeat();
        l1i_.touchRepeat();
    }

    /** `n` repeat fetches batched; equivalent to n fetchRepeat()s
     *  (the I-side structures are untouched in between, so the
     *  intermediate ticks are unobservable). */
    void fetchRepeatN(std::uint64_t n)
    {
        itlb_.touchRepeatN(n);
        l1i_.touchRepeatN(n);
    }

    /** True when the I-side repeat pointers are usable (nothing
     *  invalidated or flushed the I structures since the last
     *  fetch). Guards the block dispatcher's terminator-fetch
     *  repeat hint. */
    bool
    fetchRepeatReady() const
    {
        return itlb_.canRepeat() && l1i_.canRepeat();
    }

    /** Data access at addr. */
    AccessResult
    data(Addr addr, std::uint16_t asid)
    {
        return accessThrough(dtlb_, l1d_, addr, asid);
    }

    /** TLB entry + L1 way a past walk resolved to; capture after a
     *  full access, re-verify later with dataRepeatAt() or
     *  fetchRepeatAt(). A default-constructed ref never verifies. */
    struct RepeatRef
    {
        Tlb::Entry *tlbEntry = nullptr;
        Cache::Way *l1Way = nullptr;
    };

    /** The slots the most recent data() resolved to. */
    RepeatRef
    dataRef()
    {
        return {dtlb_.lastEntryPtr(), l1d_.lastWayPtr()};
    }

    /** The slots the most recent fetch() resolved to. */
    RepeatRef
    fetchRef()
    {
        return {itlb_.lastEntryPtr(), l1i_.lastWayPtr()};
    }

    /**
     * Verified-touch data access, the D-side fast path: `ref` was
     * captured by dataRef() after some earlier data() walk — there
     * is NO recency precondition, unlike the fetchRepeat() family.
     * Both slots are re-verified by key compare (see
     * Tlb::entryHolds / Cache::wayHolds for why a successful
     * compare proves a real data() would be a dtlb+l1d hit landing
     * on exactly these slots); only then are both touched, in the
     * same dtlb-then-l1d order as accessThrough(). The caller must
     * additionally guarantee addr's line lies within one page
     * (lineBytes <= PageBytes — line-aligned runs can't straddle a
     * page then), since one TLB entry vouches for one page.
     * @return False — with no state touched at all — when either
     *         verification fails; the caller takes the full data()
     *         path, which is exact by definition. Either way every
     *         counter is byte-identical to always calling data().
     */
    bool
    dataRepeatAt(const RepeatRef &ref, Addr addr, std::uint16_t asid)
    {
        if (!dtlb_.entryHolds(ref.tlbEntry, addr, asid) ||
            !l1d_.wayHolds(ref.l1Way, addr, asid))
            return false;
        dtlb_.touchAt(ref.tlbEntry);
        l1d_.touchAt(ref.l1Way);
        return true;
    }

    /**
     * I-side twin of dataRepeatAt(), with one extra caller
     * obligation: fetch() also runs the next-line prefetcher when
     * enabled, which this fast path cannot reproduce, so callers
     * must gate on !iPrefetchNextLine (in addition to lineBytes <=
     * PageBytes). Same verify-both-then-touch-both structure, same
     * byte-identity argument.
     */
    bool
    fetchRepeatAt(const RepeatRef &ref, Addr addr, std::uint16_t asid)
    {
        if (!itlb_.entryHolds(ref.tlbEntry, addr, asid) ||
            !l1i_.wayHolds(ref.l1Way, addr, asid))
            return false;
        itlb_.touchAt(ref.tlbEntry);
        l1i_.touchAt(ref.l1Way);
        return true;
    }

    /** Context-switch without ASID support: flush both TLBs. */
    void flushTlbs();

    /** Coherence write-invalidate from another core: drop the line
     *  from the data-side caches in every address space (a physical
     *  snoop cannot know which ASIDs map the line). */
    void invalidateDataLine(Addr addr);

    /** Targeted invalidation of one address space's copy, e.g. when
     *  this core observes a store to a GOT slot it caches. */
    void invalidateDataLine(Addr addr, std::uint16_t asid);

    const Cache &l1i() const { return l1i_; }
    const Cache &l1d() const { return l1d_; }
    const Cache &l2() const { return l2_; }
    const Cache &l3() const { return l3_; }
    const Tlb &itlb() const { return itlb_; }
    const Tlb &dtlb() const { return dtlb_; }

    const HierarchyParams &params() const { return params_; }

    /**
     * Override the hierarchy's latency scalars. Used when fanning a
     * machine sweep out from a restored snapshot: latencies are pure
     * timing inputs, so changing them post-restore cannot perturb
     * cache/TLB contents.
     */
    void setLatencies(std::uint32_t l2, std::uint32_t l3,
                      std::uint32_t mem, std::uint32_t walk)
    {
        params_.l2Latency = l2;
        params_.l3Latency = l3;
        params_.memLatency = mem;
        params_.walkLatency = walk;
    }

    /** Checkpoint every level (geometry-checked on load). */
    void save(snapshot::Serializer &s) const;
    void load(snapshot::Deserializer &d);

    void clearStats();

    /** Register every level's counters under `prefix` (e.g.
     *  "dlsim.cpu" yields "dlsim.cpu.l1i.misses", ...). */
    void reportMetrics(stats::MetricsRegistry &reg,
                       const std::string &prefix) const;

  private:
    /** Inline: this is the body of every fetch and data access. */
    AccessResult
    accessThrough(Tlb &tlb, Cache &l1, Addr addr,
                  std::uint16_t asid)
    {
        AccessResult res;
        res.tlbHit = tlb.access(addr, asid);
        if (!res.tlbHit)
            res.extraCycles += params_.walkLatency;
        res.l1Hit = l1.access(addr, asid);
        if (res.l1Hit)
            return res;
        res.l2Hit = l2_.access(addr, asid);
        if (!res.l2Hit) {
            res.l3Hit = l3_.access(addr, asid);
            res.extraCycles += params_.l3Latency;
            if (!res.l3Hit)
                res.extraCycles += params_.memLatency;
        } else {
            res.extraCycles += params_.l2Latency;
        }
        return res;
    }

    HierarchyParams params_;
    Cache l1i_;
    Cache l1d_;
    Cache l2_;
    Cache l3_;
    Tlb itlb_;
    Tlb dtlb_;
};

} // namespace dlsim::mem

#endif // DLSIM_MEM_HIERARCHY_HH
