/**
 * @file
 * Set-associative cache model with LRU replacement.
 *
 * The model tracks presence only (tags, no data): dlsim is execution-
 * driven but functionally backed by AddressSpace, so caches exist to
 * measure hit/miss behaviour — the quantity the paper's Table 4
 * reports (I-cache and D-cache misses per kilo-instruction).
 *
 * Tags include an address-space id so that multi-process simulations
 * do not alias between processes (approximating physical tagging).
 */

#ifndef DLSIM_MEM_CACHE_HH
#define DLSIM_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/instruction.hh"

namespace dlsim::stats
{
class MetricsRegistry;
}

namespace dlsim::snapshot
{
class Serializer;
class Deserializer;
}

namespace dlsim::mem
{

using isa::Addr;

/** Cache geometry and identification. */
struct CacheParams
{
    std::string name = "cache";
    std::uint64_t sizeBytes = 32 * 1024;
    std::uint32_t assoc = 8;
    std::uint32_t lineBytes = 64;
};

/**
 * A single cache level. Allocate-on-miss, LRU replacement, no
 * write-back modelling (dirty state does not affect the counters the
 * reproduction needs).
 */
class Cache
{
  public:
    explicit Cache(const CacheParams &params);

    /**
     * Look up (and on miss, allocate) the line containing addr.
     * @param addr Virtual address of the access.
     * @param asid Address-space id of the accessor.
     * @return True on hit.
     */
    bool access(Addr addr, std::uint16_t asid);

    /** Probe without updating LRU or allocating. */
    bool contains(Addr addr, std::uint16_t asid) const;

    /**
     * Prefetch fill: allocate the line (LRU-updating) without
     * touching the demand hit/miss statistics. Fills are counted in
     * the dedicated prefetches() counter instead.
     */
    void prefetch(Addr addr, std::uint16_t asid);

    /**
     * Targeted invalidation: drop the line containing addr in the
     * given address space only (e.g. after a store to a GOT slot
     * observed by this core's own address space).
     */
    void invalidateLine(Addr addr, std::uint16_t asid);

    /**
     * Coherence invalidation: drop the line containing addr in every
     * address space. Multicore write-invalidate snoops operate on
     * physical lines and cannot know which ASIDs map them, so they
     * genuinely need the all-ASID variant.
     */
    void invalidateLineAllAsids(Addr addr);

    /** Invalidate everything. */
    void invalidateAll();

    const CacheParams &params() const { return params_; }
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t accesses() const { return hits_ + misses_; }
    std::uint64_t prefetches() const { return prefetches_; }
    std::uint64_t evictions() const { return evictions_; }
    double missRate() const;
    void clearStats();

    /**
     * Register hit/miss/prefetch/eviction counters and the miss-rate
     * gauge under `prefix` (e.g. "dlsim.cpu.l1i").
     */
    void reportMetrics(stats::MetricsRegistry &reg,
                       const std::string &prefix) const;

    /** Checkpoint contents, LRU state, and counters. */
    void save(snapshot::Serializer &s) const;

    /** Restore; throws SnapshotError on geometry mismatch. */
    void load(snapshot::Deserializer &d);

  private:
    struct Way
    {
        std::uint64_t tag = 0;
        std::uint16_t asid = 0;
        bool valid = false;
        std::uint64_t lastUse = 0;
    };

    /** Hit scan: the way holding (line, asid), or null. */
    Way *findWay(std::uint64_t line, std::size_t set,
                 std::uint16_t asid);

    /** True when `way` holds (line, asid). Computed with integer
     *  arithmetic (no short-circuit) so the full-set scan compiles
     *  to conditional moves instead of per-way branches. */
    static bool wayMatches(const Way &way, std::uint64_t line,
                           std::uint16_t asid)
    {
        return (static_cast<unsigned>(way.valid) &
                static_cast<unsigned>(way.tag == line) &
                static_cast<unsigned>(way.asid == asid)) != 0;
    }

    /**
     * Deterministic victim selection within a set: the first invalid
     * way if any, otherwise the first way with the minimum lastUse.
     * Shared by access() and prefetch() so demand and prefetch fills
     * can never diverge.
     */
    Way *findVictim(std::size_t set);

    /** Allocate (line, asid) into victim, counting evictions. */
    void fill(Way *victim, std::uint64_t line, std::uint16_t asid);

    std::uint64_t lineOf(Addr addr) const { return addr >> lineShift_; }
    std::size_t setOf(std::uint64_t line) const
    {
        // Power-of-two set counts use a mask; others (e.g. a 12MB
        // 16-way LLC) fall back to modulo.
        if (setsArePow2_)
            return static_cast<std::size_t>(line & (numSets_ - 1));
        return static_cast<std::size_t>(line % numSets_);
    }

    CacheParams params_;
    std::uint32_t lineShift_;
    std::uint64_t numSets_;
    bool setsArePow2_;
    std::vector<Way> ways_; // numSets * assoc, set-major.
    /**
     * Most-recently-used way per set: the fetch stream touches the
     * same line for several consecutive instructions, so a single
     * compare against the MRU way resolves the overwhelming
     * majority of L1 hits without scanning the set. Purely a
     * lookup accelerator — hit/miss/LRU/eviction behaviour (and so
     * every counter) is identical with or without it.
     */
    std::vector<std::uint32_t> mruWay_;
    std::uint64_t tick_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t prefetches_ = 0;
    std::uint64_t evictions_ = 0;
};

} // namespace dlsim::mem

#endif // DLSIM_MEM_CACHE_HH
